module selectps

go 1.22
