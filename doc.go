// Package selectps is a from-scratch Go reproduction of "SELECT: A
// Distributed Publish/Subscribe Notification System for Online Social
// Networks" (Apolónia, Antaris, Girdzijauskas, Pallis, Dikaiakos, IPDPS
// 2018).
//
// The root package holds only the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper's evaluation; the system
// itself lives under internal/ (see DESIGN.md for the inventory) and the
// runnable entry points under cmd/ and examples/.
package selectps
