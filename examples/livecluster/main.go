// Livecluster: the "realistic experiment" mode — every peer is a live
// goroutine speaking the wire protocol, optionally over real TCP loopback
// sockets. A publisher's notification travels hop by hop through actual
// messages; the example reports delivery, hop counts and acks.
//
//	go run ./examples/livecluster            # in-memory transport
//	go run ./examples/livecluster -tcp       # real TCP sockets
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/node"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/transport"
)

func main() {
	useTCP := flag.Bool("tcp", false, "use real TCP loopback sockets")
	n := flag.Int("n", 120, "number of live peers")
	flag.Parse()

	g := datasets.Facebook.Generate(*n, 21)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(21)))
	if err != nil {
		panic(err)
	}

	var tr transport.Transport
	if *useTCP {
		t, err := transport.NewTCP(*n, 1024)
		if err != nil {
			panic(err)
		}
		tr = t
		fmt.Printf("started %d live peers on TCP loopback sockets\n", *n)
	} else {
		tr = transport.NewSwitchboard(*n, 1024)
		fmt.Printf("started %d live peers on the in-memory switchboard\n", *n)
	}

	cluster := node.StartCluster(g, ov, tr, node.Config{
		HeartbeatEvery: 50 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
	}, 21)
	defer cluster.Stop()

	// Publisher: the best-connected user.
	var pub overlay.PeerID
	for p := overlay.PeerID(0); p < overlay.PeerID(*n); p++ {
		if g.Degree(p) > g.Degree(pub) {
			pub = p
		}
	}
	subs := g.Neighbors(pub)
	fmt.Printf("publisher %d notifies %d friends (1.2MB payload)\n", pub, len(subs))

	start := time.Now()
	seq := cluster.Nodes[pub].Publish(1_200_000)
	delivered, ok := cluster.AwaitDelivery(pub, seq, subs, 10*time.Second)
	elapsed := time.Since(start)
	fmt.Printf("delivered %d/%d in %s (complete=%v)\n", delivered, len(subs), elapsed.Round(time.Millisecond), ok)

	// Hop distribution of the live deliveries.
	hist := map[uint8]int{}
	for _, s := range subs {
		if h, ok := cluster.Nodes[s].Received(pub, seq); ok {
			hist[h]++
		}
	}
	fmt.Println("hops  deliveries")
	for h := uint8(0); h < 16; h++ {
		if c := hist[h]; c > 0 {
			fmt.Printf("%4d  %d\n", h, c)
		}
	}

	// Wait briefly for acks to flow back.
	deadline := time.Now().Add(3 * time.Second)
	for cluster.Nodes[pub].Acked(seq) < len(subs) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("acks received by publisher: %d/%d\n", cluster.Nodes[pub].Acked(seq), len(subs))
}
