// Livecluster: the "realistic experiment" mode — every peer is a live
// goroutine speaking the wire protocol, optionally over real TCP loopback
// sockets. A publisher's notification payload travels hop by hop through
// actual messages and lands in each subscriber's OnDeliver handler; one
// late peer then joins the running ring through the live join protocol
// and receives traffic too.
//
//	go run ./examples/livecluster            # in-memory transport
//	go run ./examples/livecluster -tcp       # real TCP sockets
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/node"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/transport"
)

func main() {
	useTCP := flag.Bool("tcp", false, "use real TCP loopback sockets")
	n := flag.Int("n", 120, "number of live peers")
	flag.Parse()

	g := datasets.Facebook.Generate(*n, 21)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(21)))
	if err != nil {
		panic(err)
	}

	var tr transport.Transport
	if *useTCP {
		t, err := transport.NewTCP(*n, 1024)
		if err != nil {
			panic(err)
		}
		tr = t
		fmt.Printf("started %d live peers on TCP loopback sockets\n", *n)
	} else {
		tr = transport.NewSwitchboard(*n, 1024)
		fmt.Printf("started %d live peers on the in-memory switchboard\n", *n)
	}

	// Hold one peer out of the ring: it will join live later.
	late := overlay.PeerID(*n - 1)
	var bootstrap []overlay.PeerID
	for p := overlay.PeerID(0); p < overlay.PeerID(*n); p++ {
		if p != late {
			bootstrap = append(bootstrap, p)
		}
	}
	cluster, err := node.Start(node.Options{
		Graph: g, Overlay: ov, Transport: tr, Seed: 21,
		HeartbeatEvery: 50 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
		MaintainEvery:  50 * time.Millisecond,
		// Delivery repair: publishers re-forward to unacked subscribers so
		// a notification survives links the failure detector shreds while
		// the maintenance loop rebuilds the overlay underneath it.
		RetryBase: 100 * time.Millisecond,
		Bootstrap: bootstrap,
	})
	if err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		cluster.Shutdown(ctx)
	}()

	// Publisher: the best-connected user. Subscribers get the payload
	// pushed into their OnDeliver handler — no polling.
	var pub overlay.PeerID
	for p := overlay.PeerID(0); p < overlay.PeerID(*n); p++ {
		if g.Degree(p) > g.Degree(pub) {
			pub = p
		}
	}
	subs := g.Neighbors(pub)
	var pushed atomic.Int64
	for _, s := range subs {
		cluster.Nodes[s].OnDeliver(func(d node.Delivery) {
			pushed.Add(1)
		})
	}
	body := []byte("notification fragment: " + time.Now().Format(time.RFC3339))
	fmt.Printf("publisher %d notifies %d friends (%d-byte payload)\n", pub, len(subs), len(body))

	start := time.Now()
	seq, _ := cluster.Nodes[pub].Topic(node.UserTopic(pub)).Publish(body)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	delivered, ok := cluster.AwaitDelivery(ctx, pub, seq, subs)
	cancel()
	elapsed := time.Since(start)
	fmt.Printf("delivered %d/%d in %s (complete=%v, handler pushes=%d)\n",
		delivered, len(subs), elapsed.Round(time.Millisecond), ok, pushed.Load())

	// Hop distribution of the live deliveries.
	hist := map[uint8]int{}
	for _, s := range subs {
		if h, ok := cluster.Nodes[s].Received(pub, seq); ok {
			hist[h]++
		}
	}
	fmt.Println("hops  deliveries")
	for h := uint8(0); h < 16; h++ {
		if c := hist[h]; c > 0 {
			fmt.Printf("%4d  %d\n", h, c)
		}
	}

	// Wait briefly for acks to flow back.
	deadline := time.Now().Add(3 * time.Second)
	for cluster.Nodes[pub].Acked(seq) < len(subs) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("acks received by publisher: %d/%d\n", cluster.Nodes[pub].Acked(seq), len(subs))

	// Live join: the held-out peer asks into the running ring (Algorithm 1
	// at runtime) and is publishable immediately after.
	jctx, jcancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = cluster.Join(jctx, late, -1)
	jcancel()
	if err != nil {
		panic(err)
	}
	fmt.Printf("peer %d joined live at ring position %.4f\n", late, cluster.Nodes[late].Position())
	if g.Degree(late) > 0 {
		seq, _ := cluster.Nodes[late].Topic(node.UserTopic(late)).Publish([]byte("first post after joining"))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		got, _ := cluster.AwaitDelivery(ctx, late, seq, g.Neighbors(late))
		cancel()
		fmt.Printf("its first publication reached %d/%d subscribers\n", got, g.Degree(late))
	}

	// Named topic: interest, not friendship. A handful of peers follow a
	// hashtag; the publication routes to the topic's rendezvous peers and
	// fans down the dissemination tree to every subscriber.
	topic := "#launch-day"
	followers := []overlay.PeerID{1, 3, 5, 7, 11}
	var topicPushes atomic.Int64
	for _, f := range followers {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		sub, err := cluster.Nodes[f].Topic(topic).Subscribe(sctx)
		scancel()
		if err != nil {
			panic(err)
		}
		sub.OnDeliver(func(d node.Delivery) {
			topicPushes.Add(1)
		})
	}
	tseq, err := cluster.Nodes[pub].Topic(topic).Publish([]byte("we are live"))
	if err != nil {
		panic(err)
	}
	tctx, tcancel := context.WithTimeout(context.Background(), 10*time.Second)
	tgot, _ := cluster.AwaitDelivery(tctx, pub, tseq, followers)
	tcancel()
	fmt.Printf("topic %s reached %d/%d followers (handler pushes=%d) via rendezvous %v\n",
		topic, tgot, len(followers), topicPushes.Load(), cluster.Nodes[pub].TopicRendezvous(topic))
}
