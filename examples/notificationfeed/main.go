// Notificationfeed: the paper's motivating workload — users post at an
// exponential rate and their friends must be notified in real time. The
// example runs the same feed over SELECT and over a socially-oblivious
// Symphony DHT and compares the traffic each peer carries.
//
//	go run ./examples/notificationfeed
package main

import (
	"fmt"
	"math/rand"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
)

func main() {
	const n = 600
	g := datasets.Twitter.Generate(n, 9)
	fmt.Printf("network: %d users, %d follow edges\n", g.NumNodes(), g.NumEdges())

	for _, kind := range []pubsub.Kind{pubsub.Select, pubsub.Symphony} {
		o, err := pubsub.Build(kind, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(10)))
		if err != nil {
			panic(err)
		}
		// Drive 200 publications from the exponential posting workload.
		w := pubsub.NewWorkload(g, 10, rand.New(rand.NewSource(11)))
		posts, delivered, wanted := 0, 0, 0
		relayCopies := 0
		forwardsPerPeer := make([]int, n)
		for t := 0; posts < 200; t++ {
			for _, b := range w.PostersUntil(float64(t), 1) {
				if g.Degree(b) == 0 {
					continue
				}
				d := pubsub.Publish(o, g, b)
				posts++
				delivered += d.Delivered
				wanted += d.Subscribers
				for peer, c := range d.Forwards {
					forwardsPerPeer[peer] += c
					if peer != b && !g.HasEdge(b, peer) {
						relayCopies += c
					}
				}
				if posts >= 200 {
					break
				}
			}
		}
		// Who carries the traffic?
		maxFwd, busiest := 0, overlay.PeerID(0)
		total := 0
		for p, f := range forwardsPerPeer {
			total += f
			if f > maxFwd {
				maxFwd, busiest = f, overlay.PeerID(p)
			}
		}
		fmt.Printf("\n[%s] %d posts, %d/%d notifications delivered\n",
			kind, posts, delivered, wanted)
		fmt.Printf("  total message copies:   %d\n", total)
		fmt.Printf("  relayed by strangers:   %d (%.1f%%)\n",
			relayCopies, 100*float64(relayCopies)/float64(total))
		fmt.Printf("  busiest peer:           %d carried %d copies (social degree %d)\n",
			busiest, maxFwd, g.Degree(busiest))
	}
}
