// Quickstart: build a SELECT overlay over a small synthetic social
// network, publish a notification, and inspect the routing tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
)

func main() {
	// 1. A Facebook-shaped social network of 500 users.
	g := datasets.Facebook.Generate(500, 42)
	fmt.Printf("social graph: %d users, %d friendships, avg degree %.1f\n",
		g.NumNodes(), g.NumEdges(), g.AverageDegree())

	// 2. Build the SELECT overlay (projection + identifier reassignment +
	// LSH connection establishment run to convergence).
	o, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(42)))
	if err != nil {
		panic(err)
	}
	if it, ok := o.(overlay.Iterative); ok {
		fmt.Printf("overlay converged in %d gossip iterations\n", it.Iterations())
	}

	// 3. Pick the best-connected user as publisher and disseminate one
	// notification to all its friends.
	var publisher overlay.PeerID
	for p := overlay.PeerID(0); p < overlay.PeerID(g.NumNodes()); p++ {
		if g.Degree(p) > g.Degree(publisher) {
			publisher = p
		}
	}
	d := pubsub.Publish(o, g, publisher)
	fmt.Printf("\npublisher %d (degree %d):\n", publisher, g.Degree(publisher))
	fmt.Printf("  subscribers reached: %d/%d\n", d.Delivered, d.Subscribers)
	fmt.Printf("  routing tree size:   %d peers, max depth %d\n", d.TreeSize, d.MaxDepth)
	fmt.Printf("  relay nodes:         %d (non-subscribers carrying the message)\n", d.RelayNodes)
	fmt.Printf("  per-path relays:     %.2f on average\n", d.PathRelaysMean)

	// 4. Look up a few social pairs and show the overlay path lengths.
	fmt.Println("\nsample lookups between friends:")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		u, v, _ := g.RandomEdge(rng)
		path, ok := overlay.RouteOn(o, u, v)
		fmt.Printf("  %4d -> %-4d ok=%v hops=%d\n", u, v, ok, path.Hops())
	}
}
