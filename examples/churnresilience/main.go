// Churnresilience: the Fig. 6 scenario as a runnable demo — peers join and
// depart every step under a log-normal churn model while SELECT's
// CMA-driven recovery patches the overlay; notification availability is
// printed over time and compared against SELECT with recovery crippled
// (naive immediate replacement).
//
//	go run ./examples/churnresilience
package main

import (
	"fmt"
	"math/rand"

	"selectps/internal/datasets"
	"selectps/internal/pubsub"
	"selectps/internal/selectsys"
	"selectps/internal/sim"
)

func main() {
	const n = 500
	g := datasets.Facebook.Generate(n, 3)
	fmt.Printf("network: %d users, %d friendships; churn floor: at least half online\n\n",
		g.NumNodes(), g.NumEdges())

	variants := []struct {
		name string
		cfg  *selectsys.Config
	}{
		{"select (CMA recovery)", nil},
		{"select (naive recovery)", &selectsys.Config{NaiveRecovery: true}},
	}
	for _, v := range variants {
		o, err := pubsub.Build(pubsub.Select, g,
			pubsub.BuildOptions{SelectConfig: v.cfg}, rand.New(rand.NewSource(4)))
		if err != nil {
			panic(err)
		}
		points := sim.RunChurn(o, g, sim.ChurnConfig{Steps: 200, MeasureEvery: 20},
			rand.New(rand.NewSource(5)))
		fmt.Printf("[%s]\n", v.name)
		fmt.Printf("%6s %10s %14s\n", "step", "offline%", "availability%")
		worst := 1.0
		for _, p := range points {
			fmt.Printf("%6d %9.1f%% %13.2f%%\n", p.Step, p.OfflineFraction*100, p.Availability*100)
			if p.Availability < worst {
				worst = p.Availability
			}
		}
		fmt.Printf("worst-case availability: %.2f%%\n\n", worst*100)
	}
}
