// Loadbalance: the Fig. 4 scenario as a runnable demo — which peers carry
// the relay traffic of the notification system? The example prints, per
// social-degree decile, the transit copies each peer relays per
// publication for all five systems.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"

	"selectps/internal/datasets"
	"selectps/internal/experiments"
	"selectps/internal/pubsub"
)

func main() {
	opt := experiments.Options{
		Datasets: []datasets.Spec{datasets.Facebook},
		Trials:   2,
		Samples:  60,
		Seed:     12,
		Systems:  pubsub.AllKinds(),
	}
	tabs := experiments.Fig4Load(opt, 600)
	for _, tab := range tabs {
		fmt.Println(tab)
		fmt.Println("summary (total transit copies per publication; lower = less overhead):")
		for _, s := range tab.Series {
			fmt.Printf("  %-10s total=%.3f  top-degree-decile share=%.0f%%\n",
				s.Name, experiments.TotalLoad(s), 100*experiments.TopDecileShare(s))
		}
	}
}
