package selectps

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§IV) plus the DESIGN.md §5 ablations and a few substrate
// micro-benchmarks. Each figure benchmark runs the corresponding
// experiment at a reduced-but-meaningful scale per iteration, so
//
//	go test -bench=. -benchmem
//
// regenerates every artifact's code path and reports its cost. For
// paper-shaped output at larger scales use cmd/selectsim.

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/experiments"
	"selectps/internal/pubsub"
	"selectps/internal/selectsys"
)

// benchOpt returns small, deterministic experiment options.
func benchOpt() experiments.Options {
	return experiments.Options{
		Datasets: []datasets.Spec{datasets.Facebook},
		Sizes:    []int{250, 500},
		Trials:   1,
		Samples:  40,
		Seed:     99,
	}
}

func BenchmarkTable2Datasets(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(opt, 500)
		if len(rows) != 1 {
			b.Fatal("unexpected row count")
		}
	}
}

func BenchmarkLinkSweep(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		experiments.LinkSweep(opt, 300, []int{4, 8, 16})
	}
}

func BenchmarkFig2Hops(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		experiments.Fig2Hops(opt)
	}
}

func BenchmarkFig3Relays(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		experiments.Fig3Relays(opt)
	}
}

func BenchmarkFig4Load(b *testing.B) {
	opt := benchOpt()
	opt.Samples = 25
	for i := 0; i < b.N; i++ {
		experiments.Fig4Load(opt, 300)
	}
}

func BenchmarkFig5Convergence(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		experiments.Fig5Convergence(opt, 300)
	}
}

func BenchmarkFig6Churn(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		experiments.Fig6Churn(opt, 300, 80)
	}
}

func BenchmarkSimultaneousTransfers(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		experiments.SimultaneousTransfers(opt, []int{5, 20, 80})
	}
}

func BenchmarkFig7Latency(b *testing.B) {
	opt := benchOpt()
	opt.Sizes = []int{250}
	for i := 0; i < b.N; i++ {
		experiments.Fig7Latency(opt)
	}
}

func BenchmarkFig8IDs(b *testing.B) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		experiments.Fig8IDs(opt, 300)
	}
}

// Ablation benchmarks: one per disabled design choice (DESIGN.md §5), so
// the cost and effect of each mechanism is tracked individually.

func benchAblation(b *testing.B, cfg selectsys.Config) {
	b.Helper()
	g := datasets.Facebook.Generate(400, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := selectsys.New(g, cfg, rand.New(rand.NewSource(int64(i))))
		if o.N() != 400 {
			b.Fatal("bad overlay")
		}
	}
}

func BenchmarkAblationFullSelect(b *testing.B) {
	benchAblation(b, selectsys.Config{})
}

func BenchmarkAblationNoReassignment(b *testing.B) {
	benchAblation(b, selectsys.Config{DisableReassignment: true})
}

func BenchmarkAblationRandomLinks(b *testing.B) {
	benchAblation(b, selectsys.Config{RandomLinks: true})
}

func BenchmarkAblationPickerNoBandwidth(b *testing.B) {
	benchAblation(b, selectsys.Config{PickerIgnoresBandwidth: true})
}

func BenchmarkAblationCentroidAllFriends(b *testing.B) {
	benchAblation(b, selectsys.Config{CentroidAllFriends: true})
}

func BenchmarkAblationNaiveRecovery(b *testing.B) {
	benchAblation(b, selectsys.Config{NaiveRecovery: true})
}

// Construction benchmarks per system: the cost of building each evaluated
// overlay at the same scale.

func benchBuild(b *testing.B, kind pubsub.Kind) {
	b.Helper()
	g := datasets.Facebook.Generate(400, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := pubsub.Build(kind, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(int64(i))))
		if err != nil || o.N() != 400 {
			b.Fatal("build failed")
		}
	}
}

func BenchmarkBuildSelect(b *testing.B)   { benchBuild(b, pubsub.Select) }
func BenchmarkBuildSymphony(b *testing.B) { benchBuild(b, pubsub.Symphony) }
func BenchmarkBuildBayeux(b *testing.B)   { benchBuild(b, pubsub.Bayeux) }
func BenchmarkBuildVitis(b *testing.B)    { benchBuild(b, pubsub.Vitis) }
func BenchmarkBuildOMen(b *testing.B)     { benchBuild(b, pubsub.OMen) }

// Substrate micro-benchmarks.

func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := datasets.Facebook.Generate(1000, int64(i))
		if g.NumNodes() != 1000 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkPublish(b *testing.B) {
	g := datasets.Facebook.Generate(500, 7)
	o, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(8)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := int32(rng.Intn(500))
		pubsub.Publish(o, g, bb)
	}
}
