// Package metrics provides the statistical plumbing the experiment harness
// uses: numerically stable streaming moments (Welford), mergeable across
// worker goroutines for parallel trials, plus simple histogram and
// series/table containers that print like the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates mean and variance in a single pass. The zero value is
// ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge combines another accumulator into w (Chan et al. parallel merge),
// so per-worker accumulators can be reduced after a parallel sweep.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Quantile computes the q-quantile (0<=q<=1) of a sample by sorting a copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram counts observations into fixed-width bins over [min,max);
// values outside clamp to the edge bins.
type Histogram struct {
	Min, Max float64
	Bins     []int64
}

// NewHistogram returns a histogram with the given bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic(fmt.Sprintf("metrics: bad histogram [%v,%v) x%d", min, max, bins))
	}
	return &Histogram{Min: min, Max: max, Bins: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// Fractions returns each bin's share of the total (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Bins))
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, b := range h.Bins {
		out[i] = float64(b) / float64(t)
	}
	return out
}

// Point is one x/y measurement with dispersion.
type Point struct {
	X    float64
	Y    float64
	Std  float64
	N    int64
	Note string
}

// Series is a named sequence of points — one line in a paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point computed from an accumulator.
func (s *Series) Add(x float64, w Welford) {
	s.Points = append(s.Points, Point{X: x, Y: w.Mean(), Std: w.Std(), N: w.N()})
}

// Table is a printable collection of series sharing an X axis — one figure.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// String renders the table with one row per X value and one column per
// series, in the spirit of the paper's figures.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", t.YLabel)
	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range t.Series {
			found := false
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, " %16.3f", p.Y)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Reduction returns the relative reduction (1 - a/b) as a percentage,
// matching the paper's "X% fewer" phrasing; b == 0 yields 0.
func Reduction(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (1 - a/b) * 100
}
