package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 3
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Error("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Error("merge into empty failed")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.99, 10, 11, -5} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	// bins: [0,2): {0,1.9,-5}=3; [2,4): {2}=1; [8,10): {9.99,10,11}=3
	if h.Bins[0] != 3 || h.Bins[1] != 1 || h.Bins[4] != 3 {
		t.Errorf("Bins = %v", h.Bins)
	}
	fr := h.Fractions()
	if math.Abs(fr[0]-3.0/7.0) > 1e-12 {
		t.Errorf("Fractions = %v", fr)
	}
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Error("empty histogram has nonzero fractions")
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram accepted")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestSeriesAndTable(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(3)
	s1 := &Series{Name: "select"}
	s1.Add(100, w)
	s2 := &Series{Name: "symphony"}
	s2.Add(100, w)
	s2.Add(200, w)
	tab := &Table{Title: "Fig X", XLabel: "peers", YLabel: "hops", Series: []*Series{s1, s2}}
	out := tab.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "select") {
		t.Errorf("table header missing: %s", out)
	}
	if !strings.Contains(out, "200") {
		t.Errorf("missing x row: %s", out)
	}
	// s1 has no point at 200 → a dash.
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder: %s", out)
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(1, 10); math.Abs(r-90) > 1e-12 {
		t.Errorf("Reduction(1,10) = %v", r)
	}
	if r := Reduction(5, 0); r != 0 {
		t.Errorf("Reduction by zero = %v", r)
	}
	if r := Reduction(10, 10); r != 0 {
		t.Errorf("Reduction equal = %v", r)
	}
}
