package faultnet

import (
	"strings"
	"testing"
	"time"
)

// TestAttackScheduleDeterministic pins the byte-identical Trace()
// contract for the adversarial arms: same (n, cfg, seed) ⇒ same trace,
// different seed ⇒ a different attacker draw.
func TestAttackScheduleDeterministic(t *testing.T) {
	cfg := Config{
		Tick: time.Millisecond, Steps: 400,
		Attack: AttackEclipse, AttackFrac: 0.1, AttackTarget: -1,
	}
	a := BuildSchedule(50, cfg, 7).Trace()
	b := BuildSchedule(50, cfg, 7).Trace()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	c := BuildSchedule(50, cfg, 8).Trace()
	if a == c {
		t.Fatal("different seeds produced an identical attack schedule")
	}
	if !strings.Contains(a, "attack arm=eclipse") {
		t.Fatalf("trace missing attack event:\n%s", a)
	}
	if !strings.Contains(a, "attack-stop arm=eclipse") {
		t.Fatalf("trace missing attack-stop event:\n%s", a)
	}
}

// TestAttackSchedulePinnedTrace pins the exact rendering: defaults put
// the window at [Steps/4, Steps/4+Steps/2), the victim comes from the
// seed stream, attackers are sorted and exclude the victim.
func TestAttackSchedulePinnedTrace(t *testing.T) {
	cfg := Config{
		Tick: time.Millisecond, Steps: 100,
		Attack: AttackSybil, AttackFrac: 0.25, AttackTarget: 3,
	}
	got := BuildSchedule(8, cfg, 1).Trace()
	want := "schedule n=8 steps=100 events=2\n" +
		"step=25 attack arm=sybil target=3 side=[4 5]\n" +
		"step=75 attack-stop arm=sybil target=3\n"
	if got != want {
		t.Fatalf("pinned attack trace changed:\n got: %q\nwant: %q", got, want)
	}
}

// TestAttackWindowCompile pins the compiled lookup the soak driver polls:
// inside the window AttackAt yields (arm, victim, attackers); outside it
// reports no attack.
func TestAttackWindowCompile(t *testing.T) {
	sched := &Schedule{N: 10, Steps: 100, Ev: []Event{
		{Step: 20, Kind: EvAttackStart, Peer: 4, Part: -1, Side: []int32{1, 7}, Attack: AttackLiar},
		{Step: 60, Kind: EvAttackStop, Peer: 4, Part: -1, Attack: AttackLiar},
	}}
	c := sched.compile()
	if _, _, _, ok := c.attackAt(19); ok {
		t.Fatal("attack active before its window")
	}
	kind, target, attackers, ok := c.attackAt(20)
	if !ok || kind != AttackLiar || target != 4 || len(attackers) != 2 || attackers[0] != 1 || attackers[1] != 7 {
		t.Fatalf("attackAt(20) = %v %d %v %v", kind, target, attackers, ok)
	}
	if _, _, _, ok := c.attackAt(60); ok {
		t.Fatal("attack still active at its stop step")
	}
	// A window with no stop event stays open to the horizon.
	openEnded := &Schedule{N: 10, Steps: 100, Ev: []Event{
		{Step: 50, Kind: EvAttackStart, Peer: 2, Part: -1, Side: []int32{3}, Attack: AttackSybil},
	}}
	co := openEnded.compile()
	if _, _, _, ok := co.attackAt(99); !ok {
		t.Fatal("open-ended attack window not active at the horizon")
	}
}

// TestAttackTargetNeverAttacker asserts the victim is excluded from the
// attacker draw across seeds.
func TestAttackTargetNeverAttacker(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := Config{
			Tick: time.Millisecond, Steps: 200,
			Attack: AttackSybil, AttackFrac: 0.5, AttackTarget: -1,
		}
		s := BuildSchedule(12, cfg, seed)
		for _, e := range s.Ev {
			if e.Kind != EvAttackStart {
				continue
			}
			for _, a := range e.Side {
				if a == e.Peer {
					t.Fatalf("seed %d: victim %d is also an attacker", seed, e.Peer)
				}
			}
		}
	}
}

// TestPartitionFracRoundsToZeroSkipped pins the BuildSchedule edge fix:
// a PartitionFrac that rounds to zero peers emits no partition events at
// all (previously it forced a one-peer side), and the trace is pinned.
func TestPartitionFracRoundsToZeroSkipped(t *testing.T) {
	cfg := Config{
		Tick: time.Millisecond, Steps: 100,
		PartitionEvery: 20, PartitionFor: 10, PartitionFrac: 0.1,
	}
	// n=3, frac=0.1 → int(0.3) = 0 peers: every partition is skipped.
	got := BuildSchedule(3, cfg, 5).Trace()
	want := "schedule n=3 steps=100 events=0\n"
	if got != want {
		t.Fatalf("zero-peer partitions not skipped:\n got: %q\nwant: %q", got, want)
	}
	// The same fraction over enough peers still partitions.
	s := BuildSchedule(40, cfg, 5)
	if len(s.Ev) == 0 {
		t.Fatal("valid partitions were skipped")
	}
	for _, e := range s.Ev {
		if e.Kind == EvPartitionStart && len(e.Side) == 0 {
			t.Fatal("empty partition side scheduled")
		}
	}
}

// TestParseAttack pins the flag surface.
func TestParseAttack(t *testing.T) {
	cases := map[string]AttackKind{
		"": AttackNone, "none": AttackNone,
		"sybil": AttackSybil, "eclipse": AttackEclipse, "liar": AttackLiar,
	}
	for in, want := range cases {
		got, ok := ParseAttack(in)
		if !ok || got != want {
			t.Fatalf("ParseAttack(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := ParseAttack("ddos"); ok {
		t.Fatal("unknown arm accepted")
	}
}
