package faultnet

import (
	"testing"
	"time"

	"selectps/internal/churn"
	"selectps/internal/obs"
	"selectps/internal/transport"
	"selectps/internal/wire"
)

func chaosConfig() Config {
	m := churn.DefaultModel()
	return Config{
		DropProb: 0.1, DupProb: 0.05, ReorderProb: 0.05,
		Tick: 10 * time.Millisecond, Steps: 200,
		Churn:          &m,
		PartitionEvery: 40, PartitionFor: 10, PartitionFrac: 0.25,
	}
}

func TestScheduleDeterministic(t *testing.T) {
	cfg := chaosConfig()
	a := BuildSchedule(100, cfg, 42)
	b := BuildSchedule(100, cfg, 42)
	if a.Trace() != b.Trace() {
		t.Fatal("same seed produced different fault schedules")
	}
	if len(a.Ev) == 0 {
		t.Fatal("chaos schedule produced no events")
	}
	c := BuildSchedule(100, cfg, 43)
	if a.Trace() == c.Trace() {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestScheduleHasCrashesAndPartitions(t *testing.T) {
	s := BuildSchedule(100, chaosConfig(), 7)
	var crashes, restarts, parts, heals int
	for _, e := range s.Ev {
		switch e.Kind {
		case EvCrash:
			crashes++
		case EvRestart:
			restarts++
		case EvPartitionStart:
			parts++
			if len(e.Side) == 0 || len(e.Side) >= 100 {
				t.Fatalf("partition side size %d", len(e.Side))
			}
		case EvPartitionHeal:
			heals++
		}
	}
	if crashes == 0 || parts == 0 {
		t.Fatalf("schedule missing fault kinds: %d crashes, %d partitions", crashes, parts)
	}
	if parts != heals {
		t.Fatalf("%d partitions but %d heals", parts, heals)
	}
	if restarts > crashes {
		t.Fatalf("%d restarts exceed %d crashes", restarts, crashes)
	}
}

func TestCompiledWindows(t *testing.T) {
	s := &Schedule{N: 4, Steps: 100, Ev: []Event{
		{Step: 10, Kind: EvCrash, Peer: 2, Part: -1},
		{Step: 20, Kind: EvRestart, Peer: 2, Part: -1},
		{Step: 30, Kind: EvCrash, Peer: 3, Part: -1}, // never restarts
		{Step: 15, Kind: EvPartitionStart, Part: 0, Peer: -1, Side: []int32{0}},
		{Step: 25, Kind: EvPartitionHeal, Part: 0, Peer: -1},
	}}
	c := s.compile()
	for step, want := range map[int]bool{9: false, 10: true, 19: true, 20: false} {
		if got := c.crashedAt(step, 2); got != want {
			t.Fatalf("crashedAt(%d, 2) = %v, want %v", step, got, want)
		}
	}
	if !c.crashedAt(99, 3) {
		t.Fatal("unclosed crash window should last to the horizon")
	}
	if c.crashedAt(100, 3) {
		t.Fatal("crash window extends past the horizon")
	}
	if !c.partitionedAt(15, 0, 1) || c.partitionedAt(15, 1, 2) {
		t.Fatal("partition membership wrong")
	}
	if c.partitionedAt(25, 0, 1) {
		t.Fatal("partition not healed")
	}
}

// drain reads every message currently deliverable from ch.
func drain(ch <-chan transport.Envelope) []*wire.Message {
	var out []*wire.Message
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, e.Msg)
		case <-time.After(50 * time.Millisecond):
			return out
		}
	}
}

// TestPerLinkDecisionsDeterministic feeds the same single-threaded
// message sequence through two identically seeded fault nets and checks
// the surviving messages match exactly — the per-link decision-stream
// half of the determinism contract.
func TestPerLinkDecisionsDeterministic(t *testing.T) {
	run := func(seed int64) []uint32 {
		inner := transport.NewSwitchboard(2, 4096)
		f := Wrap(inner, 2, Config{DropProb: 0.3, DupProb: 0.1}, seed)
		for i := uint32(0); i < 500; i++ {
			_ = f.Send(1, &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Seq: i})
		}
		got := drain(f.Inbox(1))
		f.Close()
		seqs := make([]uint32, len(got))
		for i, m := range got {
			seqs[i] = m.Seq
		}
		return seqs
	}
	a, b := run(11), run(11)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: seq %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == 500 {
		t.Fatal("no faults injected at DropProb=0.3")
	}
	c := run(12)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical fault decisions")
		}
	}
}

func TestDropRateApproximatesConfig(t *testing.T) {
	inner := transport.NewSwitchboard(2, 8192)
	met := obs.New()
	f := Wrap(inner, 2, Config{DropProb: 0.2}, 3)
	f.Obs = met
	const total = 5000
	for i := uint32(0); i < total; i++ {
		_ = f.Send(1, &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Seq: i})
	}
	drops := met.Get(obs.CFaultDrop)
	if frac := float64(drops) / total; frac < 0.15 || frac > 0.25 {
		t.Fatalf("drop fraction %.3f far from configured 0.2", frac)
	}
	f.Close()
}

func TestDuplicationDeliversTwice(t *testing.T) {
	inner := transport.NewSwitchboard(2, 8192)
	f := Wrap(inner, 2, Config{DupProb: 1.0}, 5)
	for i := uint32(0); i < 10; i++ {
		_ = f.Send(1, &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Seq: i})
	}
	got := drain(f.Inbox(1))
	if len(got) != 20 {
		t.Fatalf("DupProb=1 delivered %d messages for 10 sends", len(got))
	}
	f.Close()
}

func TestKindFilterSparesOtherKinds(t *testing.T) {
	inner := transport.NewSwitchboard(2, 8192)
	f := Wrap(inner, 2, Config{DropProb: 1.0, Kinds: []wire.Kind{wire.KindPublish}}, 6)
	_ = f.Send(1, &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Seq: 1})
	_ = f.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, To: 1, Seq: 2})
	got := drain(f.Inbox(1))
	if len(got) != 1 || got[0].Kind != wire.KindPing {
		t.Fatalf("kind filter failed: got %d messages", len(got))
	}
	f.Close()
}

func TestCrashWindowDropsBothDirections(t *testing.T) {
	inner := transport.NewSwitchboard(3, 64)
	m := churn.DefaultModel()
	f := Wrap(inner, 3, Config{Tick: time.Millisecond, Steps: 100, Churn: &m}, 8)
	met := obs.New()
	f.Obs = met
	// Find a crash window in the schedule and pin the clock inside it.
	var peer int32 = -1
	var step int
	for _, e := range f.Schedule().Ev {
		if e.Kind == EvCrash {
			peer, step = e.Peer, e.Step
			break
		}
	}
	if peer < 0 {
		t.Skip("no crash in schedule (rare seed)")
	}
	f.stepNow = func() int { return step }
	other := (peer + 1) % 3
	_ = f.Send(peer, &wire.Message{Kind: wire.KindPublish, From: other, To: peer, Seq: 1})
	_ = f.Send(other, &wire.Message{Kind: wire.KindPublish, From: peer, To: other, Seq: 2})
	if got := drain(f.Inbox(peer)); len(got) != 0 {
		t.Fatal("message delivered to crashed peer")
	}
	if got := drain(f.Inbox(other)); len(got) != 0 {
		t.Fatal("message delivered from crashed peer")
	}
	if met.Get(obs.CFaultCrashDrop) != 2 {
		t.Fatalf("crash drops = %d, want 2", met.Get(obs.CFaultCrashDrop))
	}
	// Outside every crash window of this peer, traffic flows.
	clean := -1
	for s := 0; s < 100; s++ {
		if !f.CrashedAt(s, peer) && !f.CrashedAt(s, other) && !f.PartitionedAt(s, peer, other) {
			clean = s
			break
		}
	}
	if clean >= 0 {
		f.stepNow = func() int { return clean }
		_ = f.Send(peer, &wire.Message{Kind: wire.KindPublish, From: other, To: peer, Seq: 3})
		if got := drain(f.Inbox(peer)); len(got) != 1 {
			t.Fatal("message not delivered outside crash window")
		}
	}
	f.Close()
}

func TestPartitionWindowCutsCrossTraffic(t *testing.T) {
	inner := transport.NewSwitchboard(4, 64)
	f := Wrap(inner, 4, Config{
		Tick: time.Millisecond, Steps: 100,
		PartitionEvery: 10, PartitionFor: 5, PartitionFrac: 0.5,
	}, 9)
	var ev Event
	for _, e := range f.Schedule().Ev {
		if e.Kind == EvPartitionStart {
			ev = e
			break
		}
	}
	if ev.Kind != EvPartitionStart {
		t.Fatal("no partition scheduled")
	}
	inA := map[int32]bool{}
	for _, p := range ev.Side {
		inA[p] = true
	}
	var a, b int32 = -1, -1
	for p := int32(0); p < 4; p++ {
		if inA[p] && a < 0 {
			a = p
		}
		if !inA[p] && b < 0 {
			b = p
		}
	}
	f.stepNow = func() int { return ev.Step }
	_ = f.Send(b, &wire.Message{Kind: wire.KindPublish, From: a, To: b, Seq: 1})
	if got := drain(f.Inbox(b)); len(got) != 0 {
		t.Fatal("message crossed an active partition")
	}
	// Same-side traffic is unaffected.
	var a2 int32 = -1
	for _, p := range ev.Side {
		if p != a {
			a2 = p
			break
		}
	}
	if a2 >= 0 {
		_ = f.Send(a2, &wire.Message{Kind: wire.KindPublish, From: a, To: a2, Seq: 2})
		if got := drain(f.Inbox(a2)); len(got) != 1 {
			t.Fatal("same-side message dropped during partition")
		}
	}
	f.Close()
}

func TestDelayedDeliveryArrives(t *testing.T) {
	inner := transport.NewSwitchboard(2, 64)
	f := Wrap(inner, 2, Config{DelayMin: 5 * time.Millisecond, DelayMax: 15 * time.Millisecond}, 10)
	start := time.Now()
	_ = f.Send(1, &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Seq: 1})
	select {
	case <-f.Inbox(1):
		if time.Since(start) < 4*time.Millisecond {
			t.Fatal("delay not applied")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed message never arrived")
	}
	f.Close()
}

func TestCloseWaitsForInFlight(t *testing.T) {
	inner := transport.NewSwitchboard(2, 64)
	f := Wrap(inner, 2, Config{DelayMin: 10 * time.Millisecond, DelayMax: 20 * time.Millisecond}, 11)
	for i := uint32(0); i < 5; i++ {
		_ = f.Send(1, &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Seq: i})
	}
	f.Close() // must not panic or race with timers
	f.Close() // idempotent
}

func TestComposesOverTCP(t *testing.T) {
	inner, err := transport.NewTCP(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := Wrap(inner, 2, Config{DropProb: 0.5}, 12)
	defer f.Close()
	var delivered int
	for i := uint32(0); i < 100; i++ {
		_ = f.Send(1, &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Seq: i})
	}
	delivered = len(drain(f.Inbox(1)))
	if delivered == 0 || delivered == 100 {
		t.Fatalf("TCP+faultnet delivered %d/100, want partial delivery", delivered)
	}
}
