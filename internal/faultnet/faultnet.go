// Package faultnet is a fault-injecting transport middleware: it wraps
// any transport.Transport (the in-memory switchboard or the TCP loopback
// transport) and subjects traffic to a deterministic, seeded failure
// model — per-link message loss, duplication, delay and reorder,
// bidirectional network partitions with heal times, and peer
// crash/restart driven by the log-normal churn session model of §IV
// (internal/churn).
//
// Determinism contract (DESIGN.md §7): all *timed* faults — crashes,
// restarts, partitions — are precomputed into a Schedule that is a pure
// function of (n, Config, seed); the same seed always yields the same
// Schedule.Trace(). Per-message *probabilistic* faults (drop, duplicate,
// delay) are drawn from a dedicated RNG per directed link, seeded from
// (seed, from, to), so each link sees the same decision stream whenever
// it carries the same message sequence — concurrency between links never
// perturbs another link's fate.
package faultnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"selectps/internal/churn"
	"selectps/internal/obs"
	"selectps/internal/transport"
	"selectps/internal/wire"
)

// Config parameterizes the failure model.
type Config struct {
	// DropProb is the per-message loss probability on every directed link.
	DropProb float64
	// DupProb duplicates a message (the copy is independently delayed).
	DupProb float64
	// ReorderProb holds a message back by ReorderDelay beyond its drawn
	// delay, letting later traffic on the link overtake it.
	ReorderProb float64
	// DelayMin/DelayMax bound the uniform per-message delivery delay
	// (both zero = no injected delay).
	DelayMin, DelayMax time.Duration
	// ReorderDelay is the extra hold applied to reordered messages
	// (default 2*DelayMax, or 2 ms when no delay is configured).
	ReorderDelay time.Duration
	// Kinds restricts probabilistic faults to the listed message kinds
	// (nil = all kinds). Timed faults (crash, partition) always apply:
	// a dead peer is dead for pings and publications alike.
	Kinds []wire.Kind

	// Tick is the real-time duration of one schedule step (0 disables all
	// timed faults).
	Tick time.Duration
	// Steps is the schedule horizon; past it the network runs clean.
	Steps int
	// Churn drives crash/restart events from log-normal sessions (nil =
	// no crashes).
	Churn *churn.Model
	// PartitionEvery opens a partition every so many steps (0 = none),
	// lasting PartitionFor steps, cutting off a PartitionFrac fraction of
	// peers (default 0.3).
	PartitionEvery int
	PartitionFor   int
	PartitionFrac  float64

	// Attack schedules one adversarial arm (AttackNone = honest faults
	// only). The schedule picks the attacker set and victim
	// deterministically from the seed and emits EvAttackStart /
	// EvAttackStop events; enacting the behavior is the driver's job —
	// it mirrors the window onto node adversary hooks
	// (node.Node.SetAdversary), because these are byzantine *peers*,
	// not transport faults.
	Attack AttackKind
	// AttackFrac is the fraction of peers recruited as attackers
	// (default 0.05, at least one, never the victim).
	AttackFrac float64
	// AttackFrom is the step the attack starts (default Steps/4) and
	// AttackFor its duration in steps (default Steps/2, clamped to the
	// horizon).
	AttackFrom int
	AttackFor  int
	// AttackTarget is the victim peer; negative draws one from the seed
	// stream.
	AttackTarget int32
}

// enabled reports whether any probabilistic fault is configured.
func (c *Config) probabilistic() bool {
	return c.DropProb > 0 || c.DupProb > 0 || c.ReorderProb > 0 || c.DelayMax > 0
}

type connKey struct{ from, to int32 }

// linkRNG is one directed link's private decision stream.
type linkRNG struct {
	mu sync.Mutex
	r  *rand.Rand
}

// Net is the fault-injecting middleware. It implements
// transport.Transport and composes over any inner transport; Inbox and
// message framing pass through untouched.
type Net struct {
	inner transport.Transport
	cfg   Config
	seed  int64

	// Obs, when set before traffic starts, receives per-fault counters.
	Obs *obs.Metrics

	sched *Schedule
	comp  compiled
	start time.Time

	mu   sync.Mutex
	rngs map[connKey]*linkRNG

	wg     sync.WaitGroup
	closed atomic.Bool

	// stepNow overrides the wall-clock step computation (tests).
	stepNow func() int
}

// Wrap builds the deterministic fault schedule for n peers from (cfg,
// seed) and returns a transport that injects it on top of inner. The
// schedule clock starts immediately.
func Wrap(inner transport.Transport, n int, cfg Config, seed int64) *Net {
	if cfg.ReorderDelay == 0 {
		if cfg.DelayMax > 0 {
			cfg.ReorderDelay = 2 * cfg.DelayMax
		} else {
			cfg.ReorderDelay = 2 * time.Millisecond
		}
	}
	f := &Net{
		inner: inner,
		cfg:   cfg,
		seed:  seed,
		rngs:  make(map[connKey]*linkRNG),
		start: time.Now(),
	}
	if cfg.Tick > 0 && cfg.Steps > 0 {
		f.sched = BuildSchedule(n, cfg, seed)
		f.comp = f.sched.compile()
	}
	return f
}

// Schedule returns the precomputed fault timeline (nil when timed faults
// are disabled). Its Trace() is the reproducibility artifact.
func (f *Net) Schedule() *Schedule { return f.sched }

// Step returns the current schedule step (0 when timed faults are off).
func (f *Net) Step() int {
	if f.sched == nil {
		return 0
	}
	if f.stepNow != nil {
		return f.stepNow()
	}
	return int(time.Since(f.start) / f.cfg.Tick)
}

// CrashedAt reports whether peer is inside a crash window at step.
func (f *Net) CrashedAt(step int, peer int32) bool {
	if f.sched == nil {
		return false
	}
	return f.comp.crashedAt(step, peer)
}

// PartitionedAt reports whether a and b are on opposite sides of an
// active partition at step.
func (f *Net) PartitionedAt(step int, a, b int32) bool {
	if f.sched == nil {
		return false
	}
	return f.comp.partitionedAt(step, a, b)
}

// AttackAt returns the adversarial window active at step: the arm, the
// victim, and the sorted attacker set. ok is false outside any window.
func (f *Net) AttackAt(step int) (kind AttackKind, target int32, attackers []int32, ok bool) {
	if f.sched == nil {
		return AttackNone, -1, nil, false
	}
	return f.comp.attackAt(step)
}

// link returns the decision stream for (from → to), creating it
// deterministically from (seed, from, to) on first use.
func (f *Net) link(from, to int32) *linkRNG {
	key := connKey{from, to}
	f.mu.Lock()
	lr := f.rngs[key]
	if lr == nil {
		lr = &linkRNG{r: rand.New(rand.NewSource(mixSeed(f.seed, from, to)))}
		f.rngs[key] = lr
	}
	f.mu.Unlock()
	return lr
}

// mixSeed derives a well-separated per-link seed (splitmix64 finalizer).
func mixSeed(seed int64, from, to int32) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(uint32(from)+1) + 0xBF58476D1CE4E5B9*uint64(uint32(to)+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// decision is one message's drawn fate.
type decision struct {
	drop, dup bool
	delay     time.Duration
	dupDelay  time.Duration
}

// decide draws the message's fate from the link stream. Draw order is
// fixed (drop, dup, reorder, delay, dup-delay) so the stream stays
// deterministic per link regardless of which faults are enabled.
func (f *Net) decide(lr *linkRNG) decision {
	var d decision
	lr.mu.Lock()
	defer lr.mu.Unlock()
	r := lr.r
	d.drop = r.Float64() < f.cfg.DropProb
	d.dup = r.Float64() < f.cfg.DupProb
	reorder := r.Float64() < f.cfg.ReorderProb
	span := f.cfg.DelayMax - f.cfg.DelayMin
	drawDelay := func() time.Duration {
		delay := f.cfg.DelayMin
		if span > 0 {
			delay += time.Duration(r.Int63n(int64(span)))
		}
		return delay
	}
	if f.cfg.DelayMax > 0 {
		d.delay = drawDelay()
	}
	if reorder {
		d.delay += f.cfg.ReorderDelay
	}
	if d.dup {
		d.dupDelay = d.delay
		if f.cfg.DelayMax > 0 {
			d.dupDelay = drawDelay()
		}
	}
	return d
}

// kindSubject reports whether probabilistic faults apply to kind k.
func (f *Net) kindSubject(k wire.Kind) bool {
	if len(f.cfg.Kinds) == 0 {
		return true
	}
	for _, want := range f.cfg.Kinds {
		if k == want {
			return true
		}
	}
	return false
}

// Send implements transport.Transport. Injected losses return nil — the
// message was accepted by the (faulty) network; only inner-transport
// errors on the immediate path propagate.
func (f *Net) Send(to int32, m *wire.Message) error {
	// Timed faults first: crashed endpoints and partition cuts kill the
	// message regardless of kind.
	if f.sched != nil {
		step := f.Step()
		if f.comp.crashedAt(step, m.From) || f.comp.crashedAt(step, to) {
			f.Obs.Inc(obs.CFaultCrashDrop)
			return nil
		}
		if f.comp.partitionedAt(step, m.From, to) {
			f.Obs.Inc(obs.CFaultPartitionDrop)
			return nil
		}
	}
	if !f.cfg.probabilistic() || !f.kindSubject(m.Kind) {
		return f.inner.Send(to, m)
	}
	d := f.decide(f.link(m.From, to))
	if d.drop {
		f.Obs.Inc(obs.CFaultDrop)
		return nil
	}
	if d.dup {
		f.Obs.Inc(obs.CFaultDuplicate)
		// The copy must be deep: receivers mutate TTL/HopCount in place,
		// and the original pointer is about to live in another inbox.
		f.sendAfter(to, m.Clone(), d.dupDelay)
	}
	if d.delay > 0 {
		f.Obs.Inc(obs.CFaultDelayed)
		f.sendAfter(to, m, d.delay)
		return nil
	}
	return f.inner.Send(to, m)
}

// sendAfter delivers m to the inner transport after delay (immediately
// when delay is 0), dropping it if the middleware closed in between.
func (f *Net) sendAfter(to int32, m *wire.Message, delay time.Duration) {
	if f.closed.Load() {
		return
	}
	f.wg.Add(1)
	if delay <= 0 {
		defer f.wg.Done()
		_ = f.inner.Send(to, m)
		return
	}
	time.AfterFunc(delay, func() {
		defer f.wg.Done()
		if f.closed.Load() {
			return
		}
		_ = f.inner.Send(to, m)
	})
}

// Inbox implements transport.Transport (pass-through).
func (f *Net) Inbox(owner int32) <-chan transport.Envelope { return f.inner.Inbox(owner) }

// BindInbox implements transport.InboxMux by forwarding to the inner
// transport, reporting its capability — wrapping a non-multiplexable
// transport must not advertise multiplexing, or bound peers would
// silently never receive.
func (f *Net) BindInbox(owner int32, ch chan transport.Envelope) bool {
	if mux, ok := f.inner.(transport.InboxMux); ok {
		return mux.BindInbox(owner, ch)
	}
	return false
}

// Close implements transport.Transport: it stops injecting, waits for
// in-flight delayed deliveries, and closes the inner transport.
func (f *Net) Close() {
	if f.closed.Swap(true) {
		return
	}
	f.wg.Wait()
	f.inner.Close()
}

var _ transport.Transport = (*Net)(nil)
