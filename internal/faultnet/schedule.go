package faultnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"selectps/internal/churn"
)

// EventKind discriminates scheduled fault events.
type EventKind uint8

// Scheduled event kinds.
const (
	// EvCrash takes a peer offline: every message to or from it is dropped
	// until the matching EvRestart.
	EvCrash EventKind = iota + 1
	// EvRestart brings a crashed peer back.
	EvRestart
	// EvPartitionStart opens a bidirectional network partition: messages
	// crossing the cut are dropped until the matching EvPartitionHeal.
	EvPartitionStart
	// EvPartitionHeal closes a partition.
	EvPartitionHeal
	// EvAttackStart opens an adversarial window: the peers in Side run
	// the attack named by Attack against the victim in Peer until the
	// matching EvAttackStop. The transport itself stays honest — the
	// driver mirrors the window onto node adversary hooks.
	EvAttackStart
	// EvAttackStop closes an adversarial window; the attackers revert to
	// honest protocol behavior.
	EvAttackStop
)

// AttackKind names one adversarial arm.
type AttackKind uint8

// Adversarial arms.
const (
	// AttackNone disables the adversarial tier.
	AttackNone AttackKind = iota
	// AttackSybil: attackers cycle leave/re-join through the victim,
	// flooding its free arc (one LSH region) with cheap identities.
	AttackSybil
	// AttackEclipse: attackers push forged successor/predecessor claims
	// flanking the victim's ring position, trying to monopolize its
	// r-deep lists and long links.
	AttackEclipse
	// AttackLiar: attackers inflate the mutual counts in their
	// gossip-exchange replies, poisoning learned tie strengths.
	AttackLiar
)

// String implements fmt.Stringer.
func (a AttackKind) String() string {
	switch a {
	case AttackNone:
		return "none"
	case AttackSybil:
		return "sybil"
	case AttackEclipse:
		return "eclipse"
	case AttackLiar:
		return "liar"
	default:
		return fmt.Sprintf("attack(%d)", uint8(a))
	}
}

// ParseAttack maps an arm name (the cmd/soak -attack flag) to its kind.
func ParseAttack(s string) (AttackKind, bool) {
	switch s {
	case "", "none":
		return AttackNone, true
	case "sybil":
		return AttackSybil, true
	case "eclipse":
		return AttackEclipse, true
	case "liar":
		return AttackLiar, true
	default:
		return AttackNone, false
	}
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvPartitionStart:
		return "partition"
	case EvPartitionHeal:
		return "heal"
	case EvAttackStart:
		return "attack"
	case EvAttackStop:
		return "attack-stop"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// Step is the schedule step at which the event takes effect.
	Step int
	Kind EventKind
	// Peer is the crashing/restarting peer (crash/restart only, else -1).
	Peer int32
	// Part identifies the partition (start/heal only, else -1).
	Part int
	// Side lists the minority side of the cut (partition start only) or
	// the attacker set (attack start only), sorted ascending; for
	// partitions the majority side is the complement.
	Side []int32
	// Attack names the adversarial arm (attack start/stop only, else
	// AttackNone).
	Attack AttackKind
}

// Schedule is a fully precomputed fault timeline. It is a pure function
// of (n, config, seed): building it twice with the same inputs yields an
// identical event list — that is the determinism contract every replay
// and every reproducibility test leans on.
type Schedule struct {
	N     int
	Steps int
	Ev    []Event
}

// BuildSchedule generates the deterministic fault timeline for n peers
// over cfg.Steps steps from the given seed. Crash/restart events follow
// the log-normal session model in cfg.Churn (nil disables them);
// partitions open every cfg.PartitionEvery steps for cfg.PartitionFor
// steps, cutting off a random cfg.PartitionFrac fraction of peers.
func BuildSchedule(n int, cfg Config, seed int64) *Schedule {
	s := &Schedule{N: n, Steps: cfg.Steps}
	if cfg.Steps <= 0 {
		return s
	}
	rng := rand.New(rand.NewSource(seed))
	if cfg.Churn != nil {
		st := churn.NewState(n, *cfg.Churn, rng)
		for step := 1; step <= cfg.Steps; step++ {
			off, on := st.Step(step)
			for _, u := range off {
				s.Ev = append(s.Ev, Event{Step: step, Kind: EvCrash, Peer: int32(u), Part: -1})
			}
			for _, u := range on {
				s.Ev = append(s.Ev, Event{Step: step, Kind: EvRestart, Peer: int32(u), Part: -1})
			}
		}
	}
	if cfg.PartitionEvery > 0 && cfg.PartitionFor > 0 {
		frac := cfg.PartitionFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.3
		}
		part := 0
		for t := cfg.PartitionEvery; t < cfg.Steps; t += cfg.PartitionEvery {
			k := int(frac * float64(n))
			if k < 1 {
				// The fraction rounds to zero peers: the minority side would
				// be empty and no pair crosses the cut. Skip the no-op events
				// rather than scheduling an empty partition.
				continue
			}
			perm := rng.Perm(n)[:k]
			side := make([]int32, k)
			for i, p := range perm {
				side[i] = int32(p)
			}
			sort.Slice(side, func(i, j int) bool { return side[i] < side[j] })
			heal := t + cfg.PartitionFor
			if heal > cfg.Steps {
				heal = cfg.Steps
			}
			s.Ev = append(s.Ev,
				Event{Step: t, Kind: EvPartitionStart, Peer: -1, Part: part, Side: side},
				Event{Step: heal, Kind: EvPartitionHeal, Peer: -1, Part: part})
			part++
		}
	}
	if cfg.Attack != AttackNone && n > 1 {
		frac := cfg.AttackFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.05
		}
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		if k > n-1 {
			k = n - 1
		}
		target := cfg.AttackTarget
		if target < 0 || target >= int32(n) {
			target = int32(rng.Intn(n))
		}
		// Attackers are drawn from the seed stream, never the victim.
		attackers := make([]int32, 0, k)
		for _, p := range rng.Perm(n) {
			if int32(p) == target {
				continue
			}
			attackers = append(attackers, int32(p))
			if len(attackers) == k {
				break
			}
		}
		sort.Slice(attackers, func(i, j int) bool { return attackers[i] < attackers[j] })
		from := cfg.AttackFrom
		if from <= 0 {
			from = cfg.Steps / 4
			if from < 1 {
				from = 1
			}
		}
		dur := cfg.AttackFor
		if dur <= 0 {
			dur = cfg.Steps / 2
		}
		stop := from + dur
		if stop > cfg.Steps {
			stop = cfg.Steps
		}
		if from < cfg.Steps {
			s.Ev = append(s.Ev,
				Event{Step: from, Kind: EvAttackStart, Peer: target, Part: -1, Side: attackers, Attack: cfg.Attack},
				Event{Step: stop, Kind: EvAttackStop, Peer: target, Part: -1, Attack: cfg.Attack})
		}
	}
	// Canonical order: by step, then kind, then peer/part — so the trace
	// is diffable across runs regardless of generation order.
	sort.SliceStable(s.Ev, func(i, j int) bool {
		a, b := s.Ev[i], s.Ev[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Part < b.Part
	})
	return s
}

// Trace renders the schedule as canonical text, one event per line —
// the artifact reproducibility tests diff between same-seed runs.
func (s *Schedule) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule n=%d steps=%d events=%d\n", s.N, s.Steps, len(s.Ev))
	for _, e := range s.Ev {
		switch e.Kind {
		case EvCrash, EvRestart:
			fmt.Fprintf(&b, "step=%d %s peer=%d\n", e.Step, e.Kind, e.Peer)
		case EvPartitionStart:
			fmt.Fprintf(&b, "step=%d %s id=%d side=%v\n", e.Step, e.Kind, e.Part, e.Side)
		case EvPartitionHeal:
			fmt.Fprintf(&b, "step=%d %s id=%d\n", e.Step, e.Kind, e.Part)
		case EvAttackStart:
			fmt.Fprintf(&b, "step=%d %s arm=%s target=%d side=%v\n", e.Step, e.Kind, e.Attack, e.Peer, e.Side)
		case EvAttackStop:
			fmt.Fprintf(&b, "step=%d %s arm=%s target=%d\n", e.Step, e.Kind, e.Attack, e.Peer)
		}
	}
	return b.String()
}

// window is a half-open step interval [start, end).
type window struct{ start, end int }

func (w window) contains(step int) bool { return step >= w.start && step < w.end }

// partWindow is an active partition interval with its minority side.
type partWindow struct {
	window
	side map[int32]bool
}

// attackWindow is an active adversarial interval.
type attackWindow struct {
	window
	kind      AttackKind
	target    int32
	attackers []int32
}

// compiled is the schedule lowered to per-peer crash windows, partition
// windows and attack windows for O(windows-per-peer) lookup on the send
// path.
type compiled struct {
	crash   map[int32][]window
	parts   []partWindow
	attacks []attackWindow
}

func (s *Schedule) compile() compiled {
	c := compiled{crash: make(map[int32][]window)}
	open := make(map[int32]int) // peer -> crash start
	partOpen := make(map[int]partWindow)
	attackOpen := make(map[AttackKind]attackWindow)
	for _, e := range s.Ev {
		switch e.Kind {
		case EvCrash:
			open[e.Peer] = e.Step
		case EvRestart:
			if start, ok := open[e.Peer]; ok {
				c.crash[e.Peer] = append(c.crash[e.Peer], window{start, e.Step})
				delete(open, e.Peer)
			}
		case EvPartitionStart:
			side := make(map[int32]bool, len(e.Side))
			for _, p := range e.Side {
				side[p] = true
			}
			partOpen[e.Part] = partWindow{window{e.Step, s.Steps}, side}
		case EvPartitionHeal:
			if pw, ok := partOpen[e.Part]; ok {
				pw.end = e.Step
				c.parts = append(c.parts, pw)
				delete(partOpen, e.Part)
			}
		case EvAttackStart:
			attackOpen[e.Attack] = attackWindow{window{e.Step, s.Steps}, e.Attack, e.Peer, e.Side}
		case EvAttackStop:
			if aw, ok := attackOpen[e.Attack]; ok {
				aw.end = e.Step
				c.attacks = append(c.attacks, aw)
				delete(attackOpen, e.Attack)
			}
		}
	}
	// Crashes, partitions and attacks still open at the horizon stay in
	// effect until the end of the schedule.
	for peer, start := range open {
		c.crash[peer] = append(c.crash[peer], window{start, s.Steps})
	}
	for _, pw := range partOpen {
		c.parts = append(c.parts, pw)
	}
	for _, aw := range attackOpen {
		c.attacks = append(c.attacks, aw)
	}
	return c
}

func (c *compiled) crashedAt(step int, peer int32) bool {
	for _, w := range c.crash[peer] {
		if w.contains(step) {
			return true
		}
	}
	return false
}

func (c *compiled) partitionedAt(step int, a, b int32) bool {
	for _, pw := range c.parts {
		if pw.contains(step) && pw.side[a] != pw.side[b] {
			return true
		}
	}
	return false
}

func (c *compiled) attackAt(step int) (AttackKind, int32, []int32, bool) {
	for _, aw := range c.attacks {
		if aw.contains(step) {
			return aw.kind, aw.target, aw.attackers, true
		}
	}
	return AttackNone, -1, nil, false
}
