package faultnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"selectps/internal/churn"
)

// EventKind discriminates scheduled fault events.
type EventKind uint8

// Scheduled event kinds.
const (
	// EvCrash takes a peer offline: every message to or from it is dropped
	// until the matching EvRestart.
	EvCrash EventKind = iota + 1
	// EvRestart brings a crashed peer back.
	EvRestart
	// EvPartitionStart opens a bidirectional network partition: messages
	// crossing the cut are dropped until the matching EvPartitionHeal.
	EvPartitionStart
	// EvPartitionHeal closes a partition.
	EvPartitionHeal
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvCrash:
		return "crash"
	case EvRestart:
		return "restart"
	case EvPartitionStart:
		return "partition"
	case EvPartitionHeal:
		return "heal"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// Step is the schedule step at which the event takes effect.
	Step int
	Kind EventKind
	// Peer is the crashing/restarting peer (crash/restart only, else -1).
	Peer int32
	// Part identifies the partition (start/heal only, else -1).
	Part int
	// Side lists the minority side of the cut (partition start only),
	// sorted ascending; the majority side is the complement.
	Side []int32
}

// Schedule is a fully precomputed fault timeline. It is a pure function
// of (n, config, seed): building it twice with the same inputs yields an
// identical event list — that is the determinism contract every replay
// and every reproducibility test leans on.
type Schedule struct {
	N     int
	Steps int
	Ev    []Event
}

// BuildSchedule generates the deterministic fault timeline for n peers
// over cfg.Steps steps from the given seed. Crash/restart events follow
// the log-normal session model in cfg.Churn (nil disables them);
// partitions open every cfg.PartitionEvery steps for cfg.PartitionFor
// steps, cutting off a random cfg.PartitionFrac fraction of peers.
func BuildSchedule(n int, cfg Config, seed int64) *Schedule {
	s := &Schedule{N: n, Steps: cfg.Steps}
	if cfg.Steps <= 0 {
		return s
	}
	rng := rand.New(rand.NewSource(seed))
	if cfg.Churn != nil {
		st := churn.NewState(n, *cfg.Churn, rng)
		for step := 1; step <= cfg.Steps; step++ {
			off, on := st.Step(step)
			for _, u := range off {
				s.Ev = append(s.Ev, Event{Step: step, Kind: EvCrash, Peer: int32(u), Part: -1})
			}
			for _, u := range on {
				s.Ev = append(s.Ev, Event{Step: step, Kind: EvRestart, Peer: int32(u), Part: -1})
			}
		}
	}
	if cfg.PartitionEvery > 0 && cfg.PartitionFor > 0 {
		frac := cfg.PartitionFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.3
		}
		part := 0
		for t := cfg.PartitionEvery; t < cfg.Steps; t += cfg.PartitionEvery {
			k := int(frac * float64(n))
			if k < 1 {
				k = 1
			}
			perm := rng.Perm(n)[:k]
			side := make([]int32, k)
			for i, p := range perm {
				side[i] = int32(p)
			}
			sort.Slice(side, func(i, j int) bool { return side[i] < side[j] })
			heal := t + cfg.PartitionFor
			if heal > cfg.Steps {
				heal = cfg.Steps
			}
			s.Ev = append(s.Ev,
				Event{Step: t, Kind: EvPartitionStart, Peer: -1, Part: part, Side: side},
				Event{Step: heal, Kind: EvPartitionHeal, Peer: -1, Part: part})
			part++
		}
	}
	// Canonical order: by step, then kind, then peer/part — so the trace
	// is diffable across runs regardless of generation order.
	sort.SliceStable(s.Ev, func(i, j int) bool {
		a, b := s.Ev[i], s.Ev[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Part < b.Part
	})
	return s
}

// Trace renders the schedule as canonical text, one event per line —
// the artifact reproducibility tests diff between same-seed runs.
func (s *Schedule) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule n=%d steps=%d events=%d\n", s.N, s.Steps, len(s.Ev))
	for _, e := range s.Ev {
		switch e.Kind {
		case EvCrash, EvRestart:
			fmt.Fprintf(&b, "step=%d %s peer=%d\n", e.Step, e.Kind, e.Peer)
		case EvPartitionStart:
			fmt.Fprintf(&b, "step=%d %s id=%d side=%v\n", e.Step, e.Kind, e.Part, e.Side)
		case EvPartitionHeal:
			fmt.Fprintf(&b, "step=%d %s id=%d\n", e.Step, e.Kind, e.Part)
		}
	}
	return b.String()
}

// window is a half-open step interval [start, end).
type window struct{ start, end int }

func (w window) contains(step int) bool { return step >= w.start && step < w.end }

// partWindow is an active partition interval with its minority side.
type partWindow struct {
	window
	side map[int32]bool
}

// compiled is the schedule lowered to per-peer crash windows and
// partition windows for O(windows-per-peer) lookup on the send path.
type compiled struct {
	crash map[int32][]window
	parts []partWindow
}

func (s *Schedule) compile() compiled {
	c := compiled{crash: make(map[int32][]window)}
	open := make(map[int32]int) // peer -> crash start
	partOpen := make(map[int]partWindow)
	for _, e := range s.Ev {
		switch e.Kind {
		case EvCrash:
			open[e.Peer] = e.Step
		case EvRestart:
			if start, ok := open[e.Peer]; ok {
				c.crash[e.Peer] = append(c.crash[e.Peer], window{start, e.Step})
				delete(open, e.Peer)
			}
		case EvPartitionStart:
			side := make(map[int32]bool, len(e.Side))
			for _, p := range e.Side {
				side[p] = true
			}
			partOpen[e.Part] = partWindow{window{e.Step, s.Steps}, side}
		case EvPartitionHeal:
			if pw, ok := partOpen[e.Part]; ok {
				pw.end = e.Step
				c.parts = append(c.parts, pw)
				delete(partOpen, e.Part)
			}
		}
	}
	// Crashes and partitions still open at the horizon stay in effect
	// until the end of the schedule.
	for peer, start := range open {
		c.crash[peer] = append(c.crash[peer], window{start, s.Steps})
	}
	for _, pw := range partOpen {
		c.parts = append(c.parts, pw)
	}
	return c
}

func (c *compiled) crashedAt(step int, peer int32) bool {
	for _, w := range c.crash[peer] {
		if w.contains(step) {
			return true
		}
	}
	return false
}

func (c *compiled) partitionedAt(step int, a, b int32) bool {
	for _, pw := range c.parts {
		if pw.contains(step) && pw.side[a] != pw.side[b] {
			return true
		}
	}
	return false
}
