// Package des is a discrete-event fluid-flow simulator for dissemination
// transfers: every tree edge becomes a flow whose rate is the bottleneck
// of the sender's (equally shared) upload capacity and the receiver's
// download capacity, and rates are recomputed whenever a transfer starts
// or finishes. It refines internal/netmodel's closed-form estimate — the
// closed form assumes a node's child transfers all start together and run
// at a fixed share, while the event simulation lets early-finishing
// transfers release capacity to the remaining ones, like real TCP flows.
//
// The §IV-D observation (total time for simultaneous sends grows linearly
// with the connection count) and Fig. 7's store-and-forward dissemination
// both run on this engine as well; experiments can cross-check the two
// models.
package des

import (
	"container/heap"
	"fmt"
	"math"

	"selectps/internal/netmodel"
	"selectps/internal/socialgraph"
)

// transfer is one in-flight flow.
type transfer struct {
	from, to  socialgraph.NodeID
	remaining float64 // bytes left
	rate      float64 // current bytes/s
	started   bool
	startAt   float64 // when the flow may start (sender finished receiving + latency)
	done      bool
}

// event is a moment the flow set changes.
type event struct {
	at   float64
	kind eventKind
	tr   *transfer
}

type eventKind uint8

const (
	evStart eventKind = iota
	evFinishProbe
)

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Result reports a simulated dissemination.
type Result struct {
	// Completion is l(b, S_b): the time the last receiver finishes.
	Completion float64
	// ReceiveAt[v] is when v finished receiving (Inf if unreached).
	ReceiveAt []float64
}

// SimulateTree runs a store-and-forward dissemination of `bytes` over the
// routing tree given as children lists, using the bandwidth/latency model.
// A node starts sending to all its children once it has fully received the
// payload; its upload is shared equally among its currently active
// transfers, each additionally capped by the receiver's download rate.
func SimulateTree(m *netmodel.Model, root socialgraph.NodeID, children [][]socialgraph.NodeID, bytes float64) (Result, error) {
	n := len(children)
	if int(root) >= n || root < 0 {
		return Result{}, fmt.Errorf("des: root %d out of range", root)
	}
	recvAt := make([]float64, n)
	for i := range recvAt {
		recvAt[i] = math.Inf(1)
	}
	recvAt[root] = 0

	// Build transfers in BFS order; child transfers become startable when
	// the parent has received.
	transfers := make(map[socialgraph.NodeID][]*transfer) // sender -> flows
	var all []*transfer
	queue := []socialgraph.NodeID{root}
	seen := map[socialgraph.NodeID]bool{root: true}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range children[u] {
			if seen[v] {
				return Result{}, fmt.Errorf("des: node %d appears twice in the tree", v)
			}
			seen[v] = true
			tr := &transfer{from: u, to: v, remaining: bytes}
			transfers[u] = append(transfers[u], tr)
			all = append(all, tr)
			queue = append(queue, v)
		}
	}

	var q eventQueue
	now := 0.0
	active := make(map[socialgraph.NodeID][]*transfer) // sender -> running flows

	// recompute assigns rates to all active flows (equal share of sender's
	// upload, capped by receiver download) and queues a finish probe for
	// the earliest finisher.
	recompute := func() {
		var soonest float64 = math.Inf(1)
		var soonestTr *transfer
		for sender, flows := range active {
			k := 0
			for _, tr := range flows {
				if !tr.done {
					k++
				}
			}
			if k == 0 {
				continue
			}
			share := m.Upload(sender) / float64(k)
			for _, tr := range flows {
				if tr.done {
					continue
				}
				tr.rate = math.Min(share, m.Download(tr.to))
				if tr.rate <= 0 {
					continue
				}
				if eta := now + tr.remaining/tr.rate; eta < soonest {
					soonest, soonestTr = eta, tr
				}
			}
		}
		if soonestTr != nil {
			heap.Push(&q, event{at: soonest, kind: evFinishProbe, tr: soonestTr})
		}
	}

	// drain advances remaining bytes of all active flows from `from` to
	// `to` time.
	drain := func(from, to float64) {
		dt := to - from
		if dt <= 0 {
			return
		}
		for _, flows := range active {
			for _, tr := range flows {
				if !tr.done {
					tr.remaining -= tr.rate * dt
				}
			}
		}
	}

	// Seed: root's child transfers start after per-link latency.
	for _, tr := range transfers[root] {
		tr.startAt = m.Latency(tr.from, tr.to)
		heap.Push(&q, event{at: tr.startAt, kind: evStart, tr: tr})
	}

	finished := 0
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		drain(now, e.at)
		now = e.at
		switch e.kind {
		case evStart:
			if !e.tr.started && !e.tr.done {
				e.tr.started = true
				active[e.tr.from] = append(active[e.tr.from], e.tr)
			}
			recompute()
		case evFinishProbe:
			tr := e.tr
			if tr.done || !tr.started {
				recompute()
				continue
			}
			if tr.remaining > 1e-6 {
				// Rates changed since the probe was queued; re-probe.
				recompute()
				continue
			}
			tr.done = true
			finished++
			recvAt[tr.to] = now
			// The receiver begins forwarding to its own children.
			for _, next := range transfers[tr.to] {
				next.startAt = now + m.Latency(next.from, next.to)
				heap.Push(&q, event{at: next.startAt, kind: evStart, tr: next})
			}
			recompute()
		}
	}
	if finished != len(all) {
		return Result{}, fmt.Errorf("des: only %d of %d transfers completed", finished, len(all))
	}
	completion := 0.0
	for _, tr := range all {
		if recvAt[tr.to] > completion {
			completion = recvAt[tr.to]
		}
	}
	return Result{Completion: completion, ReceiveAt: recvAt}, nil
}

// SimulateStar runs the §IV-D experiment on the event engine: one sender,
// k simultaneous transfers, returns the completion time of the last.
func SimulateStar(m *netmodel.Model, center socialgraph.NodeID, targets []socialgraph.NodeID, bytes float64) (float64, error) {
	n := m.N()
	children := make([][]socialgraph.NodeID, n)
	children[center] = append([]socialgraph.NodeID(nil), targets...)
	res, err := SimulateTree(m, center, children, bytes)
	if err != nil {
		return 0, err
	}
	return res.Completion, nil
}
