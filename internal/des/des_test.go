package des

import (
	"math"
	"math/rand"
	"testing"

	"selectps/internal/netmodel"
)

// uniformModel builds a model with negligible jitter so rates are
// predictable from the tier mix.
func uniformModel(n int, seed int64) *netmodel.Model {
	return netmodel.New(n, netmodel.Config{
		Tiers:  []netmodel.Tier{{Name: "t", UploadBps: 1e6, DownloadBps: 8e6, Weight: 1}},
		Jitter: 1e-12,
	}, rand.New(rand.NewSource(seed)))
}

func TestSingleTransferMatchesClosedForm(t *testing.T) {
	m := uniformModel(2, 1)
	children := [][]int32{{1}, {}}
	res, err := SimulateTree(m, 0, children, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := m.TransferTime(0, 1, 1e6, 1)
	if math.Abs(res.Completion-want) > 1e-6 {
		t.Errorf("completion %v, want %v", res.Completion, want)
	}
}

func TestEqualShareStar(t *testing.T) {
	// k equal receivers: all finish together at latency + bytes/(up/k);
	// same as the closed form when nothing finishes early.
	m := uniformModel(5, 2)
	targets := []int32{1, 2, 3, 4}
	got, err := SimulateStar(m, 0, targets, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := m.SimultaneousSend(0, targets, 1e6)
	// Latencies differ per pair; the slowest pair dominates both models.
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("star completion %v, closed form %v", got, want)
	}
}

func TestChainStoreAndForward(t *testing.T) {
	m := uniformModel(4, 3)
	children := [][]int32{{1}, {2}, {3}, {}}
	res, err := SimulateTree(m, 0, children, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Chain must be sequential: each hop ~1s serialization + latency.
	if !(res.ReceiveAt[1] < res.ReceiveAt[2] && res.ReceiveAt[2] < res.ReceiveAt[3]) {
		t.Errorf("chain not monotone: %v", res.ReceiveAt)
	}
	want, _ := m.DisseminationLatency(0, children, 1e6)
	if math.Abs(res.Completion-want) > 0.05*want {
		t.Errorf("chain completion %v, closed form %v", res.Completion, want)
	}
}

func TestEarlyFinishReleasesCapacity(t *testing.T) {
	// One fast receiver (high download) and one slow receiver (download
	// below its initial share): when the slow one is capped by its own
	// download, the fast one takes the leftover capacity and finishes
	// earlier than the naive equal-share estimate.
	m := netmodel.New(3, netmodel.Config{
		Tiers:  []netmodel.Tier{{Name: "t", UploadBps: 2e6, DownloadBps: 2e6, Weight: 1}},
		Jitter: 1e-12,
	}, rand.New(rand.NewSource(4)))
	// Closed form: each child gets 1e6 shared up; transfer ~1s for 1e6B.
	closed := m.SimultaneousSend(0, []int32{1, 2}, 1e6)
	got, err := SimulateStar(m, 0, []int32{1, 2}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// With equal receivers the two should agree.
	if math.Abs(got-closed) > 0.05*closed {
		t.Errorf("equal receivers: des %v vs closed %v", got, closed)
	}
}

func TestStarLinearGrowth(t *testing.T) {
	m := uniformModel(101, 5)
	mk := func(k int) []int32 {
		out := make([]int32, k)
		for i := range out {
			out[i] = int32(i + 1)
		}
		return out
	}
	t5, err := SimulateStar(m, 0, mk(5), 1.2e6)
	if err != nil {
		t.Fatal(err)
	}
	t50, err := SimulateStar(m, 0, mk(50), 1.2e6)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := t50 / t5; ratio < 8 || ratio > 12 {
		t.Errorf("linear growth violated: ratio %v", ratio)
	}
}

func TestErrors(t *testing.T) {
	m := uniformModel(3, 6)
	if _, err := SimulateTree(m, 5, make([][]int32, 3), 1); err == nil {
		t.Error("out-of-range root accepted")
	}
	// Node appearing twice (not a tree).
	children := [][]int32{{1, 2}, {2}, {}}
	if _, err := SimulateTree(m, 0, children, 1); err == nil {
		t.Error("non-tree accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	m := uniformModel(2, 7)
	res, err := SimulateTree(m, 0, make([][]int32, 2), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion != 0 {
		t.Errorf("empty tree completion %v", res.Completion)
	}
	if !math.IsInf(res.ReceiveAt[1], 1) {
		t.Errorf("unreached node has finite time")
	}
}

func TestAgreesWithClosedFormOnRealTrees(t *testing.T) {
	// On heterogeneous models the event engine can only be faster or equal
	// (early finishers release capacity); it must never be slower than the
	// closed form by more than numerical tolerance... actually the closed
	// form underestimates pipelining stalls is impossible by construction:
	// both models start children after full receipt. Check the engine is
	// within [0.3x, 1.05x] of the closed form on random trees.
	m := netmodel.New(40, netmodel.Config{}, rand.New(rand.NewSource(8)))
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		// Random tree over 40 nodes rooted at 0.
		children := make([][]int32, 40)
		perm := rng.Perm(40)
		for i := 1; i < 40; i++ {
			parent := perm[rng.Intn(i)]
			children[parent] = append(children[parent], int32(perm[i]))
		}
		root := int32(perm[0])
		res, err := SimulateTree(m, root, children, 1.2e6)
		if err != nil {
			t.Fatal(err)
		}
		closed, _ := m.DisseminationLatency(root, children, 1.2e6)
		if res.Completion > closed*1.05+1e-9 {
			t.Errorf("trial %d: des %.3f slower than closed form %.3f", trial, res.Completion, closed)
		}
		if res.Completion < closed*0.3 {
			t.Errorf("trial %d: des %.3f implausibly below closed form %.3f", trial, res.Completion, closed)
		}
	}
}
