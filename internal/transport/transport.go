// Package transport moves wire messages between live peers. Two
// implementations stand in for the paper's WebRTC data channels
// (DESIGN.md §2): an in-process switchboard with optional emulated latency
// (the default for experiments — deterministic and fast), and real TCP
// sockets on the loopback interface (demonstrating that the node runtime
// speaks an actual network protocol).
package transport

import (
	"fmt"
	"sync"
	"time"

	"selectps/internal/wire"
)

// Envelope is a received message.
type Envelope struct {
	Msg *wire.Message
}

// Transport delivers messages between peers. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Send delivers m to peer `to` asynchronously. Errors are best-effort:
	// a send to a closed or unknown peer reports failure, but delivery is
	// not guaranteed even on nil error (the network may drop it).
	Send(to int32, m *wire.Message) error
	// Inbox returns the receive channel for peer `owner`. The channel is
	// closed when the transport shuts down.
	Inbox(owner int32) <-chan Envelope
	// Close shuts the transport down and closes all inboxes.
	Close()
}

// Switchboard is the in-memory transport: per-peer buffered mailboxes,
// optional per-message latency, deterministic when Latency is nil.
type Switchboard struct {
	mu     sync.Mutex
	boxes  map[int32]chan Envelope
	closed bool
	// Latency, when set, returns the delivery delay for a message from →
	// to; delivery happens on a timer goroutine.
	Latency func(from, to int32) time.Duration
	wg      sync.WaitGroup
}

// NewSwitchboard creates mailboxes for peers 0..n-1 with the given buffer
// size per mailbox.
func NewSwitchboard(n, buffer int) *Switchboard {
	s := &Switchboard{boxes: make(map[int32]chan Envelope, n)}
	for i := 0; i < n; i++ {
		s.boxes[int32(i)] = make(chan Envelope, buffer)
	}
	return s
}

// Send implements Transport.
func (s *Switchboard) Send(to int32, m *wire.Message) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("transport: switchboard closed")
	}
	box, ok := s.boxes[to]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	deliver := func() {
		defer func() {
			// A concurrently closed mailbox is a dropped packet, not a
			// crash — real networks drop packets too.
			_ = recover()
		}()
		select {
		case box <- Envelope{Msg: m}:
		default:
			// Mailbox full: drop, like a congested link.
		}
	}
	if s.Latency != nil {
		d := s.Latency(m.From, to)
		s.wg.Add(1)
		time.AfterFunc(d, func() {
			defer s.wg.Done()
			deliver()
		})
		return nil
	}
	deliver()
	return nil
}

// Inbox implements Transport.
func (s *Switchboard) Inbox(owner int32) <-chan Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boxes[owner]
}

// Close implements Transport.
func (s *Switchboard) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	boxes := s.boxes
	s.mu.Unlock()
	s.wg.Wait() // let in-flight delayed deliveries finish or drop
	for _, b := range boxes {
		close(b)
	}
}
