// Package transport moves wire messages between live peers. Two
// implementations stand in for the paper's WebRTC data channels
// (DESIGN.md §2): an in-process switchboard with optional emulated latency
// (the default for experiments — deterministic and fast), and real TCP
// sockets on the loopback interface (demonstrating that the node runtime
// speaks an actual network protocol).
//
// Both implementations publish their drop/redial accounting through an
// optional obs.Metrics sink, and both compose under faultnet.Wrap for
// chaos testing (DESIGN.md §7).
package transport

import (
	"fmt"
	"sync"
	"time"

	"selectps/internal/obs"
	"selectps/internal/wire"
)

// Envelope is a received message.
type Envelope struct {
	Msg *wire.Message
}

// Transport delivers messages between peers. Implementations must be safe
// for concurrent use.
//
// Drop semantics: Send is best-effort and asynchronous. A non-nil error
// means the message was definitely not sent (unknown peer, transport
// closed, connection failure after retry). A nil error means the message
// was accepted by the network, NOT that it was delivered: implementations
// silently drop messages when the receiver's mailbox is full (congestion)
// or when delivery races a Close. Every silent drop is accounted in the
// implementation's obs.Metrics sink (CDropFullMailbox, CDropClosed) when
// one is attached — there are no unobservable losses.
type Transport interface {
	// Send delivers m to peer `to` asynchronously. See the interface
	// comment for the error and drop contract.
	Send(to int32, m *wire.Message) error
	// Inbox returns the receive channel for peer `owner`. The channel is
	// closed when the transport shuts down.
	Inbox(owner int32) <-chan Envelope
	// Close shuts the transport down and closes all inboxes. Messages
	// still in flight (e.g. on a latency timer) are dropped and counted.
	Close()
}

// Switchboard is the in-memory transport: per-peer buffered mailboxes,
// optional per-message latency, deterministic when Latency is nil.
type Switchboard struct {
	mu     sync.Mutex
	boxes  map[int32]chan Envelope
	closed bool
	// Latency, when set, returns the delivery delay for a message from →
	// to; delivery happens on a timer goroutine.
	Latency func(from, to int32) time.Duration
	// Obs, when set before traffic starts, receives send/drop counters.
	Obs *obs.Metrics
	wg  sync.WaitGroup
}

// NewSwitchboard creates mailboxes for peers 0..n-1 with the given buffer
// size per mailbox.
func NewSwitchboard(n, buffer int) *Switchboard {
	s := &Switchboard{boxes: make(map[int32]chan Envelope, n)}
	for i := 0; i < n; i++ {
		s.boxes[int32(i)] = make(chan Envelope, buffer)
	}
	return s
}

// deliver pushes m into box, counting instead of panicking when it loses
// the race with Close or finds the mailbox full. The mutex (not a
// recover) is what makes the closed-channel send impossible: boxes are
// only closed under mu with closed=true, and deliver never touches a box
// once closed is set.
func (s *Switchboard) deliver(box chan Envelope, m *wire.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Lost the race with Close: a dropped packet, not a crash — real
		// networks drop packets too. Counted, never silent.
		s.Obs.Inc(obs.CDropClosed)
		return
	}
	select {
	case box <- Envelope{Msg: m}:
	default:
		// Mailbox full: drop, like a congested link.
		s.Obs.Inc(obs.CDropFullMailbox)
	}
}

// Send implements Transport.
func (s *Switchboard) Send(to int32, m *wire.Message) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("transport: switchboard closed")
	}
	box, ok := s.boxes[to]
	if ok && s.Latency != nil {
		// Register the timer while still holding the lock so Close's
		// wg.Wait cannot start between the closed check and the Add.
		s.wg.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	s.Obs.Inc(obs.CTransportSend)
	if s.Latency != nil {
		d := s.Latency(m.From, to)
		time.AfterFunc(d, func() {
			defer s.wg.Done()
			s.deliver(box, m)
		})
		return nil
	}
	s.deliver(box, m)
	return nil
}

// Inbox implements Transport.
func (s *Switchboard) Inbox(owner int32) <-chan Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.boxes[owner]
}

// Close implements Transport. Delayed messages still on their latency
// timer are dropped and counted as closed drops.
func (s *Switchboard) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait() // in-flight timers fire, see closed, and count their drop
	s.mu.Lock()
	for _, b := range s.boxes {
		close(b)
	}
	s.mu.Unlock()
}
