// Package transport moves wire messages between live peers. Two
// implementations stand in for the paper's WebRTC data channels
// (DESIGN.md §2): an in-process switchboard with optional emulated latency
// (the default for experiments — deterministic and fast), and real TCP
// sockets on the loopback interface (demonstrating that the node runtime
// speaks an actual network protocol).
//
// Both implementations publish their drop/redial accounting through an
// optional obs.Metrics sink, and both compose under faultnet.Wrap for
// chaos testing (DESIGN.md §7).
package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"selectps/internal/obs"
	"selectps/internal/wire"
)

// Envelope is a received message. To is the peer the envelope was
// delivered to — on a shared (multiplexed) inbox it is what routes the
// message to the owning node, since Msg.To may name a final destination
// further along the forwarding path.
type Envelope struct {
	Msg *wire.Message
	To  int32
	// At is the enqueue instant; receivers derive queueing delay
	// (obs sojourn histogram) from it. Zero when a transport doesn't
	// stamp it.
	At time.Time
}

// Transport delivers messages between peers. Implementations must be safe
// for concurrent use.
//
// Drop semantics: Send is best-effort and asynchronous. A non-nil error
// means the message was definitely not sent (unknown peer, transport
// closed, connection failure after retry). A nil error means the message
// was accepted by the network, NOT that it was delivered: implementations
// silently drop messages when the receiver's mailbox is full (congestion)
// or when delivery races a Close. Every silent drop is accounted in the
// implementation's obs.Metrics sink (CDropFullMailbox, CDropClosed) when
// one is attached — there are no unobservable losses.
type Transport interface {
	// Send delivers m to peer `to` asynchronously. See the interface
	// comment for the error and drop contract.
	Send(to int32, m *wire.Message) error
	// Inbox returns the receive channel for peer `owner`. The channel is
	// closed when the transport shuts down.
	Inbox(owner int32) <-chan Envelope
	// Close shuts the transport down and closes all inboxes. Messages
	// still in flight (e.g. on a latency timer) are dropped and counted.
	Close()
}

// FrameSender is the optional fan-out fast path (DESIGN.md §10):
// transports whose wire format IS the marshaled frame (TCP) accept a
// pre-encoded frame directly, so a sender fanning one message out to many
// destinations marshals once and patches the To field per recipient
// (wire.PatchTo) instead of re-marshaling. The frame must be a full
// self-delimited wire frame (length prefix included) whose From field is
// `from`; the transport copies it before returning, so the caller may
// patch and reuse the buffer immediately.
//
// The switchboard deliberately does not implement FrameSender — it hands
// receivers the *wire.Message pointer itself, each recipient needs its
// own instance, and Switchboard-based tests stay byte-deterministic.
// Fault middleware (faultnet) doesn't either, so wrapped transports fall
// back to the per-message path and every copy stays subject to injection.
type FrameSender interface {
	SendFrame(from, to int32, frame []byte) error
}

// InboxMux is the multiplexable form of inbox registration (DESIGN.md
// §11): a receiver that owns many peers — a shard of the event-loop
// runtime — binds them all to ONE shared channel and drains it from a
// single select, instead of holding one goroutine per Inbox channel.
// Envelopes carry To so the receiver can dispatch to the owning peer.
//
// BindInbox must be called before traffic for `owner` starts and returns
// false when this transport cannot multiplex (the caller falls back to
// draining Inbox(owner) itself). A bound shared channel is never closed
// by the transport — it is owned by the binder, which must keep draining
// it (or accept counted full-mailbox drops) until the transport closes.
// Middleware that wraps another transport (faultnet) forwards the call
// and reports the inner transport's capability.
type InboxMux interface {
	BindInbox(owner int32, ch chan Envelope) bool
}

// BatchInboxMux is the bulk form of InboxMux (DESIGN.md §15): the
// transport delivers *[]Envelope slices — pooled via GetEnvelopeBatch /
// PutEnvelopeBatch — so a burst of inbound frames costs one channel send
// and one receiver wakeup instead of one per frame. The receiver owns a
// delivered batch and must return it with PutEnvelopeBatch once drained.
//
// BindInboxBatch follows the BindInbox contract (call before traffic,
// false means fall back to BindInbox/Inbox, the channel is binder-owned
// and never closed by the transport). Fault middleware (faultnet) does
// not implement it, so wrapped transports fall back to the per-envelope
// path — chaos schedules and canonical Trace() output stay byte-identical,
// the same opt-out FrameSender uses.
type BatchInboxMux interface {
	BindInboxBatch(owner int32, ch chan *[]Envelope) bool
}

// ingressBatchMax caps how many envelopes one bulk-ingress batch
// carries; it mirrors sendBatchMax on the TCP write side.
const ingressBatchMax = 64

var envBatchPool = sync.Pool{New: func() any {
	s := make([]Envelope, 0, ingressBatchMax)
	return &s
}}

// GetEnvelopeBatch returns a pooled, zero-length envelope slice for bulk
// ingress. Return it with PutEnvelopeBatch once every envelope has been
// consumed.
func GetEnvelopeBatch() *[]Envelope {
	return envBatchPool.Get().(*[]Envelope)
}

// PutEnvelopeBatch recycles a batch obtained from GetEnvelopeBatch,
// clearing the entries so pooled slices never pin Message memory.
func PutEnvelopeBatch(b *[]Envelope) {
	if b == nil || cap(*b) > 4*ingressBatchMax {
		return
	}
	for i := range *b {
		(*b)[i] = Envelope{}
	}
	*b = (*b)[:0]
	envBatchPool.Put(b)
}

// swBox is one peer's mailbox with its own close state: senders to
// different peers share nothing, so fan-out to distinct receivers no
// longer serializes on a transport-global mutex. The per-peer channel is
// allocated lazily on the first Inbox call — a peer bound to a shared
// shard channel (BindInbox) never allocates one, which is what keeps a
// 4000-peer switchboard from holding 4000 buffered channels nobody
// reads.
type swBox struct {
	mu          sync.Mutex
	ch          chan Envelope    // lazily allocated by Inbox
	shared      chan Envelope    // set by BindInbox; takes precedence over ch
	sharedBatch chan *[]Envelope // set by BindInboxBatch; takes precedence over both
	closed      bool
}

// Switchboard is the in-memory transport: per-peer buffered mailboxes,
// optional per-message latency, deterministic when Latency is nil. The
// mailbox set is immutable after construction (peers 0..n-1), so Send
// reaches a mailbox by slice index and takes only that mailbox's lock.
type Switchboard struct {
	boxes  []*swBox
	buffer int
	closed atomic.Bool
	// timerMu serializes latency-timer registration against Close's
	// wg.Wait (the only remaining cross-peer lock, off the synchronous
	// path entirely).
	timerMu sync.Mutex
	// inflight counts latency-delayed deliveries not yet completed —
	// the switchboard's transport-owned concurrency (each one briefly
	// becomes a timer goroutine when it fires), reported by InFlight
	// for runtime-scale goroutine budgets.
	inflight atomic.Int64
	// Latency, when set, returns the delivery delay for a message from →
	// to; delivery happens on a timer goroutine.
	Latency func(from, to int32) time.Duration
	// Obs, when set before traffic starts, receives send/drop counters.
	Obs *obs.Metrics
	wg  sync.WaitGroup
}

// NewSwitchboard creates mailboxes for peers 0..n-1 with the given buffer
// size per mailbox. Per-peer channels are allocated on first use (Inbox);
// peers bound to a shared channel never allocate one.
func NewSwitchboard(n, buffer int) *Switchboard {
	s := &Switchboard{boxes: make([]*swBox, n), buffer: buffer}
	for i := range s.boxes {
		s.boxes[i] = &swBox{}
	}
	return s
}

// deliver pushes m into box, counting instead of panicking when it loses
// the race with Close or finds the mailbox full. The per-box mutex (not a
// recover) is what makes the closed-channel send impossible: a box is
// only closed under its own lock with closed=true, and deliver never
// touches the channel once the flag is set.
func (s *Switchboard) deliver(box *swBox, owner int32, m *wire.Message) {
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.closed || s.closed.Load() {
		// Lost the race with Close (the global flag catches latency
		// timers firing during the drain, before boxes close): a dropped
		// packet, not a crash — real networks drop packets too. Counted,
		// never silent.
		s.Obs.Inc(obs.CDropClosed)
		return
	}
	if bch := box.sharedBatch; bch != nil {
		// Bulk-bound receiver: the switchboard delivers synchronously, so
		// each send is a batch of one — the uniform *[]Envelope mailbox is
		// what lets the shard drain switchboard and TCP traffic through
		// the same bulk path.
		nb := GetEnvelopeBatch()
		*nb = append(*nb, Envelope{Msg: m, To: owner, At: time.Now()})
		select {
		case bch <- nb:
			s.Obs.Inc(obs.CIngressBatch)
		default:
			PutEnvelopeBatch(nb)
			s.Obs.Inc(obs.CDropFullMailbox)
		}
		return
	}
	ch := box.shared
	if ch == nil {
		if box.ch == nil {
			box.ch = make(chan Envelope, s.buffer)
		}
		ch = box.ch
	}
	select {
	case ch <- Envelope{Msg: m, To: owner, At: time.Now()}:
	default:
		// Mailbox full: drop, like a congested link.
		s.Obs.Inc(obs.CDropFullMailbox)
	}
}

// Send implements Transport.
func (s *Switchboard) Send(to int32, m *wire.Message) error {
	if s.closed.Load() {
		return fmt.Errorf("transport: switchboard closed")
	}
	if to < 0 || int(to) >= len(s.boxes) {
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	box := s.boxes[to]
	s.Obs.Inc(obs.CTransportSend)
	if s.Latency != nil {
		// Register the timer while holding timerMu so Close's wg.Wait
		// cannot start between the closed check and the Add.
		s.timerMu.Lock()
		if s.closed.Load() {
			s.timerMu.Unlock()
			return fmt.Errorf("transport: switchboard closed")
		}
		s.wg.Add(1)
		s.inflight.Add(1)
		s.timerMu.Unlock()
		d := s.Latency(m.From, to)
		time.AfterFunc(d, func() {
			defer s.wg.Done()
			defer s.inflight.Add(-1)
			s.deliver(box, to, m)
		})
		return nil
	}
	s.deliver(box, to, m)
	return nil
}

// InFlight reports how many latency-delayed deliveries are pending —
// the switchboard's contribution to a runtime-scale goroutine budget
// (zero when Latency is unset: undelayed delivery is synchronous).
func (s *Switchboard) InFlight() int {
	return int(s.inflight.Load())
}

// Inbox implements Transport, allocating the per-peer channel on first
// call.
func (s *Switchboard) Inbox(owner int32) <-chan Envelope {
	if owner < 0 || int(owner) >= len(s.boxes) {
		return nil
	}
	box := s.boxes[owner]
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.ch == nil {
		box.ch = make(chan Envelope, s.buffer)
	}
	return box.ch
}

// BindInbox implements InboxMux: peer owner's traffic is routed into ch
// instead of its private channel. See the interface contract for
// ownership and close semantics.
func (s *Switchboard) BindInbox(owner int32, ch chan Envelope) bool {
	if owner < 0 || int(owner) >= len(s.boxes) {
		return false
	}
	box := s.boxes[owner]
	box.mu.Lock()
	box.shared = ch
	box.mu.Unlock()
	return true
}

// BindInboxBatch implements BatchInboxMux: peer owner's traffic is
// delivered as pooled single-envelope batches into ch. See the interface
// contract for ownership and close semantics.
func (s *Switchboard) BindInboxBatch(owner int32, ch chan *[]Envelope) bool {
	if owner < 0 || int(owner) >= len(s.boxes) {
		return false
	}
	box := s.boxes[owner]
	box.mu.Lock()
	box.sharedBatch = ch
	box.mu.Unlock()
	return true
}

// Close implements Transport. Delayed messages still on their latency
// timer are dropped and counted as closed drops.
func (s *Switchboard) Close() {
	s.timerMu.Lock()
	already := s.closed.Swap(true)
	s.timerMu.Unlock()
	if already {
		return
	}
	s.wg.Wait() // in-flight timers fire, see closed, and count their drop
	for _, box := range s.boxes {
		box.mu.Lock()
		box.closed = true
		if box.ch != nil {
			close(box.ch) // shared channels are binder-owned, never closed here
		}
		box.mu.Unlock()
	}
}
