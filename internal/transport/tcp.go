package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"selectps/internal/obs"
	"selectps/internal/wire"
)

// defaultWriteTimeout bounds how long a Send may block on a wedged
// connection before it is evicted and retried.
const defaultWriteTimeout = 5 * time.Second

// TCP is a loopback TCP transport: every peer listens on its own port and
// frames wire messages with the 4-byte length prefix wire.Marshal emits.
// Connections are opened lazily per (sender, receiver) pair and reused; a
// failed or timed-out write evicts the cached connection so the next send
// redials instead of poisoning the pair forever, and Send itself retries
// once on a fresh connection before reporting failure.
type TCP struct {
	mu        sync.Mutex
	addrs     map[int32]string
	conns     map[connKey]net.Conn
	evicted   map[connKey]bool // keys whose cached conn died (next dial is a redial)
	boxes     map[int32]chan Envelope
	listeners []net.Listener
	closed    bool
	wg        sync.WaitGroup

	// WriteTimeout bounds each frame write (default 5s; negative disables).
	WriteTimeout time.Duration
	// Obs, when set before traffic starts, receives send/drop/redial
	// counters.
	Obs *obs.Metrics
}

type connKey struct{ from, to int32 }

// NewTCP starts one loopback listener per peer 0..n-1 and returns the
// transport. Close releases all sockets.
func NewTCP(n, buffer int) (*TCP, error) {
	t := &TCP{
		addrs:   make(map[int32]string, n),
		conns:   make(map[connKey]net.Conn),
		evicted: make(map[connKey]bool),
		boxes:   make(map[int32]chan Envelope, n),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[int32(i)] = ln.Addr().String()
		t.boxes[int32(i)] = make(chan Envelope, buffer)
		t.wg.Add(1)
		go t.acceptLoop(ln, int32(i))
	}
	return t, nil
}

func (t *TCP) acceptLoop(ln net.Listener, owner int32) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn, owner)
	}
}

func (t *TCP) readLoop(conn net.Conn, owner int32) {
	defer t.wg.Done()
	defer conn.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size == 0 || size > 1<<24 {
			return // malformed frame
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		m, err := wire.Unmarshal(body)
		if err != nil {
			return
		}
		// Boxes are closed only after wg.Wait in Close, and this loop is
		// wg-registered, so the channel send below can never hit a closed
		// channel; the closed flag is checked for accounting only.
		t.mu.Lock()
		box, ok := t.boxes[owner]
		closed := t.closed
		t.mu.Unlock()
		if !ok || closed {
			t.Obs.Inc(obs.CDropClosed)
			return
		}
		select {
		case box <- Envelope{Msg: m}:
		default: // congested: drop, counted
			t.Obs.Inc(obs.CDropFullMailbox)
		}
	}
}

// dial opens a connection for key, counting it as a redial when the
// previous cached connection for this pair was evicted after a failure.
// It caches the winner when two sends race to dial the same pair.
func (t *TCP) dial(key connKey, addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d: %w", key.to, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("transport: tcp closed")
	}
	if t.evicted[key] {
		delete(t.evicted, key)
		t.Obs.Inc(obs.CTCPRedial)
	} else {
		t.Obs.Inc(obs.CTCPDial)
	}
	if existing := t.conns[key]; existing != nil {
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	t.conns[key] = conn
	t.mu.Unlock()
	return conn, nil
}

// evict removes a dead connection from the cache so the next send for
// this pair redials instead of reusing the poisoned socket.
func (t *TCP) evict(key connKey, conn net.Conn) {
	t.mu.Lock()
	if t.conns[key] == conn {
		delete(t.conns, key)
		t.evicted[key] = true
	}
	t.mu.Unlock()
	conn.Close()
	t.Obs.Inc(obs.CTCPWriteError)
}

// Send implements Transport. A failed write evicts the cached connection
// and retries once on a freshly dialed one; writes carry a deadline so a
// wedged peer cannot block the sender forever.
func (t *TCP) Send(to int32, m *wire.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: tcp closed")
	}
	addr, ok := t.addrs[to]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	key := connKey{m.From, to}
	conn := t.conns[key]
	t.mu.Unlock()

	t.Obs.Inc(obs.CTransportSend)
	data := wire.Marshal(m)
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if conn == nil {
			var err error
			conn, err = t.dial(key, addr)
			if err != nil {
				return err
			}
		}
		if wt := t.writeTimeout(); wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		_, err := conn.Write(data)
		if err == nil {
			return nil
		}
		lastErr = err
		t.evict(key, conn)
		conn = nil
	}
	return fmt.Errorf("transport: write to %d: %w", to, lastErr)
}

func (t *TCP) writeTimeout() time.Duration {
	switch {
	case t.WriteTimeout < 0:
		return 0
	case t.WriteTimeout == 0:
		return defaultWriteTimeout
	default:
		return t.WriteTimeout
	}
}

// Inbox implements Transport.
func (t *TCP) Inbox(owner int32) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.boxes[owner]
}

// Close implements Transport.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	listeners := t.listeners
	conns := t.conns
	t.conns = map[connKey]net.Conn{}
	t.mu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	t.mu.Lock()
	for _, b := range t.boxes {
		close(b)
	}
	t.mu.Unlock()
}
