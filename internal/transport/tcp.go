package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"selectps/internal/wire"
)

// TCP is a loopback TCP transport: every peer listens on its own port and
// frames wire messages with the 4-byte length prefix wire.Marshal emits.
// Connections are opened lazily per (sender, receiver) pair and reused.
type TCP struct {
	mu        sync.Mutex
	addrs     map[int32]string
	conns     map[connKey]net.Conn
	boxes     map[int32]chan Envelope
	listeners []net.Listener
	closed    bool
	wg        sync.WaitGroup
}

type connKey struct{ from, to int32 }

// NewTCP starts one loopback listener per peer 0..n-1 and returns the
// transport. Close releases all sockets.
func NewTCP(n, buffer int) (*TCP, error) {
	t := &TCP{
		addrs: make(map[int32]string, n),
		conns: make(map[connKey]net.Conn),
		boxes: make(map[int32]chan Envelope, n),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[int32(i)] = ln.Addr().String()
		t.boxes[int32(i)] = make(chan Envelope, buffer)
		t.wg.Add(1)
		go t.acceptLoop(ln, int32(i))
	}
	return t, nil
}

func (t *TCP) acceptLoop(ln net.Listener, owner int32) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn, owner)
	}
}

func (t *TCP) readLoop(conn net.Conn, owner int32) {
	defer t.wg.Done()
	defer conn.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size == 0 || size > 1<<24 {
			return // malformed frame
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		m, err := wire.Unmarshal(body)
		if err != nil {
			return
		}
		t.mu.Lock()
		box, ok := t.boxes[owner]
		closed := t.closed
		t.mu.Unlock()
		if !ok || closed {
			return
		}
		func() {
			defer func() { _ = recover() }() // race with Close: drop
			select {
			case box <- Envelope{Msg: m}:
			default: // congested: drop
			}
		}()
	}
}

// Send implements Transport.
func (t *TCP) Send(to int32, m *wire.Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: tcp closed")
	}
	addr, ok := t.addrs[to]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("transport: unknown peer %d", to)
	}
	key := connKey{m.From, to}
	conn := t.conns[key]
	t.mu.Unlock()

	if conn == nil {
		var err error
		conn, err = net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("transport: dial %d: %w", to, err)
		}
		t.mu.Lock()
		if existing := t.conns[key]; existing != nil {
			t.mu.Unlock()
			conn.Close()
			conn = existing
		} else {
			t.conns[key] = conn
			t.mu.Unlock()
		}
	}
	if _, err := conn.Write(wire.Marshal(m)); err != nil {
		t.mu.Lock()
		delete(t.conns, key)
		t.mu.Unlock()
		conn.Close()
		return fmt.Errorf("transport: write to %d: %w", to, err)
	}
	return nil
}

// Inbox implements Transport.
func (t *TCP) Inbox(owner int32) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.boxes[owner]
}

// Close implements Transport.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	listeners := t.listeners
	conns := t.conns
	t.conns = map[connKey]net.Conn{}
	t.mu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	t.mu.Lock()
	for _, b := range t.boxes {
		close(b)
	}
	t.mu.Unlock()
}
