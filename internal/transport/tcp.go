package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"selectps/internal/obs"
	"selectps/internal/wire"
)

// defaultWriteTimeout bounds how long a writer may block on a wedged
// connection before it is evicted and retried.
const defaultWriteTimeout = 5 * time.Second

// defaultSendQueue is the per-peer outbound queue depth when QueueLen is
// unset. A full queue drops the newest frame (counted, never silent) —
// the same best-effort congestion contract as a full receive mailbox.
const defaultSendQueue = 512

// sendBatchMax caps how many queued frames one writer flush coalesces
// into a single syscall.
const sendBatchMax = 64

// maxFrameSize bounds a frame body claimed by the length prefix; anything
// larger (or zero) marks the stream corrupt.
const maxFrameSize = 1 << 24

// bufIOSize sizes the per-connection bufio reader and writer.
const bufIOSize = 64 << 10

// TCP is a loopback TCP transport: every peer listens on its own port and
// frames wire messages with the 4-byte length prefix wire.Marshal emits.
//
// The data plane is asynchronous (DESIGN.md §10): Send marshals into a
// pooled buffer and enqueues it on a bounded per-(sender,receiver) queue;
// a dedicated writer goroutine per queue dials lazily, coalesces whatever
// is queued into one bufio flush, and keeps the evict-and-redial-once
// contract — a failed write evicts the cached connection, redials once,
// and retries the batch before dropping it (counted, never silent).
// Writes carry a deadline so a wedged peer cannot block its writer
// forever. The reader mirrors it: one bufio.Reader and a reused frame
// buffer per inbound connection instead of two raw syscalls and a fresh
// body slice per frame.
type TCP struct {
	mu        sync.Mutex
	addrs     map[int32]string
	writers   map[connKey]*peerWriter
	conns     map[connKey]net.Conn // each writer's current conn (registry for eviction)
	evicted   map[connKey]bool     // keys whose cached conn died (next dial is a redial)
	boxes     map[int32]chan Envelope
	shared    map[int32]chan Envelope    // BindInbox overrides; binder-owned, never closed here
	sharedB   map[int32]chan *[]Envelope // BindInboxBatch overrides; takes precedence over shared
	muxed     atomic.Bool                // any BindInbox seen: disables the inline write path
	listeners []net.Listener
	closed    bool
	stop      chan struct{}
	wg        sync.WaitGroup

	// WriteTimeout bounds each batch write (default 5s; negative disables).
	WriteTimeout time.Duration
	// QueueLen is the per-peer outbound queue depth (default 512). Set
	// before traffic starts.
	QueueLen int
	// Obs, when set before traffic starts, receives send/drop/redial
	// counters and the queue-depth/flush-batch histograms.
	Obs *obs.Metrics
}

type connKey struct{ from, to int32 }

// sparseWriteWindow is the inline fast-path threshold: when the queue is
// empty and nothing was written to this peer within the window, the
// sender writes synchronously instead of waking the writer goroutine. A
// scheduler hop per frame is noise under sustained load (the queue is
// non-empty and the drain loop coalesces), but on a busy single-core
// machine it adds tail latency to sparse control traffic — exactly what
// the heartbeat failure detector reads as missed pings.
//
// The inline path is disabled once any inbox is bound to a shared shard
// channel (BindInbox): under the sharded runtime a Send comes from an
// event-loop goroutine serving many nodes, and one synchronous dial or a
// write against a wedged socket would stall all of them — the writer
// goroutine hop is the cheaper price there.
const sparseWriteWindow = int64(time.Millisecond)

// peerWriter owns the outbound side of one (sender, receiver) pair: a
// bounded frame queue, the goroutine that drains it, and the shared
// socket state both write paths serialize on.
type peerWriter struct {
	t     *TCP
	key   connKey
	addr  string
	queue chan *[]byte

	// wmu serializes socket writes between the drain loop and the inline
	// sparse-traffic fast path; conn/bw are guarded by it.
	wmu  sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	// lastWrite is the UnixNano of the last completed write, read without
	// wmu to decide whether traffic is sparse enough for the inline path.
	lastWrite atomic.Int64
}

// NewTCP starts one loopback listener per peer 0..n-1 and returns the
// transport. Close releases all sockets.
func NewTCP(n, buffer int) (*TCP, error) {
	t := &TCP{
		addrs:   make(map[int32]string, n),
		writers: make(map[connKey]*peerWriter),
		conns:   make(map[connKey]net.Conn),
		evicted: make(map[connKey]bool),
		boxes:   make(map[int32]chan Envelope, n),
		shared:  make(map[int32]chan Envelope),
		sharedB: make(map[int32]chan *[]Envelope),
		stop:    make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[int32(i)] = ln.Addr().String()
		t.boxes[int32(i)] = make(chan Envelope, buffer)
		t.wg.Add(1)
		go t.acceptLoop(ln, int32(i))
	}
	return t, nil
}

func (t *TCP) acceptLoop(ln net.Listener, owner int32) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.readLoop(conn, owner)
	}
}

func (t *TCP) readLoop(conn net.Conn, owner int32) {
	defer t.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, bufIOSize)
	var lenBuf [4]byte
	var body []byte // reused across frames; decoded Messages never alias it
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrameSize {
			// A corrupt length prefix means framing is lost for good on
			// this stream. Kill it loudly: count it, and fail the cached
			// sender-side connection so the next Send redials instead of
			// writing into a pipe nobody decodes anymore.
			t.Obs.Inc(obs.CTCPOversizeFrame)
			t.evictByRemote(conn.RemoteAddr())
			return
		}
		if cap(body) < int(size) {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		m := &wire.Message{} // the receiver owns the Message; never reused
		if err := wire.UnmarshalInto(m, body); err != nil {
			t.Obs.Inc(obs.CTCPMalformedFrame)
			t.evictByRemote(conn.RemoteAddr())
			return
		}
		// Boxes are closed only after wg.Wait in Close, and this loop is
		// wg-registered, so the channel send below can never hit a closed
		// channel; the closed flag is checked for accounting only.
		t.mu.Lock()
		bbox, bok := t.sharedB[owner]
		box, ok := t.shared[owner]
		if !ok {
			box, ok = t.boxes[owner]
		}
		closed := t.closed
		t.mu.Unlock()
		if (!ok && !bok) || closed {
			t.Obs.Inc(obs.CDropClosed)
			return
		}
		if bok {
			// Bulk ingress (DESIGN.md §15): after the blocking first frame,
			// greedily decode whatever frames are already fully buffered —
			// a flood burst crosses the shard mailbox as one slice instead
			// of one channel op and wakeup per frame. Zero added latency:
			// the loop only consumes bytes the kernel already delivered.
			nb := GetEnvelopeBatch()
			now := time.Now()
			*nb = append(*nb, Envelope{Msg: m, To: owner, At: now})
			corrupt := false
			for len(*nb) < ingressBatchMax && br.Buffered() >= 4 {
				hdr, _ := br.Peek(4)
				nsize := binary.LittleEndian.Uint32(hdr)
				if nsize == 0 || nsize > maxFrameSize {
					break // next blocking iteration reports the corruption
				}
				if br.Buffered() < 4+int(nsize) {
					break // frame not fully arrived; don't block mid-batch
				}
				br.Discard(4)
				if cap(body) < int(nsize) {
					body = make([]byte, nsize)
				}
				body = body[:nsize]
				io.ReadFull(br, body) // fully buffered: cannot fail or block
				nm := &wire.Message{}
				if err := wire.UnmarshalInto(nm, body); err != nil {
					t.Obs.Inc(obs.CTCPMalformedFrame)
					t.evictByRemote(conn.RemoteAddr())
					corrupt = true // deliver what decoded cleanly, then die
					break
				}
				*nb = append(*nb, Envelope{Msg: nm, To: owner, At: now})
			}
			select {
			case bbox <- nb:
				t.Obs.Inc(obs.CIngressBatch)
			default: // congested: every envelope in the batch counted
				t.Obs.Addn(obs.CDropFullMailbox, int64(len(*nb)))
				PutEnvelopeBatch(nb)
			}
			if corrupt {
				return
			}
			continue
		}
		select {
		case box <- Envelope{Msg: m, To: owner, At: time.Now()}:
		default: // congested: drop, counted
			t.Obs.Inc(obs.CDropFullMailbox)
		}
	}
}

// evictByRemote fails the cached sender-side connection whose local
// address matches remote — the dialing end of a stream a reader just found
// corrupt. Loopback pairs live in one process, so the reader can reach the
// writer's cache directly; closing the socket makes the writer's next
// write fail, evict, and redial.
func (t *TCP) evictByRemote(remote net.Addr) {
	if remote == nil {
		return
	}
	want := remote.String()
	var victim net.Conn
	t.mu.Lock()
	for key, c := range t.conns {
		if la := c.LocalAddr(); la != nil && la.String() == want {
			delete(t.conns, key)
			t.evicted[key] = true
			victim = c
			break
		}
	}
	t.mu.Unlock()
	if victim != nil {
		victim.Close()
	}
}

// dial opens a connection for key, counting it as a redial when the
// previous cached connection for this pair was evicted after a failure.
// Only the key's writer goroutine dials, so there is no dial race to
// resolve anymore; the registry entry is what evictByRemote and tests
// observe.
func (t *TCP) dial(key connKey, addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d: %w", key.to, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("transport: tcp closed")
	}
	if t.evicted[key] {
		delete(t.evicted, key)
		t.Obs.Inc(obs.CTCPRedial)
	} else {
		t.Obs.Inc(obs.CTCPDial)
	}
	t.conns[key] = conn
	t.mu.Unlock()
	return conn, nil
}

// evict removes a dead connection from the cache so the writer redials
// instead of reusing the poisoned socket.
func (t *TCP) evict(key connKey, conn net.Conn) {
	t.mu.Lock()
	if t.conns[key] == conn {
		delete(t.conns, key)
		t.evicted[key] = true
	}
	t.mu.Unlock()
	conn.Close()
	t.Obs.Inc(obs.CTCPWriteError)
}

// dropConn unregisters and closes a writer's connection on loop exit.
func (t *TCP) dropConn(key connKey, conn net.Conn) {
	t.mu.Lock()
	if t.conns[key] == conn {
		delete(t.conns, key)
	}
	t.mu.Unlock()
	conn.Close()
}

// writer returns (creating if needed) the peer writer for key.
func (t *TCP) writer(key connKey, to int32) (*peerWriter, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("transport: tcp closed")
	}
	addr, ok := t.addrs[to]
	if !ok {
		return nil, fmt.Errorf("transport: unknown peer %d", to)
	}
	w := t.writers[key]
	if w == nil {
		qlen := t.QueueLen
		if qlen <= 0 {
			qlen = defaultSendQueue
		}
		w = &peerWriter{t: t, key: key, addr: addr, queue: make(chan *[]byte, qlen)}
		t.writers[key] = w
		t.wg.Add(1)
		go w.loop()
	}
	return w, nil
}

// enqueue hands a pooled frame to the writer, dropping (counted) when the
// bounded queue is full. Sparse traffic takes the inline path: with the
// queue empty and no recent write, the frame goes straight to the socket
// under wmu, skipping the writer-goroutine wakeup. The inline frame can
// overtake a batch the drain loop has popped but not yet locked for — a
// reorder the protocol already tolerates (faultnet injects far worse).
func (t *TCP) enqueue(w *peerWriter, buf *[]byte) {
	if !t.muxed.Load() && len(w.queue) == 0 && time.Now().UnixNano()-w.lastWrite.Load() > sparseWriteWindow && w.wmu.TryLock() {
		if len(w.queue) == 0 {
			frames := [1]*[]byte{buf}
			w.writeLocked(frames[:])
			w.wmu.Unlock()
			wire.PutFrame(buf)
			return
		}
		w.wmu.Unlock()
	}
	select {
	case w.queue <- buf:
		t.Obs.ObserveSendQueue(float64(len(w.queue)))
	default:
		wire.PutFrame(buf)
		t.Obs.Inc(obs.CTCPQueueDrop)
	}
}

// Send implements Transport. It marshals into a pooled buffer and
// enqueues on the per-peer writer; a non-nil error still means the
// message was definitely not sent (unknown peer, transport closed), and a
// nil return means the network accepted it — delivery stays best-effort,
// with every drop (full queue, failed batch after redial) counted.
func (t *TCP) Send(to int32, m *wire.Message) error {
	w, err := t.writer(connKey{m.From, to}, to)
	if err != nil {
		return err
	}
	t.Obs.Inc(obs.CTransportSend)
	buf := wire.GetFrame()
	*buf = wire.MarshalAppend((*buf)[:0], m)
	t.enqueue(w, buf)
	return nil
}

// SendFrame implements FrameSender: frame (a full wire frame with its
// length prefix) is copied into a pooled buffer and queued as-is — the
// fan-out fast path marshals once and patches destinations per recipient.
func (t *TCP) SendFrame(from, to int32, frame []byte) error {
	w, err := t.writer(connKey{from, to}, to)
	if err != nil {
		return err
	}
	t.Obs.Inc(obs.CTransportSend)
	buf := wire.GetFrame()
	*buf = append((*buf)[:0], frame...)
	t.enqueue(w, buf)
	return nil
}

// loop drains the queue: one blocking receive, then a greedy non-blocking
// drain up to sendBatchMax, one batch write, one flush. The queue going
// idle is what bounds latency — the flush happens as soon as nothing more
// is queued, not on a timer.
func (w *peerWriter) loop() {
	t := w.t
	defer t.wg.Done()
	defer func() {
		w.wmu.Lock()
		if w.conn != nil {
			t.dropConn(w.key, w.conn)
			w.conn, w.bw = nil, nil
		}
		w.wmu.Unlock()
	}()
	batch := make([]*[]byte, 0, sendBatchMax)
	for {
		var first *[]byte
		select {
		case <-t.stop:
			// Shutdown: whatever is still queued is lost to the closing
			// race — a counted drop, like any in-flight message at Close.
			for {
				select {
				case b := <-w.queue:
					t.Obs.Inc(obs.CDropClosed)
					wire.PutFrame(b)
				default:
					return
				}
			}
		case first = <-w.queue:
		}
		batch = append(batch[:0], first)
	coalesce:
		for len(batch) < sendBatchMax {
			select {
			case b := <-w.queue:
				batch = append(batch, b)
			default:
				break coalesce
			}
		}
		w.wmu.Lock()
		w.writeLocked(batch)
		w.wmu.Unlock()
		for i, b := range batch {
			wire.PutFrame(b)
			batch[i] = nil
		}
	}
}

// writeLocked writes the batch through one bufio flush, dialing lazily.
// Caller holds w.wmu. Evict-and-redial-once: a failed write evicts the
// connection and retries the whole batch on a freshly dialed one before
// dropping it. Retrying the batch can duplicate frames the first attempt
// already flushed — the same at-least-once exposure the synchronous
// retry had, absorbed by the receiver-side dedup.
func (w *peerWriter) writeLocked(batch []*[]byte) {
	t := w.t
	for attempt := 0; attempt < 2; attempt++ {
		if w.conn == nil {
			c, err := t.dial(w.key, w.addr)
			if err != nil {
				break
			}
			w.conn = c
			w.bw = bufio.NewWriterSize(c, bufIOSize)
		}
		if wt := t.writeTimeout(); wt > 0 {
			_ = w.conn.SetWriteDeadline(time.Now().Add(wt))
		}
		if err := writeFrames(w.bw, batch); err == nil {
			w.lastWrite.Store(time.Now().UnixNano())
			t.Obs.Inc(obs.CTCPFlush)
			if len(batch) > 1 {
				t.Obs.Inc(obs.CTCPCoalescedFlush)
			}
			t.Obs.ObserveFlushBatch(float64(len(batch)))
			return
		}
		t.evict(w.key, w.conn)
		w.conn, w.bw = nil, nil
	}
	t.Obs.Addn(obs.CTCPWriteDrop, int64(len(batch)))
}

func writeFrames(bw *bufio.Writer, batch []*[]byte) error {
	for _, b := range batch {
		if _, err := bw.Write(*b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (t *TCP) writeTimeout() time.Duration {
	switch {
	case t.WriteTimeout < 0:
		return 0
	case t.WriteTimeout == 0:
		return defaultWriteTimeout
	default:
		return t.WriteTimeout
	}
}

// ConnGoroutines reports the transport's live connection-goroutine
// count for runtime-scale budget gates: one accept loop per listener
// plus, per cached outbound connection, its writer goroutine and (both
// ends of every loopback stream live in this process) the matching
// reader.
func (t *TCP) ConnGoroutines() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.listeners) + 2*len(t.writers)
}

// Inbox implements Transport.
func (t *TCP) Inbox(owner int32) <-chan Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.boxes[owner]
}

// BindInbox implements InboxMux: inbound frames for owner route into ch
// instead of the private mailbox. See the interface contract for
// ownership and close semantics.
func (t *TCP) BindInbox(owner int32, ch chan Envelope) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.boxes[owner]; !ok {
		return false
	}
	t.shared[owner] = ch
	t.muxed.Store(true)
	return true
}

// BindInboxBatch implements BatchInboxMux: inbound frames for owner are
// delivered as pooled *[]Envelope slices into ch, the read loop
// coalescing whatever is already buffered on the stream. See the
// interface contract for ownership and close semantics.
func (t *TCP) BindInboxBatch(owner int32, ch chan *[]Envelope) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.boxes[owner]; !ok {
		return false
	}
	t.sharedB[owner] = ch
	t.muxed.Store(true)
	return true
}

// Close implements Transport. Frames still queued on a per-peer writer
// are dropped and counted; writers flush nothing past the stop signal.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	listeners := t.listeners
	t.mu.Unlock()
	close(t.stop)
	for _, ln := range listeners {
		ln.Close()
	}
	// Writer loops observe stop, drain their queues and close their
	// connections; readers then hit EOF. Both are wg-registered.
	t.wg.Wait()
	t.mu.Lock()
	for _, b := range t.boxes {
		close(b)
	}
	t.mu.Unlock()
}

var _ FrameSender = (*TCP)(nil)
var _ InboxMux = (*TCP)(nil)
var _ InboxMux = (*Switchboard)(nil)
var _ BatchInboxMux = (*TCP)(nil)
var _ BatchInboxMux = (*Switchboard)(nil)
