package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"selectps/internal/obs"
	"selectps/internal/wire"
)

// senderConn returns the cached dial-side connection for (from → to),
// waiting briefly for the writer goroutine to register it.
func senderConn(t *testing.T, tr *TCP, from, to int32) net.Conn {
	t.Helper()
	key := connKey{from, to}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		tr.mu.Lock()
		c := tr.conns[key]
		tr.mu.Unlock()
		if c != nil {
			return c
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no cached connection registered")
	return nil
}

// TestTCPOversizeFrameEvictsSender pins the malformed-frame satellite: a
// corrupt length prefix must be counted and must fail the cached
// sender-side conn, so the next Send redials instead of writing into a
// stream nobody decodes anymore.
func TestTCPOversizeFrameEvictsSender(t *testing.T) {
	tr, err := NewTCP(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Obs = obs.New()
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, tr.Inbox(1))
	// Corrupt the stream: an impossible length prefix straight onto the
	// established connection.
	conn := senderConn(t, tr, 0, 1)
	var bad [4]byte
	binary.LittleEndian.PutUint32(bad[:], 1<<30)
	if _, err := conn.Write(bad[:]); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, tr.Obs, obs.CTCPOversizeFrame, 1)
	// The poisoned conn is evicted: the next send must still deliver,
	// through a redial.
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, tr.Inbox(1)); got.Seq != 2 {
		t.Fatalf("got %+v", got)
	}
	waitCounter(t, tr.Obs, obs.CTCPRedial, 1)
}

// TestTCPMalformedBodyEvictsSender: a frame whose body fails to decode is
// counted as malformed and evicts the sender conn the same way.
func TestTCPMalformedBodyEvictsSender(t *testing.T) {
	tr, err := NewTCP(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Obs = obs.New()
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, tr.Inbox(1))
	conn := senderConn(t, tr, 0, 1)
	// Valid length prefix, garbage body: truncated fixed header.
	frame := []byte{3, 0, 0, 0, 0xFF, 0xFF, 0xFF}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, tr.Obs, obs.CTCPMalformedFrame, 1)
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, tr.Inbox(1)); got.Seq != 2 {
		t.Fatalf("got %+v", got)
	}
	waitCounter(t, tr.Obs, obs.CTCPRedial, 1)
}

func waitCounter(t *testing.T, m *obs.Metrics, c obs.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.Get(c) >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%v = %d, want >= %d", c, m.Get(c), want)
}

// TestTCPConcurrentSendNoInterleavedFrames hammers one peer from many
// goroutines while the cached connection is repeatedly killed out from
// under the writer (evict/redial churn) and the transport finally closes.
// The writer queue must keep frames intact: every frame that reaches the
// receiver decodes, and its payload matches what its Seq promised — no
// interleaved bytes, ever. Run under -race.
func TestTCPConcurrentSendNoInterleavedFrames(t *testing.T) {
	const senders, perSender = 8, 200
	tr, err := NewTCP(2, senders*perSender+64)
	if err != nil {
		t.Fatal(err)
	}
	tr.Obs = obs.New()

	payloadFor := func(seq uint32) []byte {
		p := make([]byte, 32+int(seq%97))
		for i := range p {
			p[i] = byte(seq + uint32(i))
		}
		return p
	}

	var wg sync.WaitGroup
	var sent atomic.Int64
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				seq := uint32(s*perSender + i)
				m := &wire.Message{
					Kind: wire.KindPublish, From: 0, To: 1, Seq: seq,
					Publisher: 0, TTL: 4, Payload: payloadFor(seq),
				}
				m.PayloadSize = uint32(len(m.Payload))
				if err := tr.Send(1, m); err == nil {
					sent.Add(1)
				}
			}
		}(s)
	}
	// Evict churn: kill the cached conn a few times mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		key := connKey{0, 1}
		for i := 0; i < 5; i++ {
			time.Sleep(2 * time.Millisecond)
			tr.mu.Lock()
			c := tr.conns[key]
			tr.mu.Unlock()
			if c != nil {
				c.Close()
			}
		}
	}()
	wg.Wait()

	// Drain until the stream is quiet; every received frame must carry the
	// exact payload its Seq encodes (duplicates from batch retries are
	// fine; corruption is not).
	got := 0
	for {
		select {
		case env := <-tr.Inbox(1):
			m := env.Msg
			want := payloadFor(m.Seq)
			if len(m.Payload) != len(want) {
				t.Fatalf("seq %d: payload length %d, want %d", m.Seq, len(m.Payload), len(want))
			}
			for i := range want {
				if m.Payload[i] != want[i] {
					t.Fatalf("seq %d: payload corrupted at byte %d", m.Seq, i)
				}
			}
			got++
		case <-time.After(300 * time.Millisecond):
			if got == 0 {
				t.Fatal("nothing delivered")
			}
			// The reader decoded every frame it saw: a single interleaved
			// byte would have shown up as a malformed or oversize frame.
			if n := tr.Obs.Get(obs.CTCPMalformedFrame) + tr.Obs.Get(obs.CTCPOversizeFrame); n != 0 {
				t.Fatalf("%d corrupt frames on the wire", n)
			}
			tr.Close()
			return
		}
	}
}

// TestTCPCoalescedFlushes pins the batching layer: a burst of sends
// through one writer must land in fewer flushes than frames.
func TestTCPCoalescedFlushes(t *testing.T) {
	tr, err := NewTCP(2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Obs = obs.New()
	const burst = 500
	for attempt := 0; attempt < 20; attempt++ {
		for i := 0; i < burst; i++ {
			if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: uint32(i)}); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(time.Second)
		for tr.Obs.Get(obs.CTCPCoalescedFlush) == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if tr.Obs.Get(obs.CTCPCoalescedFlush) > 0 {
			break
		}
	}
	if tr.Obs.Get(obs.CTCPCoalescedFlush) == 0 {
		t.Fatal("no coalesced flush observed across 20 bursts")
	}
	if total := tr.Obs.FlushBatch.Snapshot().Total(); total == 0 {
		t.Fatal("flush batch histogram empty")
	}
	if tr.Obs.SendQueue.Snapshot().Total() == 0 {
		t.Fatal("send queue histogram empty")
	}
}

// TestTCPSendFrameFanout drives the marshal-once path directly: one
// encoded frame, patched per destination, must arrive intact at each.
func TestTCPSendFrameFanout(t *testing.T) {
	tr, err := NewTCP(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	m := &wire.Message{
		Kind: wire.KindPublish, From: 0, Seq: 42, Publisher: 0, TTL: 8,
		Payload: []byte("fan-out body"), PayloadSize: 12,
	}
	frame := wire.Marshal(m)
	for _, to := range []int32{1, 2} {
		wire.PatchTo(frame, to)
		if err := tr.SendFrame(0, to, frame); err != nil {
			t.Fatal(err)
		}
	}
	for _, to := range []int32{1, 2} {
		got := recvOne(t, tr.Inbox(to))
		if got.To != to || got.Seq != 42 || string(got.Payload) != "fan-out body" {
			t.Fatalf("peer %d got %+v", to, got)
		}
	}
}

// TestTCPDropAccountingConservation: with the receiver unreachable, every
// accepted frame must surface in exactly one drop counter — queue-full,
// write-failed, or closed — there are no unobservable losses.
func TestTCPDropAccountingConservation(t *testing.T) {
	tr, err := NewTCP(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr.Obs = obs.New()
	tr.QueueLen = 4
	// Point peer 1 at a port nothing listens on: every dial fails fast.
	tr.mu.Lock()
	tr.addrs[1] = "127.0.0.1:1"
	tr.mu.Unlock()
	const total = 300
	accepted := int64(0)
	for i := 0; i < total; i++ {
		if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: uint32(i)}); err == nil {
			accepted++
		}
	}
	// Let the writer chew through the queue, then close.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tr.Obs.Get(obs.CTCPQueueDrop)+tr.Obs.Get(obs.CTCPWriteDrop) >= accepted {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Close()
	dropped := tr.Obs.Get(obs.CTCPQueueDrop) + tr.Obs.Get(obs.CTCPWriteDrop) + tr.Obs.Get(obs.CDropClosed)
	if dropped != accepted {
		t.Fatalf("accounted drops %d != accepted sends %d (queue=%d write=%d closed=%d)",
			dropped, accepted,
			tr.Obs.Get(obs.CTCPQueueDrop), tr.Obs.Get(obs.CTCPWriteDrop), tr.Obs.Get(obs.CDropClosed))
	}
	if tr.Obs.Get(obs.CTCPWriteDrop) == 0 {
		t.Fatal("expected write-failure drops with an unreachable peer")
	}
}

// BenchmarkSwitchboardParallelSend pins the per-box locking satellite:
// sends to different peers must not contend on a transport-global mutex.
func BenchmarkSwitchboardParallelSend(b *testing.B) {
	const peers = 64
	s := NewSwitchboard(peers, 1<<16)
	defer s.Close()
	var next atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		to := int32(next.Add(1) % peers)
		m := &wire.Message{Kind: wire.KindPing, From: 0, To: to, Seq: 1}
		for pb.Next() {
			if err := s.Send(to, m); err != nil {
				b.Fatal(err)
			}
			// Keep the mailbox from filling: drain own box opportunistically.
			select {
			case <-s.Inbox(to):
			default:
			}
		}
	})
}

// BenchmarkTCPSendThroughput measures sustained frames/sec through one
// coalescing writer, receiver draining concurrently. Every frame either
// arrives or lands in a drop counter, so the wait condition is exact even
// under backpressure.
func BenchmarkTCPSendThroughput(b *testing.B) {
	tr, err := NewTCP(2, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	tr.Obs = obs.New()
	var received atomic.Int64
	go func() {
		for range tr.Inbox(1) {
			received.Add(1)
		}
	}()
	m := &wire.Message{Kind: wire.KindPublish, From: 0, To: 1, Publisher: 0, TTL: 4, PayloadSize: 1_200_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq = uint32(i)
		if err := tr.Send(1, m); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		settled := received.Load() +
			tr.Obs.Get(obs.CTCPQueueDrop) + tr.Obs.Get(obs.CTCPWriteDrop) + tr.Obs.Get(obs.CDropFullMailbox)
		if settled >= int64(b.N) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatal("frames unaccounted for after 60s")
}
