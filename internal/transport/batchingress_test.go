package transport

import (
	"testing"
	"time"

	"selectps/internal/obs"
	"selectps/internal/wire"
)

// drainBatches pulls envelope batches until want messages arrived (or the
// deadline passes), recycling each slice like the shard loop does.
func drainBatches(t *testing.T, ch chan *[]Envelope, want int) []*wire.Message {
	t.Helper()
	var got []*wire.Message
	deadline := time.After(5 * time.Second)
	for len(got) < want {
		select {
		case nb := <-ch:
			for _, env := range *nb {
				got = append(got, env.Msg)
			}
			PutEnvelopeBatch(nb)
		case <-deadline:
			t.Fatalf("timed out with %d/%d messages", len(got), want)
		}
	}
	return got
}

// TestSwitchboardBatchIngressConservation pins the switchboard's bulk
// binding: every Send lands in the batch channel as a one-envelope batch
// (synchronous delivery keeps determinism) or in a drop counter — never
// silently gone.
func TestSwitchboardBatchIngressConservation(t *testing.T) {
	s := NewSwitchboard(2, 8)
	defer s.Close()
	s.Obs = obs.New()
	ch := make(chan *[]Envelope, 4)
	if !s.BindInboxBatch(1, ch) {
		t.Fatal("BindInboxBatch refused")
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := s.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, To: 1, Seq: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Synchronous delivery into a 4-deep channel: exactly 4 batches of
	// one arrived, the rest dropped-and-counted at the full mailbox.
	msgs := drainBatches(t, ch, 4)
	for i, m := range msgs {
		if m.Seq != uint32(i) {
			t.Fatalf("batch %d carries seq %d, want %d", i, m.Seq, i)
		}
	}
	if got := s.Obs.Get(obs.CIngressBatch); got != 4 {
		t.Fatalf("ingress_batch = %d, want 4", got)
	}
	if got := s.Obs.Get(obs.CDropFullMailbox); got != total-4 {
		t.Fatalf("drop_full_mailbox = %d, want %d", got, total-4)
	}
}

// TestTCPBulkIngressConservation floods one conn and asserts exactly-once
// arrival through the bulk read path: every seq 0..total-1 appears once,
// in order, and the batch counter matches the number of slices received.
func TestTCPBulkIngressConservation(t *testing.T) {
	tr, err := NewTCP(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Obs = obs.New()
	ch := make(chan *[]Envelope, 4096)
	if !tr.BindInboxBatch(1, ch) {
		t.Fatal("BindInboxBatch refused")
	}
	const total = 2000
	for i := 0; i < total; i++ {
		if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, To: 1, Seq: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The sender's coalescing queue may shed under the flood (counted):
	// conservation means arrivals + accounted drops == total, with every
	// arriving seq fresh and in order (gaps where drops happened).
	drops := func() int64 {
		return tr.Obs.Get(obs.CTCPQueueDrop) + tr.Obs.Get(obs.CTCPWriteDrop) +
			tr.Obs.Get(obs.CDropFullMailbox)
	}
	var (
		got     int64
		batches int64
		lastSeq = -1
	)
	deadline := time.After(10 * time.Second)
	for got+drops() < total {
		select {
		case nb := <-ch:
			batches++
			for _, env := range *nb {
				if int(env.Msg.Seq) <= lastSeq {
					t.Fatalf("seq %d after %d: duplicated or reordered frames", env.Msg.Seq, lastSeq)
				}
				lastSeq = int(env.Msg.Seq)
				got++
			}
			PutEnvelopeBatch(nb)
		case <-deadline:
			t.Fatalf("timed out with %d arrived + %d dropped of %d frames", got, drops(), total)
		}
	}
	if got+drops() != total {
		t.Fatalf("conservation broke: %d arrived + %d dropped != %d sent", got, drops(), total)
	}
	if cnt := tr.Obs.Get(obs.CIngressBatch); cnt != batches {
		t.Fatalf("ingress_batch = %d, received %d batches", cnt, batches)
	}
	if got == 0 {
		t.Fatal("nothing arrived")
	}
}

// TestTCPBulkMalformedMidBatchDeliversPrefix: when a corrupt frame shows
// up behind valid buffered frames, the clean prefix must still be
// delivered before the sender conn is evicted.
func TestTCPBulkMalformedMidBatchDeliversPrefix(t *testing.T) {
	tr, err := NewTCP(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Obs = obs.New()
	ch := make(chan *[]Envelope, 64)
	if !tr.BindInboxBatch(1, ch) {
		t.Fatal("BindInboxBatch refused")
	}
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, To: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	drainBatches(t, ch, 1)
	conn := senderConn(t, tr, 0, 1)
	// One write: a valid frame followed by a valid-length garbage body,
	// so the bulk loop meets the corruption mid-accumulation.
	raw := wire.Marshal(&wire.Message{Kind: wire.KindPing, From: 0, To: 1, Seq: 2})
	raw = append(raw, 3, 0, 0, 0, 0xFF, 0xFF, 0xFF)
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if got := drainBatches(t, ch, 1); got[0].Seq != 2 {
		t.Fatalf("clean prefix frame lost: got seq %d", got[0].Seq)
	}
	waitCounter(t, tr.Obs, obs.CTCPMalformedFrame, 1)
	// The poisoned conn was evicted; the next send redials and delivers.
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, To: 1, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if got := drainBatches(t, ch, 1); got[0].Seq != 3 {
		t.Fatalf("post-evict frame: got seq %d", got[0].Seq)
	}
}
