package transport

import (
	"testing"
	"time"

	"selectps/internal/obs"
	"selectps/internal/wire"
)

func recvOne(t *testing.T, ch <-chan Envelope) *wire.Message {
	t.Helper()
	select {
	case e := <-ch:
		return e.Msg
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return nil
	}
}

func TestSwitchboardDelivery(t *testing.T) {
	s := NewSwitchboard(3, 8)
	defer s.Close()
	m := &wire.Message{Kind: wire.KindPing, From: 0, To: 2, Seq: 7}
	if err := s.Send(2, m); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, s.Inbox(2))
	if got.Seq != 7 || got.From != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSwitchboardUnknownPeer(t *testing.T) {
	s := NewSwitchboard(1, 1)
	defer s.Close()
	if err := s.Send(9, &wire.Message{}); err == nil {
		t.Error("send to unknown peer accepted")
	}
}

func TestSwitchboardFullMailboxDrops(t *testing.T) {
	s := NewSwitchboard(1, 1)
	defer s.Close()
	if err := s.Send(0, &wire.Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Second message dropped silently (congestion), no error, no block.
	if err := s.Send(0, &wire.Message{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, s.Inbox(0))
	if got.Seq != 1 {
		t.Fatalf("expected first message, got %+v", got)
	}
	select {
	case e := <-s.Inbox(0):
		t.Fatalf("unexpected second delivery %+v", e.Msg)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSwitchboardClosedSend(t *testing.T) {
	s := NewSwitchboard(1, 1)
	s.Close()
	if err := s.Send(0, &wire.Message{}); err == nil {
		t.Error("send after close accepted")
	}
	s.Close() // double close is a no-op
}

func TestSwitchboardLatency(t *testing.T) {
	s := NewSwitchboard(2, 4)
	s.Latency = func(from, to int32) time.Duration { return 30 * time.Millisecond }
	defer s.Close()
	start := time.Now()
	if err := s.Send(1, &wire.Message{From: 0, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, s.Inbox(1))
	if got.Seq != 5 {
		t.Fatalf("got %+v", got)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("delivered in %v; latency not applied", elapsed)
	}
}

func TestTCPDelivery(t *testing.T) {
	tr, err := NewTCP(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	m := &wire.Message{
		Kind: wire.KindExchangeRT, From: 1, To: 2, Seq: 99,
		Neighborhood: []int32{4, 5, 6},
		RoutingTable: []int32{7},
	}
	if err := tr.Send(2, m); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, tr.Inbox(2))
	if got.Seq != 99 || len(got.Neighborhood) != 3 || got.Neighborhood[1] != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestTCPConnectionReuseAndMany(t *testing.T) {
	tr, err := NewTCP(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := uint32(0); i < 50; i++ {
		if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint32]bool)
	for i := 0; i < 50; i++ {
		got := recvOne(t, tr.Inbox(1))
		if seen[got.Seq] {
			t.Fatalf("duplicate seq %d", got.Seq)
		}
		seen[got.Seq] = true
	}
}

func TestTCPBidirectional(t *testing.T) {
	tr, err := NewTCP(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, tr.Inbox(1)); got.Seq != 1 {
		t.Fatal("forward delivery failed")
	}
	if err := tr.Send(0, &wire.Message{Kind: wire.KindPong, From: 1, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, tr.Inbox(0)); got.Seq != 2 {
		t.Fatal("reverse delivery failed")
	}
}

func TestTCPUnknownPeerAndClose(t *testing.T) {
	tr, err := NewTCP(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(5, &wire.Message{}); err == nil {
		t.Error("send to unknown peer accepted")
	}
	tr.Close()
	if err := tr.Send(0, &wire.Message{}); err == nil {
		t.Error("send after close accepted")
	}
	tr.Close() // idempotent
}

func TestSwitchboardDropAccounting(t *testing.T) {
	s := NewSwitchboard(1, 1)
	s.Obs = obs.New()
	if err := s.Send(0, &wire.Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Mailbox (size 1) is full: this drop must be counted.
	if err := s.Send(0, &wire.Message{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.Obs.Get(obs.CDropFullMailbox); got != 1 {
		t.Fatalf("full-mailbox drops = %d, want 1", got)
	}
	if got := s.Obs.Get(obs.CTransportSend); got != 2 {
		t.Fatalf("sends = %d, want 2", got)
	}
	s.Close()
}

func TestSwitchboardCloseDropsDelayedCounted(t *testing.T) {
	s := NewSwitchboard(2, 4)
	s.Obs = obs.New()
	s.Latency = func(from, to int32) time.Duration { return 50 * time.Millisecond }
	if err := s.Send(1, &wire.Message{From: 0, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	s.Close() // timer still pending: the message drops and is counted
	if got := s.Obs.Get(obs.CDropClosed); got != 1 {
		t.Fatalf("closed drops = %d, want 1", got)
	}
}

func TestTCPEvictsAndRedialsAfterWriteFailure(t *testing.T) {
	tr, err := NewTCP(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Obs = obs.New()
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, tr.Inbox(1))
	// Kill the cached connection out from under the sender: the next send
	// must fail its first write, evict, redial, and still deliver.
	key := connKey{0, 1}
	tr.mu.Lock()
	dead := tr.conns[key]
	tr.mu.Unlock()
	if dead == nil {
		t.Fatal("no cached connection after first send")
	}
	dead.Close()
	if err := tr.Send(1, &wire.Message{Kind: wire.KindPing, From: 0, Seq: 2}); err != nil {
		t.Fatalf("send after dead conn: %v", err)
	}
	if got := recvOne(t, tr.Inbox(1)); got.Seq != 2 {
		t.Fatalf("got %+v", got)
	}
	if got := tr.Obs.Get(obs.CTCPWriteError); got < 1 {
		t.Fatalf("write errors = %d, want >= 1", got)
	}
	if got := tr.Obs.Get(obs.CTCPRedial); got < 1 {
		t.Fatalf("redials = %d, want >= 1", got)
	}
	if got := tr.Obs.Get(obs.CTCPDial); got != 1 {
		t.Fatalf("fresh dials = %d, want 1", got)
	}
}

func TestTCPWriteDeadlineConfigured(t *testing.T) {
	tr, err := NewTCP(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if wt := tr.writeTimeout(); wt != defaultWriteTimeout {
		t.Fatalf("default write timeout = %v", wt)
	}
	tr.WriteTimeout = time.Second
	if wt := tr.writeTimeout(); wt != time.Second {
		t.Fatalf("write timeout = %v", wt)
	}
	tr.WriteTimeout = -1
	if wt := tr.writeTimeout(); wt != 0 {
		t.Fatalf("disabled write timeout = %v", wt)
	}
}
