// Package sched provides the hashed timer wheel backing the sharded
// event-loop runtime (DESIGN.md §11). One wheel replaces the per-node
// time.Ticker/time.Timer sets of the old runtime: every deadline — a
// periodic heartbeat, a gossip round, a maintenance tick, a repair
// backoff — is an upsertable entry keyed by an opaque uint64 id, and one
// goroutine per shard drains everything that is due.
//
// The wheel is the classic hashed construction: W slots of tick duration
// T cover one rotation of W·T; an entry with deadline d lives in slot
// (d/T) mod W and fires on the rotation whose tick index reaches d/T.
// Schedule is an upsert (rescheduling moves the entry), Advance pops
// everything due in deterministic order, and Next bounds how long the
// owning loop may sleep.
//
// Determinism contract: for the same sequence of Schedule/Cancel/Advance
// calls, fired entries come back in the same order — ordered by deadline
// tick, ties broken by schedule insertion order. The wheel itself never
// reads the clock; callers pass time in, so tests can drive it logically.
package sched

import (
	"sort"
	"sync"
	"time"
)

// Fired is one due entry popped by Advance: the id it was scheduled
// under and the deadline it was scheduled for (the owning loop derives
// its lag — scheduled-fire vs actual-fire skew — from At).
type Fired struct {
	ID uint64
	At time.Time
}

// entry is one scheduled deadline.
type entry struct {
	id  uint64
	at  int64  // requested deadline, ns
	tk  int64  // fire tick index (at/tick, clamped to the future at insert)
	seq uint64 // insertion order, the deterministic tiebreak
}

// Wheel is a hashed timer wheel. Safe for concurrent use: protocol code
// upserts deadlines from any goroutine while the owning shard loop
// advances it.
type Wheel struct {
	mu      sync.Mutex
	tick    int64 // slot granularity, ns
	slots   [][]*entry
	entries map[uint64]*entry
	cur     int64 // last fully processed tick index
	seq     uint64
}

// NewWheel builds a wheel with the given slot granularity and slot
// count, positioned at `now`. Entries scheduled in the past fire on the
// next Advance.
func NewWheel(tick time.Duration, slots int, now time.Time) *Wheel {
	if tick <= 0 {
		tick = time.Millisecond
	}
	if slots <= 0 {
		slots = 512
	}
	return &Wheel{
		tick:    int64(tick),
		slots:   make([][]*entry, slots),
		entries: make(map[uint64]*entry),
		cur:     now.UnixNano() / int64(tick),
	}
}

// Len returns the number of scheduled entries (the per-shard gauge).
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// Schedule upserts entry id to fire at `at`. An existing entry moves to
// the new deadline; insertion order (the fire-order tiebreak) is
// assigned at first insert and refreshed on every reschedule.
func (w *Wheel) Schedule(id uint64, at time.Time) {
	ns := at.UnixNano()
	w.mu.Lock()
	defer w.mu.Unlock()
	if e := w.entries[id]; e != nil {
		w.unlink(e)
	}
	tk := ns / w.tick
	if tk <= w.cur {
		tk = w.cur + 1 // already due: fire on the next advance
	}
	w.seq++
	e := &entry{id: id, at: ns, tk: tk, seq: w.seq}
	w.entries[id] = e
	s := int(tk % int64(len(w.slots)))
	w.slots[s] = append(w.slots[s], e)
}

// Cancel removes entry id (no-op when absent).
func (w *Wheel) Cancel(id uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e := w.entries[id]; e != nil {
		w.unlink(e)
		delete(w.entries, id)
	}
}

// unlink removes e from its slot list. Caller holds w.mu.
func (w *Wheel) unlink(e *entry) {
	s := int(e.tk % int64(len(w.slots)))
	list := w.slots[s]
	for i, x := range list {
		if x == e {
			w.slots[s] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Advance pops every entry due at `now` (deadline tick ≤ now's tick), in
// deterministic order: by fire tick, then by insertion order. The caller
// re-schedules periodic entries itself.
func (w *Wheel) Advance(now time.Time) []Fired {
	target := now.UnixNano() / w.tick
	w.mu.Lock()
	if target <= w.cur || len(w.entries) == 0 {
		if target > w.cur {
			w.cur = target
		}
		w.mu.Unlock()
		return nil
	}
	W := int64(len(w.slots))
	span := target - w.cur
	if span > W {
		span = W // a full rotation visits every slot once
	}
	var due []*entry
	for i := int64(1); i <= span; i++ {
		s := int((w.cur + i) % W)
		list := w.slots[s]
		if len(list) == 0 {
			continue
		}
		keep := list[:0]
		for _, e := range list {
			if e.tk <= target {
				due = append(due, e)
				delete(w.entries, e.id)
			} else {
				keep = append(keep, e)
			}
		}
		// Zero the tail so removed entries do not pin memory.
		for j := len(keep); j < len(list); j++ {
			list[j] = nil
		}
		w.slots[s] = keep
	}
	w.cur = target
	w.mu.Unlock()
	sort.Slice(due, func(a, b int) bool {
		if due[a].tk != due[b].tk {
			return due[a].tk < due[b].tk
		}
		return due[a].seq < due[b].seq
	})
	out := make([]Fired, len(due))
	for i, e := range due {
		out[i] = Fired{ID: e.id, At: time.Unix(0, e.at)}
	}
	return out
}

// Next returns the earliest fire time of any scheduled entry, or false
// when the wheel is empty. The owning loop sleeps until this deadline
// (or a Schedule kick). The scan walks at most one rotation of slots and
// stops as soon as no later slot of the rotation can beat the best
// candidate found.
func (w *Wheel) Next() (time.Time, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.entries) == 0 {
		return time.Time{}, false
	}
	W := int64(len(w.slots))
	best := int64(-1)
	for i := int64(1); i <= W; i++ {
		t := w.cur + i
		for _, e := range w.slots[int(t%W)] {
			if best < 0 || e.tk < best {
				best = e.tk
			}
		}
		if best >= 0 && best <= t {
			// Every later slot of this rotation holds ticks > t ≥ best.
			break
		}
	}
	return time.Unix(0, best*w.tick), true
}
