package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// base is an arbitrary fixed origin so tests drive the wheel logically,
// never reading the wall clock.
var base = time.Unix(1_700_000_000, 0)

func TestFireOrderDeterministicUnderSameSeed(t *testing.T) {
	// Two wheels fed the same seeded schedule sequence must pop the same
	// ids in the same order at every advance — the determinism contract
	// the sharded runtime leans on.
	run := func(seed int64) [][]uint64 {
		w := NewWheel(time.Millisecond, 64, base)
		rng := rand.New(rand.NewSource(seed))
		var rounds [][]uint64
		now := base
		for step := 0; step < 200; step++ {
			// A burst of upserts, some rescheduling earlier ids.
			for i := 0; i < 8; i++ {
				id := uint64(rng.Intn(40))
				at := now.Add(time.Duration(rng.Intn(300)) * time.Millisecond)
				w.Schedule(id, at)
			}
			if rng.Intn(4) == 0 {
				w.Cancel(uint64(rng.Intn(40)))
			}
			now = now.Add(time.Duration(1+rng.Intn(20)) * time.Millisecond)
			fired := w.Advance(now)
			ids := make([]uint64, len(fired))
			for i, f := range fired {
				ids[i] = f.ID
			}
			rounds = append(rounds, ids)
		}
		return rounds
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical schedule sequences fired in different orders")
	}
	if reflect.DeepEqual(run(7), run(8)) {
		t.Fatal("distinct seeds produced identical fire sequences (degenerate test)")
	}
}

func TestFireOrderByDeadlineThenInsertion(t *testing.T) {
	w := NewWheel(time.Millisecond, 32, base)
	w.Schedule(3, base.Add(20*time.Millisecond))
	w.Schedule(1, base.Add(10*time.Millisecond))
	w.Schedule(2, base.Add(10*time.Millisecond)) // same tick as 1, inserted later
	fired := w.Advance(base.Add(50 * time.Millisecond))
	got := []uint64{fired[0].ID, fired[1].ID, fired[2].ID}
	want := []uint64{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fire order = %v, want %v (deadline first, insertion tiebreak)", got, want)
	}
}

func TestRescheduleMovesEntry(t *testing.T) {
	w := NewWheel(time.Millisecond, 32, base)
	w.Schedule(1, base.Add(100*time.Millisecond))
	w.Schedule(1, base.Add(10*time.Millisecond)) // upsert earlier
	if fired := w.Advance(base.Add(20 * time.Millisecond)); len(fired) != 1 || fired[0].ID != 1 {
		t.Fatalf("rescheduled entry did not fire at the new deadline: %v", fired)
	}
	if fired := w.Advance(base.Add(200 * time.Millisecond)); len(fired) != 0 {
		t.Fatalf("entry fired twice after reschedule: %v", fired)
	}
	// And the other direction: pushing a deadline out defers the fire.
	w.Schedule(2, base.Add(210*time.Millisecond))
	w.Schedule(2, base.Add(400*time.Millisecond))
	if fired := w.Advance(base.Add(300 * time.Millisecond)); len(fired) != 0 {
		t.Fatalf("pushed-out entry fired at its old deadline: %v", fired)
	}
	if fired := w.Advance(base.Add(500 * time.Millisecond)); len(fired) != 1 || fired[0].ID != 2 {
		t.Fatalf("pushed-out entry missing at the new deadline: %v", fired)
	}
}

func TestCancelRemoves(t *testing.T) {
	w := NewWheel(time.Millisecond, 32, base)
	w.Schedule(1, base.Add(10*time.Millisecond))
	w.Schedule(2, base.Add(10*time.Millisecond))
	w.Cancel(1)
	w.Cancel(99) // absent: no-op
	if n := w.Len(); n != 1 {
		t.Fatalf("Len = %d after cancel, want 1", n)
	}
	fired := w.Advance(base.Add(20 * time.Millisecond))
	if len(fired) != 1 || fired[0].ID != 2 {
		t.Fatalf("cancelled entry fired: %v", fired)
	}
}

func TestPastDeadlineFiresOnNextAdvance(t *testing.T) {
	w := NewWheel(time.Millisecond, 32, base)
	w.Advance(base.Add(100 * time.Millisecond))
	w.Schedule(1, base) // long past
	if fired := w.Advance(base.Add(101 * time.Millisecond)); len(fired) != 1 {
		t.Fatalf("past-deadline entry did not fire on the next advance: %v", fired)
	}
}

func TestMultiRotationDeadlines(t *testing.T) {
	// 32 slots × 1 ms = 32 ms per rotation; a 200 ms deadline shares a
	// slot with near entries across several rotations and must not fire
	// early.
	w := NewWheel(time.Millisecond, 32, base)
	w.Schedule(1, base.Add(200*time.Millisecond))
	w.Schedule(2, base.Add(200*time.Millisecond+32*time.Millisecond)) // same slot, next rotation
	total := 0
	for now := base; now.Before(base.Add(199 * time.Millisecond)); now = now.Add(7 * time.Millisecond) {
		total += len(w.Advance(now))
	}
	if total != 0 {
		t.Fatalf("%d far entries fired before their rotation", total)
	}
	if fired := w.Advance(base.Add(201 * time.Millisecond)); len(fired) != 1 || fired[0].ID != 1 {
		t.Fatalf("rotation-away entry did not fire on time: %v", fired)
	}
	if fired := w.Advance(base.Add(233 * time.Millisecond)); len(fired) != 1 || fired[0].ID != 2 {
		t.Fatalf("second-rotation entry did not fire on time: %v", fired)
	}
}

func TestNextReportsEarliestDeadline(t *testing.T) {
	w := NewWheel(time.Millisecond, 32, base)
	if _, ok := w.Next(); ok {
		t.Fatal("empty wheel reported a next deadline")
	}
	// The far entry sits in an EARLIER slot of the rotation than the near
	// one — Next must still return the true minimum, not the first
	// non-empty slot.
	w.Schedule(1, base.Add(5*time.Millisecond+32*time.Millisecond)) // slot 5, next rotation
	w.Schedule(2, base.Add(20*time.Millisecond))
	at, ok := w.Next()
	if !ok {
		t.Fatal("no next deadline")
	}
	if want := base.Add(20 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("Next = %v, want %v", at.Sub(base), want.Sub(base))
	}
	w.Cancel(2)
	at, _ = w.Next()
	if want := base.Add(37 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("Next after cancel = %v, want %v", at.Sub(base), want.Sub(base))
	}
}

func TestFiredAtCarriesRequestedDeadline(t *testing.T) {
	// The loop-lag histogram measures actual-fire minus At; At must be
	// the requested deadline, not a tick-rounded one.
	w := NewWheel(time.Millisecond, 32, base)
	want := base.Add(10*time.Millisecond + 137*time.Microsecond)
	w.Schedule(1, want)
	fired := w.Advance(base.Add(50 * time.Millisecond))
	if len(fired) != 1 || !fired[0].At.Equal(want) {
		t.Fatalf("Fired.At = %v, want %v", fired[0].At, want)
	}
}
