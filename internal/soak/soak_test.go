package soak

import (
	"strings"
	"testing"
	"time"

	"selectps/internal/churn"
	"selectps/internal/faultnet"
)

// ciConfig is a seconds-scale chaos soak used by the CI smoke tests:
// drop/dup faults on every link, no timed faults, so delivery scoring is
// purely about loss recovery.
func ciConfig(seed int64, recovery bool) Config {
	return Config{
		N: 80, Seed: seed, Dataset: "facebook", Posts: 10, PayloadSize: 1000,
		Fault: faultnet.Config{
			DropProb: 0.20,
			DupProb:  0.03,
		},
		Recovery:       recovery,
		HeartbeatEvery: 20 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
		RetryEvery:     15 * time.Millisecond,
		DeliverTimeout: 800 * time.Millisecond,
	}
}

// chaosConfig adds the full timed-fault schedule (churn crashes +
// partitions) on top of the probabilistic faults.
func chaosConfig(seed int64) Config {
	m := churn.DefaultModel()
	cfg := ciConfig(seed, true)
	cfg.N = 60
	cfg.Posts = 6
	cfg.Fault.DropProb = 0.05
	cfg.Fault.Tick = 10 * time.Millisecond
	cfg.Fault.Steps = 2000
	cfg.Fault.Churn = &m
	cfg.Fault.PartitionEvery = 150
	cfg.Fault.PartitionFor = 20
	cfg.Fault.PartitionFrac = 0.2
	cfg.DeliverTimeout = 1500 * time.Millisecond
	return cfg
}

// TestSoakFaultTraceReproducible is the determinism acceptance test: two
// soak runs with the same seed must record byte-identical injected-fault
// traces; a different seed must not.
func TestSoakFaultTraceReproducible(t *testing.T) {
	cfg := chaosConfig(7)
	cfg.Posts = 2 // trace identity does not need a long workload
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultTrace == "" {
		t.Fatal("soak with timed faults recorded no fault trace")
	}
	if a.FaultTrace != b.FaultTrace {
		t.Fatalf("same seed produced different fault traces:\n--- run 1\n%s\n--- run 2\n%s", a.FaultTrace, b.FaultTrace)
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultTrace == a.FaultTrace {
		t.Fatal("different seeds produced identical fault traces")
	}
}

// TestSoakRecoveryBeatsNoRecovery is the live Fig. 6: under the same
// seeded drop schedule, CMA recovery + publisher retries hold
// availability at >=99% while the ablated system measurably degrades.
func TestSoakRecoveryBeatsNoRecovery(t *testing.T) {
	on, err := Run(ciConfig(3, true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(ciConfig(3, false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recovery on:  %.4f (%d/%d), retries=%d", on.DeliveryRate, on.EligibleDelivered, on.EligibleWanted, on.Retries)
	t.Logf("recovery off: %.4f (%d/%d)", off.DeliveryRate, off.EligibleDelivered, off.EligibleWanted)
	if on.DeliveryRate < 0.99 {
		t.Errorf("availability with recovery = %.4f, want >= 0.99", on.DeliveryRate)
	}
	if off.DeliveryRate >= on.DeliveryRate {
		t.Errorf("no-recovery availability %.4f not below recovery %.4f", off.DeliveryRate, on.DeliveryRate)
	}
	if off.DeliveryRate > 0.97 {
		t.Errorf("no-recovery availability %.4f suspiciously high for 20%% loss — are faults being injected?", off.DeliveryRate)
	}
	if on.Retries == 0 {
		t.Error("recovery arm performed no retries under 20% loss")
	}
	if off.Retries != 0 {
		t.Errorf("ablated arm performed %d retries", off.Retries)
	}
}

// TestSoakSmokeChaos runs the full failure model — loss, duplication,
// churn crashes, partitions — and checks the service stays available to
// eligible (non-crashed) subscribers with recovery on.
func TestSoakSmokeChaos(t *testing.T) {
	r, err := Run(chaosConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos soak: eligible %.4f raw %.4f, %d fault events, %d recovery actions, %d retries",
		r.DeliveryRate, r.RawRate, r.FaultEvents, r.RecoveryActions, r.Retries)
	if r.FaultEvents == 0 {
		t.Fatal("chaos config scheduled no fault events")
	}
	if r.DeliveryRate < 0.9 {
		t.Errorf("eligible availability %.4f under chaos, want >= 0.9", r.DeliveryRate)
	}
	if r.Obs.Counters["publish_delivered"] == 0 {
		t.Error("obs snapshot recorded no deliveries")
	}
}

// TestSoakOverTCP exercises the same harness over real loopback sockets:
// faultnet composes over the TCP transport unchanged.
func TestSoakOverTCP(t *testing.T) {
	cfg := ciConfig(9, true)
	cfg.N = 30
	cfg.Posts = 4
	cfg.TCP = true
	// The race detector slows the socket path by ~10x; give the protocol
	// room so the assertion stays about recovery, not about wall clock.
	cfg.HeartbeatEvery = 50 * time.Millisecond
	cfg.DeliverTimeout = 4 * time.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveryRate < 0.99 {
		t.Errorf("TCP soak availability %.4f, want >= 0.99", r.DeliveryRate)
	}
	if r.Obs.Counters["tcp_dial"] == 0 {
		t.Error("TCP soak dialed no connections")
	}
}

// TestSoakReportExports sanity-checks the text and JSON renderings.
func TestSoakReportExports(t *testing.T) {
	cfg := ciConfig(11, true)
	cfg.N = 40
	cfg.Posts = 3
	cfg.TraceCap = 64
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txt := r.String()
	for _, want := range []string{"availability", "duplicates absorbed", "recovery actions"} {
		if !strings.Contains(txt, want) {
			t.Errorf("report text missing %q:\n%s", want, txt)
		}
	}
	raw, err := r.Obs.JSON()
	if err != nil || len(raw) == 0 {
		t.Fatalf("obs JSON export: %v", err)
	}
	if len(r.Obs.Trace) == 0 {
		t.Error("structured trace enabled but empty")
	}
}
