package soak

import (
	"strings"
	"testing"
	"time"

	"selectps/internal/churn"
	"selectps/internal/faultnet"
)

// ciConfig is a seconds-scale chaos soak used by the CI smoke tests:
// drop/dup faults on every link, no timed faults, so delivery scoring is
// purely about loss recovery.
func ciConfig(seed int64, recovery bool) Config {
	return Config{
		N: 80, Seed: seed, Dataset: "facebook", Posts: 10, PayloadSize: 1000,
		Fault: faultnet.Config{
			DropProb: 0.20,
			DupProb:  0.03,
		},
		Recovery:       recovery,
		HeartbeatEvery: 20 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
		RetryEvery:     15 * time.Millisecond,
		DeliverTimeout: 800 * time.Millisecond,
	}
}

// chaosConfig adds the full timed-fault schedule (churn crashes +
// partitions) on top of the probabilistic faults.
func chaosConfig(seed int64) Config {
	m := churn.DefaultModel()
	cfg := ciConfig(seed, true)
	cfg.N = 60
	cfg.Posts = 6
	cfg.Fault.DropProb = 0.05
	cfg.Fault.Tick = 10 * time.Millisecond
	cfg.Fault.Steps = 2000
	cfg.Fault.Churn = &m
	cfg.Fault.PartitionEvery = 150
	cfg.Fault.PartitionFor = 20
	cfg.Fault.PartitionFrac = 0.2
	cfg.DeliverTimeout = 1500 * time.Millisecond
	return cfg
}

// TestSoakFaultTraceReproducible is the determinism acceptance test: two
// soak runs with the same seed must record byte-identical injected-fault
// traces; a different seed must not.
func TestSoakFaultTraceReproducible(t *testing.T) {
	cfg := chaosConfig(7)
	cfg.Posts = 2 // trace identity does not need a long workload
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultTrace == "" {
		t.Fatal("soak with timed faults recorded no fault trace")
	}
	if a.FaultTrace != b.FaultTrace {
		t.Fatalf("same seed produced different fault traces:\n--- run 1\n%s\n--- run 2\n%s", a.FaultTrace, b.FaultTrace)
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultTrace == a.FaultTrace {
		t.Fatal("different seeds produced identical fault traces")
	}
}

// TestSoakRecoveryBeatsNoRecovery is the live Fig. 6: under the same
// seeded drop schedule, CMA recovery + publisher retries hold
// availability at >=99% while the ablated system measurably degrades.
func TestSoakRecoveryBeatsNoRecovery(t *testing.T) {
	on, err := Run(ciConfig(3, true))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(ciConfig(3, false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recovery on:  %.4f (%d/%d), retries=%d", on.DeliveryRate, on.EligibleDelivered, on.EligibleWanted, on.Retries)
	t.Logf("recovery off: %.4f (%d/%d)", off.DeliveryRate, off.EligibleDelivered, off.EligibleWanted)
	if on.DeliveryRate < 0.99 {
		t.Errorf("availability with recovery = %.4f, want >= 0.99", on.DeliveryRate)
	}
	if off.DeliveryRate >= on.DeliveryRate {
		t.Errorf("no-recovery availability %.4f not below recovery %.4f", off.DeliveryRate, on.DeliveryRate)
	}
	if off.DeliveryRate > 0.97 {
		t.Errorf("no-recovery availability %.4f suspiciously high for 20%% loss — are faults being injected?", off.DeliveryRate)
	}
	if on.Retries == 0 {
		t.Error("recovery arm performed no retries under 20% loss")
	}
	if off.Retries != 0 {
		t.Errorf("ablated arm performed %d retries", off.Retries)
	}
}

// TestSoakSmokeChaos runs the full failure model — loss, duplication,
// churn crashes, partitions — and checks the service stays available to
// eligible (non-crashed) subscribers with recovery on.
func TestSoakSmokeChaos(t *testing.T) {
	r, err := Run(chaosConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos soak: eligible %.4f raw %.4f, %d fault events, %d recovery actions, %d retries",
		r.DeliveryRate, r.RawRate, r.FaultEvents, r.RecoveryActions, r.Retries)
	if r.FaultEvents == 0 {
		t.Fatal("chaos config scheduled no fault events")
	}
	if r.DeliveryRate < 0.9 {
		t.Errorf("eligible availability %.4f under chaos, want >= 0.9", r.DeliveryRate)
	}
	if r.Obs.Counters["publish_delivered"] == 0 {
		t.Error("obs snapshot recorded no deliveries")
	}
}

// TestSoakLiveJoinBootstrap bootstraps only a quarter of the peers from
// the converged overlay; the rest join the running cluster through the
// live join protocol before the workload, and availability must match
// the fully-bootstrapped arm.
func TestSoakLiveJoinBootstrap(t *testing.T) {
	cfg := ciConfig(13, true)
	cfg.N = 60
	cfg.Posts = 6
	cfg.GossipEvery = 15 * time.Millisecond
	cfg.MaintainEvery = 20 * time.Millisecond
	cfg.BootstrapFrac = 0.25
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("live-join soak: joins=%d availability=%.4f mean hops=%.2f coverage=%.2f",
		r.LiveJoins, r.DeliveryRate, r.MeanHops, r.MeanLinkCoverage)
	if want := cfg.N - cfg.N/4; r.LiveJoins < want-2 {
		t.Errorf("only %d live joins, want ~%d", r.LiveJoins, want)
	}
	if r.DeliveryRate < 0.99 {
		t.Errorf("live-join availability %.4f, want >= 0.99", r.DeliveryRate)
	}
	if r.MeanLinkCoverage == 0 {
		t.Error("link-bucket coverage never left zero: the live Algorithm-5 pass built no links")
	}
}

// TestSoakChurnRejoinAvailability is the churn-arm acceptance test:
// crashed peers lose their overlay state, re-join live when their churn
// window ends, and the notifications owed to those re-joined subscribers
// regain >=99% availability; overlay quality (hop counts, link-bucket
// coverage) stays near the pre-churn baseline from the same seed.
func TestSoakChurnRejoinAvailability(t *testing.T) {
	// Pre-churn baseline: same seed and faults minus the churn schedule.
	base := ciConfig(17, true)
	base.N = 60
	base.Posts = 6
	base.MaintainEvery = 20 * time.Millisecond
	base.Fault.DropProb = 0.05
	base.DeliverTimeout = 1500 * time.Millisecond
	r0, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	m := churn.DefaultModel()
	cfg := base
	cfg.Posts = 10
	cfg.Fault.Tick = 10 * time.Millisecond
	cfg.Fault.Steps = 300 // the schedule runs out mid-test: churn, then calm
	cfg.Fault.Churn = &m
	cfg.LiveRejoin = true
	cfg.PostChurnPosts = 5
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn arm: rejoins=%d rejoined availability=%.4f (%d/%d)",
		r.Rejoins, r.RejoinAvailability, r.RejoinedDelivered, r.RejoinedWanted)
	t.Logf("overlay quality: during-churn hops %.2f, post-churn hops %.2f vs baseline %.2f, coverage %.2f vs baseline %.2f",
		r.MeanHops, r.PostChurnMeanHops, r0.MeanHops, r.MeanLinkCoverage, r0.MeanLinkCoverage)
	if r.Rejoins == 0 {
		t.Fatal("churn schedule produced no live rejoins")
	}
	if r.RejoinedWanted == 0 {
		t.Fatal("no notifications were scored for re-joined subscribers")
	}
	if r.RejoinAvailability < 0.99 {
		t.Errorf("re-joined subscriber availability %.4f, want >= 0.99", r.RejoinAvailability)
	}
	// Overlay quality converges back toward the pre-churn baseline once
	// the schedule runs out: hop counts within 50% (plus a half-hop
	// floor), coverage within 0.25.
	if r.PostChurnMeanHops == 0 {
		t.Fatal("post-churn phase measured no deliveries")
	}
	if r.PostChurnMeanHops > r0.MeanHops*1.5+0.5 {
		t.Errorf("post-churn mean hops %.2f far above baseline %.2f", r.PostChurnMeanHops, r0.MeanHops)
	}
	if r.MeanLinkCoverage < r0.MeanLinkCoverage-0.25 {
		t.Errorf("churn-arm link coverage %.2f far below baseline %.2f", r.MeanLinkCoverage, r0.MeanLinkCoverage)
	}
}

// TestSoakOfflineInboxReplay is the durable-tier acceptance test: a
// third of the peers are crashed before any publication goes out and
// stay down through the whole workload, so every notification owed to
// them must survive in their replica inboxes. After they rejoin, the
// claim/lease replay must deliver ALL of it — at-least-once to 100% of
// subscribers, zero dead letters, zero app-level duplicate deliveries.
func TestSoakOfflineInboxReplay(t *testing.T) {
	cfg := ciConfig(23, true)
	cfg.N = 60
	cfg.Posts = 6
	cfg.MaintainEvery = 20 * time.Millisecond
	cfg.OfflineFrac = 0.3
	cfg.Inbox = true
	cfg.DeliverTimeout = 1500 * time.Millisecond
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("offline arm: %d offline peers, owed %d/%d delivered after replay, all-subscriber %d/%d = %.4f",
		r.OfflineCount, r.OfflineDelivered, r.OfflineWanted, r.AllDelivered, r.AllWanted, r.AllRate)
	t.Logf("durable tier: %d deposits, %d replayed, %d pending, %d dead letters, %d app duplicates",
		r.InboxDeposits, r.InboxReplayed, r.InboxDepth, r.DeadLetters, r.DuplicateDeliveries)
	if r.OfflineCount == 0 || r.OfflineWanted == 0 {
		t.Fatal("offline arm scored no offline subscribers — the scenario never engaged")
	}
	if r.InboxDeposits == 0 {
		t.Error("no deposits reached the durable tier despite offline subscribers")
	}
	if r.AllRate != 1.0 {
		t.Errorf("all-subscriber delivery rate %.4f after rejoin replay, want 1.0", r.AllRate)
	}
	if r.DeadLetters != 0 {
		t.Errorf("%d publications dead-lettered; the durable tier must absorb offline subscribers", r.DeadLetters)
	}
	if r.DuplicateDeliveries != 0 {
		t.Errorf("%d app-level duplicate deliveries; replay dedup is part of the contract", r.DuplicateDeliveries)
	}
}

// TestSoakOverTCP exercises the same harness over real loopback sockets:
// faultnet composes over the TCP transport unchanged.
func TestSoakOverTCP(t *testing.T) {
	cfg := ciConfig(9, true)
	cfg.N = 30
	cfg.Posts = 4
	cfg.TCP = true
	// The race detector slows the socket path by ~10x; give the protocol
	// room so the assertion stays about recovery, not about wall clock.
	cfg.HeartbeatEvery = 50 * time.Millisecond
	cfg.DeliverTimeout = 4 * time.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveryRate < 0.99 {
		t.Errorf("TCP soak availability %.4f, want >= 0.99", r.DeliveryRate)
	}
	if r.Obs.Counters["tcp_dial"] == 0 {
		t.Error("TCP soak dialed no connections")
	}
}

// TestSoakReportExports sanity-checks the text and JSON renderings.
func TestSoakReportExports(t *testing.T) {
	cfg := ciConfig(11, true)
	cfg.N = 40
	cfg.Posts = 3
	cfg.TraceCap = 64
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	txt := r.String()
	for _, want := range []string{"availability", "duplicates absorbed", "recovery actions"} {
		if !strings.Contains(txt, want) {
			t.Errorf("report text missing %q:\n%s", want, txt)
		}
	}
	raw, err := r.Obs.JSON()
	if err != nil || len(raw) == 0 {
		t.Fatalf("obs JSON export: %v", err)
	}
	if len(r.Obs.Trace) == 0 {
		t.Error("structured trace enabled but empty")
	}
}
