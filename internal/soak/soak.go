// Package soak drives the live node runtime through a fault-injected
// transport for a sustained churn + publication workload and measures
// what the paper's Fig. 6 claims for the simulator — notification
// availability under log-normal churn with CMA-driven link recovery — on
// real message passing.
//
// A soak run is reproducible end to end: the social graph, the overlay,
// the publication workload, and the entire fault timeline all derive
// from Config.Seed, and Report.FaultTrace is the canonical rendering of
// the injected schedule, so two runs with the same seed can be diffed
// event for event (DESIGN.md §7).
package soak

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"selectps/internal/churn"
	"selectps/internal/datasets"
	"selectps/internal/faultnet"
	"selectps/internal/growth"
	"selectps/internal/metrics"
	"selectps/internal/node"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/selectcore"
	"selectps/internal/transport"
)

// Config parameterizes one soak run. The zero value is not runnable; use
// Default for a CI-sized chaos run and override from there.
type Config struct {
	// N is the cluster size; Seed drives graph, overlay, workload and
	// fault schedule alike.
	N    int
	Seed int64
	// Dataset names the social-graph generator (datasets.ByName).
	Dataset string
	// TCP switches the base transport from the in-memory switchboard to
	// real loopback sockets.
	TCP bool
	// Posts is the number of publications to drive.
	Posts int
	// PayloadSize is the notification payload in bytes (the paper's
	// 1.2 MB fragments by default).
	PayloadSize uint32

	// Fault is the failure model injected between the cluster and the
	// base transport. Tick/Steps default to cover the whole run.
	Fault faultnet.Config

	// Recovery enables SELECT's robustness machinery: heartbeats feeding
	// the accrual failure detector (§III-F) and the in-node autonomous
	// delivery-repair engine. Disabling it is the ablation arm of the
	// live Fig. 6 — the harness never drives repair by hand either way.
	Recovery bool
	// HeartbeatEvery/GossipEvery/MaintainEvery are the node protocol
	// periods when Recovery is on (MaintainEvery drives join retries,
	// Algorithm-2 identifier moves and Algorithm-5/6 link reassignment).
	HeartbeatEvery time.Duration
	GossipEvery    time.Duration
	MaintainEvery  time.Duration

	// Shards is the event-loop shard count handed to the node runtime
	// (0 = GOMAXPROCS; see node.Options.Shards).
	Shards int

	// BootstrapFrac, when in (0,1), starts only that fraction of peers
	// (growth-schedule join order) as converged ring members; the rest
	// join live through the join protocol before the workload starts.
	BootstrapFrac float64
	// LiveRejoin makes churn crashes real for the overlay: a peer
	// entering a crash window loses its volatile routing state
	// (Cluster.Crash) and walks the live join protocol again when the
	// window ends (Cluster.Rejoin). Requires a timed fault schedule.
	LiveRejoin bool
	// PostChurnPosts drives this many extra publications after the timed
	// fault schedule has run out and every peer has re-joined, measuring
	// the overlay quality the maintenance loop converged back to
	// (Report.PostChurnMeanHops). Zero skips the phase. PostChurnSettle
	// is how long to let gossip and maintenance re-converge the late
	// re-joiners before measuring (default 1s).
	PostChurnPosts  int
	PostChurnSettle time.Duration
	// RetryEvery is the delivery-repair engine's base backoff (RetryBase
	// on the nodes when Recovery is on); DeliverTimeout bounds how long
	// each publication may take before it is scored as is.
	RetryEvery     time.Duration
	DeliverTimeout time.Duration

	// OfflineFrac crashes this fraction of peers BEFORE the workload and
	// rejoins them after it: the store-and-forward scenario. Their owed
	// notifications are scored after the rejoin replay (Report.AllRate) —
	// with Inbox on, the durable tier must deliver them at-least-once.
	OfflineFrac float64
	// Inbox enables the durable delivery tier (node.Options.Inbox):
	// publications owed to offline subscribers are deposited on their
	// replica sets and replayed when they rejoin, instead of
	// dead-lettered. Requires Recovery.
	Inbox bool

	// Topics enables the named-topic flash-crowd arm: every peer
	// subscribes to TopicSubs Zipf-drawn topics (exponent TopicZipf over
	// Topics names — index 0, the hot hashtag, draws most of the mass)
	// and the workload publishes every post to a Zipf-drawn topic's
	// rendezvous tree instead of the publisher's friend feed. Combined
	// with churn this exercises rendezvous re-homing mid-flood. Requires
	// Recovery.
	Topics    int
	TopicZipf float64 // Zipf exponent (>1), default 1.2
	TopicSubs int     // subscriptions per peer, default 2

	// Defenses enables the hardened node defenses of DESIGN.md §14
	// (node.Options.Hardened): join admission rate limits and arc caps,
	// eviction-resistant ring lists with position cross-checks, and
	// mutual-count clamps. The adversarial arms (Fault.Attack != none)
	// run with it on and off to measure the defense margin; it is
	// harmless under honest faults.
	Defenses bool

	// TraceCap bounds the structured obs event trace (0 = off).
	TraceCap int
}

// Default returns a CI-sized chaos soak: 100 peers, 20 posts, 10% loss,
// churn-driven crashes, periodic partitions, recovery on.
func Default() Config {
	m := churn.DefaultModel()
	return Config{
		N: 100, Seed: 1, Dataset: "facebook", Posts: 20, PayloadSize: 1_200_000,
		Fault: faultnet.Config{
			DropProb: 0.10, DupProb: 0.02, ReorderProb: 0.02,
			DelayMin: 0, DelayMax: 2 * time.Millisecond,
			Tick: 20 * time.Millisecond, Steps: 3000,
			Churn:          &m,
			PartitionEvery: 400, PartitionFor: 50, PartitionFrac: 0.2,
		},
		Recovery:       true,
		HeartbeatEvery: 25 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
		MaintainEvery:  25 * time.Millisecond,
		RetryEvery:     20 * time.Millisecond,
		DeliverTimeout: 3 * time.Second,
	}
}

// Report is the outcome of one soak run.
type Report struct {
	Config ConfigSummary `json:"config"`

	// Posts is the number of publications driven; Wanted/Delivered count
	// subscriber notifications (the availability of Fig. 6 is
	// Delivered/Wanted over eligible subscribers).
	Posts     int `json:"posts"`
	Wanted    int `json:"wanted"`
	Delivered int `json:"delivered"`
	// EligibleWanted/EligibleDelivered exclude subscribers that were
	// inside a crash window when their publication was scored — a crashed
	// phone cannot display a notification in any design.
	EligibleWanted    int `json:"eligible_wanted"`
	EligibleDelivered int `json:"eligible_delivered"`

	// DeliveryRate is EligibleDelivered/EligibleWanted; RawRate counts
	// every subscriber.
	DeliveryRate float64 `json:"delivery_rate"`
	RawRate      float64 `json:"raw_rate"`

	// Duplicates is the number of redundant arrivals absorbed by dedup;
	// DuplicateRate is per wanted notification.
	Duplicates    int64   `json:"duplicates"`
	DuplicateRate float64 `json:"duplicate_rate"`

	// LatencyMSP50/90/99 are per-publication completion latencies.
	LatencyMSP50 float64 `json:"latency_ms_p50"`
	LatencyMSP90 float64 `json:"latency_ms_p90"`
	LatencyMSP99 float64 `json:"latency_ms_p99"`
	// HopFractions is the distribution of delivery hop counts.
	HopFractions []float64 `json:"hop_fractions,omitempty"`

	// RecoveryActions aggregates detector-driven routing decisions
	// (dead-link skips + random-walk escapes); Retries counts the repair
	// engine's autonomous re-sends; DeadLetters counts publications that
	// exhausted their retry budget (and, with Inbox on, also failed to
	// deposit on any replica).
	RecoveryActions int64 `json:"recovery_actions"`
	Retries         int64 `json:"retries"`
	DeadLetters     int64 `json:"dead_letters"`

	// FramesPerDelivered is total transport sends per delivered
	// notification — the frame-economy figure of merit (DESIGN.md §15).
	FramesPerDelivered float64 `json:"frames_per_delivered_msg"`

	// Offline-subscriber arm (OfflineFrac > 0): OfflineCount peers were
	// crashed through the whole workload and rejoined after it.
	// OfflineWanted/Delivered score only their owed notifications after
	// the rejoin replay; AllWanted/Delivered score EVERY subscriber of
	// every publication at the end — AllRate = 1.0 with Inbox on is the
	// at-least-once acceptance gate. DuplicateDeliveries counts app-level
	// double deliveries observed by the OnDeliver handlers (must be 0:
	// replay dedup is part of the contract); InboxDeposits/InboxReplayed
	// and InboxDepth surface the durable tier's work.
	OfflineCount        int     `json:"offline_count,omitempty"`
	OfflineWanted       int     `json:"offline_wanted,omitempty"`
	OfflineDelivered    int     `json:"offline_delivered,omitempty"`
	OfflineRate         float64 `json:"offline_rate,omitempty"`
	AllWanted           int     `json:"all_wanted,omitempty"`
	AllDelivered        int     `json:"all_delivered,omitempty"`
	AllRate             float64 `json:"all_rate,omitempty"`
	DuplicateDeliveries int64   `json:"duplicate_deliveries"`
	InboxDeposits       int64   `json:"inbox_deposits,omitempty"`
	InboxReplayed       int64   `json:"inbox_replayed,omitempty"`
	InboxDepth          int     `json:"inbox_depth,omitempty"`

	// LiveJoins counts peers admitted through the join protocol during
	// the bootstrap phase (BootstrapFrac < 1); Rejoins counts crashed
	// peers that completed the join protocol again (LiveRejoin).
	LiveJoins int `json:"live_joins,omitempty"`
	Rejoins   int `json:"rejoins,omitempty"`
	// RejoinedWanted/Delivered score notifications for subscribers that
	// had crashed and rejoined live by the time their publication was
	// scored; RejoinAvailability is their ratio — the churn-arm
	// acceptance metric.
	RejoinedWanted     int     `json:"rejoined_wanted,omitempty"`
	RejoinedDelivered  int     `json:"rejoined_delivered,omitempty"`
	RejoinAvailability float64 `json:"rejoin_availability,omitempty"`
	// MeanHops is the mean delivered hop count; MeanLinkCoverage is the
	// mean link-bucket coverage over ring members at the end of the run.
	// Together they are the overlay-quality signals the churn and
	// live-join arms watch converge back to the pre-churn baseline.
	MeanHops         float64 `json:"mean_hops"`
	MeanLinkCoverage float64 `json:"mean_link_coverage"`
	// PostChurnMeanHops is MeanHops over the publications driven after
	// the fault schedule expired and every peer re-joined (PostChurnPosts
	// > 0) — the converged-back overlay quality.
	PostChurnMeanHops float64 `json:"post_churn_mean_hops,omitempty"`

	// Topic arm (Topics > 0): the workload published to Zipf-popular
	// named topics, so DeliveryRate measures flash-crowd delivery to
	// live topic subscribers. HotTopicSubs is the hot hashtag's
	// subscriber count; TopicRehomes/TopicHandoffs count rendezvous
	// re-homing activity (nonzero under churn means re-homing was
	// exercised mid-flood); TopicFanoutCopies counts dissemination-tree
	// sends.
	Topics            int   `json:"topics,omitempty"`
	HotTopicSubs      int   `json:"hot_topic_subs,omitempty"`
	TopicRehomes      int64 `json:"topic_rehomes,omitempty"`
	TopicHandoffs     int64 `json:"topic_handoffs,omitempty"`
	TopicFanoutCopies int64 `json:"topic_fanout_copies,omitempty"`

	// Adversarial arm (Fault.Attack != none): AttackerCount byzantine
	// peers ran the named attack against AttackTarget between schedule
	// steps AttackStart and AttackStop. Attackers are excluded from
	// eligibility (a byzantine peer's own notifications are not the
	// service's promise); the victim stays eligible — that is the point.
	// AttackWanted/Delivered/Rate score eligible notifications whose
	// publication resolved inside the attack window — the degraded-window
	// availability the defense margin is measured on. AttackMeanHops is
	// the in-window delivered hop count (hop inflation vs MeanHops).
	// RestabilizeMS is how long after the window closed until the
	// victim's ring links agreed with the directory again (the
	// Feldmann-style recovery contract), RestabilizeTicks the same in
	// maintain periods. HeadOccupancy is the fraction of in-window
	// driver ticks on which an attacker held the victim's ring successor
	// or predecessor — the prize both ring attacks play for — and
	// ForgedOccupancy the fraction where that seat was held at a
	// position contradicting the directory's grant (a swallowed forgery,
	// vs a seat a friend earned legitimately under social placement):
	// the in-window damage gauges the defenses-off ablation degrades.
	// Both -1 when not measured. The defense counters echo obs.
	Attack           string  `json:"attack,omitempty"`
	Defenses         bool    `json:"defenses,omitempty"`
	AttackerCount    int     `json:"attacker_count,omitempty"`
	AttackTarget     int32   `json:"attack_target,omitempty"`
	AttackStart      int     `json:"attack_start,omitempty"`
	AttackStop       int     `json:"attack_stop,omitempty"`
	AttackWanted     int     `json:"attack_wanted,omitempty"`
	AttackDelivered  int     `json:"attack_delivered,omitempty"`
	AttackRate       float64 `json:"attack_rate,omitempty"`
	AttackMeanHops   float64 `json:"attack_mean_hops,omitempty"`
	RestabilizeMS    float64 `json:"restabilize_ms,omitempty"`
	RestabilizeTicks int     `json:"restabilize_ticks,omitempty"`
	HeadOccupancy    float64 `json:"attacker_head_occupancy"`
	ForgedOccupancy  float64 `json:"forged_head_occupancy"`
	SybilRejected    int64   `json:"sybil_rejected,omitempty"`
	SybilDiverted    int64   `json:"sybil_diverted,omitempty"`
	EclipseDisplaced int64   `json:"eclipse_displaced,omitempty"`
	PosRejected      int64   `json:"pos_rejected,omitempty"`
	StrengthClamped  int64   `json:"strength_clamped,omitempty"`

	// FaultTrace is the canonical injected-fault schedule; identical for
	// identical seeds. FaultEvents is its event count.
	FaultEvents int    `json:"fault_events"`
	FaultTrace  string `json:"-"`

	// Obs is the full counter/histogram snapshot.
	Obs obs.Snapshot `json:"obs"`
}

// ConfigSummary is the part of the config echoed into the report.
type ConfigSummary struct {
	N             int     `json:"n"`
	Seed          int64   `json:"seed"`
	Dataset       string  `json:"dataset"`
	TCP           bool    `json:"tcp"`
	Posts         int     `json:"posts"`
	Drop          float64 `json:"drop"`
	Recovery      bool    `json:"recovery"`
	BootstrapFrac float64 `json:"bootstrap_frac,omitempty"`
	LiveRejoin    bool    `json:"live_rejoin,omitempty"`
	OfflineFrac   float64 `json:"offline_frac,omitempty"`
	Inbox         bool    `json:"inbox,omitempty"`
	Topics        int     `json:"topics,omitempty"`
	TopicZipf     float64 `json:"topic_zipf,omitempty"`
	Attack        string  `json:"attack,omitempty"`
	Defenses      bool    `json:"defenses,omitempty"`
}

// String renders the report like the repo's other experiment harnesses.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: n=%d seed=%d dataset=%s tcp=%v recovery=%v drop=%.2f\n",
		r.Config.N, r.Config.Seed, r.Config.Dataset, r.Config.TCP, r.Config.Recovery, r.Config.Drop)
	fmt.Fprintf(&b, "publications: %d   notifications: %d/%d (%.2f%% raw)\n",
		r.Posts, r.Delivered, r.Wanted, 100*r.RawRate)
	fmt.Fprintf(&b, "availability (eligible subscribers): %d/%d = %.2f%%\n",
		r.EligibleDelivered, r.EligibleWanted, 100*r.DeliveryRate)
	fmt.Fprintf(&b, "duplicates absorbed: %d (%.3f per notification)\n", r.Duplicates, r.DuplicateRate)
	fmt.Fprintf(&b, "publication latency: p50=%.0fms p90=%.0fms p99=%.0fms\n",
		r.LatencyMSP50, r.LatencyMSP90, r.LatencyMSP99)
	fmt.Fprintf(&b, "recovery actions: %d (cma skips/walks) + %d engine retries (%d dead-lettered)\n",
		r.RecoveryActions, r.Retries, r.DeadLetters)
	if r.FramesPerDelivered > 0 {
		fmt.Fprintf(&b, "frames/delivered-msg: %.2f\n", r.FramesPerDelivered)
	}
	if r.OfflineCount > 0 {
		fmt.Fprintf(&b, "offline subscribers: %d crashed through workload; after rejoin replay %d/%d owed = %.2f%% (all subscribers %d/%d = %.2f%%, %d app-level duplicates)\n",
			r.OfflineCount, r.OfflineDelivered, r.OfflineWanted, 100*r.OfflineRate,
			r.AllDelivered, r.AllWanted, 100*r.AllRate, r.DuplicateDeliveries)
		fmt.Fprintf(&b, "durable tier: %d deposits persisted, %d replayed+cleared, %d left pending\n",
			r.InboxDeposits, r.InboxReplayed, r.InboxDepth)
	}
	if r.LiveJoins > 0 || r.Rejoins > 0 {
		fmt.Fprintf(&b, "live joins: %d   rejoins: %d   rejoined availability: %d/%d = %.2f%%\n",
			r.LiveJoins, r.Rejoins, r.RejoinedDelivered, r.RejoinedWanted, 100*r.RejoinAvailability)
	}
	if r.Topics > 0 {
		fmt.Fprintf(&b, "topics: %d (hot hashtag %d subscribers)   rehomes: %d   handoffs: %d   tree copies: %d\n",
			r.Topics, r.HotTopicSubs, r.TopicRehomes, r.TopicHandoffs, r.TopicFanoutCopies)
	}
	if r.Attack != "" && r.Attack != "none" {
		fmt.Fprintf(&b, "attack: %s ×%d vs peer %d (steps %d-%d, defenses=%v)\n",
			r.Attack, r.AttackerCount, r.AttackTarget, r.AttackStart, r.AttackStop, r.Defenses)
		fmt.Fprintf(&b, "in-window availability: %d/%d = %.2f%% (mean hops %.2f)   restabilize: %.0fms ≈ %d maintain ticks\n",
			r.AttackDelivered, r.AttackWanted, 100*r.AttackRate, r.AttackMeanHops,
			r.RestabilizeMS, r.RestabilizeTicks)
		if r.HeadOccupancy >= 0 {
			forged := r.ForgedOccupancy
			if forged < 0 {
				forged = 0
			}
			fmt.Fprintf(&b, "attacker ring-head occupancy through window: %.1f%% (%.1f%% at forged positions)\n",
				100*r.HeadOccupancy, 100*forged)
		}
		fmt.Fprintf(&b, "defenses: sybil_rejected=%d sybil_diverted=%d eclipse_displaced=%d pos_rejected=%d strength_clamped=%d\n",
			r.SybilRejected, r.SybilDiverted, r.EclipseDisplaced, r.PosRejected, r.StrengthClamped)
	}
	fmt.Fprintf(&b, "overlay quality: mean hops %.2f, link-bucket coverage %.2f\n", r.MeanHops, r.MeanLinkCoverage)
	if r.PostChurnMeanHops > 0 {
		fmt.Fprintf(&b, "post-churn convergence: mean hops %.2f on the clean network\n", r.PostChurnMeanHops)
	}
	fmt.Fprintf(&b, "injected fault events: %d\n", r.FaultEvents)
	b.WriteString(r.Obs.String())
	return b.String()
}

// Run executes one soak and returns its report.
func Run(cfg Config) (*Report, error) {
	if cfg.N <= 0 || cfg.Posts <= 0 {
		return nil, fmt.Errorf("soak: need positive N and Posts")
	}
	if cfg.Dataset == "" {
		cfg.Dataset = "facebook"
	}
	if cfg.DeliverTimeout == 0 {
		cfg.DeliverTimeout = 3 * time.Second
	}
	if cfg.RetryEvery == 0 {
		cfg.RetryEvery = 20 * time.Millisecond
	}
	spec, err := datasets.ByName(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	g := spec.Generate(cfg.N, cfg.Seed)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	met := obs.New()
	if cfg.TraceCap > 0 {
		met.EnableTrace(cfg.TraceCap)
	}
	var base transport.Transport
	if cfg.TCP {
		t, err := transport.NewTCP(cfg.N, 4096)
		if err != nil {
			return nil, err
		}
		t.Obs = met
		base = t
	} else {
		sw := transport.NewSwitchboard(cfg.N, 4096)
		sw.Obs = met
		base = sw
	}
	fn := faultnet.Wrap(base, cfg.N, cfg.Fault, cfg.Seed+faultSeedOffset)
	fn.Obs = met

	nopts := node.Options{Graph: g, Overlay: ov, Transport: fn, Seed: cfg.Seed, Obs: met, Shards: cfg.Shards}
	nopts.Inbox = cfg.Inbox
	nopts.Hardened = cfg.Defenses
	if cfg.Topics > 0 {
		if !cfg.Recovery {
			return nil, fmt.Errorf("soak: Topics requires Recovery (rendezvous re-homing rides the repair engine)")
		}
		if cfg.TopicZipf == 0 {
			cfg.TopicZipf = 1.2
		}
		if cfg.TopicSubs == 0 {
			cfg.TopicSubs = 2
		}
		// Under churn a paused subscriber cannot refresh its lease; keep
		// registrations alive across the longest window the soak is still
		// willing to score so the rendezvous keeps repairing toward peers
		// that resume mid-deadline (the friend-feed arm gets the same
		// property from the publisher's retry budget).
		nopts.TopicLease = cfg.DeliverTimeout + 5*time.Second
	}
	if cfg.Recovery {
		nopts.HeartbeatEvery = cfg.HeartbeatEvery
		nopts.GossipEvery = cfg.GossipEvery
		nopts.MaintainEvery = cfg.MaintainEvery
		if nopts.MaintainEvery == 0 {
			nopts.MaintainEvery = 25 * time.Millisecond
		}
		// Autonomous repair: the nodes re-send on their own seeded backoff;
		// the harness only waits and scores. Cap the backoff tightly — the
		// soak scores delivery against a deadline, and retry density within
		// that window is what buys availability while the overlay is still
		// converging around live joiners — and give the budget enough
		// rounds to span the deadline: crash/partition windows can swallow
		// the whole early schedule, and a publication must keep repairing
		// for as long as the soak is willing to score it.
		nopts.RetryBase = cfg.RetryEvery
		nopts.RetryMax = 2 * cfg.RetryEvery
		nopts.RetryBudget = 16 + 2*int(cfg.DeliverTimeout/cfg.RetryEvery)
		// A patient failure detector: the soak's job is availability under
		// heavy injected faults (and the race detector's ~10x slowdown in
		// CI), where pong latency spikes are routine. Declaring links dead
		// on a short miss streak here would shred good links and cost far
		// more availability than slow failover does.
		nopts.Detector = selectcore.FailureDetector{
			SuspectAfter: 4,
			DeadAfter:    16,
			DeadCMA:      0.10,
			MinSamples:   16,
		}
	}
	// Live-join bootstrap arm: only the first BootstrapFrac of the growth
	// schedule's join order starts converged; everyone else joins live.
	var joiners []growth.Event
	if cfg.BootstrapFrac > 0 && cfg.BootstrapFrac < 1 {
		sched := growth.DefaultModel().Schedule(g, rand.New(rand.NewSource(cfg.Seed^0x9e37)))
		nBoot := int(float64(cfg.N) * cfg.BootstrapFrac)
		if nBoot < 2 {
			nBoot = 2
		}
		for _, e := range sched.Prefix(nBoot) {
			nopts.Bootstrap = append(nopts.Bootstrap, overlay.PeerID(e.User))
		}
		joiners = sched.Events[len(nopts.Bootstrap):]
	}
	cluster, err := node.Start(nopts)
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = cluster.Shutdown(ctx)
	}()

	// Duplicate-delivery watch: the durable tier's replay must never reach
	// the application twice. Count per-(subscriber, publication) arrivals
	// through the same OnDeliver push path the application would use.
	type delivKey struct {
		sub, pub int32
		seq      uint32
	}
	var dupMu sync.Mutex
	delivCount := make(map[delivKey]int)
	var dupDeliveries int64
	if cfg.Inbox {
		for _, nd := range cluster.Nodes {
			sid := int32(nd.ID())
			nd.OnDeliver(func(d node.Delivery) {
				k := delivKey{sub: sid, pub: int32(d.Publisher), seq: d.Seq}
				dupMu.Lock()
				delivCount[k]++
				if delivCount[k] > 1 {
					dupDeliveries++
				}
				dupMu.Unlock()
			})
		}
	}

	liveJoins := 0
	for _, e := range joiners {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := cluster.Join(ctx, overlay.PeerID(e.User), overlay.PeerID(e.Inviter))
		cancel()
		if err != nil {
			return nil, fmt.Errorf("soak: live join of %d: %w", e.User, err)
		}
		liveJoins++
	}

	// Live-rejoin churn driver: mirror the faultnet crash schedule onto
	// the overlay itself — a crash window really destroys the peer's
	// volatile routing state, and the end of the window walks it through
	// the join protocol again.
	var rj rejoinTracker
	rj.rejoined = make(map[overlay.PeerID]bool)
	stopDriver := make(chan struct{})
	driverCtx, driverCancel := context.WithCancel(context.Background())
	defer driverCancel()
	var driverWG sync.WaitGroup
	if cfg.LiveRejoin && fn.Schedule() != nil && cfg.Fault.Tick > 0 {
		driverWG.Add(1)
		go func() {
			defer driverWG.Done()
			crashed := make([]bool, cfg.N)
			tick := time.NewTicker(cfg.Fault.Tick)
			defer tick.Stop()
			for {
				select {
				case <-stopDriver:
					return
				case <-tick.C:
				}
				step := fn.Step()
				for p := 0; p < cfg.N; p++ {
					now := fn.CrashedAt(step, int32(p))
					switch {
					case now && !crashed[p]:
						crashed[p] = true
						cluster.Crash(overlay.PeerID(p))
					case !now && crashed[p]:
						crashed[p] = false
						pid := overlay.PeerID(p)
						driverWG.Add(1)
						go func() {
							defer driverWG.Done()
							ctx, cancel := context.WithTimeout(driverCtx, 15*time.Second)
							defer cancel()
							if cluster.Rejoin(ctx, pid, -1) == nil {
								rj.mu.Lock()
								rj.rejoined[pid] = true
								rj.rejoins++
								rj.mu.Unlock()
							}
						}()
					}
				}
			}
		}()
	}

	// Adversarial arm: lift the attack window out of the schedule, then
	// mirror it onto node adversary hooks — the attack is byzantine *peer*
	// behavior, so faultnet only decides who/when; the nodes act it out.
	attackers := make(map[overlay.PeerID]bool)
	var cohort []overlay.PeerID
	var attackStart, attackStop int
	attackKind := faultnet.AttackNone
	attackTarget := overlay.PeerID(-1)
	if s := fn.Schedule(); s != nil {
		for _, e := range s.Ev {
			switch e.Kind {
			case faultnet.EvAttackStart:
				attackKind = e.Attack
				attackStart, attackStop = e.Step, s.Steps
				attackTarget = overlay.PeerID(e.Peer)
				for _, a := range e.Side {
					attackers[overlay.PeerID(a)] = true
					cohort = append(cohort, overlay.PeerID(a))
				}
			case faultnet.EvAttackStop:
				attackStop = e.Step
			}
		}
	}
	var restabMu sync.Mutex
	restabilizeMS := -1.0
	headOccupancy := -1.0
	forgedOccupancy := -1.0
	if attackKind != faultnet.AttackNone && cfg.Fault.Tick > 0 {
		mode := node.AdvNone
		switch attackKind {
		case faultnet.AttackSybil:
			mode = node.AdvSybil
		case faultnet.AttackEclipse:
			mode = node.AdvEclipse
		case faultnet.AttackLiar:
			mode = node.AdvLiar
		}
		driverWG.Add(1)
		go func() {
			defer driverWG.Done()
			armed := false
			occHeld, occForged, occTicks := 0, 0, 0
			tick := time.NewTicker(cfg.Fault.Tick)
			defer tick.Stop()
			for {
				select {
				case <-stopDriver:
					return
				case <-tick.C:
				}
				_, _, _, active := fn.AttackAt(fn.Step())
				if active && armed {
					// Head-occupancy sample: does an attacker hold the
					// victim's ring successor or predecessor right now? This
					// is the prize both ring attacks play for (forged ε-flanks
					// for eclipse, arc-flood placements for sybil), and the
					// headline in-window damage the defenses-off ablation
					// measures — hardened correction keeps it near zero.
					occTicks++
					s, p := cluster.RingHeads(attackTarget)
					if attackers[s] || attackers[p] {
						occHeld++
						// A seat can be earned (friends are genuine ring
						// neighbors under social placement) or stolen; only a
						// view position contradicting the directory's grant
						// proves a swallowed forgery.
						if (attackers[s] && cluster.HeadForged(attackTarget, s)) ||
							(attackers[p] && cluster.HeadForged(attackTarget, p)) {
							occForged++
						}
					}
				}
				switch {
				case active && !armed:
					armed = true
					for _, a := range cohort {
						cluster.Nodes[a].SetAdversary(mode, attackTarget, cohort)
					}
				case !active && armed:
					armed = false
					stoppedAt := time.Now()
					restabMu.Lock()
					if occTicks > 0 {
						headOccupancy = float64(occHeld) / float64(occTicks)
						forgedOccupancy = float64(occForged) / float64(occTicks)
					}
					restabMu.Unlock()
					for _, a := range cohort {
						cluster.Nodes[a].SetAdversary(node.AdvNone, -1, nil)
					}
					// Sybil attackers may be stranded outside the ring
					// mid-cycle; walk them back through the join protocol
					// like churn rejoins so the network can re-converge.
					for _, a := range cohort {
						if cluster.Nodes[a].Joined() {
							continue
						}
						a := a
						driverWG.Add(1)
						go func() {
							defer driverWG.Done()
							ctx, cancel := context.WithTimeout(driverCtx, 30*time.Second)
							defer cancel()
							_ = cluster.Rejoin(ctx, a, -1)
						}()
					}
					// Restabilization probe: time from window close until
					// the victim's ring links agree with the directory
					// again — the recovery contract the report pins.
					driverWG.Add(1)
					go func() {
						defer driverWG.Done()
						deadline := time.Now().Add(60 * time.Second)
						for time.Now().Before(deadline) {
							select {
							case <-stopDriver:
								return
							default:
							}
							if cluster.RingConsistent(attackTarget) {
								ms := float64(time.Since(stoppedAt).Milliseconds())
								met.ObserveRestabilizeMS(ms)
								restabMu.Lock()
								restabilizeMS = ms
								restabMu.Unlock()
								return
							}
							time.Sleep(cfg.Fault.Tick)
						}
					}()
					return
				}
			}
		}()
	}

	// Offline-subscriber arm: crash the chosen fraction BEFORE any
	// publication goes out. They stay down through the whole workload —
	// every notification owed to them must cross the durable tier.
	offline := make(map[overlay.PeerID]bool)
	if cfg.OfflineFrac > 0 {
		orng := rand.New(rand.NewSource(cfg.Seed + offlineSeedOffset))
		want := int(cfg.OfflineFrac * float64(cfg.N))
		for _, p := range orng.Perm(cfg.N) {
			if len(offline) >= want {
				break
			}
			offline[overlay.PeerID(p)] = true
		}
		for p := range offline {
			cluster.Crash(p)
		}
	}

	// Topic flash-crowd arm: every live peer subscribes to TopicSubs
	// Zipf-drawn named topics before the flood. Topic 0 — the hot
	// hashtag — draws most of the probability mass, so its rendezvous
	// peers carry a flash crowd while churn keeps killing and re-homing
	// them mid-flood.
	var topicNames []string
	subsOf := make(map[string][]overlay.PeerID)
	var topicZipf *rand.Zipf
	if cfg.Topics > 0 {
		trng := rand.New(rand.NewSource(cfg.Seed + topicSeedOffset))
		topicZipf = rand.NewZipf(trng, cfg.TopicZipf, 1, uint64(cfg.Topics-1))
		topicNames = make([]string, cfg.Topics)
		for i := range topicNames {
			topicNames[i] = fmt.Sprintf("#topic-%d", i)
		}
		for p := 0; p < cfg.N; p++ {
			pid := overlay.PeerID(p)
			if offline[pid] {
				continue // crashed before the workload; cannot register
			}
			seen := make(map[string]bool, cfg.TopicSubs)
			for k := 0; k < cfg.TopicSubs; k++ {
				name := topicNames[topicZipf.Uint64()]
				if seen[name] {
					continue
				}
				seen[name] = true
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				_, err := cluster.Nodes[p].Topic(name).Subscribe(ctx)
				cancel()
				if err != nil {
					return nil, fmt.Errorf("soak: subscribe %d to %s: %w", p, name, err)
				}
				subsOf[name] = append(subsOf[name], pid)
			}
		}
	}

	// Workload: seeded random publishers with at least one subscriber.
	wrng := rand.New(rand.NewSource(cfg.Seed + workloadSeedOffset))
	var latencies []float64
	wanted, delivered := 0, 0
	eligibleWanted, eligibleDelivered := 0, 0
	rejoinedWanted, rejoinedDelivered := 0, 0
	hopTotal, hopCount := 0, 0
	attackWanted, attackDelivered := 0, 0
	attackHopTotal, attackHopCount := 0, 0
	type pubRecord struct {
		pub  overlay.PeerID
		seq  uint32
		subs []overlay.PeerID
	}
	var posted []pubRecord
	for post := 0; post < cfg.Posts; post++ {
		var pub overlay.PeerID
		for attempt := 0; ; attempt++ {
			pub = overlay.PeerID(wrng.Intn(cfg.N))
			if g.Degree(pub) == 0 || offline[pub] || attackers[pub] {
				continue
			}
			// Prefer a currently-live publisher; after enough tries take
			// any (churn floors keep at least half the network online, so
			// this is a formality).
			if attempt > 10*cfg.N || !fn.CrashedAt(fn.Step(), int32(pub)) {
				break
			}
		}
		var subs []overlay.PeerID
		var seq uint32
		start := time.Now()
		if cfg.Topics > 0 {
			name := topicNames[topicZipf.Uint64()]
			for _, s := range subsOf[name] {
				if s != pub {
					subs = append(subs, s)
				}
			}
			var perr error
			seq, perr = cluster.Nodes[pub].Topic(name).Publish(nil, node.WithSize(cfg.PayloadSize))
			if perr != nil {
				return nil, fmt.Errorf("soak: topic publish %s from %d: %w", name, pub, perr)
			}
		} else {
			subs = g.Neighbors(pub)
			seq, _ = cluster.Nodes[pub].Topic(node.UserTopic(pub)).Publish(nil, node.WithSize(cfg.PayloadSize))
		}
		posted = append(posted, pubRecord{pub: pub, seq: seq, subs: subs})
		// The harness only waits — and only for subscribers that are up;
		// the offline set's copies are owed through the durable tier and
		// scored after the rejoin replay. Repair — if any — is the
		// publisher's own engine re-sending on its seeded backoff schedule.
		await := subs
		if len(offline) > 0 || len(attackers) > 0 {
			await = nil
			for _, s := range subs {
				if !offline[s] && !attackers[s] {
					await = append(await, s)
				}
			}
		}
		waitCtx, waitCancel := context.WithDeadline(context.Background(), start.Add(cfg.DeliverTimeout))
		cluster.AwaitDelivery(waitCtx, pub, seq, await)
		waitCancel()
		lat := float64(time.Since(start).Milliseconds())
		latencies = append(latencies, lat)
		met.ObserveLatencyMS(lat)
		scoreStep := fn.Step()
		for _, s := range subs {
			hops, got := cluster.Nodes[s].Received(pub, seq)
			wanted++
			if got {
				delivered++
				hopTotal += int(hops)
				hopCount++
			}
			// A subscriber crashed at scoring time is not eligible: no
			// protocol can notify a dead phone. (Fig. 6 measures the
			// availability of the notification service, not of handsets.)
			// The deliberately-offline set is scored after its rejoin
			// replay instead, never here.
			// Attackers are excluded too — no availability promise is owed
			// to a byzantine peer. The victim stays eligible: that is the
			// promise under attack.
			if !fn.CrashedAt(scoreStep, int32(s)) && !offline[s] && !attackers[s] {
				eligibleWanted++
				if got {
					eligibleDelivered++
				}
				if attackKind != faultnet.AttackNone && scoreStep >= attackStart && scoreStep < attackStop {
					attackWanted++
					if got {
						attackDelivered++
						attackHopTotal += int(hops)
						attackHopCount++
					}
				}
				rj.mu.Lock()
				wasRejoined := rj.rejoined[s]
				rj.mu.Unlock()
				// The churn-arm acceptance metric: notifications owed to
				// subscribers that crashed, lost their overlay state, and
				// came back through the live join protocol.
				if wasRejoined {
					rejoinedWanted++
					if got {
						rejoinedDelivered++
					}
				}
			}
		}
	}

	// Offline-subscriber arm, second act: bring the offline set back
	// through the live join protocol and wait for the durable tier's
	// replay to deliver everything they were owed, then score EVERY
	// subscriber of every publication — the at-least-once gate.
	offlineWanted, offlineDelivered := 0, 0
	allWanted, allDelivered := 0, 0
	if len(offline) > 0 {
		for p := range offline {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := cluster.Rejoin(ctx, p, -1)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("soak: offline rejoin of %d: %w", p, err)
			}
		}
		// Replay drains highest-priority-first on the claim leases; wait
		// per publication like the workload did, now over all subscribers.
		replayDeadline := time.Now().Add(cfg.DeliverTimeout + time.Duration(len(offline))*time.Second)
		for _, pr := range posted {
			waitCtx, waitCancel := context.WithDeadline(context.Background(), replayDeadline)
			cluster.AwaitDelivery(waitCtx, pr.pub, pr.seq, pr.subs)
			waitCancel()
		}
		for _, pr := range posted {
			for _, s := range pr.subs {
				_, got := cluster.Nodes[s].Received(pr.pub, pr.seq)
				allWanted++
				if got {
					allDelivered++
				}
				if offline[s] {
					offlineWanted++
					if got {
						offlineDelivered++
					}
				}
			}
		}
	}

	// Post-churn phase: wait out the fault schedule (and, with LiveRejoin,
	// the last stragglers' re-joins), then measure what hop counts the
	// maintenance loop converged back to on a clean network.
	postHopTotal, postHopCount := 0, 0
	if cfg.PostChurnPosts > 0 && cfg.Fault.Tick > 0 && cfg.Fault.Steps > 0 {
		settle := time.Now().Add(30 * time.Second)
		for time.Now().Before(settle) {
			if fn.Step() >= cfg.Fault.Steps {
				joined := 0
				for _, nd := range cluster.Nodes {
					if nd.Joined() {
						joined++
					}
				}
				if !cfg.LiveRejoin || joined == cfg.N {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
		// Late re-joiners came back with empty strength tables and no
		// learned bitmaps; give the exchange and maintenance loops time to
		// rebuild their long links before judging overlay quality.
		if cfg.PostChurnSettle == 0 {
			cfg.PostChurnSettle = time.Second
		}
		time.Sleep(cfg.PostChurnSettle)
		for post := 0; post < cfg.PostChurnPosts; post++ {
			var pub overlay.PeerID
			for {
				pub = overlay.PeerID(wrng.Intn(cfg.N))
				if g.Degree(pub) > 0 {
					break
				}
			}
			subs := g.Neighbors(pub)
			seq, _ := cluster.Nodes[pub].Topic(node.UserTopic(pub)).Publish(nil, node.WithSize(cfg.PayloadSize))
			waitCtx, waitCancel := context.WithTimeout(context.Background(), cfg.DeliverTimeout)
			cluster.AwaitDelivery(waitCtx, pub, seq, subs)
			waitCancel()
			for _, s := range subs {
				if hops, ok := cluster.Nodes[s].Received(pub, seq); ok {
					postHopTotal += int(hops)
					postHopCount++
				}
			}
		}
	}

	close(stopDriver)
	driverCancel()
	driverWG.Wait()
	rj.mu.Lock()
	rejoins := rj.rejoins
	rj.mu.Unlock()

	// Overlay quality at the end of the run: mean link-bucket coverage
	// over peers currently in the ring.
	coverage, covered := 0.0, 0
	for _, nd := range cluster.Nodes {
		if nd.Joined() {
			coverage += nd.LinkCoverage()
			covered++
		}
	}
	if covered > 0 {
		coverage /= float64(covered)
	}

	snap := met.Snapshot()
	r := &Report{
		Config: ConfigSummary{
			N: cfg.N, Seed: cfg.Seed, Dataset: cfg.Dataset, TCP: cfg.TCP,
			Posts: cfg.Posts, Drop: cfg.Fault.DropProb, Recovery: cfg.Recovery,
			BootstrapFrac: cfg.BootstrapFrac, LiveRejoin: cfg.LiveRejoin,
			OfflineFrac: cfg.OfflineFrac, Inbox: cfg.Inbox,
			Topics: cfg.Topics, TopicZipf: cfg.TopicZipf,
			Attack: attackKind.String(), Defenses: cfg.Defenses,
		},
		Posts: cfg.Posts, Wanted: wanted, Delivered: delivered,
		EligibleWanted: eligibleWanted, EligibleDelivered: eligibleDelivered,
		HeadOccupancy: -1, ForgedOccupancy: -1,
		LiveJoins: liveJoins, Rejoins: rejoins,
		RejoinedWanted: rejoinedWanted, RejoinedDelivered: rejoinedDelivered,
		MeanLinkCoverage: coverage,
		Duplicates:       met.Get(obs.CPublishDuplicate),
		LatencyMSP50:     metrics.Quantile(latencies, 0.5),
		LatencyMSP90:     metrics.Quantile(latencies, 0.9),
		LatencyMSP99:     metrics.Quantile(latencies, 0.99),
		HopFractions:     snap.HopFractions,
		RecoveryActions:  met.Get(obs.CCMADeadSkip) + met.Get(obs.CCMARandomWalk),
		Retries:          met.Get(obs.CRetrySent),
		DeadLetters:      met.Get(obs.CDeadLetter),
		Obs:              snap,
	}
	if delivered > 0 {
		r.FramesPerDelivered = float64(met.Get(obs.CTransportSend)) / float64(delivered)
	}
	if len(offline) > 0 {
		dupMu.Lock()
		r.DuplicateDeliveries = dupDeliveries
		dupMu.Unlock()
		r.OfflineCount = len(offline)
		r.OfflineWanted, r.OfflineDelivered = offlineWanted, offlineDelivered
		r.AllWanted, r.AllDelivered = allWanted, allDelivered
		if offlineWanted > 0 {
			r.OfflineRate = float64(offlineDelivered) / float64(offlineWanted)
		}
		if allWanted > 0 {
			r.AllRate = float64(allDelivered) / float64(allWanted)
		}
		r.InboxDeposits = met.Get(obs.CInboxDeposit)
		r.InboxReplayed = met.Get(obs.CInboxReplayed)
		r.InboxDepth = cluster.InboxDepth()
	}
	if wanted > 0 {
		r.RawRate = float64(delivered) / float64(wanted)
		r.DuplicateRate = float64(r.Duplicates) / float64(wanted)
	}
	if eligibleWanted > 0 {
		r.DeliveryRate = float64(eligibleDelivered) / float64(eligibleWanted)
	}
	if rejoinedWanted > 0 {
		r.RejoinAvailability = float64(rejoinedDelivered) / float64(rejoinedWanted)
	}
	if hopCount > 0 {
		r.MeanHops = float64(hopTotal) / float64(hopCount)
	}
	if postHopCount > 0 {
		r.PostChurnMeanHops = float64(postHopTotal) / float64(postHopCount)
	}
	if cfg.Topics > 0 {
		r.Topics = cfg.Topics
		r.HotTopicSubs = len(subsOf[topicNames[0]])
		r.TopicRehomes = met.Get(obs.CTopicRehome)
		r.TopicHandoffs = met.Get(obs.CTopicHandoff)
		r.TopicFanoutCopies = met.Get(obs.CTopicFanout)
	}
	if attackKind != faultnet.AttackNone {
		r.Attack = attackKind.String()
		r.Defenses = cfg.Defenses
		r.AttackerCount = len(cohort)
		r.AttackTarget = int32(attackTarget)
		r.AttackStart, r.AttackStop = attackStart, attackStop
		r.AttackWanted, r.AttackDelivered = attackWanted, attackDelivered
		if attackWanted > 0 {
			r.AttackRate = float64(attackDelivered) / float64(attackWanted)
		}
		if attackHopCount > 0 {
			r.AttackMeanHops = float64(attackHopTotal) / float64(attackHopCount)
		}
		restabMu.Lock()
		r.RestabilizeMS = restabilizeMS
		r.HeadOccupancy = headOccupancy
		r.ForgedOccupancy = forgedOccupancy
		restabMu.Unlock()
		if r.RestabilizeMS >= 0 && cfg.MaintainEvery > 0 {
			r.RestabilizeTicks = int(r.RestabilizeMS/float64(cfg.MaintainEvery.Milliseconds())) + 1
		}
		r.SybilRejected = met.Get(obs.CSybilRejected)
		r.SybilDiverted = met.Get(obs.CSybilDiverted)
		r.EclipseDisplaced = met.Get(obs.CEclipseDisplaced)
		r.PosRejected = met.Get(obs.CPosRejected)
		r.StrengthClamped = met.Get(obs.CStrengthClamped)
	}
	if s := fn.Schedule(); s != nil {
		r.FaultEvents = len(s.Ev)
		r.FaultTrace = s.Trace()
	}
	return r, nil
}

// rejoinTracker records which peers completed the live join protocol
// again after a churn crash; shared between the churn driver's rejoin
// goroutines and the scoring loop.
type rejoinTracker struct {
	mu       sync.Mutex
	rejoined map[overlay.PeerID]bool
	rejoins  int
}

// Seed offsets keep the workload and fault streams independent of the
// graph/overlay stream while remaining pure functions of Config.Seed.
const (
	faultSeedOffset    = 1_000_003
	workloadSeedOffset = 2_000_003
	offlineSeedOffset  = 3_000_017
	topicSeedOffset    = 4_000_037
)
