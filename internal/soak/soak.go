// Package soak drives the live node runtime through a fault-injected
// transport for a sustained churn + publication workload and measures
// what the paper's Fig. 6 claims for the simulator — notification
// availability under log-normal churn with CMA-driven link recovery — on
// real message passing.
//
// A soak run is reproducible end to end: the social graph, the overlay,
// the publication workload, and the entire fault timeline all derive
// from Config.Seed, and Report.FaultTrace is the canonical rendering of
// the injected schedule, so two runs with the same seed can be diffed
// event for event (DESIGN.md §7).
package soak

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"selectps/internal/churn"
	"selectps/internal/datasets"
	"selectps/internal/faultnet"
	"selectps/internal/metrics"
	"selectps/internal/node"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/transport"
)

// Config parameterizes one soak run. The zero value is not runnable; use
// Default for a CI-sized chaos run and override from there.
type Config struct {
	// N is the cluster size; Seed drives graph, overlay, workload and
	// fault schedule alike.
	N    int
	Seed int64
	// Dataset names the social-graph generator (datasets.ByName).
	Dataset string
	// TCP switches the base transport from the in-memory switchboard to
	// real loopback sockets.
	TCP bool
	// Posts is the number of publications to drive.
	Posts int
	// PayloadSize is the notification payload in bytes (the paper's
	// 1.2 MB fragments by default).
	PayloadSize uint32

	// Fault is the failure model injected between the cluster and the
	// base transport. Tick/Steps default to cover the whole run.
	Fault faultnet.Config

	// Recovery enables SELECT's robustness machinery: heartbeats feeding
	// the per-link CMA (§III-F) and publisher-driven retries. Disabling
	// it is the ablation arm of the live Fig. 6.
	Recovery bool
	// HeartbeatEvery/GossipEvery are the node protocol periods when
	// Recovery is on.
	HeartbeatEvery time.Duration
	GossipEvery    time.Duration
	// RetryEvery is the publisher repair period; DeliverTimeout bounds
	// how long each publication may take before it is scored as is.
	RetryEvery     time.Duration
	DeliverTimeout time.Duration

	// TraceCap bounds the structured obs event trace (0 = off).
	TraceCap int
}

// Default returns a CI-sized chaos soak: 100 peers, 20 posts, 10% loss,
// churn-driven crashes, periodic partitions, recovery on.
func Default() Config {
	m := churn.DefaultModel()
	return Config{
		N: 100, Seed: 1, Dataset: "facebook", Posts: 20, PayloadSize: 1_200_000,
		Fault: faultnet.Config{
			DropProb: 0.10, DupProb: 0.02, ReorderProb: 0.02,
			DelayMin: 0, DelayMax: 2 * time.Millisecond,
			Tick: 20 * time.Millisecond, Steps: 3000,
			Churn:          &m,
			PartitionEvery: 400, PartitionFor: 50, PartitionFrac: 0.2,
		},
		Recovery:       true,
		HeartbeatEvery: 25 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
		RetryEvery:     20 * time.Millisecond,
		DeliverTimeout: 3 * time.Second,
	}
}

// Report is the outcome of one soak run.
type Report struct {
	Config ConfigSummary `json:"config"`

	// Posts is the number of publications driven; Wanted/Delivered count
	// subscriber notifications (the availability of Fig. 6 is
	// Delivered/Wanted over eligible subscribers).
	Posts     int `json:"posts"`
	Wanted    int `json:"wanted"`
	Delivered int `json:"delivered"`
	// EligibleWanted/EligibleDelivered exclude subscribers that were
	// inside a crash window when their publication was scored — a crashed
	// phone cannot display a notification in any design.
	EligibleWanted    int `json:"eligible_wanted"`
	EligibleDelivered int `json:"eligible_delivered"`

	// DeliveryRate is EligibleDelivered/EligibleWanted; RawRate counts
	// every subscriber.
	DeliveryRate float64 `json:"delivery_rate"`
	RawRate      float64 `json:"raw_rate"`

	// Duplicates is the number of redundant arrivals absorbed by dedup;
	// DuplicateRate is per wanted notification.
	Duplicates    int64   `json:"duplicates"`
	DuplicateRate float64 `json:"duplicate_rate"`

	// LatencyMSP50/90/99 are per-publication completion latencies.
	LatencyMSP50 float64 `json:"latency_ms_p50"`
	LatencyMSP90 float64 `json:"latency_ms_p90"`
	LatencyMSP99 float64 `json:"latency_ms_p99"`
	// HopFractions is the distribution of delivery hop counts.
	HopFractions []float64 `json:"hop_fractions,omitempty"`

	// RecoveryActions aggregates CMA-driven routing decisions (dead-link
	// skips + random-walk escapes) and publisher retries.
	RecoveryActions int64 `json:"recovery_actions"`
	Retries         int64 `json:"retries"`

	// FaultTrace is the canonical injected-fault schedule; identical for
	// identical seeds. FaultEvents is its event count.
	FaultEvents int    `json:"fault_events"`
	FaultTrace  string `json:"-"`

	// Obs is the full counter/histogram snapshot.
	Obs obs.Snapshot `json:"obs"`
}

// ConfigSummary is the part of the config echoed into the report.
type ConfigSummary struct {
	N        int     `json:"n"`
	Seed     int64   `json:"seed"`
	Dataset  string  `json:"dataset"`
	TCP      bool    `json:"tcp"`
	Posts    int     `json:"posts"`
	Drop     float64 `json:"drop"`
	Recovery bool    `json:"recovery"`
}

// String renders the report like the repo's other experiment harnesses.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: n=%d seed=%d dataset=%s tcp=%v recovery=%v drop=%.2f\n",
		r.Config.N, r.Config.Seed, r.Config.Dataset, r.Config.TCP, r.Config.Recovery, r.Config.Drop)
	fmt.Fprintf(&b, "publications: %d   notifications: %d/%d (%.2f%% raw)\n",
		r.Posts, r.Delivered, r.Wanted, 100*r.RawRate)
	fmt.Fprintf(&b, "availability (eligible subscribers): %d/%d = %.2f%%\n",
		r.EligibleDelivered, r.EligibleWanted, 100*r.DeliveryRate)
	fmt.Fprintf(&b, "duplicates absorbed: %d (%.3f per notification)\n", r.Duplicates, r.DuplicateRate)
	fmt.Fprintf(&b, "publication latency: p50=%.0fms p90=%.0fms p99=%.0fms\n",
		r.LatencyMSP50, r.LatencyMSP90, r.LatencyMSP99)
	fmt.Fprintf(&b, "recovery actions: %d (cma skips/walks) + %d retries\n", r.RecoveryActions, r.Retries)
	fmt.Fprintf(&b, "injected fault events: %d\n", r.FaultEvents)
	b.WriteString(r.Obs.String())
	return b.String()
}

// Run executes one soak and returns its report.
func Run(cfg Config) (*Report, error) {
	if cfg.N <= 0 || cfg.Posts <= 0 {
		return nil, fmt.Errorf("soak: need positive N and Posts")
	}
	if cfg.Dataset == "" {
		cfg.Dataset = "facebook"
	}
	if cfg.DeliverTimeout == 0 {
		cfg.DeliverTimeout = 3 * time.Second
	}
	if cfg.RetryEvery == 0 {
		cfg.RetryEvery = 20 * time.Millisecond
	}
	spec, err := datasets.ByName(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	g := spec.Generate(cfg.N, cfg.Seed)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	met := obs.New()
	if cfg.TraceCap > 0 {
		met.EnableTrace(cfg.TraceCap)
	}
	var base transport.Transport
	if cfg.TCP {
		t, err := transport.NewTCP(cfg.N, 4096)
		if err != nil {
			return nil, err
		}
		t.Obs = met
		base = t
	} else {
		sw := transport.NewSwitchboard(cfg.N, 4096)
		sw.Obs = met
		base = sw
	}
	fn := faultnet.Wrap(base, cfg.N, cfg.Fault, cfg.Seed+faultSeedOffset)
	fn.Obs = met

	ncfg := node.Config{Obs: met}
	if cfg.Recovery {
		ncfg.HeartbeatEvery = cfg.HeartbeatEvery
		ncfg.GossipEvery = cfg.GossipEvery
	}
	cluster := node.StartCluster(g, ov, fn, ncfg, cfg.Seed)
	defer cluster.Stop()

	// Workload: seeded random publishers with at least one subscriber.
	wrng := rand.New(rand.NewSource(cfg.Seed + workloadSeedOffset))
	var latencies []float64
	wanted, delivered := 0, 0
	eligibleWanted, eligibleDelivered := 0, 0
	for post := 0; post < cfg.Posts; post++ {
		var pub overlay.PeerID
		for attempt := 0; ; attempt++ {
			pub = overlay.PeerID(wrng.Intn(cfg.N))
			if g.Degree(pub) == 0 {
				continue
			}
			// Prefer a currently-live publisher; after enough tries take
			// any (churn floors keep at least half the network online, so
			// this is a formality).
			if attempt > 10*cfg.N || !fn.CrashedAt(fn.Step(), int32(pub)) {
				break
			}
		}
		subs := g.Neighbors(pub)
		start := time.Now()
		seq := cluster.Nodes[pub].Publish(cfg.PayloadSize)
		deadline := start.Add(cfg.DeliverTimeout)
		for {
			done := 0
			for _, s := range subs {
				if _, ok := cluster.Nodes[s].Received(pub, seq); ok {
					done++
				}
			}
			if done == len(subs) || time.Now().After(deadline) {
				break
			}
			if cfg.Recovery {
				cluster.Nodes[pub].RetryMissing(seq)
			}
			time.Sleep(cfg.RetryEvery)
		}
		lat := float64(time.Since(start).Milliseconds())
		latencies = append(latencies, lat)
		met.ObserveLatencyMS(lat)
		scoreStep := fn.Step()
		for _, s := range subs {
			_, got := cluster.Nodes[s].Received(pub, seq)
			wanted++
			if got {
				delivered++
			}
			// A subscriber crashed at scoring time is not eligible: no
			// protocol can notify a dead phone. (Fig. 6 measures the
			// availability of the notification service, not of handsets.)
			if !fn.CrashedAt(scoreStep, int32(s)) {
				eligibleWanted++
				if got {
					eligibleDelivered++
				}
			}
		}
	}

	snap := met.Snapshot()
	r := &Report{
		Config: ConfigSummary{
			N: cfg.N, Seed: cfg.Seed, Dataset: cfg.Dataset, TCP: cfg.TCP,
			Posts: cfg.Posts, Drop: cfg.Fault.DropProb, Recovery: cfg.Recovery,
		},
		Posts: cfg.Posts, Wanted: wanted, Delivered: delivered,
		EligibleWanted: eligibleWanted, EligibleDelivered: eligibleDelivered,
		Duplicates:      met.Get(obs.CPublishDuplicate),
		LatencyMSP50:    metrics.Quantile(latencies, 0.5),
		LatencyMSP90:    metrics.Quantile(latencies, 0.9),
		LatencyMSP99:    metrics.Quantile(latencies, 0.99),
		HopFractions:    snap.HopFractions,
		RecoveryActions: met.Get(obs.CCMADeadSkip) + met.Get(obs.CCMARandomWalk),
		Retries:         met.Get(obs.CRetrySent),
		Obs:             snap,
	}
	if wanted > 0 {
		r.RawRate = float64(delivered) / float64(wanted)
		r.DuplicateRate = float64(r.Duplicates) / float64(wanted)
	}
	if eligibleWanted > 0 {
		r.DeliveryRate = float64(eligibleDelivered) / float64(eligibleWanted)
	}
	if s := fn.Schedule(); s != nil {
		r.FaultEvents = len(s.Ev)
		r.FaultTrace = s.Trace()
	}
	return r, nil
}

// Seed offsets keep the workload and fault streams independent of the
// graph/overlay stream while remaining pure functions of Config.Seed.
const (
	faultSeedOffset    = 1_000_003
	workloadSeedOffset = 2_000_003
)
