package wire

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindPing: "ping", KindPong: "pong", KindExchangeRT: "exchange-rt",
		KindExchangeReply: "exchange-reply", KindPublish: "publish", KindAck: "ack",
		KindJoinRequest: "join-request", KindJoinReply: "join-reply",
		KindIDAnnounce: "id-announce", KindLinkProposal: "link-proposal",
		KindLinkAccept: "link-accept", KindLinkDrop: "link-drop",
		KindLeave: "leave", KindTopicSub: "topic-sub", KindTopicSubAck: "topic-sub-ack",
		KindTopicUnsub: "topic-unsub", KindTopicPub: "topic-pub",
		KindTopicPubAck: "topic-pub-ack", KindTopicHandoff: "topic-handoff",
		Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestRoundTripAllFields(t *testing.T) {
	m := &Message{
		Kind:         KindExchangeReply,
		From:         3,
		To:           77,
		Seq:          0xDEADBEEF,
		Neighborhood: []int32{1, 2, 3},
		RoutingTable: []int32{9, 8},
		NMutual:      -5,
		Bitmap:       []uint64{0xFFFF, 0, 42},
		Publisher:    12,
		TTL:          7,
		PayloadSize:  1_200_000,
		HopCount:     3,
		Payload:      []byte("notification body"),
		Pos:          0x3FE0000000000000, // 0.5
		Succs:        []int32{4, 5, 6},
		SuccPos:      []uint64{0x3FE0000000000000, 0x3FD0000000000000, 1},
		Preds:        []int32{2, 1},
		PredPos:      []uint64{0x3FC0000000000000, 0},
		Target:       42,
		Priority:     2,
		Topic:        []byte("#hashtag"),
	}
	frame := Marshal(m)
	length := binary.LittleEndian.Uint32(frame)
	if int(length) != len(frame)-4 {
		t.Fatalf("length prefix %d != body %d", length, len(frame)-4)
	}
	got, err := Unmarshal(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n  in: %+v\n out: %+v", m, got)
	}
}

func TestRoundTripEmptySlices(t *testing.T) {
	m := &Message{Kind: KindPing, From: 1, To: 2, Seq: 3}
	got, err := Unmarshal(Marshal(m)[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("mismatch: %+v vs %+v", m, got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty frame accepted")
	}
	m := &Message{Kind: KindPublish, Publisher: 5, TTL: 2}
	frame := Marshal(m)[4:]
	for cut := 1; cut < len(frame); cut++ {
		if _, err := Unmarshal(frame[:cut]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes accepted", cut, len(frame))
		}
	}
	// Trailing garbage must be rejected.
	if _, err := Unmarshal(append(append([]byte{}, frame...), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Absurd slice length must be rejected, not allocated.
	bad := append([]byte{}, frame...)
	binary.LittleEndian.PutUint32(bad[13:], 1<<30) // neighborhood length field
	if _, err := Unmarshal(bad); err == nil {
		t.Error("giant slice length accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Message{
			Kind:        Kind(1 + rng.Intn(13)),
			From:        int32(rng.Intn(1 << 20)),
			To:          int32(rng.Intn(1 << 20)),
			Seq:         rng.Uint32(),
			NMutual:     int32(rng.Intn(1000) - 500),
			Publisher:   int32(rng.Intn(1 << 20)),
			TTL:         uint8(rng.Intn(256)),
			PayloadSize: rng.Uint32(),
			HopCount:    uint8(rng.Intn(256)),
		}
		if n := rng.Intn(20); n > 0 {
			m.Neighborhood = make([]int32, n)
			for i := range m.Neighborhood {
				m.Neighborhood[i] = int32(rng.Intn(1 << 16))
			}
		}
		if n := rng.Intn(20); n > 0 {
			m.RoutingTable = make([]int32, n)
			for i := range m.RoutingTable {
				m.RoutingTable[i] = int32(rng.Intn(1 << 16))
			}
		}
		if n := rng.Intn(8); n > 0 {
			m.Bitmap = make([]uint64, n)
			for i := range m.Bitmap {
				m.Bitmap[i] = rng.Uint64()
			}
		}
		if n := rng.Intn(64); n > 0 {
			m.Payload = make([]byte, n)
			rng.Read(m.Payload)
		}
		if n := rng.Intn(16); n > 0 {
			m.Topic = make([]byte, n)
			rng.Read(m.Topic)
		}
		if n := rng.Intn(6); n > 0 {
			m.Succs = make([]int32, n)
			m.SuccPos = make([]uint64, n)
			for i := range m.Succs {
				m.Succs[i] = int32(rng.Intn(1 << 16))
				m.SuccPos[i] = rng.Uint64()
			}
		}
		if n := rng.Intn(6); n > 0 {
			m.Preds = make([]int32, n)
			m.PredPos = make([]uint64, n)
			for i := range m.Preds {
				m.Preds[i] = int32(rng.Intn(1 << 16))
				m.PredPos[i] = rng.Uint64()
			}
		}
		m.Pos = rng.Uint64()
		got, err := Unmarshal(Marshal(m)[4:])
		return err == nil && reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
