package wire

import (
	"bytes"
	"testing"
)

// hotKinds are the steady-state messages of a quiet cluster: heartbeat
// pings/pongs (with ring-list piggybacks) and publish/ack traffic. The
// fast-path contract is that marshaling and reused-struct unmarshaling of
// these kinds never allocates.
func hotKinds() []*Message {
	return []*Message{
		{Kind: KindPing, From: 3, To: 9, Seq: 101},
		{
			Kind: KindPong, From: 9, To: 3, Seq: 101, Pos: 0x3FE0000000000000,
			Succs: []int32{4, 5, 6, 7}, SuccPos: []uint64{1, 2, 3, 4},
			Preds: []int32{2, 1, 0, 8}, PredPos: []uint64{5, 6, 7, 8},
		},
		{
			Kind: KindPublish, From: 3, To: 9, Seq: 55,
			Publisher: 3, TTL: 32, PayloadSize: 64, HopCount: 1,
			Payload: bytes.Repeat([]byte("x"), 64),
		},
		{Kind: KindAck, From: 9, To: 3, Seq: 55, Publisher: 3, TTL: 31},
		{
			Kind: KindAckBatch, From: 9, To: 3, Seq: 56,
			Acks: []AckEntry{
				{Kind: KindAck, From: 9, Dest: 3, Pub: 3, Seq: 55, TTL: 31},
				{Kind: KindAck, From: 9, Dest: 3, Pub: 3, Seq: 56, TTL: 31},
				{Kind: KindInboxDepositAck, From: 9, Dest: 3, Pub: 3, Seq: 57, Target: 12},
				{Kind: KindTopicPubAck, From: 9, Dest: 3, Pub: 3, Seq: 58},
			},
		},
	}
}

func TestMarshalAppendMatchesMarshal(t *testing.T) {
	for _, m := range append(fuzzSeeds(), hotKinds()...) {
		want := Marshal(m)
		if got := MarshalAppend(nil, m); !bytes.Equal(got, want) {
			t.Fatalf("kind %v: MarshalAppend(nil) != Marshal:\n got %x\nwant %x", m.Kind, got, want)
		}
		// Appending after existing bytes must leave the prefix intact and
		// produce the same frame after it.
		prefix := []byte{0xAA, 0xBB, 0xCC}
		got := MarshalAppend(append([]byte(nil), prefix...), m)
		if !bytes.Equal(got[:3], prefix) || !bytes.Equal(got[3:], want) {
			t.Fatalf("kind %v: append-mode frame corrupted", m.Kind)
		}
	}
}

// TestMarshalAppendZeroAllocHotKinds pins the zero-alloc contract: with a
// warm reused buffer, marshaling any hot kind costs 0 allocs/op.
func TestMarshalAppendZeroAllocHotKinds(t *testing.T) {
	for _, m := range hotKinds() {
		buf := make([]byte, 0, 4096)
		if allocs := testing.AllocsPerRun(200, func() {
			buf = MarshalAppend(buf[:0], m)
		}); allocs != 0 {
			t.Errorf("MarshalAppend(%v) = %.1f allocs/op, want 0", m.Kind, allocs)
		}
	}
}

// TestUnmarshalIntoZeroAllocHotKinds pins the decode side: a Message
// reused across frames of the same shape steady-states at 0 allocs/op.
func TestUnmarshalIntoZeroAllocHotKinds(t *testing.T) {
	for _, src := range hotKinds() {
		frame := Marshal(src)[4:]
		var m Message
		if err := UnmarshalInto(&m, frame); err != nil { // warm-up grows the slices
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if err := UnmarshalInto(&m, frame); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("UnmarshalInto(%v) = %.1f allocs/op, want 0", src.Kind, allocs)
		}
	}
}

// TestUnmarshalIntoDirtyReuse decodes frames of very different shapes
// through one reused Message and checks each decode is indistinguishable
// from a fresh Unmarshal (stale slices from the previous frame must not
// leak through).
func TestUnmarshalIntoDirtyReuse(t *testing.T) {
	var m Message
	seeds := fuzzSeeds()
	// Big → small → big: shrinking reuses capacity, growing reallocates.
	order := append(append([]*Message{}, seeds...), seeds[0], seeds[8], seeds[0])
	for _, src := range order {
		frame := Marshal(src)[4:]
		if err := UnmarshalInto(&m, frame); err != nil {
			t.Fatalf("kind %v: %v", src.Kind, err)
		}
		if got := Marshal(&m)[4:]; !bytes.Equal(got, frame) {
			t.Fatalf("kind %v: dirty-reuse roundtrip diverged:\n got %x\nwant %x", src.Kind, got, frame)
		}
	}
}

func TestPatchToAndSeq(t *testing.T) {
	for _, m := range append(fuzzSeeds(), hotKinds()...) {
		frame := Marshal(m)
		patched := *m
		patched.To = m.To + 1000
		patched.Seq = m.Seq + 7
		PatchTo(frame, patched.To)
		PatchSeq(frame, patched.Seq)
		// The patched frame must be byte-identical to marshaling the
		// patched message — the helpers are the codec, not offset guesses.
		if want := Marshal(&patched); !bytes.Equal(frame, want) {
			t.Fatalf("kind %v: patched frame != remarshal:\n got %x\nwant %x", m.Kind, frame, want)
		}
	}
}

func TestFramePoolRecycles(t *testing.T) {
	b := GetFrame()
	*b = MarshalAppend((*b)[:0], hotKinds()[0])
	if len(*b) == 0 {
		t.Fatal("empty frame")
	}
	PutFrame(b)
	c := GetFrame()
	if len(*c) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(*c))
	}
	PutFrame(c)
	// Oversized buffers are dropped, not pooled.
	huge := make([]byte, 0, maxPooledFrame+1)
	PutFrame(&huge) // must not panic; buffer is discarded
	PutFrame(nil)   // nil-safe
}
