package wire

import "testing"

func benchMessage() *Message {
	return &Message{
		Kind: KindExchangeRT, From: 12, To: 99, Seq: 7,
		Neighborhood: []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		RoutingTable: []int32{20, 21, 22, 23, 24, 25, 26, 27},
		Bitmap:       []uint64{0xDEAD, 0xBEEF},
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(m)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	frame := Marshal(benchMessage())[4:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}
