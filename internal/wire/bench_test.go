package wire

import "testing"

func benchMessage() *Message {
	return &Message{
		Kind: KindExchangeRT, From: 12, To: 99, Seq: 7,
		Neighborhood: []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		RoutingTable: []int32{20, 21, 22, 23, 24, 25, 26, 27},
		Bitmap:       []uint64{0xDEAD, 0xBEEF},
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(m)
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	frame := Marshal(benchMessage())[4:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalAppend(b *testing.B) {
	m := benchMessage()
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = MarshalAppend(buf[:0], m)
	}
}

func BenchmarkUnmarshalInto(b *testing.B) {
	frame := Marshal(benchMessage())[4:]
	var m Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := UnmarshalInto(&m, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalPublishFanout models the publisher's fan-out: one
// invariant publish frame patched per destination, vs re-marshaling.
func BenchmarkMarshalPublishFanout(b *testing.B) {
	m := &Message{
		Kind: KindPublish, From: 1, Seq: 9, Publisher: 1, TTL: 32,
		PayloadSize: 256, Payload: make([]byte, 256),
	}
	const fanout = 32
	b.Run("remarshal", func(b *testing.B) {
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for to := int32(0); to < fanout; to++ {
				m.To = to
				buf = MarshalAppend(buf[:0], m)
			}
		}
	})
	b.Run("patchto", func(b *testing.B) {
		buf := MarshalAppend(make([]byte, 0, 4096), m)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for to := int32(0); to < fanout; to++ {
				PatchTo(buf, to)
			}
		}
	})
}
