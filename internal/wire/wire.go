// Package wire defines the message protocol of the live SELECT deployment
// (internal/node): the peer-sampling exchange of Algorithms 3–4, the
// heartbeat probes behind the CMA recovery (§III-F), and publication
// forwarding. Messages use a compact length-prefixed binary encoding
// (encoding/binary, little endian) suitable for both the in-memory and the
// TCP transport.
//
// The paper's demo system speaks WebRTC between browsers; this package is
// its stand-in at the protocol layer (DESIGN.md §2).
package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Kind discriminates message types.
type Kind uint8

// Message kinds.
const (
	// KindPing probes a peer's liveness (§III-F heartbeats).
	KindPing Kind = iota + 1
	// KindPong answers a ping.
	KindPong
	// KindExchangeRT carries a peer's social neighborhood C_p and routing
	// table R_p to a random friend (Algorithm 3 line 3).
	KindExchangeRT
	// KindExchangeReply returns the mutual-friend count and the friendship
	// bitmap (Algorithm 4 line 6).
	KindExchangeReply
	// KindPublish carries a publication being disseminated.
	KindPublish
	// KindAck confirms a publication reached a subscriber.
	KindAck
	// KindJoinRequest asks a running member to admit the sender: the
	// inviter computes the joiner's Algorithm-1 position inside its free
	// clockwise arc (or a uniform hash position for independent joins).
	KindJoinRequest
	// KindJoinReply admits a joiner: Pos carries the assigned ring
	// identifier, RoutingTable the inviter's links as seed contacts.
	KindJoinReply
	// KindIDAnnounce broadcasts the sender's current ring identifier (Pos)
	// after a join or an Algorithm-2 reassignment.
	KindIDAnnounce
	// KindLinkProposal asks the receiver to accept a long-range link from
	// the sender (Algorithm 5 establishment).
	KindLinkProposal
	// KindLinkAccept confirms a proposed long-range link.
	KindLinkAccept
	// KindLinkDrop tears a long-range link down in both directions:
	// proposal rejected (K-incoming cap), eviction of a worse-bandwidth
	// incoming link, or budget shedding by the link's owner.
	KindLinkDrop
	// KindLeave announces a graceful departure; receivers unlink the
	// sender immediately instead of waiting for the CMA to decay.
	KindLeave
	// KindInboxDeposit stores a publication on an inbox replica for an
	// offline subscriber (Target): the publisher's repair engine hands
	// the copy to the durable tier instead of dead-lettering it
	// (DESIGN.md §12). Publisher/Seq identify the publication, Priority
	// its replay class.
	KindInboxDeposit
	// KindInboxDepositAck confirms a deposit is persisted in the
	// replica's append log.
	KindInboxDepositAck
	// KindInboxClaim is sent by a (re)joined subscriber to one replica
	// at a time, in seeded-deterministic lease order, asking it to
	// replay the subscriber's inbox. Seq correlates the claim cycle.
	KindInboxClaim
	// KindInboxLease answers a claim: NMutual carries the number of
	// pending deposits the replica holds (0 both for an empty inbox and
	// as the final "drained" notice that releases the lease).
	KindInboxLease
	// KindInboxReplay delivers a stored publication from a replica to
	// its subscriber (Target), highest priority class first.
	KindInboxReplay
	// KindInboxReplayAck acknowledges a replayed publication so the
	// replica can ack the log record and compact it away.
	KindInboxReplayAck
	// KindTopicSub registers the sender as a subscriber of Topic at a
	// rendezvous replica, refreshing its lease (DESIGN.md §13). Sent
	// point-to-point to every member of the topic's rendezvous set.
	KindTopicSub
	// KindTopicSubAck confirms a registration; Seq echoes the TopicSub.
	KindTopicSubAck
	// KindTopicUnsub removes the sender's registration and asks the
	// receiver to purge any inbox deposits it still journals for
	// (sender, topic) — sent both to the rendezvous set and to the
	// sender's own inbox replicas so a departed subscriber cannot
	// strand journal entries.
	KindTopicUnsub
	// KindTopicPub carries a topic publication. Target < 0 marks the
	// publisher→rendezvous hand-off hop (accepted by whichever replica
	// receives it); Target >= 0 marks a dissemination-tree copy whose
	// acks flow back to the rendezvous peer Target, with RoutingTable
	// carrying the receiver's subtree of subscribers to forward on to.
	KindTopicPub
	// KindTopicPubAck confirms a rendezvous replica accepted a
	// publication for fan-out (the publisher retries the hand-off until
	// every live replica of the current rendezvous set has acked).
	KindTopicPubAck
	// KindTopicHandoff transfers a topic's subscriber registry
	// (RoutingTable) from a peer that lost rendezvous ownership — an
	// Algorithm-2 ID move or membership change shifted the set — to a
	// current member of the set.
	KindTopicHandoff
	// KindAckBatch coalesces several acknowledgements bound for the same
	// next hop into one frame (DESIGN.md §15). Each Acks entry carries a
	// complete single-ack description (original kind, acker, destination,
	// publication id) so the receiver can consume entries addressed to it
	// and re-batch the rest hop by hop.
	KindAckBatch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPing:
		return "ping"
	case KindPong:
		return "pong"
	case KindExchangeRT:
		return "exchange-rt"
	case KindExchangeReply:
		return "exchange-reply"
	case KindPublish:
		return "publish"
	case KindAck:
		return "ack"
	case KindJoinRequest:
		return "join-request"
	case KindJoinReply:
		return "join-reply"
	case KindIDAnnounce:
		return "id-announce"
	case KindLinkProposal:
		return "link-proposal"
	case KindLinkAccept:
		return "link-accept"
	case KindLinkDrop:
		return "link-drop"
	case KindLeave:
		return "leave"
	case KindInboxDeposit:
		return "inbox-deposit"
	case KindInboxDepositAck:
		return "inbox-deposit-ack"
	case KindInboxClaim:
		return "inbox-claim"
	case KindInboxLease:
		return "inbox-lease"
	case KindInboxReplay:
		return "inbox-replay"
	case KindInboxReplayAck:
		return "inbox-replay-ack"
	case KindTopicSub:
		return "topic-sub"
	case KindTopicSubAck:
		return "topic-sub-ack"
	case KindTopicUnsub:
		return "topic-unsub"
	case KindTopicPub:
		return "topic-pub"
	case KindTopicPubAck:
		return "topic-pub-ack"
	case KindTopicHandoff:
		return "topic-handoff"
	case KindAckBatch:
		return "ack-batch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one protocol message. Field usage depends on Kind; unused
// fields stay zero and encode compactly.
type Message struct {
	Kind Kind
	// From and To are the logical peer ids (dense indexes).
	From, To int32
	// Seq correlates requests and replies, and identifies publications
	// ((Publisher,Seq) is the message id for dedup).
	Seq uint32

	// ExchangeRT: the sender's social neighborhood and routing table.
	Neighborhood []int32
	RoutingTable []int32

	// ExchangeReply: the mutual count and the friendship bitmap words.
	NMutual int32
	Bitmap  []uint64

	// Publish: the originating publisher, remaining TTL, and the payload
	// size in bytes. Size-only workloads (the paper's 1.2 MB fragments)
	// set PayloadSize without materializing a body; Publish(payload)
	// carries the body in Payload and keeps PayloadSize = len(Payload).
	Publisher   int32
	TTL         uint8
	PayloadSize uint32
	// HopCount accumulates the overlay hops this copy has traveled.
	HopCount uint8

	// Payload is the publication body (may be empty for size-only
	// workloads and non-publish kinds).
	Payload []byte
	// Pos carries a ring identifier (math.Float64bits): the assigned
	// position in JoinReply, the announced position in IDAnnounce, and
	// the sender's own position on Pong (for successor-list learning).
	Pos uint64

	// Succs/Preds carry the sender's r-deep successor/predecessor lists
	// with parallel ring positions (math.Float64bits), piggybacked on
	// Pong and JoinReply so every node learns enough ring redundancy to
	// splice around a dead neighbor locally (DESIGN.md §9). SuccPos[i]
	// is the position of Succs[i]; likewise for preds.
	Succs   []int32
	SuccPos []uint64
	Preds   []int32
	PredPos []uint64

	// Inbox kinds: Target is the subscriber the deposit/replay concerns
	// (From/To are only the hop endpoints), Priority its replay class
	// (0=HIGH, 1=MEDIUM, 2=LOW — internal/inbox). Both ride at the end
	// of the frame so the PatchTo/PatchSeq header offsets are untouched.
	Target   int32
	Priority uint8

	// Topic names the topic a Topic* kind concerns (raw UTF-8 bytes).
	// Appended after Priority so, like Target/Priority before it, the
	// PatchTo/PatchSeq header offsets stay valid.
	Topic []byte

	// Acks carries the coalesced acknowledgements of a KindAckBatch
	// frame. Encoded as a count plus fixed-width records at the very end
	// of the frame, after Topic, keeping the PatchTo/PatchSeq offsets
	// valid; non-batch kinds leave it empty for +4 bytes of overhead.
	Acks []AckEntry
}

// AckEntry is one acknowledgement inside a KindAckBatch frame. It is a
// self-contained rendering of the single-ack frame it replaces: Kind is
// the original ack kind (KindAck, KindInboxDepositAck or
// KindTopicPubAck), From the acking peer, Dest the peer the ack must
// reach, Pub/Seq the publication id, Target the offline subscriber a
// deposit ack concerns, and TTL the remaining relay budget for routed
// (KindAck) entries.
type AckEntry struct {
	Kind   Kind
	From   int32
	Dest   int32
	Pub    int32
	Seq    uint32
	Target int32
	TTL    uint8
}

// ackEntrySize is the fixed wire width of one AckEntry record: kind (1),
// from (4), dest (4), pub (4), seq (4), target (4), ttl (1).
const ackEntrySize = 1 + 4 + 4 + 4 + 4 + 4 + 1

const maxSliceLen = 1 << 20 // defensive decode bound

// Clone returns a deep copy of m. Receivers mutate TTL and HopCount in
// place, so any component that fans one message out to several inboxes
// (e.g. faultnet duplication) must hand each receiver its own copy.
func (m *Message) Clone() *Message {
	c := *m
	if m.Neighborhood != nil {
		c.Neighborhood = append([]int32(nil), m.Neighborhood...)
	}
	if m.RoutingTable != nil {
		c.RoutingTable = append([]int32(nil), m.RoutingTable...)
	}
	if m.Bitmap != nil {
		c.Bitmap = append([]uint64(nil), m.Bitmap...)
	}
	if m.Payload != nil {
		c.Payload = append([]byte(nil), m.Payload...)
	}
	if m.Succs != nil {
		c.Succs = append([]int32(nil), m.Succs...)
	}
	if m.SuccPos != nil {
		c.SuccPos = append([]uint64(nil), m.SuccPos...)
	}
	if m.Preds != nil {
		c.Preds = append([]int32(nil), m.Preds...)
	}
	if m.PredPos != nil {
		c.PredPos = append([]uint64(nil), m.PredPos...)
	}
	if m.Topic != nil {
		c.Topic = append([]byte(nil), m.Topic...)
	}
	if m.Acks != nil {
		c.Acks = append([]AckEntry(nil), m.Acks...)
	}
	return &c
}

// Frame layout (after the 4-byte little-endian length prefix): kind (1),
// from (4), to (4), seq (4), then the variable-length fields. The fixed
// header offsets below are what PatchTo/PatchSeq rely on; they are part of
// the codec, not an implementation detail — node's fan-out fast path
// patches destinations into a marshaled frame through them.
const (
	frameToOffset  = 4 + 1 + 4 // prefix + kind + from
	frameSeqOffset = frameToOffset + 4
)

// frameSize returns the body size (without the length prefix) m encodes
// to.
func frameSize(m *Message) int {
	return 1 + 4 + 4 + 4 + // kind, from, to, seq
		4 + 4*len(m.Neighborhood) +
		4 + 4*len(m.RoutingTable) +
		4 + // nmutual
		4 + 8*len(m.Bitmap) +
		4 + 1 + 4 + 1 + // publisher, ttl, payloadsize, hopcount
		4 + len(m.Payload) + // payload body
		8 + // pos
		4 + 4*len(m.Succs) + 4 + 8*len(m.SuccPos) +
		4 + 4*len(m.Preds) + 4 + 8*len(m.PredPos) +
		4 + 1 + // target, priority
		4 + len(m.Topic) + // topic
		4 + ackEntrySize*len(m.Acks) // ack batch
}

// Marshal encodes m into a self-delimited frame (4-byte length prefix).
func Marshal(m *Message) []byte {
	return MarshalAppend(nil, m)
}

// MarshalAppend appends m's self-delimited frame to dst and returns the
// extended slice. When dst has enough spare capacity the encode performs
// zero allocations — pair it with GetFrame/PutFrame (or any caller-owned
// scratch buffer) to keep steady-state marshaling off the heap.
func MarshalAppend(dst []byte, m *Message) []byte {
	size := frameSize(m)
	start := len(dst)
	if cap(dst)-start < 4+size {
		grown := make([]byte, start, start+4+size)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+4+size]
	buf := dst[start:]
	binary.LittleEndian.PutUint32(buf, uint32(size))
	b := buf[4:]
	b[0] = byte(m.Kind)
	off := 1
	put32 := func(v int32) {
		binary.LittleEndian.PutUint32(b[off:], uint32(v))
		off += 4
	}
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[off:], v)
		off += 4
	}
	put32(m.From)
	put32(m.To)
	putU32(m.Seq)
	putU32(uint32(len(m.Neighborhood)))
	for _, v := range m.Neighborhood {
		put32(v)
	}
	putU32(uint32(len(m.RoutingTable)))
	for _, v := range m.RoutingTable {
		put32(v)
	}
	put32(m.NMutual)
	putU32(uint32(len(m.Bitmap)))
	for _, w := range m.Bitmap {
		binary.LittleEndian.PutUint64(b[off:], w)
		off += 8
	}
	put32(m.Publisher)
	b[off] = m.TTL
	off++
	putU32(m.PayloadSize)
	b[off] = m.HopCount
	off++
	putU32(uint32(len(m.Payload)))
	off += copy(b[off:], m.Payload)
	binary.LittleEndian.PutUint64(b[off:], m.Pos)
	off += 8
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[off:], v)
		off += 8
	}
	putU32(uint32(len(m.Succs)))
	for _, v := range m.Succs {
		put32(v)
	}
	putU32(uint32(len(m.SuccPos)))
	for _, v := range m.SuccPos {
		put64(v)
	}
	putU32(uint32(len(m.Preds)))
	for _, v := range m.Preds {
		put32(v)
	}
	putU32(uint32(len(m.PredPos)))
	for _, v := range m.PredPos {
		put64(v)
	}
	put32(m.Target)
	b[off] = m.Priority
	off++
	putU32(uint32(len(m.Topic)))
	off += copy(b[off:], m.Topic)
	putU32(uint32(len(m.Acks)))
	for i := range m.Acks {
		e := &m.Acks[i]
		b[off] = byte(e.Kind)
		off++
		put32(e.From)
		put32(e.Dest)
		put32(e.Pub)
		putU32(e.Seq)
		put32(e.Target)
		b[off] = e.TTL
		off++
	}
	return dst[:start+4+off]
}

// PatchTo rewrites the To field of a marshaled frame in place. The frame
// must include its length prefix (as produced by Marshal/MarshalAppend).
func PatchTo(frame []byte, to int32) {
	binary.LittleEndian.PutUint32(frame[frameToOffset:], uint32(to))
}

// PatchSeq rewrites the Seq field of a marshaled frame in place. Like
// PatchTo it operates on a full frame with its length prefix.
func PatchSeq(frame []byte, seq uint32) {
	binary.LittleEndian.PutUint32(frame[frameSeqOffset:], seq)
}

// maxPooledFrame bounds the capacity PutFrame retains: buffers grown past
// it (a large publication payload) are dropped instead of pinning that
// memory in the pool forever.
const maxPooledFrame = 1 << 16

var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// GetFrame returns a pooled, zero-length frame buffer for MarshalAppend.
// Return it with PutFrame once the frame has been written (or copied) out.
func GetFrame() *[]byte {
	return framePool.Get().(*[]byte)
}

// PutFrame recycles a buffer obtained from GetFrame. Buffers that grew
// past maxPooledFrame are released to the GC instead.
func PutFrame(b *[]byte) {
	if b == nil || cap(*b) > maxPooledFrame {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// Unmarshal decodes one frame produced by Marshal (without the length
// prefix, i.e. the payload after framing).
func Unmarshal(b []byte) (*Message, error) {
	m := &Message{}
	if err := UnmarshalInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// growI32 resizes s to n entries, reusing its backing array when the
// capacity allows (the decode overwrites every entry). n == 0 keeps the
// slice's identity: nil stays nil, a reused slice keeps its capacity.
func growI32(s []int32, n int) []int32 {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]int32, n)
}

func growU64(s []uint64, n int) []uint64 {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]uint64, n)
}

func growAcks(s []AckEntry, n int) []AckEntry {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]AckEntry, n)
}

// UnmarshalInto decodes one frame into m, overwriting every field and
// reusing m's slice capacities — a Message recycled across decodes of hot
// kinds (Ping/Pong/Publish/Ack) steady-states at zero allocations. Stale
// slice contents from a previous decode are fully overwritten (every field
// has a fixed place in the frame), but on error m is left partially
// filled and must not be used. The decoded Message never aliases b.
func UnmarshalInto(m *Message, b []byte) error {
	if len(b) < 1 {
		return fmt.Errorf("wire: empty frame")
	}
	m.Kind = Kind(b[0])
	off := 1
	need := func(n int) error {
		if off+n > len(b) {
			return fmt.Errorf("wire: truncated frame (need %d at %d of %d)", n, off, len(b))
		}
		return nil
	}
	get32 := func() (int32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		return v, nil
	}
	getU32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	// Every slice checks its claimed length against the bytes actually
	// present BEFORE allocating: a truncated frame must never cost more
	// memory than its own size.
	get32s := func(s []int32, what string) ([]int32, error) {
		n, err := getU32()
		if err != nil {
			return nil, err
		}
		if n > maxSliceLen {
			return nil, fmt.Errorf("wire: %s length %d too large", what, n)
		}
		if err := need(4 * int(n)); err != nil {
			return nil, err
		}
		s = growI32(s, int(n))
		for i := range s {
			s[i] = int32(binary.LittleEndian.Uint32(b[off:]))
			off += 4
		}
		return s, nil
	}
	get64s := func(s []uint64, what string) ([]uint64, error) {
		n, err := getU32()
		if err != nil {
			return nil, err
		}
		if n > maxSliceLen {
			return nil, fmt.Errorf("wire: %s length %d too large", what, n)
		}
		if err := need(8 * int(n)); err != nil {
			return nil, err
		}
		s = growU64(s, int(n))
		for i := range s {
			s[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
		return s, nil
	}
	var err error
	if m.From, err = get32(); err != nil {
		return err
	}
	if m.To, err = get32(); err != nil {
		return err
	}
	if m.Seq, err = getU32(); err != nil {
		return err
	}
	if m.Neighborhood, err = get32s(m.Neighborhood, "neighborhood"); err != nil {
		return err
	}
	if m.RoutingTable, err = get32s(m.RoutingTable, "routing table"); err != nil {
		return err
	}
	if m.NMutual, err = get32(); err != nil {
		return err
	}
	if m.Bitmap, err = get64s(m.Bitmap, "bitmap"); err != nil {
		return err
	}
	if m.Publisher, err = get32(); err != nil {
		return err
	}
	if err := need(1); err != nil {
		return err
	}
	m.TTL = b[off]
	off++
	if m.PayloadSize, err = getU32(); err != nil {
		return err
	}
	if err := need(1); err != nil {
		return err
	}
	m.HopCount = b[off]
	off++
	pl, err := getU32()
	if err != nil {
		return err
	}
	if pl > maxSliceLen {
		return fmt.Errorf("wire: payload length %d too large", pl)
	}
	if err := need(int(pl)); err != nil {
		return err
	}
	m.Payload = append(m.Payload[:0], b[off:off+int(pl)]...)
	off += int(pl)
	if err := need(8); err != nil {
		return err
	}
	m.Pos = binary.LittleEndian.Uint64(b[off:])
	off += 8
	if m.Succs, err = get32s(m.Succs, "succs"); err != nil {
		return err
	}
	if m.SuccPos, err = get64s(m.SuccPos, "succ positions"); err != nil {
		return err
	}
	if m.Preds, err = get32s(m.Preds, "preds"); err != nil {
		return err
	}
	if m.PredPos, err = get64s(m.PredPos, "pred positions"); err != nil {
		return err
	}
	if m.Target, err = get32(); err != nil {
		return err
	}
	if err := need(1); err != nil {
		return err
	}
	m.Priority = b[off]
	off++
	tl, err := getU32()
	if err != nil {
		return err
	}
	if tl > maxSliceLen {
		return fmt.Errorf("wire: topic length %d too large", tl)
	}
	if err := need(int(tl)); err != nil {
		return err
	}
	m.Topic = append(m.Topic[:0], b[off:off+int(tl)]...)
	off += int(tl)
	al, err := getU32()
	if err != nil {
		return err
	}
	if al > maxSliceLen {
		return fmt.Errorf("wire: ack batch length %d too large", al)
	}
	if err := need(ackEntrySize * int(al)); err != nil {
		return err
	}
	m.Acks = growAcks(m.Acks, int(al))
	for i := range m.Acks {
		e := &m.Acks[i]
		e.Kind = Kind(b[off])
		off++
		e.From = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		e.Dest = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		e.Pub = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		e.Seq = binary.LittleEndian.Uint32(b[off:])
		off += 4
		e.Target = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		e.TTL = b[off]
		off++
	}
	if off != len(b) {
		return fmt.Errorf("wire: %d trailing bytes", len(b)-off)
	}
	return nil
}
