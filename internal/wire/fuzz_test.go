package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeeds are valid messages of every kind, marshaled to seed the
// corpus; the fuzzer mutates from there into truncations, corrupted
// length prefixes and oversized claims.
func fuzzSeeds() []*Message {
	return []*Message{
		{Kind: KindPing, From: 1, To: 2, Seq: 3},
		{Kind: KindPong, From: 2, To: 1, Seq: 3},
		{
			Kind: KindExchangeRT, From: 4, To: 5, Seq: 6,
			Neighborhood: []int32{1, 2, 3, 9},
			RoutingTable: []int32{7, 8},
		},
		{
			Kind: KindExchangeReply, From: 5, To: 4, Seq: 6,
			NMutual: 2, Bitmap: []uint64{0xDEADBEEF, 1},
			RoutingTable: []int32{11},
		},
		{
			Kind: KindPublish, From: 9, To: 10, Seq: 11,
			Publisher: 9, TTL: 32, PayloadSize: 1_200_000, HopCount: 2,
		},
		{
			Kind: KindPublish, From: 9, To: 10, Seq: 12,
			Publisher: 9, TTL: 32, PayloadSize: 4, HopCount: 1,
			Payload: []byte("body"),
		},
		{Kind: KindAck, From: 10, To: 9, Seq: 11, Publisher: 9, TTL: 31},
		{Kind: KindJoinRequest, From: 12, To: 13, Seq: 1},
		{
			Kind: KindJoinReply, From: 13, To: 12, Seq: 1,
			Pos: 0x3FD5555555555555, RoutingTable: []int32{2, 5, 9},
			Succs: []int32{13, 2}, SuccPos: []uint64{0x3FD8000000000000, 0x3FE0000000000000},
			Preds: []int32{5}, PredPos: []uint64{0x3FC0000000000000},
		},
		{
			Kind: KindPong, From: 2, To: 1, Seq: 4,
			Succs: []int32{2, 7}, SuccPos: []uint64{1, 2},
			Preds: []int32{9, 11}, PredPos: []uint64{3, 4},
		},
		{Kind: KindIDAnnounce, From: 12, To: 5, Seq: 2, Pos: 0x3FC999999999999A},
		{Kind: KindLinkProposal, From: 12, To: 9, Seq: 3},
		{Kind: KindLinkAccept, From: 9, To: 12, Seq: 3},
		{Kind: KindLinkDrop, From: 9, To: 2, Seq: 4},
		{Kind: KindLeave, From: 12, To: 9, Seq: 5},
		{
			Kind: KindInboxDeposit, From: 9, To: 2, Seq: 11,
			Publisher: 9, Target: 10, Priority: 1, PayloadSize: 1_200_000,
		},
		{
			Kind: KindInboxDeposit, From: 9, To: 2, Seq: 12,
			Publisher: 9, Target: 10, Priority: 0, PayloadSize: 4,
			Payload: []byte("body"),
		},
		{Kind: KindInboxDepositAck, From: 2, To: 9, Seq: 11, Publisher: 9, Target: 10},
		{Kind: KindInboxClaim, From: 10, To: 2, Seq: 7, Target: 10},
		{Kind: KindInboxLease, From: 2, To: 10, Seq: 7, Target: 10, NMutual: 3},
		{
			Kind: KindInboxReplay, From: 2, To: 10, Seq: 11,
			Publisher: 9, Target: 10, Priority: 2, PayloadSize: 1_200_000, HopCount: 1,
		},
		{Kind: KindInboxReplayAck, From: 10, To: 2, Seq: 11, Publisher: 9, Target: 10},
		{Kind: KindTopicSub, From: 10, To: 2, Seq: 21, Topic: []byte("#go")},
		{Kind: KindTopicSubAck, From: 2, To: 10, Seq: 21, Topic: []byte("#go")},
		{Kind: KindTopicUnsub, From: 10, To: 2, Seq: 22, Topic: []byte("#go")},
		{
			Kind: KindTopicPub, From: 9, To: 2, Seq: 23,
			Publisher: 9, Target: -1, Priority: 1, PayloadSize: 1_200_000,
			Topic: []byte("#flashcrowd"),
		},
		{
			Kind: KindTopicPub, From: 2, To: 10, Seq: 23,
			Publisher: 9, Target: 2, PayloadSize: 4, Payload: []byte("body"),
			RoutingTable: []int32{11, 12, 13}, Topic: []byte("#flashcrowd"),
		},
		{Kind: KindTopicPubAck, From: 2, To: 9, Seq: 23, Publisher: 9, Topic: []byte("#flashcrowd")},
		{
			Kind: KindTopicHandoff, From: 2, To: 3, Seq: 24,
			RoutingTable: []int32{10, 11}, Topic: []byte("#go"),
		},
		{
			Kind: KindAckBatch, From: 10, To: 9, Seq: 25,
			Acks: []AckEntry{
				{Kind: KindAck, From: 10, Dest: 9, Pub: 9, Seq: 11, TTL: 30},
				{Kind: KindInboxDepositAck, From: 2, Dest: 9, Pub: 9, Seq: 12, Target: 10},
				{Kind: KindTopicPubAck, From: 2, Dest: 9, Pub: 9, Seq: 23},
			},
		},
		{Kind: KindAckBatch, From: 10, To: 9, Seq: 26}, // empty batch (flush race)
		// Attacker-shaped frames (DESIGN.md §14): well-formed wire encoding
		// carrying protocol-level lies. The transport must decode them
		// untroubled — rejecting the *claims* is the node layer's job
		// (clampMutual, position cross-checks) — so these seed the corpus
		// at the exact shapes the adversarial arms emit.
		{
			// Liar reply: mutual count far beyond any neighborhood, with a
			// saturated friendship bitmap over a tiny claimed neighborhood.
			Kind: KindExchangeReply, From: 66, To: 4, Seq: 6,
			NMutual: 1 << 30, Bitmap: []uint64{^uint64(0), ^uint64(0), ^uint64(0)},
			RoutingTable: []int32{11},
		},
		{
			// Negative liar reply: a mutual count with the sign bit set.
			Kind: KindExchangeReply, From: 66, To: 4, Seq: 7,
			NMutual: -1, Bitmap: []uint64{1},
		},
		{
			// Eclipse pong: the cohort bracketing a victim with ε-close
			// flank positions, duplicated entries and a succ/pred overlap.
			Kind: KindPong, From: 66, To: 1, Seq: 8,
			Succs:   []int32{66, 67, 68, 67},
			SuccPos: []uint64{0x3FE0000000000001, 0x3FE0000000000002, 0x3FDFFFFFFFFFFFFF, 0x3FE0000000000002},
			Preds:   []int32{68, 69},
			PredPos: []uint64{0x3FDFFFFFFFFFFFFF, 0x7FF8000000000000}, // NaN position claim
		},
		{
			// Out-of-range peer IDs and non-finite positions in a join reply.
			Kind: KindJoinReply, From: 66, To: 12, Seq: 9,
			Pos:   0x7FF0000000000000, // +Inf identifier
			Succs: []int32{-5, 1 << 30}, SuccPos: []uint64{0, ^uint64(0)},
		},
	}
}

// FuzzUnmarshal asserts Unmarshal never panics and never allocates more
// than the input can justify, and that accepted frames roundtrip
// byte-identically (the encoding is canonical).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range fuzzSeeds() {
		frame := Marshal(m)[4:] // strip the length prefix, as readLoop does
		f.Add(frame)
		// Truncated variant.
		if len(frame) > 3 {
			f.Add(frame[:len(frame)-3])
		}
		// Corrupted slice-length claim: overwrite the neighborhood length
		// field with an enormous value.
		if len(frame) >= 17 {
			bad := append([]byte(nil), frame...)
			binary.LittleEndian.PutUint32(bad[13:], 1<<30)
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	// dirty is a reused Message carrying stale slices from whatever frame
	// the fuzzer decoded last — the UnmarshalInto contract says those must
	// never leak into the next decode.
	dirty := &Message{}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			if m != nil {
				t.Fatal("error return carried a non-nil message")
			}
			// The reused-struct path must agree on rejection.
			if UnmarshalInto(dirty, b) == nil {
				t.Fatal("UnmarshalInto accepted a frame Unmarshal rejected")
			}
			return
		}
		// Decoded slices can only hold what the frame physically carried:
		// a tiny frame must never produce a huge message (over-allocation
		// guard — the length claims are validated against len(b) before
		// any make).
		claimed := 4*len(m.Neighborhood) + 4*len(m.RoutingTable) + 8*len(m.Bitmap) + len(m.Payload) +
			4*len(m.Succs) + 8*len(m.SuccPos) + 4*len(m.Preds) + 8*len(m.PredPos) + len(m.Topic) +
			ackEntrySize*len(m.Acks)
		if claimed > len(b) {
			t.Fatalf("decoded %d bytes of slices from a %d-byte frame", claimed, len(b))
		}
		out := Marshal(m)[4:]
		if !bytes.Equal(out, b) {
			t.Fatalf("roundtrip mismatch:\n in: %x\nout: %x", b, out)
		}
		// Decode the same frame into the dirty reused Message (stale
		// slices from the previous iteration still attached): canonical
		// roundtrip must hold for it too, byte for byte.
		if err := UnmarshalInto(dirty, b); err != nil {
			t.Fatalf("UnmarshalInto rejected a frame Unmarshal accepted: %v", err)
		}
		if reused := MarshalAppend(nil, dirty)[4:]; !bytes.Equal(reused, b) {
			t.Fatalf("dirty-reuse roundtrip mismatch:\n in: %x\nout: %x", b, reused)
		}
	})
}

// TestUnmarshalOversizedClaimCheap pins the over-allocation fix: a
// 17-byte frame claiming a million-entry neighborhood must fail fast
// without allocating the claimed 4 MB.
func TestUnmarshalOversizedClaimCheap(t *testing.T) {
	frame := make([]byte, 17)
	frame[0] = byte(KindExchangeRT)
	binary.LittleEndian.PutUint32(frame[13:], maxSliceLen) // within the claim bound, way past the frame
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Unmarshal(frame); err == nil {
			t.Fatal("oversized claim accepted")
		}
	})
	// Error path cost: the message struct and the error — not a 4 MB slice.
	if allocs > 8 {
		t.Fatalf("oversized claim cost %.0f allocations", allocs)
	}
}
