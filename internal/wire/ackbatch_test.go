package wire

import (
	"bytes"
	"testing"
)

func batchMsg() *Message {
	return &Message{
		Kind: KindAckBatch, From: 7, To: 3, Seq: 99,
		Acks: []AckEntry{
			{Kind: KindAck, From: 7, Dest: 3, Pub: 3, Seq: 10, TTL: 28},
			{Kind: KindAck, From: 7, Dest: 3, Pub: 3, Seq: 11, TTL: 28},
			{Kind: KindInboxDepositAck, From: 7, Dest: 3, Pub: 3, Seq: 12, Target: 44},
			{Kind: KindTopicPubAck, From: 7, Dest: 3, Pub: 3, Seq: 13},
		},
	}
}

func TestAckBatchRoundtrip(t *testing.T) {
	src := batchMsg()
	frame := Marshal(src)[4:]
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Acks) != len(src.Acks) {
		t.Fatalf("decoded %d entries, want %d", len(got.Acks), len(src.Acks))
	}
	for i := range src.Acks {
		if got.Acks[i] != src.Acks[i] {
			t.Fatalf("entry %d: got %+v want %+v", i, got.Acks[i], src.Acks[i])
		}
	}
	if out := Marshal(got)[4:]; !bytes.Equal(out, frame) {
		t.Fatalf("non-canonical roundtrip:\n in: %x\nout: %x", frame, out)
	}
}

// TestAckBatchDirtyReuse interleaves batch frames of shrinking and
// growing entry counts through one reused Message: capacity reuse must
// never leak stale entries into a smaller batch.
func TestAckBatchDirtyReuse(t *testing.T) {
	big := batchMsg()
	small := &Message{Kind: KindAckBatch, From: 1, To: 2, Seq: 5,
		Acks: []AckEntry{{Kind: KindAck, From: 1, Dest: 2, Pub: 2, Seq: 77, TTL: 9}}}
	empty := &Message{Kind: KindAckBatch, From: 1, To: 2, Seq: 6}
	var m Message
	for _, src := range []*Message{big, small, big, empty, small} {
		frame := Marshal(src)[4:]
		if err := UnmarshalInto(&m, frame); err != nil {
			t.Fatal(err)
		}
		if got := Marshal(&m)[4:]; !bytes.Equal(got, frame) {
			t.Fatalf("dirty-reuse diverged for %d entries:\n got %x\nwant %x",
				len(src.Acks), got, frame)
		}
	}
}

// TestAckBatchZeroAlloc pins the fast-path contract for the new kind:
// warm-buffer marshal and reused-struct unmarshal at 0 allocs/op.
func TestAckBatchZeroAlloc(t *testing.T) {
	src := batchMsg()
	buf := make([]byte, 0, 4096)
	if allocs := testing.AllocsPerRun(200, func() {
		buf = MarshalAppend(buf[:0], src)
	}); allocs != 0 {
		t.Errorf("MarshalAppend(ack-batch) = %.1f allocs/op, want 0", allocs)
	}
	frame := Marshal(src)[4:]
	var m Message
	if err := UnmarshalInto(&m, frame); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := UnmarshalInto(&m, frame); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("UnmarshalInto(ack-batch) = %.1f allocs/op, want 0", allocs)
	}
}

// TestCloneDeepCopiesAcks pins that faultnet duplication cannot alias a
// batch payload: mutating the clone's entries must not disturb the
// original (and vice versa), matching every other slice field.
func TestCloneDeepCopiesAcks(t *testing.T) {
	src := batchMsg()
	src.Topic = []byte("#go")
	c := src.Clone()
	if &c.Acks[0] == &src.Acks[0] {
		t.Fatal("Clone aliased the Acks backing array")
	}
	c.Acks[0].Seq = 9999
	c.Acks[1].TTL = 0
	c.Topic[0] = '!'
	if src.Acks[0].Seq == 9999 || src.Acks[1].TTL == 0 {
		t.Fatal("mutating the clone's Acks reached the original")
	}
	if src.Topic[0] == '!' {
		t.Fatal("mutating the clone's Topic reached the original")
	}
	// A nil Acks slice stays nil through Clone (identity preserved).
	plain := &Message{Kind: KindAck, From: 1, To: 2, Seq: 3}
	if cc := plain.Clone(); cc.Acks != nil {
		t.Fatal("Clone materialized a nil Acks slice")
	}
}
