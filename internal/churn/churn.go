// Package churn models peer session behaviour: unexpected joins and
// departures following the log-normal smartphone-churn measurements of
// Berta et al. (paper ref. [20]), plus the Cumulative Moving Average (CMA)
// availability tracker SELECT's recovery mechanism uses to distinguish
// mostly-offline peers from temporarily unreachable ones (§III-F).
package churn

import (
	"math"
	"math/rand"

	"selectps/internal/socialgraph"
)

// Model parameterizes session and offline durations, in simulation steps.
// Durations are log-normal: exp(N(MuLog, SigmaLog)).
type Model struct {
	OnlineMuLog     float64 // mean of log(online session length)
	OnlineSigmaLog  float64
	OfflineMuLog    float64 // mean of log(offline gap length)
	OfflineSigmaLog float64
	// MinOnlineFraction floors how many peers may be offline at once; the
	// paper's Fig. 6 experiment keeps at least half of the network online.
	MinOnlineFraction float64
}

// DefaultModel gives sessions averaging ~20 steps and offline gaps ~7
// steps, with at least half the peers online — the Fig. 6 regime.
func DefaultModel() Model {
	return Model{
		OnlineMuLog: 3.0, OnlineSigmaLog: 0.7,
		OfflineMuLog: 1.8, OfflineSigmaLog: 0.6,
		MinOnlineFraction: 0.5,
	}
}

// State tracks each peer's online/offline status over time.
type State struct {
	model       Model
	rng         *rand.Rand
	online      []bool
	nextFlip    []int // step at which the peer toggles
	onlineCount int
}

// NewState creates churn state for n peers, all initially online, with the
// first departures scheduled from their session distribution.
func NewState(n int, m Model, rng *rand.Rand) *State {
	s := &State{
		model:       m,
		rng:         rng,
		online:      make([]bool, n),
		nextFlip:    make([]int, n),
		onlineCount: n,
	}
	for i := range s.online {
		s.online[i] = true
		s.nextFlip[i] = s.draw(m.OnlineMuLog, m.OnlineSigmaLog)
	}
	return s
}

func (s *State) draw(mu, sigma float64) int {
	d := int(math.Exp(s.rng.NormFloat64()*sigma + mu))
	if d < 1 {
		d = 1
	}
	return d
}

// N returns the number of peers tracked.
func (s *State) N() int { return len(s.online) }

// Online reports whether peer u is currently online.
func (s *State) Online(u socialgraph.NodeID) bool { return s.online[u] }

// OnlineCount returns how many peers are online.
func (s *State) OnlineCount() int { return s.onlineCount }

// Step advances to simulation step `now`, toggling peers whose transition
// is due. It returns the peers that went offline and came online this step.
// Departures that would push the online population below
// MinOnlineFraction*N are deferred by rescheduling the flip.
func (s *State) Step(now int) (wentOffline, cameOnline []socialgraph.NodeID) {
	minOnline := int(math.Ceil(s.model.MinOnlineFraction * float64(len(s.online))))
	for u := range s.online {
		if s.nextFlip[u] > now {
			continue
		}
		if s.online[u] {
			if s.onlineCount-1 < minOnline {
				// Defer this departure; try again shortly.
				s.nextFlip[u] = now + 1 + s.rng.Intn(3)
				continue
			}
			s.online[u] = false
			s.onlineCount--
			s.nextFlip[u] = now + s.draw(s.model.OfflineMuLog, s.model.OfflineSigmaLog)
			wentOffline = append(wentOffline, socialgraph.NodeID(u))
		} else {
			s.online[u] = true
			s.onlineCount++
			s.nextFlip[u] = now + s.draw(s.model.OnlineMuLog, s.model.OnlineSigmaLog)
			cameOnline = append(cameOnline, socialgraph.NodeID(u))
		}
	}
	return wentOffline, cameOnline
}

// ForceOnline marks u online immediately (used when the recovery protocol
// re-admits a peer at the end of an iteration, per §IV: "when the iteration
// step is completed, the removed peers are recovered").
func (s *State) ForceOnline(u socialgraph.NodeID) {
	if !s.online[u] {
		s.online[u] = true
		s.onlineCount++
		s.nextFlip[u] = s.nextFlip[u] + s.draw(s.model.OnlineMuLog, s.model.OnlineSigmaLog)
	}
}

// CMA is the Cumulative Moving Average of a peer's observed availability:
// each probe records 1 (responsive) or 0 (unresponsive), and the mean over
// all probes so far estimates the peer's long-run online behaviour.
// The zero value is ready to use.
type CMA struct {
	mean float64
	n    int
}

// Observe folds one availability sample (true = online) into the average.
func (c *CMA) Observe(online bool) {
	x := 0.0
	if online {
		x = 1.0
	}
	c.n++
	c.mean += (x - c.mean) / float64(c.n)
}

// Value returns the current average availability in [0,1]. With no
// observations it returns 1: a never-probed peer is given the benefit of
// the doubt so fresh connections are not churned immediately.
func (c *CMA) Value() float64 {
	if c.n == 0 {
		return 1
	}
	return c.mean
}

// Samples returns how many observations have been folded in.
func (c *CMA) Samples() int { return c.n }

// Tracker maintains one CMA per peer.
type Tracker struct {
	cmas []CMA
}

// NewTracker returns a Tracker for n peers.
func NewTracker(n int) *Tracker { return &Tracker{cmas: make([]CMA, n)} }

// Observe records an availability sample for peer u.
func (t *Tracker) Observe(u socialgraph.NodeID, online bool) {
	t.cmas[u].Observe(online)
}

// Value returns peer u's average availability.
func (t *Tracker) Value(u socialgraph.NodeID) float64 { return t.cmas[u].Value() }

// Samples returns how many observations peer u's CMA has folded in.
func (t *Tracker) Samples(u socialgraph.NodeID) int { return t.cmas[u].Samples() }

// ObserveAll folds the current online state of every peer into the tracker,
// emulating the periodic liveness probes of §III-F.
func (t *Tracker) ObserveAll(s *State) {
	for u := range t.cmas {
		t.cmas[u].Observe(s.Online(socialgraph.NodeID(u)))
	}
}
