package churn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInitialStateAllOnline(t *testing.T) {
	s := NewState(10, DefaultModel(), rand.New(rand.NewSource(1)))
	if s.OnlineCount() != 10 || s.N() != 10 {
		t.Fatalf("OnlineCount = %d, N = %d", s.OnlineCount(), s.N())
	}
	for u := 0; u < 10; u++ {
		if !s.Online(int32(u)) {
			t.Errorf("peer %d not online initially", u)
		}
	}
}

func TestChurnTogglesPeers(t *testing.T) {
	s := NewState(200, DefaultModel(), rand.New(rand.NewSource(2)))
	sawOffline, sawReturn := false, false
	for step := 0; step < 500; step++ {
		off, on := s.Step(step)
		if len(off) > 0 {
			sawOffline = true
		}
		if len(on) > 0 {
			sawReturn = true
		}
	}
	if !sawOffline || !sawReturn {
		t.Errorf("500 steps saw offline=%v return=%v; churn inactive", sawOffline, sawReturn)
	}
}

func TestMinOnlineFractionRespected(t *testing.T) {
	m := DefaultModel()
	m.MinOnlineFraction = 0.5
	// Aggressive churn: very short sessions.
	m.OnlineMuLog, m.OfflineMuLog = 0.1, 3.5
	s := NewState(100, m, rand.New(rand.NewSource(3)))
	for step := 0; step < 1000; step++ {
		s.Step(step)
		if s.OnlineCount() < 50 {
			t.Fatalf("step %d: online=%d < floor 50", step, s.OnlineCount())
		}
	}
}

func TestOnlineCountConsistent(t *testing.T) {
	s := NewState(80, DefaultModel(), rand.New(rand.NewSource(4)))
	for step := 0; step < 300; step++ {
		s.Step(step)
		count := 0
		for u := 0; u < s.N(); u++ {
			if s.Online(int32(u)) {
				count++
			}
		}
		if count != s.OnlineCount() {
			t.Fatalf("step %d: cached count %d != actual %d", step, s.OnlineCount(), count)
		}
	}
}

func TestForceOnline(t *testing.T) {
	m := DefaultModel()
	m.OnlineMuLog = 0.1 // force quick departures
	s := NewState(50, m, rand.New(rand.NewSource(5)))
	var victim int32 = -1
	for step := 0; step < 200 && victim < 0; step++ {
		off, _ := s.Step(step)
		if len(off) > 0 {
			victim = off[0]
		}
	}
	if victim < 0 {
		t.Fatal("no peer went offline in 200 steps")
	}
	before := s.OnlineCount()
	s.ForceOnline(victim)
	if !s.Online(victim) || s.OnlineCount() != before+1 {
		t.Error("ForceOnline did not restore the peer")
	}
	// Idempotent on an online peer.
	s.ForceOnline(victim)
	if s.OnlineCount() != before+1 {
		t.Error("ForceOnline double-counted")
	}
}

func TestCMAZeroValue(t *testing.T) {
	var c CMA
	if c.Value() != 1 {
		t.Errorf("unobserved CMA = %v, want 1", c.Value())
	}
	if c.Samples() != 0 {
		t.Errorf("Samples = %d", c.Samples())
	}
}

func TestCMAMean(t *testing.T) {
	var c CMA
	obs := []bool{true, true, false, true} // mean 0.75
	for _, o := range obs {
		c.Observe(o)
	}
	if math.Abs(c.Value()-0.75) > 1e-12 {
		t.Errorf("CMA = %v, want 0.75", c.Value())
	}
	if c.Samples() != 4 {
		t.Errorf("Samples = %d, want 4", c.Samples())
	}
}

func TestCMAPropertyMatchesBatchMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c CMA
		n := 1 + rng.Intn(500)
		ones := 0
		for i := 0; i < n; i++ {
			b := rng.Intn(2) == 1
			if b {
				ones++
			}
			c.Observe(b)
		}
		want := float64(ones) / float64(n)
		return math.Abs(c.Value()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCMABounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c CMA
		for i := 0; i < 100; i++ {
			c.Observe(rng.Intn(2) == 1)
			if v := c.Value(); v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(3)
	tr.Observe(0, true)
	tr.Observe(0, false)
	tr.Observe(1, true)
	if math.Abs(tr.Value(0)-0.5) > 1e-12 {
		t.Errorf("Value(0) = %v, want 0.5", tr.Value(0))
	}
	if tr.Value(1) != 1 {
		t.Errorf("Value(1) = %v, want 1", tr.Value(1))
	}
	if tr.Value(2) != 1 {
		t.Errorf("unobserved Value(2) = %v, want 1", tr.Value(2))
	}
}

func TestTrackerObserveAllDiscriminates(t *testing.T) {
	// Peers with short sessions should end with lower CMA than peers that
	// never churn. Build a state, run it, and verify the tracker separates
	// online-heavy from offline-heavy peers.
	m := DefaultModel()
	s := NewState(100, m, rand.New(rand.NewSource(6)))
	tr := NewTracker(100)
	offSteps := make([]int, 100)
	for step := 0; step < 400; step++ {
		s.Step(step)
		tr.ObserveAll(s)
		for u := 0; u < 100; u++ {
			if !s.Online(int32(u)) {
				offSteps[u]++
			}
		}
	}
	for u := 0; u < 100; u++ {
		want := 1 - float64(offSteps[u])/400
		if math.Abs(tr.Value(int32(u))-want) > 1e-9 {
			t.Fatalf("peer %d CMA %v, want %v", u, tr.Value(int32(u)), want)
		}
	}
}
