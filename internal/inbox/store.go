package inbox

import (
	"bufio"
	"os"
	"sync"

	"selectps/internal/obs"
)

// compactEvery is how many acked records may accumulate before the
// store rewrites the journal without them. Compaction is O(pending) and
// rare; between compactions acked records cost only their bytes on
// disk, never memory.
const compactEvery = 256

// recKey identifies one deposit: which replica holds which publication
// for which subscriber.
type recKey struct {
	replica, target, publisher int32
	seq                        uint32
}

// queue is the per-(replica,target) replay schedule: one FIFO per
// priority class, drained High → Medium → Low.
type queue struct {
	classes [numPriorities][]*Record
}

func (q *queue) empty() bool {
	for _, c := range q.classes {
		if len(c) > 0 {
			return false
		}
	}
	return true
}

// Store is the in-memory pending index over one shard's journal. All
// methods are safe for concurrent use (the shard goroutine is the
// common caller, but tests and the monitor gauge read from outside).
type Store struct {
	mu      sync.Mutex
	log     *Log
	met     *obs.Metrics
	pending map[recKey]*Record
	queues  map[[2]int32]*queue // (replica, target) → replay schedule
	acked   int                 // acks journaled since the last compaction
	corrupt int64               // corrupt frames skipped at recovery
}

// Open opens (or creates) the journal at path and rebuilds the pending
// index from it: deposits are re-indexed, acked deposits dropped, and a
// torn or bit-flipped tail frame is skipped with the log_corrupt
// counter bumped — recovery never fails on bad bytes, it just stops
// trusting the journal at the first one. met may be nil.
func Open(path string, syncEvery int, met *obs.Metrics) (*Store, error) {
	s := &Store{
		met:     met,
		pending: make(map[recKey]*Record),
		queues:  make(map[[2]int32]*queue),
	}
	if f, err := os.Open(path); err == nil {
		entries, corrupt, _ := readJournal(bufio.NewReaderSize(f, 1<<16))
		f.Close()
		for i := range entries {
			e := &entries[i]
			k := keyOf(&e.rec)
			switch e.typ {
			case recDeposit:
				if _, dup := s.pending[k]; dup {
					continue
				}
				rec := e.rec
				s.pending[k] = &rec
				s.enqueueLocked(&rec)
			case recAck:
				s.dropLocked(k)
			}
		}
		s.corrupt = int64(corrupt)
		if corrupt > 0 {
			met.Addn(obs.CInboxLogCorrupt, int64(corrupt))
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	log, err := OpenLog(path, syncEvery)
	if err != nil {
		return nil, err
	}
	s.log = log
	// A recovery that skipped a corrupt tail leaves untrusted bytes at
	// the end of the file; compact immediately so new appends never land
	// after garbage.
	if s.corrupt > 0 {
		if err := s.compactLocked(); err != nil {
			log.Close()
			return nil, err
		}
	}
	return s, nil
}

func keyOf(r *Record) recKey {
	return recKey{replica: r.Replica, target: r.Target, publisher: r.Publisher, seq: r.Seq}
}

func (s *Store) enqueueLocked(r *Record) {
	qk := [2]int32{r.Replica, r.Target}
	q := s.queues[qk]
	if q == nil {
		q = &queue{}
		s.queues[qk] = q
	}
	pri := r.Priority
	if pri >= numPriorities {
		pri = Low
	}
	q.classes[pri] = append(q.classes[pri], r)
}

func (s *Store) dropLocked(k recKey) bool {
	r, ok := s.pending[k]
	if !ok {
		return false
	}
	delete(s.pending, k)
	qk := [2]int32{k.replica, k.target}
	if q := s.queues[qk]; q != nil {
		pri := r.Priority
		if pri >= numPriorities {
			pri = Low
		}
		c := q.classes[pri]
		for i, cand := range c {
			if cand == r {
				q.classes[pri] = append(c[:i], c[i+1:]...)
				break
			}
		}
		if q.empty() {
			delete(s.queues, qk)
		}
	}
	return true
}

// Deposit journals and indexes one record. fresh is false when the
// store already holds this (replica, target, publisher, seq) — the
// publisher retried a deposit that already landed, which callers ack
// again without re-persisting. The payload is copied; callers may reuse
// their buffer.
func (s *Store) Deposit(r Record) (fresh bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := keyOf(&r)
	if _, dup := s.pending[k]; dup {
		return false, nil
	}
	if r.Payload != nil {
		r.Payload = append([]byte(nil), r.Payload...)
	}
	if r.Topic != nil {
		r.Topic = append([]byte(nil), r.Topic...)
	}
	if err := s.log.appendRecord(recDeposit, &r); err != nil {
		return false, err
	}
	s.pending[k] = &r
	s.enqueueLocked(&r)
	s.met.Inc(obs.CInboxDeposit)
	return true, nil
}

// Ack journals the acknowledgment for one record and removes it from
// the pending index. Unknown records return false without journaling
// (the subscriber acked a copy some other replica held).
func (s *Store) Ack(replica, target, publisher int32, seq uint32) (existed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := recKey{replica: replica, target: target, publisher: publisher, seq: seq}
	if _, ok := s.pending[k]; !ok {
		return false, nil
	}
	rec := Record{Replica: replica, Target: target, Publisher: publisher, Seq: seq}
	if err := s.log.appendRecord(recAck, &rec); err != nil {
		return true, err
	}
	s.dropLocked(k)
	s.acked++
	if s.acked >= compactEvery {
		if err := s.compactLocked(); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Next returns the record the given replica should replay next for the
// given target: the head of the highest-priority non-empty class. The
// record stays pending until Ack.
func (s *Store) Next(replica, target int32) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[[2]int32{replica, target}]
	if q == nil {
		return Record{}, false
	}
	for _, c := range q.classes {
		if len(c) > 0 {
			return *c[0], true
		}
	}
	return Record{}, false
}

// PendingTargets lists the targets the given replica holds pending
// deposits for — the input of the replica-side replay sweep that
// catches subscribers whose claim never reached this replica.
func (s *Store) PendingTargets(replica int32) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int32
	for k, q := range s.queues {
		if k[0] == replica && !q.empty() {
			out = append(out, k[1])
		}
	}
	return out
}

// PendingFor reports how many deposits the given replica holds for the
// given target.
func (s *Store) PendingFor(replica, target int32) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[[2]int32{replica, target}]
	if q == nil {
		return 0
	}
	n := 0
	for _, c := range q.classes {
		n += len(c)
	}
	return n
}

// PurgeTopic drops every pending deposit the given replica holds for
// the given (target, topic) pair, journaling an ack per record so the
// drop survives a restart. It is the unsubscribe drain: a subscriber
// that departs a topic must not strand journal entries it will never
// claim. Returns how many records were dropped.
func (s *Store) PurgeTopic(replica, target int32, topic []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queues[[2]int32{replica, target}]
	if q == nil {
		return 0, nil
	}
	var doomed []*Record
	for _, c := range q.classes {
		for _, r := range c {
			if string(r.Topic) == string(topic) {
				doomed = append(doomed, r)
			}
		}
	}
	for _, r := range doomed {
		ack := Record{Replica: r.Replica, Target: r.Target, Publisher: r.Publisher, Seq: r.Seq}
		if err := s.log.appendRecord(recAck, &ack); err != nil {
			return 0, err
		}
		s.dropLocked(keyOf(r))
		s.acked++
	}
	if s.acked >= compactEvery {
		if err := s.compactLocked(); err != nil {
			return len(doomed), err
		}
	}
	return len(doomed), nil
}

// Depth is the total number of pending deposits in the store — the
// inbox_depth gauge input.
func (s *Store) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Corrupt reports how many corrupt journal frames recovery skipped.
func (s *Store) Corrupt() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Compact rewrites the journal to hold only pending deposits.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	recs := make([]*Record, 0, len(s.pending))
	for _, q := range s.queues {
		for _, c := range q.classes {
			recs = append(recs, c...)
		}
	}
	if err := s.log.rewrite(recs); err != nil {
		return err
	}
	s.acked = 0
	return nil
}

// Sync forces the journal to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Sync()
}

// Close closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}
