package inbox

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecover feeds arbitrary bytes to the journal reader: it
// must never panic, never return an error (corruption is a counted
// condition, not a failure), and never buffer more memory than the
// input can justify — the same discipline the wire decoder fuzz pins.
func FuzzJournalRecover(f *testing.F) {
	// Seed with a real journal written through the production encoder,
	// plus a truncated and a bit-flipped variant.
	path := filepath.Join(f.TempDir(), "seed.log")
	l, err := OpenLog(path, 0)
	if err != nil {
		f.Fatal(err)
	}
	recs := []Record{
		{Replica: 2, Target: 10, Publisher: 9, Seq: 1, Priority: High, PayloadSize: 5, Payload: []byte("hello")},
		{Replica: 2, Target: 10, Publisher: 9, Seq: 2, Priority: Low, PayloadSize: 1_200_000},
	}
	for i := range recs {
		if err := l.appendRecord(recDeposit, &recs[i]); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.appendRecord(recAck, &Record{Replica: 2, Target: 10, Publisher: 9, Seq: 1}); err != nil {
		f.Fatal(err)
	}
	l.Close()
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		entries, corrupt, err := readJournal(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("readJournal returned an error on arbitrary bytes: %v", err)
		}
		if corrupt > 1 {
			t.Fatalf("corrupt = %d; a single-writer journal stops at the first bad frame", corrupt)
		}
		// Decoded records can only hold what the input physically carried.
		total := 0
		for _, e := range entries {
			total += recHeader + recBodyFix + len(e.rec.Payload)
		}
		if total > len(b) {
			t.Fatalf("decoded %d bytes of records from %d input bytes", total, len(b))
		}
	})
}
