package inbox

import (
	"os"
	"path/filepath"
	"testing"

	"selectps/internal/obs"
)

func openT(t *testing.T, path string, syncEvery int) *Store {
	t.Helper()
	s, err := Open(path, syncEvery, nil)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dep(replica, target, pub int32, seq uint32, pri uint8, body string) Record {
	return Record{
		Replica: replica, Target: target, Publisher: pub, Seq: seq,
		Priority: pri, PayloadSize: uint32(len(body)), Payload: []byte(body),
	}
}

func TestStoreDepositAckRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 1)

	fresh, err := s.Deposit(dep(2, 10, 9, 1, Medium, "hello"))
	if err != nil || !fresh {
		t.Fatalf("deposit: fresh=%v err=%v", fresh, err)
	}
	// A publisher retry of the same deposit is deduplicated.
	fresh, err = s.Deposit(dep(2, 10, 9, 1, Medium, "hello"))
	if err != nil || fresh {
		t.Fatalf("duplicate deposit: fresh=%v err=%v", fresh, err)
	}
	if got := s.PendingFor(2, 10); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	r, ok := s.Next(2, 10)
	if !ok || string(r.Payload) != "hello" || r.Seq != 1 {
		t.Fatalf("next = %+v ok=%v", r, ok)
	}
	if existed, err := s.Ack(2, 10, 9, 1); err != nil || !existed {
		t.Fatalf("ack: existed=%v err=%v", existed, err)
	}
	if existed, _ := s.Ack(2, 10, 9, 1); existed {
		t.Fatal("double ack reported the record as still existing")
	}
	if s.Depth() != 0 {
		t.Fatalf("depth = %d after drain", s.Depth())
	}
}

// TestStorePurgeTopicDrains pins the unsubscribe drain: purging a
// (target, topic) pair removes exactly that topic's records, the drop
// is journaled (it survives a reopen), and a fully-departed subscriber
// leaves the store empty — no stranded journal entries.
func TestStorePurgeTopicDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 1)

	tagged := func(seq uint32, topic string) Record {
		r := dep(2, 10, 9, seq, Medium, "body")
		r.Topic = []byte(topic)
		return r
	}
	for seq, topic := range map[uint32]string{1: "#go", 2: "#go", 3: "#rust"} {
		if _, err := s.Deposit(tagged(seq, topic)); err != nil {
			t.Fatal(err)
		}
	}
	// Another target's record of the same topic must be untouched.
	other := dep(2, 11, 9, 4, Medium, "body")
	other.Topic = []byte("#go")
	if _, err := s.Deposit(other); err != nil {
		t.Fatal(err)
	}

	n, err := s.PurgeTopic(2, 10, []byte("#go"))
	if err != nil || n != 2 {
		t.Fatalf("purge = %d, %v; want 2 records dropped", n, err)
	}
	if got := s.PendingFor(2, 10); got != 1 {
		t.Fatalf("target 10 pending = %d after purge, want 1 (#rust)", got)
	}
	if got := s.PendingFor(2, 11); got != 1 {
		t.Fatalf("target 11 pending = %d, want 1 (other subscriber untouched)", got)
	}
	// Drain the rest and assert full departure leaves no journal residue,
	// across a crash-recovery reopen.
	if n, err := s.PurgeTopic(2, 10, []byte("#rust")); err != nil || n != 1 {
		t.Fatalf("purge #rust = %d, %v", n, err)
	}
	if _, err := s.PurgeTopic(2, 11, []byte("#go")); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 0 {
		t.Fatalf("depth = %d after full drain, want 0", s.Depth())
	}
	s.Close()
	re := openT(t, path, 1)
	if re.Depth() != 0 {
		t.Fatalf("reopened depth = %d, want 0 (purge must be journaled)", re.Depth())
	}
}

func TestStorePriorityOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 0)

	// Deposit LOW, HIGH, MEDIUM, HIGH — replay must drain both HIGHs,
	// then MEDIUM, then LOW, FIFO within a class.
	seqs := []struct {
		seq uint32
		pri uint8
	}{{1, Low}, {2, High}, {3, Medium}, {4, High}}
	for _, d := range seqs {
		if _, err := s.Deposit(dep(2, 10, 9, d.seq, d.pri, "x")); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint32{2, 4, 3, 1}
	for _, w := range want {
		r, ok := s.Next(2, 10)
		if !ok || r.Seq != w {
			t.Fatalf("next seq = %d (ok=%v), want %d", r.Seq, ok, w)
		}
		if _, err := s.Ack(2, 10, 9, r.Seq); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreRecoveryFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 1)
	for seq := uint32(1); seq <= 5; seq++ {
		if _, err := s.Deposit(dep(2, 10, 9, seq, Medium, "payload")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Ack(2, 10, 9, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same journal must see exactly the unacked
	// records, in order, payloads intact.
	re := openT(t, path, 1)
	if got := re.PendingFor(2, 10); got != 4 {
		t.Fatalf("recovered pending = %d, want 4", got)
	}
	for _, w := range []uint32{1, 2, 4, 5} {
		r, ok := re.Next(2, 10)
		if !ok || r.Seq != w || string(r.Payload) != "payload" {
			t.Fatalf("recovered next = %+v ok=%v, want seq %d", r, ok, w)
		}
		if _, err := re.Ack(2, 10, 9, r.Seq); err != nil {
			t.Fatal(err)
		}
	}
	if re.Corrupt() != 0 {
		t.Fatalf("clean journal reported %d corrupt frames", re.Corrupt())
	}
}

// TestStoreSkipsTruncatedTail pins the torn-write contract: a record cut
// mid-body is skipped with the corruption counter bumped, never a panic
// or a lost store.
func TestStoreSkipsTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 1)
	for seq := uint32(1); seq <= 3; seq++ {
		if _, err := s.Deposit(dep(2, 10, 9, seq, Medium, "durable-body")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	met := obs.New()
	re, err := Open(path, 1, met)
	if err != nil {
		t.Fatalf("open over truncated journal: %v", err)
	}
	defer re.Close()
	if got := re.PendingFor(2, 10); got != 2 {
		t.Fatalf("recovered %d records from truncated journal, want 2", got)
	}
	if re.Corrupt() != 1 {
		t.Fatalf("corrupt = %d, want 1", re.Corrupt())
	}
	if met.Get(obs.CInboxLogCorrupt) != 1 {
		t.Fatalf("inbox_log_corrupt counter = %d, want 1", met.Get(obs.CInboxLogCorrupt))
	}
	// Recovery compacts the garbage tail away: appends after recovery
	// must land on a clean journal that reloads in full.
	if _, err := re.Deposit(dep(2, 10, 9, 9, High, "after-recovery")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2 := openT(t, path, 1)
	if got := re2.PendingFor(2, 10); got != 3 {
		t.Fatalf("post-recovery journal reloaded %d records, want 3", got)
	}
	if re2.Corrupt() != 0 {
		t.Fatalf("post-recovery journal still corrupt: %d", re2.Corrupt())
	}
}

// TestStoreSkipsBitFlippedTail: a flipped payload bit fails the CRC and
// drops that record (and anything after it) without failing recovery.
func TestStoreSkipsBitFlippedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 1)
	for seq := uint32(1); seq <= 3; seq++ {
		if _, err := s.Deposit(dep(2, 10, 9, seq, Medium, "durable-body")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40 // flip one bit inside the last record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, 1, nil)
	if err != nil {
		t.Fatalf("open over bit-flipped journal: %v", err)
	}
	defer re.Close()
	if got := re.PendingFor(2, 10); got != 2 {
		t.Fatalf("recovered %d records past a bit flip, want 2", got)
	}
	if re.Corrupt() != 1 {
		t.Fatalf("corrupt = %d, want 1", re.Corrupt())
	}
}

func TestStoreCompactionDropsAckedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 0)
	for seq := uint32(0); seq < 64; seq++ {
		if _, err := s.Deposit(dep(2, 10, 9, seq, Low, "bulky-payload-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint32(0); seq < 60; seq++ {
		if _, err := s.Ack(2, 10, 9, seq); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", before.Size(), after.Size())
	}
	if got := s.Depth(); got != 4 {
		t.Fatalf("depth = %d after compaction, want 4", got)
	}
	// Appends after compaction extend the rewritten journal correctly.
	if _, err := s.Deposit(dep(2, 11, 9, 99, High, "tail")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re := openT(t, path, 0)
	if got := re.Depth(); got != 5 {
		t.Fatalf("reloaded depth = %d, want 5", got)
	}
}

// TestStoreAutoCompacts: the acked-record threshold triggers compaction
// without an explicit call.
func TestStoreAutoCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 0)
	for seq := uint32(0); seq < compactEvery+8; seq++ {
		if _, err := s.Deposit(dep(2, 10, 9, seq, Medium, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	grown, _ := os.Stat(path)
	for seq := uint32(0); seq < compactEvery+8; seq++ {
		if _, err := s.Ack(2, 10, 9, seq); err != nil {
			t.Fatal(err)
		}
	}
	shrunk, _ := os.Stat(path)
	if shrunk.Size() >= grown.Size() {
		t.Fatalf("auto-compaction never fired: %d -> %d bytes", grown.Size(), shrunk.Size())
	}
}

func TestStoreSyncPolicies(t *testing.T) {
	// The policy knob must not change observable behavior, only
	// durability timing: every policy yields the same recovered state.
	for _, syncEvery := range []int{0, 1, 8} {
		path := filepath.Join(t.TempDir(), "shard.log")
		s := openT(t, path, syncEvery)
		for seq := uint32(1); seq <= 20; seq++ {
			if _, err := s.Deposit(dep(1, 5, 3, seq, uint8(seq%3), "p")); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		re := openT(t, path, syncEvery)
		if got := re.PendingFor(1, 5); got != 20 {
			t.Fatalf("syncEvery=%d: recovered %d, want 20", syncEvery, got)
		}
	}
}

func TestStoreIsolatesReplicas(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.log")
	s := openT(t, path, 0)
	// Two replicas hosted on the same shard share one journal; their
	// pending sets must stay disjoint.
	if _, err := s.Deposit(dep(2, 10, 9, 1, Medium, "a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deposit(dep(3, 10, 9, 1, Medium, "a")); err != nil {
		t.Fatal(err)
	}
	if s.PendingFor(2, 10) != 1 || s.PendingFor(3, 10) != 1 {
		t.Fatalf("replica isolation broken: %d / %d", s.PendingFor(2, 10), s.PendingFor(3, 10))
	}
	if _, err := s.Ack(2, 10, 9, 1); err != nil {
		t.Fatal(err)
	}
	if s.PendingFor(3, 10) != 1 {
		t.Fatal("ack on replica 2 removed replica 3's copy")
	}
}

// BenchmarkStoreReplayCycle is the durable-tier throughput floor: one
// full deposit → Next → Ack cycle per record through the journal — the
// store-side work behind every replayed notification. Run with
// -syncEvery variants via BenchmarkStoreReplayCycleSynced for the
// fsync-per-record worst case.
func benchReplayCycle(b *testing.B, syncEvery int) {
	path := filepath.Join(b.TempDir(), "shard.log")
	s, err := Open(path, syncEvery, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	body := make([]byte, 256)
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint32(i + 1)
		r := Record{
			Replica: 1, Target: 5, Publisher: 9, Seq: seq,
			Priority: Medium, PayloadSize: uint32(len(body)), Payload: body,
		}
		if _, err := s.Deposit(r); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Next(1, 5); !ok {
			b.Fatal("no pending record")
		}
		if _, err := s.Ack(1, 5, 9, seq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreReplayCycle(b *testing.B)       { benchReplayCycle(b, 0) }
func BenchmarkStoreReplayCycleSynced(b *testing.B) { benchReplayCycle(b, 1) }
