// Package inbox is the durable store-and-forward tier of the SELECT
// runtime (DESIGN.md §12): replicated per-subscriber inboxes that hold
// publications the repair engine would otherwise dead-letter for an
// offline subscriber, persisted in a CRC-framed append log and replayed
// highest-priority-first when the subscriber rejoins.
//
// The package is deliberately protocol-free — it knows nothing about
// wire messages, leases, or the ring. It provides exactly two things:
// the Log (a crash-tolerant record journal, one per event-loop shard)
// and the Store (the in-memory pending index rebuilt from the log at
// open). Replica selection lives in selectcore, the lease state machine
// in internal/node.
package inbox

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Priority classes, replayed in ascending order (the SNIPPETS.md
// notification-benchmark convention: HIGH drains before MEDIUM before
// LOW).
const (
	High uint8 = iota
	Medium
	Low
	numPriorities
)

// Record is one deposited publication: the copy replica Replica holds
// for subscriber Target, identified by (Publisher, Seq) — the same id
// the DedupWindow uses, which is what makes replay duplicates harmless.
type Record struct {
	Replica     int32
	Target      int32
	Publisher   int32
	Seq         uint32
	Priority    uint8
	PayloadSize uint32
	Payload     []byte
	// Topic names the topic the publication was addressed to; empty for
	// friend-feed deposits. Carried so replay can restore the delivery's
	// topic metadata and so an unsubscribe can purge exactly the records
	// of the topic it departs (Store.PurgeTopic).
	Topic []byte
}

// Log record types.
const (
	recDeposit byte = 1
	recAck     byte = 2
)

// Frame layout on disk: [len u32][crc u32][body], little endian, where
// crc is the IEEE CRC-32 of body and len = len(body). The body is
// type(1) replica(4) target(4) publisher(4) seq(4) priority(1)
// payloadSize(4) payloadLen(4) topicLen(4) payload topic. Acks carry
// the same body with an empty payload. A reader stops at the first
// frame whose length runs past EOF (torn tail write) or whose CRC
// mismatches (bit flip) — everything before it is intact by
// construction.
const (
	recHeader  = 4 + 4
	recBodyFix = 1 + 4 + 4 + 4 + 4 + 1 + 4 + 4 + 4
	// maxRecordLen bounds what a reader will buffer for one frame; a
	// corrupted length field must never cost more memory than this.
	maxRecordLen = 16 << 20
)

// Log is the file-backed journal. One Log is shared by every replica
// hosted on the same event-loop shard (records carry the replica id),
// mirroring the per-shard mailbox layout of the PR-6 runtime. Appends
// are serialized by an internal mutex-free contract: the owning shard
// goroutine is the only writer, so the Log itself stays lock-free; the
// Store above it holds the lock.
type Log struct {
	f       *os.File
	path    string
	scratch []byte
	// syncEvery is the fsync policy: 0 leaves flushing to the OS page
	// cache (fastest, loses the tail on power failure), 1 fsyncs every
	// append (strongest), N>1 fsyncs every N appends (bounded loss).
	syncEvery int
	unsynced  int
}

// OpenLog opens (creating if needed) the journal at path for appending.
func OpenLog(path string, syncEvery int) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, path: path, syncEvery: syncEvery}, nil
}

// appendRecord frames and writes one record.
func (l *Log) appendRecord(typ byte, r *Record) error {
	body := recBodyFix + len(r.Payload) + len(r.Topic)
	need := recHeader + body
	if cap(l.scratch) < need {
		l.scratch = make([]byte, 0, need+need/2)
	}
	b := l.scratch[:need]
	binary.LittleEndian.PutUint32(b[0:], uint32(body))
	off := recHeader
	b[off] = typ
	off++
	binary.LittleEndian.PutUint32(b[off:], uint32(r.Replica))
	off += 4
	binary.LittleEndian.PutUint32(b[off:], uint32(r.Target))
	off += 4
	binary.LittleEndian.PutUint32(b[off:], uint32(r.Publisher))
	off += 4
	binary.LittleEndian.PutUint32(b[off:], r.Seq)
	off += 4
	b[off] = r.Priority
	off++
	binary.LittleEndian.PutUint32(b[off:], r.PayloadSize)
	off += 4
	binary.LittleEndian.PutUint32(b[off:], uint32(len(r.Payload)))
	off += 4
	binary.LittleEndian.PutUint32(b[off:], uint32(len(r.Topic)))
	off += 4
	off += copy(b[off:], r.Payload)
	copy(b[off:], r.Topic)
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[recHeader:]))
	if _, err := l.f.Write(b); err != nil {
		return err
	}
	if l.syncEvery > 0 {
		l.unsynced++
		if l.unsynced >= l.syncEvery {
			l.unsynced = 0
			return l.f.Sync()
		}
	}
	return nil
}

// Sync forces the journal to stable storage regardless of policy.
func (l *Log) Sync() error { return l.f.Sync() }

// Close closes the journal file.
func (l *Log) Close() error { return l.f.Close() }

// entry is one decoded journal record.
type entry struct {
	typ byte
	rec Record
}

// readJournal streams every intact record from r. It returns the number
// of corrupt frames that terminated the scan (0 or 1: the journal is a
// single writer stream, so nothing after the first bad frame can be
// trusted) — a torn or bit-flipped tail is skipped with a count, never
// a panic or an error.
func readJournal(r io.Reader) (entries []entry, corrupt int, err error) {
	var hdr [recHeader]byte
	for {
		if _, e := io.ReadFull(r, hdr[:1]); e == io.EOF {
			return entries, 0, nil
		} else if e != nil {
			return entries, 1, nil
		}
		if _, e := io.ReadFull(r, hdr[1:]); e != nil {
			return entries, 1, nil // torn header
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[0:])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen < recBodyFix || bodyLen > maxRecordLen {
			return entries, 1, nil // corrupted length field
		}
		body := make([]byte, bodyLen)
		if _, e := io.ReadFull(r, body); e != nil {
			return entries, 1, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return entries, 1, nil // bit flip
		}
		var ent entry
		ent.typ = body[0]
		off := 1
		ent.rec.Replica = int32(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		ent.rec.Target = int32(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		ent.rec.Publisher = int32(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		ent.rec.Seq = binary.LittleEndian.Uint32(body[off:])
		off += 4
		ent.rec.Priority = body[off]
		off++
		ent.rec.PayloadSize = binary.LittleEndian.Uint32(body[off:])
		off += 4
		plen := binary.LittleEndian.Uint32(body[off:])
		off += 4
		tlen := binary.LittleEndian.Uint32(body[off:])
		off += 4
		if int(plen)+int(tlen) != int(bodyLen)-recBodyFix {
			return entries, 1, nil // inner/outer length disagreement
		}
		if plen > 0 {
			ent.rec.Payload = body[off : off+int(plen)]
			off += int(plen)
		}
		if tlen > 0 {
			ent.rec.Topic = body[off : off+int(tlen)]
		}
		entries = append(entries, ent)
	}
}

// rewrite atomically replaces the journal with exactly recs (the
// compaction step): write to a temp file, fsync, rename over the old
// journal, reopen for appending.
func (l *Log) rewrite(recs []*Record) error {
	tmp := l.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	nl := &Log{f: f, path: tmp}
	for _, r := range recs {
		if err := nl.appendRecord(recDeposit, r); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := l.f
	nf, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return errors.Join(fmt.Errorf("inbox: reopen after compact: %w", err), old.Close())
	}
	l.f = nf
	l.unsynced = 0
	return old.Close()
}
