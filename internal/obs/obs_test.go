package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsIsNoOp(t *testing.T) {
	var m *Metrics
	m.Inc(CPublishSent)
	m.Addn(CFaultDrop, 5)
	m.ObserveHops(3)
	m.ObserveLatencyMS(12)
	m.TraceEvent("x", 1, 2)
	m.EnableTrace(8)
	if m.Get(CPublishSent) != 0 {
		t.Fatal("nil metrics returned nonzero counter")
	}
	s := m.Snapshot()
	if len(s.Counters) != 0 || s.Trace != nil {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

func TestCountersConcurrent(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Inc(CTransportSend)
				m.ObserveHops(float64(i % 8))
			}
		}()
	}
	wg.Wait()
	if got := m.Get(CTransportSend); got != 8000 {
		t.Fatalf("transport_send = %d, want 8000", got)
	}
	if total := m.Hops.Snapshot().Total(); total != 8000 {
		t.Fatalf("hop histogram total = %d, want 8000", total)
	}
}

func TestSnapshotOmitsZeroCounters(t *testing.T) {
	m := New()
	m.Inc(CPublishDelivered)
	s := m.Snapshot()
	if len(s.Counters) != 1 || s.Counters["publish_delivered"] != 1 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
}

func TestTraceBoundedRing(t *testing.T) {
	m := New()
	m.EnableTrace(4)
	for i := uint32(0); i < 10; i++ {
		m.TraceEvent("publish", int32(i), i)
	}
	s := m.Snapshot()
	if len(s.Trace) != 4 {
		t.Fatalf("trace kept %d events, want 4", len(s.Trace))
	}
	if s.TraceDropped != 6 {
		t.Fatalf("trace dropped %d, want 6", s.TraceDropped)
	}
	// Oldest-first tail: events 6,7,8,9.
	for i, e := range s.Trace {
		if e.Seq != uint32(6+i) {
			t.Fatalf("trace[%d] = %+v, want seq %d", i, e, 6+i)
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.ObserveLatencyMS(float64(i)) // uniform 0..99 ms
	}
	s := m.Snapshot()
	p50 := s.LatencyMS["p50"]
	if p50 < 30 || p50 > 70 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	if p99 := s.LatencyMS["p99"]; p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
}

func TestExportTextAndJSON(t *testing.T) {
	m := New()
	m.Inc(CFaultDrop)
	m.ObserveHops(2)
	s := m.Snapshot()
	txt := s.String()
	if !strings.Contains(txt, "fault_drop") {
		t.Fatalf("text export missing counter:\n%s", txt)
	}
	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["fault_drop"] != 1 {
		t.Fatalf("JSON roundtrip lost counter: %v", back.Counters)
	}
}

func TestCounterNamesComplete(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if counterNames[c] == "" {
			t.Fatalf("counter %d has no name", c)
		}
	}
}
