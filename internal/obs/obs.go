// Package obs is the runtime observability layer of the live deployment:
// allocation-disciplined atomic counters for every hot-path event the node
// runtime and the transports emit, lock-free latency/hop histograms that
// export through internal/metrics, and an optional bounded structured
// event trace for post-mortem analysis of a soak run.
//
// Every method is safe on a nil *Metrics — un-instrumented code paths pay
// a single nil check — and safe for concurrent use, so one Metrics can be
// shared by a whole cluster (nodes, transport, fault injector) without
// coordination.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"selectps/internal/metrics"
)

// Counter indexes one well-known event counter. The fixed enumeration
// keeps increments at a single atomic add into a flat array — no map
// lookups, no allocation — which matters on the publish/forward path.
type Counter uint8

// Well-known counters. Grouped by emitter.
const (
	// node: publication path (§III-E directed forwarding).
	CPublishSent      Counter = iota // directed copies sent by publishers
	CPublishForwarded                // copies relayed by intermediate nodes
	CPublishDelivered                // first-time local deliveries
	CPublishDuplicate                // dedup hits (copy already delivered)
	CPublishTTLDrop                  // copies expired by TTL
	CPublishDeadEnd                  // copies stranded with no live next hop
	CRetrySent                       // publisher-driven retransmissions
	CAckReceived                     // acks consumed by publishers

	// node: peer sampling + heartbeats (Algorithms 3–4, §III-F).
	CGossipSent      // Algorithm-3 exchanges initiated
	CGossipReply     // exchange replies consumed
	CHeartbeatSent   // pings sent
	CPongReceived    // pongs received
	CHeartbeatMiss   // pings unanswered by the next heartbeat tick
	CCMADeadSkip     // forwarding skipped a link the CMA marks dead (§III-F recovery)
	CCMARandomWalk   // local-minimum fallback onto a random live link
	CLatePongRecover // late pong healed a link previously counted as a miss

	// transport: delivery accounting (both implementations).
	CTransportSend   // messages handed to a transport
	CDropFullMailbox // dropped: receiver mailbox full (congestion)
	CDropClosed      // dropped: transport already closed / closing race
	CTimerShed       // periodic timer bodies skipped by a backlogged shard

	// transport: TCP connection lifecycle.
	CTCPDial       // fresh connections dialed
	CTCPRedial     // re-dials after a previous write failure evicted the conn
	CTCPWriteError // failed writes (connection evicted)

	// faultnet: injected faults.
	CFaultDrop          // messages dropped by the loss schedule
	CFaultDuplicate     // messages duplicated
	CFaultDelayed       // messages delayed (incl. reorder delays)
	CFaultCrashDrop     // messages dropped at a crashed endpoint
	CFaultPartitionDrop // messages dropped crossing an active partition

	// node: live maintenance protocol (Algorithms 1–2, 5–6 at runtime).
	CJoinRequest  // join requests received by inviters
	CJoinReply    // join admissions granted
	CIDAnnounce   // identifier announcements received
	CIDReassign   // Algorithm-2 identifier moves performed
	CLinkProposal // long-link proposals received
	CLinkAccept   // long-link proposals accepted
	CLinkDrop     // long-link teardowns (reject, eviction, budget shed)
	CLinkEvict    // incoming links evicted for a better-bandwidth proposer
	CLeave        // graceful departures observed

	// node: self-healing engine (DESIGN.md §9).
	CLinkSuspect   // links promoted to suspect by the failure detector
	CLinkDeadEvict // links declared dead and evicted (long links)
	CRingSplice    // ring neighbors spliced from the successor list
	CDeadLetter    // publications dead-lettered after the retry budget
	CJoinResend    // join requests re-sent by the retry scheduler

	// transport: TCP data-plane fast path (DESIGN.md §10).
	CTCPQueueDrop      // dropped: per-peer send queue full (backpressure)
	CTCPWriteDrop      // dropped: batch write failed even after the redial retry
	CTCPFlush          // writer flushes issued
	CTCPCoalescedFlush // flushes that carried more than one frame
	CTCPMalformedFrame // frames whose body failed to decode (conn evicted)
	CTCPOversizeFrame  // frames with a zero or oversize length prefix (conn evicted)

	// node: durable delivery tier (DESIGN.md §12).
	CInboxDeposit     // deposits persisted by replicas
	CInboxDepositDup  // duplicate deposits re-acked without re-persisting
	CInboxDepositAck  // deposit acks consumed by publishers
	CInboxDeposited   // per-subscriber copies handed to the durable tier instead of dead-lettered
	CInboxClaim       // replay claims received by replicas
	CInboxLeaseGrant  // leases granted (non-empty inbox claimed)
	CInboxLeaseExpire // lease expiries (claim handed to the next replica)
	CInboxReplay      // replay copies sent by replicas
	CInboxReplayed    // replayed publications acked and cleared from the journal
	CInboxLogCorrupt  // corrupt journal frames skipped at recovery

	// node: topic pub/sub (DESIGN.md §13).
	CTopicSub         // subscription registrations/lease refreshes received by rendezvous peers
	CTopicUnsub       // unsubscribes received (registry removal or journal purge)
	CTopicPubRecv     // topic publications accepted for fan-out by rendezvous peers
	CTopicFanout      // dissemination-tree copies sent (root branches + interior forwards)
	CTopicDelivered   // topic publications delivered to a local subscriber handler
	CTopicRehome      // rendezvous-set changes observed by subscribers (lease re-registered)
	CTopicHandoff     // registry hand-offs sent by peers that lost rendezvous ownership
	CTopicLeaseExpire // registry entries expired (subscriber stopped refreshing)
	CTopicPurged      // journal records purged by an unsubscribe drain

	// node: adversarial defenses (DESIGN.md §14).
	CSybilRejected    // join admissions dropped by the inviter's rate limit
	CSybilDiverted    // friend joins diverted to their hash position by the arc-occupancy cap
	CEclipseDisplaced // hearsay ring claims blocked from displacing a liveness-verified entry
	CPosRejected      // ring claims rejected by the admission-record position cross-check
	CStrengthClamped  // out-of-range exchange mutual counts detected (hardened: rejected)

	// node/transport: frame-economy fast path (DESIGN.md §15).
	CAckBatchSent      // KindAckBatch frames flushed to a next hop
	CAckCoalesced      // individual ack entries carried inside batches
	CAckTTLDrop        // batched routed-ack entries expired in relay
	CHeartbeatSuppress // heartbeat pings skipped: data traffic already proved liveness
	CIngressBatch      // envelope batches delivered to shard mailboxes in bulk

	numCounters
)

var counterNames = [numCounters]string{
	CPublishSent:      "publish_sent",
	CPublishForwarded: "publish_forwarded",
	CPublishDelivered: "publish_delivered",
	CPublishDuplicate: "publish_duplicate",
	CPublishTTLDrop:   "publish_ttl_drop",
	CPublishDeadEnd:   "publish_dead_end",
	CRetrySent:        "retry_sent",
	CAckReceived:      "ack_received",

	CGossipSent:      "gossip_sent",
	CGossipReply:     "gossip_reply",
	CHeartbeatSent:   "heartbeat_sent",
	CPongReceived:    "pong_received",
	CHeartbeatMiss:   "heartbeat_miss",
	CCMADeadSkip:     "cma_dead_skip",
	CCMARandomWalk:   "cma_random_walk",
	CLatePongRecover: "late_pong_recover",

	CTransportSend:   "transport_send",
	CDropFullMailbox: "drop_full_mailbox",
	CDropClosed:      "drop_closed",
	CTimerShed:       "timer_shed",

	CTCPDial:       "tcp_dial",
	CTCPRedial:     "tcp_redial",
	CTCPWriteError: "tcp_write_error",

	CFaultDrop:          "fault_drop",
	CFaultDuplicate:     "fault_duplicate",
	CFaultDelayed:       "fault_delayed",
	CFaultCrashDrop:     "fault_crash_drop",
	CFaultPartitionDrop: "fault_partition_drop",

	CJoinRequest:  "join_request",
	CJoinReply:    "join_reply",
	CIDAnnounce:   "id_announce",
	CIDReassign:   "id_reassign",
	CLinkProposal: "link_proposal",
	CLinkAccept:   "link_accept",
	CLinkDrop:     "link_drop",
	CLinkEvict:    "link_evict",
	CLeave:        "leave",

	CLinkSuspect:   "link_suspect",
	CLinkDeadEvict: "link_dead_evict",
	CRingSplice:    "ring_splice",
	CDeadLetter:    "dead_letter",
	CJoinResend:    "join_resend",

	CTCPQueueDrop:      "tcp_send_queue_drop",
	CTCPWriteDrop:      "tcp_write_drop",
	CTCPFlush:          "tcp_flush",
	CTCPCoalescedFlush: "tcp_coalesced_flush",
	CTCPMalformedFrame: "tcp_malformed_frame",
	CTCPOversizeFrame:  "tcp_oversize_frame",

	CInboxDeposit:     "inbox_deposit",
	CInboxDepositDup:  "inbox_deposit_dup",
	CInboxDepositAck:  "inbox_deposit_ack",
	CInboxDeposited:   "inbox_deposited",
	CInboxClaim:       "inbox_claim",
	CInboxLeaseGrant:  "inbox_lease_grant",
	CInboxLeaseExpire: "inbox_lease_expire",
	CInboxReplay:      "inbox_replay",
	CInboxReplayed:    "inbox_replayed",
	CInboxLogCorrupt:  "inbox_log_corrupt",
	CTopicSub:         "topic_sub",
	CTopicUnsub:       "topic_unsub",
	CTopicPubRecv:     "topic_pub_recv",
	CTopicFanout:      "topic_fanout",
	CTopicDelivered:   "topic_delivered",
	CTopicRehome:      "topic_rehome",
	CTopicHandoff:     "topic_handoff",
	CTopicLeaseExpire: "topic_lease_expire",
	CTopicPurged:      "topic_purged",

	CSybilRejected:    "sybil_rejected",
	CSybilDiverted:    "sybil_diverted",
	CEclipseDisplaced: "eclipse_displaced",
	CPosRejected:      "pos_rejected",
	CStrengthClamped:  "strength_clamped",

	CAckBatchSent:      "ack_batch_sent",
	CAckCoalesced:      "ack_coalesced",
	CAckTTLDrop:        "ack_ttl_drop",
	CHeartbeatSuppress: "heartbeat_suppressed",
	CIngressBatch:      "ingress_batch",
}

// String returns the counter's export name.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// Hist is a fixed-bin histogram with atomic bins: concurrent Add with no
// locks, snapshot through internal/metrics for quantiles and printing.
type Hist struct {
	min, max float64
	bins     []atomic.Int64
}

// NewHist returns a histogram over [min,max) with the given bin count;
// out-of-range observations clamp to the edge bins (same contract as
// metrics.Histogram).
func NewHist(min, max float64, bins int) *Hist {
	if bins <= 0 || max <= min {
		panic(fmt.Sprintf("obs: bad histogram [%v,%v) x%d", min, max, bins))
	}
	return &Hist{min: min, max: max, bins: make([]atomic.Int64, bins)}
}

// Add records one observation. Safe for concurrent use; nil-safe.
func (h *Hist) Add(x float64) {
	if h == nil {
		return
	}
	i := int((x - h.min) / (h.max - h.min) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i].Add(1)
}

// Snapshot copies the current bins into a metrics.Histogram, reusing its
// Total/Fractions/printing plumbing.
func (h *Hist) Snapshot() *metrics.Histogram {
	if h == nil {
		return nil
	}
	out := metrics.NewHistogram(h.min, h.max, len(h.bins))
	for i := range h.bins {
		out.Bins[i] = h.bins[i].Load()
	}
	return out
}

// Event is one entry of the bounded structured trace.
type Event struct {
	Kind string `json:"kind"`
	Peer int32  `json:"peer"`
	Seq  uint32 `json:"seq"`
}

// Metrics is one shared observability sink. The zero value is NOT ready:
// use New. A nil *Metrics is a valid no-op sink.
type Metrics struct {
	counters [numCounters]atomic.Int64

	// Hops records overlay hop counts of first-time deliveries; Latency
	// records end-to-end delivery latency in milliseconds (recorded by the
	// soak harness, which owns the wall clock).
	Hops    *Hist
	Latency *Hist

	// SendQueue records the TCP per-peer send-queue depth observed at each
	// enqueue; FlushBatch records how many frames each writer flush
	// coalesced into one syscall (DESIGN.md §10).
	SendQueue  *Hist
	FlushBatch *Hist

	// LoopLag records scheduled-fire vs actual-fire skew of timer-wheel
	// entries in milliseconds (DESIGN.md §11): a loaded shard drains its
	// mailbox instead of firing timers on time, and that overload shows up
	// here instead of as silent tail latency.
	LoopLag *Hist

	// Sojourn records per-envelope queueing delay in milliseconds —
	// transport enqueue to handler dispatch (DESIGN.md §11). It is the
	// shard runtime's primary health signal: sustained sojourn above the
	// protocol's retry backoff means acks return too late to cancel
	// retransmissions and the cluster is sliding toward congestion
	// collapse (the timer-shed counter rising says the governor is
	// holding it back).
	Sojourn *Hist

	// gauges are named point-in-time values (live goroutine count,
	// timer-wheel entries per shard) set by the runtime's monitor tick.
	// A map+mutex is fine off the hot path.
	gaugeMu sync.Mutex
	gauges  map[string]int64

	// RepairLink and RepairRing record time-to-repair in milliseconds:
	// from the first missed heartbeat of a link later declared dead to
	// the replacement — a new long link accepted (RepairLink) or the
	// local successor-list splice (RepairRing). Both are bounded by the
	// detector thresholds times the heartbeat period plus one
	// proposal round trip (DESIGN.md §9).
	RepairLink *Hist
	RepairRing *Hist

	// Restabilize records post-attack time-to-restabilize in
	// milliseconds: from the end of an adversarial window to the probe
	// round whose hop mean and delivery rate are back within the
	// recovery band of the pre-attack baseline (recorded by the soak
	// harness, which owns the baseline). The Feldmann-style
	// self-stabilization measurement of DESIGN.md §14.
	Restabilize *Hist

	// trace is a bounded ring; nil until EnableTrace.
	traceMu  sync.Mutex
	trace    []Event
	traceCap int
	traceLen int // total events ever recorded (ring may have wrapped)
	traceOff int // ring write cursor
}

// New returns an empty Metrics with standard hop and latency histograms
// (hops 0..16, latency 0..5000 ms in 10 ms bins).
func New() *Metrics {
	return &Metrics{
		Hops:        NewHist(0, 16, 16),
		Latency:     NewHist(0, 5000, 500),
		RepairLink:  NewHist(0, 2000, 200),
		RepairRing:  NewHist(0, 2000, 200),
		Restabilize: NewHist(0, 10000, 200),
		SendQueue:   NewHist(0, 512, 64),
		FlushBatch:  NewHist(0, 64, 64),
		LoopLag:     NewHist(0, 1000, 200),
		Sojourn:     NewHist(0, 1000, 200),
	}
}

// Inc adds 1 to counter c. Nil-safe, allocation-free.
func (m *Metrics) Inc(c Counter) {
	if m == nil {
		return
	}
	m.counters[c].Add(1)
}

// Addn adds n to counter c. Nil-safe.
func (m *Metrics) Addn(c Counter, n int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(n)
}

// Get returns the current value of counter c (0 on nil).
func (m *Metrics) Get(c Counter) int64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// ObserveHops records a delivery hop count. Nil-safe.
func (m *Metrics) ObserveHops(h float64) {
	if m == nil {
		return
	}
	m.Hops.Add(h)
}

// ObserveLatencyMS records an end-to-end delivery latency. Nil-safe.
func (m *Metrics) ObserveLatencyMS(ms float64) {
	if m == nil {
		return
	}
	m.Latency.Add(ms)
}

// ObserveSendQueue records a TCP per-peer send-queue depth sample.
// Nil-safe.
func (m *Metrics) ObserveSendQueue(depth float64) {
	if m == nil {
		return
	}
	m.SendQueue.Add(depth)
}

// ObserveFlushBatch records how many frames one writer flush coalesced.
// Nil-safe.
func (m *Metrics) ObserveFlushBatch(frames float64) {
	if m == nil {
		return
	}
	m.FlushBatch.Add(frames)
}

// ObserveLoopLagMS records how late a timer-wheel entry fired relative
// to its scheduled deadline. Nil-safe.
func (m *Metrics) ObserveLoopLagMS(ms float64) {
	if m == nil {
		return
	}
	m.LoopLag.Add(ms)
}

// ObserveSojournMS records one envelope's transport-enqueue→dispatch
// queueing delay. Nil-safe.
func (m *Metrics) ObserveSojournMS(ms float64) {
	if m == nil {
		return
	}
	m.Sojourn.Add(ms)
}

// SetGauge records a named point-in-time value, overwriting the previous
// one. Nil-safe.
func (m *Metrics) SetGauge(name string, v int64) {
	if m == nil {
		return
	}
	m.gaugeMu.Lock()
	if m.gauges == nil {
		m.gauges = make(map[string]int64)
	}
	m.gauges[name] = v
	m.gaugeMu.Unlock()
}

// Gauge returns the last value set for name (0, false when never set).
// Nil-safe.
func (m *Metrics) Gauge(name string) (int64, bool) {
	if m == nil {
		return 0, false
	}
	m.gaugeMu.Lock()
	defer m.gaugeMu.Unlock()
	v, ok := m.gauges[name]
	return v, ok
}

// ObserveRepairLinkMS records the time-to-repair of a dead long link.
// Nil-safe.
func (m *Metrics) ObserveRepairLinkMS(ms float64) {
	if m == nil {
		return
	}
	m.RepairLink.Add(ms)
}

// ObserveRepairRingMS records the time-to-repair of a dead ring
// neighbor. Nil-safe.
func (m *Metrics) ObserveRepairRingMS(ms float64) {
	if m == nil {
		return
	}
	m.RepairRing.Add(ms)
}

// ObserveRestabilizeMS records one post-attack time-to-restabilize
// measurement. Nil-safe.
func (m *Metrics) ObserveRestabilizeMS(ms float64) {
	if m == nil {
		return
	}
	m.Restabilize.Add(ms)
}

// EnableTrace turns on the bounded structured event trace, keeping the
// most recent cap events. Call before the cluster starts; nil-safe.
func (m *Metrics) EnableTrace(cap int) {
	if m == nil || cap <= 0 {
		return
	}
	m.traceMu.Lock()
	m.trace = make([]Event, cap)
	m.traceCap = cap
	m.traceLen = 0
	m.traceOff = 0
	m.traceMu.Unlock()
}

// TraceEvent appends one event to the trace if tracing is enabled. The
// ring overwrites the oldest entries when full; nil-safe and free when
// tracing is off (one mutex acquisition when on).
func (m *Metrics) TraceEvent(kind string, peer int32, seq uint32) {
	if m == nil || m.traceCap == 0 {
		return
	}
	m.traceMu.Lock()
	if m.traceCap > 0 {
		m.trace[m.traceOff] = Event{Kind: kind, Peer: peer, Seq: seq}
		m.traceOff = (m.traceOff + 1) % m.traceCap
		m.traceLen++
	}
	m.traceMu.Unlock()
}

// Snapshot is a point-in-time copy of every counter, histogram, and the
// trace tail, suitable for JSON encoding.
type Snapshot struct {
	Counters map[string]int64 `json:"counters"`
	// HopFractions is the share of deliveries per hop count (index = hops).
	HopFractions []float64 `json:"hop_fractions,omitempty"`
	// LatencyMS holds selected latency quantiles estimated from the
	// histogram (keys "p50", "p90", "p99").
	LatencyMS map[string]float64 `json:"latency_ms,omitempty"`
	// RepairLinkMS/RepairRingMS hold time-to-repair quantiles for dead
	// long links and dead ring neighbors (keys "p50", "p90", "p99").
	RepairLinkMS map[string]float64 `json:"repair_link_ms,omitempty"`
	RepairRingMS map[string]float64 `json:"repair_ring_ms,omitempty"`
	// RestabilizeMS holds post-attack time-to-restabilize quantiles
	// (keys "p50", "p90", "p99").
	RestabilizeMS map[string]float64 `json:"restabilize_ms,omitempty"`
	// SendQueueDepth/FlushBatchFrames hold TCP fast-path quantiles: queue
	// depth at enqueue and frames coalesced per flush.
	SendQueueDepth   map[string]float64 `json:"send_queue_depth,omitempty"`
	FlushBatchFrames map[string]float64 `json:"flush_batch_frames,omitempty"`
	// LoopLagMS holds timer-wheel fire-skew quantiles and SojournMS the
	// envelope enqueue→dispatch delay quantiles (keys "p50", "p90",
	// "p99"); Gauges holds the last value of every named gauge.
	LoopLagMS map[string]float64 `json:"loop_lag_ms,omitempty"`
	SojournMS map[string]float64 `json:"sojourn_ms,omitempty"`
	Gauges    map[string]int64   `json:"gauges,omitempty"`
	// Trace is the retained tail of the structured event trace, oldest
	// first, with TraceDropped counting evicted older events.
	Trace        []Event `json:"trace,omitempty"`
	TraceDropped int     `json:"trace_dropped,omitempty"`
}

// Snapshot captures the current state. Counters at zero are omitted so
// the export stays readable. Nil-safe (returns an empty snapshot).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}}
	if m == nil {
		return s
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := m.counters[c].Load(); v != 0 {
			s.Counters[c.String()] = v
		}
	}
	if h := m.Hops.Snapshot(); h != nil && h.Total() > 0 {
		s.HopFractions = h.Fractions()
	}
	quantiles := func(h *metrics.Histogram) map[string]float64 {
		if h == nil || h.Total() == 0 {
			return nil
		}
		return map[string]float64{
			"p50": histQuantile(h, 0.5),
			"p90": histQuantile(h, 0.9),
			"p99": histQuantile(h, 0.99),
		}
	}
	s.LatencyMS = quantiles(m.Latency.Snapshot())
	s.RepairLinkMS = quantiles(m.RepairLink.Snapshot())
	s.RepairRingMS = quantiles(m.RepairRing.Snapshot())
	s.RestabilizeMS = quantiles(m.Restabilize.Snapshot())
	s.SendQueueDepth = quantiles(m.SendQueue.Snapshot())
	s.FlushBatchFrames = quantiles(m.FlushBatch.Snapshot())
	s.LoopLagMS = quantiles(m.LoopLag.Snapshot())
	s.SojournMS = quantiles(m.Sojourn.Snapshot())
	m.gaugeMu.Lock()
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(m.gauges))
		for k, v := range m.gauges {
			s.Gauges[k] = v
		}
	}
	m.gaugeMu.Unlock()
	m.traceMu.Lock()
	if m.traceCap > 0 {
		kept := m.traceLen
		if kept > m.traceCap {
			kept = m.traceCap
			s.TraceDropped = m.traceLen - m.traceCap
		}
		s.Trace = make([]Event, 0, kept)
		start := 0
		if m.traceLen > m.traceCap {
			start = m.traceOff // oldest surviving entry
		}
		for i := 0; i < kept; i++ {
			s.Trace = append(s.Trace, m.trace[(start+i)%m.traceCap])
		}
	}
	m.traceMu.Unlock()
	return s
}

// histQuantile estimates quantile q from histogram bin midpoints.
func histQuantile(h *metrics.Histogram, q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var cum int64
	width := (h.Max - h.Min) / float64(len(h.Bins))
	for i, b := range h.Bins {
		cum += b
		if cum > target {
			return h.Min + (float64(i)+0.5)*width
		}
	}
	return h.Max
}

// String renders the snapshot as aligned text, counters sorted by name.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-22s %12d\n", k, s.Counters[k])
	}
	if s.LatencyMS != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0fms p90=%.0fms p99=%.0fms\n", "delivery_latency",
			s.LatencyMS["p50"], s.LatencyMS["p90"], s.LatencyMS["p99"])
	}
	if s.RepairLinkMS != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0fms p90=%.0fms p99=%.0fms\n", "time_to_repair_link",
			s.RepairLinkMS["p50"], s.RepairLinkMS["p90"], s.RepairLinkMS["p99"])
	}
	if s.RepairRingMS != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0fms p90=%.0fms p99=%.0fms\n", "time_to_repair_ring",
			s.RepairRingMS["p50"], s.RepairRingMS["p90"], s.RepairRingMS["p99"])
	}
	if s.RestabilizeMS != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0fms p90=%.0fms p99=%.0fms\n", "time_to_restabilize",
			s.RestabilizeMS["p50"], s.RestabilizeMS["p90"], s.RestabilizeMS["p99"])
	}
	if s.SendQueueDepth != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0f p90=%.0f p99=%.0f\n", "send_queue_depth",
			s.SendQueueDepth["p50"], s.SendQueueDepth["p90"], s.SendQueueDepth["p99"])
	}
	if s.FlushBatchFrames != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0f p90=%.0f p99=%.0f\n", "flush_batch_frames",
			s.FlushBatchFrames["p50"], s.FlushBatchFrames["p90"], s.FlushBatchFrames["p99"])
	}
	if s.LoopLagMS != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0fms p90=%.0fms p99=%.0fms\n", "loop_lag",
			s.LoopLagMS["p50"], s.LoopLagMS["p90"], s.LoopLagMS["p99"])
	}
	if s.SojournMS != nil {
		fmt.Fprintf(&b, "%-22s p50=%.0fms p90=%.0fms p99=%.0fms\n", "sojourn",
			s.SojournMS["p50"], s.SojournMS["p90"], s.SojournMS["p99"])
	}
	gnames := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		gnames = append(gnames, k)
	}
	sort.Strings(gnames)
	for _, k := range gnames {
		fmt.Fprintf(&b, "%-22s %12d\n", "gauge:"+k, s.Gauges[k])
	}
	for h, f := range s.HopFractions {
		if f > 0.001 {
			fmt.Fprintf(&b, "hops=%-17d %11.1f%%\n", h, f*100)
		}
	}
	if len(s.Trace) > 0 {
		fmt.Fprintf(&b, "trace: %d events retained (%d dropped)\n", len(s.Trace), s.TraceDropped)
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
