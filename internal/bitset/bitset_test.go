package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if s.Test(i) {
			t.Errorf("new set has bit %d on", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	s.Clear(64)
	if s.Test(64) || s.Count() != 6 {
		t.Errorf("Clear(64) failed: count=%d", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, f := range map[string]func(){
		"Set(-1)":   func() { s.Set(-1) },
		"Set(10)":   func() { s.Set(10) },
		"Test(10)":  func() { _ = s.Test(10) },
		"Clear(10)": func() { s.Clear(10) },
		"New(-1)":   func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AndCount with mismatched sizes did not panic")
		}
	}()
	AndCount(New(5), New(6))
}

func TestFromIndicesAndIndices(t *testing.T) {
	in := []int{3, 70, 5, 127}
	s := FromIndices(128, in)
	got := s.Indices()
	want := []int{3, 5, 70, 127}
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestCounts(t *testing.T) {
	a := FromIndices(100, []int{1, 2, 3, 64, 65})
	b := FromIndices(100, []int{2, 3, 4, 65, 99})
	if got := AndCount(a, b); got != 3 {
		t.Errorf("AndCount = %d, want 3", got)
	}
	if got := OrCount(a, b); got != 7 {
		t.Errorf("OrCount = %d, want 7", got)
	}
	if got := Hamming(a, b); got != 4 {
		t.Errorf("Hamming = %d, want 4", got)
	}
	if got := Jaccard(a, b); got != 3.0/7.0 {
		t.Errorf("Jaccard = %v, want 3/7", got)
	}
}

func TestJaccardEmpty(t *testing.T) {
	if got := Jaccard(New(10), New(10)); got != 1 {
		t.Errorf("Jaccard of empty sets = %v, want 1", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromIndices(70, []int{1, 69})
	c := a.Clone()
	c.Set(2)
	if a.Test(2) {
		t.Error("mutating clone affected original")
	}
	if !Equal(a, FromIndices(70, []int{1, 69})) {
		t.Error("original changed unexpectedly")
	}
}

func TestResetAndEqual(t *testing.T) {
	a := FromIndices(64, []int{0, 63})
	a.Reset()
	if a.Count() != 0 {
		t.Errorf("Count after Reset = %d", a.Count())
	}
	if Equal(a, New(63)) {
		t.Error("Equal should be false for different lengths")
	}
	if !Equal(a, New(64)) {
		t.Error("Equal should be true for two empty same-length sets")
	}
}

func TestString(t *testing.T) {
	s := FromIndices(5, []int{0, 3})
	if got := s.String(); got != "10010" {
		t.Errorf("String = %q, want %q", got, "10010")
	}
}

func TestPropertyInclusionExclusion(t *testing.T) {
	// |a| + |b| == |a∧b| + |a∨b| for random sets.
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a, b := New(200), New(200)
		for i := 0; i < 200; i++ {
			if ra.Intn(2) == 1 {
				a.Set(i)
			}
			if rb.Intn(2) == 1 {
				b.Set(i)
			}
		}
		return a.Count()+b.Count() == AndCount(a, b)+OrCount(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHammingFromCounts(t *testing.T) {
	// Hamming(a,b) == |a∨b| - |a∧b|.
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a, b := New(123), New(123)
		for i := 0; i < 123; i++ {
			if ra.Intn(3) == 0 {
				a.Set(i)
			}
			if rb.Intn(3) == 0 {
				b.Set(i)
			}
		}
		return Hamming(a, b) == OrCount(a, b)-AndCount(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				s.Set(i)
			}
		}
		return Equal(s, FromIndices(n, s.Indices()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
