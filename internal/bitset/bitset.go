// Package bitset provides a compact, fixed-capacity bit vector.
//
// SELECT's connection-establishment algorithm (Algorithm 5) exchanges a
// "friendship bitmap" per social neighbor: position i is set when the
// neighbor maintains an overlay link to the i-th member of the local friend
// set C_p. These bitmaps are hashed by the LSH index (internal/lsh) and
// compared for similarity, so the package exposes cheap population-count,
// intersection and Hamming-distance primitives on top of []uint64 words.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit vector with a fixed length decided at construction.
// The zero value is an empty, zero-length set; use New for a sized one.
type Set struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a Set holding n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a Set of n bits with the given indices set.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// Len returns the number of bits the set holds.
func (s *Set) Len() int { return s.n }

// check panics when i is out of range; bitmaps are internal fixed-shape
// structures, so an out-of-range index is a programming error.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set turns bit i on.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (i % wordBits)
}

// Clear turns bit i off.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (i % wordBits)
}

// Test reports whether bit i is on.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reshape resizes s to hold n bits, all zero, reusing the backing array
// when it is large enough. It is the scratch-buffer companion to New:
// hot loops that build many bitmaps of varying sizes (the per-friend
// friendship bitmaps of Algorithm 5) reshape one set instead of
// allocating one per bitmap.
func (s *Set) Reshape(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	if cap(s.words) < w {
		s.words = make([]uint64, w)
	} else {
		s.words = s.words[:w]
		clear(s.words)
	}
	s.n = n
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	clear(s.words)
}

// sameShape panics unless a and b have equal lengths. Bitmaps compared in
// the LSH index always describe the same friend set, so a mismatch is a bug.
func sameShape(a, b *Set) {
	if a.n != b.n {
		panic(fmt.Sprintf("bitset: size mismatch %d vs %d", a.n, b.n))
	}
}

// AndCount returns |a ∧ b| without allocating.
func AndCount(a, b *Set) int {
	sameShape(a, b)
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return c
}

// OrCount returns |a ∨ b| without allocating.
func OrCount(a, b *Set) int {
	sameShape(a, b)
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] | b.words[i])
	}
	return c
}

// Hamming returns the number of positions where a and b differ.
func Hamming(a, b *Set) int {
	sameShape(a, b)
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] ^ b.words[i])
	}
	return c
}

// Jaccard returns |a∧b| / |a∨b|, the similarity measure the LSH bucketing
// approximates. Two empty sets are defined to have similarity 1.
func Jaccard(a, b *Set) float64 {
	union := OrCount(a, b)
	if union == 0 {
		return 1
	}
	return float64(AndCount(a, b)) / float64(union)
}

// Indices returns the positions of all set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &^= 1 << b
		}
	}
	return out
}

// String renders the set as a 0/1 string, lowest index first. Intended for
// tests and debugging of small bitmaps.
func (s *Set) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Equal reports whether a and b have identical length and contents.
func Equal(a, b *Set) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}
