// Package par provides deterministic intra-trial parallelism: fixed
// contiguous sharding of an index range over a bounded worker pool.
//
// The experiment engine (internal/sim) already parallelizes across trials;
// par parallelizes *inside* one trial, where determinism is non-negotiable
// — the gossip supersteps and precomputation passes it accelerates must
// produce bit-identical results for a fixed seed no matter how many workers
// run them. The contract that makes this safe is purely structural: For
// splits [0,n) into one contiguous span per worker, every index is
// processed by exactly one worker, and the caller's closure writes only to
// per-index state (plus an optional per-shard accumulator merged in shard
// order afterwards). No scheduling decision can then affect the output.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forced holds a test/tuning override for the worker count; 0 means "use
// GOMAXPROCS".
var forced atomic.Int32

// SetWorkers overrides the worker count used by For. n <= 0 restores the
// GOMAXPROCS default. Intended for tests (forcing the parallel path on
// single-CPU machines, or the sequential path for differential runs) and
// for callers that want to bound background parallelism.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	forced.Store(int32(n))
}

// Workers reports the number of workers For will use for a large range.
func Workers() int {
	if f := forced.Load(); f > 0 {
		return int(f)
	}
	return runtime.GOMAXPROCS(0)
}

// minShard is the smallest range worth spawning goroutines for; below it
// the fork/join overhead dominates any speedup.
const minShard = 256

// For splits [0,n) into w contiguous spans and calls fn(shard, lo, hi) for
// each, concurrently when it pays. shard is the span's index in [0,w) where
// w = Shards(n), so callers can maintain per-shard scratch state and merge
// it deterministically (in shard order) after For returns.
//
// fn must confine its writes to per-index state and its own shard's
// scratch; For guarantees each index lands in exactly one span but provides
// no other synchronization.
func For(n int, fn func(shard, lo, hi int)) {
	w := Shards(n)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for s := 0; s < w; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// Shards reports how many spans For will use for a range of size n: 1 for
// small ranges (run inline), Workers() otherwise, never more than n.
func Shards(n int) int {
	w := Workers()
	if forced.Load() == 0 && n < minShard {
		return 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
