package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEachIndexOnce is the core sharding contract: every index in
// [0,n) is visited by exactly one (shard, lo, hi) span.
func TestForCoversEachIndexOnce(t *testing.T) {
	defer SetWorkers(0)
	for _, workers := range []int{1, 2, 3, 7} {
		SetWorkers(workers)
		for _, n := range []int{0, 1, 5, workers, workers + 1, 1000} {
			visits := make([]int32, n)
			For(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForShardIndexing checks that shard ids are dense in [0, Shards(n))
// and that spans are contiguous and ordered by shard id, which is what
// makes shard-ordered merges deterministic.
func TestForShardIndexing(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	n := 1003
	w := Shards(n)
	los := make([]int, w)
	his := make([]int, w)
	For(n, func(shard, lo, hi int) {
		los[shard], his[shard] = lo, hi
	})
	prev := 0
	for s := 0; s < w; s++ {
		if los[s] != prev {
			t.Fatalf("shard %d starts at %d, want %d", s, los[s], prev)
		}
		if his[s] < los[s] {
			t.Fatalf("shard %d: hi %d < lo %d", s, his[s], los[s])
		}
		prev = his[s]
	}
	if prev != n {
		t.Fatalf("spans cover [0,%d), want [0,%d)", prev, n)
	}
}

func TestSmallRangeRunsInline(t *testing.T) {
	// Without a forced worker count, ranges under minShard run as a single
	// inline span (no goroutine fork for trivial work).
	if got := Shards(minShard - 1); got != 1 {
		t.Fatalf("Shards(%d) = %d, want 1", minShard-1, got)
	}
	defer SetWorkers(0)
	SetWorkers(3)
	// A forced count overrides the inline shortcut so tests can exercise
	// the parallel path on any machine.
	if got := Shards(8); got != 3 {
		t.Fatalf("forced Shards(8) = %d, want 3", got)
	}
	if got := Shards(2); got != 2 {
		t.Fatalf("forced Shards(2) = %d, want 2 (never more shards than items)", got)
	}
}
