package ring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNorm(t *testing.T) {
	cases := []struct {
		in   float64
		want ID
	}{
		{0, 0},
		{0.25, 0.25},
		{1, 0},
		{1.5, 0.5},
		{-0.25, 0.75},
		{-1, 0},
		{2.75, 0.75},
	}
	for _, c := range cases {
		if got := Norm(c.in); math.Abs(float64(got-c.want)) > 1e-12 {
			t.Errorf("Norm(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Norm(NaN) did not panic")
		}
	}()
	Norm(math.NaN())
}

func TestDistance(t *testing.T) {
	cases := []struct {
		u, v ID
		want float64
	}{
		{0, 0, 0},
		{0, 0.5, 0.5},
		{0.1, 0.9, 0.2},   // wraps
		{0.9, 0.1, 0.2},   // symmetric
		{0.25, 0.75, 0.5}, /* antipodal */
	}
	for _, c := range cases {
		if got := Distance(c.u, c.v); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Distance(%v,%v) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(a, b, c uint16) bool {
		u := Norm(float64(a) / 65536)
		v := Norm(float64(b) / 65536)
		w := Norm(float64(c) / 65536)
		duv := Distance(u, v)
		// symmetry, range, identity
		if duv != Distance(v, u) || duv < 0 || duv > 0.5 {
			return false
		}
		if Distance(u, u) != 0 {
			return false
		}
		// triangle inequality
		return Distance(u, w) <= duv+Distance(v, w)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockwise(t *testing.T) {
	if got := Clockwise(0.9, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Clockwise(0.9,0.1) = %v, want 0.2", got)
	}
	if got := Clockwise(0.1, 0.9); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Clockwise(0.1,0.9) = %v, want 0.8", got)
	}
	if got := Clockwise(0.3, 0.3); got != 0 {
		t.Errorf("Clockwise(x,x) = %v, want 0", got)
	}
}

func TestClockwiseSumIsFull(t *testing.T) {
	f := func(a, b uint16) bool {
		u := Norm(float64(a) / 65536)
		v := Norm(float64(b) / 65536)
		if u == v {
			return Clockwise(u, v) == 0
		}
		s := Clockwise(u, v) + Clockwise(v, u)
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, x, b ID
		want    bool
	}{
		{0.1, 0.2, 0.3, true},
		{0.1, 0.3, 0.3, true},  // inclusive upper
		{0.1, 0.1, 0.3, false}, // exclusive lower
		{0.9, 0.95, 0.1, true}, // wrap
		{0.9, 0.05, 0.1, true}, // wrap
		{0.9, 0.5, 0.1, false}, // outside wrap arc
		{0.4, 0.4, 0.4, false}, // a==b, x==a
		{0.4, 0.6, 0.4, true},  // a==b, full ring
	}
	for _, c := range cases {
		if got := Between(c.a, c.x, c.b); got != c.want {
			t.Errorf("Between(%v,%v,%v) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

func TestMidpoint(t *testing.T) {
	cases := []struct {
		u, v, want ID
	}{
		{0.2, 0.4, 0.3},
		{0.4, 0.2, 0.3},
		{0.9, 0.1, 0.0}, // across the wrap
		{0.1, 0.9, 0.0},
		{0.5, 0.5, 0.5},
	}
	for _, c := range cases {
		got := Midpoint(c.u, c.v)
		if Distance(got, c.want) > 1e-12 {
			t.Errorf("Midpoint(%v,%v) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestMidpointEquidistant(t *testing.T) {
	f := func(a, b uint16) bool {
		u := Norm(float64(a) / 65536)
		v := Norm(float64(b) / 65536)
		m := Midpoint(u, v)
		return math.Abs(Distance(m, u)-Distance(m, v)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentroid(t *testing.T) {
	if _, ok := Centroid(nil); ok {
		t.Error("Centroid(nil) should not be ok")
	}
	if _, ok := Centroid([]ID{0.0, 0.5}); ok {
		t.Error("Centroid of antipodal pair should cancel")
	}
	got, ok := Centroid([]ID{0.1, 0.2, 0.3})
	if !ok || Distance(got, 0.2) > 1e-9 {
		t.Errorf("Centroid = %v (ok=%v), want 0.2", got, ok)
	}
	// Cluster straddling the wrap point.
	got, ok = Centroid([]ID{0.95, 0.05})
	if !ok || Distance(got, 0) > 1e-9 {
		t.Errorf("Centroid wrap = %v (ok=%v), want 0", got, ok)
	}
}

func TestHashUniformity(t *testing.T) {
	// Coarse chi-square style check: 10k hashed keys over 10 deciles.
	const n, buckets = 10000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		id := HashUint64(uint64(i))
		if !id.Valid() {
			t.Fatalf("HashUint64(%d) = %v out of range", i, id)
		}
		counts[int(float64(id)*buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets/2 || c > n/buckets*2 {
			t.Errorf("bucket %d has %d of %d hashes; far from uniform", b, c, n)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	if Hash([]byte("peer-42")) != Hash([]byte("peer-42")) {
		t.Error("Hash is not deterministic")
	}
	if Hash([]byte("peer-42")) == Hash([]byte("peer-43")) {
		t.Error("distinct keys unexpectedly collide")
	}
}

func TestSuccessor(t *testing.T) {
	sorted := []ID{0.1, 0.3, 0.7}
	cases := []struct {
		id   ID
		want int
	}{
		{0.0, 0},
		{0.1, 1},
		{0.2, 1},
		{0.69, 2},
		{0.7, 0}, // wraps
		{0.9, 0},
	}
	for _, c := range cases {
		if got := Successor(sorted, c.id); got != c.want {
			t.Errorf("Successor(%v) = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestArcLengths(t *testing.T) {
	gaps := ArcLengths([]ID{0.1, 0.4, 0.8})
	want := []float64{0.3, 0.4, 0.3}
	var sum float64
	for i := range gaps {
		sum += gaps[i]
		if math.Abs(gaps[i]-want[i]) > 1e-12 {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("gaps sum to %v, want 1", sum)
	}
	if ArcLengths(nil) != nil {
		t.Error("ArcLengths(nil) should be nil")
	}
}

func TestArcLengthsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		ids := make([]ID, n)
		for i := range ids {
			ids[i] = Norm(rng.Float64())
		}
		SortIDs(ids)
		var sum float64
		for _, g := range ArcLengths(ids) {
			if g < 0 {
				t.Fatalf("negative gap %v", g)
			}
			sum += g
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("gaps sum to %v, want 1", sum)
		}
	}
}

func TestPerturb(t *testing.T) {
	if got := Perturb(0.99, 0.02); Distance(got, 0.01) > 1e-12 {
		t.Errorf("Perturb wrap = %v, want 0.01", got)
	}
	if got := Perturb(0.01, -0.02); Distance(got, 0.99) > 1e-12 {
		t.Errorf("Perturb negative wrap = %v, want 0.99", got)
	}
}
