package ring

import (
	"math/rand"
	"testing"
)

func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	u, v := Norm(rng.Float64()), Norm(rng.Float64())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Distance(u, v)
	}
}

func BenchmarkMidpoint(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	u, v := Norm(rng.Float64()), Norm(rng.Float64())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Midpoint(u, v)
	}
}

func BenchmarkHashUint64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashUint64(uint64(i))
	}
}

func BenchmarkSuccessor(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ids := make([]ID, 10000)
	for i := range ids {
		ids[i] = Norm(rng.Float64())
	}
	SortIDs(ids)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Successor(ids, ids[i%len(ids)])
	}
}
