// Package ring implements the unit-interval identifier space used by the
// SELECT overlay and its baselines.
//
// Identifiers live on the circle [0,1): the successor of 0.999… wraps to 0.
// The package provides the ring distance metric d_I(u,v) from the paper
// (§II-A), directional (clockwise) distance for successor routing, midpoint
// and centroid computations that respect wraparound (needed by the identifier
// reassignment of Algorithm 2), and the uniform SHA-1 projection used for
// peers that join without an invitation (Algorithm 1, line 5).
package ring

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// ID is a position on the unit ring [0,1).
type ID float64

// Norm returns id normalized into [0,1). It tolerates any finite input,
// including negatives, by wrapping modulo 1.
func Norm(x float64) ID {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("ring: non-finite identifier %v", x))
	}
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	// math.Mod can return 1.0-ulp ~ fine; it never returns exactly 1 for
	// inputs < 2, but guard anyway so ID invariants hold.
	if x >= 1 {
		x = 0
	}
	return ID(x)
}

// Valid reports whether id lies in [0,1).
func (id ID) Valid() bool { return id >= 0 && id < 1 }

// Distance returns the ring distance between u and v: the length of the
// shorter arc, in [0, 0.5]. This is d_I(u,v) from the paper.
func Distance(u, v ID) float64 {
	d := math.Abs(float64(u) - float64(v))
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// Clockwise returns the clockwise (increasing-ID, wrapping) distance from u
// to v, in [0,1).
func Clockwise(u, v ID) float64 {
	d := float64(v) - float64(u)
	if d < 0 {
		d++
	}
	return d
}

// Between reports whether x lies on the clockwise arc from a (exclusive) to
// b (inclusive). When a == b the arc is the whole ring and Between is true
// for every x != a, matching successor semantics on a ring with one node.
func Between(a, x, b ID) bool {
	if a == b {
		return x != a
	}
	return Clockwise(a, x) > 0 && Clockwise(a, x) <= Clockwise(a, b)
}

// Midpoint returns the point halfway along the shorter arc between u and v.
// It is the position assigned by Algorithm 2 (identifier reassignment): the
// centroid of a peer's two strongest social friends. Ties (antipodal points)
// resolve to the clockwise side of u.
func Midpoint(u, v ID) ID {
	cw := Clockwise(u, v)
	if cw <= 0.5 {
		return Norm(float64(u) + cw/2)
	}
	ccw := 1 - cw
	return Norm(float64(u) - ccw/2)
}

// Centroid returns the circular mean of the given identifiers, i.e. the
// angle of the vector sum of the points mapped onto the unit circle. It is
// used by the "centroid of all friends" ablation from §III-C. Centroid of an
// empty set or of points whose vectors cancel returns ok=false.
func Centroid(ids []ID) (ID, bool) {
	if len(ids) == 0 {
		return 0, false
	}
	var sx, sy float64
	for _, id := range ids {
		a := 2 * math.Pi * float64(id)
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	const eps = 1e-12
	if sx*sx+sy*sy < eps {
		return 0, false
	}
	a := math.Atan2(sy, sx) / (2 * math.Pi)
	return Norm(a), true
}

// Hash maps an arbitrary byte string uniformly onto the ring using SHA-1,
// the uniform mapping function the paper assumes for peer identifiers
// (§II-A). The top 53 bits of the digest become the mantissa so the full
// float64 precision is used.
func Hash(b []byte) ID {
	sum := sha1.Sum(b)
	u := binary.BigEndian.Uint64(sum[:8]) >> 11 // 53 significant bits
	return ID(float64(u) / float64(1<<53))
}

// HashUint64 hashes a numeric key (e.g. a user index) onto the ring.
func HashUint64(k uint64) ID {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], k)
	return Hash(b[:])
}

// Perturb returns id displaced clockwise by delta (possibly negative),
// wrapped onto the ring. Used to place invited peers adjacent to their
// inviter (Algorithm 1, line 3) without colliding exactly.
func Perturb(id ID, delta float64) ID {
	return Norm(float64(id) + delta)
}

// SortIDs sorts ids in ascending ring order (plain numeric order on [0,1)).
func SortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Successor returns the index into sorted (ascending) ids of the first
// element strictly greater than id, wrapping to 0; i.e. the clockwise
// successor position. sorted must be non-empty.
func Successor(sorted []ID, id ID) int {
	if len(sorted) == 0 {
		panic("ring: Successor on empty slice")
	}
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > id })
	if i == len(sorted) {
		return 0
	}
	return i
}

// ArcLengths returns, for sorted ids, the clockwise gap following each
// element (the gap after the last wraps to the first). Useful for measuring
// identifier clustering (Fig. 8).
func ArcLengths(sorted []ID) []float64 {
	n := len(sorted)
	if n == 0 {
		return nil
	}
	gaps := make([]float64, n)
	for i := 0; i < n-1; i++ {
		gaps[i] = float64(sorted[i+1] - sorted[i])
	}
	gaps[n-1] = 1 - float64(sorted[n-1]) + float64(sorted[0])
	return gaps
}
