package ring_test

import (
	"fmt"

	"selectps/internal/ring"
)

// ExampleDistance shows the ring metric d_I(u,v): the shorter arc between
// two identifiers, wrapping around 1.0.
func ExampleDistance() {
	fmt.Printf("%.2f\n", ring.Distance(0.1, 0.3))
	fmt.Printf("%.2f\n", ring.Distance(0.9, 0.1)) // wraps: 0.2, not 0.8
	// Output:
	// 0.20
	// 0.20
}

// ExampleMidpoint shows Algorithm 2's target position: the midpoint of the
// two strongest friends, respecting wraparound.
func ExampleMidpoint() {
	fmt.Printf("%.2f\n", ring.Midpoint(0.2, 0.4))
	fmt.Printf("%.2f\n", ring.Midpoint(0.9, 0.1)) // midpoint across the wrap is 0.0
	// Output:
	// 0.30
	// 0.00
}
