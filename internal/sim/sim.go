// Package sim is the experiment engine: deterministic parallel trial
// execution (the stand-in for the paper's 20-node Flink cluster, see
// DESIGN.md §2) and the churn simulation of Fig. 6.
//
// Determinism: every trial derives its own rand.Rand from (baseSeed,
// trial index), so results are bit-identical regardless of how the worker
// pool schedules trials.
package sim

import (
	"runtime"
	"sync"

	"math/rand"

	"selectps/internal/churn"
	"selectps/internal/metrics"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/socialgraph"
)

// RunTrials executes fn for trial indexes [0,trials) across a worker pool.
// Each invocation receives a private deterministic rng. fn must not share
// mutable state between trials without its own synchronization.
func RunTrials(trials int, baseSeed int64, fn func(trial int, rng *rand.Rand)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				fn(t, rand.New(rand.NewSource(baseSeed+int64(t)*1_000_003)))
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
}

// MeanOverTrials runs fn in parallel trials and merges the per-trial
// accumulators into one.
func MeanOverTrials(trials int, baseSeed int64, fn func(trial int, rng *rand.Rand) metrics.Welford) metrics.Welford {
	partial := make([]metrics.Welford, trials)
	RunTrials(trials, baseSeed, func(t int, rng *rand.Rand) {
		partial[t] = fn(t, rng)
	})
	var total metrics.Welford
	for _, w := range partial {
		total.Merge(w)
	}
	return total
}

// ChurnConfig parameterizes the Fig. 6 experiment.
type ChurnConfig struct {
	// Steps is the number of simulation steps ("each second a random
	// number of peers depart or join").
	Steps int
	// Model is the churn process; zero value uses churn.DefaultModel().
	Model churn.Model
	// MeasureEvery is the step interval between availability measurements
	// (default 10).
	MeasureEvery int
	// PublishersPerMeasure is how many online publishers are sampled per
	// measurement (default 20).
	PublishersPerMeasure int
}

func (c *ChurnConfig) fill() {
	if c.Steps == 0 {
		c.Steps = 300
	}
	if (c.Model == churn.Model{}) {
		c.Model = churn.DefaultModel()
	}
	if c.MeasureEvery == 0 {
		c.MeasureEvery = 10
	}
	if c.PublishersPerMeasure == 0 {
		c.PublishersPerMeasure = 20
	}
}

// ChurnPoint is one measurement of the churn run.
type ChurnPoint struct {
	Step            int
	OfflineFraction float64
	// Availability is delivered/expected across the sampled publications
	// (1.0 = every online subscriber of every sampled publisher reached).
	Availability float64
}

// RunChurn drives the overlay through churn: each step peers depart/return
// per the model, the overlay's recovery runs, and availability is measured
// periodically by publishing from sampled online peers. The overlay is
// left with every peer online again when the run ends.
func RunChurn(o overlay.Overlay, g *socialgraph.Graph, cfg ChurnConfig, rng *rand.Rand) []ChurnPoint {
	cfg.fill()
	n := o.N()
	if n == 0 {
		return nil
	}
	state := churn.NewState(n, cfg.Model, rng)
	var points []ChurnPoint
	for step := 0; step < cfg.Steps; step++ {
		off, on := state.Step(step)
		for _, p := range off {
			o.SetOnline(p, false)
		}
		for _, p := range on {
			o.SetOnline(p, true)
		}
		if len(off)+len(on) > 0 {
			o.Repair()
		}
		if step%cfg.MeasureEvery != 0 {
			continue
		}
		wanted, delivered := 0, 0
		for i := 0; i < cfg.PublishersPerMeasure; i++ {
			b := socialgraph.NodeID(rng.Intn(n))
			if !o.Online(b) {
				continue
			}
			d := pubsub.Publish(o, g, b)
			wanted += d.Subscribers
			delivered += d.Delivered
		}
		avail := 1.0
		if wanted > 0 {
			avail = float64(delivered) / float64(wanted)
		}
		points = append(points, ChurnPoint{
			Step:            step,
			OfflineFraction: 1 - float64(state.OnlineCount())/float64(n),
			Availability:    avail,
		})
	}
	for p := 0; p < n; p++ {
		o.SetOnline(overlay.PeerID(p), true)
	}
	o.Repair()
	return points
}
