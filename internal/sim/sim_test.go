package sim

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/metrics"
	"selectps/internal/pubsub"
)

func TestRunTrialsRunsAll(t *testing.T) {
	var count int64
	seen := make([]int64, 50)
	RunTrials(50, 1, func(trial int, rng *rand.Rand) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[trial], 1)
	})
	if count != 50 {
		t.Fatalf("ran %d trials, want 50", count)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("trial %d ran %d times", i, s)
		}
	}
}

func TestRunTrialsDeterministicRngs(t *testing.T) {
	a := make([]float64, 8)
	b := make([]float64, 8)
	RunTrials(8, 42, func(trial int, rng *rand.Rand) { a[trial] = rng.Float64() })
	RunTrials(8, 42, func(trial int, rng *rand.Rand) { b[trial] = rng.Float64() })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d rng differs across runs", i)
		}
	}
	// Different trials should get different streams.
	if a[0] == a[1] && a[1] == a[2] {
		t.Error("trial rngs suspiciously identical")
	}
}

func TestRunTrialsZero(t *testing.T) {
	ran := false
	RunTrials(0, 1, func(int, *rand.Rand) { ran = true })
	if ran {
		t.Error("zero trials ran something")
	}
}

func TestMeanOverTrials(t *testing.T) {
	got := MeanOverTrials(10, 3, func(trial int, rng *rand.Rand) metrics.Welford {
		var w metrics.Welford
		w.Add(float64(trial))
		return w
	})
	if got.N() != 10 {
		t.Fatalf("N = %d", got.N())
	}
	if got.Mean() != 4.5 {
		t.Fatalf("Mean = %v, want 4.5", got.Mean())
	}
}

func TestRunChurnSelectAvailability(t *testing.T) {
	g := datasets.Facebook.Generate(300, 1)
	o, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	points := RunChurn(o, g, ChurnConfig{Steps: 120}, rand.New(rand.NewSource(3)))
	if len(points) == 0 {
		t.Fatal("no measurements")
	}
	sawChurn := false
	for _, p := range points {
		if p.OfflineFraction > 0.51 {
			t.Errorf("step %d: offline fraction %.2f exceeds the half floor", p.Step, p.OfflineFraction)
		}
		if p.OfflineFraction > 0.05 {
			sawChurn = true
		}
		if p.Availability < 0.999 {
			t.Errorf("step %d: availability %.4f < 100%% for SELECT", p.Step, p.Availability)
		}
	}
	if !sawChurn {
		t.Error("churn never materialized in the run")
	}
	// Everyone must be back online afterwards.
	for p := int32(0); p < 300; p++ {
		if !o.Online(p) {
			t.Fatalf("peer %d left offline after run", p)
		}
	}
}

func TestRunChurnEmptyOverlay(t *testing.T) {
	g := datasets.Facebook.Generate(0, 4)
	o, err := pubsub.Build(pubsub.Symphony, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if pts := RunChurn(o, g, ChurnConfig{Steps: 10}, rand.New(rand.NewSource(6))); pts != nil {
		t.Errorf("expected no points for empty overlay, got %d", len(pts))
	}
}
