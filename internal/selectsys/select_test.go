package selectsys

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/socialgraph"
)

func build(t *testing.T, n int, seed int64) (*socialgraph.Graph, *Overlay) {
	t.Helper()
	g := datasets.Facebook.Generate(n, seed)
	o := New(g, Config{}, rand.New(rand.NewSource(seed)))
	return g, o
}

func TestConstructionBasics(t *testing.T) {
	g, o := build(t, 300, 1)
	if o.Name() != "select" || o.N() != 300 {
		t.Fatal("metadata wrong")
	}
	if o.Iterations() < 1 {
		t.Errorf("Iterations = %d", o.Iterations())
	}
	if o.K() < 2 {
		t.Errorf("K = %d", o.K())
	}
	if o.Graph() != g {
		t.Error("Graph accessor broken")
	}
	for p := overlay.PeerID(0); p < 300; p++ {
		if !o.Position(p).Valid() {
			t.Fatalf("peer %d invalid position", p)
		}
		if len(o.LongLinks(p)) > o.K() {
			t.Errorf("peer %d has %d long links > K=%d", p, len(o.LongLinks(p)), o.K())
		}
	}
}

func TestLongLinksAreFriends(t *testing.T) {
	g, o := build(t, 300, 2)
	for p := overlay.PeerID(0); p < 300; p++ {
		for _, q := range o.LongLinks(p) {
			if !g.HasEdge(p, q) {
				t.Fatalf("long link %d->%d is not a social edge", p, q)
			}
		}
	}
}

func TestIncomingCapRespected(t *testing.T) {
	_, o := build(t, 400, 3)
	incoming := make([]int, 400)
	for p := overlay.PeerID(0); p < 400; p++ {
		for _, q := range o.LongLinks(p) {
			incoming[q]++
		}
	}
	for u, c := range incoming {
		if c > o.K() {
			t.Errorf("peer %d has %d incoming long links > K=%d", u, c, o.K())
		}
	}
}

func TestSociallyConnectedPeersCluster(t *testing.T) {
	// After reassignment, the ring distance between friends should be far
	// below the 0.25 expectation for uniform random placement.
	g, o := build(t, 400, 4)
	rng := rand.New(rand.NewSource(5))
	var friendDist, randomDist float64
	const trials = 300
	for i := 0; i < trials; i++ {
		u, v, _ := g.RandomEdge(rng)
		friendDist += ring.Distance(o.Position(u), o.Position(v))
		a := overlay.PeerID(rng.Intn(400))
		b := overlay.PeerID(rng.Intn(400))
		randomDist += ring.Distance(o.Position(a), o.Position(b))
	}
	friendDist /= trials
	randomDist /= trials
	// Cross-community friendships keep the average up; what matters is the
	// clear separation from the random-pair baseline (~0.25).
	if friendDist > 0.65*randomDist {
		t.Errorf("avg friend ring distance %.3f not well below random %.3f",
			friendDist, randomDist)
	}
}

func TestReassignmentAblationKeepsUniform(t *testing.T) {
	g := datasets.Facebook.Generate(400, 6)
	o := New(g, Config{DisableReassignment: true}, rand.New(rand.NewSource(6)))
	rng := rand.New(rand.NewSource(7))
	var friendDist float64
	const trials = 300
	for i := 0; i < trials; i++ {
		u, v, _ := g.RandomEdge(rng)
		friendDist += ring.Distance(o.Position(u), o.Position(v))
	}
	friendDist /= trials
	// Projection places invited users near their inviters, so distances
	// are below uniform (0.25) even without reassignment — but the full
	// algorithm must do clearly better.
	full := New(g, Config{}, rand.New(rand.NewSource(6)))
	var fullDist float64
	rng = rand.New(rand.NewSource(7))
	for i := 0; i < trials; i++ {
		u, v, _ := g.RandomEdge(rng)
		fullDist += ring.Distance(full.Position(u), full.Position(v))
	}
	fullDist /= trials
	if fullDist >= friendDist {
		t.Errorf("reassignment did not tighten clusters: full=%.3f frozen=%.3f",
			fullDist, friendDist)
	}
}

func TestRouteSocialPairsShort(t *testing.T) {
	// K = 14 mirrors the paper's K = log2(N) at its real data-set scales
	// relative to the ~25 average degree (Facebook 63k: K=16).
	g := datasets.Facebook.Generate(400, 8)
	o := New(g, Config{K: 14}, rand.New(rand.NewSource(8)))
	rng := rand.New(rand.NewSource(9))
	const trials = 300
	totalHops, twoHop := 0, 0
	for i := 0; i < trials; i++ {
		u, v, _ := g.RandomEdge(rng)
		path, ok := o.Route(u, v)
		if !ok {
			t.Fatalf("route %d->%d failed", u, v)
		}
		totalHops += path.Hops()
		if path.Hops() <= 2 {
			twoHop++
		}
	}
	avg := float64(totalHops) / trials
	if avg > 3 {
		t.Errorf("avg hops between friends = %.2f, want <= 3", avg)
	}
	if float64(twoHop)/trials < 0.55 {
		t.Errorf("only %d/%d social lookups within 2 hops", twoHop, trials)
	}
}

func TestRouteArbitraryPairs(t *testing.T) {
	_, o := build(t, 300, 10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		src := overlay.PeerID(rng.Intn(300))
		dst := overlay.PeerID(rng.Intn(300))
		path, ok := o.Route(src, dst)
		if !ok {
			t.Fatalf("route %d->%d failed", src, dst)
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("bad endpoints %v", path)
		}
	}
}

func TestDisseminationFewRelays(t *testing.T) {
	g := datasets.Facebook.Generate(400, 12)
	o := New(g, Config{K: 14}, rand.New(rand.NewSource(12)))
	rng := rand.New(rand.NewSource(13))
	totalRelays, trials := 0, 0
	for i := 0; i < 60; i++ {
		pub := overlay.PeerID(rng.Intn(400))
		subs := g.Neighbors(pub)
		if len(subs) == 0 {
			continue
		}
		tree, failed := o.DisseminationTree(pub, subs)
		if len(failed) > 0 {
			t.Fatalf("publisher %d failed subscribers %v", pub, failed)
		}
		for _, s := range subs {
			if !tree.Contains(s) {
				t.Fatalf("subscriber %d missing from tree", s)
			}
		}
		isSub := func(p overlay.PeerID) bool { return g.HasEdge(pub, p) }
		totalRelays += tree.RelayNodes(isSub)
		trials++
	}
	if trials == 0 {
		t.Fatal("no trials")
	}
	if avg := float64(totalRelays) / float64(trials); avg > 4 {
		t.Errorf("avg relay nodes = %.2f, want near zero for SELECT", avg)
	}
}

func TestConvergenceFasterThanMaxRounds(t *testing.T) {
	_, o := build(t, 400, 14)
	if o.Iterations() >= 60 {
		t.Errorf("SELECT used %d rounds; expected quick convergence", o.Iterations())
	}
}

func TestDeterminism(t *testing.T) {
	g := datasets.Slashdot.Generate(200, 15)
	a := New(g, Config{}, rand.New(rand.NewSource(16)))
	b := New(g, Config{}, rand.New(rand.NewSource(16)))
	if a.Iterations() != b.Iterations() {
		t.Fatalf("iterations differ: %d vs %d", a.Iterations(), b.Iterations())
	}
	for p := overlay.PeerID(0); p < 200; p++ {
		if a.Position(p) != b.Position(p) {
			t.Fatalf("positions differ at peer %d", p)
		}
		la, lb := a.LongLinks(p), b.LongLinks(p)
		if len(la) != len(lb) {
			t.Fatalf("long links differ at peer %d", p)
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	g := socialgraph.NewBuilder(0).Build()
	o := New(g, Config{}, rand.New(rand.NewSource(1)))
	if o.N() != 0 {
		t.Error("empty overlay wrong")
	}
	g1 := socialgraph.NewBuilder(1).Build()
	o1 := New(g1, Config{}, rand.New(rand.NewSource(1)))
	if o1.N() != 1 {
		t.Error("singleton overlay wrong")
	}
	if _, ok := o1.Route(0, 0); !ok {
		t.Error("self route failed")
	}
	b := socialgraph.NewBuilder(2)
	b.AddEdge(0, 1)
	g2 := b.Build()
	o2 := New(g2, Config{}, rand.New(rand.NewSource(1)))
	if path, ok := o2.Route(0, 1); !ok || path.Hops() != 1 {
		t.Errorf("pair route = %v, %v", path, ok)
	}
}

func TestIsolatedUsers(t *testing.T) {
	// A graph with isolated nodes: they stay at their hash position with
	// ring links only, and routing to them still works.
	b := socialgraph.NewBuilder(10)
	for i := int32(0); i < 8; i++ {
		b.AddEdge(i, (i+1)%8)
	}
	g := b.Build() // nodes 8, 9 isolated
	o := New(g, Config{K: 3}, rand.New(rand.NewSource(2)))
	if path, ok := o.Route(0, 9); !ok {
		t.Error("route to isolated peer failed")
	} else if path[len(path)-1] != 9 {
		t.Error("wrong terminal")
	}
	if len(o.LongLinks(8)) != 0 {
		t.Error("isolated peer has long links")
	}
}
