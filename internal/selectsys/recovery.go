package selectsys

import (
	"slices"
	"sort"

	"selectps/internal/overlay"
	"selectps/internal/selectcore"
)

// Repair is SELECT's recovery mechanism (§III-F). Each online peer probes
// its routing-table entries and folds the observation into the per-peer
// Cumulative Moving Average. An unresponsive long-range link is kept when
// the peer's availability history is good (a temporal failure: replacing
// it would set off a chain of connection reassignments), and replaced with
// another peer from the same LSH bucket when the history says the peer is
// mostly offline. Short-range ring links are always patched to the nearest
// online successor/predecessor so greedy routing keeps making progress —
// this is what sustains the paper's 100% communication availability in
// Fig. 6.
func (o *Overlay) Repair() {
	n := o.N()
	if n == 0 {
		return
	}
	// The keep-vs-replace verdict is the shared accrual rule
	// (selectcore.FailureDetector), parameterized by this overlay's
	// CMAThreshold: one probe sample suffices (MinSamples 1), and an
	// unresponsive link with availability below the threshold is replaced —
	// exactly the live runtime's early-dead rule, fed by simulator state.
	det := selectcore.FailureDetector{DeadCMA: o.cfg.CMAThreshold, MinSamples: 1}
	// Probe phase (Algorithms 3–4 heartbeat): every online peer observes
	// the liveness of its long-range links.
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !o.Online(pid) {
			continue
		}
		for _, q := range o.longLinks[p] {
			o.tracker.Observe(q, o.Online(q))
		}
	}
	// Replacement phase.
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !o.Online(pid) {
			continue
		}
		for _, q := range append([]overlay.PeerID(nil), o.longLinks[p]...) {
			if o.Online(q) {
				continue
			}
			if !o.cfg.NaiveRecovery && det.KeepOnFailure(o.tracker.Samples(q), o.tracker.Value(q)) {
				// Good history: temporal failure, keep the connection.
				continue
			}
			o.dropLong(pid, q)
			if alt, ok := o.bucketAlternative(pid, q); ok {
				o.establish(pid, alt)
			}
		}
	}
	o.patchRing()
	o.syncBaseLinks()
}

// bucketAlternative finds an online replacement for the dead link p→q from
// the same LSH bucket q occupies in p's index (§III-F), chosen by the
// Algorithm 6 picker. ok=false when the bucket holds no online candidate.
func (o *Overlay) bucketAlternative(p, dead overlay.PeerID) (overlay.PeerID, bool) {
	friends := o.g.Neighbors(p)
	if len(friends) == 0 {
		return -1, false
	}
	deadIdx, ok := slices.BinarySearch(friends, dead)
	if !ok {
		return -1, false
	}
	o.indexFriends(p, friends)
	sc := &o.scratch
	var candidates []int32
	for _, bucket := range sc.idx.Buckets {
		if !slices.Contains(bucket, int32(deadIdx)) {
			continue
		}
		for _, i := range bucket {
			u := friends[i]
			if u != dead && u != p && o.Online(u) && !o.hasLong(p, u) {
				candidates = append(candidates, i)
			}
		}
		break
	}
	if len(candidates) == 0 {
		return -1, false
	}
	return friends[o.pickIdx(candidates, friends)], true
}

// patchRing points every online peer's short-range links at its nearest
// online ring neighbors.
func (o *Overlay) patchRing() {
	n := o.N()
	var online []overlay.PeerID
	for p := 0; p < n; p++ {
		if o.Online(overlay.PeerID(p)) {
			online = append(online, overlay.PeerID(p))
		}
	}
	if len(online) < 2 {
		return
	}
	// Sort online peers by position (ties by id), then link successively.
	sort.Slice(online, func(i, j int) bool {
		pi, pj := o.Position(online[i]), o.Position(online[j])
		if pi != pj {
			return pi < pj
		}
		return online[i] < online[j]
	})
	m := len(online)
	if o.shortLinks == nil {
		o.shortLinks = make([][2]overlay.PeerID, n)
	}
	for i, p := range online {
		succ := online[(i+1)%m]
		pred := online[(i-1+m)%m]
		o.shortLinks[p] = [2]overlay.PeerID{succ, pred}
	}
}
