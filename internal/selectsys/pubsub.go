package selectsys

import (
	"selectps/internal/overlay"
	"selectps/internal/ring"
)

// Route implements §III-E forwarding: deliver within 1 hop when the
// destination is in the routing table R_p, within 2 hops when it appears
// in the lookahead set L_p (a neighbor's routing table, as in Symphony's
// lookahead), and otherwise forward greedily to the link minimizing the
// ring distance to the destination.
func (o *Overlay) Route(src, dst overlay.PeerID) (overlay.Path, bool) {
	if src == dst {
		return overlay.Path{src}, true
	}
	if !o.Online(dst) {
		return overlay.GreedyRoute(o, src, dst)
	}
	path := overlay.Path{src}
	cur := src
	for hops := 0; hops < overlay.MaxRouteHops; hops++ {
		if cur == dst {
			return path, true
		}
		next, ok := o.forwardChoice(cur, dst)
		if !ok {
			return path, false
		}
		path = append(path, next...)
		cur = path[len(path)-1]
	}
	return path, false
}

// forwardChoice returns the next one or two hops from cur toward dst.
func (o *Overlay) forwardChoice(cur, dst overlay.PeerID) ([]overlay.PeerID, bool) {
	// 1 hop: dst in routing table.
	for _, q := range o.Links(cur) {
		if q == dst {
			return []overlay.PeerID{dst}, true
		}
	}
	// 2 hops: dst in the lookahead set (links of an online neighbor).
	if !o.cfg.DisableLookahead {
		for _, q := range o.Links(cur) {
			if !o.Online(q) {
				continue
			}
			for _, r := range o.Links(q) {
				if r == dst {
					return []overlay.PeerID{q, dst}, true
				}
			}
		}
	}
	// Greedy: the online link closest to dst's identifier, only if it makes
	// progress.
	dstPos := o.Position(dst)
	best := overlay.PeerID(-1)
	bestD := ring.Distance(o.Position(cur), dstPos)
	for _, q := range o.Links(cur) {
		if !o.Online(q) {
			continue
		}
		if d := ring.Distance(o.Position(q), dstPos); d < bestD {
			best, bestD = q, d
		}
	}
	if best < 0 {
		return nil, false
	}
	return []overlay.PeerID{best}, true
}

// DisseminationTree implements overlay.Disseminator: the routing tree RT_b
// of §III-E. Subscribers directly linked to the publisher are delivered in
// one hop; subscribers found in the lookahead set of a tree member are
// delivered through that member (2 hops); the remainder is reached by
// SELECT routing, merged into the tree.
func (o *Overlay) DisseminationTree(publisher overlay.PeerID, subs []overlay.PeerID) (*overlay.Tree, []overlay.PeerID) {
	t := overlay.NewTree(publisher)
	var pending []overlay.PeerID

	// Pass 1: direct links of the publisher.
	direct := make(map[overlay.PeerID]bool, len(o.Links(publisher)))
	for _, q := range o.Links(publisher) {
		if o.Online(q) {
			direct[q] = true
		}
	}
	for _, s := range subs {
		if s == publisher || t.Contains(s) {
			continue
		}
		if direct[s] {
			t.AddPath(overlay.Path{publisher, s})
		} else {
			pending = append(pending, s)
		}
	}

	// Pass 2: lookahead through peers already in the tree (preferring
	// subscriber forwarders keeps relays at zero).
	if len(pending) > 0 && !o.cfg.DisableLookahead {
		still := pending[:0]
		members := t.Nodes()
		for _, s := range pending {
			found := false
			for _, m := range members {
				if m == s || !o.Online(m) {
					continue
				}
				for _, r := range o.Links(m) {
					if r == s {
						t.AddPath(overlay.Path{m, s})
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found {
				still = append(still, s)
			} else {
				members = append(members, s)
			}
		}
		pending = still
	}

	// Pass 3: SELECT routing for the leftovers, starting from the tree
	// member nearest the subscriber in the ID space — socially clustered
	// identifiers make that member land in the subscriber's region, so the
	// grafted path stays short and adds few relays. Each grafted path adds
	// members whose routing tables may now cover later leftovers within a
	// hop, so the lookahead check is retried first.
	var failed []overlay.PeerID
	for _, s := range pending {
		if t.Contains(s) {
			continue // covered by a previously grafted path
		}
		if !o.cfg.DisableLookahead {
			if m, ok := o.lookaheadForwarder(t, s); ok {
				t.AddPath(overlay.Path{m, s})
				continue
			}
		}
		from := publisher
		bestD := ring.Distance(o.Position(publisher), o.Position(s))
		for _, m := range t.Nodes() {
			if !o.Online(m) {
				continue
			}
			if d := ring.Distance(o.Position(m), o.Position(s)); d < bestD {
				from, bestD = m, d
			}
		}
		path, ok := o.Route(from, s)
		if !ok {
			failed = append(failed, s)
			continue
		}
		t.AddPath(path)
	}
	return t, failed
}

// lookaheadForwarder returns an online tree member whose routing table
// already contains s (delivery in one more hop), if any.
func (o *Overlay) lookaheadForwarder(t *overlay.Tree, s overlay.PeerID) (overlay.PeerID, bool) {
	for _, m := range t.Nodes() {
		if m == s || !o.Online(m) {
			continue
		}
		for _, r := range o.Links(m) {
			if r == s {
				return m, true
			}
		}
	}
	return -1, false
}
