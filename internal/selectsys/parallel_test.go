package selectsys

// Determinism of the intra-trial parallelism: the LPA superstep, the
// strength-cache pass and the kernel-index build are sharded across
// par workers, and the sharding contract (contiguous spans, per-index
// writes, shard-ordered merges) promises bit-identical output for any
// worker count. These tests construct the same seeded overlay under
// worker counts 1, 2 and 8 — run under -race they also certify the
// shards never touch shared state.

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/par"
)

// buildWithWorkers constructs a fresh overlay (own graph instance, so the
// kernel-index build is also exercised at this worker count) from fixed
// seeds.
func buildWithWorkers(workers int) *Overlay {
	par.SetWorkers(workers)
	g := datasets.Facebook.Generate(600, 21)
	return New(g, Config{}, rand.New(rand.NewSource(22)))
}

func TestParallelSuperstepDeterminism(t *testing.T) {
	defer par.SetWorkers(0)
	seq := buildWithWorkers(1)
	for _, workers := range []int{2, 8} {
		par2 := buildWithWorkers(workers)
		if seq.Iterations() != par2.Iterations() {
			t.Fatalf("workers=%d: iterations %d != sequential %d",
				workers, par2.Iterations(), seq.Iterations())
		}
		for p := 0; p < seq.N(); p++ {
			pid := overlay.PeerID(p)
			if seq.Position(pid) != par2.Position(pid) {
				t.Fatalf("workers=%d: position of peer %d differs: %v != %v",
					workers, p, par2.Position(pid), seq.Position(pid))
			}
			a, b := seq.LongLinks(pid), par2.LongLinks(pid)
			if len(a) != len(b) {
				t.Fatalf("workers=%d: peer %d long-link count %d != %d",
					workers, p, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: peer %d long links differ: %v != %v",
						workers, p, b, a)
				}
			}
		}
	}
}

// TestStrengthCacheParallelDeterminism pins the precomputation pass alone:
// the cached tie rows must be bit-identical (float equality, not epsilon)
// across worker counts.
func TestStrengthCacheParallelDeterminism(t *testing.T) {
	defer par.SetWorkers(0)
	seq := buildWithWorkers(1)
	par8 := buildWithWorkers(8)
	for p := 0; p < seq.N(); p++ {
		pid := overlay.PeerID(p)
		a, b := seq.tieRow(pid), par8.tieRow(pid)
		if len(a) != len(b) {
			t.Fatalf("peer %d: tie row length %d != %d", p, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("peer %d: tie[%d] = %v (parallel) != %v (sequential)",
					p, i, b[i], a[i])
			}
		}
	}
}
