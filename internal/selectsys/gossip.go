package selectsys

import (
	"sort"

	"selectps/internal/overlay"
	"selectps/internal/par"
	"selectps/internal/ring"
	"selectps/internal/selectcore"
)

// runGossip executes the construction gossip (the vertex-centric model of
// §IV): the identifier-reassignment rounds of Algorithms 2–4 followed by
// connection-establishment rounds of Algorithm 5, until both stabilize.
// Iterations() reports the total, the Fig. 5 metric.
//
// The peer-sampling exchange of Algorithms 3–4 is what, in a deployment,
// delivers the neighbor sets and bitmaps each peer needs; the simulator
// grants direct read access to the same information, which equals the
// gossip's converged knowledge.
func (o *Overlay) runGossip() {
	n := o.N()
	if n == 0 {
		return
	}
	// Phase 1: identifier reassignment (region formation + placement).
	if !o.cfg.DisableReassignment {
		o.iterations = o.reassignPositions()
	}
	o.rewireRing()
	// Phase 2: connection establishment rounds until the link sets
	// stabilize. The 1% slack absorbs boundary peers whose bucket picks
	// flip between equivalent representatives, and the plateau check stops
	// the phase when changes stop shrinking (a handful of peers can trade
	// equivalent links indefinitely as their friends' bitmaps co-evolve).
	threshold := n / 50
	if threshold < 1 {
		threshold = 1
	}
	minChanged, sinceMin := n+1, 0
	for round := 1; round <= o.cfg.MaxRounds; round++ {
		linkChanged := 0
		for p := 0; p < n; p++ {
			// Parity alternation: peers refresh their links every other
			// round, breaking the two-peer drop/refill cycles that mutual
			// coverage decisions can otherwise sustain indefinitely.
			if (p+round)%2 != 0 {
				continue
			}
			if o.createLinks(overlay.PeerID(p)) {
				linkChanged++
			}
		}
		if gossipDebug {
			debugLog.Printf("link round %d changed %d", round, linkChanged)
		}
		o.iterations++
		if linkChanged <= threshold {
			break
		}
		// Plateau: once the change count stops reaching new lows the
		// remaining churn is a standing oscillation, not progress.
		if linkChanged < minChanged {
			minChanged, sinceMin = linkChanged, 0
		} else {
			sinceMin++
			if sinceMin >= 2 {
				break
			}
		}
	}
	o.syncBaseLinks()
}

// The identifier-reassignment phase. Algorithm 2's geometric intent —
// every peer relocates toward its strongest social ties until socially
// connected peers share a ring region — is realized in two steps that a
// gossiping peer can perform with exactly the information Algorithms 3–4
// exchange:
//
//  1. Region formation: each peer repeatedly adopts the region label that
//     its friends support most strongly, weighting each friend's vote by
//     tie strength (strength-weighted label propagation). This is the
//     gossip analogue of "move to the midpoint of your two strongest
//     friends": a peer ends up in the region where its strong ties are.
//     Running the literal synchronized midpoint dynamics instead
//     contracts the entire connected graph onto one ring position and
//     destroys the ID space — label propagation reaches the same social
//     co-location without the collapse.
//  2. Placement: regions receive disjoint ring arcs proportional to their
//     population (ordered by region hash, so placement is uniform and
//     deterministic), and members spread evenly inside their arc. The
//     ring stays fully covered, identifiers stay unique, and communities
//     become the compact contiguous groups of Fig. 8.
//
// Each superstep reads only the previous round's labels, so the peer loop
// is sharded across par workers: every peer's decision is a pure function
// of (labels, tie cache, round parity), each worker owns a contiguous
// span of peers with private vote-tally scratch, and the per-shard change
// counts are summed in shard order — bit-identical to the sequential pass
// for any worker count (parallel_test.go asserts this under -race).
//
// reassignPositions returns the number of label-propagation rounds used.
func (o *Overlay) reassignPositions() int {
	n := o.N()
	if n == 0 {
		return 0
	}
	labels := make([]int32, n)
	for p := range labels {
		labels[p] = int32(p)
	}
	maxRounds := o.cfg.MaxRounds / 2
	if maxRounds < 1 {
		maxRounds = 1
	}
	rounds := 0
	// A handful of boundary peers can keep flipping between equally
	// supported regions; they do not change the macro structure, so the
	// phase stops once changes fall under 2%.
	stopAt := n / 50
	next := make([]int32, n)
	// Per-shard vote-tally scratch. Labels are always existing peer ids —
	// a peer only ever adopts a label already carried by a friend — so
	// they stay dense in [0,n) and a flat slice replaces the old
	// map[int32]float64: O(1) unhashed accumulation, cleared via the
	// touched-label list (every vote weight is strictly positive, so
	// tally[l] == 0 marks an untouched label).
	shards := par.Shards(n)
	tallies := make([][]float64, shards)
	touchedBy := make([][]int32, shards)
	changedBy := make([]int, shards)
	for r := 0; r < maxRounds; r++ {
		rounds++
		// Synchronous superstep: decisions read the previous round's labels
		// only — sequential in-place updates would let one label telescope
		// through the whole graph in a single pass. A peer switches only
		// when the challenger's support strictly exceeds its current
		// label's support (hysteresis against oscillation).
		round := r
		clear(changedBy)
		par.For(n, func(shard, lo, hi int) {
			if tallies[shard] == nil {
				tallies[shard] = make([]float64, n)
			}
			tally, touched := tallies[shard], touchedBy[shard][:0]
			changed := 0
			for p := lo; p < hi; p++ {
				pid := overlay.PeerID(p)
				next[p] = labels[p]
				// Parity alternation: only half the peers may switch per
				// round, which breaks the two-cycles synchronous label
				// propagation is prone to (pairs of peers swapping labels
				// forever).
				if (p+round)%2 != 0 {
					continue
				}
				friends := o.g.Neighbors(pid)
				if len(friends) == 0 {
					continue
				}
				touched = touched[:0]
				row := o.tie[p]
				for i, f := range friends {
					w := row[i]
					if o.cfg.CentroidAllFriends {
						// Ablation (§III-C): all friends pull equally, the
						// "centroid of all friends" policy. High-degree hubs
						// then drag unrelated users into one region.
						w = 1
					}
					l := labels[f]
					if tally[l] == 0 {
						touched = append(touched, l)
					}
					tally[l] += w
				}
				cur := tally[labels[p]]
				best, bestW := labels[p], cur
				for _, l := range touched {
					w := tally[l]
					if w > bestW && w > cur {
						best, bestW = l, w
					} else if w == bestW && w > cur && l < best {
						best = l
					}
				}
				for _, l := range touched {
					tally[l] = 0
				}
				if best != labels[p] {
					next[p] = best
					changed++
				}
			}
			touchedBy[shard], changedBy[shard] = touched, changed
		})
		changed := 0
		for _, c := range changedBy {
			changed += c
		}
		labels, next = next, labels
		if changed <= stopAt {
			break
		}
		if gossipDebug {
			distinct := make(map[int32]int)
			for _, l := range labels {
				distinct[l]++
			}
			max := 0
			for _, c := range distinct {
				if c > max {
					max = c
				}
			}
			debugLog.Printf("lpa round %d changed %d labels %d maxsize %d",
				r+1, changed, len(distinct), max)
		}
	}
	o.placeByRegions(labels)
	return rounds
}

// placeByRegions assigns each region a ring arc proportional to its
// population and spreads members evenly inside it. Region labels are
// renumbered densely in first-seen order so membership lives in flat
// slices; arcs are still ordered by the hash of the *original* label,
// keeping placement uniform and independent of the renumbering.
func (o *Overlay) placeByRegions(labels []int32) {
	n := o.N()
	denseOf := make([]int32, n)
	for i := range denseOf {
		denseOf[i] = -1
	}
	var regionLabel []int32 // dense id -> original label
	var members [][]overlay.PeerID
	for p := 0; p < n; p++ {
		l := labels[p]
		d := denseOf[l]
		if d < 0 {
			d = int32(len(members))
			denseOf[l] = d
			regionLabel = append(regionLabel, l)
			members = append(members, nil)
		}
		members[d] = append(members[d], overlay.PeerID(p))
	}
	order := make([]int32, len(members))
	hash := make([]ring.ID, len(members))
	for d := range members {
		order[d] = int32(d)
		hash[d] = ring.HashUint64(uint64(uint32(regionLabel[d])))
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := order[i], order[j]
		if hash[di] != hash[dj] {
			return hash[di] < hash[dj]
		}
		return regionLabel[di] < regionLabel[dj]
	})
	var start float64
	for _, d := range order {
		ms := members[d]
		width := float64(len(ms)) / float64(n)
		for i, p := range ms {
			// Even spread with a deterministic sub-slot jitter keeps
			// identifiers unique and ordering stable.
			frac := (float64(i) + 0.5) / float64(len(ms))
			o.SetPosition(p, ring.Norm(start+width*frac))
		}
		start += width
	}
}

// topTieFriends returns p's two friends with the strongest symmetric ties
// (used by the Algorithm-2 anchor choice and by tests) — the shared
// selectcore.Top2 over the cached strength row.
func (o *Overlay) topTieFriends(p overlay.PeerID) (best, second overlay.PeerID) {
	return selectcore.Top2(o.g.Neighbors(p), o.tie[p])
}

// rewireRing refreshes the two short-range links R_p^s (successor and
// predecessor in the current identifier order).
func (o *Overlay) rewireRing() {
	n := o.N()
	if n < 2 {
		return
	}
	order := o.SortedByPosition()
	if o.shortLinks == nil {
		o.shortLinks = make([][2]overlay.PeerID, n)
	}
	for i, p := range order {
		succ := order[(i+1)%n]
		pred := order[(i-1+n)%n]
		o.shortLinks[p] = [2]overlay.PeerID{succ, pred}
	}
}

// syncBaseLinks publishes shortLinks + longLinks + incoming long links
// into the generic link sets used by routing and the experiments. The
// routing view is symmetric: connections are reliable TCP channels
// (§III-A) and carry messages in both directions, so a peer forwards over
// links it initiated and links initiated toward it; the K-incoming cap
// governs connection acceptance, not traffic direction.
func (o *Overlay) syncBaseLinks() {
	n := o.N()
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		o.SetLinks(pid, nil)
		if o.shortLinks != nil {
			for _, q := range o.shortLinks[p] {
				if q != pid {
					o.AddLink(pid, q)
				}
			}
		}
		for _, q := range o.longLinks[p] {
			o.AddLink(pid, q)
		}
		for _, q := range o.incomingFrom[p] {
			o.AddLink(pid, q)
		}
	}
}

// linkScratch is the reusable working set of the Algorithm-5 LSH pass.
// One gossip round used to allocate a fresh bitmap per (peer, friend),
// a hash table and two maps per peer; the scratch turns that into zero
// steady-state allocations. The gossip mutates one overlay from one
// goroutine, so a single scratch per overlay suffices. The bucket index
// itself is the shared selectcore.Indexer, so the live runtime hashes
// friendship bitmaps with exactly this code.
type linkScratch struct {
	idx    selectcore.Indexer
	coords []int   // bitmap coordinate scratch per friend
	linked []int32 // bucket members already long-linked
	pick   []int32 // picker sort scratch
	uncov  []int32 // friends not covered by any current link
	pos    []int32 // pos[q]: 1+index of q in C_p, 0 when q ∉ C_p
}

// indexFriends rebuilds p's Algorithm-5 LSH view into the scratch: each
// friend's friendship bitmap (Algorithm 4, constructFriendshipBitmap —
// bit j set when the friend long-links the j-th member of C_p) is hashed
// to one of the K buckets, and its popcount recorded as the friend's
// connection count. A friend's own bitmap coordinate is just its index in
// the sorted C_p (the self bit: without it every first-round bitmap is
// all-zero and the whole neighborhood hashes into one bucket); long-link
// coordinates resolve through sc.pos, an n-sized index filled with C_p on
// entry and zeroed again on exit — 2|C_p| writes in place of one binary
// search per long link, which was the single hottest operation of the
// construction profile.
func (o *Overlay) indexFriends(p overlay.PeerID, friends []overlay.PeerID) {
	sc := &o.scratch
	if len(sc.pos) < o.N() {
		sc.pos = make([]int32, o.N())
	}
	for i, f := range friends {
		sc.pos[f] = int32(i + 1)
	}
	defer func() {
		for _, f := range friends {
			sc.pos[f] = 0
		}
	}()
	sc.idx.Begin(o.hashers[p], len(friends))
	for i, u := range friends {
		coords := append(sc.coords[:0], i) // self bit
		for _, l := range o.longLinks[u] {
			if j := int(sc.pos[l]) - 1; j >= 0 {
				coords = append(coords, j)
			}
		}
		sc.idx.Add(int32(i), coords)
		sc.coords = coords[:0]
	}
}

// createLinks is Algorithm 5: index the friends' bitmaps into the K LSH
// buckets, keep one picker-chosen representative per bucket as a long-range
// link, and drop redundant links to other peers of the same bucket. It
// reports whether p's long-link set changed.
func (o *Overlay) createLinks(p overlay.PeerID) bool {
	friends := o.g.Neighbors(p)
	if len(friends) == 0 {
		return false
	}
	if o.cfg.RandomLinks {
		return o.createRandomLinks(p, friends)
	}
	o.indexFriends(p, friends)
	sc := &o.scratch
	changed := false
	for b := range sc.idx.Buckets {
		bucket := sc.idx.Buckets[b]
		if len(bucket) == 0 {
			continue
		}
		// Hysteresis: when the bucket already holds linked peers, keep the
		// picker-best among them instead of re-picking from scratch — the
		// paper's recovery rationale ("not create a chain of connections
		// reassignment", §III-F) applied to steady-state maintenance.
		linked := sc.linked[:0]
		for _, i := range bucket {
			if o.hasLong(p, friends[i]) {
				linked = append(linked, i)
			}
		}
		sc.linked = linked[:0]
		keep := overlay.PeerID(-1)
		switch len(linked) {
		case 0:
			pick := friends[o.pickIdx(bucket, friends)]
			if o.establish(p, pick) {
				changed = true
				keep = pick
			}
		case 1:
			keep = friends[linked[0]]
		default:
			keep = friends[o.pickIdx(linked, friends)]
		}
		if keep < 0 {
			continue
		}
		// Drop redundant same-bucket links (Algorithm 5 lines 12–16) — but
		// only when the kept representative actually covers them ("similar
		// connections" must mean the message still reaches the dropped peer
		// through the representative in one hop). Friends with empty
		// bitmaps hash together without being mutually reachable; dropping
		// those would silently disconnect them from the routing tree.
		for _, i := range bucket {
			v := friends[i]
			if v != keep && o.hasLong(p, v) && o.hasLong(keep, v) {
				o.dropLong(p, v)
				changed = true
			}
		}
	}
	// Enforce the K budget: shed covered links first, then the weakest
	// ties.
	for len(o.longLinks[p]) > o.cfg.K {
		victim := o.budgetVictim(p)
		o.dropLong(p, victim)
		changed = true
	}
	// Spend remaining budget on friends no current link can reach in one
	// forward, weakest ties first: strong ties live in the same community
	// region and stay reachable through the ring and the lookahead set,
	// while weak cross-community ties have no alternative path — linking
	// them is what keeps "the maximum number of each social user's
	// neighborhood" within 1–2 hops (§III-A).
	if len(o.longLinks[p]) < o.cfg.K {
		uncovered := sc.uncov[:0]
		for i, u := range friends {
			if !o.hasLong(p, u) && !o.coveredBy(p, u) {
				uncovered = append(uncovered, int32(i))
			}
		}
		row := o.tie[p]
		sort.Slice(uncovered, func(a, b int) bool {
			si, sj := row[uncovered[a]], row[uncovered[b]]
			if si != sj {
				return si < sj
			}
			return uncovered[a] < uncovered[b]
		})
		for _, i := range uncovered {
			u := friends[i]
			if len(o.longLinks[p]) >= o.cfg.K {
				// At budget: a redundant link (one whose peer another link
				// already covers) may be evicted in favor of the lone
				// friend — the "drop link overlap" intent of Algorithm 5.
				victim, ok := o.coveredVictim(p)
				if !ok {
					break
				}
				o.dropLong(p, victim)
				changed = true
			}
			if o.establish(p, u) {
				changed = true
			}
		}
		sc.uncov = uncovered[:0]
	}
	return changed
}

// coveredVictim returns a long link of p whose peer is covered by another
// long link (reachable in two hops anyway), weakest tie first; ok=false
// when every link is the sole path to its peer.
func (o *Overlay) coveredVictim(p overlay.PeerID) (overlay.PeerID, bool) {
	victim := overlay.PeerID(-1)
	var victimTie float64
	for _, v := range o.longLinks[p] {
		cov := false
		for _, w := range o.longLinks[p] {
			if w != v && o.hasLong(w, v) {
				cov = true
				break
			}
		}
		if !cov {
			continue
		}
		tie := o.tieStrength(p, v)
		if victim < 0 || tie < victimTie {
			victim, victimTie = v, tie
		}
	}
	return victim, victim >= 0
}

// coveredBy reports whether some long link of p links u (u is reachable in
// two hops through p's routing table).
func (o *Overlay) coveredBy(p, u overlay.PeerID) bool {
	for _, w := range o.longLinks[p] {
		if o.hasLong(w, u) {
			return true
		}
	}
	return false
}

// budgetVictim picks the long link to shed when over budget: a link whose
// peer is covered by another link if possible, the weakest tie otherwise.
func (o *Overlay) budgetVictim(p overlay.PeerID) overlay.PeerID {
	victim, covered := overlay.PeerID(-1), false
	var victimTie float64
	for _, v := range o.longLinks[p] {
		cov := false
		for _, w := range o.longLinks[p] {
			if w != v && o.hasLong(w, v) {
				cov = true
				break
			}
		}
		tie := o.tieStrength(p, v)
		switch {
		case victim < 0,
			cov && !covered,
			cov == covered && tie < victimTie:
			victim, covered, victimTie = v, cov, tie
		}
	}
	return victim
}

// createRandomLinks is the Algorithm-5 ablation: fill the K-link budget
// with uniformly random friends, no similarity bucketing. Candidates come
// from the shared PeerSwap-style swap sampler (selectcore.Sampler — the
// same stream discipline the live runtime's gossip exchange uses), so one
// round of draws covers every friend exactly once instead of sampling
// with replacement.
func (o *Overlay) createRandomLinks(p overlay.PeerID, friends []overlay.PeerID) bool {
	if o.samplers == nil {
		o.samplers = make([]*selectcore.Sampler, o.N())
		o.samplerSeed = int64(o.rng.Uint64())
	}
	s := o.samplers[p]
	if s == nil {
		pool := make([]int32, len(friends))
		for i, f := range friends {
			pool[i] = int32(f)
		}
		s = selectcore.NewSampler(pool, selectcore.SamplerSeed(o.samplerSeed, int32(p)))
		o.samplers[p] = s
	}
	changed := false
	for attempts := 0; len(o.longLinks[p]) < o.cfg.K && attempts < o.cfg.K*8; attempts++ {
		ui, ok := s.Next()
		if !ok {
			break
		}
		u := overlay.PeerID(ui)
		if !o.hasLong(p, u) && o.establish(p, u) {
			changed = true
		}
	}
	return changed
}

// pickIdx is Algorithm 6 over friend indices — the shared selectcore.Pick
// (connection count descending, bandwidth runner-up upgrade). C_p is
// sorted, so ascending index order is ascending PeerID order and
// tie-breaks match the PeerID-based picker exactly.
func (o *Overlay) pickIdx(cand []int32, friends []overlay.PeerID) int32 {
	sc := &o.scratch
	best, scratch := selectcore.Pick(cand, sc.idx.Conn,
		func(i int32) float64 { return o.bw[friends[i]] },
		o.cfg.PickerIgnoresBandwidth, sc.pick)
	sc.pick = scratch
	return best
}

func (o *Overlay) hasLong(p, u overlay.PeerID) bool {
	for _, x := range o.longLinks[p] {
		if x == u {
			return true
		}
	}
	return false
}

// establish creates the long-range link p→u, honoring u's K-incoming cap:
// a full peer accepts the new connection only when it has better bandwidth
// than the worst current one, which is then evicted (§III-D).
func (o *Overlay) establish(p, u overlay.PeerID) bool {
	if p == u {
		return false
	}
	if len(o.incomingFrom[u]) >= o.cfg.K {
		worst := overlay.PeerID(-1)
		wi := -1
		for i, x := range o.incomingFrom[u] {
			if worst < 0 || o.bw[x] < o.bw[worst] {
				worst, wi = x, i
			}
		}
		if worst < 0 || o.bw[p] <= o.bw[worst] {
			return false
		}
		// Evict the worst-bandwidth incoming link.
		o.incomingFrom[u][wi] = o.incomingFrom[u][len(o.incomingFrom[u])-1]
		o.incomingFrom[u] = o.incomingFrom[u][:len(o.incomingFrom[u])-1]
		o.removeLongOut(worst, u)
	}
	o.longLinks[p] = append(o.longLinks[p], u)
	o.incomingFrom[u] = append(o.incomingFrom[u], p)
	return true
}

// dropLong removes the long link p→u (both directions of bookkeeping).
func (o *Overlay) dropLong(p, u overlay.PeerID) {
	o.removeLongOut(p, u)
	in := o.incomingFrom[u]
	for i, x := range in {
		if x == p {
			in[i] = in[len(in)-1]
			o.incomingFrom[u] = in[:len(in)-1]
			break
		}
	}
}

func (o *Overlay) removeLongOut(p, u overlay.PeerID) {
	l := o.longLinks[p]
	for i, x := range l {
		if x == u {
			l[i] = l[len(l)-1]
			o.longLinks[p] = l[:len(l)-1]
			return
		}
	}
}
