package selectsys

import (
	"sort"

	"selectps/internal/bitset"
	"selectps/internal/lsh"
	"selectps/internal/overlay"
	"selectps/internal/ring"
)

// runGossip executes the construction gossip (the vertex-centric model of
// §IV): the identifier-reassignment rounds of Algorithms 2–4 followed by
// connection-establishment rounds of Algorithm 5, until both stabilize.
// Iterations() reports the total, the Fig. 5 metric.
//
// The peer-sampling exchange of Algorithms 3–4 is what, in a deployment,
// delivers the neighbor sets and bitmaps each peer needs; the simulator
// grants direct read access to the same information, which equals the
// gossip's converged knowledge.
var debugGossip = false

func (o *Overlay) runGossip() {
	n := o.N()
	if n == 0 {
		return
	}
	// Phase 1: identifier reassignment (region formation + placement).
	if !o.cfg.DisableReassignment {
		o.iterations = o.reassignPositions()
	}
	o.rewireRing()
	// Phase 2: connection establishment rounds until the link sets
	// stabilize. The 1% slack absorbs boundary peers whose bucket picks
	// flip between equivalent representatives, and the plateau check stops
	// the phase when changes stop shrinking (a handful of peers can trade
	// equivalent links indefinitely as their friends' bitmaps co-evolve).
	threshold := n / 50
	if threshold < 1 {
		threshold = 1
	}
	minChanged, sinceMin := n+1, 0
	for round := 1; round <= o.cfg.MaxRounds; round++ {
		linkChanged := 0
		for p := 0; p < n; p++ {
			// Parity alternation: peers refresh their links every other
			// round, breaking the two-peer drop/refill cycles that mutual
			// coverage decisions can otherwise sustain indefinitely.
			if (p+round)%2 != 0 {
				continue
			}
			if o.createLinks(overlay.PeerID(p)) {
				linkChanged++
			}
		}
		if debugGossip {
			println("link round", round, "changed", linkChanged)
		}
		o.iterations++
		if linkChanged <= threshold {
			break
		}
		// Plateau: once the change count stops reaching new lows the
		// remaining churn is a standing oscillation, not progress.
		if linkChanged < minChanged {
			minChanged, sinceMin = linkChanged, 0
		} else {
			sinceMin++
			if sinceMin >= 2 {
				break
			}
		}
	}
	o.syncBaseLinks()
}

// The identifier-reassignment phase. Algorithm 2's geometric intent —
// every peer relocates toward its strongest social ties until socially
// connected peers share a ring region — is realized in two steps that a
// gossiping peer can perform with exactly the information Algorithms 3–4
// exchange:
//
//  1. Region formation: each peer repeatedly adopts the region label that
//     its friends support most strongly, weighting each friend's vote by
//     tie strength (strength-weighted label propagation). This is the
//     gossip analogue of "move to the midpoint of your two strongest
//     friends": a peer ends up in the region where its strong ties are.
//     Running the literal synchronized midpoint dynamics instead
//     contracts the entire connected graph onto one ring position and
//     destroys the ID space — label propagation reaches the same social
//     co-location without the collapse.
//  2. Placement: regions receive disjoint ring arcs proportional to their
//     population (ordered by region hash, so placement is uniform and
//     deterministic), and members spread evenly inside their arc. The
//     ring stays fully covered, identifiers stay unique, and communities
//     become the compact contiguous groups of Fig. 8.
//
// reassignPositions returns the number of label-propagation rounds used.
func (o *Overlay) reassignPositions() int {
	n := o.N()
	if n == 0 {
		return 0
	}
	labels := make([]int32, n)
	for p := range labels {
		labels[p] = int32(p)
	}
	maxRounds := o.cfg.MaxRounds / 2
	if maxRounds < 1 {
		maxRounds = 1
	}
	rounds := 0
	// A handful of boundary peers can keep flipping between equally
	// supported regions; they do not change the macro structure, so the
	// phase stops once changes fall under 2%.
	stopAt := n / 50
	next := make([]int32, n)
	for r := 0; r < maxRounds; r++ {
		rounds++
		changed := 0
		// Synchronous superstep: decisions read the previous round's labels
		// only — sequential in-place updates would let one label telescope
		// through the whole graph in a single pass. A peer switches only
		// when the challenger's support strictly exceeds its current
		// label's support (hysteresis against oscillation).
		tally := make(map[int32]float64)
		for p := 0; p < n; p++ {
			pid := overlay.PeerID(p)
			next[p] = labels[p]
			// Parity alternation: only half the peers may switch per round,
			// which breaks the two-cycles synchronous label propagation is
			// prone to (pairs of peers swapping labels forever).
			if (p+r)%2 != 0 {
				continue
			}
			friends := o.g.Neighbors(pid)
			if len(friends) == 0 {
				continue
			}
			for k := range tally {
				delete(tally, k)
			}
			for _, f := range friends {
				w := o.tieStrength(pid, f)
				if o.cfg.CentroidAllFriends {
					// Ablation (§III-C): all friends pull equally, the
					// "centroid of all friends" policy. High-degree hubs
					// then drag unrelated users into one region.
					w = 1
				}
				tally[labels[f]] += w
			}
			cur := tally[labels[p]]
			best, bestW := labels[p], cur
			for l, w := range tally {
				if w > bestW && w > cur {
					best, bestW = l, w
				} else if w == bestW && w > cur && l < best {
					best = l
				}
			}
			if best != labels[p] {
				next[p] = best
				changed++
			}
		}
		labels, next = next, labels
		if changed <= stopAt {
			break
		}
		if debugGossip {
			distinct := make(map[int32]int)
			for _, l := range labels {
				distinct[l]++
			}
			max := 0
			for _, c := range distinct {
				if c > max {
					max = c
				}
			}
			println("lpa round", r+1, "changed", changed, "labels", len(distinct), "maxsize", max)
		}
	}
	o.placeByRegions(labels)
	return rounds
}

// tieStrength is the symmetric strength of the (p,v) friendship: common
// friends over the union of the two neighborhoods. Eq. 2's one-sided
// normalization |C_p∩C_u|/|C_p| would make every low-degree peer's
// strongest friends the global hubs; the symmetric form keeps the
// common-friend signal of §III-A ("the number of common friends that the
// two nodes share") while anchoring peers to their own community.
func (o *Overlay) tieStrength(p, v overlay.PeerID) float64 {
	common := o.g.CommonNeighbors(p, v)
	union := o.g.Degree(p) + o.g.Degree(v) - common
	if union <= 0 {
		return 0
	}
	// The +1 keeps the friendship edge itself worth something even with no
	// common friends.
	return (float64(common) + 1) / float64(union+1)
}

// placeByRegions assigns each region a ring arc proportional to its
// population and spreads members evenly inside it.
func (o *Overlay) placeByRegions(labels []int32) {
	n := o.N()
	members := make(map[int32][]overlay.PeerID)
	for p := 0; p < n; p++ {
		members[labels[p]] = append(members[labels[p]], overlay.PeerID(p))
	}
	type region struct {
		label int32
		hash  ring.ID
	}
	regions := make([]region, 0, len(members))
	for l := range members {
		regions = append(regions, region{l, ring.HashUint64(uint64(uint32(l)))})
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].hash != regions[j].hash {
			return regions[i].hash < regions[j].hash
		}
		return regions[i].label < regions[j].label
	})
	var start float64
	for _, r := range regions {
		ms := members[r.label]
		width := float64(len(ms)) / float64(n)
		for i, p := range ms {
			// Even spread with a deterministic sub-slot jitter keeps
			// identifiers unique and ordering stable.
			frac := (float64(i) + 0.5) / float64(len(ms))
			o.SetPosition(p, ring.Norm(start+width*frac))
		}
		start += width
	}
}

// topTieFriends returns p's two friends with the strongest symmetric ties
// (used by the Algorithm-2 anchor choice and by tests).
func (o *Overlay) topTieFriends(p overlay.PeerID) (best, second overlay.PeerID) {
	best, second = -1, -1
	var bs, ss float64 = -1, -1
	for _, v := range o.g.Neighbors(p) {
		s := o.tieStrength(p, v)
		switch {
		case s > bs:
			second, ss = best, bs
			best, bs = v, s
		case s > ss:
			second, ss = v, s
		}
	}
	return best, second
}

// rewireRing refreshes the two short-range links R_p^s (successor and
// predecessor in the current identifier order).
func (o *Overlay) rewireRing() {
	n := o.N()
	if n < 2 {
		return
	}
	order := o.SortedByPosition()
	if o.shortLinks == nil {
		o.shortLinks = make([][2]overlay.PeerID, n)
	}
	for i, p := range order {
		succ := order[(i+1)%n]
		pred := order[(i-1+n)%n]
		o.shortLinks[p] = [2]overlay.PeerID{succ, pred}
	}
}

// syncBaseLinks publishes shortLinks + longLinks + incoming long links
// into the generic link sets used by routing and the experiments. The
// routing view is symmetric: connections are reliable TCP channels
// (§III-A) and carry messages in both directions, so a peer forwards over
// links it initiated and links initiated toward it; the K-incoming cap
// governs connection acceptance, not traffic direction.
func (o *Overlay) syncBaseLinks() {
	n := o.N()
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		o.SetLinks(pid, nil)
		if o.shortLinks != nil {
			for _, q := range o.shortLinks[p] {
				if q != pid {
					o.AddLink(pid, q)
				}
			}
		}
		for _, q := range o.longLinks[p] {
			o.AddLink(pid, q)
		}
		for _, q := range o.incomingFrom[p] {
			o.AddLink(pid, q)
		}
	}
}

// bitmapFor builds the friendship bitmap of friend u from p's perspective
// (Algorithm 4, constructFriendshipBitmap): bit j is set when u maintains
// a long-range link to the j-th member of C_p.
func (o *Overlay) bitmapFor(p, u overlay.PeerID) *bitset.Set {
	idx := o.friendIdx[p]
	bm := bitset.New(len(idx))
	// Self bit: u trivially reaches itself. Without it, every bitmap is
	// all-zero in the first round (no long links exist yet), the LSH hashes
	// the whole neighborhood into a single bucket, and only one link can
	// ever bootstrap. With it, distinct friends spread over the K buckets
	// immediately while similar link sets still collide once links exist.
	if j, ok := idx[u]; ok {
		bm.Set(j)
	}
	for _, l := range o.longLinks[u] {
		if j, ok := idx[l]; ok {
			bm.Set(j)
		}
	}
	return bm
}

// createLinks is Algorithm 5: index the friends' bitmaps into the K LSH
// buckets, keep one picker-chosen representative per bucket as a long-range
// link, and drop redundant links to other peers of the same bucket. It
// reports whether p's long-link set changed.
func (o *Overlay) createLinks(p overlay.PeerID) bool {
	friends := o.g.Neighbors(p)
	if len(friends) == 0 {
		return false
	}
	if o.cfg.RandomLinks {
		return o.createRandomLinks(p, friends)
	}
	table := lsh.NewTable(o.hashers[p])
	conn := make(map[overlay.PeerID]int, len(friends)) // candidate -> link count
	for _, u := range friends {
		bm := o.bitmapFor(p, u)
		table.Insert(u, bm)
		conn[u] = bm.Count()
	}
	changed := false
	for b := 0; b < table.NumBuckets(); b++ {
		bucket := table.Bucket(b)
		if len(bucket) == 0 {
			continue
		}
		// Hysteresis: when the bucket already holds linked peers, keep the
		// picker-best among them instead of re-picking from scratch — the
		// paper's recovery rationale ("not create a chain of connections
		// reassignment", §III-F) applied to steady-state maintenance.
		var linked []overlay.PeerID
		for _, v := range bucket {
			if o.hasLong(p, v) {
				linked = append(linked, v)
			}
		}
		keep := overlay.PeerID(-1)
		switch len(linked) {
		case 0:
			pick := o.picker(bucket, conn)
			if o.establish(p, pick) {
				changed = true
				keep = pick
			}
		case 1:
			keep = linked[0]
		default:
			keep = o.picker(linked, conn)
		}
		if keep < 0 {
			continue
		}
		// Drop redundant same-bucket links (Algorithm 5 lines 12–16) — but
		// only when the kept representative actually covers them ("similar
		// connections" must mean the message still reaches the dropped peer
		// through the representative in one hop). Friends with empty
		// bitmaps hash together without being mutually reachable; dropping
		// those would silently disconnect them from the routing tree.
		for _, v := range bucket {
			if v != keep && o.hasLong(p, v) && o.hasLong(keep, v) {
				o.dropLong(p, v)
				changed = true
			}
		}
	}
	// Enforce the K budget: shed covered links first, then the weakest
	// ties.
	for len(o.longLinks[p]) > o.cfg.K {
		victim := o.budgetVictim(p)
		o.dropLong(p, victim)
		changed = true
	}
	// Spend remaining budget on friends no current link can reach in one
	// forward, weakest ties first: strong ties live in the same community
	// region and stay reachable through the ring and the lookahead set,
	// while weak cross-community ties have no alternative path — linking
	// them is what keeps "the maximum number of each social user's
	// neighborhood" within 1–2 hops (§III-A).
	if len(o.longLinks[p]) < o.cfg.K {
		var uncovered []overlay.PeerID
		for _, u := range friends {
			if !o.hasLong(p, u) && !o.coveredBy(p, u) {
				uncovered = append(uncovered, u)
			}
		}
		sort.Slice(uncovered, func(i, j int) bool {
			si, sj := o.tieStrength(p, uncovered[i]), o.tieStrength(p, uncovered[j])
			if si != sj {
				return si < sj
			}
			return uncovered[i] < uncovered[j]
		})
		for _, u := range uncovered {
			if len(o.longLinks[p]) >= o.cfg.K {
				// At budget: a redundant link (one whose peer another link
				// already covers) may be evicted in favor of the lone
				// friend — the "drop link overlap" intent of Algorithm 5.
				victim, ok := o.coveredVictim(p)
				if !ok {
					break
				}
				o.dropLong(p, victim)
				changed = true
			}
			if o.establish(p, u) {
				changed = true
			}
		}
	}
	return changed
}

// coveredVictim returns a long link of p whose peer is covered by another
// long link (reachable in two hops anyway), weakest tie first; ok=false
// when every link is the sole path to its peer.
func (o *Overlay) coveredVictim(p overlay.PeerID) (overlay.PeerID, bool) {
	victim := overlay.PeerID(-1)
	var victimTie float64
	for _, v := range o.longLinks[p] {
		cov := false
		for _, w := range o.longLinks[p] {
			if w != v && o.hasLong(w, v) {
				cov = true
				break
			}
		}
		if !cov {
			continue
		}
		tie := o.tieStrength(p, v)
		if victim < 0 || tie < victimTie {
			victim, victimTie = v, tie
		}
	}
	return victim, victim >= 0
}

// coveredBy reports whether some long link of p links u (u is reachable in
// two hops through p's routing table).
func (o *Overlay) coveredBy(p, u overlay.PeerID) bool {
	for _, w := range o.longLinks[p] {
		if o.hasLong(w, u) {
			return true
		}
	}
	return false
}

// budgetVictim picks the long link to shed when over budget: a link whose
// peer is covered by another link if possible, the weakest tie otherwise.
func (o *Overlay) budgetVictim(p overlay.PeerID) overlay.PeerID {
	victim, covered := overlay.PeerID(-1), false
	var victimTie float64
	for _, v := range o.longLinks[p] {
		cov := false
		for _, w := range o.longLinks[p] {
			if w != v && o.hasLong(w, v) {
				cov = true
				break
			}
		}
		tie := o.tieStrength(p, v)
		switch {
		case victim < 0,
			cov && !covered,
			cov == covered && tie < victimTie:
			victim, covered, victimTie = v, cov, tie
		}
	}
	return victim
}

// createRandomLinks is the Algorithm-5 ablation: fill the K-link budget
// with uniformly random friends, no similarity bucketing.
func (o *Overlay) createRandomLinks(p overlay.PeerID, friends []overlay.PeerID) bool {
	changed := false
	for attempts := 0; len(o.longLinks[p]) < o.cfg.K && attempts < o.cfg.K*8; attempts++ {
		u := friends[o.rng.Intn(len(friends))]
		if !o.hasLong(p, u) && o.establish(p, u) {
			changed = true
		}
	}
	return changed
}

// picker is Algorithm 6: sort the bucket by connection count (descending —
// "the maximum number of social connections"), and when the runner-up has
// strictly better bandwidth than the leader, prefer the runner-up.
func (o *Overlay) picker(bucket []overlay.PeerID, conn map[overlay.PeerID]int) overlay.PeerID {
	sorted := append([]overlay.PeerID(nil), bucket...)
	sort.Slice(sorted, func(i, j int) bool {
		ci, cj := conn[sorted[i]], conn[sorted[j]]
		if ci != cj {
			return ci > cj
		}
		if o.bw[sorted[i]] != o.bw[sorted[j]] {
			return o.bw[sorted[i]] > o.bw[sorted[j]]
		}
		return sorted[i] < sorted[j]
	})
	if !o.cfg.PickerIgnoresBandwidth &&
		len(sorted) > 1 && o.bw[sorted[0]] < o.bw[sorted[1]] {
		return sorted[1]
	}
	return sorted[0]
}

func (o *Overlay) hasLong(p, u overlay.PeerID) bool {
	for _, x := range o.longLinks[p] {
		if x == u {
			return true
		}
	}
	return false
}

// establish creates the long-range link p→u, honoring u's K-incoming cap:
// a full peer accepts the new connection only when it has better bandwidth
// than the worst current one, which is then evicted (§III-D).
func (o *Overlay) establish(p, u overlay.PeerID) bool {
	if p == u {
		return false
	}
	if len(o.incomingFrom[u]) >= o.cfg.K {
		worst := overlay.PeerID(-1)
		wi := -1
		for i, x := range o.incomingFrom[u] {
			if worst < 0 || o.bw[x] < o.bw[worst] {
				worst, wi = x, i
			}
		}
		if worst < 0 || o.bw[p] <= o.bw[worst] {
			return false
		}
		// Evict the worst-bandwidth incoming link.
		o.incomingFrom[u][wi] = o.incomingFrom[u][len(o.incomingFrom[u])-1]
		o.incomingFrom[u] = o.incomingFrom[u][:len(o.incomingFrom[u])-1]
		o.removeLongOut(worst, u)
	}
	o.longLinks[p] = append(o.longLinks[p], u)
	o.incomingFrom[u] = append(o.incomingFrom[u], p)
	return true
}

// dropLong removes the long link p→u (both directions of bookkeeping).
func (o *Overlay) dropLong(p, u overlay.PeerID) {
	o.removeLongOut(p, u)
	in := o.incomingFrom[u]
	for i, x := range in {
		if x == p {
			in[i] = in[len(in)-1]
			o.incomingFrom[u] = in[:len(in)-1]
			break
		}
	}
}

func (o *Overlay) removeLongOut(p, u overlay.PeerID) {
	l := o.longLinks[p]
	for i, x := range l {
		if x == u {
			l[i] = l[len(l)-1]
			o.longLinks[p] = l[:len(l)-1]
			return
		}
	}
}
