// Package selectsys implements SELECT, the paper's contribution (§III): a
// fully decentralized pub/sub overlay for decentralized online social
// networks that projects the social graph onto a ring ID space and keeps
// socially connected peers a hop or two apart.
//
// The package follows the paper's structure:
//
//   - Projection (Algorithm 1): joining peers are placed next to their
//     inviter, or at a uniform hash position when subscribing independently
//     (select.go, NewFromSchedule).
//   - Identifier reassignment (Algorithm 2) and the gossip peer-sampling
//     that feeds it (Algorithms 3–4): each round a peer moves to the ring
//     midpoint of its two highest-social-strength friends (gossip.go).
//   - Connection establishment (Algorithm 5) with the bucket picker
//     (Algorithm 6): friends' link bitmaps are LSH-indexed into K buckets
//     and one representative per bucket becomes a long-range link, subject
//     to a K-incoming-links cap with bandwidth-based eviction (gossip.go).
//   - Pub/sub routing with the Symphony-style lookahead set (§III-E)
//     (pubsub.go).
//   - The CMA-driven recovery mechanism (§III-F) (recovery.go).
//
// Ablation switches in Config disable individual mechanisms so the
// benchmarks can price each design choice separately.
package selectsys

import (
	"math"
	"math/rand"
	"sort"

	"selectps/internal/churn"
	"selectps/internal/growth"
	"selectps/internal/lsh"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/selectcore"
	"selectps/internal/socialgraph"
)

// Config parameterizes SELECT.
type Config struct {
	// K is the long-range link budget, the LSH bucket count |H| and the
	// incoming-link cap (the paper uses one knob for all three, §III-D).
	// The experiments set K = log2(N) (§IV-C).
	K int
	// MaxRounds bounds the gossip (default 64).
	MaxRounds int
	// MoveEps is the ring distance below which an identifier move counts
	// as "no change" for convergence (default 1e-4).
	MoveEps float64
	// RegionEps is the ring distance at which a peer considers itself
	// "arrived" at its Algorithm-2 target and stops reassigning (default
	// 0.005). Without this stop the synchronized midpoint dynamics on a
	// connected social graph contract the whole network to a single point,
	// destroying the ID space; with it, communities freeze as compact
	// regions spread over the ring — the Fig. 8 picture.
	RegionEps float64
	// CMAThreshold is the availability below which an unresponsive link is
	// replaced instead of kept (§III-F; default 0.5).
	CMAThreshold float64
	// Bandwidths optionally supplies per-peer upload bandwidth used by the
	// picker and the incoming-cap eviction. When nil, log-normal synthetic
	// values are drawn.
	Bandwidths []float64

	// Ablation switches (all default off = full SELECT).

	// DisableReassignment freezes identifiers after projection,
	// isolating the value of Algorithm 2.
	DisableReassignment bool
	// RandomLinks replaces LSH bucket selection with uniformly random
	// friend links, isolating Algorithm 5.
	RandomLinks bool
	// PickerIgnoresBandwidth makes the picker return the most-connected
	// candidate regardless of bandwidth, isolating Algorithm 6.
	PickerIgnoresBandwidth bool
	// CentroidAllFriends reassigns to the circular centroid of all friends
	// instead of the top-2 midpoint — the variant §III-C argues fails for
	// high-degree users.
	CentroidAllFriends bool
	// NaiveRecovery replaces every unresponsive link immediately,
	// ignoring CMA history, isolating §III-F.
	NaiveRecovery bool
	// DisableLookahead removes the Symphony-style lookahead set from
	// routing and dissemination, isolating §III-E's 2-hop delivery.
	DisableLookahead bool
}

func (c *Config) fill(n int) {
	if c.K <= 0 {
		c.K = int(math.Max(2, math.Log2(math.Max(2, float64(n)))))
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 64
	}
	if c.MoveEps == 0 {
		c.MoveEps = 1e-4
	}
	if c.RegionEps == 0 {
		c.RegionEps = 0.005
	}
	if c.CMAThreshold == 0 {
		c.CMAThreshold = 0.5
	}
}

// Overlay is a constructed SELECT network.
type Overlay struct {
	*overlay.Base
	g   *socialgraph.Graph
	cfg Config
	rng *rand.Rand

	bw []float64 // per-peer upload bandwidth (picker input)

	// hashers[p] is the per-peer LSH hasher over |C_p|-bit bitmaps. The
	// bitmap coordinate space of Algorithm 5 is the sorted friend list
	// C_p itself: a friend's coordinate is its index in g.Neighbors(p).
	hashers []*lsh.Hasher

	// tie[p][i] caches the symmetric tie strength of the friendship edge
	// (p, C_p[i]), aligned with g.Neighbors(p) — computed once per trial
	// (strength.go); the graph is immutable for the overlay's lifetime.
	tie [][]float64

	// scratch is the reusable Algorithm-5 working set (gossip.go).
	scratch linkScratch

	// samplers holds the per-peer swap samplers of the RandomLinks
	// ablation (lazy — the default LSH path never allocates them);
	// samplerSeed is the base stream drawn once from rng at first use.
	samplers    []*selectcore.Sampler
	samplerSeed int64

	// longLinks[p] is R_p^l: the K long-range links (subset of Base links;
	// Base also holds the two ring links R_p^s).
	longLinks [][]overlay.PeerID
	// shortLinks[p] is R_p^s: ring successor and predecessor.
	shortLinks [][2]overlay.PeerID
	// incomingFrom[u] lists peers holding a long link to u (for the
	// K-incoming cap).
	incomingFrom [][]overlay.PeerID

	// tracker records each peer's observed availability (CMA, §III-F).
	tracker *churn.Tracker

	iterations int
}

// New builds a SELECT overlay for social graph g: it synthesizes a growth
// schedule with the default model, projects peers (Algorithm 1) and runs
// the gossip to convergence. Deterministic in rng.
func New(g *socialgraph.Graph, cfg Config, rng *rand.Rand) *Overlay {
	sched := growth.DefaultModel().Schedule(g, rng)
	return NewFromSchedule(g, sched, cfg, rng)
}

// NewFromSchedule builds a SELECT overlay using an explicit join schedule
// (the experiments reuse one schedule across systems and snapshots).
func NewFromSchedule(g *socialgraph.Graph, sched growth.Schedule, cfg Config, rng *rand.Rand) *Overlay {
	n := g.NumNodes()
	cfg.fill(n)
	o := &Overlay{
		Base:         overlay.NewBase("select", n),
		g:            g,
		cfg:          cfg,
		rng:          rng,
		hashers:      make([]*lsh.Hasher, n),
		longLinks:    make([][]overlay.PeerID, n),
		incomingFrom: make([][]overlay.PeerID, n),
		tracker:      churn.NewTracker(n),
	}
	o.bw = cfg.Bandwidths
	if o.bw == nil {
		o.bw = make([]float64, n)
		for i := range o.bw {
			o.bw[i] = 1e6 * math.Exp(rng.NormFloat64())
		}
	}
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		buckets := cfg.K
		if buckets < 1 {
			buckets = 1
		}
		o.hashers[p] = lsh.NewHasher(g.Degree(pid), buckets, 0, rng)
	}
	o.buildStrengthCache()
	o.project(sched)
	o.runGossip()
	return o
}

// project assigns initial identifiers per Algorithm 1: invited users land
// next to their inviter (minimizing d_I to the inviting peer), independent
// users at a uniform hash position.
func (o *Overlay) project(sched growth.Schedule) {
	placed := make([]bool, o.N())
	// Invited peers minimize their distance to the inviter (Algorithm 1
	// line 3) by landing inside the inviter's currently free clockwise arc:
	// the invitee becomes the inviter's closest ring neighbor, invitation
	// subtrees grow into contiguous regions, and the ring stays fully
	// covered — the Fig. 8 picture of "small groups within regions without
	// losing connectivity between regions". (Placing invitees at a fixed
	// tiny offset instead would collapse the whole network onto the first
	// seed's position.)
	occupied := make([]ring.ID, 0, o.N())
	insert := func(id ring.ID) {
		i := sort.Search(len(occupied), func(i int) bool { return occupied[i] >= id })
		occupied = append(occupied, 0)
		copy(occupied[i+1:], occupied[i:])
		occupied[i] = id
	}
	for _, e := range sched.Events {
		var pos ring.ID
		if e.Inviter >= 0 && placed[e.Inviter] && len(occupied) > 1 {
			inv := o.Position(e.Inviter)
			succ := occupied[ring.Successor(occupied, inv)]
			pos = selectcore.PlaceJoin(inv, ring.Clockwise(inv, succ),
				1.0/float64(len(occupied)+1), o.rng.Float64())
		} else {
			pos = selectcore.PlaceIndependent(uint64(e.User))
		}
		o.SetPosition(e.User, pos)
		placed[e.User] = true
		insert(pos)
	}
	// Any user missing from the schedule (defensive) gets a uniform hash.
	for p := 0; p < o.N(); p++ {
		if !placed[p] {
			o.SetPosition(overlay.PeerID(p), selectcore.PlaceIndependent(uint64(p)))
		}
	}
}

// Iterations implements overlay.Iterative: gossip rounds until neither
// identifiers nor link sets changed.
func (o *Overlay) Iterations() int { return o.iterations }

// K returns the effective link budget.
func (o *Overlay) K() int { return o.cfg.K }

// Bandwidth returns peer p's modeled upload bandwidth.
func (o *Overlay) Bandwidth(p overlay.PeerID) float64 { return o.bw[p] }

// LongLinks returns R_p^l (shared slice; do not mutate).
func (o *Overlay) LongLinks(p overlay.PeerID) []overlay.PeerID { return o.longLinks[p] }

// Tracker exposes the availability tracker (the simulation folds churn
// probes into it between repairs).
func (o *Overlay) Tracker() *churn.Tracker { return o.tracker }

// Graph returns the underlying social graph.
func (o *Overlay) Graph() *socialgraph.Graph { return o.g }
