package selectsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/socialgraph"
)

// randomGraph builds a small random graph from a seed (not the dataset
// generators, to exercise SELECT on arbitrary topologies: stars, sparse
// graphs, graphs with isolates).
func randomGraph(seed int64) *socialgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(120)
	b := socialgraph.NewBuilder(n)
	// Mixture of shapes: ring backbone, random edges, a hub.
	shape := rng.Intn(3)
	switch shape {
	case 0: // sparse random
		for e := 0; e < n; e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
	case 1: // star plus noise
		hub := int32(rng.Intn(n))
		for i := 0; i < n; i++ {
			if int32(i) != hub && rng.Intn(3) > 0 {
				b.AddEdge(hub, int32(i))
			}
		}
		for e := 0; e < n/2; e++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
	default: // dense-ish communities
		for e := 0; e < 4*n; e++ {
			u := rng.Intn(n)
			v := (u + 1 + rng.Intn(5)) % n
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// TestPropertyInvariantsOnRandomGraphs checks SELECT's structural
// invariants over arbitrary random topologies:
//
//   - every long link connects social friends,
//   - out- and in-long-degree never exceed K,
//   - all positions stay in [0,1),
//   - routing succeeds between all sampled online pairs,
//   - dissemination delivers every subscriber with no churn.
func TestPropertyInvariantsOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		o := New(g, Config{}, rand.New(rand.NewSource(seed)))
		n := o.N()
		incoming := make([]int, n)
		for p := overlay.PeerID(0); int(p) < n; p++ {
			if !o.Position(p).Valid() {
				t.Logf("seed %d: invalid position at %d", seed, p)
				return false
			}
			if len(o.LongLinks(p)) > o.K() {
				t.Logf("seed %d: out-degree %d > K", seed, len(o.LongLinks(p)))
				return false
			}
			for _, q := range o.LongLinks(p) {
				if !g.HasEdge(p, q) {
					t.Logf("seed %d: non-friend link %d->%d", seed, p, q)
					return false
				}
				incoming[q]++
			}
		}
		for u, c := range incoming {
			if c > o.K() {
				t.Logf("seed %d: in-degree %d > K at %d", seed, c, u)
				return false
			}
		}
		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < 20; i++ {
			src := overlay.PeerID(rng.Intn(n))
			dst := overlay.PeerID(rng.Intn(n))
			path, ok := o.Route(src, dst)
			if !ok || path[len(path)-1] != dst {
				t.Logf("seed %d: route %d->%d failed", seed, src, dst)
				return false
			}
		}
		for i := 0; i < 5; i++ {
			b := overlay.PeerID(rng.Intn(n))
			if g.Degree(b) == 0 {
				continue
			}
			tree, failed := o.DisseminationTree(b, g.Neighbors(b))
			if len(failed) > 0 {
				t.Logf("seed %d: publisher %d failed %d subscribers", seed, b, len(failed))
				return false
			}
			for _, s := range g.Neighbors(b) {
				if !tree.Contains(s) {
					t.Logf("seed %d: subscriber %d missing", seed, s)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyAblationsStayCorrect: every ablation variant must still be
// a correct pub/sub system (delivery completeness), just less efficient.
func TestPropertyAblationsStayCorrect(t *testing.T) {
	variants := []Config{
		{DisableReassignment: true},
		{RandomLinks: true},
		{PickerIgnoresBandwidth: true},
		{CentroidAllFriends: true},
		{NaiveRecovery: true},
		{DisableLookahead: true},
	}
	f := func(seed int64) bool {
		g := randomGraph(seed)
		v := variants[int(uint64(seed)%uint64(len(variants)))]
		o := New(g, v, rand.New(rand.NewSource(seed)))
		rng := rand.New(rand.NewSource(seed + 2))
		for i := 0; i < 3; i++ {
			b := overlay.PeerID(rng.Intn(o.N()))
			if g.Degree(b) == 0 {
				continue
			}
			_, failed := o.DisseminationTree(b, g.Neighbors(b))
			if len(failed) > 0 {
				t.Logf("seed %d variant %+v: %d failed", seed, v, len(failed))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 18}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLookaheadAblationHurtsHops(t *testing.T) {
	g := randomGraph(3)
	full := New(g, Config{}, rand.New(rand.NewSource(4)))
	noLook := New(g, Config{DisableLookahead: true}, rand.New(rand.NewSource(4)))
	rng := rand.New(rand.NewSource(5))
	var fullHops, noLookHops int
	for i := 0; i < 200; i++ {
		u, v, ok := g.RandomEdge(rng)
		if !ok {
			t.Skip("graph has no edges")
		}
		if p, ok := full.Route(u, v); ok {
			fullHops += p.Hops()
		}
		if p, ok := noLook.Route(u, v); ok {
			noLookHops += p.Hops()
		}
	}
	if fullHops > noLookHops {
		t.Errorf("lookahead made routing worse: full=%d nolookahead=%d", fullHops, noLookHops)
	}
}

func TestCommunitiesOccupyContiguousArcs(t *testing.T) {
	// Fig. 8's structure: walking the ring in position order, peers from
	// the same social community should appear in runs, so the number of
	// "community boundaries" along the ring must be far below what random
	// interleaving would produce. We detect communities as groups whose
	// best-tie chains connect them (approximation: the LPA regions are not
	// exported, so use the ring itself: count position-adjacent pairs that
	// share at least one friend).
	g := datasets.Facebook.Generate(600, 31)
	o := New(g, Config{}, rand.New(rand.NewSource(31)))
	order := o.SortedByPosition()
	adjacentFriendly := 0
	for i := 0; i < len(order); i++ {
		a, b := order[i], order[(i+1)%len(order)]
		if g.HasEdge(a, b) || g.CommonNeighbors(a, b) > 0 {
			adjacentFriendly++
		}
	}
	frac := float64(adjacentFriendly) / float64(len(order))
	// Random placement of a 25-avg-degree graph over 600 peers gives a few
	// percent; contiguous communities give a large majority.
	if frac < 0.6 {
		t.Errorf("only %.0f%% of ring-adjacent pairs are socially related; expected contiguous communities", frac*100)
	}
	// Baseline sanity: with reassignment disabled the fraction drops.
	frozen := New(g, Config{DisableReassignment: true}, rand.New(rand.NewSource(31)))
	orderF := frozen.SortedByPosition()
	adjF := 0
	for i := 0; i < len(orderF); i++ {
		a, b := orderF[i], orderF[(i+1)%len(orderF)]
		if g.HasEdge(a, b) || g.CommonNeighbors(a, b) > 0 {
			adjF++
		}
	}
	if adjF >= adjacentFriendly {
		t.Errorf("reassignment did not raise ring-adjacent social affinity: %d vs %d",
			adjacentFriendly, adjF)
	}
}
