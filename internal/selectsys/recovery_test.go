package selectsys

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
)

func TestRepairPatchesRing(t *testing.T) {
	g := datasets.Facebook.Generate(300, 1)
	o := New(g, Config{}, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 90; i++ { // 30% offline
		o.SetOnline(overlay.PeerID(rng.Intn(300)), false)
	}
	o.Repair()
	// Every pair of online peers must remain routable.
	fails := 0
	for i := 0; i < 200; i++ {
		src := overlay.PeerID(rng.Intn(300))
		dst := overlay.PeerID(rng.Intn(300))
		if src == dst || !o.Online(src) || !o.Online(dst) {
			continue
		}
		path, ok := o.Route(src, dst)
		if !ok {
			fails++
			continue
		}
		for _, p := range path[1 : len(path)-1] {
			if !o.Online(p) {
				t.Fatalf("route through offline peer %d", p)
			}
		}
	}
	if fails > 0 {
		t.Errorf("%d routes failed after repair; recovery must keep 100%% availability", fails)
	}
}

func TestRepairKeepsHighCMALinks(t *testing.T) {
	g := datasets.Facebook.Generate(200, 3)
	o := New(g, Config{CMAThreshold: 0.5}, rand.New(rand.NewSource(3)))
	// Find a peer with at least one long link.
	var p overlay.PeerID = -1
	for i := overlay.PeerID(0); i < 200; i++ {
		if len(o.LongLinks(i)) > 0 && o.Online(i) {
			p = i
			break
		}
	}
	if p < 0 {
		t.Skip("no long links formed")
	}
	q := o.LongLinks(p)[0]
	// Give q a spotless availability history, then take it offline once.
	for i := 0; i < 20; i++ {
		o.Tracker().Observe(q, true)
	}
	o.SetOnline(q, false)
	o.Repair()
	if !o.hasLong(p, q) {
		t.Error("high-CMA link was dropped; §III-F says temporal failures are kept")
	}
	o.SetOnline(q, true)
}

func TestRepairReplacesLowCMALinks(t *testing.T) {
	g := datasets.Facebook.Generate(200, 4)
	o := New(g, Config{CMAThreshold: 0.5}, rand.New(rand.NewSource(4)))
	var p overlay.PeerID = -1
	for i := overlay.PeerID(0); i < 200; i++ {
		if len(o.LongLinks(i)) > 0 && o.Online(i) {
			p = i
			break
		}
	}
	if p < 0 {
		t.Skip("no long links formed")
	}
	q := o.LongLinks(p)[0]
	// Give q a terrible availability history.
	for i := 0; i < 20; i++ {
		o.Tracker().Observe(q, false)
	}
	o.SetOnline(q, false)
	o.Repair()
	if o.hasLong(p, q) {
		t.Error("low-CMA offline link survived repair")
	}
}

func TestNaiveRecoveryAblationDropsRegardless(t *testing.T) {
	g := datasets.Facebook.Generate(200, 5)
	o := New(g, Config{NaiveRecovery: true}, rand.New(rand.NewSource(5)))
	var p overlay.PeerID = -1
	for i := overlay.PeerID(0); i < 200; i++ {
		if len(o.LongLinks(i)) > 0 && o.Online(i) {
			p = i
			break
		}
	}
	if p < 0 {
		t.Skip("no long links formed")
	}
	q := o.LongLinks(p)[0]
	for i := 0; i < 20; i++ {
		o.Tracker().Observe(q, true) // perfect history — ignored by ablation
	}
	o.SetOnline(q, false)
	o.Repair()
	if o.hasLong(p, q) {
		t.Error("naive recovery kept an offline link")
	}
}

func TestDisseminationUnderChurn(t *testing.T) {
	g := datasets.Facebook.Generate(400, 6)
	o := New(g, Config{}, rand.New(rand.NewSource(6)))
	rng := rand.New(rand.NewSource(7))
	// Half the network offline — the paper's worst case in Fig. 6.
	for i := 0; i < 400 && o.OfflineCount() < 200; i++ {
		o.SetOnline(overlay.PeerID(rng.Intn(400)), false)
	}
	o.Repair()
	trials, delivered, wanted := 0, 0, 0
	for i := 0; i < 40; i++ {
		pub := overlay.PeerID(rng.Intn(400))
		if !o.Online(pub) {
			continue
		}
		var subs []overlay.PeerID
		for _, s := range g.Neighbors(pub) {
			if o.Online(s) {
				subs = append(subs, s)
			}
		}
		if len(subs) == 0 {
			continue
		}
		trials++
		tree, failed := o.DisseminationTree(pub, subs)
		wanted += len(subs)
		delivered += len(subs) - len(failed)
		for _, s := range subs {
			if !tree.Contains(s) && !contains(failed, s) {
				t.Fatalf("subscriber %d neither delivered nor failed", s)
			}
		}
	}
	if trials == 0 {
		t.Fatal("no trials")
	}
	if delivered != wanted {
		t.Errorf("availability %d/%d < 100%% after repair", delivered, wanted)
	}
}

func contains(l []overlay.PeerID, x overlay.PeerID) bool {
	for _, y := range l {
		if y == x {
			return true
		}
	}
	return false
}

func TestRepairEmptyOverlay(t *testing.T) {
	g := datasets.Facebook.Generate(0, 8)
	o := New(g, Config{}, rand.New(rand.NewSource(8)))
	o.Repair() // must not panic
}

func TestRepairAllOffline(t *testing.T) {
	g := datasets.Facebook.Generate(50, 9)
	o := New(g, Config{}, rand.New(rand.NewSource(9)))
	for p := overlay.PeerID(0); p < 50; p++ {
		o.SetOnline(p, false)
	}
	o.Repair() // must not panic
}
