package selectsys

import (
	"log"
	"os"
	"strings"
)

// Round-level gossip tracing is gated by the SELECT_DEBUG environment
// variable: a comma-separated list of facilities ("gossip", or "all").
//
//	SELECT_DEBUG=gossip go test ./internal/selectsys -run TestConverge
//
// replaces the old compile-time debugGossip flag — tracing no longer
// requires editing source. Output goes to stderr through a standard
// log.Logger so it interleaves cleanly with test output.
var (
	gossipDebug = debugEnabled("gossip")
	debugLog    = log.New(os.Stderr, "selectsys: ", log.Lmsgprefix)
)

// debugEnabled reports whether SELECT_DEBUG names the facility (or "all").
func debugEnabled(facility string) bool {
	for _, tok := range strings.Split(os.Getenv("SELECT_DEBUG"), ",") {
		if tok = strings.TrimSpace(tok); tok == facility || tok == "all" {
			return true
		}
	}
	return false
}
