package selectsys

import (
	"slices"

	"selectps/internal/overlay"
	"selectps/internal/par"
)

// The symmetric tie strength of a friendship edge depends only on the
// social graph, and the graph is immutable for the lifetime of an overlay
// — yet the gossip queries it O(rounds × Σ deg) times: every label-
// propagation vote, every link-budget eviction and every uncovered-friend
// sort recomputes the same |C_p ∩ C_v| intersection. buildStrengthCache
// computes each value exactly once per directed edge into a CSR-aligned
// cache: tie[p][i] is the strength of the edge (p, C_p[i]), aligned with
// g.Neighbors(p), so iteration-order consumers index directly and point
// queries pay one binary search instead of an O(d_p + d_v) merge.

// buildStrengthCache fills o.tie. The pass is sharded across par workers;
// each (p, i) entry is independent and written by exactly one worker, so
// the result is bit-identical to the sequential pass.
func (o *Overlay) buildStrengthCache() {
	n := o.N()
	o.tie = make([][]float64, n)
	par.For(n, func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			pid := overlay.PeerID(p)
			friends := o.g.Neighbors(pid)
			if len(friends) == 0 {
				continue
			}
			row := make([]float64, len(friends))
			for i, v := range friends {
				row[i] = o.computeTieStrength(pid, v)
			}
			o.tie[p] = row
		}
	})
}

// tieStrength is the symmetric strength of the (p,v) friendship: common
// friends over the union of the two neighborhoods. Eq. 2's one-sided
// normalization |C_p∩C_u|/|C_p| would make every low-degree peer's
// strongest friends the global hubs; the symmetric form keeps the
// common-friend signal of §III-A ("the number of common friends that the
// two nodes share") while anchoring peers to their own community.
//
// Friendship edges are answered from the CSR-aligned cache; non-edges
// (possible for ablation or future callers) fall back to computing.
func (o *Overlay) tieStrength(p, v overlay.PeerID) float64 {
	if i, ok := slices.BinarySearch(o.g.Neighbors(p), v); ok {
		return o.tie[p][i]
	}
	return o.computeTieStrength(p, v)
}

// tieRow returns p's cached strengths aligned with g.Neighbors(p) (shared
// slice; do not mutate). Nil when p has no friends.
func (o *Overlay) tieRow(p overlay.PeerID) []float64 { return o.tie[p] }

// computeTieStrength evaluates the strength formula directly.
func (o *Overlay) computeTieStrength(p, v overlay.PeerID) float64 {
	common := o.g.CommonNeighbors(p, v)
	union := o.g.Degree(p) + o.g.Degree(v) - common
	if union <= 0 {
		return 0
	}
	// The +1 keeps the friendship edge itself worth something even with no
	// common friends.
	return (float64(common) + 1) / float64(union+1)
}
