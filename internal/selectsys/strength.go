package selectsys

import (
	"slices"

	"selectps/internal/overlay"
	"selectps/internal/par"
	"selectps/internal/selectcore"
)

// The symmetric tie strength of a friendship edge depends only on the
// social graph, and the graph is immutable for the lifetime of an overlay
// — yet the gossip queries it O(rounds × Σ deg) times: every label-
// propagation vote, every link-budget eviction and every uncovered-friend
// sort recomputes the same |C_p ∩ C_v| intersection. buildStrengthCache
// computes each value exactly once per directed edge into a CSR-aligned
// cache: tie[p][i] is the strength of the edge (p, C_p[i]), aligned with
// g.Neighbors(p), so iteration-order consumers index directly and point
// queries pay one binary search instead of an O(d_p + d_v) merge.

// buildStrengthCache fills o.tie. The pass is sharded across par workers;
// each (p, i) entry is independent and written by exactly one worker, so
// the result is bit-identical to the sequential pass.
func (o *Overlay) buildStrengthCache() {
	n := o.N()
	o.tie = make([][]float64, n)
	par.For(n, func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			pid := overlay.PeerID(p)
			friends := o.g.Neighbors(pid)
			if len(friends) == 0 {
				continue
			}
			row := make([]float64, len(friends))
			for i, v := range friends {
				row[i] = o.computeTieStrength(pid, v)
			}
			o.tie[p] = row
		}
	})
}

// tieStrength is the symmetric strength of the (p,v) friendship — the
// shared formula selectcore.StrengthFromCounts; see its comment for the
// rationale against Eq. 2's one-sided normalization.
//
// Friendship edges are answered from the CSR-aligned cache; non-edges
// (possible for ablation or future callers) fall back to computing.
func (o *Overlay) tieStrength(p, v overlay.PeerID) float64 {
	if i, ok := slices.BinarySearch(o.g.Neighbors(p), v); ok {
		return o.tie[p][i]
	}
	return o.computeTieStrength(p, v)
}

// tieRow returns p's cached strengths aligned with g.Neighbors(p) (shared
// slice; do not mutate). Nil when p has no friends.
func (o *Overlay) tieRow(p overlay.PeerID) []float64 { return o.tie[p] }

// computeTieStrength evaluates the shared strength formula directly; the
// live runtime evaluates the same formula from exchange-reply mutual
// counts (selectcore.StrengthFromCounts — one definition, two learners).
func (o *Overlay) computeTieStrength(p, v overlay.PeerID) float64 {
	return selectcore.Strength(o.g, p, v)
}
