package selectcore

import (
	"sort"

	"selectps/internal/overlay"
	"selectps/internal/ring"
)

// Topic rules (DESIGN.md §13): named topics hash to a ring position and
// rendezvous on the first live clockwise successors of that position —
// the same successor-set geometry the durable tier uses for inbox
// replicas, so topic state needs no directory of its own. Both the
// rendezvous-placement rule and the dissemination-tree rule are pure
// functions of (position, membership) shared by the simulator and the
// runtime; the equivalence tests in topic_test.go pin that every peer
// with the same ring view derives the identical rendezvous set and the
// identical tree.

// TopicPos maps a topic name onto the unit ring. Publishers,
// subscribers, and rendezvous candidates all derive placement from this
// one hash, so no coordination is needed to agree where a topic lives.
func TopicPos(name string) ring.ID {
	return ring.Hash([]byte(name))
}

// Rendezvous is the topic-placement rule: the first r live peers
// clockwise from pos host the topic's subscriber registry (index 0 is
// the primary, the rest are standbys that shadow the registry and take
// over fan-out when the primary dies). Unlike InboxReplicas no peer is
// excluded — a topic position is a hash, not a peer, so any live member
// may serve it. Ties on a shared position break by peer id so every
// caller derives the identical set.
func Rendezvous(pos ring.ID, members []RingMember, live func(overlay.PeerID) bool, r int) []overlay.PeerID {
	return clockwiseSuccessors(pos, -1, members, live, r)
}

// clockwiseSuccessors is the shared successor-selection kernel behind
// Rendezvous and InboxReplicas: the first r live members strictly
// clockwise from pos (a member exactly at pos wraps the whole ring —
// measure-zero for hashed positions, and deterministic), excluding
// `exclude` when it is a valid peer id, id-tiebroken.
func clockwiseSuccessors(pos ring.ID, exclude overlay.PeerID, members []RingMember, live func(overlay.PeerID) bool, r int) []overlay.PeerID {
	if r <= 0 {
		return nil
	}
	cands := make([]RingMember, 0, len(members))
	for _, m := range members {
		if m.ID == exclude || (live != nil && !live(m.ID)) {
			continue
		}
		cands = append(cands, m)
	}
	sort.Slice(cands, func(i, j int) bool {
		di := ring.Clockwise(pos, cands[i].Pos)
		dj := ring.Clockwise(pos, cands[j].Pos)
		if di <= 0 {
			di += 1
		}
		if dj <= 0 {
			dj += 1
		}
		if di != dj {
			return di < dj
		}
		return cands[i].ID < cands[j].ID
	})
	if len(cands) > r {
		cands = cands[:r]
	}
	out := make([]overlay.PeerID, len(cands))
	for i, m := range cands {
		out[i] = m.ID
	}
	return out
}

// TreeBranches is the dissemination-tree rule: given a topic's
// subscriber set (any order, duplicates tolerated) it returns at most
// `fanout` branches. Each branch is a slice whose first element is the
// child the current node forwards to and whose tail is that child's
// subtree — the child recurses with TreeBranches(branch[1:], fanout),
// so the whole tree unrolls from local decisions with no shared state
// beyond the subscriber list itself. Subscribers are ranked by id, and
// branch sizes differ by at most one, giving a complete fanout-ary tree
// of depth ceil(log_fanout(n)). The input slice is not mutated.
func TreeBranches(subs []overlay.PeerID, fanout int) [][]overlay.PeerID {
	if len(subs) == 0 {
		return nil
	}
	if fanout < 1 {
		fanout = 1
	}
	order := append([]overlay.PeerID(nil), subs...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	// Drop duplicates so a double-registered subscriber cannot become
	// its own descendant.
	dedup := order[:1]
	for _, p := range order[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	order = dedup
	k := fanout
	if len(order) < k {
		k = len(order)
	}
	out := make([][]overlay.PeerID, 0, k)
	base := len(order) / k
	rem := len(order) % k
	at := 0
	for i := 0; i < k; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out = append(out, order[at:at+sz])
		at += sz
	}
	return out
}
