package selectcore

import (
	"testing"
	"time"
)

func TestClassifyTable(t *testing.T) {
	d := DefaultFailureDetector() // suspect@2, dead@4, cma<0.25 after 4 samples
	cases := []struct {
		name    string
		misses  int
		samples int
		cma     float64
		want    LinkState
	}{
		{"responsive is alive regardless of history", 0, 100, 0.01, LinkAlive},
		{"one miss, no history", 1, 0, 1.0, LinkAlive},
		{"one miss, good history", 1, 50, 0.9, LinkAlive},
		{"one miss, shaky history", 1, 50, 0.4, LinkSuspect},
		{"one miss, terrible history but young", 1, 3, 0.1, LinkAlive},
		{"one miss, terrible history with samples", 1, 4, 0.1, LinkDead},
		{"streak at suspect threshold", 2, 0, 1.0, LinkSuspect},
		{"streak below dead threshold", 3, 50, 0.9, LinkSuspect},
		{"streak at dead threshold", 4, 50, 0.99, LinkDead},
		{"long streak", 10, 0, 1.0, LinkDead},
	}
	for _, tc := range cases {
		if got := d.Classify(tc.misses, tc.samples, tc.cma); got != tc.want {
			t.Errorf("%s: Classify(%d, %d, %.2f) = %v, want %v",
				tc.name, tc.misses, tc.samples, tc.cma, got, tc.want)
		}
	}
}

func TestZeroDetectorUsesDefaults(t *testing.T) {
	var zero FailureDetector
	def := DefaultFailureDetector()
	for misses := 0; misses <= 6; misses++ {
		for _, cma := range []float64{0.0, 0.3, 0.8, 1.0} {
			if z, d := zero.Classify(misses, 10, cma), def.Classify(misses, 10, cma); z != d {
				t.Fatalf("zero detector diverges at misses=%d cma=%.1f: %v vs %v", misses, cma, z, d)
			}
		}
	}
}

func TestKeepOnFailureMatchesSimulatorRule(t *testing.T) {
	// The simulator's historical rule: keep an unresponsive link iff its
	// CMA is at or above the threshold. With MinSamples 1 the detector
	// must reproduce it exactly for any probed link.
	det := FailureDetector{DeadCMA: 0.5, MinSamples: 1}
	for _, tc := range []struct {
		samples int
		cma     float64
		keep    bool
	}{
		{1, 0.9, true},
		{1, 0.5, true},
		{1, 0.49, false},
		{10, 0.0, false},
		{0, 0.0, true}, // never probed: benefit of the doubt
	} {
		if got := det.KeepOnFailure(tc.samples, tc.cma); got != tc.keep {
			t.Errorf("KeepOnFailure(%d, %.2f) = %v, want %v", tc.samples, tc.cma, got, tc.keep)
		}
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond}
	seed := RepairSeed(42, 7, 3)
	for k := 0; k < 20; k++ {
		d1, d2 := b.Delay(seed, k), b.Delay(seed, k)
		if d1 != d2 {
			t.Fatalf("Delay(seed, %d) not deterministic: %s vs %s", k, d1, d2)
		}
		// Jitter is ±25% of the capped exponential delay.
		base := 10 * time.Millisecond << uint(k)
		if base > 100*time.Millisecond || base <= 0 {
			base = 100 * time.Millisecond
		}
		lo, hi := time.Duration(float64(base)*0.75), time.Duration(float64(base)*1.25)
		if d1 < lo || d1 > hi {
			t.Fatalf("Delay(seed, %d) = %s outside jitter bounds [%s, %s]", k, d1, lo, hi)
		}
	}
}

func TestRepairSeedSeparatesPublications(t *testing.T) {
	seen := map[uint64]string{}
	for node := int32(0); node < 8; node++ {
		for seq := uint32(0); seq < 8; seq++ {
			s := RepairSeed(99, node, seq)
			if prev, dup := seen[s]; dup {
				t.Fatalf("RepairSeed collision: (%d,%d) and %s", node, seq, prev)
			}
			seen[s] = "" // value unused beyond existence
		}
	}
}

func TestTraceStringPinned(t *testing.T) {
	// Golden trace: the exact retry timeline for this (seed, node, seq).
	// Any change to the backoff math or seed derivation shows up here.
	b := Backoff{Base: 15 * time.Millisecond, Max: 150 * time.Millisecond, Budget: 8}
	const want = "retry  0 after 14.599328ms\n" +
		"retry  1 after 28.017362ms\n" +
		"retry  2 after 64.950949ms\n" +
		"retry  3 after 125.148276ms\n" +
		"retry  4 after 184.468584ms\n" +
		"retry  5 after 143.960192ms\n" +
		"retry  6 after 163.26643ms\n" +
		"retry  7 after 175.659042ms\n"
	if got := b.TraceString(RepairSeed(21, 7, 3)); got != want {
		t.Fatalf("pinned backoff trace changed:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestFlappingLinkNeverDies drives the detector through a suspect→alive
// flap cycle: a link that keeps answering every other probe oscillates
// between alive and suspect but can never be declared dead, no matter
// how long the flapping lasts — only an unbroken DeadAfter streak (or a
// collapsed CMA) kills a link. This bounds the damage of asymmetric or
// lossy paths: flapping costs relay preference, not membership.
func TestFlappingLinkNeverDies(t *testing.T) {
	d := DefaultFailureDetector()
	type link struct {
		misses  int
		samples int
		hits    int
	}
	l := link{}
	observe := func(online bool) {
		l.samples++
		if online {
			l.hits++
			l.misses = 0
		} else {
			l.misses++
		}
	}
	cma := func() float64 { return float64(l.hits) / float64(l.samples) }

	worst := LinkAlive
	for round := 0; round < 200; round++ {
		// miss, miss (→ suspect), answer, answer (→ alive): a 50%-lossy
		// flap. The streak never reaches DeadAfter and the CMA holds at
		// 0.5 — above the dead-early line — so the link must survive.
		observe(false)
		observe(false)
		if got := d.Classify(l.misses, l.samples, cma()); got == LinkDead {
			t.Fatalf("round %d: flapping link declared dead at streak %d cma %.2f", round, l.misses, cma())
		} else if got == LinkSuspect {
			worst = LinkSuspect
		}
		observe(true)
		observe(true)
		if got := d.Classify(l.misses, l.samples, cma()); got != LinkAlive {
			t.Fatalf("round %d: link answering its probe classified %v, want alive", round, got)
		}
	}
	if worst != LinkSuspect {
		t.Fatalf("two-miss streaks never reached suspect — flap cycle not exercised")
	}
}

// TestSuspectRecoveryIsImmediate pins the §III-F asymmetry: demotion to
// suspect takes SuspectAfter consecutive misses, but promotion back to
// alive takes exactly one answered probe — recovery must not carry
// hysteresis or a reformed link would flap in the lists forever.
func TestSuspectRecoveryIsImmediate(t *testing.T) {
	d := DefaultFailureDetector()
	if d.Classify(d.SuspectAfter, 10, 0.9) != LinkSuspect {
		t.Fatalf("SuspectAfter misses should demote to suspect")
	}
	if got := d.Classify(0, 10, 0.9); got != LinkAlive {
		t.Fatalf("one answered probe should restore alive, got %v", got)
	}
	// Even with the CMA dragged below the suspect line, a responsive link
	// stays alive: history alone never demotes (streak 0 short-circuits).
	if got := d.Classify(0, 100, 0.05); got != LinkAlive {
		t.Fatalf("responsive link with bad history classified %v, want alive", got)
	}
}
