package selectcore

// This file holds the PeerSwap-style gossip peer sampler shared by the
// offline simulator (internal/selectsys) and the live runtime
// (internal/node). The previous sampler drew exchange partners with
// replacement from the node's general-purpose RNG — a stream that is
// also advanced by unrelated message handling (join placement draws,
// random-walk escapes), so an attacker who controls when a victim
// processes messages also steers *which friend the victim gossips with
// next*, and sampling with replacement leaves unbounded gaps during
// which a friend's tie strength goes stale.
//
// The swap sampler closes both holes. It walks a seeded permutation of
// the fixed friend pool by an incremental Fisher–Yates swap: at each
// step the cursor element is swapped with a uniformly drawn element of
// the un-emitted suffix and emitted. One full round therefore emits
// every friend exactly once (bounded inter-sample gap: at most
// 2·len(pool)−1 draws between two samples of the same friend), each
// round is an independent uniform permutation, and the stream is a pure
// function of (pool, seed) — private state no inbound traffic can
// advance. This is the randomness contract of PeerSwap (arXiv:2408.03829)
// scoped to a static pool: uniform, unbiased, and not attacker-steerable.

// Sampler is a swap-based peer sampler over a fixed pool. The zero value
// is empty; build one with NewSampler. Not safe for concurrent use — the
// runtime drives it under the node mutex, the simulator is single-
// threaded per shard.
type Sampler struct {
	pool   []int32
	perm   []int
	cursor int
	rounds int
	state  uint64
}

// NewSampler builds a sampler over pool (copied; the caller may reuse
// the slice). Same (pool, seed) ⇒ same sample stream.
func NewSampler(pool []int32, seed uint64) *Sampler {
	s := &Sampler{
		pool:  append([]int32(nil), pool...),
		perm:  make([]int, len(pool)),
		state: splitmix64(seed ^ 0x5EED5A4D0C9B17F1),
	}
	for i := range s.perm {
		s.perm[i] = i
	}
	return s
}

// Next emits the next sample. ok is false only for an empty pool.
func (s *Sampler) Next() (peer int32, ok bool) {
	n := len(s.pool)
	if n == 0 {
		return -1, false
	}
	// Swap step: the cursor slot trades places with a uniform draw from
	// the remaining suffix, then the cursor slot is emitted. Incremental
	// Fisher–Yates — by round end the permutation is uniform.
	j := s.cursor + int(s.next()%uint64(n-s.cursor))
	s.perm[s.cursor], s.perm[j] = s.perm[j], s.perm[s.cursor]
	peer = s.pool[s.perm[s.cursor]]
	s.cursor++
	if s.cursor == n {
		s.cursor = 0
		s.rounds++
	}
	return peer, true
}

// Len is the pool size.
func (s *Sampler) Len() int { return len(s.pool) }

// Rounds is the number of completed full passes — every pool member has
// been emitted exactly Rounds or Rounds+1 times.
func (s *Sampler) Rounds() int { return s.rounds }

// next is a counter-mode splitmix64 stream: state advances by the golden
// gamma and is finalized per draw, so draws are independent of pool size.
func (s *Sampler) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return splitmix64(s.state)
}

// SamplerSeed derives the per-peer sampler stream from the cluster seed,
// so two nodes (or a node and its simulator twin) never share a stream.
func SamplerSeed(seed int64, self int32) uint64 {
	z := uint64(seed)
	z = splitmix64(z + 0xA5A5A5A5A5A5A5A5)
	z = splitmix64(z + 0x9E3779B97F4A7C15*uint64(uint32(self)+1))
	return z
}
