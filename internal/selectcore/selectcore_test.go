package selectcore

import (
	"math"
	"math/rand"
	"testing"

	"selectps/internal/lsh"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/socialgraph"
)

func TestStrengthFromCounts(t *testing.T) {
	// No common friends: the friendship edge alone is still worth 1/(union+1).
	if got := StrengthFromCounts(3, 4, 0); got != 1.0/8.0 {
		t.Fatalf("no-common strength = %v, want 1/8", got)
	}
	// Symmetric in the two degrees.
	if StrengthFromCounts(3, 7, 2) != StrengthFromCounts(7, 3, 2) {
		t.Fatal("strength not symmetric")
	}
	// More common friends → strictly stronger tie.
	if !(StrengthFromCounts(5, 5, 3) > StrengthFromCounts(5, 5, 1)) {
		t.Fatal("strength not monotone in common count")
	}
	// Degenerate inputs do not divide by zero.
	if got := StrengthFromCounts(0, 0, 0); got != 0 {
		t.Fatalf("degenerate strength = %v, want 0", got)
	}
}

func TestStrengthMatchesGraphCounts(t *testing.T) {
	b := socialgraph.NewBuilder(5)
	for _, e := range [][2]socialgraph.NodeID{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	for p := overlay.PeerID(0); p < 5; p++ {
		row := StrengthRow(g, p, nil)
		for i, v := range g.Neighbors(p) {
			want := StrengthFromCounts(g.Degree(p), g.Degree(v), g.CommonNeighbors(p, v))
			if row[i] != want || Strength(g, p, v) != want {
				t.Fatalf("strength(%d,%d) mismatch: row=%v direct=%v want=%v",
					p, v, row[i], Strength(g, p, v), want)
			}
		}
	}
}

func TestTop2(t *testing.T) {
	friends := []overlay.PeerID{10, 20, 30, 40}
	best, second := Top2(friends, []float64{0.1, 0.9, 0.4, 0.2})
	if best != 20 || second != 30 {
		t.Fatalf("Top2 = (%d,%d), want (20,30)", best, second)
	}
	// Negative strengths mark friends not yet learned; they are skipped.
	best, second = Top2(friends, []float64{-1, 0.9, -1, -1})
	if best != 20 || second != -1 {
		t.Fatalf("Top2 with unknowns = (%d,%d), want (20,-1)", best, second)
	}
	best, second = Top2(nil, nil)
	if best != -1 || second != -1 {
		t.Fatalf("Top2 empty = (%d,%d), want (-1,-1)", best, second)
	}
}

func TestPlacement(t *testing.T) {
	inv := ring.ID(0.25)
	// The invitee lands inside the inviter's clockwise arc.
	pos := PlaceJoin(inv, 0.1, 0.5, 0.5)
	if d := ring.Clockwise(inv, pos); d <= 0 || d >= 0.1 {
		t.Fatalf("PlaceJoin landed outside the free arc: clockwise=%v", d)
	}
	// Zero arc falls back to the caller's gap.
	pos = PlaceJoin(inv, 0, 0.2, 0)
	if d := ring.Clockwise(inv, pos); math.Abs(d-0.06) > 1e-12 {
		t.Fatalf("PlaceJoin fallback arc wrong: clockwise=%v want 0.06", d)
	}
	if !PlaceIndependent(42).Valid() {
		t.Fatal("PlaceIndependent out of ring range")
	}
	if PlaceIndependent(42) != ring.HashUint64(42) {
		t.Fatal("PlaceIndependent must be the uniform identity hash")
	}
	mid := ReassignTarget(0.9, 0.1)
	if mid != ring.Midpoint(0.9, 0.1) {
		t.Fatalf("ReassignTarget = %v, want ring midpoint", mid)
	}
}

func TestIndexerGroupsIdenticalBitmaps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := lsh.NewHasher(8, 4, 0, rng)
	var x Indexer
	x.Begin(h, 8)
	// Two friends with identical link bitmaps must collide in one bucket;
	// Conn counts distinct coordinates only.
	b0 := x.Add(0, []int{0, 3, 5})
	b1 := x.Add(1, []int{1, 3, 5, 3})
	b2 := x.Add(2, []int{1, 3, 5})
	if b1 != b2 {
		t.Fatalf("identical bitmaps landed in different buckets: %d vs %d", b1, b2)
	}
	if x.Conn[1] != 3 || x.Conn[2] != 3 {
		t.Fatalf("Conn with duplicate coords = %v, want 3s", x.Conn[1:3])
	}
	_ = b0
	total := 0
	for _, b := range x.Buckets {
		total += len(b)
	}
	if total != 3 {
		t.Fatalf("indexed %d friends, want 3", total)
	}
	// Begin resets for the next peer: stale buckets must not leak.
	x.Begin(h, 4)
	for b, members := range x.Buckets {
		if len(members) != 0 {
			t.Fatalf("bucket %d not reset: %v", b, members)
		}
	}
}

func TestPick(t *testing.T) {
	conn := []int{1, 5, 5, 2}
	bwv := []float64{9, 1, 3, 9}
	bw := func(i int32) float64 { return bwv[i] }
	// Highest conn wins; among equals, higher bandwidth.
	best, scratch := Pick([]int32{0, 1, 2, 3}, conn, bw, false, nil)
	if best != 2 {
		t.Fatalf("Pick = %d, want 2 (max conn, better bw)", best)
	}
	// Runner-up upgrade: leader on conn but starved on bandwidth loses to
	// the second-ranked candidate with strictly better bandwidth.
	best, scratch = Pick([]int32{1, 3}, conn, bw, false, scratch)
	if best != 3 {
		t.Fatalf("Pick = %d, want runner-up 3", best)
	}
	// Ablation: ignoreBandwidth keeps the conn leader.
	best, _ = Pick([]int32{1, 3}, conn, bw, true, scratch)
	if best != 1 {
		t.Fatalf("Pick(ignoreBandwidth) = %d, want 1", best)
	}
}
