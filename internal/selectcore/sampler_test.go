package selectcore

import (
	"math"
	"testing"
)

// TestSamplerRoundCoverage pins the bounded-gap guarantee: every pool
// member is emitted exactly once per round, for many rounds, across pool
// sizes including the degenerate ones.
func TestSamplerRoundCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 257} {
		pool := make([]int32, n)
		for i := range pool {
			pool[i] = int32(i * 3)
		}
		s := NewSampler(pool, 42)
		for round := 0; round < 20; round++ {
			seen := make(map[int32]int, n)
			for i := 0; i < n; i++ {
				p, ok := s.Next()
				if !ok {
					t.Fatalf("n=%d: Next failed mid-round", n)
				}
				seen[p]++
			}
			for _, p := range pool {
				if seen[p] != 1 {
					t.Fatalf("n=%d round %d: peer %d emitted %d times", n, round, p, seen[p])
				}
			}
		}
		if s.Rounds() != 20 {
			t.Fatalf("n=%d: Rounds() = %d, want 20", n, s.Rounds())
		}
	}
}

// TestSamplerDeterministic pins the purity contract: same (pool, seed) ⇒
// identical stream; different seed ⇒ a different stream.
func TestSamplerDeterministic(t *testing.T) {
	pool := []int32{5, 9, 13, 21, 34, 55}
	a := NewSampler(pool, 7)
	b := NewSampler(pool, 7)
	c := NewSampler(pool, 8)
	var diverged bool
	for i := 0; i < 600; i++ {
		pa, _ := a.Next()
		pb, _ := b.Next()
		pc, _ := c.Next()
		if pa != pb {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, pa, pb)
		}
		if pa != pc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical 600-draw streams")
	}
}

// TestSamplerEmpty asserts the empty pool degrades to (ok=false) rather
// than panicking — a node with no social friends simply never gossips.
func TestSamplerEmpty(t *testing.T) {
	s := NewSampler(nil, 1)
	if _, ok := s.Next(); ok {
		t.Fatal("empty pool produced a sample")
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d", s.Len())
	}
}

// TestSamplerUniformPairs is the randomness-guarantee property: over many
// rounds, the frequency of each ordered (previous, current) transition is
// close to uniform — the swap walk does not develop a fixed cycle the way
// a naive rotation would, and no pool member is favored as a successor of
// another. Tolerance is loose (±40% of expected) but a rotation or a
// stuck permutation fails it by orders of magnitude.
func TestSamplerUniformPairs(t *testing.T) {
	const n, rounds = 16, 4000
	pool := make([]int32, n)
	for i := range pool {
		pool[i] = int32(i)
	}
	s := NewSampler(pool, 99)
	pair := make(map[[2]int32]int)
	prev, _ := s.Next()
	draws := 0
	for draws < n*rounds {
		cur, _ := s.Next()
		pair[[2]int32{prev, cur}]++
		prev = cur
		draws++
	}
	// Ordered pairs with distinct elements: n*(n-1) of them. Self-pairs
	// only occur across a round boundary and are rare; ignore them.
	expect := float64(draws) / float64(n*(n-1))
	for a := int32(0); a < n; a++ {
		for b := int32(0); b < n; b++ {
			if a == b {
				continue
			}
			got := float64(pair[[2]int32{a, b}])
			if math.Abs(got-expect) > 0.4*expect {
				t.Fatalf("transition %d→%d seen %.0f times, expected ~%.0f", a, b, got, expect)
			}
		}
	}
}

// TestSamplerSeedDerivation pins that per-peer streams from the same
// cluster seed are distinct.
func TestSamplerSeedDerivation(t *testing.T) {
	if SamplerSeed(1, 0) == SamplerSeed(1, 1) {
		t.Fatal("adjacent peers derived the same sampler seed")
	}
	if SamplerSeed(1, 3) == SamplerSeed(2, 3) {
		t.Fatal("different cluster seeds derived the same sampler seed")
	}
}
