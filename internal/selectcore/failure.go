package selectcore

import (
	"fmt"
	"strings"
	"time"
)

// This file holds the self-healing decision rules shared by the offline
// simulator (internal/selectsys) and the live runtime (internal/node):
// the accrual failure detector that promotes heartbeat-CMA evidence into
// a suspect → dead link lifecycle (§III-F), and the seeded
// exponential-backoff-with-jitter schedule behind publisher-driven
// delivery repair and join-request resends. Both are pure functions of
// their inputs, so the same evidence always yields the same verdict and
// the same (seed, attempt) always yields the same delay — the
// reproducibility contract of the repair engine (DESIGN.md §9).

// LinkState is the failure detector's verdict on one link.
type LinkState uint8

// Link lifecycle states.
const (
	// LinkAlive: the peer answers probes (or has no history yet).
	LinkAlive LinkState = iota
	// LinkSuspect: recent misses, but the availability history says this
	// may be a temporal failure — keep the link, avoid it as a relay.
	LinkSuspect
	// LinkDead: the accrued evidence says the peer is gone — evict the
	// link and repair (LSH-bucket refill for long links, successor-list
	// splice for ring neighbors).
	LinkDead
)

// String implements fmt.Stringer.
func (s LinkState) String() string {
	switch s {
	case LinkAlive:
		return "alive"
	case LinkSuspect:
		return "suspect"
	case LinkDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// FailureDetector turns accrued heartbeat evidence — the consecutive-miss
// streak and the long-run CMA availability (§III-F) — into a link state.
// The zero value is not ready; use DefaultFailureDetector or fill every
// field.
type FailureDetector struct {
	// SuspectAfter is the consecutive-miss streak that makes a link
	// suspect (avoided as a forwarding relay, still probed).
	SuspectAfter int
	// DeadAfter is the consecutive-miss streak that declares a link dead
	// regardless of history: even a good peer that stops answering this
	// long has effectively churned out.
	DeadAfter int
	// DeadCMA is the availability below which a currently-missing peer is
	// declared dead early (a mostly-offline peer does not get DeadAfter
	// chances) — the simulator's CMAThreshold replacement rule.
	DeadCMA float64
	// MinSamples is how much CMA history the DeadCMA rule needs before it
	// may fire; young links are judged on streaks alone.
	MinSamples int
}

// DefaultFailureDetector matches the repo's heartbeat cadence: suspect at
// 2 consecutive misses, dead at 4, early-dead below 0.25 availability
// once 4 samples accrued.
func DefaultFailureDetector() FailureDetector {
	return FailureDetector{SuspectAfter: 2, DeadAfter: 4, DeadCMA: 0.25, MinSamples: 4}
}

// filled returns d with zero fields replaced by defaults, so a partially
// configured detector behaves sanely.
func (d FailureDetector) filled() FailureDetector {
	def := DefaultFailureDetector()
	if d.SuspectAfter <= 0 {
		d.SuspectAfter = def.SuspectAfter
	}
	if d.DeadAfter <= 0 {
		d.DeadAfter = def.DeadAfter
	}
	if d.DeadCMA <= 0 {
		d.DeadCMA = def.DeadCMA
	}
	if d.MinSamples <= 0 {
		d.MinSamples = def.MinSamples
	}
	return d
}

// Classify is the accrual verdict: consecMisses is the current unanswered
// probe streak, samples/cma the link's availability history. A peer that
// is answering (streak 0) is always alive — history alone never kills a
// responsive link (§III-F keeps temporal failures).
func (d FailureDetector) Classify(consecMisses, samples int, cma float64) LinkState {
	d = d.filled()
	if consecMisses <= 0 {
		return LinkAlive
	}
	if consecMisses >= d.DeadAfter {
		return LinkDead
	}
	if samples >= d.MinSamples && cma < d.DeadCMA {
		// Mostly-offline history plus a current miss: dead early.
		return LinkDead
	}
	if consecMisses >= d.SuspectAfter || (samples >= d.MinSamples && cma < 0.5) {
		return LinkSuspect
	}
	return LinkAlive
}

// KeepOnFailure is the simulator-facing form of the same rule (§III-F
// "do not create a chain of reassignments"): an unresponsive link is kept
// when its history is good enough that the failure reads as temporal.
// Equivalent to Classify with a one-miss streak not reaching LinkDead.
func (d FailureDetector) KeepOnFailure(samples int, cma float64) bool {
	return d.Classify(1, samples, cma) != LinkDead
}

// Backoff is the deterministic exponential-backoff-with-jitter schedule
// of the delivery-repair engine: attempt k waits min(Base<<k, Max),
// jittered ±25% by a splitmix64 stream of (seed, attempt). Budget bounds
// attempts before the publication is dead-lettered.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Budget int
}

// Delay returns the wait before retry attempt k (k = 0 is the first
// retry after the initial send). Pure: same (b, seed, attempt) ⇒ same
// delay, regardless of wall clock or call order.
func (b Backoff) Delay(seed uint64, attempt int) time.Duration {
	d := b.Base
	if d <= 0 {
		d = 15 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 10 * d
	}
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// ±25% jitter from a splitmix64 draw of (seed, attempt): u in [0,1),
	// delay scaled by (0.75 + 0.5u). Integer math keeps it exact across
	// platforms.
	u := splitmix64(seed + 0x9E3779B97F4A7C15*uint64(attempt+1))
	frac := u >> 11 // 53 significant bits
	scaled := float64(d) * (0.75 + 0.5*float64(frac)/(1<<53))
	return time.Duration(scaled)
}

// Schedule renders the full retry schedule for one (seed) stream: the
// Budget delays attempt by attempt. This is the byte-identical repair
// trace the acceptance tests pin — two runs with the same seed retry on
// exactly this timeline.
func (b Backoff) Schedule(seed uint64) []time.Duration {
	n := b.Budget
	if n <= 0 {
		n = 12
	}
	out := make([]time.Duration, n)
	for k := range out {
		out[k] = b.Delay(seed, k)
	}
	return out
}

// TraceString is the canonical rendering of Schedule, for diffing repair
// timelines across runs.
func (b Backoff) TraceString(seed uint64) string {
	var sb strings.Builder
	for k, d := range b.Schedule(seed) {
		fmt.Fprintf(&sb, "retry %2d after %s\n", k, d)
	}
	return sb.String()
}

// RepairSeed derives the per-publication backoff stream from the cluster
// seed and the publication id (node, seq) — the "(seeded, deterministic
// per (node, seq))" contract. splitmix64 separates nearby inputs.
func RepairSeed(seed int64, node int32, seq uint32) uint64 {
	z := uint64(seed)
	z = splitmix64(z + 0x9E3779B97F4A7C15*uint64(uint32(node)+1))
	z = splitmix64(z + 0xBF58476D1CE4E5B9*uint64(seq+1))
	return z
}

// splitmix64 is the finalizer used across the repo for seed derivation.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
