package selectcore

import (
	"sort"

	"selectps/internal/bitset"
	"selectps/internal/lsh"
)

// Indexer is the Algorithm-5 LSH view of one peer's neighborhood: each
// friend's friendship bitmap (which members of C_p that friend is
// long-linked to, plus its own self bit) is hashed into one of the K
// buckets, and its popcount is recorded as the friend's connection count
// (Algorithm 6's input). The zero value is not usable; call NewIndexer.
//
// The simulator rebuilds the index from direct reads of every friend's
// long-link set; the live runtime rebuilds it from the friendship bitmaps
// carried by Algorithm-4 exchange replies. Both feed the same coordinates
// into Add, so a bucket assignment live is the bucket assignment the
// simulator would compute from the same knowledge.
type Indexer struct {
	h  *lsh.Hasher
	bm *bitset.Set

	// Buckets holds friend indices (into C_p) per LSH bucket; Conn[i] is
	// friend i's connection count (bitmap popcount).
	Buckets [][]int32
	Conn    []int
}

// Begin resets the index for a pass over nFriends friends under hasher h
// (whose dimension must be nFriends). Previously allocated buckets and
// scratch are reused, so one Indexer serves every peer of an overlay in
// turn with zero steady-state allocations.
func (x *Indexer) Begin(h *lsh.Hasher, nFriends int) {
	x.h = h
	nb := x.h.NumBuckets()
	if cap(x.Buckets) < nb {
		x.Buckets = make([][]int32, nb)
	}
	x.Buckets = x.Buckets[:nb]
	for b := range x.Buckets {
		x.Buckets[b] = x.Buckets[b][:0]
	}
	if cap(x.Conn) < nFriends {
		x.Conn = make([]int, nFriends)
	}
	x.Conn = x.Conn[:nFriends]
	if x.bm == nil {
		x.bm = bitset.New(nFriends)
	} else {
		x.bm.Reshape(nFriends)
	}
}

// Add indexes friend i (an index into the sorted C_p) whose friendship
// bitmap has exactly the given coordinates set. Coordinates must include
// the friend's own self bit (i): a friend trivially reaches itself, and
// without the self bit every first-round bitmap would be all-zero,
// hashing the whole neighborhood into a single bucket. Coordinates may
// contain duplicates; they set the same bit. It returns the bucket the
// friend landed in.
func (x *Indexer) Add(i int32, coords []int) int {
	set := 0
	for _, j := range coords {
		if !x.bm.Test(j) {
			x.bm.Set(j)
			set++
		}
	}
	x.Conn[i] = set
	b := x.h.Bucket(x.bm)
	x.Buckets[b] = append(x.Buckets[b], i)
	for _, j := range coords {
		if x.bm.Test(j) {
			x.bm.Clear(j)
		}
	}
	return b
}

// Pick is Algorithm 6 over friend indices: sort the candidate bucket by
// connection count (descending — "the maximum number of social
// connections"), break ties by bandwidth (descending) then index
// (ascending), and when the runner-up has strictly better bandwidth than
// the leader, prefer the runner-up ("enough bandwidth to serve the
// connections"). ignoreBandwidth disables the runner-up upgrade (the
// Algorithm-6 ablation). conn is the Indexer's Conn slice; bw maps a
// friend index to its peer's modeled upload bandwidth. scratch is reused
// for the sort and returned for the caller to keep.
func Pick(cand []int32, conn []int, bw func(i int32) float64, ignoreBandwidth bool, scratch []int32) (best int32, keep []int32) {
	sorted := append(scratch[:0], cand...)
	sort.Slice(sorted, func(a, b int) bool {
		i, j := sorted[a], sorted[b]
		if conn[i] != conn[j] {
			return conn[i] > conn[j]
		}
		bi, bj := bw(i), bw(j)
		if bi != bj {
			return bi > bj
		}
		return i < j
	})
	best = sorted[0]
	if !ignoreBandwidth && len(sorted) > 1 && bw(sorted[0]) < bw(sorted[1]) {
		best = sorted[1]
	}
	return best, sorted[:0]
}
