package selectcore

import (
	"sort"

	"selectps/internal/overlay"
	"selectps/internal/ring"
)

// RingMember pairs a peer with its current ring identifier — the input
// row both the simulator (direct overlay reads) and the runtime (the
// converged position registry) feed to the inbox placement rule.
type RingMember struct {
	ID  overlay.PeerID
	Pos ring.ID
}

// InboxReplicas is the replica-placement rule of the durable delivery
// tier (DESIGN.md §12): a subscriber's inbox lives on the first r live
// peers clockwise from its ring position — the same r-deep successor
// neighborhood the ring-splice repair maintains, so replica identity
// needs no extra state and every peer that can compute the ring can
// compute the replica set. The subscriber itself is excluded (it cannot
// hold its own offline inbox); ties on a shared position break by peer
// id so every caller derives the identical set.
func InboxReplicas(sub overlay.PeerID, subPos ring.ID, members []RingMember, live func(overlay.PeerID) bool, r int) []overlay.PeerID {
	return clockwiseSuccessors(subPos, sub, members, live, r)
}

// LeaseOrder is the claim-scheduling rule: the order in which a rejoined
// subscriber leases its replicas for replay, one at a time. The order is
// a splitmix64-keyed ranking of (sub, epoch, replica) — deterministic
// for a given claim cycle (a crash-and-retry replays the identical
// hand-off sequence, which the fault tests pin), yet varying with the
// epoch so repeated cycles spread the first-lease load across the
// replica set instead of hammering the nearest successor every time.
// Ties (a rank collision) break by peer id. The input slice is not
// mutated.
func LeaseOrder(sub overlay.PeerID, epoch uint32, replicas []overlay.PeerID) []overlay.PeerID {
	out := append([]overlay.PeerID(nil), replicas...)
	rank := func(p overlay.PeerID) uint64 {
		z := splitmix64(0xA5B35705 + 0x9E3779B97F4A7C15*uint64(uint32(sub)+1))
		z = splitmix64(z + 0xBF58476D1CE4E5B9*uint64(epoch+1))
		return splitmix64(z + 0x94D049BB133111EB*uint64(uint32(p)+1))
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i]), rank(out[j])
		if ri != rj {
			return ri < rj
		}
		return out[i] < out[j]
	})
	return out
}
