package selectcore

import (
	"reflect"
	"testing"

	"selectps/internal/overlay"
)

func TestTopicPosStableAndSpread(t *testing.T) {
	if TopicPos("#go") != TopicPos("#go") {
		t.Fatal("TopicPos is not a pure function of the name")
	}
	// Distinct names should not pile onto one position (the rule is a
	// hash; exact values are pinned only by stability, not by content).
	seen := map[float64]bool{}
	for _, name := range []string{"#go", "#news", "#music", "group:42", "page:anna"} {
		seen[float64(TopicPos(name))] = true
	}
	if len(seen) < 4 {
		t.Fatalf("topic positions collapse: %v", seen)
	}
}

func TestRendezvousClockwiseOrder(t *testing.T) {
	// Peers 0..4 at 0.0, 0.2, 0.4, 0.6, 0.8; a topic at 0.45 rendezvouses
	// on the first r live clockwise successors: 3 (0.6), 4 (0.8), 0 (0.0).
	members := ringAt(0.0, 0.2, 0.4, 0.6, 0.8)
	got := Rendezvous(0.45, members, nil, 3)
	want := []overlay.PeerID{3, 4, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rendezvous = %v, want %v", got, want)
	}
	if r := Rendezvous(0.45, members, nil, 0); r != nil {
		t.Fatalf("r=0 returned %v", r)
	}
}

func TestRendezvousSkipsDeadAndReHomes(t *testing.T) {
	members := ringAt(0.0, 0.2, 0.4, 0.6, 0.8)
	alive := Rendezvous(0.45, members, nil, 2) // {3, 4}
	// The primary dies: the accrual detector's liveness filter re-homes
	// the topic one successor clockwise — the old standby is promoted and
	// a fresh standby joins the set.
	live := func(p overlay.PeerID) bool { return p != alive[0] }
	got := Rendezvous(0.45, members, live, 2)
	want := []overlay.PeerID{4, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("re-homed rendezvous = %v, want %v", got, want)
	}
}

func TestRendezvousDeterministicAcrossCallers(t *testing.T) {
	// Publishers, subscribers and standbys each compute placement
	// independently; input order and position ties must not diverge them.
	members := []RingMember{{3, 0.4}, {2, 0.4}, {0, 0.1}, {4, 0.7}}
	shuffled := []RingMember{{4, 0.7}, {0, 0.1}, {2, 0.4}, {3, 0.4}}
	a := Rendezvous(0.2, members, nil, 3)
	b := Rendezvous(0.2, shuffled, nil, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("order-dependent rendezvous: %v vs %v", a, b)
	}
	if a[0] != 2 || a[1] != 3 {
		t.Fatalf("position tie must break by id: %v", a)
	}
}

// unrollTree recurses the local TreeBranches rule the way the runtime
// does (each child forwards its carried subtree) and returns every peer
// reached plus the tree depth.
func unrollTree(t *testing.T, subs []overlay.PeerID, fanout int) (map[overlay.PeerID]int, int) {
	t.Helper()
	reached := map[overlay.PeerID]int{}
	depth := 0
	var walk func(level int, subtree []overlay.PeerID)
	walk = func(level int, subtree []overlay.PeerID) {
		if level > depth {
			depth = level
		}
		for _, branch := range TreeBranches(subtree, fanout) {
			if len(branch) == 0 {
				t.Fatal("empty branch")
			}
			reached[branch[0]]++
			walk(level+1, branch[1:])
		}
	}
	walk(0, subs)
	return reached, depth
}

func TestTreeBranchesCoverEverySubscriberOnce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 63, 200} {
		subs := make([]overlay.PeerID, n)
		for i := range subs {
			subs[i] = overlay.PeerID(i * 3)
		}
		reached, depth := unrollTree(t, subs, 4)
		if len(reached) != n {
			t.Fatalf("n=%d: tree reached %d subscribers", n, len(reached))
		}
		for p, c := range reached {
			if c != 1 {
				t.Fatalf("n=%d: subscriber %d received %d tree copies", n, p, c)
			}
		}
		// Complete fanout-ary tree: depth stays logarithmic.
		bound := 1
		for d := 0; bound < n; d++ {
			bound *= 4
			if d > 20 {
				t.Fatal("runaway bound")
			}
		}
		if n > 1 && depth > 2*log4ceil(n)+1 {
			t.Fatalf("n=%d: depth %d exceeds logarithmic bound", n, depth)
		}
	}
}

func log4ceil(n int) int {
	d, c := 0, 1
	for c < n {
		c *= 4
		d++
	}
	return d
}

func TestTreeBranchesBalanceAndBounds(t *testing.T) {
	subs := []overlay.PeerID{9, 1, 5, 3, 7, 11, 2, 8, 6}
	branches := TreeBranches(subs, 4)
	if len(branches) > 4 {
		t.Fatalf("fanout exceeded: %d branches", len(branches))
	}
	min, max := len(subs), 0
	for _, b := range branches {
		if len(b) < min {
			min = len(b)
		}
		if len(b) > max {
			max = len(b)
		}
	}
	if max-min > 1 {
		t.Fatalf("branch sizes unbalanced: min %d max %d", min, max)
	}
	// Input order must not matter and the input must not be mutated.
	orig := append([]overlay.PeerID(nil), subs...)
	again := TreeBranches([]overlay.PeerID{11, 8, 7, 6, 5, 3, 2, 1, 9}, 4)
	if !reflect.DeepEqual(branches, again) {
		t.Fatalf("order-dependent tree: %v vs %v", branches, again)
	}
	if !reflect.DeepEqual(subs, orig) {
		t.Fatalf("input mutated: %v", subs)
	}
}

func TestTreeBranchesEdgeCases(t *testing.T) {
	if b := TreeBranches(nil, 4); b != nil {
		t.Fatalf("empty subscriber set produced branches: %v", b)
	}
	// Duplicate registrations collapse — a double-registered subscriber
	// must not become its own descendant.
	reached, _ := unrollTree(t, []overlay.PeerID{5, 5, 5, 2, 2}, 2)
	if len(reached) != 2 || reached[5] != 1 || reached[2] != 1 {
		t.Fatalf("duplicates not collapsed: %v", reached)
	}
	// fanout < 1 degrades to a chain, still covering everyone.
	reached, depth := unrollTree(t, []overlay.PeerID{1, 2, 3, 4}, 0)
	if len(reached) != 4 {
		t.Fatalf("chain fanout lost subscribers: %v", reached)
	}
	if depth != 4 {
		t.Fatalf("fanout<1 should chain: depth %d", depth)
	}
}
