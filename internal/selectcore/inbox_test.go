package selectcore

import (
	"reflect"
	"testing"

	"selectps/internal/overlay"
	"selectps/internal/ring"
)

func ringAt(ids ...float64) []RingMember {
	out := make([]RingMember, len(ids))
	for i, p := range ids {
		out[i] = RingMember{ID: overlay.PeerID(i), Pos: ring.ID(p)}
	}
	return out
}

func TestInboxReplicasClockwiseOrder(t *testing.T) {
	// Peers 0..4 at 0.0, 0.2, 0.4, 0.6, 0.8; subscriber is peer 1 at 0.2.
	members := ringAt(0.0, 0.2, 0.4, 0.6, 0.8)
	got := InboxReplicas(1, 0.2, members, nil, 3)
	want := []overlay.PeerID{2, 3, 4} // clockwise from 0.2: 0.4, 0.6, 0.8
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replicas = %v, want %v", got, want)
	}
}

func TestInboxReplicasSkipsDeadAndSelf(t *testing.T) {
	members := ringAt(0.0, 0.2, 0.4, 0.6, 0.8)
	live := func(p overlay.PeerID) bool { return p != 2 }
	got := InboxReplicas(1, 0.2, members, live, 2)
	// 2 is dead, 1 is the subscriber: next live clockwise are 3, 4.
	want := []overlay.PeerID{3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replicas = %v, want %v", got, want)
	}
}

func TestInboxReplicasWrapsAndBounds(t *testing.T) {
	members := ringAt(0.1, 0.5, 0.9)
	// Subscriber 2 at 0.9: clockwise wrap puts 0 (0.1) before 1 (0.5).
	got := InboxReplicas(2, 0.9, members, nil, 5)
	want := []overlay.PeerID{0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replicas = %v, want %v", got, want)
	}
	if r := InboxReplicas(2, 0.9, members, nil, 0); r != nil {
		t.Fatalf("r=0 returned %v", r)
	}
}

func TestInboxReplicasDeterministicAcrossCallers(t *testing.T) {
	// Positions colliding on one identifier: the id tiebreak must give
	// every caller (publisher at deposit time, subscriber at claim time)
	// the identical set regardless of input order.
	members := []RingMember{{3, 0.4}, {2, 0.4}, {0, 0.1}, {4, 0.7}}
	shuffled := []RingMember{{4, 0.7}, {0, 0.1}, {2, 0.4}, {3, 0.4}}
	a := InboxReplicas(0, 0.1, members, nil, 3)
	b := InboxReplicas(0, 0.1, shuffled, nil, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("order-dependent replica set: %v vs %v", a, b)
	}
	if a[0] != 2 || a[1] != 3 {
		t.Fatalf("position tie must break by id: %v", a)
	}
}

func TestLeaseOrderDeterministicPermutation(t *testing.T) {
	replicas := []overlay.PeerID{7, 11, 13, 19}
	a := LeaseOrder(5, 1, replicas)
	b := LeaseOrder(5, 1, replicas)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same inputs ordered differently: %v vs %v", a, b)
	}
	// Must be a permutation of the input, input untouched.
	seen := map[overlay.PeerID]bool{}
	for _, p := range a {
		seen[p] = true
	}
	for _, p := range replicas {
		if !seen[p] {
			t.Fatalf("replica %d missing from lease order %v", p, a)
		}
	}
	if !reflect.DeepEqual(replicas, []overlay.PeerID{7, 11, 13, 19}) {
		t.Fatalf("input mutated: %v", replicas)
	}
}

func TestLeaseOrderVariesWithEpoch(t *testing.T) {
	replicas := []overlay.PeerID{1, 2, 3, 4, 5, 6, 7, 8}
	base := LeaseOrder(9, 0, replicas)
	varied := false
	for epoch := uint32(1); epoch < 8; epoch++ {
		if !reflect.DeepEqual(LeaseOrder(9, epoch, replicas), base) {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("lease order never varies with epoch — first replica would absorb every claim")
	}
}
