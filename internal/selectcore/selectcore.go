// Package selectcore holds the SELECT protocol decisions shared between
// the offline construction simulator (internal/selectsys) and the live
// node runtime (internal/node): the symmetric social tie-strength formula
// (§III-A), the Algorithm-1 projection placement for invited and
// independent joins, the Algorithm-2 identifier-reassignment target, the
// Algorithm-5 LSH bucket index over friendship bitmaps, and the
// Algorithm-6 bucket picker.
//
// Both consumers call exactly these functions, so the overlay a cluster
// converges to live is produced by the same decision rules the simulator
// was validated against (DESIGN.md §8) — the difference between the two
// is only *how* each peer learns its inputs (direct graph reads in the
// simulator, Algorithm-3/4 exchange messages live), never *what* it does
// with them.
package selectcore

import (
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/socialgraph"
)

// StrengthFromCounts is the symmetric tie strength of a friendship edge
// given the two degrees and the common-neighbor count |C_p ∩ C_v|:
// common friends over the union of the two neighborhoods, with +1 keeping
// the friendship edge itself worth something even with no common friends.
// Eq. 2's one-sided normalization |C_p∩C_u|/|C_p| would make every
// low-degree peer's strongest friends the global hubs; the symmetric form
// keeps the common-friend signal of §III-A while anchoring peers to their
// own community.
//
// The live runtime evaluates this from the NMutual field of an
// Algorithm-4 exchange reply; the simulator from a direct
// CommonNeighbors query. Same counts, same strength.
func StrengthFromCounts(degP, degV, common int) float64 {
	union := degP + degV - common
	if union <= 0 {
		return 0
	}
	return (float64(common) + 1) / float64(union+1)
}

// Strength evaluates StrengthFromCounts against the graph directly.
func Strength(g *socialgraph.Graph, p, v overlay.PeerID) float64 {
	return StrengthFromCounts(g.Degree(p), g.Degree(v), g.CommonNeighbors(p, v))
}

// StrengthRow fills row[i] with Strength(g, p, C_p[i]) aligned with
// g.Neighbors(p), reusing row when it has capacity. Nil when p has no
// friends.
func StrengthRow(g *socialgraph.Graph, p overlay.PeerID, row []float64) []float64 {
	friends := g.Neighbors(p)
	if len(friends) == 0 {
		return nil
	}
	if cap(row) < len(friends) {
		row = make([]float64, len(friends))
	}
	row = row[:len(friends)]
	for i, v := range friends {
		row[i] = Strength(g, p, v)
	}
	return row
}

// Top2 returns the two friends with the strongest ties (-1 when absent),
// ties broken by list order — the anchor pair of Algorithm 2's "midpoint
// of the two strongest friends". strength is aligned with friends;
// entries with strength < 0 are skipped (the live runtime marks friends
// it has not exchanged with yet that way).
func Top2(friends []overlay.PeerID, strength []float64) (best, second overlay.PeerID) {
	best, second = -1, -1
	var bs, ss float64 = -1, -1
	for i, v := range friends {
		s := strength[i]
		if s < 0 {
			continue
		}
		switch {
		case s > bs:
			second, ss = best, bs
			best, bs = v, s
		case s > ss:
			second, ss = v, s
		}
	}
	return best, second
}

// ReassignTarget is the Algorithm-2 identifier target: the ring midpoint
// of the two strongest friends' positions. With only one known friend the
// target is that friend's neighborhood itself.
func ReassignTarget(a, b ring.ID) ring.ID { return ring.Midpoint(a, b) }

// PlaceJoin is the Algorithm-1 placement of an invited peer: it lands
// inside the inviter's currently free clockwise arc (between the inviter
// and its ring successor), so the invitee becomes the inviter's closest
// ring neighbor and invitation subtrees grow into contiguous regions —
// the Fig. 8 picture of "small groups within regions without losing
// connectivity between regions". (A fixed tiny offset instead would
// collapse the whole network onto the first seed's position.)
//
// gap is the free clockwise arc ring.Clockwise(inviter, successor);
// callers pass fallbackGap (e.g. 1/(members+1)) for the degenerate
// single-member ring where the arc is zero. u ∈ [0,1) is the caller's
// deterministic jitter draw.
func PlaceJoin(inviter ring.ID, gap, fallbackGap, u float64) ring.ID {
	if gap <= 0 {
		gap = fallbackGap
	}
	return ring.Perturb(inviter, gap*(0.3+0.4*u))
}

// PlaceIndependent is the Algorithm-1 placement of a peer subscribing
// independently (no registered friend to invite it): a uniform hash of
// its identity.
func PlaceIndependent(user uint64) ring.ID { return ring.HashUint64(user) }
