package vitis

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
)

func build(t *testing.T, n int, seed int64) *Overlay {
	t.Helper()
	g := datasets.Facebook.Generate(n, seed)
	return New(g, Config{K: 8}, rand.New(rand.NewSource(seed)))
}

func TestConstruction(t *testing.T) {
	o := build(t, 300, 1)
	if o.Name() != "vitis" || o.N() != 300 {
		t.Fatalf("metadata wrong")
	}
	if o.Iterations() < 1 {
		t.Errorf("Iterations = %d, want >= 1", o.Iterations())
	}
	for p := overlay.PeerID(0); p < 300; p++ {
		if len(o.ClusterLinks(p)) > 8 {
			t.Errorf("peer %d has %d cluster links > K", p, len(o.ClusterLinks(p)))
		}
	}
}

func TestClusterLinksShareInterests(t *testing.T) {
	g := datasets.Facebook.Generate(400, 2)
	o := New(g, Config{K: 8}, rand.New(rand.NewSource(2)))
	zeroUtil := 0
	total := 0
	for p := overlay.PeerID(0); p < 400; p++ {
		for _, q := range o.ClusterLinks(p) {
			total++
			if o.utility(p, q) == 0 {
				zeroUtil++
			}
		}
	}
	if total == 0 {
		t.Fatal("no cluster links formed")
	}
	if zeroUtil > 0 {
		t.Errorf("%d of %d cluster links have zero shared interest", zeroUtil, total)
	}
}

func TestRouteTerminatesAndValid(t *testing.T) {
	o := build(t, 300, 3)
	rng := rand.New(rand.NewSource(4))
	okCount := 0
	for i := 0; i < 200; i++ {
		src := overlay.PeerID(rng.Intn(300))
		dst := overlay.PeerID(rng.Intn(300))
		path, ok := o.Route(src, dst)
		if !ok {
			continue
		}
		okCount++
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("bad endpoints %v", path)
		}
	}
	if okCount < 190 {
		t.Errorf("only %d/200 routes succeeded", okCount)
	}
}

func TestSocialPairsRouteShort(t *testing.T) {
	// Socially connected peers should often be 1-2 hops apart via cluster
	// links — much shorter than generic ring routing.
	g := datasets.Facebook.Generate(500, 5)
	o := New(g, Config{K: 8}, rand.New(rand.NewSource(5)))
	rng := rand.New(rand.NewSource(6))
	var social, random float64
	const trials = 200
	for i := 0; i < trials; i++ {
		u, v, _ := g.RandomEdge(rng)
		if p, ok := o.Route(u, v); ok {
			social += float64(p.Hops())
		} else {
			social += 20
		}
		a := overlay.PeerID(rng.Intn(500))
		b := overlay.PeerID(rng.Intn(500))
		if p, ok := o.Route(a, b); ok {
			random += float64(p.Hops())
		} else {
			random += 20
		}
	}
	if social >= random {
		t.Errorf("social pairs (%.1f avg hops) not shorter than random pairs (%.1f)",
			social/trials, random/trials)
	}
}

func TestIterationsDeterministic(t *testing.T) {
	g := datasets.Slashdot.Generate(300, 7)
	a := New(g, Config{K: 6}, rand.New(rand.NewSource(8)))
	b := New(g, Config{K: 6}, rand.New(rand.NewSource(8)))
	if a.Iterations() != b.Iterations() {
		t.Errorf("iterations nondeterministic: %d vs %d", a.Iterations(), b.Iterations())
	}
}

func TestRepairDropsOfflineClusterLinks(t *testing.T) {
	o := build(t, 300, 9)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 60; i++ {
		o.SetOnline(overlay.PeerID(rng.Intn(300)), false)
	}
	o.Repair()
	for p := overlay.PeerID(0); p < 300; p++ {
		if !o.Online(p) {
			continue
		}
		for _, q := range o.ClusterLinks(p) {
			if !o.Online(q) {
				t.Fatalf("peer %d keeps offline cluster link %d after repair", p, q)
			}
		}
	}
}

func TestTinyGraph(t *testing.T) {
	g := datasets.Facebook.Generate(2, 11)
	o := New(g, Config{K: 4}, rand.New(rand.NewSource(11)))
	if o.N() != 2 {
		t.Fatal("wrong size")
	}
	if _, ok := o.Route(0, 1); !ok {
		t.Error("two-peer route failed")
	}
}

func TestHighDegreeBias(t *testing.T) {
	// Incoming cluster-link counts should correlate with social degree:
	// the hotspot behaviour the paper criticizes in Vitis.
	g := datasets.Facebook.Generate(500, 12)
	o := New(g, Config{K: 8}, rand.New(rand.NewSource(12)))
	indeg := make([]int, 500)
	for p := overlay.PeerID(0); p < 500; p++ {
		for _, q := range o.ClusterLinks(p) {
			indeg[q]++
		}
	}
	// Compare mean incoming links of the top-decile social-degree peers vs
	// the bottom half.
	var topSum, topN, botSum, botN float64
	maxDeg := g.MaxDegree()
	for u := 0; u < 500; u++ {
		d := g.Degree(int32(u))
		if d >= maxDeg/2 {
			topSum += float64(indeg[u])
			topN++
		} else if d <= maxDeg/10 {
			botSum += float64(indeg[u])
			botN++
		}
	}
	if topN == 0 || botN == 0 {
		t.Skip("degree distribution too flat for this seed")
	}
	if topSum/topN <= botSum/botN {
		t.Errorf("high-degree peers not hotspots: top=%.1f bot=%.1f", topSum/topN, botSum/botN)
	}
}
