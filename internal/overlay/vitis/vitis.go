// Package vitis implements the Vitis baseline (Rahimian et al. — paper
// ref. [5]): a gossip-based hybrid pub/sub overlay. Peers sit on a ring
// with immutable uniform identifiers and keep three kinds of links:
// short-range ring links, a few harmonic long-range links (the structured
// half of the hybrid), and K cluster links selected by gossip so that peers
// interested in similar topics group together.
//
// In the paper's workload every social user is a topic and subscribers are
// the user's friends, so two peers share interests in proportion to their
// common friends. Vitis's documented weakness — which Fig. 4 shows as load
// imbalance — is that its peer-selection prefers high-social-degree peers:
// the gossip utility here breaks ties toward higher degree on purpose.
//
// Construction is iterative (gossip rounds until no link changes), so the
// overlay implements overlay.Iterative and appears in the Fig. 5
// convergence comparison.
package vitis

import (
	"math"
	"math/rand"
	"sort"

	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/socialgraph"
)

// Config parameterizes construction.
type Config struct {
	// K is the cluster-link budget per peer.
	K int
	// LongLinks is the structured harmonic-link budget (defaults to
	// max(2, K/2) when 0).
	LongLinks int
	// SampleSize is how many random peers the gossip samples per round
	// (default 5 — small samples are what make Vitis converge slowly).
	SampleSize int
	// MaxRounds bounds the gossip (default 64).
	MaxRounds int
}

func (c *Config) fill() {
	if c.LongLinks == 0 {
		c.LongLinks = c.K / 2
		if c.LongLinks < 2 {
			c.LongLinks = 2
		}
	}
	if c.SampleSize == 0 {
		c.SampleSize = 5
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 64
	}
}

// Overlay is a constructed Vitis network.
type Overlay struct {
	*overlay.Base
	g          *socialgraph.Graph
	cfg        Config
	rng        *rand.Rand
	cluster    [][]overlay.PeerID        // cluster links per peer (subset of Links)
	protected  []map[overlay.PeerID]bool // ring + harmonic links never removed
	iterations int
}

// New builds a Vitis overlay for the social graph g, running the gossip to
// convergence. Deterministic in rng.
func New(g *socialgraph.Graph, cfg Config, rng *rand.Rand) *Overlay {
	cfg.fill()
	n := g.NumNodes()
	o := &Overlay{
		Base:    overlay.NewBase("vitis", n),
		g:       g,
		cfg:     cfg,
		rng:     rng,
		cluster: make([][]overlay.PeerID, n),
	}
	for i := 0; i < n; i++ {
		o.SetPosition(overlay.PeerID(i), ring.HashUint64(uint64(i)))
	}
	o.WireRing()
	o.wireHarmonic()
	// Snapshot the structural links (ring + harmonic): cluster-link churn
	// must never remove them, or greedy routing loses its correctness
	// anchor.
	o.protected = make([]map[overlay.PeerID]bool, n)
	for p := 0; p < n; p++ {
		set := make(map[overlay.PeerID]bool)
		for _, q := range o.Links(overlay.PeerID(p)) {
			set[q] = true
		}
		o.protected[p] = set
	}
	o.runGossip()
	return o
}

// wireHarmonic adds the structured long links of the hybrid overlay.
func (o *Overlay) wireHarmonic() {
	n := o.N()
	if n < 3 {
		return
	}
	sorted := o.SortedByPosition()
	positions := make([]ring.ID, n)
	for i, p := range sorted {
		positions[i] = o.Position(p)
	}
	lnN := math.Log(float64(n))
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		for added, attempts := 0, 0; added < o.cfg.LongLinks && attempts < o.cfg.LongLinks*8; attempts++ {
			d := math.Exp(lnN * (o.rng.Float64() - 1))
			target := ring.Perturb(o.Position(pid), d)
			q := sorted[ring.Successor(positions, target)]
			if q != pid && o.AddLink(pid, q) {
				added++
			}
		}
	}
}

// utility scores candidate q for peer p: shared topic interests. With
// per-user topics this is the common-friend count, plus a bonus when p
// subscribes to q's own topic (they are friends).
func (o *Overlay) utility(p, q overlay.PeerID) int {
	u := o.g.CommonNeighbors(p, q)
	if o.g.HasEdge(p, q) {
		u += 2
	}
	return u
}

// runGossip iterates cluster-link selection until a full round changes no
// link set. Each round every peer gathers candidates (current cluster
// links, links-of-links, a small random sample), keeps the top-K by
// utility with ties broken toward *higher social degree* — the hotspot-
// forming behaviour the paper attributes to Vitis — and adopts the result.
func (o *Overlay) runGossip() {
	n := o.N()
	if n < 2 {
		return
	}
	// Convergence slack: random peer-sampling keeps finding the occasional
	// equal-utility swap forever; the overlay counts as organized when
	// under 1% of peers still change links in a round.
	threshold := n / 100
	for round := 1; round <= o.cfg.MaxRounds; round++ {
		changed := 0
		for p := 0; p < n; p++ {
			if o.updateClusterLinks(overlay.PeerID(p)) {
				changed++
			}
		}
		o.iterations = round
		if changed <= threshold {
			break
		}
	}
}

func (o *Overlay) updateClusterLinks(p overlay.PeerID) bool {
	n := o.N()
	cand := make(map[overlay.PeerID]struct{})
	for _, q := range o.cluster[p] {
		cand[q] = struct{}{}
	}
	// Neighbors' cluster links (gossip exchange of views).
	for _, q := range o.cluster[p] {
		for _, r := range o.cluster[q] {
			if r != p {
				cand[r] = struct{}{}
			}
		}
	}
	// Random peer-sampling service.
	for i := 0; i < o.cfg.SampleSize; i++ {
		q := overlay.PeerID(o.rng.Intn(n))
		if q != p {
			cand[q] = struct{}{}
		}
	}
	list := make([]overlay.PeerID, 0, len(cand))
	for q := range cand {
		list = append(list, q)
	}
	// Score each candidate once up front. The comparator below induces a
	// total order (final tie-break is the strict peer-id comparison), so
	// sorting cached scores yields exactly the permutation the previous
	// utility-in-comparator version produced — minus the O(m log m)
	// set intersections the comparator used to redo.
	util := make([]int, len(list))
	for i, q := range list {
		util[i] = o.utility(p, q)
	}
	sort.Sort(&byUtility{list, util, o.g})
	k := o.cfg.K
	if k > len(list) {
		k = len(list)
	}
	newLinks := list[:k]
	// Drop zero-utility candidates: clusters only form around shared
	// interests; random strangers are not kept.
	for len(newLinks) > 0 && util[len(newLinks)-1] == 0 {
		newLinks = newLinks[:len(newLinks)-1]
	}
	if equalSets(newLinks, o.cluster[p]) {
		return false
	}
	// Update the link mirror: remove old cluster links not kept, add new.
	old := o.cluster[p]
	keep := make(map[overlay.PeerID]struct{}, len(newLinks))
	for _, q := range newLinks {
		keep[q] = struct{}{}
	}
	for _, q := range old {
		if _, ok := keep[q]; !ok && !o.protected[p][q] {
			o.RemoveLink(p, q)
		}
	}
	for _, q := range newLinks {
		o.AddLink(p, q)
	}
	o.cluster[p] = append([]overlay.PeerID(nil), newLinks...)
	return true
}

// byUtility sorts peers by descending cached utility, then (with a graph
// set) descending social degree — the hotspot bias — then ascending id.
type byUtility struct {
	list []overlay.PeerID
	util []int
	g    *socialgraph.Graph // nil: skip the degree tie-break
}

func (s *byUtility) Len() int { return len(s.list) }
func (s *byUtility) Swap(i, j int) {
	s.list[i], s.list[j] = s.list[j], s.list[i]
	s.util[i], s.util[j] = s.util[j], s.util[i]
}
func (s *byUtility) Less(i, j int) bool {
	if s.util[i] != s.util[j] {
		return s.util[i] > s.util[j]
	}
	if s.g != nil {
		di, dj := s.g.Degree(s.list[i]), s.g.Degree(s.list[j])
		if di != dj {
			return di > dj // prefer high social degree (hotspot bias)
		}
	}
	return s.list[i] < s.list[j]
}

func equalSets(a, b []overlay.PeerID) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[overlay.PeerID]struct{}, len(a))
	for _, x := range a {
		m[x] = struct{}{}
	}
	for _, x := range b {
		if _, ok := m[x]; !ok {
			return false
		}
	}
	return true
}

// Iterations implements overlay.Iterative.
func (o *Overlay) Iterations() int { return o.iterations }

// ClusterLinks returns p's current cluster links (shared slice).
func (o *Overlay) ClusterLinks(p overlay.PeerID) []overlay.PeerID { return o.cluster[p] }

// Route uses the hybrid strategy: deliver within the cluster when the
// destination is a direct or two-hop cluster neighbor, otherwise fall back
// to greedy ring/long-link routing (rendezvous routing on the structured
// half).
func (o *Overlay) Route(src, dst overlay.PeerID) (overlay.Path, bool) {
	if src == dst {
		return overlay.Path{src}, true
	}
	if o.Online(dst) {
		for _, q := range o.Links(src) {
			if q == dst {
				return overlay.Path{src, dst}, true
			}
		}
		for _, q := range o.cluster[src] {
			if !o.Online(q) {
				continue
			}
			for _, r := range o.cluster[q] {
				if r == dst {
					return overlay.Path{src, q, dst}, true
				}
			}
		}
	}
	return overlay.GreedyRoute(o, src, dst)
}

// Repair replaces offline cluster links by re-running link selection for
// affected peers (the gossip keeps running under churn).
func (o *Overlay) Repair() {
	n := o.N()
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !o.Online(pid) {
			continue
		}
		dead := false
		for _, q := range o.cluster[pid] {
			if !o.Online(q) {
				dead = true
				if !o.protected[pid][q] {
					o.RemoveLink(pid, q)
				}
			}
		}
		if dead {
			alive := o.cluster[pid][:0]
			for _, q := range o.cluster[pid] {
				if o.Online(q) {
					alive = append(alive, q)
				}
			}
			o.cluster[pid] = alive
			o.updateClusterLinksOnline(pid)
		}
	}
}

// updateClusterLinksOnline is updateClusterLinks restricted to online
// candidates.
func (o *Overlay) updateClusterLinksOnline(p overlay.PeerID) {
	n := o.N()
	cand := make(map[overlay.PeerID]struct{})
	for _, q := range o.cluster[p] {
		cand[q] = struct{}{}
	}
	for i := 0; i < o.cfg.SampleSize*2; i++ {
		q := overlay.PeerID(o.rng.Intn(n))
		if q != p && o.Online(q) {
			cand[q] = struct{}{}
		}
	}
	list := make([]overlay.PeerID, 0, len(cand))
	for q := range cand {
		if o.Online(q) {
			list = append(list, q)
		}
	}
	util := make([]int, len(list))
	for i, q := range list {
		util[i] = o.utility(p, q)
	}
	sort.Sort(&byUtility{list, util, nil})
	k := o.cfg.K
	if k > len(list) {
		k = len(list)
	}
	o.cluster[p] = append([]overlay.PeerID(nil), list[:k]...)
	for _, q := range o.cluster[p] {
		o.AddLink(p, q)
	}
}
