package symphony

import (
	"math"
	"math/rand"
	"testing"

	"selectps/internal/overlay"
)

func build(n, k int, seed int64) *Overlay {
	return New(n, Config{K: k}, rand.New(rand.NewSource(seed)))
}

func TestConstruction(t *testing.T) {
	o := build(128, 7, 1)
	if o.Name() != "symphony" || o.N() != 128 || o.K() != 7 {
		t.Fatalf("metadata wrong: %s %d %d", o.Name(), o.N(), o.K())
	}
	for p := overlay.PeerID(0); p < 128; p++ {
		if !o.Position(p).Valid() {
			t.Fatalf("peer %d invalid position", p)
		}
		// 2 ring links + up to k outgoing long links + mirrored incoming
		// links (bi-directional routing).
		if d := o.Degree(p); d < 3 {
			t.Errorf("peer %d degree %d too low", p, d)
		}
	}
}

func TestAllLookupsSucceed(t *testing.T) {
	o := build(256, 8, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		src := overlay.PeerID(rng.Intn(256))
		dst := overlay.PeerID(rng.Intn(256))
		path, ok := overlay.RouteOn(o, src, dst)
		if !ok {
			t.Fatalf("lookup %d->%d failed", src, dst)
		}
		if path[len(path)-1] != dst {
			t.Fatalf("lookup ended at %d, want %d", path[len(path)-1], dst)
		}
	}
}

func TestLogarithmicHops(t *testing.T) {
	// Average lookup hops should scale ~O(log^2 N / k) — in particular stay
	// far below N and grow slowly with N.
	avg := func(n int) float64 {
		o := build(n, int(math.Log2(float64(n))), 4)
		rng := rand.New(rand.NewSource(5))
		total := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			src := overlay.PeerID(rng.Intn(n))
			dst := overlay.PeerID(rng.Intn(n))
			path, ok := overlay.RouteOn(o, src, dst)
			if !ok {
				t.Fatalf("lookup failed at n=%d", n)
			}
			total += path.Hops()
		}
		return float64(total) / trials
	}
	a512 := avg(512)
	a2048 := avg(2048)
	if a512 > 12 {
		t.Errorf("avg hops at n=512 = %.1f, too high for small world", a512)
	}
	if a2048 > a512*3 {
		t.Errorf("hops grew too fast: %.1f -> %.1f", a512, a2048)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := build(64, 5, 7)
	b := build(64, 5, 7)
	for p := overlay.PeerID(0); p < 64; p++ {
		la, lb := a.Links(p), b.Links(p)
		if len(la) != len(lb) {
			t.Fatalf("peer %d link count differs", p)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("peer %d links differ", p)
			}
		}
	}
}

func TestRepairRemovesOfflineLongLinks(t *testing.T) {
	o := build(128, 6, 8)
	rng := rand.New(rand.NewSource(9))
	// Take 20 peers offline.
	for i := 0; i < 20; i++ {
		o.SetOnline(overlay.PeerID(rng.Intn(128)), false)
	}
	o.Repair()
	for p := overlay.PeerID(0); p < 128; p++ {
		if !o.Online(p) {
			continue
		}
		offLinks := 0
		for _, q := range o.Links(p) {
			if !o.Online(q) {
				offLinks++
			}
		}
		// Ring links to offline neighbors are allowed to remain; long links
		// should have been replaced. At most the 2 ring links may be dead.
		if offLinks > 2 {
			t.Errorf("peer %d still has %d offline links after repair", p, offLinks)
		}
	}
}

func TestTinyNetworks(t *testing.T) {
	if o := build(1, 4, 1); o.Degree(0) != 0 {
		t.Error("singleton peer should have no links")
	}
	o := build(2, 4, 1)
	if !o.HasLink(0, 1) || !o.HasLink(1, 0) {
		t.Error("two-peer ring not wired")
	}
	o.SetOnline(1, false)
	o.Repair() // must not panic or loop
}

func TestUnicastDissemination(t *testing.T) {
	o := build(200, 8, 10)
	subs := []overlay.PeerID{5, 50, 100, 150, 199}
	tree, failed := overlay.BuildTree(o, 0, subs)
	if len(failed) > 0 {
		t.Fatalf("failed subscribers: %v", failed)
	}
	isSub := func(p overlay.PeerID) bool {
		for _, s := range subs {
			if s == p {
				return true
			}
		}
		return false
	}
	// Social-oblivious overlay: almost surely some relay nodes appear.
	if tree.RelayNodes(isSub) == 0 {
		t.Error("expected relay nodes on Symphony dissemination")
	}
}
