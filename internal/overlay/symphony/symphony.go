// Package symphony implements the Symphony baseline (Manku, Bawa,
// Raghavan — paper ref. [10]): a small-world ring DHT with immutable
// uniform-hash identifiers, successor/predecessor short links, and k
// long-range links drawn from the harmonic distribution p(d) ∝ 1/d.
//
// The paper evaluates "a pub/sub system over the Symphony P2P overlay
// network without any further modification on the P2P topology" (§IV-C):
// the overlay is completely oblivious to the social graph, so every social
// edge costs O(log N) overlay hops and dissemination trees are full of
// relay nodes. Dissemination uses the generic merged-unicast-path tree
// (overlay.BuildUnicastTree); construction is non-iterative, so Symphony is
// excluded from the Fig. 5 convergence comparison, exactly as in the paper.
package symphony

import (
	"math"
	"math/rand"

	"selectps/internal/overlay"
	"selectps/internal/ring"
)

// Overlay is a constructed Symphony network.
type Overlay struct {
	*overlay.Base
	k   int
	rng *rand.Rand
}

// Config parameterizes construction.
type Config struct {
	// K is the number of long-range links per peer (the paper assigns
	// log2(N) direct connections to every system, §IV-C).
	K int
}

// New builds a Symphony overlay over n peers. Positions are uniform SHA-1
// hashes of the peer index; long links follow the harmonic distribution.
// Deterministic in rng.
func New(n int, cfg Config, rng *rand.Rand) *Overlay {
	o := &Overlay{Base: overlay.NewBase("symphony", n), k: cfg.K, rng: rng}
	for i := 0; i < n; i++ {
		o.SetPosition(overlay.PeerID(i), ring.HashUint64(uint64(i)))
	}
	o.WireRing()
	if n > 1 {
		sorted := o.SortedByPosition()
		positions := make([]ring.ID, n)
		for i, p := range sorted {
			positions[i] = o.Position(p)
		}
		for p := 0; p < n; p++ {
			o.drawLongLinks(overlay.PeerID(p), sorted, positions)
		}
	}
	return o
}

// drawLongLinks gives p its k harmonic long-range links: draw distance
// d = exp(ln(n)·(r−1)) for uniform r (Symphony §3), land at pos+d, and link
// to the manager of that point (its clockwise successor on the ring).
func (o *Overlay) drawLongLinks(p overlay.PeerID, sorted []overlay.PeerID, positions []ring.ID) {
	n := len(sorted)
	lnN := math.Log(float64(n))
	for added, attempts := 0, 0; added < o.k && attempts < o.k*8; attempts++ {
		d := math.Exp(lnN * (o.rng.Float64() - 1))
		target := ring.Perturb(o.Position(p), d)
		q := sorted[ring.Successor(positions, target)]
		if q != p && o.AddLink(p, q) {
			// Symphony routes over incoming links too (bi-directional
			// routing, Symphony §4.2): mirror the link.
			o.AddLink(q, p)
			added++
		}
	}
}

// K returns the configured long-link budget.
func (o *Overlay) K() int { return o.k }

// Repair re-draws long links that point at offline peers so lookups keep a
// harmonic link distribution under churn. Ring links are left in place
// (greedy routing skips offline neighbors); Symphony's original protocol
// similarly re-establishes failed long links lazily.
func (o *Overlay) Repair() {
	n := o.N()
	if n < 2 {
		return
	}
	sorted := o.SortedByPosition()
	positions := make([]ring.ID, n)
	for i, p := range sorted {
		positions[i] = o.Position(p)
	}
	lnN := math.Log(float64(n))
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !o.Online(pid) {
			continue
		}
		for _, q := range append([]overlay.PeerID(nil), o.Links(pid)...) {
			if o.Online(q) {
				continue
			}
			o.RemoveLink(pid, q)
			// Replace with a fresh harmonic draw landing on an online peer.
			for attempt := 0; attempt < 8; attempt++ {
				d := math.Exp(lnN * (o.rng.Float64() - 1))
				target := ring.Perturb(o.Position(pid), d)
				r := sorted[ring.Successor(positions, target)]
				if r != pid && o.Online(r) && o.AddLink(pid, r) {
					break
				}
			}
		}
	}
}
