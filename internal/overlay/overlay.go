// Package overlay defines the abstractions shared by SELECT and the four
// baseline P2P systems it is evaluated against: ring-position bookkeeping,
// greedy routing (§II-A), lookup paths, dissemination trees and relay-node
// accounting (§II-B/C).
//
// A concrete overlay (Symphony, Bayeux, Vitis, OMen, SELECT) provides peer
// positions and link sets; this package provides the generic machinery the
// experiments measure: routing between socially connected peers (Fig. 2),
// building pub/sub routing trees and counting their relay nodes (Fig. 3),
// and per-peer forwarding load (Fig. 4).
package overlay

import (
	"fmt"

	"selectps/internal/ring"
	"selectps/internal/socialgraph"
)

// PeerID identifies a peer. Social users map 1:1 onto peers (§III-A), so
// PeerID and socialgraph.NodeID are the same dense index space.
type PeerID = socialgraph.NodeID

// Overlay is the minimal surface the measurement harness needs from any of
// the five systems.
type Overlay interface {
	// Name identifies the system ("select", "symphony", ...).
	Name() string
	// N returns the number of peers (online or not).
	N() int
	// Position returns the peer's identifier in the ring ID space.
	Position(p PeerID) ring.ID
	// Links returns the peer's current outgoing connections (routing table
	// R_p: short-range plus long-range). Callers must not mutate the slice.
	Links(p PeerID) []PeerID
	// Online reports whether the peer is currently reachable.
	Online(p PeerID) bool
	// SetOnline toggles a peer's liveness (churn injection).
	SetOnline(p PeerID, online bool)
	// Repair runs one maintenance round (recovery after churn). Systems
	// without an online repair protocol may make it a no-op.
	Repair()
}

// Path is a hop sequence from source to destination, inclusive of both.
type Path []PeerID

// Hops returns the number of overlay hops (edges) in the path.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// MaxRouteHops bounds greedy routing; beyond this the lookup is abandoned.
// Greedy routing over a ring with successor links needs at most N hops;
// the bound exists to terminate cleanly on partitioned/offline topologies.
const MaxRouteHops = 1 << 16

// GreedyRoute routes from src toward dst over the overlay by repeatedly
// forwarding to the online neighbor closest (in ring distance) to dst,
// exactly the lookup of §II-A. It returns ok=false when routing dead-ends
// (no neighbor makes progress — a local minimum caused by churn or a
// malformed topology).
func GreedyRoute(o Overlay, src, dst PeerID) (Path, bool) {
	if src == dst {
		return Path{src}, true
	}
	dstPos := o.Position(dst)
	path := Path{src}
	cur := src
	for hops := 0; hops < MaxRouteHops; hops++ {
		if cur == dst {
			return path, true
		}
		best := PeerID(-1)
		bestD := ring.Distance(o.Position(cur), dstPos)
		for _, nb := range o.Links(cur) {
			if !o.Online(nb) {
				continue
			}
			if nb == dst {
				best = nb
				break
			}
			if d := ring.Distance(o.Position(nb), dstPos); d < bestD {
				best, bestD = nb, d
			}
		}
		if best < 0 {
			return path, false
		}
		path = append(path, best)
		cur = best
	}
	return path, false
}

// Router lets a system substitute its own routing procedure (e.g. Bayeux's
// prefix routing, SELECT's lookahead-aware forwarding). Systems that do not
// implement it fall back to GreedyRoute.
type Router interface {
	Route(src, dst PeerID) (Path, bool)
}

// RouteOn routes src→dst with the system's own router when it has one,
// greedy ring routing otherwise.
func RouteOn(o Overlay, src, dst PeerID) (Path, bool) {
	if r, ok := o.(Router); ok {
		return r.Route(src, dst)
	}
	return GreedyRoute(o, src, dst)
}

// Tree is a dissemination (routing) tree RT_b rooted at a publisher.
type Tree struct {
	Root     PeerID
	parent   map[PeerID]PeerID
	children map[PeerID][]PeerID
	order    []PeerID // non-root nodes in insertion order (deterministic Nodes)
}

// NewTree returns a tree containing only the root.
func NewTree(root PeerID) *Tree {
	return &Tree{
		Root:     root,
		parent:   make(map[PeerID]PeerID),
		children: make(map[PeerID][]PeerID),
	}
}

// Contains reports whether p is part of the tree.
func (t *Tree) Contains(p PeerID) bool {
	if p == t.Root {
		return true
	}
	_, ok := t.parent[p]
	return ok
}

// AddPath grafts a root-originating path onto the tree. The path's first
// element must already be in the tree (usually the root); nodes already
// present keep their existing parent, so merged unicast paths form a proper
// tree. It panics if the path does not start inside the tree.
func (t *Tree) AddPath(p Path) {
	if len(p) == 0 {
		return
	}
	if !t.Contains(p[0]) {
		panic(fmt.Sprintf("overlay: path start %d not in tree", p[0]))
	}
	for i := 1; i < len(p); i++ {
		child, par := p[i], p[i-1]
		if t.Contains(child) {
			continue
		}
		t.parent[child] = par
		t.children[par] = append(t.children[par], child)
		t.order = append(t.order, child)
	}
}

// Parent returns p's parent and true, or -1,false for the root or absent
// nodes.
func (t *Tree) Parent(p PeerID) (PeerID, bool) {
	par, ok := t.parent[p]
	if !ok {
		return -1, false
	}
	return par, true
}

// Children returns p's children (shared slice; do not mutate).
func (t *Tree) Children(p PeerID) []PeerID { return t.children[p] }

// Size returns the number of nodes in the tree, root included.
func (t *Tree) Size() int { return len(t.parent) + 1 }

// Nodes returns all tree nodes, root first, then insertion order. The
// order is deterministic: dissemination-tree construction iterates Nodes()
// and breaks ties by first match, so a map-order walk here would make
// routing trees (and every relay/latency metric derived from them) differ
// between identical runs.
func (t *Tree) Nodes() []PeerID {
	out := make([]PeerID, 0, t.Size())
	out = append(out, t.Root)
	return append(out, t.order...)
}

// ChildrenArray converts the tree into a dense children-list form for n
// peers (e.g. for netmodel.DisseminationLatency).
func (t *Tree) ChildrenArray(n int) [][]PeerID {
	out := make([][]PeerID, n)
	for p, c := range t.children {
		out[p] = c
	}
	return out
}

// RelayNodes counts the relay nodes of the tree per §II-C: nodes on the
// dissemination paths that are not the publisher and not subscribers
// themselves (subscribers that forward are not relays).
func (t *Tree) RelayNodes(isSubscriber func(PeerID) bool) int {
	relays := 0
	for p := range t.parent {
		if !isSubscriber(p) {
			relays++
		}
	}
	return relays
}

// PathRelays returns the number of relay nodes on the tree path from the
// root to s — intermediate nodes that are not subscribers (§II-C, and the
// Fig. 3 caption's "relay nodes per pub/sub routing path"). Returns -1
// when s is not in the tree.
func (t *Tree) PathRelays(s PeerID, isSubscriber func(PeerID) bool) int {
	if !t.Contains(s) {
		return -1
	}
	relays := 0
	for s != t.Root {
		par, ok := t.parent[s]
		if !ok {
			return -1
		}
		if par != t.Root && !isSubscriber(par) {
			relays++
		}
		s = par
	}
	return relays
}

// ForwardCounts returns, for every tree node that forwards the message, the
// number of copies it sends (its child count). Leaves are omitted.
func (t *Tree) ForwardCounts() map[PeerID]int {
	out := make(map[PeerID]int, len(t.children))
	for p, c := range t.children {
		if len(c) > 0 {
			out[p] = len(c)
		}
	}
	return out
}

// Depth returns the hop depth of p in the tree (0 for the root), or -1 if
// absent.
func (t *Tree) Depth(p PeerID) int {
	if p == t.Root {
		return 0
	}
	d := 0
	for p != t.Root {
		par, ok := t.parent[p]
		if !ok {
			return -1
		}
		p = par
		d++
		if d > MaxRouteHops {
			panic("overlay: parent cycle in tree")
		}
	}
	return d
}

// BuildUnicastTree constructs a dissemination tree by merging the overlay
// routing paths from the publisher to each subscriber — how a pub/sub
// service runs on top of an overlay with no native multicast (Symphony and
// generic DHTs, §II-B). Subscribers that cannot be reached (routing failed)
// are returned in failed.
func BuildUnicastTree(o Overlay, publisher PeerID, subs []PeerID) (t *Tree, failed []PeerID) {
	t = NewTree(publisher)
	for _, s := range subs {
		if s == publisher || t.Contains(s) {
			continue
		}
		path, ok := RouteOn(o, publisher, s)
		if !ok {
			failed = append(failed, s)
			continue
		}
		t.AddPath(path)
	}
	return t, failed
}

// Disseminator is implemented by systems with a native multicast strategy
// (Bayeux's rendezvous tree, OMen's topic-connected overlay, SELECT's
// friend links + lookahead). Tree must contain the publisher as root;
// failed lists subscribers the system could not deliver to.
type Disseminator interface {
	DisseminationTree(publisher PeerID, subs []PeerID) (t *Tree, failed []PeerID)
}

// BuildTree builds the routing tree RT_b for a publisher using the
// system's native disseminator when present, merged unicast paths
// otherwise.
func BuildTree(o Overlay, publisher PeerID, subs []PeerID) (*Tree, []PeerID) {
	if d, ok := o.(Disseminator); ok {
		return d.DisseminationTree(publisher, subs)
	}
	return BuildUnicastTree(o, publisher, subs)
}

// Iterative is implemented by systems whose overlay construction converges
// over gossip rounds (SELECT, Vitis, OMen). Fig. 5 reads Iterations.
type Iterative interface {
	// Iterations returns the number of construction rounds executed until
	// convergence.
	Iterations() int
}
