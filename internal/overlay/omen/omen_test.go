package omen

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
)

func build(t *testing.T, n int, seed int64) *Overlay {
	t.Helper()
	g := datasets.Facebook.Generate(n, seed)
	return New(g, Config{MaxDegree: 16}, rand.New(rand.NewSource(seed)))
}

func TestConstruction(t *testing.T) {
	o := build(t, 300, 1)
	if o.Name() != "omen" || o.N() != 300 {
		t.Fatal("metadata wrong")
	}
	if o.Iterations() < 1 {
		t.Errorf("Iterations = %d", o.Iterations())
	}
}

func TestTopicEdgesSymmetric(t *testing.T) {
	o := build(t, 250, 2)
	for p := overlay.PeerID(0); p < 250; p++ {
		for _, q := range o.TopicLinks(p) {
			if !o.hasTopicEdge(q, p) {
				t.Fatalf("topic edge %d-%d not symmetric", p, q)
			}
		}
	}
}

func TestTopicsConnected(t *testing.T) {
	// After convergence (no churn), the vast majority of topics must be
	// connected; the degree cap may leave a handful split.
	g := datasets.Facebook.Generate(300, 3)
	o := New(g, Config{MaxDegree: 16}, rand.New(rand.NewSource(3)))
	disconnected := 0
	for tpc := overlay.PeerID(0); tpc < 300; tpc++ {
		members := o.topicMembers(tpc)
		if len(members) < 2 {
			continue
		}
		if len(o.components(members, false)) > 1 {
			disconnected++
		}
	}
	if disconnected > 15 { // 5%
		t.Errorf("%d of 300 topics still disconnected", disconnected)
	}
}

func TestDisseminationMostlyRelayFree(t *testing.T) {
	// Within a connected TCO, dissemination between topic members should
	// need few or no relay nodes.
	g := datasets.Facebook.Generate(300, 4)
	o := New(g, Config{MaxDegree: 16}, rand.New(rand.NewSource(4)))
	rng := rand.New(rand.NewSource(5))
	totalRelays, trials := 0, 0
	for i := 0; i < 50; i++ {
		pub := overlay.PeerID(rng.Intn(300))
		subs := g.Neighbors(pub)
		if len(subs) == 0 {
			continue
		}
		tree, failed := o.DisseminationTree(pub, subs)
		if len(failed) > 0 {
			t.Fatalf("publisher %d failed subs %v", pub, failed)
		}
		isSub := func(p overlay.PeerID) bool { return g.HasEdge(pub, p) }
		totalRelays += tree.RelayNodes(isSub)
		trials++
	}
	if trials == 0 {
		t.Fatal("no trials ran")
	}
	if avg := float64(totalRelays) / float64(trials); avg > 3 {
		t.Errorf("avg relays per dissemination = %.2f, want small for TCO", avg)
	}
}

func TestDisseminationCoversAllSubscribers(t *testing.T) {
	g := datasets.Slashdot.Generate(300, 6)
	o := New(g, Config{MaxDegree: 16}, rand.New(rand.NewSource(6)))
	pub := overlay.PeerID(10)
	subs := g.Neighbors(pub)
	tree, failed := o.DisseminationTree(pub, subs)
	if len(failed) > 0 {
		t.Fatalf("failed: %v", failed)
	}
	for _, s := range subs {
		if !tree.Contains(s) {
			t.Errorf("subscriber %d missing", s)
		}
	}
}

func TestHotspotBias(t *testing.T) {
	// Greedy merge should load high-social-degree peers with more topic
	// links than low-degree peers.
	g := datasets.Facebook.Generate(400, 7)
	o := New(g, Config{MaxDegree: 16}, rand.New(rand.NewSource(7)))
	var hiSum, hiN, loSum, loN float64
	maxDeg := g.MaxDegree()
	for u := 0; u < 400; u++ {
		d := g.Degree(int32(u))
		td := float64(len(o.TopicLinks(int32(u))))
		if d >= maxDeg/2 {
			hiSum, hiN = hiSum+td, hiN+1
		} else if d <= maxDeg/10 {
			loSum, loN = loSum+td, loN+1
		}
	}
	if hiN == 0 || loN == 0 {
		t.Skip("flat degree distribution")
	}
	if hiSum/hiN <= loSum/loN {
		t.Errorf("no hotspot bias: hi=%.1f lo=%.1f", hiSum/hiN, loSum/loN)
	}
}

func TestShadows(t *testing.T) {
	g := datasets.Facebook.Generate(200, 8)
	o := New(g, Config{MaxDegree: 16, ShadowSize: 3}, rand.New(rand.NewSource(8)))
	for p := overlay.PeerID(0); p < 200; p++ {
		sh := o.Shadows(p)
		if g.Degree(p) > 0 && len(sh) == 0 {
			t.Errorf("peer %d (degree %d) has no shadows", p, g.Degree(p))
		}
		for _, s := range sh {
			if !g.HasEdge(p, s) {
				t.Errorf("shadow %d of %d is not a friend", s, p)
			}
		}
	}
}

func TestRepairReplacesOfflineTopicLinks(t *testing.T) {
	g := datasets.Facebook.Generate(300, 9)
	o := New(g, Config{MaxDegree: 16}, rand.New(rand.NewSource(9)))
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 50; i++ {
		o.SetOnline(overlay.PeerID(rng.Intn(300)), false)
	}
	o.Repair()
	for p := overlay.PeerID(0); p < 300; p++ {
		if !o.Online(p) {
			continue
		}
		for _, q := range o.TopicLinks(p) {
			if !o.Online(q) {
				t.Fatalf("peer %d keeps offline topic link %d", p, q)
			}
		}
	}
}

func TestRouteShortForSocialPairs(t *testing.T) {
	g := datasets.Facebook.Generate(400, 11)
	o := New(g, Config{MaxDegree: 16}, rand.New(rand.NewSource(11)))
	rng := rand.New(rand.NewSource(12))
	short, totalHops, okCount := 0, 0, 0
	const trials = 100
	for i := 0; i < trials; i++ {
		u, v, _ := g.RandomEdge(rng)
		if path, ok := o.Route(u, v); ok {
			okCount++
			totalHops += path.Hops()
			if path.Hops() <= 2 {
				short++
			}
		}
	}
	// OMen has no lookahead set: direct topic links give 1 hop, everything
	// else is greedy small-world routing. A healthy TCO should still put a
	// solid fraction of social pairs within 2 hops and keep the average
	// bounded.
	if short < trials/3 {
		t.Errorf("only %d/%d social pairs within 2 hops via TCO", short, trials)
	}
	if okCount == 0 || float64(totalHops)/float64(okCount) > 8 {
		t.Errorf("avg hops %.1f too high (ok=%d)", float64(totalHops)/float64(okCount), okCount)
	}
}

func TestTinyGraph(t *testing.T) {
	g := datasets.Facebook.Generate(1, 13)
	o := New(g, Config{MaxDegree: 4}, rand.New(rand.NewSource(13)))
	if o.N() != 1 || o.Iterations() != 0 {
		t.Errorf("singleton overlay: n=%d it=%d", o.N(), o.Iterations())
	}
}
