// Package omen implements the OMen baseline (Chen, Vitenberg, Jacobsen —
// paper ref. [6]): topic-connected overlays (TCOs) built by a Greedy-Merge
// approximation (ref. [22], [24]) on top of a small-world ring, with
// per-peer shadow sets that repair the TCO under churn.
//
// In the paper's workload each social user is a topic whose subscribers are
// the user's friends. A topic is "connected" when its members form a
// connected subgraph of topic links, letting publications spread member-to-
// member without relays. OMen's documented weaknesses, reproduced here:
//
//   - Greedy Merge concentrates edges on high-degree peers (hotspots,
//     Fig. 4): merges pick the highest-degree representatives.
//   - Construction starts from a random DHT placement and converges slowly
//     (Fig. 5): one merge per topic per round.
//   - No monitoring of peers' online behaviour (§II, Fig. 6): shadows are
//     chosen without availability information, so repair can hand a topic
//     to a peer that is mostly offline.
package omen

import (
	"math"
	"math/rand"
	"sort"

	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/socialgraph"
)

// Config parameterizes construction.
type Config struct {
	// MaxDegree caps the number of topic links a peer accepts (the bounded
	// connection budget every system gets, §IV-C).
	MaxDegree int
	// LongLinks is the harmonic long-link budget of the underlying
	// small-world overlay (default max(2, MaxDegree/2)).
	LongLinks int
	// ShadowSize is the number of backup peers kept per peer (default 3).
	ShadowSize int
	// MaxRounds bounds the merge process (default 512; the per-peer
	// one-negotiation-per-round constraint makes full TCO construction
	// need a few hundred rounds at thousands of peers).
	MaxRounds int
}

func (c *Config) fill() {
	if c.LongLinks == 0 {
		c.LongLinks = c.MaxDegree / 2
		if c.LongLinks < 2 {
			c.LongLinks = 2
		}
	}
	if c.ShadowSize == 0 {
		c.ShadowSize = 3
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 512
	}
}

// Overlay is a constructed OMen network.
type Overlay struct {
	*overlay.Base
	g          *socialgraph.Graph
	cfg        Config
	rng        *rand.Rand
	topicLinks [][]overlay.PeerID // undirected TCO adjacency
	topicDeg   []int
	shadows    [][]overlay.PeerID
	protected  []map[overlay.PeerID]bool // ring + harmonic links never removed
	iterations int

	// components scratch: epoch-stamped membership/visited marks. Greedy
	// Merge calls components for every topic every round, so per-call maps
	// were the dominant construction cost; stamping makes each call
	// allocation-free with O(1) reset.
	compEpoch int64
	inSet     []int64
	seen      []int64
}

// New builds an OMen overlay for social graph g. Deterministic in rng.
func New(g *socialgraph.Graph, cfg Config, rng *rand.Rand) *Overlay {
	cfg.fill()
	n := g.NumNodes()
	o := &Overlay{
		Base:       overlay.NewBase("omen", n),
		g:          g,
		cfg:        cfg,
		rng:        rng,
		topicLinks: make([][]overlay.PeerID, n),
		topicDeg:   make([]int, n),
		shadows:    make([][]overlay.PeerID, n),
	}
	for i := 0; i < n; i++ {
		o.SetPosition(overlay.PeerID(i), ring.HashUint64(uint64(i)))
	}
	o.WireRing()
	o.wireHarmonic()
	// Snapshot the structural links (ring + harmonic): topic-edge repair
	// must never remove them, or greedy fallback routing can dead-end.
	o.protected = make([]map[overlay.PeerID]bool, n)
	for p := 0; p < n; p++ {
		set := make(map[overlay.PeerID]bool)
		for _, q := range o.Links(overlay.PeerID(p)) {
			set[q] = true
		}
		o.protected[p] = set
	}
	o.greedyMerge()
	o.buildShadows()
	return o
}

func (o *Overlay) wireHarmonic() {
	n := o.N()
	if n < 3 {
		return
	}
	sorted := o.SortedByPosition()
	positions := make([]ring.ID, n)
	for i, p := range sorted {
		positions[i] = o.Position(p)
	}
	lnN := math.Log(float64(n))
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		for added, attempts := 0, 0; added < o.cfg.LongLinks && attempts < o.cfg.LongLinks*8; attempts++ {
			d := math.Exp(lnN * (o.rng.Float64() - 1))
			target := ring.Perturb(o.Position(pid), d)
			q := sorted[ring.Successor(positions, target)]
			if q != pid && o.AddLink(pid, q) {
				added++
			}
		}
	}
}

// topicMembers returns the members of topic t: the publisher plus its
// social friends.
func (o *Overlay) topicMembers(t overlay.PeerID) []overlay.PeerID {
	fr := o.g.Neighbors(t)
	out := make([]overlay.PeerID, 0, len(fr)+1)
	out = append(out, t)
	out = append(out, fr...)
	return out
}

func (o *Overlay) addTopicEdge(u, v overlay.PeerID) bool {
	if u == v || o.hasTopicEdge(u, v) {
		return false
	}
	o.topicLinks[u] = append(o.topicLinks[u], v)
	o.topicLinks[v] = append(o.topicLinks[v], u)
	o.topicDeg[u]++
	o.topicDeg[v]++
	o.AddLink(u, v)
	o.AddLink(v, u)
	return true
}

func (o *Overlay) hasTopicEdge(u, v overlay.PeerID) bool {
	for _, x := range o.topicLinks[u] {
		if x == v {
			return true
		}
	}
	return false
}

// components splits members into connected components under the current
// topic-link adjacency restricted to the member set. Offline filtering is
// applied when onlineOnly is set (used by dissemination under churn).
func (o *Overlay) components(members []overlay.PeerID, onlineOnly bool) [][]overlay.PeerID {
	if o.inSet == nil {
		o.inSet = make([]int64, o.N())
		o.seen = make([]int64, o.N())
	}
	o.compEpoch++
	e := o.compEpoch
	for _, m := range members {
		if onlineOnly && !o.Online(m) {
			continue
		}
		o.inSet[m] = e
	}
	var comps [][]overlay.PeerID
	for _, m := range members {
		if o.inSet[m] != e || o.seen[m] == e {
			continue
		}
		comp := []overlay.PeerID{m}
		o.seen[m] = e
		for i := 0; i < len(comp); i++ {
			u := comp[i]
			for _, w := range o.topicLinks[u] {
				if o.inSet[w] == e && o.seen[w] != e {
					o.seen[w] = e
					comp = append(comp, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// greedyMerge runs rounds of the degree-bounded Greedy-Merge: each round,
// every still-disconnected topic tries to add one edge joining its two
// largest components, endpoints chosen as the highest-social-degree
// members under the degree cap. A peer can negotiate at most ONE new topic
// edge per round (per-round communication is bounded in a gossip overlay),
// which serializes the merges that all want the same hub representatives —
// the slow convergence Fig. 5 attributes to OMen. Rounds continue until
// every topic is connected or an entire round makes no progress.
func (o *Overlay) greedyMerge() {
	n := o.N()
	if n < 2 {
		return
	}
	busy := make([]bool, n)
	// Edges are only ever added during construction, so a topic that is
	// connected stays connected: checking it again in later rounds cannot
	// add edges or change any decision, only burn a components() call.
	connected := make([]bool, n)
	for round := 1; round <= o.cfg.MaxRounds; round++ {
		for i := range busy {
			busy[i] = false
		}
		added := false
		blocked := false
		done := true
		for t := 0; t < n; t++ {
			if connected[t] {
				continue
			}
			members := o.topicMembers(overlay.PeerID(t))
			if len(members) < 2 {
				connected[t] = true
				continue
			}
			comps := o.components(members, false)
			if len(comps) <= 1 {
				connected[t] = true
				continue
			}
			done = false
			sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
			u := o.pickRepresentative(comps[0])
			v := o.pickRepresentative(comps[1])
			if u < 0 || v < 0 {
				continue
			}
			if busy[u] || busy[v] {
				blocked = true // negotiating elsewhere this round
				continue
			}
			if o.addTopicEdge(u, v) {
				busy[u], busy[v] = true, true
				added = true
			}
		}
		o.iterations = round
		if done || (!added && !blocked) {
			break
		}
	}
}

// pickRepresentative returns the component member with the highest social
// degree that still has budget; when every member is at the cap, the
// highest-degree member is used anyway (the topic must stay connectable —
// this is exactly how hotspots exceed their fair load).
func (o *Overlay) pickRepresentative(comp []overlay.PeerID) overlay.PeerID {
	best, bestUncapped := overlay.PeerID(-1), overlay.PeerID(-1)
	bd, bu := -1, -1
	for _, m := range comp {
		d := o.g.Degree(m)
		if d > bd {
			best, bd = m, d
		}
		if o.topicDeg[m] < o.cfg.MaxDegree && d > bu {
			bestUncapped, bu = m, d
		}
	}
	if bestUncapped >= 0 {
		return bestUncapped
	}
	return best
}

// buildShadows samples, for each peer, backup peers from its topics'
// membership (friends and friends-of-friends) — without consulting any
// availability signal, per OMen's design.
func (o *Overlay) buildShadows() {
	n := o.N()
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		cand := o.g.Neighbors(pid)
		if len(cand) == 0 {
			continue
		}
		size := o.cfg.ShadowSize
		if size > len(cand) {
			size = len(cand)
		}
		perm := o.rng.Perm(len(cand))
		sh := make([]overlay.PeerID, 0, size)
		for _, i := range perm[:size] {
			sh = append(sh, cand[i])
		}
		o.shadows[pid] = sh
	}
}

// Iterations implements overlay.Iterative.
func (o *Overlay) Iterations() int { return o.iterations }

// TopicLinks returns p's TCO adjacency (shared slice).
func (o *Overlay) TopicLinks(p overlay.PeerID) []overlay.PeerID { return o.topicLinks[p] }

// Shadows returns p's shadow set (shared slice).
func (o *Overlay) Shadows(p overlay.PeerID) []overlay.PeerID { return o.shadows[p] }

// Route: direct topic/base link, then greedy small-world fallback. OMen
// peers know only their own links — there is no Symphony-style lookahead
// set (that is SELECT's §III-E addition), so no two-hop scan happens here.
func (o *Overlay) Route(src, dst overlay.PeerID) (overlay.Path, bool) {
	if src == dst {
		return overlay.Path{src}, true
	}
	if o.Online(dst) {
		for _, q := range o.Links(src) {
			if q == dst {
				return overlay.Path{src, dst}, true
			}
		}
	}
	return overlay.GreedyRoute(o, src, dst)
}

// DisseminationTree implements overlay.Disseminator: BFS over the topic's
// TCO from the publisher; members unreachable within the TCO (degree cap
// or churn) are reached by unicast fallback over the small-world overlay,
// which introduces relay nodes.
func (o *Overlay) DisseminationTree(publisher overlay.PeerID, subs []overlay.PeerID) (*overlay.Tree, []overlay.PeerID) {
	t := overlay.NewTree(publisher)
	want := make(map[overlay.PeerID]bool, len(subs)+1)
	for _, s := range subs {
		want[s] = true
	}
	want[publisher] = true

	// BFS restricted to topic members and online peers.
	visited := map[overlay.PeerID]bool{publisher: true}
	queue := []overlay.PeerID{publisher}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range o.topicLinks[u] {
			if visited[v] || !want[v] || !o.Online(v) {
				continue
			}
			visited[v] = true
			t.AddPath(overlay.Path{u, v})
			queue = append(queue, v)
		}
	}
	var failed []overlay.PeerID
	for _, s := range subs {
		if s == publisher || t.Contains(s) {
			continue
		}
		path, ok := o.Route(publisher, s)
		if !ok {
			failed = append(failed, s)
			continue
		}
		t.AddPath(path)
	}
	return t, failed
}

// Repair implements OMen's shadow-based mending: offline topic links are
// replaced by links to a shadow peer, blind to the shadow's availability
// history.
func (o *Overlay) Repair() {
	n := o.N()
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !o.Online(pid) {
			continue
		}
		for _, q := range append([]overlay.PeerID(nil), o.topicLinks[pid]...) {
			if o.Online(q) {
				continue
			}
			o.removeTopicEdge(pid, q)
			for _, sh := range o.shadows[pid] {
				if sh != pid && o.Online(sh) && !o.hasTopicEdge(pid, sh) {
					o.addTopicEdge(pid, sh)
					break
				}
			}
		}
	}
}

func (o *Overlay) removeTopicEdge(u, v overlay.PeerID) {
	rm := func(a, b overlay.PeerID) {
		l := o.topicLinks[a]
		for i, x := range l {
			if x == b {
				l[i] = l[len(l)-1]
				o.topicLinks[a] = l[:len(l)-1]
				o.topicDeg[a]--
				break
			}
		}
	}
	rm(u, v)
	rm(v, u)
	if !o.protected[u][v] {
		o.RemoveLink(u, v)
	}
	if !o.protected[v][u] {
		o.RemoveLink(v, u)
	}
}
