package bayeux

import (
	"math/rand"
	"testing"

	"selectps/internal/overlay"
)

func build(n int) *Overlay {
	return New(n, Config{}, rand.New(rand.NewSource(1)))
}

func TestDigitHelpers(t *testing.T) {
	var id uint32 = 0b11_10_01_00 << 24 // digits 3,2,1,0,...
	for l, want := range []int{3, 2, 1, 0} {
		if got := digit(id, l); got != want {
			t.Errorf("digit(%d) = %d, want %d", l, got, want)
		}
	}
	if got := sharedPrefix(id, id); got != numLevels {
		t.Errorf("sharedPrefix(x,x) = %d", got)
	}
	if got := sharedPrefix(0xFF000000, 0x00000000); got != 0 {
		t.Errorf("sharedPrefix differing first digit = %d", got)
	}
	// 0xFC = digits 11,11,11,00…; 0xFF = 11,11,11,11… → 3 shared digits.
	if got := sharedPrefix(0xFC000000, 0xFF000000); got != 3 {
		t.Errorf("sharedPrefix = %d, want 3", got)
	}
}

func TestUniqueIDs(t *testing.T) {
	o := build(500)
	seen := make(map[uint32]bool)
	for p := 0; p < 500; p++ {
		id := o.ID(overlay.PeerID(p))
		if seen[id] {
			t.Fatalf("duplicate id %x", id)
		}
		seen[id] = true
	}
}

func TestRouteAllPairsSample(t *testing.T) {
	o := build(300)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		src := overlay.PeerID(rng.Intn(300))
		dst := overlay.PeerID(rng.Intn(300))
		path, ok := o.Route(src, dst)
		if !ok {
			t.Fatalf("route %d->%d failed", src, dst)
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("bad endpoints %v", path)
		}
		// Prefix routing: hop count bounded by levels plus small surrogate
		// slack.
		if path.Hops() > numLevels+4 {
			t.Fatalf("route %d->%d took %d hops", src, dst, path.Hops())
		}
	}
}

func TestRouteSelf(t *testing.T) {
	o := build(10)
	path, ok := o.Route(4, 4)
	if !ok || path.Hops() != 0 {
		t.Errorf("self route = %v, %v", path, ok)
	}
}

func TestRendezvousRootDeterministic(t *testing.T) {
	o := build(100)
	r1, ok1 := o.RendezvousRoot(7)
	r2, ok2 := o.RendezvousRoot(7)
	if !ok1 || !ok2 || r1 != r2 {
		t.Errorf("rendezvous root unstable: %d vs %d", r1, r2)
	}
	// Different topics should (usually) map to different roots.
	r3, _ := o.RendezvousRoot(8)
	r4, _ := o.RendezvousRoot(9)
	if r1 == r3 && r3 == r4 {
		t.Error("all topics mapped to one root; suspicious")
	}
}

func TestDisseminationTreeCoversSubscribers(t *testing.T) {
	o := build(200)
	subs := []overlay.PeerID{3, 30, 77, 120, 199}
	tree, failed := o.DisseminationTree(10, subs)
	if len(failed) != 0 {
		t.Fatalf("failed: %v", failed)
	}
	if tree.Root != 10 {
		t.Fatalf("root = %d", tree.Root)
	}
	for _, s := range subs {
		if !tree.Contains(s) {
			t.Errorf("subscriber %d missing", s)
		}
	}
	root, _ := o.RendezvousRoot(10)
	if !tree.Contains(root) {
		t.Error("rendezvous root missing from tree")
	}
}

func TestDisseminationProducesRelays(t *testing.T) {
	o := build(400)
	subs := []overlay.PeerID{5, 100, 200, 300}
	tree, _ := o.DisseminationTree(0, subs)
	isSub := func(p overlay.PeerID) bool {
		for _, s := range subs {
			if s == p {
				return true
			}
		}
		return false
	}
	if tree.RelayNodes(isSub) == 0 {
		t.Error("Bayeux rendezvous tree should contain relay nodes")
	}
}

func TestChurnRouting(t *testing.T) {
	o := build(300)
	rng := rand.New(rand.NewSource(3))
	// 15% of peers offline.
	for i := 0; i < 45; i++ {
		o.SetOnline(overlay.PeerID(rng.Intn(300)), false)
	}
	o.Repair()
	okCount, total := 0, 0
	for i := 0; i < 200; i++ {
		src := overlay.PeerID(rng.Intn(300))
		dst := overlay.PeerID(rng.Intn(300))
		if !o.Online(src) || !o.Online(dst) {
			continue
		}
		total++
		path, ok := o.Route(src, dst)
		if !ok {
			continue
		}
		okCount++
		for _, p := range path[1 : len(path)-1] {
			if !o.Online(p) {
				t.Fatalf("route used offline peer %d", p)
			}
		}
	}
	if total == 0 || float64(okCount)/float64(total) < 0.9 {
		t.Errorf("only %d/%d routes survived churn", okCount, total)
	}
}

func TestPositionsMirrorIDs(t *testing.T) {
	o := build(50)
	for p := overlay.PeerID(0); p < 50; p++ {
		if !o.Position(p).Valid() {
			t.Fatalf("invalid position for %d", p)
		}
		want := float64(o.ID(p)) / (1 << 32)
		if float64(o.Position(p)) != want {
			t.Fatalf("position %v != id-derived %v", o.Position(p), want)
		}
	}
}

func TestLinksMirrorTables(t *testing.T) {
	o := build(120)
	for p := overlay.PeerID(0); p < 120; p++ {
		if o.Degree(p) == 0 {
			t.Errorf("peer %d has no links", p)
		}
		for _, q := range o.Links(p) {
			if q == p {
				t.Errorf("peer %d links to itself", p)
			}
		}
	}
}
