// Package bayeux implements the Bayeux baseline (Zhuang et al. — paper
// ref. [11]): peers organized in a Tapestry-style prefix-routing DHT, with
// a per-topic rendezvous node at the root of a spanning tree that delivers
// events to subscribers.
//
// Peers carry immutable 32-bit identifiers (base-4 digits, 16 levels).
// Routing fixes one digit of the target per hop, giving O(log N) hops; a
// surrogate rule handles missing or offline table entries. Each publisher
// is a topic: its rendezvous root is the peer whose identifier is closest
// to the topic hash, subscribers join by routing toward the root, and
// publications flow publisher → root → reverse join paths. Nodes on those
// paths relay messages they never subscribed to — the relay-node overhead
// the paper's Fig. 3 attributes to Bayeux.
package bayeux

import (
	"encoding/binary"
	"math/bits"
	"sort"

	"crypto/sha1"
	"math/rand"

	"selectps/internal/overlay"
	"selectps/internal/ring"
)

const (
	digitBits = 2  // base-4 digits
	numLevels = 16 // 32-bit ids / 2 bits per digit
	numDigits = 1 << digitBits
)

// digit returns the l-th most significant base-4 digit of id.
func digit(id uint32, l int) int {
	shift := 32 - digitBits*(l+1)
	return int(id>>shift) & (numDigits - 1)
}

// sharedPrefix returns how many leading digits a and b share (0..numLevels).
func sharedPrefix(a, b uint32) int {
	if a == b {
		return numLevels
	}
	return bits.LeadingZeros32(a^b) / digitBits
}

// Overlay is a constructed Bayeux network.
type Overlay struct {
	*overlay.Base
	ids    []uint32 // per-peer DHT identifier
	byID   []overlay.PeerID
	sorted []uint32 // ids in ascending order, aligned with byID
	// rt[p] holds numLevels*numDigits entries; -1 when empty.
	rt [][]overlay.PeerID
}

// Config parameterizes construction. Bayeux needs no tuning knobs beyond
// determinism; the struct exists for interface symmetry with the other
// systems.
type Config struct{}

// New builds a Bayeux overlay over n peers, deterministic in rng (used only
// for id collision salting, which SHA-1 makes effectively unnecessary).
func New(n int, _ Config, _ *rand.Rand) *Overlay {
	o := &Overlay{
		Base: overlay.NewBase("bayeux", n),
		ids:  make([]uint32, n),
	}
	seen := make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		id := hash32(uint64(i), 0)
		for salt := uint64(1); seen[id]; salt++ {
			id = hash32(uint64(i), salt)
		}
		seen[id] = true
		o.ids[i] = id
		// Ring position mirrors the DHT id so the generic Overlay interface
		// (Fig. 8 style measurements) sees a consistent geometry.
		o.SetPosition(overlay.PeerID(i), ring.Norm(float64(id)/float64(1<<32)))
	}
	o.buildSortedIndex()
	o.buildTables()
	return o
}

func hash32(key, salt uint64) uint32 {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], key)
	binary.BigEndian.PutUint64(b[8:], salt)
	sum := sha1.Sum(b[:])
	return binary.BigEndian.Uint32(sum[:4])
}

func (o *Overlay) buildSortedIndex() {
	n := len(o.ids)
	o.byID = make([]overlay.PeerID, n)
	for i := range o.byID {
		o.byID[i] = overlay.PeerID(i)
	}
	sort.Slice(o.byID, func(i, j int) bool { return o.ids[o.byID[i]] < o.ids[o.byID[j]] })
	o.sorted = make([]uint32, n)
	for i, p := range o.byID {
		o.sorted[i] = o.ids[p]
	}
}

// buildTables fills every peer's prefix routing table from global
// knowledge (the simulator stands in for Tapestry's join protocol). For
// each level l, peers sharing an l-digit prefix are grouped; within a
// group, the entry for digit d points to the group member with that next
// digit whose id is numerically closest to the owner's.
func (o *Overlay) buildTables() {
	n := len(o.ids)
	o.rt = make([][]overlay.PeerID, n)
	for p := range o.rt {
		e := make([]overlay.PeerID, numLevels*numDigits)
		for i := range e {
			e[i] = -1
		}
		o.rt[p] = e
	}
	// groups: prefix value -> members, rebuilt per level. Members are in
	// ascending id order because we iterate byID.
	type bucketed struct {
		members [numDigits][]overlay.PeerID
	}
	for l := 0; l < numLevels; l++ {
		groups := make(map[uint32]*bucketed)
		shift := 32 - digitBits*l
		for _, p := range o.byID {
			var prefix uint32
			if l > 0 {
				prefix = o.ids[p] >> shift
			}
			g := groups[prefix]
			if g == nil {
				g = &bucketed{}
				groups[prefix] = g
			}
			g.members[digit(o.ids[p], l)] = append(g.members[digit(o.ids[p], l)], p)
		}
		// Fill entries: for each group member and digit, point at the
		// closest-id representative within the digit bucket.
		for _, g := range groups {
			var all []overlay.PeerID
			for d := 0; d < numDigits; d++ {
				all = append(all, g.members[d]...)
			}
			for _, p := range all {
				for d := 0; d < numDigits; d++ {
					cand := g.members[d]
					if len(cand) == 0 {
						continue
					}
					o.rt[p][l*numDigits+d] = closestByID(o.ids, cand, o.ids[p])
				}
			}
		}
	}
	// Mirror table entries into the generic link sets so Links() reflects
	// the maintained connections (deduplicated).
	for p := range o.rt {
		o.SetLinks(overlay.PeerID(p), nil)
		for _, q := range o.rt[p] {
			if q >= 0 && q != overlay.PeerID(p) {
				o.AddLink(overlay.PeerID(p), q)
			}
		}
	}
}

// closestByID returns the candidate (ascending id order) whose id is
// numerically closest to ref.
func closestByID(ids []uint32, cand []overlay.PeerID, ref uint32) overlay.PeerID {
	best := cand[0]
	var bestD uint32 = absDiff(ids[best], ref)
	for _, c := range cand[1:] {
		if d := absDiff(ids[c], ref); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// ID returns peer p's 32-bit DHT identifier.
func (o *Overlay) ID(p overlay.PeerID) uint32 { return o.ids[p] }

// Route implements prefix routing from src to dst, fixing one digit per
// hop; offline or missing entries fall back to the surrogate rule (any
// online table entry with a strictly longer shared prefix with the target,
// else the online entry numerically closest to it).
func (o *Overlay) Route(src, dst overlay.PeerID) (overlay.Path, bool) {
	if src == dst {
		return overlay.Path{src}, true
	}
	target := o.ids[dst]
	path := overlay.Path{src}
	cur := src
	for hops := 0; hops < overlay.MaxRouteHops; hops++ {
		if cur == dst {
			return path, true
		}
		l := sharedPrefix(o.ids[cur], target)
		next := overlay.PeerID(-1)
		if l < numLevels {
			if e := o.rt[cur][l*numDigits+digit(target, l)]; e >= 0 && e != cur && o.Online(e) {
				next = e
			}
		}
		if next < 0 {
			next = o.surrogate(cur, target)
		}
		if next < 0 || next == cur {
			return path, false
		}
		path = append(path, next)
		cur = next
	}
	return path, false
}

// surrogate scans cur's table for the best online fallback: longest shared
// prefix with target, ties by numeric closeness. Returns -1 when no online
// entry improves on cur.
func (o *Overlay) surrogate(cur overlay.PeerID, target uint32) overlay.PeerID {
	curShared := sharedPrefix(o.ids[cur], target)
	curDist := absDiff(o.ids[cur], target)
	best := overlay.PeerID(-1)
	bestShared, bestDist := curShared, curDist
	for _, e := range o.rt[cur] {
		if e < 0 || e == cur || !o.Online(e) {
			continue
		}
		s := sharedPrefix(o.ids[e], target)
		d := absDiff(o.ids[e], target)
		if s > bestShared || (s == bestShared && d < bestDist) {
			best, bestShared, bestDist = e, s, d
		}
	}
	return best
}

// RendezvousRoot returns the topic root for publisher b: the online peer
// whose id is numerically closest to the topic hash. ok=false when all
// peers are offline.
func (o *Overlay) RendezvousRoot(b overlay.PeerID) (overlay.PeerID, bool) {
	topic := hash32(uint64(b), 0x7069) // distinct salt for the topic space
	best := overlay.PeerID(-1)
	var bestD uint32
	for p := range o.ids {
		if !o.Online(overlay.PeerID(p)) {
			continue
		}
		d := absDiff(o.ids[p], topic)
		if best < 0 || d < bestD {
			best, bestD = overlay.PeerID(p), d
		}
	}
	return best, best >= 0
}

// DisseminationTree implements overlay.Disseminator: the publisher routes
// the event to the rendezvous root, and the root forwards it down the
// reversed join paths of the subscribers.
func (o *Overlay) DisseminationTree(publisher overlay.PeerID, subs []overlay.PeerID) (*overlay.Tree, []overlay.PeerID) {
	t := overlay.NewTree(publisher)
	root, ok := o.RendezvousRoot(publisher)
	if !ok {
		return t, append([]overlay.PeerID(nil), subs...)
	}
	var failed []overlay.PeerID
	if root != publisher {
		path, ok := o.Route(publisher, root)
		if !ok {
			return t, append([]overlay.PeerID(nil), subs...)
		}
		t.AddPath(path)
	}
	for _, s := range subs {
		if s == publisher || t.Contains(s) {
			continue
		}
		join, ok := o.Route(s, root)
		if !ok {
			failed = append(failed, s)
			continue
		}
		// Reverse the join path: messages flow root -> ... -> s.
		rev := make(overlay.Path, len(join))
		for i, p := range join {
			rev[len(join)-1-i] = p
		}
		t.AddPath(rev)
	}
	return t, failed
}

// Repair rebuilds routing tables ignoring offline peers, modeling
// Tapestry's republishing/repair after failures.
func (o *Overlay) Repair() {
	// Drop offline peers from groups by rebuilding tables over online ids
	// only, then restore entries for offline peers' tables untouched (they
	// are unreachable anyway).
	n := len(o.ids)
	// Simple approach: rebuild everything, then null entries pointing to
	// offline peers and re-surrogate lazily during routing.
	o.buildTables()
	for p := 0; p < n; p++ {
		for i, e := range o.rt[p] {
			if e >= 0 && !o.Online(e) {
				o.rt[p][i] = -1
			}
		}
	}
}
