package check

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/ring"
)

// TestAllSystemsSatisfyInvariants is the cross-system integration check:
// every evaluated overlay must pass structure, reachability and routing
// validation, fully online and after a churn+repair cycle.
func TestAllSystemsSatisfyInvariants(t *testing.T) {
	g := datasets.Facebook.Generate(300, 1)
	for _, kind := range pubsub.AllKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			o, err := pubsub.Build(kind, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(2)))
			if err != nil {
				t.Fatal(err)
			}
			if r := All(o, 100, rand.New(rand.NewSource(3))); !r.Ok() {
				t.Fatalf("online invariants violated:\n%s", r)
			}
			// Churn 20% of peers, repair, re-check structure. (Routing under
			// churn is only guaranteed for SELECT; Fig. 6 measures that.)
			rng := rand.New(rand.NewSource(4))
			for i := 0; i < 60; i++ {
				o.SetOnline(overlay.PeerID(rng.Intn(300)), false)
			}
			o.Repair()
			if r := Structure(o); !r.Ok() {
				t.Fatalf("post-churn structure violated:\n%s", r)
			}
		})
	}
}

func TestSelectRoutesUnderChurn(t *testing.T) {
	g := datasets.Facebook.Generate(300, 5)
	o, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 90; i++ {
		o.SetOnline(overlay.PeerID(rng.Intn(300)), false)
	}
	o.Repair()
	if r := Routes(o, 150, rng); !r.Ok() {
		t.Fatalf("SELECT routing under churn violated:\n%s", r)
	}
}

// fakeOverlay is a minimal hand-built overlay for negative tests.
type fakeOverlay struct{ *overlay.Base }

func newFake(n int) *fakeOverlay {
	f := &fakeOverlay{overlay.NewBase("fake", n)}
	for i := 0; i < n; i++ {
		f.SetPosition(overlay.PeerID(i), ring.HashUint64(uint64(i)))
	}
	return f
}

func TestStructureCatchesViolations(t *testing.T) {
	f := newFake(3)
	// Duplicate link injected via SetLinks (AddLink would dedupe).
	f.SetLinks(0, []overlay.PeerID{1, 1})
	r := Structure(f)
	if r.Ok() {
		t.Fatal("duplicate link not caught")
	}
	f2 := newFake(2)
	f2.SetLinks(0, []overlay.PeerID{0}) // self link
	if Structure(f2).Ok() {
		t.Fatal("self link not caught")
	}
	f3 := newFake(2)
	f3.SetLinks(0, []overlay.PeerID{5}) // out of range
	if Structure(f3).Ok() {
		t.Fatal("out-of-range link not caught")
	}
}

func TestReachabilityCatchesPartition(t *testing.T) {
	f := newFake(4)
	f.AddLink(0, 1)
	f.AddLink(2, 3) // two components
	if Reachability(f).Ok() {
		t.Fatal("partition not caught")
	}
	f.AddLink(1, 2)
	if r := Reachability(f); !r.Ok() {
		t.Fatalf("connected overlay flagged:\n%s", r)
	}
}

func TestReachabilityIgnoresOffline(t *testing.T) {
	f := newFake(3)
	f.AddLink(0, 1)
	f.SetOnline(2, false) // isolated but offline: fine
	if r := Reachability(f); !r.Ok() {
		t.Fatalf("offline isolate flagged:\n%s", r)
	}
}

func TestRoutesCatchesDeadEnd(t *testing.T) {
	f := newFake(3)
	f.AddLink(0, 1) // 1 and 2 have no outgoing links; many routes dead-end
	r := Routes(f, 50, rand.New(rand.NewSource(8)))
	if r.Ok() {
		t.Fatal("dead-end routing not caught")
	}
}

func TestTreeChecks(t *testing.T) {
	tr := overlay.NewTree(0)
	tr.AddPath(overlay.Path{0, 1, 2})
	if r := Tree(tr); !r.Ok() {
		t.Fatalf("valid tree flagged:\n%s", r)
	}
}

func TestEmptyOverlay(t *testing.T) {
	f := newFake(0)
	if r := All(f, 10, rand.New(rand.NewSource(9))); !r.Ok() {
		t.Fatalf("empty overlay flagged:\n%s", r)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{}
	if r.String() != "ok" {
		t.Errorf("empty report = %q", r.String())
	}
	r.addf("boom %d", 7)
	if r.Ok() || r.String() != "boom 7\n" {
		t.Errorf("report = %q ok=%v", r.String(), r.Ok())
	}
}
