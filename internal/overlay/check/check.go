// Package check validates structural invariants of overlays and
// dissemination trees. The experiments trust these invariants (distinct
// in-range positions, well-formed link sets, reachability among online
// peers, acyclic trees); the checker makes them executable so every
// system's tests — and debugging sessions — can assert them directly.
package check

import (
	"fmt"
	"math/rand"

	"selectps/internal/overlay"
)

// Report collects invariant violations; empty means all checks passed.
type Report struct {
	Violations []string
}

// Ok reports whether no violations were recorded.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) addf(format string, args ...interface{}) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// String renders the report, one violation per line.
func (r *Report) String() string {
	if r.Ok() {
		return "ok"
	}
	out := ""
	for _, v := range r.Violations {
		out += v + "\n"
	}
	return out
}

// Structure validates per-peer state: positions in [0,1), no self links,
// no duplicate links, link targets in range.
func Structure(o overlay.Overlay) *Report {
	r := &Report{}
	n := o.N()
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !o.Position(pid).Valid() {
			r.addf("peer %d: position %v outside [0,1)", p, o.Position(pid))
		}
		seen := make(map[overlay.PeerID]bool)
		for _, q := range o.Links(pid) {
			switch {
			case q == pid:
				r.addf("peer %d: self link", p)
			case q < 0 || int(q) >= n:
				r.addf("peer %d: link target %d out of range", p, q)
			case seen[q]:
				r.addf("peer %d: duplicate link to %d", p, q)
			}
			seen[q] = true
		}
	}
	return r
}

// Reachability verifies every online peer can reach every other online
// peer along online links (BFS over the union of link directions — links
// are usable connections). A partitioned overlay cannot guarantee
// delivery, which breaks the paper's §V correctness argument for the ring.
func Reachability(o overlay.Overlay) *Report {
	r := &Report{}
	n := o.N()
	if n == 0 {
		return r
	}
	// Union adjacency both ways: a TCP connection is usable by both ends.
	adj := make([][]overlay.PeerID, n)
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !o.Online(pid) {
			continue
		}
		for _, q := range o.Links(pid) {
			if o.Online(q) {
				adj[p] = append(adj[p], q)
				adj[q] = append(adj[q], pid)
			}
		}
	}
	start := overlay.PeerID(-1)
	online := 0
	for p := 0; p < n; p++ {
		if o.Online(overlay.PeerID(p)) {
			online++
			if start < 0 {
				start = overlay.PeerID(p)
			}
		}
	}
	if online == 0 {
		return r
	}
	visited := make([]bool, n)
	visited[start] = true
	queue := []overlay.PeerID{start}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	if count != online {
		r.addf("overlay partitioned: %d of %d online peers reachable from %d",
			count, online, start)
	}
	return r
}

// Routes samples random online peer pairs and verifies the system's
// routing succeeds, terminates at the destination and uses only online
// peers and existing links.
func Routes(o overlay.Overlay, samples int, rng *rand.Rand) *Report {
	r := &Report{}
	n := o.N()
	if n < 2 {
		return r
	}
	links := func(p overlay.PeerID) map[overlay.PeerID]bool {
		m := make(map[overlay.PeerID]bool, len(o.Links(p)))
		for _, q := range o.Links(p) {
			m[q] = true
		}
		return m
	}
	for i := 0; i < samples; i++ {
		src := overlay.PeerID(rng.Intn(n))
		dst := overlay.PeerID(rng.Intn(n))
		if !o.Online(src) || !o.Online(dst) {
			continue
		}
		path, ok := overlay.RouteOn(o, src, dst)
		if !ok {
			r.addf("route %d->%d failed at %v", src, dst, path)
			continue
		}
		if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
			r.addf("route %d->%d has bad endpoints %v", src, dst, path)
			continue
		}
		for j := 1; j < len(path); j++ {
			if !o.Online(path[j]) {
				r.addf("route %d->%d passes offline peer %d", src, dst, path[j])
			}
			// Hops must follow usable connections in either direction.
			if !links(path[j-1])[path[j]] && !links(path[j])[path[j-1]] {
				r.addf("route %d->%d uses non-link %d->%d", src, dst, path[j-1], path[j])
			}
		}
	}
	return r
}

// Tree verifies a dissemination tree: parent/children consistency, no
// cycles, every node reaches the root.
func Tree(t *overlay.Tree) *Report {
	r := &Report{}
	for _, p := range t.Nodes() {
		if p == t.Root {
			continue
		}
		if d := t.Depth(p); d < 0 {
			r.addf("tree node %d does not reach the root", p)
		}
		par, ok := t.Parent(p)
		if !ok {
			r.addf("tree node %d has no parent", p)
			continue
		}
		found := false
		for _, c := range t.Children(par) {
			if c == p {
				found = true
				break
			}
		}
		if !found {
			r.addf("tree node %d missing from parent %d's children", p, par)
		}
	}
	return r
}

// All runs Structure, Reachability and Routes and merges the reports.
func All(o overlay.Overlay, routeSamples int, rng *rand.Rand) *Report {
	r := Structure(o)
	r.Violations = append(r.Violations, Reachability(o).Violations...)
	r.Violations = append(r.Violations, Routes(o, routeSamples, rng).Violations...)
	return r
}
