package overlay

import (
	"fmt"
	"sort"

	"selectps/internal/ring"
)

// Base is an embeddable implementation of the bookkeeping half of Overlay:
// positions, link sets and liveness for n peers. Concrete systems embed it
// and add their construction, routing and repair logic.
type Base struct {
	name    string
	pos     []ring.ID
	links   [][]PeerID
	online  []bool
	offline int
}

// NewBase creates bookkeeping for n peers, all online at position 0 with no
// links.
func NewBase(name string, n int) *Base {
	b := &Base{
		name:   name,
		pos:    make([]ring.ID, n),
		links:  make([][]PeerID, n),
		online: make([]bool, n),
	}
	for i := range b.online {
		b.online[i] = true
	}
	return b
}

// Name implements Overlay.
func (b *Base) Name() string { return b.name }

// N implements Overlay.
func (b *Base) N() int { return len(b.pos) }

// Position implements Overlay.
func (b *Base) Position(p PeerID) ring.ID { return b.pos[p] }

// SetPosition moves a peer in the ID space.
func (b *Base) SetPosition(p PeerID, id ring.ID) {
	if !id.Valid() {
		panic(fmt.Sprintf("overlay: invalid position %v for peer %d", id, p))
	}
	b.pos[p] = id
}

// Links implements Overlay.
func (b *Base) Links(p PeerID) []PeerID { return b.links[p] }

// SetLinks replaces a peer's entire link set.
func (b *Base) SetLinks(p PeerID, l []PeerID) { b.links[p] = l }

// AddLink appends a link if not already present; it reports whether the
// link was added.
func (b *Base) AddLink(p, q PeerID) bool {
	if p == q {
		return false
	}
	for _, x := range b.links[p] {
		if x == q {
			return false
		}
	}
	b.links[p] = append(b.links[p], q)
	return true
}

// RemoveLink deletes q from p's links; it reports whether it was present.
func (b *Base) RemoveLink(p, q PeerID) bool {
	l := b.links[p]
	for i, x := range l {
		if x == q {
			l[i] = l[len(l)-1]
			b.links[p] = l[:len(l)-1]
			return true
		}
	}
	return false
}

// HasLink reports whether p links to q.
func (b *Base) HasLink(p, q PeerID) bool {
	for _, x := range b.links[p] {
		if x == q {
			return true
		}
	}
	return false
}

// Degree returns the number of outgoing links of p.
func (b *Base) Degree(p PeerID) int { return len(b.links[p]) }

// Online implements Overlay.
func (b *Base) Online(p PeerID) bool { return b.online[p] }

// SetOnline implements Overlay.
func (b *Base) SetOnline(p PeerID, online bool) {
	if b.online[p] != online {
		b.online[p] = online
		if online {
			b.offline--
		} else {
			b.offline++
		}
	}
}

// OfflineCount returns how many peers are currently offline.
func (b *Base) OfflineCount() int { return b.offline }

// Repair implements Overlay as a no-op; systems with recovery protocols
// override it.
func (b *Base) Repair() {}

// SortedByPosition returns all peers ordered by ring position (ties by id),
// the ring successor order used to wire short-range links.
func (b *Base) SortedByPosition() []PeerID {
	out := make([]PeerID, len(b.pos))
	for i := range out {
		out[i] = PeerID(i)
	}
	sort.Slice(out, func(i, j int) bool {
		if b.pos[out[i]] != b.pos[out[j]] {
			return b.pos[out[i]] < b.pos[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// WireRing gives every peer links to its ring successor and predecessor —
// the two short-range links R_p^s every system keeps for correctness
// (§III-D, and the paper's §V argument that the ring grounds reachability).
func (b *Base) WireRing() {
	order := b.SortedByPosition()
	n := len(order)
	if n < 2 {
		return
	}
	for i, p := range order {
		succ := order[(i+1)%n]
		pred := order[(i-1+n)%n]
		b.AddLink(p, succ)
		b.AddLink(p, pred)
	}
}

// ClosestOnline returns the online peer whose position is nearest to id
// (linear scan; used by construction phases, not routing). ok=false when
// every peer is offline.
func (b *Base) ClosestOnline(id ring.ID) (PeerID, bool) {
	best, bestD, found := PeerID(-1), 2.0, false
	for p := range b.pos {
		if !b.online[p] {
			continue
		}
		if d := ring.Distance(b.pos[p], id); d < bestD {
			best, bestD, found = PeerID(p), d, true
		}
	}
	return best, found
}
