package overlay

import (
	"math/rand"
	"testing"

	"selectps/internal/ring"
)

// ringOverlay builds a Base with n peers at uniform-hash positions, wired
// as a plain ring (successor+predecessor only).
func ringOverlay(n int) *Base {
	b := NewBase("test", n)
	for i := 0; i < n; i++ {
		b.SetPosition(PeerID(i), ring.HashUint64(uint64(i)))
	}
	b.WireRing()
	return b
}

func TestBaseBookkeeping(t *testing.T) {
	b := NewBase("x", 3)
	if b.Name() != "x" || b.N() != 3 {
		t.Fatalf("Name/N wrong")
	}
	if !b.AddLink(0, 1) || b.AddLink(0, 1) {
		t.Error("AddLink dedupe broken")
	}
	if b.AddLink(1, 1) {
		t.Error("self link accepted")
	}
	if !b.HasLink(0, 1) || b.HasLink(1, 0) {
		t.Error("HasLink wrong")
	}
	if b.Degree(0) != 1 {
		t.Errorf("Degree = %d", b.Degree(0))
	}
	if !b.RemoveLink(0, 1) || b.RemoveLink(0, 1) {
		t.Error("RemoveLink broken")
	}
}

func TestBaseOnlineCounting(t *testing.T) {
	b := NewBase("x", 4)
	b.SetOnline(2, false)
	b.SetOnline(2, false) // idempotent
	if b.OfflineCount() != 1 || b.Online(2) {
		t.Errorf("offline=%d online(2)=%v", b.OfflineCount(), b.Online(2))
	}
	b.SetOnline(2, true)
	if b.OfflineCount() != 0 {
		t.Errorf("offline=%d after recovery", b.OfflineCount())
	}
}

func TestSetPositionValidation(t *testing.T) {
	b := NewBase("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid position accepted")
		}
	}()
	b.SetPosition(0, ring.ID(1.5))
}

func TestWireRingLinksEveryPeerBothWays(t *testing.T) {
	b := ringOverlay(20)
	for p := PeerID(0); p < 20; p++ {
		if b.Degree(p) < 2 {
			t.Errorf("peer %d has %d ring links", p, b.Degree(p))
		}
	}
}

func TestGreedyRouteOnRing(t *testing.T) {
	b := ringOverlay(64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		src := PeerID(rng.Intn(64))
		dst := PeerID(rng.Intn(64))
		path, ok := GreedyRoute(b, src, dst)
		if !ok {
			t.Fatalf("route %d->%d failed", src, dst)
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		// Every consecutive pair must be a link.
		for j := 1; j < len(path); j++ {
			if !b.HasLink(path[j-1], path[j]) {
				t.Fatalf("path uses non-link %d->%d", path[j-1], path[j])
			}
		}
	}
}

func TestGreedyRouteSelf(t *testing.T) {
	b := ringOverlay(4)
	path, ok := GreedyRoute(b, 2, 2)
	if !ok || path.Hops() != 0 || path[0] != 2 {
		t.Errorf("self route = %v ok=%v", path, ok)
	}
}

func TestGreedyRouteSkipsOffline(t *testing.T) {
	// Ring of 8; take one peer offline; routes between the remaining peers
	// must avoid it. A plain ring with an offline node can dead-end going
	// one way, but greedy may also succeed the other way; we only assert it
	// never *uses* the offline hop.
	b := ringOverlay(8)
	b.SetOnline(3, false)
	for src := PeerID(0); src < 8; src++ {
		for dst := PeerID(0); dst < 8; dst++ {
			if src == 3 || dst == 3 || src == dst {
				continue
			}
			path, ok := GreedyRoute(b, src, dst)
			if !ok {
				continue // dead-end acceptable on a bare ring
			}
			for _, p := range path[1:] {
				if p == 3 {
					t.Fatalf("route %d->%d used offline peer", src, dst)
				}
			}
		}
	}
}

func TestGreedyRouteDeadEnd(t *testing.T) {
	b := NewBase("x", 3)
	b.SetPosition(0, 0.0)
	b.SetPosition(1, 0.4)
	b.SetPosition(2, 0.8)
	b.AddLink(0, 1) // 1 has no links at all
	if _, ok := GreedyRoute(b, 0, 2); ok {
		t.Error("expected dead-end routing to fail")
	}
}

func TestPathHops(t *testing.T) {
	if (Path{}).Hops() != 0 || (Path{1}).Hops() != 0 || (Path{1, 2, 3}).Hops() != 2 {
		t.Error("Hops arithmetic wrong")
	}
}

func TestTreeBasics(t *testing.T) {
	tr := NewTree(0)
	if !tr.Contains(0) || tr.Size() != 1 {
		t.Fatal("fresh tree wrong")
	}
	tr.AddPath(Path{0, 1, 2})
	tr.AddPath(Path{0, 1, 3})
	tr.AddPath(Path{2, 4})
	if tr.Size() != 5 {
		t.Fatalf("Size = %d, want 5", tr.Size())
	}
	if par, ok := tr.Parent(3); !ok || par != 1 {
		t.Errorf("Parent(3) = %d,%v", par, ok)
	}
	if _, ok := tr.Parent(0); ok {
		t.Error("root has a parent")
	}
	if d := tr.Depth(4); d != 3 {
		t.Errorf("Depth(4) = %d, want 3", d)
	}
	if d := tr.Depth(99); d != -1 {
		t.Errorf("Depth(absent) = %d, want -1", d)
	}
	if len(tr.Children(1)) != 2 {
		t.Errorf("Children(1) = %v", tr.Children(1))
	}
	if len(tr.Nodes()) != 5 {
		t.Errorf("Nodes = %v", tr.Nodes())
	}
}

func TestTreeAddPathKeepsFirstParent(t *testing.T) {
	tr := NewTree(0)
	tr.AddPath(Path{0, 1, 2})
	tr.AddPath(Path{0, 3, 2}) // 2 already present; parent must stay 1
	if par, _ := tr.Parent(2); par != 1 {
		t.Errorf("Parent(2) = %d, want 1", par)
	}
	if tr.Size() != 4 {
		t.Errorf("Size = %d, want 4", tr.Size())
	}
}

func TestTreeAddPathPanicsOnDisconnected(t *testing.T) {
	tr := NewTree(0)
	defer func() {
		if recover() == nil {
			t.Fatal("AddPath from outside tree did not panic")
		}
	}()
	tr.AddPath(Path{5, 6})
}

func TestRelayNodesAndForwardCounts(t *testing.T) {
	// 0 -> 1 -> 2, 0 -> 3 ; subscribers: {2,3}. Node 1 is a pure relay.
	tr := NewTree(0)
	tr.AddPath(Path{0, 1, 2})
	tr.AddPath(Path{0, 3})
	subs := map[PeerID]bool{2: true, 3: true}
	got := tr.RelayNodes(func(p PeerID) bool { return subs[p] })
	if got != 1 {
		t.Errorf("RelayNodes = %d, want 1", got)
	}
	fc := tr.ForwardCounts()
	if fc[0] != 2 || fc[1] != 1 {
		t.Errorf("ForwardCounts = %v", fc)
	}
	if _, ok := fc[2]; ok {
		t.Error("leaf has forward count")
	}
}

func TestChildrenArray(t *testing.T) {
	tr := NewTree(1)
	tr.AddPath(Path{1, 0})
	tr.AddPath(Path{1, 2, 3})
	arr := tr.ChildrenArray(4)
	if len(arr[1]) != 2 || len(arr[2]) != 1 || len(arr[0]) != 0 {
		t.Errorf("ChildrenArray = %v", arr)
	}
}

func TestBuildUnicastTree(t *testing.T) {
	b := ringOverlay(32)
	subs := []PeerID{3, 9, 17, 25}
	tr, failed := BuildUnicastTree(b, 0, subs)
	if len(failed) != 0 {
		t.Fatalf("failed = %v", failed)
	}
	for _, s := range subs {
		if !tr.Contains(s) {
			t.Errorf("subscriber %d missing from tree", s)
		}
	}
	// Publisher in subs and duplicate handling.
	tr2, _ := BuildUnicastTree(b, 0, []PeerID{0, 3, 3})
	if !tr2.Contains(3) || tr2.Size() < 2 {
		t.Error("duplicate/publisher subscribers mishandled")
	}
}

func TestSortedByPosition(t *testing.T) {
	b := NewBase("x", 3)
	b.SetPosition(0, 0.9)
	b.SetPosition(1, 0.1)
	b.SetPosition(2, 0.5)
	got := b.SortedByPosition()
	want := []PeerID{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedByPosition = %v, want %v", got, want)
		}
	}
}

func TestClosestOnline(t *testing.T) {
	b := NewBase("x", 3)
	b.SetPosition(0, 0.0)
	b.SetPosition(1, 0.5)
	b.SetPosition(2, 0.8)
	p, ok := b.ClosestOnline(0.45)
	if !ok || p != 1 {
		t.Errorf("ClosestOnline = %d,%v want 1", p, ok)
	}
	b.SetOnline(1, false)
	p, ok = b.ClosestOnline(0.45)
	if !ok || p == 1 {
		t.Errorf("ClosestOnline with 1 offline = %d,%v", p, ok)
	}
	b.SetOnline(0, false)
	b.SetOnline(2, false)
	if _, ok := b.ClosestOnline(0.45); ok {
		t.Error("ClosestOnline with all offline should fail")
	}
}

func TestPathRelays(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, subscribers {2,3}: path to 3 passes relays 1 (not
	// a subscriber) and 2 (a subscriber, not counted).
	tr := NewTree(0)
	tr.AddPath(Path{0, 1, 2, 3})
	isSub := func(p PeerID) bool { return p == 2 || p == 3 }
	if got := tr.PathRelays(3, isSub); got != 1 {
		t.Errorf("PathRelays(3) = %d, want 1", got)
	}
	if got := tr.PathRelays(2, isSub); got != 1 {
		t.Errorf("PathRelays(2) = %d, want 1", got)
	}
	if got := tr.PathRelays(1, isSub); got != 0 {
		t.Errorf("PathRelays(1) = %d, want 0", got)
	}
	if got := tr.PathRelays(0, isSub); got != 0 {
		t.Errorf("PathRelays(root) = %d, want 0", got)
	}
	if got := tr.PathRelays(99, isSub); got != -1 {
		t.Errorf("PathRelays(absent) = %d, want -1", got)
	}
}

// routerOverlay wraps a Base with a trivial Router and Disseminator so the
// dispatch paths in RouteOn/BuildTree are exercised.
type routerOverlay struct{ *Base }

func (r *routerOverlay) Route(src, dst PeerID) (Path, bool) {
	if src == dst {
		return Path{src}, true
	}
	return Path{src, dst}, true
}

func (r *routerOverlay) DisseminationTree(pub PeerID, subs []PeerID) (*Tree, []PeerID) {
	t := NewTree(pub)
	for _, s := range subs {
		if s != pub && !t.Contains(s) {
			t.AddPath(Path{pub, s})
		}
	}
	return t, nil
}

func TestRouteOnAndBuildTreeDispatch(t *testing.T) {
	r := &routerOverlay{NewBase("router", 4)}
	path, ok := RouteOn(r, 0, 3)
	if !ok || path.Hops() != 1 {
		t.Errorf("RouteOn did not dispatch to custom Router: %v %v", path, ok)
	}
	tree, failed := BuildTree(r, 0, []PeerID{1, 2, 3})
	if len(failed) != 0 || tree.Size() != 4 {
		t.Errorf("BuildTree did not dispatch to Disseminator: size=%d failed=%v",
			tree.Size(), failed)
	}
	// Base overlays without a Disseminator go through merged unicast.
	b := ringOverlay(8)
	tree2, _ := BuildTree(b, 0, []PeerID{3})
	if !tree2.Contains(3) {
		t.Error("BuildTree fallback failed")
	}
}

func TestSetLinksAndDefaultRepair(t *testing.T) {
	b := NewBase("x", 3)
	b.SetLinks(0, []PeerID{1, 2})
	if b.Degree(0) != 2 || !b.HasLink(0, 2) {
		t.Error("SetLinks did not replace link set")
	}
	b.SetLinks(0, nil)
	if b.Degree(0) != 0 {
		t.Error("SetLinks(nil) did not clear")
	}
	b.Repair() // no-op must not panic
}

func TestTreeNodesInsertionOrder(t *testing.T) {
	// Nodes() must be root-first then insertion order — dissemination-tree
	// construction breaks forwarder ties by first match over Nodes(), so a
	// map-order walk would make routing trees nondeterministic between
	// identical runs.
	tr := NewTree(0)
	tr.AddPath(Path{0, 5, 3})
	tr.AddPath(Path{0, 9})
	tr.AddPath(Path{5, 3, 7}) // 3 already present, 7 new
	want := []PeerID{0, 5, 3, 9, 7}
	got := tr.Nodes()
	if len(got) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}
