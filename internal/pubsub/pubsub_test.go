package pubsub

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
)

func TestDefaultK(t *testing.T) {
	cases := map[int]int{0: 2, 1: 2, 2: 2, 4: 2, 1024: 10, 1 << 20: 20, 63731: 15}
	for n, want := range cases {
		if got := DefaultK(n); got != want {
			t.Errorf("DefaultK(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBuildAllKinds(t *testing.T) {
	g := datasets.Facebook.Generate(300, 1)
	for _, kind := range AllKinds() {
		o, err := Build(kind, g, BuildOptions{}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("Build(%s): %v", kind, err)
		}
		if o.N() != 300 {
			t.Errorf("%s: N = %d", kind, o.N())
		}
		if string(kind) != o.Name() {
			t.Errorf("kind %s built overlay named %s", kind, o.Name())
		}
	}
	if _, err := Build("gnutella", g, BuildOptions{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestIterativeKindsImplementIterative(t *testing.T) {
	g := datasets.Slashdot.Generate(200, 3)
	for _, kind := range IterativeKinds() {
		o, err := Build(kind, g, BuildOptions{}, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		it, ok := o.(overlay.Iterative)
		if !ok {
			t.Fatalf("%s does not implement Iterative", kind)
		}
		if it.Iterations() < 1 {
			t.Errorf("%s iterations = %d", kind, it.Iterations())
		}
	}
}

func TestPublishAccounting(t *testing.T) {
	g := datasets.Facebook.Generate(300, 5)
	for _, kind := range AllKinds() {
		o, err := Build(kind, g, BuildOptions{}, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 10; i++ {
			b := overlay.PeerID(rng.Intn(300))
			d := Publish(o, g, b)
			if d.Subscribers != g.Degree(b) {
				t.Errorf("%s: subscribers %d != degree %d", kind, d.Subscribers, g.Degree(b))
			}
			if d.Delivered != d.Subscribers {
				t.Errorf("%s: only %d/%d delivered with no churn", kind, d.Delivered, d.Subscribers)
			}
			if d.TreeSize < d.Delivered {
				t.Errorf("%s: tree smaller than deliveries", kind)
			}
			if d.RelayNodes < 0 || d.RelayNodes > d.TreeSize {
				t.Errorf("%s: relay count %d out of range", kind, d.RelayNodes)
			}
			total := 0
			for _, c := range d.Forwards {
				total += c
			}
			// Every non-root tree node receives exactly one copy.
			if total != d.TreeSize-1 {
				t.Errorf("%s: forwards %d != tree edges %d", kind, total, d.TreeSize-1)
			}
		}
	}
}

func TestSelectFewerRelaysThanSymphony(t *testing.T) {
	// The headline claim at unit scale: SELECT's trees carry far fewer
	// relay nodes than Symphony's.
	g := datasets.Facebook.Generate(400, 8)
	sel, err := Build(Select, g, BuildOptions{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	sym, err := Build(Symphony, g, BuildOptions{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	var selRelays, symRelays int
	for i := 0; i < 30; i++ {
		b := overlay.PeerID(rng.Intn(400))
		selRelays += Publish(sel, g, b).RelayNodes
		symRelays += Publish(sym, g, b).RelayNodes
	}
	if selRelays*2 >= symRelays {
		t.Errorf("SELECT relays %d not well below Symphony %d", selRelays, symRelays)
	}
}

func TestOfflineSubscribersExcluded(t *testing.T) {
	g := datasets.Facebook.Generate(200, 11)
	o, err := Build(Select, g, BuildOptions{}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	var b overlay.PeerID = -1
	for p := overlay.PeerID(0); p < 200; p++ {
		if g.Degree(p) >= 3 {
			b = p
			break
		}
	}
	if b < 0 {
		t.Skip("no suitable publisher")
	}
	off := g.Neighbors(b)[0]
	o.SetOnline(off, false)
	d := Publish(o, g, b)
	if d.Subscribers != g.Degree(b)-1 {
		t.Errorf("offline subscriber still counted: %d vs %d", d.Subscribers, g.Degree(b)-1)
	}
	o.SetOnline(off, true)
}

func TestWorkloadExponentialPosting(t *testing.T) {
	g := datasets.Facebook.Generate(200, 13)
	w := NewWorkload(g, 10, rand.New(rand.NewSource(14)))
	total := 0
	for step := 0; step < 100; step++ {
		posters := w.PostersUntil(float64(step), 1)
		total += len(posters)
		for _, p := range posters {
			if p < 0 || int(p) >= 200 {
				t.Fatalf("bad poster %d", p)
			}
		}
	}
	// 200 users, ~1 post per 10 time units for an average user, 100 units:
	// expect on the order of 2000 posts (looser bounds for rate dispersion).
	if total < 800 || total > 8000 {
		t.Errorf("posts over horizon = %d, expected on the order of 2000", total)
	}
}

func TestWorkloadDegreeBias(t *testing.T) {
	g := datasets.Facebook.Generate(300, 15)
	w := NewWorkload(g, 5, rand.New(rand.NewSource(16)))
	counts := make(map[int32]int)
	for step := 0; step < 400; step++ {
		for _, p := range w.PostersUntil(float64(step), 1) {
			counts[p]++
		}
	}
	maxDeg, minDeg := int32(-1), int32(-1)
	for p := int32(0); p < 300; p++ {
		if maxDeg < 0 || g.Degree(p) > g.Degree(maxDeg) {
			maxDeg = p
		}
		if minDeg < 0 || g.Degree(p) < g.Degree(minDeg) {
			minDeg = p
		}
	}
	if counts[maxDeg] <= counts[minDeg] {
		t.Errorf("high-degree user posted %d <= low-degree %d", counts[maxDeg], counts[minDeg])
	}
}

func TestWorkloadValidation(t *testing.T) {
	g := datasets.Facebook.Generate(10, 17)
	defer func() {
		if recover() == nil {
			t.Fatal("nonpositive meanGap accepted")
		}
	}()
	NewWorkload(g, 0, rand.New(rand.NewSource(18)))
}
