// Package pubsub ties the overlays to the paper's publish/subscribe
// workload (§II-B): every social user is a publisher whose subscribers are
// its social friends (the interest function f follows the friendship
// edges), publishers post at an exponential rate (the latent-interaction
// model of ref. [21]), and each publication is delivered along a routing
// tree whose relay nodes, forwarding load and latency the experiments
// measure.
//
// The package also provides the single factory the experiment harness uses
// to construct any of the five evaluated systems from the same inputs.
package pubsub

import (
	"fmt"
	"math/rand"

	"selectps/internal/growth"
	"selectps/internal/overlay"
	"selectps/internal/overlay/bayeux"
	"selectps/internal/overlay/omen"
	"selectps/internal/overlay/symphony"
	"selectps/internal/overlay/vitis"
	"selectps/internal/selectsys"
	"selectps/internal/socialgraph"
)

// Kind names one of the evaluated systems.
type Kind string

// The five systems of §IV-C.
const (
	Select   Kind = "select"
	Symphony Kind = "symphony"
	Bayeux   Kind = "bayeux"
	Vitis    Kind = "vitis"
	OMen     Kind = "omen"
)

// AllKinds returns the systems in the order the paper lists them.
func AllKinds() []Kind { return []Kind{Select, Symphony, Bayeux, Vitis, OMen} }

// IterativeKinds returns the systems with an iterative construction
// (Fig. 5 "Symphony and Bayeux are excluded").
func IterativeKinds() []Kind { return []Kind{Select, Vitis, OMen} }

// BuildOptions carries the shared construction inputs.
type BuildOptions struct {
	// K is the direct-connection budget; the paper assigns log2(N) to every
	// system (§IV-C). 0 lets each system apply that default.
	K int
	// Schedule optionally fixes the join schedule (SELECT's projection
	// input); when nil a default growth schedule is derived from rng.
	Schedule *growth.Schedule
	// SelectConfig optionally overrides SELECT's full configuration
	// (ablations); K is still applied when set.
	SelectConfig *selectsys.Config
}

// Build constructs the named system over the social graph. Deterministic
// in rng.
func Build(kind Kind, g *socialgraph.Graph, opt BuildOptions, rng *rand.Rand) (overlay.Overlay, error) {
	k := opt.K
	if k <= 0 {
		k = DefaultK(g.NumNodes())
	}
	switch kind {
	case Select:
		cfg := selectsys.Config{}
		if opt.SelectConfig != nil {
			cfg = *opt.SelectConfig
		}
		if cfg.K == 0 {
			cfg.K = k
		}
		if opt.Schedule != nil {
			return selectsys.NewFromSchedule(g, *opt.Schedule, cfg, rng), nil
		}
		return selectsys.New(g, cfg, rng), nil
	case Symphony:
		return symphony.New(g.NumNodes(), symphony.Config{K: k}, rng), nil
	case Bayeux:
		return bayeux.New(g.NumNodes(), bayeux.Config{}, rng), nil
	case Vitis:
		return vitis.New(g, vitis.Config{K: k}, rng), nil
	case OMen:
		return omen.New(g, omen.Config{MaxDegree: k}, rng), nil
	default:
		return nil, fmt.Errorf("pubsub: unknown system %q", kind)
	}
}

// DefaultK returns the paper's per-peer direct-connection budget log2(N)
// (§IV-C), at least 2.
func DefaultK(n int) int {
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	if k < 2 {
		k = 2
	}
	return k
}

// Subscribers returns S_b for publisher b: its social friends (§II-B).
func Subscribers(g *socialgraph.Graph, b overlay.PeerID) []overlay.PeerID {
	return g.Neighbors(b)
}

// OnlineSubscribers filters S_b to the peers currently online in o.
func OnlineSubscribers(g *socialgraph.Graph, o overlay.Overlay, b overlay.PeerID) []overlay.PeerID {
	var subs []overlay.PeerID
	for _, s := range g.Neighbors(b) {
		if o.Online(s) {
			subs = append(subs, s)
		}
	}
	return subs
}

// Delivery is the accounting for one publication.
type Delivery struct {
	Publisher   overlay.PeerID
	Subscribers int
	Delivered   int
	// RelayNodes counts tree nodes that are neither the publisher nor
	// subscribers (§II-C).
	RelayNodes int
	// PathRelaysMean is the average number of relay nodes on the routing
	// path from the publisher to each delivered subscriber — the Fig. 3
	// metric ("relay nodes per pub/sub routing path").
	PathRelaysMean float64
	// TreeSize is the number of nodes in the routing tree.
	TreeSize int
	// MaxDepth is the deepest subscriber's hop distance from the publisher.
	MaxDepth int
	// Forwards maps each forwarding peer to the number of message copies
	// it sent (Fig. 4's load measure).
	Forwards map[overlay.PeerID]int
	// Tree is the routing tree itself (for latency measurements).
	Tree *overlay.Tree
}

// Publish builds the routing tree for b over the overlay and accounts for
// it. Subscribers that are offline are excluded up front (they cannot
// receive notifications); unreachable online subscribers count as
// undelivered.
func Publish(o overlay.Overlay, g *socialgraph.Graph, b overlay.PeerID) Delivery {
	subs := OnlineSubscribers(g, o, b)
	tree, failed := overlay.BuildTree(o, b, subs)
	isSub := func(p overlay.PeerID) bool { return g.HasEdge(b, p) }
	d := Delivery{
		Publisher:   b,
		Subscribers: len(subs),
		Delivered:   len(subs) - len(failed),
		RelayNodes:  tree.RelayNodes(isSub),
		TreeSize:    tree.Size(),
		Forwards:    tree.ForwardCounts(),
		Tree:        tree,
	}
	pathRelays, counted := 0, 0
	for _, s := range subs {
		if dep := tree.Depth(s); dep > d.MaxDepth {
			d.MaxDepth = dep
		}
		if r := tree.PathRelays(s, isSub); r >= 0 {
			pathRelays += r
			counted++
		}
	}
	if counted > 0 {
		d.PathRelaysMean = float64(pathRelays) / float64(counted)
	}
	return d
}

// Workload draws publishers posting at an exponential rate: each user's
// inter-post gap is exponential with a rate proportional to its degree
// (active users post more, per [21]'s latent-interaction observations).
type Workload struct {
	g        *socialgraph.Graph
	rng      *rand.Rand
	nextPost []float64
	baseRate float64
}

// NewWorkload creates a workload where the average user posts once per
// meanGap time units.
func NewWorkload(g *socialgraph.Graph, meanGap float64, rng *rand.Rand) *Workload {
	if meanGap <= 0 {
		panic("pubsub: meanGap must be positive")
	}
	w := &Workload{
		g:        g,
		rng:      rng,
		nextPost: make([]float64, g.NumNodes()),
		baseRate: 1 / meanGap,
	}
	avg := g.AverageDegree()
	if avg == 0 {
		avg = 1
	}
	for u := range w.nextPost {
		w.nextPost[u] = w.gap(socialgraph.NodeID(u), avg)
	}
	return w
}

func (w *Workload) gap(u socialgraph.NodeID, avgDeg float64) float64 {
	rate := w.baseRate * (0.5 + float64(w.g.Degree(u))/avgDeg)
	return w.rng.ExpFloat64() / rate
}

// PostersUntil returns the users whose next post falls in [now, now+dt),
// rescheduling each. Order is ascending user id (deterministic).
func (w *Workload) PostersUntil(now, dt float64) []socialgraph.NodeID {
	var out []socialgraph.NodeID
	avg := w.g.AverageDegree()
	if avg == 0 {
		avg = 1
	}
	end := now + dt
	for u := range w.nextPost {
		for w.nextPost[u] < end {
			out = append(out, socialgraph.NodeID(u))
			w.nextPost[u] += w.gap(socialgraph.NodeID(u), avg)
		}
	}
	return out
}
