package pubsub_test

import (
	"fmt"
	"math/rand"

	"selectps/internal/datasets"
	"selectps/internal/pubsub"
)

// Example shows the minimal build-and-publish flow: generate a social
// graph, construct the SELECT overlay, and disseminate one notification.
func Example() {
	g := datasets.Facebook.Generate(200, 7)
	o, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(7)))
	if err != nil {
		panic(err)
	}
	// Publish from user 0 to all its friends.
	d := pubsub.Publish(o, g, 0)
	fmt.Println("all subscribers delivered:", d.Delivered == d.Subscribers)
	fmt.Println("publisher matches:", d.Publisher == 0)
	// Output:
	// all subscribers delivered: true
	// publisher matches: true
}

// ExampleBuild demonstrates constructing each evaluated system from the
// same inputs.
func ExampleBuild() {
	g := datasets.Slashdot.Generate(100, 3)
	for _, kind := range pubsub.AllKinds() {
		o, err := pubsub.Build(kind, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(3)))
		if err != nil {
			panic(err)
		}
		fmt.Println(o.Name(), o.N())
	}
	// Output:
	// select 100
	// symphony 100
	// bayeux 100
	// vitis 100
	// omen 100
}

// ExampleDefaultK shows the paper's log2(N) connection budget.
func ExampleDefaultK() {
	fmt.Println(pubsub.DefaultK(63731))  // the Facebook data set
	fmt.Println(pubsub.DefaultK(107614)) // GooglePlus
	// Output:
	// 15
	// 16
}
