// Package growth implements the evolving-network join process the paper
// uses to drive its experiments (§IV): starting from one random social user,
// friends join by invitation at a rate that is high right after a user
// registers and decays exponentially with the user's age, following the
// population-growth model of Zhu et al. (paper ref. [19]). Users whose
// entire neighborhood never invites them eventually join independently.
//
// The output is a Schedule: for every user, the iteration step at which it
// joins the overlay and which already-registered friend invited it (or -1
// for an independent join). SELECT's projection step (Algorithm 1) consumes
// exactly this information: invited peers are placed next to their inviter,
// independent ones at a uniform hash position.
package growth

import (
	"math"
	"math/rand"

	"selectps/internal/socialgraph"
)

// Event records one user joining the network.
type Event struct {
	Step    int
	User    socialgraph.NodeID
	Inviter socialgraph.NodeID // -1 when the user joined independently
}

// Schedule is a join order: events sorted by step (events within a step are
// in generation order).
type Schedule struct {
	Events []Event
	Steps  int // number of steps used (max Event.Step + 1)
}

// Model parameterizes the growth process.
type Model struct {
	// InitialRate is the per-step probability that a fresh registrant
	// invites any given not-yet-joined friend.
	InitialRate float64
	// Decay is the exponential decay constant of the invitation rate with
	// user age: rate(age) = InitialRate * exp(-Decay*age).
	Decay float64
	// MaxSteps bounds the diffusion; users still missing afterwards join
	// independently, one batch per remaining step.
	MaxSteps int
}

// DefaultModel matches the qualitative behaviour of [19]: a burst of
// invitations right after joining, decaying exponentially.
func DefaultModel() Model {
	return Model{InitialRate: 0.5, Decay: 0.3, MaxSteps: 200}
}

// Schedule produces a join schedule for every node of g. The process is
// deterministic in (g, model, rng state).
func (m Model) Schedule(g *socialgraph.Graph, rng *rand.Rand) Schedule {
	n := g.NumNodes()
	if n == 0 {
		return Schedule{}
	}
	joinStep := make([]int, n)
	inviter := make([]socialgraph.NodeID, n)
	joined := make([]bool, n)
	for i := range joinStep {
		joinStep[i] = -1
		inviter[i] = -1
	}

	var events []Event
	join := func(u socialgraph.NodeID, step int, inv socialgraph.NodeID) {
		joined[u] = true
		joinStep[u] = step
		inviter[u] = inv
		events = append(events, Event{Step: step, User: u, Inviter: inv})
	}

	seed := g.RandomNode(rng)
	join(seed, 0, -1)
	remaining := n - 1

	// registered holds users that may still invite friends.
	registered := []socialgraph.NodeID{seed}
	step := 1
	for remaining > 0 && step < m.MaxSteps {
		// Iterate over a snapshot: invitations within a step take effect at
		// this step but the new users start inviting next step.
		snapshot := registered
		for _, u := range snapshot {
			age := step - joinStep[u]
			rate := m.InitialRate * math.Exp(-m.Decay*float64(age))
			if rate <= 1e-6 {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if !joined[v] && rng.Float64() < rate {
					join(v, step, u)
					registered = append(registered, v)
					remaining--
				}
			}
		}
		step++
	}

	// Anyone left joins independently (random subscription), spread over
	// subsequent steps so the overlay keeps evolving.
	for u := 0; u < n && remaining > 0; u++ {
		if joined[u] {
			continue
		}
		// If some friend already joined, model it as a late invitation so
		// projection still gets locality when possible.
		var inv socialgraph.NodeID = -1
		for _, v := range g.Neighbors(socialgraph.NodeID(u)) {
			if joined[v] {
				inv = v
				break
			}
		}
		join(socialgraph.NodeID(u), step, inv)
		remaining--
		if rng.Float64() < 0.25 {
			step++
		}
	}

	return Schedule{Events: events, Steps: step + 1}
}

// JoinOrder returns the users in join order.
func (s Schedule) JoinOrder() []socialgraph.NodeID {
	out := make([]socialgraph.NodeID, len(s.Events))
	for i, e := range s.Events {
		out[i] = e.User
	}
	return out
}

// Prefix returns the first k events (a snapshot of the network after k
// joins), clamped to the schedule length.
func (s Schedule) Prefix(k int) []Event {
	if k > len(s.Events) {
		k = len(s.Events)
	}
	if k < 0 {
		k = 0
	}
	return s.Events[:k]
}

// InvitedFraction reports the fraction of joins that carried an inviter —
// a sanity metric for the diffusion (most users should be invited).
func (s Schedule) InvitedFraction() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	inv := 0
	for _, e := range s.Events {
		if e.Inviter >= 0 {
			inv++
		}
	}
	return float64(inv) / float64(len(s.Events))
}

// InviterIndex returns inviter[user] for every user in the schedule (-1
// for independent joins), so a live cluster can replay the same invitation
// tree the simulator projected: each joining node asks the inviter the
// schedule assigned it. Users missing from the schedule are -1.
func (s Schedule) InviterIndex(n int) []socialgraph.NodeID {
	out := make([]socialgraph.NodeID, n)
	for i := range out {
		out[i] = -1
	}
	for _, e := range s.Events {
		if int(e.User) < n {
			out[e.User] = e.Inviter
		}
	}
	return out
}

// JoinsPerStep returns how many users joined at each step; the shape should
// rise quickly and decay, mirroring the exponential model of [19].
func (s Schedule) JoinsPerStep() []int {
	if s.Steps == 0 {
		return nil
	}
	out := make([]int, s.Steps)
	for _, e := range s.Events {
		if e.Step >= 0 && e.Step < len(out) {
			out[e.Step]++
		}
	}
	return out
}
