package growth

import (
	"math/rand"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/socialgraph"
)

func TestScheduleCoversAllUsers(t *testing.T) {
	g := datasets.Facebook.Generate(400, 1)
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(2)))
	if len(sched.Events) != g.NumNodes() {
		t.Fatalf("schedule has %d events for %d nodes", len(sched.Events), g.NumNodes())
	}
	seen := make(map[socialgraph.NodeID]bool)
	for _, e := range sched.Events {
		if seen[e.User] {
			t.Fatalf("user %d joins twice", e.User)
		}
		seen[e.User] = true
	}
}

func TestStepsMonotonic(t *testing.T) {
	g := datasets.Slashdot.Generate(300, 3)
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(4)))
	prev := -1
	for _, e := range sched.Events {
		if e.Step < prev {
			t.Fatalf("events out of step order: %d after %d", e.Step, prev)
		}
		prev = e.Step
		if e.Step >= sched.Steps {
			t.Fatalf("event step %d >= Steps %d", e.Step, sched.Steps)
		}
	}
}

func TestInvitersAreRegisteredFriends(t *testing.T) {
	g := datasets.Facebook.Generate(300, 5)
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(6)))
	joined := make(map[socialgraph.NodeID]bool)
	for _, e := range sched.Events {
		if e.Inviter >= 0 {
			if !joined[e.Inviter] {
				t.Fatalf("user %d invited by not-yet-joined %d", e.User, e.Inviter)
			}
			if !g.HasEdge(e.User, e.Inviter) {
				t.Fatalf("inviter %d is not a friend of %d", e.Inviter, e.User)
			}
		}
		joined[e.User] = true
	}
}

func TestMostJoinsAreInvited(t *testing.T) {
	// The generated graphs are connected, so diffusion should invite the
	// overwhelming majority of users.
	g := datasets.Facebook.Generate(500, 7)
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(8)))
	if f := sched.InvitedFraction(); f < 0.9 {
		t.Errorf("invited fraction = %.2f, want >= 0.9", f)
	}
}

func TestJoinsPerStepDecays(t *testing.T) {
	g := datasets.Facebook.Generate(1000, 9)
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(10)))
	per := sched.JoinsPerStep()
	if len(per) == 0 {
		t.Fatal("no steps")
	}
	total := 0
	peak, peakStep := 0, 0
	for s, c := range per {
		total += c
		if c > peak {
			peak, peakStep = c, s
		}
	}
	if total != g.NumNodes() {
		t.Errorf("per-step joins sum to %d, want %d", total, g.NumNodes())
	}
	// Per-user invitation rate decays exponentially, so network-wide joins
	// rise while inviters multiply, peak, then decay: the peak must not be
	// the final step and the tail must fall below the peak.
	if peakStep == len(per)-1 {
		t.Errorf("join peak at final step %d; expected a decaying tail", peakStep)
	}
	if per[len(per)-1] >= peak {
		t.Errorf("last step joins %d >= peak %d; no decay", per[len(per)-1], peak)
	}
}

func TestPrefix(t *testing.T) {
	g := datasets.Slashdot.Generate(100, 11)
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(12)))
	if got := len(sched.Prefix(10)); got != 10 {
		t.Errorf("Prefix(10) len = %d", got)
	}
	if got := len(sched.Prefix(10_000)); got != len(sched.Events) {
		t.Errorf("Prefix over-length len = %d", got)
	}
	if got := len(sched.Prefix(-1)); got != 0 {
		t.Errorf("Prefix(-1) len = %d", got)
	}
}

func TestJoinOrder(t *testing.T) {
	g := datasets.Slashdot.Generate(50, 13)
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(14)))
	order := sched.JoinOrder()
	if len(order) != 50 {
		t.Fatalf("JoinOrder len = %d", len(order))
	}
	if order[0] != sched.Events[0].User {
		t.Error("JoinOrder[0] mismatch")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := socialgraph.NewBuilder(0).Build()
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(1)))
	if len(sched.Events) != 0 || sched.Steps != 0 {
		t.Errorf("empty graph schedule = %+v", sched)
	}
}

func TestDisconnectedGraphStillCovered(t *testing.T) {
	// Two cliques with no bridge: diffusion covers one; independent joins
	// must cover the other.
	b := socialgraph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(int32(i), int32(j))
			b.AddEdge(int32(i+4), int32(j+4))
		}
	}
	g := b.Build()
	sched := DefaultModel().Schedule(g, rand.New(rand.NewSource(15)))
	if len(sched.Events) != 8 {
		t.Fatalf("schedule covers %d of 8 users", len(sched.Events))
	}
}

func TestDeterminism(t *testing.T) {
	g := datasets.Facebook.Generate(200, 16)
	a := DefaultModel().Schedule(g, rand.New(rand.NewSource(17)))
	b2 := DefaultModel().Schedule(g, rand.New(rand.NewSource(17)))
	if len(a.Events) != len(b2.Events) {
		t.Fatal("nondeterministic schedule length")
	}
	for i := range a.Events {
		if a.Events[i] != b2.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b2.Events[i])
		}
	}
}
