package socialgraph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	bl := NewBuilder(n)
	for e := 0; e < 12*n; e++ {
		bl.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return bl.Build()
}

func BenchmarkCommonNeighbors(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v, _ := g.RandomEdge(rng)
		_ = g.CommonNeighbors(u, v)
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HasEdge(NodeID(rng.Intn(5000)), NodeID(rng.Intn(5000)))
	}
}

func BenchmarkBFSDistances(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFSDistances(NodeID(i % 5000))
	}
}
