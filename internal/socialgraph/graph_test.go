package socialgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle plus a pendant: 0-1, 1-2, 0-2, 2-3
func testGraph() *Graph {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	return b.Build()
}

func TestBuildBasics(t *testing.T) {
	g := testGraph()
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Errorf("degrees = %d,%d want 3,1", g.Degree(2), g.Degree(3))
	}
	if g.AverageDegree() != 2 {
		t.Errorf("AverageDegree = %v, want 2", g.AverageDegree())
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %v, want 3", g.MaxDegree())
	}
}

func TestDuplicateAndSelfEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Errorf("self loop created degree %d", g.Degree(2))
	}
}

func TestHasEdge(t *testing.T) {
	g := testGraph()
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("missing edge 0-2")
	}
	if g.HasEdge(0, 3) {
		t.Error("phantom edge 0-3")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := testGraph()
	n := g.Neighbors(2)
	for i := 1; i < len(n); i++ {
		if n[i-1] >= n[i] {
			t.Fatalf("Neighbors(2) not sorted: %v", n)
		}
	}
}

func TestCommonNeighborsAndStrength(t *testing.T) {
	g := testGraph()
	// C_0 = {1,2}, C_1 = {0,2} → common = {2}
	if got := g.CommonNeighbors(0, 1); got != 1 {
		t.Errorf("CommonNeighbors(0,1) = %d, want 1", got)
	}
	if got := g.SocialStrength(0, 1); got != 0.5 {
		t.Errorf("SocialStrength(0,1) = %v, want 0.5", got)
	}
	// Strength is asymmetric per Eq. 2: denominator is |C_p|.
	// C_3={2}, C_0={1,2} → common = {2}; s(3,0)=1/1, s(0,3)=1/2.
	if got := g.SocialStrength(3, 0); got != 1 {
		t.Errorf("SocialStrength(3,0) = %v, want 1", got)
	}
	if got := g.SocialStrength(0, 3); got != 0.5 {
		t.Errorf("SocialStrength(0,3) = %v, want 0.5", got)
	}
}

func TestSocialStrengthIsolated(t *testing.T) {
	b := NewBuilder(2)
	g := b.Build()
	if got := g.SocialStrength(0, 1); got != 0 {
		t.Errorf("strength of isolated node = %v, want 0", got)
	}
}

func TestBFSDistances(t *testing.T) {
	b := NewBuilder(5) // path 0-1-2-3, isolated 4
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	d := g.BFSDistances(0)
	want := []int32{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3 (pair, triple, isolated)", count)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[3] != labels[4] {
		t.Errorf("labels = %v", labels)
	}
	if labels[0] == labels[2] || labels[5] == labels[0] || labels[5] == labels[2] {
		t.Errorf("labels = %v", labels)
	}
}

func TestSubgraph(t *testing.T) {
	g := testGraph()
	sg, old := g.Subgraph([]NodeID{0, 2, 3})
	if sg.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d", sg.NumNodes())
	}
	// kept edges: 0-2 and 2-3 → new ids 0-1, 1-2
	if sg.NumEdges() != 2 || !sg.HasEdge(0, 1) || !sg.HasEdge(1, 2) || sg.HasEdge(0, 2) {
		t.Errorf("subgraph edges wrong: %d edges", sg.NumEdges())
	}
	if old[1] != 2 {
		t.Errorf("old mapping = %v", old)
	}
}

func TestTopStrengthFriends(t *testing.T) {
	g := testGraph()
	// Node 2's friends: 0 (common {1}: s=1/3... wait strength from 2), compute:
	// C_2={0,1,3}. s(2,0)=|{1}|/3, s(2,1)=|{0}|/3, s(2,3)=0.
	best, second := g.TopStrengthFriends(2)
	if best != 0 || second != 1 {
		t.Errorf("TopStrengthFriends(2) = %d,%d want 0,1", best, second)
	}
	// Pendant node 3 has single friend 2.
	best, second = g.TopStrengthFriends(3)
	if best != 2 || second != -1 {
		t.Errorf("TopStrengthFriends(3) = %d,%d want 2,-1", best, second)
	}
	// Isolated node.
	b := NewBuilder(1)
	g2 := b.Build()
	best, second = g2.TopStrengthFriends(0)
	if best != -1 || second != -1 {
		t.Errorf("TopStrengthFriends isolated = %d,%d", best, second)
	}
}

func TestClustering(t *testing.T) {
	g := testGraph()
	// Node 0: friends {1,2}, edge 1-2 exists → 1.0
	if got := g.Clustering(0); got != 1 {
		t.Errorf("Clustering(0) = %v, want 1", got)
	}
	// Node 2: friends {0,1,3}; pairs (0,1) yes, (0,3) no, (1,3) no → 1/3
	if got := g.Clustering(2); got < 0.33 || got > 0.34 {
		t.Errorf("Clustering(2) = %v, want 1/3", got)
	}
	if got := g.Clustering(3); got != 0 {
		t.Errorf("Clustering(3) = %v, want 0", got)
	}
}

func TestRandomHelpers(t *testing.T) {
	g := testGraph()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		u, v, ok := g.RandomEdge(rng)
		if !ok || !g.HasEdge(u, v) {
			t.Fatalf("RandomEdge returned non-edge %d-%d ok=%v", u, v, ok)
		}
		f, ok := g.RandomFriend(u, rng)
		if !ok || !g.HasEdge(u, f) {
			t.Fatalf("RandomFriend returned non-friend")
		}
	}
	// Graph with no edges.
	empty := NewBuilder(3).Build()
	if _, _, ok := empty.RandomEdge(rng); ok {
		t.Error("RandomEdge on empty graph should be !ok")
	}
	if _, ok := empty.RandomFriend(0, rng); ok {
		t.Error("RandomFriend of isolated node should be !ok")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := testGraph()
	h := g.DegreeHistogram()
	if h[2] != 2 || h[3] != 1 || h[1] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestPropertyDegreeSum(t *testing.T) {
	// Sum of degrees = 2 * edges for random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		b := NewBuilder(n)
		for e := 0; e < 3*n; e++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(NodeID(u))
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommonNeighborsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		b := NewBuilder(n)
		for e := 0; e < 4*n; e++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		return g.CommonNeighbors(u, v) == g.CommonNeighbors(v, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}
