package socialgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadEdgeListBasic(t *testing.T) {
	in := `# a comment
0 1
1 2

2 0
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
}

func TestLoadEdgeListDensifiesSparseIDs(t *testing.T) {
	in := "1000 2000\n2000 5\n"
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (densified)", g.NumNodes())
	}
	// first-appearance order: 1000->0, 2000->1, 5->2
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("densified adjacency wrong")
	}
}

func TestLoadEdgeListSymmetrizesAndDedupes(t *testing.T) {
	in := "0 1\n1 0\n0 1\n"
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"missing field": "42\n",
		"non-numeric":   "a b\n",
		"negative":      "-1 2\n",
	} {
		if _, err := LoadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(0, 4)
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Densification permutes node ids (first appearance in the edge list),
	// so compare the degree multiset, which is permutation invariant.
	degs := func(g *Graph) map[int]int {
		m := map[int]int{}
		for u := 0; u < g.NumNodes(); u++ {
			m[g.Degree(NodeID(u))]++
		}
		return m
	}
	d1, d2 := degs(g), degs(g2)
	for k, v := range d1 {
		if d2[k] != v {
			t.Fatalf("degree multiset mismatch: %v vs %v", d1, d2)
		}
	}
}

func TestWriteEdgeListHeader(t *testing.T) {
	g := NewBuilder(2).Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# nodes 2 edges 0") {
		t.Errorf("header = %q", buf.String())
	}
}

func TestEdgeListRoundTripIsolatedNodesDropped(t *testing.T) {
	// Isolated nodes cannot survive an edge-list round trip; the loader
	// only sees nodes with edges. Document the behaviour.
	b := NewBuilder(4) // node 3 isolated
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3 (isolated dropped)", g2.NumNodes())
	}
}
