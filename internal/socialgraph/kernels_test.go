package socialgraph

import (
	"math/rand"
	"testing"

	"selectps/internal/bitset"
)

// referenceCommon is the plain sorted-merge count, kept independent of the
// production kernels as ground truth.
func referenceCommon(g *Graph, u, v NodeID) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// skewedGraph builds a seeded random graph with deliberate hub/leaf skew:
// a few hubs whose degree crosses bitsetMinDegree, a long tail of leaves,
// and uniform background edges. This shape forces every kernel and both
// selection thresholds to fire.
func skewedGraph(n, hubs, background int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for h := 0; h < hubs; h++ {
		// Hub degree well above bitsetMinDegree.
		deg := bitsetMinDegree + 32 + rng.Intn(n/2)
		for i := 0; i < deg; i++ {
			b.AddEdge(NodeID(h), NodeID(rng.Intn(n)))
		}
		// Mid-degree node: skewed against leaves (gallop) but below the
		// bitset threshold.
		mid := NodeID(hubs + h)
		for i := 0; i < bitsetMinDegree/2; i++ {
			b.AddEdge(mid, NodeID(rng.Intn(n)))
		}
	}
	for e := 0; e < background; e++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.Build()
}

// TestKernelEquivalenceProperty checks that CommonNeighbors — whichever
// kernel the dispatcher picks — agrees exactly with the merge reference on
// seeded random graphs, over every sampled pair and every hub × hub,
// hub × leaf and leaf × leaf combination.
func TestKernelEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := skewedGraph(600, 4, 1500, seed)
		ki := g.kernels()
		strategies := map[string]bool{}
		rng := rand.New(rand.NewSource(seed * 31))
		check := func(u, v NodeID) {
			want := referenceCommon(g, u, v)
			if got := g.CommonNeighbors(u, v); got != want {
				t.Fatalf("seed %d: CommonNeighbors(%d,%d) = %d, reference = %d (deg %d, %d)",
					seed, u, v, got, want, g.Degree(u), g.Degree(v))
			}
			strategies[strategyFor(g, ki, u, v)] = true
			if s := g.SocialStrength(u, v); g.Degree(u) > 0 {
				wantS := float64(want) / float64(g.Degree(u))
				if s != wantS {
					t.Fatalf("seed %d: SocialStrength(%d,%d) = %v, want %v", seed, u, v, s, wantS)
				}
			}
		}
		// Hubs and mid-degree nodes against everything (bitset, AndCount
		// and gallop paths).
		for h := NodeID(0); h < 8; h++ {
			for i := 0; i < 200; i++ {
				check(h, NodeID(rng.Intn(g.NumNodes())))
				check(NodeID(rng.Intn(g.NumNodes())), h) // argument order must not matter
			}
			for h2 := NodeID(0); h2 < 8; h2++ {
				check(h, h2)
			}
		}
		// Random pairs (merge and galloping paths).
		for i := 0; i < 2000; i++ {
			check(NodeID(rng.Intn(g.NumNodes())), NodeID(rng.Intn(g.NumNodes())))
		}
		for _, want := range []string{"merge", "gallop", "bitset", "andcount"} {
			if !strategies[want] {
				t.Errorf("seed %d: strategy %q never exercised (got %v)", seed, want, strategies)
			}
		}
	}
}

// strategyFor mirrors the dispatcher's selection logic so the test can
// assert coverage of every path and pin the threshold rules.
func strategyFor(g *Graph, ki *kernelIndex, u, v NodeID) string {
	a, b := g.Neighbors(u), g.Neighbors(v)
	if len(a) > len(b) {
		a, b, u, v = b, a, v, u
	}
	switch {
	case len(a) == 0:
		return "empty"
	case ki.bits[v] != nil && ki.bits[u] != nil && len(a) >= ki.andCountAt:
		return "andcount"
	case ki.bits[v] != nil:
		return "bitset"
	case len(b) > gallopRatio*len(a):
		return "gallop"
	default:
		return "merge"
	}
}

// TestKernelSelectionThresholds pins the strategy-selection rules: which
// kernel runs is decided by bitsetMinDegree (bitset materialization),
// andCountAt (word-parallel hub × hub) and gallopRatio (skewed search).
func TestKernelSelectionThresholds(t *testing.T) {
	const n = 4000
	b := NewBuilder(n)
	// Node 0: hub with degree ≥ bitsetMinDegree (gets a bitset).
	for i := 1; i <= bitsetMinDegree; i++ {
		b.AddEdge(0, NodeID(i))
	}
	// Node 1: degree just below the bitset threshold, but large enough
	// that a degree-2 probe is gallop-skewed.
	for i := 2; i <= bitsetMinDegree-2; i++ {
		b.AddEdge(1, NodeID(i))
	}
	// Node 2: second hub for the AndCount pair.
	for i := 3; i <= bitsetMinDegree+1; i++ {
		b.AddEdge(2, NodeID(i))
	}
	// Node 3: leaf with two friends.
	b.AddEdge(3, 0)
	b.AddEdge(3, 4)
	g := b.Build()
	ki := g.kernels()

	if ki.bits[0] == nil || ki.bits[2] == nil {
		t.Fatalf("hub nodes (deg %d, %d) did not materialize bitsets at threshold %d",
			g.Degree(0), g.Degree(2), bitsetMinDegree)
	}
	if ki.bits[1] != nil {
		t.Fatalf("node below bitsetMinDegree (deg %d) materialized a bitset", g.Degree(1))
	}
	cases := []struct {
		u, v NodeID
		want string
	}{
		{0, 2, "andcount"}, // hub × hub, both ≥ andCountAt (n/128 = 31 < deg)
		{3, 0, "bitset"},   // leaf × hub with bitset
		{3, 1, "gallop"},   // deg 2 × deg ~94, no bitset, ratio > gallopRatio
		{1, 2, "bitset"},   // near-hub × hub: bitset membership tests
		{3, 4, "merge"},    // leaf × leaf
	}
	for _, c := range cases {
		if got := strategyFor(g, ki, c.u, c.v); got != c.want {
			t.Errorf("strategyFor(%d,%d) = %q, want %q (deg %d, %d)",
				c.u, c.v, got, c.want, g.Degree(c.u), g.Degree(c.v))
		}
		if got, want := g.CommonNeighbors(c.u, c.v), referenceCommon(g, c.u, c.v); got != want {
			t.Errorf("CommonNeighbors(%d,%d) = %d, want %d", c.u, c.v, got, want)
		}
	}
}

// TestKernelPrimitives drives the standalone kernels directly on hand-built
// inputs, including window-narrowing and early-exit edges of the gallop.
func TestKernelPrimitives(t *testing.T) {
	mk := func(xs ...NodeID) []NodeID { return xs }
	cases := []struct {
		a, b []NodeID
		want int
	}{
		{mk(), mk(1, 2, 3), 0},
		{mk(1, 2, 3), mk(1, 2, 3), 3},
		{mk(1, 5, 9), mk(2, 3, 4, 5, 6, 7, 8, 9, 10), 2},
		{mk(10, 20), mk(1, 2, 3), 0},     // disjoint, small above large
		{mk(1, 100), mk(1, 2, 3, 99), 1}, // gallop early exit past end
		{mk(3), mk(1, 2, 3, 4, 5, 6), 1}, // single element hit
		{mk(7), mk(1, 2, 3, 4, 5, 6), 0}, // single element miss (past end)
		{mk(0), mk(1, 2, 3, 4, 5, 6), 0}, // single element miss (before)
	}
	for _, c := range cases {
		if got := intersectMerge(c.a, c.b); got != c.want {
			t.Errorf("intersectMerge(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := intersectGallop(c.a, c.b); got != c.want {
			t.Errorf("intersectGallop(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		bs := bitset.New(128)
		for _, x := range c.b {
			bs.Set(int(x))
		}
		if got := intersectBitset(c.a, bs); got != c.want {
			t.Errorf("intersectBitset(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
