// Package socialgraph provides the social-network substrate of the paper's
// model (§II-B): an undirected graph G = (V, E) of social users, with the
// neighborhood and common-friend queries SELECT's gossip protocol relies on.
//
// The representation is a sorted adjacency list per node (CSR-like in
// spirit), chosen for cache-friendly iteration and O(log d) edge tests.
// Common-neighbor counting — the hot operation behind the social-strength
// measure of Eq. 2 — dispatches adaptively between a sorted merge, a
// galloping search, and word-parallel bitset kernels (kernels.go).
package socialgraph

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID indexes a social user. Users are dense 0..N-1 integers; the paper
// maps each social user onto exactly one peer (§III-A), so overlays reuse
// these indexes as peer identities.
type NodeID = int32

// Graph is an immutable undirected social graph. It must be used by
// pointer (it embeds synchronization state for the lazily built kernel
// index); all query methods are safe for concurrent use.
type Graph struct {
	adj   [][]NodeID // sorted neighbor lists
	edges int        // undirected edge count (each edge counted once)

	// Acceleration index (kernels.go): per-node neighbor bitsets for
	// high-degree nodes, built on the first common-neighbor query. kern
	// duplicates the kernOnce-guarded value as an atomic so cheap queries
	// (HasEdge) can opportunistically use the index without forcing its
	// construction.
	kernOnce sync.Once
	kern     atomic.Pointer[kernelIndex]
}

// Builder accumulates edges and produces an immutable Graph. Duplicate and
// self edges are dropped.
type Builder struct {
	adj [][]NodeID
}

// NewBuilder returns a Builder for a graph over n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("socialgraph: negative node count %d", n))
	}
	return &Builder{adj: make([][]NodeID, n)}
}

// AddEdge records the undirected edge (u,v). Self loops are ignored.
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	b.checkNode(u)
	b.checkNode(v)
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

func (b *Builder) checkNode(u NodeID) {
	if u < 0 || int(u) >= len(b.adj) {
		panic(fmt.Sprintf("socialgraph: node %d out of range [0,%d)", u, len(b.adj)))
	}
}

// Build sorts and deduplicates the adjacency lists and returns the Graph.
// The Builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	edges := 0
	for u := range b.adj {
		l := b.adj[u]
		slices.Sort(l)
		// dedupe in place
		w := 0
		for i, v := range l {
			if i == 0 || v != l[i-1] {
				l[w] = v
				w++
			}
		}
		b.adj[u] = l[:w]
		edges += w
	}
	g := &Graph{adj: b.adj, edges: edges / 2}
	b.adj = nil
	return g
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns |E| with each undirected edge counted once.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the number of social friends of u (|C_u| in the paper).
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns u's sorted friend list.
//
// Aliasing contract: the returned slice is the graph's own storage, shared
// by every caller and by the acceleration index — it is never copied.
// Callers must treat it as immutable (no element writes, no append through
// it) and may hold it indefinitely: the graph never mutates adjacency
// after Build, so the slice is stable and safe to read from concurrent
// goroutines. Code that needs a mutable copy must clone explicitly.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// HasEdge reports whether (u,v) ∈ E.
func (g *Graph) HasEdge(u, v NodeID) bool {
	// When the kernel index already exists and u is a hub, its bitset
	// answers in O(1); otherwise binary-search the sorted list. The index
	// is not built for this — O(log d) is already cheap.
	if ki := g.kern.Load(); ki != nil {
		if bu := ki.bits[u]; bu != nil {
			return bu.Test(int(v))
		}
	}
	l := g.adj[u]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= v })
	return i < len(l) && l[i] == v
}

// AverageDegree returns 2|E|/|V| (the "Average Degree" column of Table II).
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, l := range g.adj {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// CommonNeighbors returns |C_u ∩ C_v|, dispatching to the cheapest exact
// intersection kernel for the pair's degree shape (kernels.go).
func (g *Graph) CommonNeighbors(u, v NodeID) int {
	return g.countCommon(u, v)
}

// SocialStrength returns s(p,u) = |C_p ∩ C_u| / |C_p| (Eq. 2). A node with
// no friends has strength 0 toward everyone.
func (g *Graph) SocialStrength(p, u NodeID) float64 {
	if len(g.adj[p]) == 0 {
		return 0
	}
	return float64(g.CommonNeighbors(p, u)) / float64(len(g.adj[p]))
}

// DegreeHistogram returns a map from degree to node count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, l := range g.adj {
		h[len(l)]++
	}
	return h
}

// BFSDistances returns the hop distance from src to every node, with -1 for
// unreachable nodes.
func (g *Graph) BFSDistances(src NodeID) []int32 {
	dist := make([]int32, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ConnectedComponents returns a component label per node and the number of
// components.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	labels = make([]int32, len(g.adj))
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	for s := range g.adj {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(count)
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if labels[v] < 0 {
					labels[v] = int32(count)
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// Subgraph returns the induced subgraph on keep (order defines the new
// dense ids) plus the mapping newID -> oldID.
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID) {
	newID := make(map[NodeID]NodeID, len(keep))
	for i, u := range keep {
		newID[u] = NodeID(i)
	}
	b := NewBuilder(len(keep))
	for i, u := range keep {
		for _, v := range g.adj[u] {
			if nv, ok := newID[v]; ok && NodeID(i) < nv {
				b.AddEdge(NodeID(i), nv)
			}
		}
	}
	old := make([]NodeID, len(keep))
	copy(old, keep)
	return b.Build(), old
}

// RandomNode returns a uniformly random node. The graph must be non-empty.
func (g *Graph) RandomNode(rng *rand.Rand) NodeID {
	return NodeID(rng.Intn(len(g.adj)))
}

// RandomEdge returns a uniformly random social edge (u,v), i.e. a random
// publisher/subscriber pair that is socially connected — the pairs Fig. 2
// measures lookups between. ok is false when the graph has no edges.
func (g *Graph) RandomEdge(rng *rand.Rand) (u, v NodeID, ok bool) {
	if g.edges == 0 {
		return 0, 0, false
	}
	// Rejection-sample a node proportional to degree, then a neighbor.
	for {
		u = NodeID(rng.Intn(len(g.adj)))
		d := len(g.adj[u])
		if d == 0 {
			continue
		}
		// Accept u with probability d / maxDegree would be exact but
		// needlessly slow; sampling u uniformly then a uniform neighbor
		// samples edges proportional to 1 (u-side) which is the standard
		// "random neighbor of random node" draw. For Fig. 2's purpose —
		// averaging over many socially-connected pairs — either gives the
		// same estimator over 100 trials; we keep the cheap draw and note
		// it here.
		return u, g.adj[u][rng.Intn(d)], true
	}
}

// RandomFriend returns a uniformly random friend of u, or ok=false when u
// has none. This is getRandomSocialFriendPeer() from Algorithm 3.
func (g *Graph) RandomFriend(u NodeID, rng *rand.Rand) (NodeID, bool) {
	l := g.adj[u]
	if len(l) == 0 {
		return 0, false
	}
	return l[rng.Intn(len(l))], true
}

// TopStrengthFriends returns u's two friends with the highest social
// strength (Algorithm 2 lines 2-3). When u has one friend, second = -1;
// with none, both are -1. Ties break toward the smaller node id so the
// result is deterministic.
func (g *Graph) TopStrengthFriends(u NodeID) (best, second NodeID) {
	best, second = -1, -1
	var bs, ss float64 = -1, -1
	for _, v := range g.adj[u] {
		s := g.SocialStrength(u, v)
		switch {
		case s > bs:
			second, ss = best, bs
			best, bs = v, s
		case s > ss:
			second, ss = v, s
		}
	}
	return best, second
}

// Clustering returns the local clustering coefficient of u: the fraction of
// pairs of u's friends that are themselves friends. Degree < 2 yields 0.
func (g *Graph) Clustering(u NodeID) float64 {
	l := g.adj[u]
	d := len(l)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(l[i], l[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(d*(d-1))
}

// AverageClustering estimates the mean local clustering coefficient from a
// sample of at most sample nodes (all nodes when sample <= 0 or >= |V|).
func (g *Graph) AverageClustering(sample int, rng *rand.Rand) float64 {
	n := len(g.adj)
	if n == 0 {
		return 0
	}
	var sum float64
	if sample <= 0 || sample >= n {
		for u := 0; u < n; u++ {
			sum += g.Clustering(NodeID(u))
		}
		return sum / float64(n)
	}
	for i := 0; i < sample; i++ {
		sum += g.Clustering(NodeID(rng.Intn(n)))
	}
	return sum / float64(sample)
}
