package socialgraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file provides SNAP-style edge-list I/O. The paper's evaluation uses
// the SNAP snapshots of Facebook, Twitter, Slashdot and GooglePlus; this
// environment is offline, so experiments default to synthetic generators
// (internal/datasets) — but a user with the real files can load them here
// and run every experiment unchanged.

// LoadEdgeList reads a whitespace-separated edge list ("u v" per line,
// '#'-prefixed comment lines ignored — the SNAP format). Node ids may be
// arbitrary non-negative integers; they are densified to 0..N-1 in first-
// appearance order. Directed inputs are symmetrized (an edge either way
// becomes a friendship), matching the paper's treatment of the follow
// graphs.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	type rawEdge struct{ u, v int64 }
	var edges []rawEdge
	ids := make(map[int64]NodeID)
	intern := func(x int64) NodeID {
		if id, ok := ids[x]; ok {
			return id
		}
		id := NodeID(len(ids))
		ids[x] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("socialgraph: line %d: want 'u v', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("socialgraph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("socialgraph: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("socialgraph: line %d: negative node id", lineNo)
		}
		edges = append(edges, rawEdge{u, v})
		intern(u)
		intern(v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("socialgraph: %v", err)
	}
	b := NewBuilder(len(ids))
	for _, e := range edges {
		b.AddEdge(ids[e.u], ids[e.v])
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as a SNAP-style undirected edge list,
// each friendship once ("u v" with u < v), with a size header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
