// Adaptive intersection kernels for the common-neighbor query, the hot
// operation behind the social-strength measure (Eq. 2). The sorted-merge
// reference is exact but costs O(d_u + d_v) per query, which the gossip
// re-executes for every friend edge in every round; at social-network
// degree skew (a few hubs with thousands of friends, a long tail with a
// handful) most of that work touches list entries that cannot match.
//
// Three strategies, picked per query pair by size and skew:
//
//   - merge: the linear sorted-merge, best when the two lists are small
//     and of similar size.
//   - galloping: binary-search each element of the smaller list in the
//     larger, O(d_small · log d_large), best when the lists are skewed
//     (leaf × hub) but the hub has no bitset.
//   - bitset: nodes with degree ≥ bitsetMinDegree materialize their
//     neighborhood as an n-bit set once; hub × hub intersections become
//     word-parallel popcounts (bitset.AndCount) and leaf × hub becomes
//     d_small constant-time membership tests.
//
// All three return exactly |C_u ∩ C_v|, so strategy selection never
// changes results — kernels_test.go holds the cross-strategy property
// test. The index is built lazily (first common-neighbor query) under a
// sync.Once, so graphs that never intersect neighborhoods pay nothing,
// and concurrent queries from parallel gossip supersteps are safe.
package socialgraph

import (
	"sort"

	"selectps/internal/bitset"
	"selectps/internal/par"
)

const (
	// bitsetMinDegree is the degree at which a node's neighborhood is
	// materialized as a bitset. Below it the bitset rarely wins: a leaf ×
	// leaf merge touches fewer than 2·bitsetMinDegree entries, while the
	// set costs n/8 bytes to build and cache.
	bitsetMinDegree = 96
	// gallopRatio is the skew at which binary-searching the smaller list
	// beats the merge: with d_large > gallopRatio · d_small the merge
	// spends almost all its steps advancing through the large list.
	gallopRatio = 16
	// andCountDivisor gates hub × hub word intersection: AndCount scans
	// n/64 words regardless of degrees, so it only beats the d_small
	// membership tests once d_small ≥ n/andCountDivisor.
	andCountDivisor = 128
)

// kernelIndex holds the per-node neighbor bitsets of the high-degree nodes.
type kernelIndex struct {
	bits []*bitset.Set // nil for nodes below bitsetMinDegree
	// andCountAt is the smaller-degree threshold above which a hub × hub
	// query uses word-parallel AndCount instead of per-element tests.
	andCountAt int
}

// kernels returns the lazily built acceleration index.
func (g *Graph) kernels() *kernelIndex {
	g.kernOnce.Do(func() {
		n := len(g.adj)
		ki := &kernelIndex{bits: make([]*bitset.Set, n), andCountAt: n / andCountDivisor}
		par.For(n, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				l := g.adj[u]
				if len(l) < bitsetMinDegree {
					continue
				}
				s := bitset.New(n)
				for _, v := range l {
					s.Set(int(v))
				}
				ki.bits[u] = s
			}
		})
		g.kern.Store(ki)
	})
	return g.kern.Load()
}

// countCommon dispatches the common-neighbor query to the cheapest exact
// kernel for the (d_u, d_v) shape.
func (g *Graph) countCommon(u, v NodeID) int {
	a, b := g.adj[u], g.adj[v]
	if len(a) > len(b) {
		a, b, u, v = b, a, v, u
	}
	if len(a) == 0 {
		return 0
	}
	ki := g.kernels()
	if bv := ki.bits[v]; bv != nil {
		if bu := ki.bits[u]; bu != nil && len(a) >= ki.andCountAt {
			return bitset.AndCount(bu, bv)
		}
		return intersectBitset(a, bv)
	}
	if len(b) > gallopRatio*len(a) {
		return intersectGallop(a, b)
	}
	return intersectMerge(a, b)
}

// intersectMerge is the sorted-merge reference kernel: |a ∩ b| in
// O(len(a) + len(b)).
func intersectMerge(a, b []NodeID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// intersectGallop binary-searches each element of the smaller sorted list
// in the larger one, narrowing the search window as both advance:
// O(d_small · log d_large).
func intersectGallop(small, large []NodeID) int {
	n := 0
	for _, x := range small {
		i := sort.Search(len(large), func(i int) bool { return large[i] >= x })
		if i == len(large) {
			break
		}
		if large[i] == x {
			n++
			i++
		}
		large = large[i:]
	}
	return n
}

// intersectBitset counts the members of the sorted list present in the
// bitset: d_small constant-time membership tests.
func intersectBitset(small []NodeID, bs *bitset.Set) int {
	n := 0
	for _, x := range small {
		if bs.Test(int(x)) {
			n++
		}
	}
	return n
}
