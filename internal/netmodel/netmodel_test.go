package netmodel

import (
	"math"
	"math/rand"
	"testing"
)

func newModel(t *testing.T, n int) *Model {
	t.Helper()
	return New(n, Config{}, rand.New(rand.NewSource(1)))
}

func TestNewDefaults(t *testing.T) {
	m := newModel(t, 50)
	if m.N() != 50 {
		t.Fatalf("N = %d", m.N())
	}
	for u := int32(0); u < 50; u++ {
		if m.Upload(u) <= 0 || m.Download(u) <= 0 {
			t.Fatalf("peer %d has nonpositive bandwidth", u)
		}
	}
}

func TestHeterogeneousBandwidth(t *testing.T) {
	m := newModel(t, 200)
	minUp, maxUp := math.Inf(1), 0.0
	for u := int32(0); u < 200; u++ {
		minUp = math.Min(minUp, m.Upload(u))
		maxUp = math.Max(maxUp, m.Upload(u))
	}
	if maxUp/minUp < 5 {
		t.Errorf("bandwidth spread %0.1fx too homogeneous", maxUp/minUp)
	}
}

func TestLatencySymmetricPositive(t *testing.T) {
	m := newModel(t, 30)
	for u := int32(0); u < 30; u++ {
		if m.Latency(u, u) != 0 {
			t.Fatalf("self latency nonzero")
		}
		for v := u + 1; v < 30; v++ {
			l1, l2 := m.Latency(u, v), m.Latency(v, u)
			if l1 != l2 {
				t.Fatalf("asymmetric latency %v vs %v", l1, l2)
			}
			if l1 < 0.010 { // base latency floor
				t.Fatalf("latency %v below base", l1)
			}
			if l1 > 0.010+0.080*math.Sqrt2+1e-9 { // max distance on unit square
				t.Fatalf("latency %v above max", l1)
			}
		}
	}
}

func TestTransferTimeSharing(t *testing.T) {
	m := newModel(t, 10)
	t1 := m.TransferTime(0, 1, PayloadBytes, 1)
	t4 := m.TransferTime(0, 1, PayloadBytes, 4)
	if t4 <= t1 {
		t.Errorf("sharing upload across 4 transfers did not slow transfer: %v vs %v", t1, t4)
	}
	// concurrent < 1 clamps to 1
	if m.TransferTime(0, 1, PayloadBytes, 0) != t1 {
		t.Error("concurrent=0 not clamped")
	}
}

func TestSimultaneousSendLinearGrowth(t *testing.T) {
	// §IV-D: total time for a central peer sending to k targets at once
	// grows ~linearly with k.
	m := New(200, Config{Jitter: 1e-9}, rand.New(rand.NewSource(3)))
	targets := func(k int) []int32 {
		out := make([]int32, k)
		for i := range out {
			out[i] = int32(i + 1)
		}
		return out
	}
	t5 := m.SimultaneousSend(0, targets(5), PayloadBytes)
	t50 := m.SimultaneousSend(0, targets(50), PayloadBytes)
	ratio := t50 / t5
	if ratio < 5 || ratio > 15 {
		t.Errorf("50 vs 5 targets time ratio = %.1f, want ~10 (linear)", ratio)
	}
	if m.SimultaneousSend(0, nil, PayloadBytes) != 0 {
		t.Error("empty target set should take 0 time")
	}
}

func TestDisseminationLatencyChain(t *testing.T) {
	m := newModel(t, 4)
	// chain 0 -> 1 -> 2 -> 3
	children := [][]int32{{1}, {2}, {3}, {}}
	total, recv := m.DisseminationLatency(0, children, PayloadBytes)
	if recv[0] != 0 {
		t.Errorf("root recv = %v", recv[0])
	}
	want := m.TransferTime(0, 1, PayloadBytes, 1) +
		m.TransferTime(1, 2, PayloadBytes, 1) +
		m.TransferTime(2, 3, PayloadBytes, 1)
	if math.Abs(recv[3]-want) > 1e-9 {
		t.Errorf("chain end recv = %v, want %v", recv[3], want)
	}
	if total != recv[3] {
		t.Errorf("total %v != deepest %v", total, recv[3])
	}
	// store-and-forward monotonicity
	if !(recv[1] < recv[2] && recv[2] < recv[3]) {
		t.Errorf("recv times not increasing along chain: %v", recv)
	}
}

func TestDisseminationLatencyStarVsChain(t *testing.T) {
	// A wide star from a slow uploader should be slower than relaying via a
	// fast intermediary would suggest: star time grows with fan-out.
	m := New(20, Config{Jitter: 1e-9}, rand.New(rand.NewSource(5)))
	star := make([][]int32, 20)
	star[0] = []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tStar, _ := m.DisseminationLatency(0, star, PayloadBytes)
	single := make([][]int32, 20)
	single[0] = []int32{1}
	tOne, _ := m.DisseminationLatency(0, single, PayloadBytes)
	if tStar < tOne*5 {
		t.Errorf("10-way star %v not ~10x slower than single %v", tStar, tOne)
	}
}

func TestDisseminationUnreachedNodes(t *testing.T) {
	m := newModel(t, 5)
	children := [][]int32{{1}, {}, {}, {}, {}} // nodes 2..4 not in tree
	_, recv := m.DisseminationLatency(0, children, PayloadBytes)
	for u := 2; u < 5; u++ {
		if !math.IsInf(recv[u], 1) {
			t.Errorf("unreached node %d has finite recv %v", u, recv[u])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(40, Config{}, rand.New(rand.NewSource(9)))
	b := New(40, Config{}, rand.New(rand.NewSource(9)))
	for u := int32(0); u < 40; u++ {
		if a.Upload(u) != b.Upload(u) || a.Latency(u, (u+1)%40) != b.Latency(u, (u+1)%40) {
			t.Fatal("model not deterministic in seed")
		}
	}
}

func TestNegativeNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, Config{}, rand.New(rand.NewSource(1)))
}
