// Package netmodel is the network substrate for the paper's "realistic
// experiments" (§IV-D).
//
// Substitution note (DESIGN.md §2): the paper runs WebRTC browser peers on
// 18 VMs and emulates latency on the network interface. This package models
// the same effects in-process: each peer gets heterogeneous upload/download
// bandwidth drawn from access-technology tiers, pairwise latency derives
// from random coordinates on a unit square (a flat geography stand-in), and
// — crucially for Fig. 7 and the §IV-D simultaneous-transfer experiment —
// a sender's upload bandwidth is shared equally across its concurrent
// transfers. Payloads default to the paper's 1.2 MB "average image size".
package netmodel

import (
	"fmt"
	"math"
	"math/rand"

	"selectps/internal/socialgraph"
)

// PayloadBytes is the paper's dissemination payload: 1.2 MB.
const PayloadBytes = 1.2 * 1000 * 1000

// Tier is an access-technology bandwidth class.
type Tier struct {
	Name        string
	UploadBps   float64 // bytes per second
	DownloadBps float64
	Weight      float64 // relative population share
}

// DefaultTiers is a coarse residential mix: ADSL, cable, VDSL, fiber.
// Values are bytes/s (8 Mbit/s download ≈ 1e6 B/s).
func DefaultTiers() []Tier {
	return []Tier{
		{Name: "adsl", UploadBps: 0.125e6, DownloadBps: 1e6, Weight: 0.30},
		{Name: "cable", UploadBps: 0.75e6, DownloadBps: 6e6, Weight: 0.35},
		{Name: "vdsl", UploadBps: 1.5e6, DownloadBps: 8e6, Weight: 0.20},
		{Name: "fiber", UploadBps: 12e6, DownloadBps: 12e6, Weight: 0.15},
	}
}

// Model holds per-peer connectivity characteristics.
type Model struct {
	up, down []float64
	x, y     []float64 // unit-square coordinates for latency
	baseLat  float64   // constant per-hop latency floor (seconds)
	distLat  float64   // latency per unit distance (seconds)
}

// Config parameterizes model generation.
type Config struct {
	Tiers   []Tier
	BaseLat float64 // seconds; default 10 ms
	DistLat float64 // seconds per unit distance; default 80 ms
	// Jitter multiplies each peer's tier bandwidth by exp(N(0, Jitter)) so
	// peers within a tier still differ. Default 0.25.
	Jitter float64
}

// New builds a model for n peers, deterministic in rng.
func New(n int, cfg Config, rng *rand.Rand) *Model {
	if n < 0 {
		panic(fmt.Sprintf("netmodel: negative peer count %d", n))
	}
	if cfg.Tiers == nil {
		cfg.Tiers = DefaultTiers()
	}
	if cfg.BaseLat == 0 {
		cfg.BaseLat = 0.010
	}
	if cfg.DistLat == 0 {
		cfg.DistLat = 0.080
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.25
	}
	var totalW float64
	for _, t := range cfg.Tiers {
		totalW += t.Weight
	}
	m := &Model{
		up:      make([]float64, n),
		down:    make([]float64, n),
		x:       make([]float64, n),
		y:       make([]float64, n),
		baseLat: cfg.BaseLat,
		distLat: cfg.DistLat,
	}
	for i := 0; i < n; i++ {
		r := rng.Float64() * totalW
		tier := cfg.Tiers[len(cfg.Tiers)-1]
		for _, t := range cfg.Tiers {
			if r < t.Weight {
				tier = t
				break
			}
			r -= t.Weight
		}
		j := math.Exp(rng.NormFloat64() * cfg.Jitter)
		m.up[i] = tier.UploadBps * j
		m.down[i] = tier.DownloadBps * j
		m.x[i] = rng.Float64()
		m.y[i] = rng.Float64()
	}
	return m
}

// N returns the number of peers modeled.
func (m *Model) N() int { return len(m.up) }

// Upload returns peer u's upload bandwidth in bytes/s.
func (m *Model) Upload(u socialgraph.NodeID) float64 { return m.up[u] }

// Download returns peer u's download bandwidth in bytes/s.
func (m *Model) Download(u socialgraph.NodeID) float64 { return m.down[u] }

// Latency returns the one-way propagation latency between u and v in
// seconds. It is symmetric and zero for u == v.
func (m *Model) Latency(u, v socialgraph.NodeID) float64 {
	if u == v {
		return 0
	}
	dx := m.x[u] - m.x[v]
	dy := m.y[u] - m.y[v]
	return m.baseLat + m.distLat*math.Sqrt(dx*dx+dy*dy)
}

// TransferTime returns the time for u to send `bytes` to v while u is
// running `concurrent` simultaneous uploads (>=1): propagation latency plus
// serialization at the bottleneck of u's upload share and v's download.
func (m *Model) TransferTime(u, v socialgraph.NodeID, bytes float64, concurrent int) float64 {
	if concurrent < 1 {
		concurrent = 1
	}
	upShare := m.up[u] / float64(concurrent)
	bw := math.Min(upShare, m.down[v])
	return m.Latency(u, v) + bytes/bw
}

// SimultaneousSend models the §IV-D connectivity experiment: u sends
// `bytes` to every target at once, upload shared equally. It returns the
// completion time of the slowest transfer. With k targets the serialization
// term scales ~linearly in k, reproducing the paper's observation that the
// bottleneck is simultaneous transfers, not connection count.
func (m *Model) SimultaneousSend(u socialgraph.NodeID, targets []socialgraph.NodeID, bytes float64) float64 {
	if len(targets) == 0 {
		return 0
	}
	var worst float64
	for _, v := range targets {
		if t := m.TransferTime(u, v, bytes, len(targets)); t > worst {
			worst = t
		}
	}
	return worst
}

// DisseminationLatency computes the completion time of a store-and-forward
// dissemination over a routing tree: every node begins forwarding only
// after fully receiving the payload, and forwards to all its children
// simultaneously (upload shared). children[u] lists u's children; root is
// the publisher. It returns l(b, S_b) = max over nodes of their receive
// time (Eq. 1) and the per-node receive times (-Inf... represented as
// math.Inf(1) for unreached nodes, 0 for the root).
func (m *Model) DisseminationLatency(root socialgraph.NodeID, children [][]socialgraph.NodeID, bytes float64) (float64, []float64) {
	n := len(children)
	recv := make([]float64, n)
	for i := range recv {
		recv[i] = math.Inf(1)
	}
	recv[root] = 0
	// BFS order: a node's children receive after the node itself.
	queue := []socialgraph.NodeID{root}
	var worst float64
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		k := len(children[u])
		if k == 0 {
			continue
		}
		for _, v := range children[u] {
			t := recv[u] + m.TransferTime(u, v, bytes, k)
			if t < recv[v] {
				recv[v] = t
			}
			if recv[v] > worst && !math.IsInf(recv[v], 1) {
				worst = recv[v]
			}
			queue = append(queue, v)
		}
	}
	return worst, recv
}
