package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"selectps/internal/metrics"
	"selectps/internal/netmodel"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/ring"
	"selectps/internal/selectsys"
	"selectps/internal/sim"
)

// Fig6Churn reproduces Fig. 6: a long run with per-step joins/departures
// (at least half the network always online), recovery after every event,
// and periodic availability measurements. One table per data set, with the
// dashed churn line and the solid availability line as two series.
func Fig6Churn(opt Options, n, steps int) []*metrics.Table {
	opt.fill()
	if n <= 0 {
		n = 800
	}
	if steps <= 0 {
		steps = 300
	}
	var tables []*metrics.Table
	for di, ds := range opt.Datasets {
		tab := &metrics.Table{
			Title:  fmt.Sprintf("Fig. 6: availability under churn — %s (n=%d, select)", ds.Name, n),
			XLabel: "step",
			YLabel: "fraction",
		}
		churnSeries := &metrics.Series{Name: "churn (offline)"}
		availSeries := &metrics.Series{Name: "availability"}
		// Aggregate per-step across trials.
		type agg struct{ churn, avail metrics.Welford }
		points := map[int]*agg{}
		var order []int
		sim.RunTrials(opt.Trials, trialSeed(opt.Seed, 6, int64(di)), func(trial int, rng *rand.Rand) {
			seed := trialSeed(opt.Seed, 6, int64(di), int64(trial))
			g, o, err := buildForTrial(pubsub.Select, ds, n, seed, nil)
			if err != nil {
				return
			}
			pts := sim.RunChurn(o, g, sim.ChurnConfig{Steps: steps}, rng)
			for _, p := range pts {
				// The map is shared across trials; RunTrials runs them on
				// multiple goroutines, so serialize via the mutex below.
				mu.Lock()
				a := points[p.Step]
				if a == nil {
					a = &agg{}
					points[p.Step] = a
					order = append(order, p.Step)
				}
				a.churn.Add(p.OfflineFraction)
				a.avail.Add(p.Availability)
				mu.Unlock()
			}
		})
		for _, step := range order {
			a := points[step]
			churnSeries.Add(float64(step), a.churn)
			availSeries.Add(float64(step), a.avail)
		}
		sortSeries(churnSeries)
		sortSeries(availSeries)
		tab.Series = []*metrics.Series{churnSeries, availSeries}
		tables = append(tables, tab)
	}
	return tables
}

// SimultaneousTransfers reproduces the §IV-D connectivity experiment: a
// central peer sends a 1.2 MB fragment to all its connections at once; the
// total transfer time grows linearly with the connection count.
func SimultaneousTransfers(opt Options, counts []int) *metrics.Table {
	opt.fill()
	if counts == nil {
		counts = []int{5, 10, 20, 40, 80}
	}
	tab := &metrics.Table{
		Title:  "§IV-D: simultaneous 1.2MB transfers from one peer",
		XLabel: "connections",
		YLabel: "total time (s)",
	}
	series := &metrics.Series{Name: "star transfer"}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for _, c := range counts {
		// Same seed for every count: the central peer and its targets keep
		// identical bandwidths across the sweep, so the x-axis isolates the
		// connection count.
		agg := sim.MeanOverTrials(opt.Trials, trialSeed(opt.Seed, 9),
			func(trial int, rng *rand.Rand) metrics.Welford {
				m := netmodel.New(maxC+1, netmodel.Config{}, rng)
				targets := make([]overlay.PeerID, c)
				for i := range targets {
					targets[i] = overlay.PeerID(i + 1)
				}
				var w metrics.Welford
				w.Add(m.SimultaneousSend(0, targets, netmodel.PayloadBytes))
				return w
			})
		series.Add(float64(c), agg)
	}
	tab.Series = append(tab.Series, series)
	return tab
}

// Fig7Latency reproduces Fig. 7: average dissemination latency of a 1.2 MB
// publication over the routing tree, with heterogeneous bandwidth and
// emulated pairwise latency, as the network grows. "random" (the
// socially-oblivious Symphony overlay) grows steeply; SELECT stays low.
func Fig7Latency(opt Options) []*metrics.Table {
	opt.fill()
	systems := []pubsub.Kind{pubsub.Select, pubsub.Symphony}
	var tables []*metrics.Table
	for di, ds := range opt.Datasets {
		tab := &metrics.Table{
			Title:  fmt.Sprintf("Fig. 7: dissemination latency — %s", ds.Name),
			XLabel: "peers",
			YLabel: "avg latency (s)",
		}
		for _, kind := range systems {
			name := string(kind)
			if kind == pubsub.Symphony {
				name = "random (symphony)"
			}
			series := &metrics.Series{Name: name}
			for si, n := range opt.Sizes {
				agg := sim.MeanOverTrials(opt.Trials, trialSeed(opt.Seed, 7, int64(di), int64(si)),
					func(trial int, rng *rand.Rand) metrics.Welford {
						seed := trialSeed(opt.Seed, 7, int64(di), int64(si), int64(trial))
						net := netmodel.New(n, netmodel.Config{}, rand.New(rand.NewSource(seed+29)))
						g, o, err := buildLatencyAware(kind, ds, n, seed, net)
						if err != nil {
							return metrics.Welford{}
						}
						var w metrics.Welford
						samples := opt.Samples / 5
						if samples < 10 {
							samples = 10
						}
						for i := 0; i < samples; i++ {
							b := overlay.PeerID(rng.Intn(n))
							if g.Degree(b) == 0 {
								continue
							}
							d := pubsub.Publish(o, g, b)
							lat, _ := net.DisseminationLatency(b, d.Tree.ChildrenArray(n), netmodel.PayloadBytes)
							if !math.IsInf(lat, 1) {
								w.Add(lat)
							}
						}
						return w
					})
				series.Add(float64(n), agg)
			}
			tab.Series = append(tab.Series, series)
		}
		tables = append(tables, tab)
	}
	return tables
}

// buildLatencyAware builds a system and, for SELECT, feeds the netmodel's
// upload bandwidths into the picker — the latency awareness of §III-D.
func buildLatencyAware(kind pubsub.Kind, ds datasetsSpec, n int, seed int64, net *netmodel.Model) (graphT, overlay.Overlay, error) {
	var cfg *selectsys.Config
	if kind == pubsub.Select {
		bw := make([]float64, n)
		for i := range bw {
			bw[i] = net.Upload(overlay.PeerID(i))
		}
		cfg = &selectsys.Config{Bandwidths: bw}
	}
	return buildForTrial(kind, ds, n, seed, cfg)
}

// Fig8IDs reproduces Fig. 8: the distribution of identifiers after SELECT
// converges — fraction of peers per ID-space decile plus the friend vs
// random ring-distance contrast that quantifies the social clustering.
func Fig8IDs(opt Options, n int) []*metrics.Table {
	opt.fill()
	if n <= 0 {
		n = 1000
	}
	const bins = 10
	var tables []*metrics.Table
	for di, ds := range opt.Datasets {
		tab := &metrics.Table{
			Title:  fmt.Sprintf("Fig. 8: identifier distribution — %s (n=%d)", ds.Name, n),
			XLabel: "ID decile",
			YLabel: "fraction of peers / distance",
		}
		occupancy := make([]metrics.Welford, bins)
		var friendD, randomD metrics.Welford
		sim.RunTrials(opt.Trials, trialSeed(opt.Seed, 8, int64(di)), func(trial int, rng *rand.Rand) {
			g, o, err := buildForTrial(pubsub.Select, ds, n, trialSeed(opt.Seed, 8, int64(di), int64(trial)), nil)
			if err != nil {
				return
			}
			h := metrics.NewHistogram(0, 1, bins)
			for p := 0; p < n; p++ {
				h.Add(float64(o.Position(overlay.PeerID(p))))
			}
			fr := h.Fractions()
			var fd, rd metrics.Welford
			for i := 0; i < opt.Samples; i++ {
				u, v, ok := g.RandomEdge(rng)
				if ok {
					fd.Add(ring.Distance(o.Position(u), o.Position(v)))
				}
				a := overlay.PeerID(rng.Intn(n))
				b := overlay.PeerID(rng.Intn(n))
				rd.Add(ring.Distance(o.Position(a), o.Position(b)))
			}
			mu.Lock()
			for b := 0; b < bins; b++ {
				occupancy[b].Add(fr[b])
			}
			friendD.Merge(fd)
			randomD.Merge(rd)
			mu.Unlock()
		})
		occ := &metrics.Series{Name: "peer fraction"}
		for b := 0; b < bins; b++ {
			occ.Add(float64(b+1), occupancy[b])
		}
		dist := &metrics.Series{Name: "ring distance"}
		dist.Add(1, friendD)
		dist.Points[len(dist.Points)-1].Note = "friend pairs"
		dist.Add(2, randomD)
		dist.Points[len(dist.Points)-1].Note = "random pairs"
		tab.Series = []*metrics.Series{occ, dist}
		tables = append(tables, tab)
	}
	return tables
}
