package experiments

import (
	"strings"
	"testing"

	"selectps/internal/metrics"
)

func mkSeries(name string, pts ...[2]float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for _, p := range pts {
		s.Points = append(s.Points, metrics.Point{X: p[0], Y: p[1]})
	}
	return s
}

func TestHeadlines(t *testing.T) {
	tab := &metrics.Table{
		Title: "Fig. 2: hops per social lookup — facebook",
		Series: []*metrics.Series{
			mkSeries("select", [2]float64{400, 2}, [2]float64{800, 2.5}),
			mkSeries("symphony", [2]float64{400, 8}, [2]float64{800, 10}),
			mkSeries("vitis", [2]float64{400, 4}, [2]float64{800, 5}),
		},
	}
	hs := Headlines([]*metrics.Table{tab})
	if len(hs) != 1 {
		t.Fatalf("headlines = %d", len(hs))
	}
	h := hs[0]
	if h.Dataset != "facebook" || h.At != 800 || h.Select != 2.5 {
		t.Fatalf("headline = %+v", h)
	}
	if r := h.Reductions["symphony"]; r != 75 {
		t.Errorf("symphony reduction = %v, want 75", r)
	}
	if r := h.Reductions["vitis"]; r != 50 {
		t.Errorf("vitis reduction = %v, want 50", r)
	}
}

func TestHeadlinesSkipsTablesWithoutSelect(t *testing.T) {
	tab := &metrics.Table{Title: "x — y", Series: []*metrics.Series{mkSeries("symphony", [2]float64{1, 1})}}
	if hs := Headlines([]*metrics.Table{tab}); len(hs) != 0 {
		t.Errorf("expected no headlines, got %d", len(hs))
	}
}

func TestDatasetOf(t *testing.T) {
	cases := map[string]string{
		"Fig. 2: hops per social lookup — facebook":   "facebook",
		"Fig. 8: identifier distribution — gplus (n)": "gplus",
		"no dash here": "no dash here",
	}
	for in, want := range cases {
		if got := datasetOf(in); got != want {
			t.Errorf("datasetOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatHeadlines(t *testing.T) {
	hs := []Headline{{
		Dataset: "facebook", At: 800, Select: 2.5,
		Reductions: map[string]float64{"symphony": 75, "omen": 40},
	}}
	out := FormatHeadlines("Fig. 2", hs)
	for _, want := range []string{"facebook", "select=2.500", "vs symphony: +75%", "vs omen: +40%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("summary runs full sweeps")
	}
	opt := tiny()
	opt.Sizes = []int{250}
	opt.Samples = 25
	out := Summary(opt)
	if !strings.Contains(out, "Fig. 2") || !strings.Contains(out, "Fig. 3") {
		t.Errorf("summary incomplete:\n%s", out)
	}
	if !strings.Contains(out, "facebook") {
		t.Errorf("summary missing dataset:\n%s", out)
	}
}
