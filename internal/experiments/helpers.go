package experiments

import (
	"sort"
	"sync"

	"selectps/internal/datasets"
	"selectps/internal/metrics"
	"selectps/internal/socialgraph"
)

// mu serializes aggregation maps that parallel trials write into.
var mu sync.Mutex

// Short local aliases keeping long helper signatures readable.
type (
	datasetsSpec = datasets.Spec
	graphT       = *socialgraph.Graph
)

// sortSeries orders a series by X (parallel trials may append points out
// of order).
func sortSeries(s *metrics.Series) {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// metricsSeries is a test-friendly alias.
type metricsSeries = metrics.Series
