package experiments

import (
	"strings"
	"testing"

	"selectps/internal/datasets"
	"selectps/internal/pubsub"
)

// tiny returns fast options for tests: one small data set, two sizes, one
// trial.
func tiny() Options {
	return Options{
		Datasets: []datasets.Spec{datasets.Facebook},
		Sizes:    []int{300, 600},
		Trials:   1,
		Samples:  40,
		Seed:     3,
		Systems:  []pubsub.Kind{pubsub.Select, pubsub.Symphony},
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(Options{Trials: 1, Seed: 2}, 600)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Generated.Users != 600 {
			t.Errorf("%s users = %d", r.Generated.Name, r.Generated.Users)
		}
		// Generated average degree should be in the ballpark of the paper's.
		lo, hi := r.Spec.PaperAvgDegree*0.6, r.Spec.PaperAvgDegree*1.3
		if r.Generated.AvgDegree < lo || r.Generated.AvgDegree > hi {
			t.Errorf("%s avg degree %.1f outside [%.1f,%.1f]",
				r.Generated.Name, r.Generated.AvgDegree, lo, hi)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "facebook") || !strings.Contains(out, "gplus") {
		t.Errorf("FormatTable2 output incomplete:\n%s", out)
	}
}

func TestFig2SelectBeatsSymphony(t *testing.T) {
	tabs := Fig2Hops(tiny())
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	tab := tabs[0]
	var sel, sym float64
	for _, s := range tab.Series {
		last := s.Points[len(s.Points)-1].Y
		switch s.Name {
		case "select":
			sel = last
		case "symphony":
			sym = last
		}
	}
	if sel <= 0 || sym <= 0 {
		t.Fatalf("missing series: select=%v symphony=%v\n%s", sel, sym, tab)
	}
	if sel >= sym {
		t.Errorf("SELECT hops %.2f not below Symphony %.2f\n%s", sel, sym, tab)
	}
}

func TestFig3SelectFarFewerRelays(t *testing.T) {
	tabs := Fig3Relays(tiny())
	tab := tabs[0]
	var sel, sym float64
	for _, s := range tab.Series {
		last := s.Points[len(s.Points)-1].Y
		switch s.Name {
		case "select":
			sel = last
		case "symphony":
			sym = last
		}
	}
	if sym == 0 {
		t.Fatalf("symphony relays = 0?\n%s", tab)
	}
	// The paper reports up to 89% reduction vs the state of the art and
	// ~98% vs Symphony; require at least 60% here at tiny scale.
	if red := 100 * (1 - sel/sym); red < 60 {
		t.Errorf("relay reduction only %.1f%% (select %.1f vs symphony %.1f)\n%s",
			red, sel, sym, tab)
	}
}

func TestLinkSweepDecreases(t *testing.T) {
	opt := tiny()
	tab := LinkSweep(opt, 500, []int{2, 8, 16})
	pts := tab.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[0].Y > pts[1].Y && pts[1].Y >= pts[2].Y-0.5) {
		t.Errorf("hops not decreasing in K: %v %v %v", pts[0].Y, pts[1].Y, pts[2].Y)
	}
}

func TestFig4SelectLowestTransitLoad(t *testing.T) {
	opt := tiny()
	opt.Samples = 25
	tabs := Fig4Load(opt, 400)
	var sel, sym float64 = -1, -1
	for _, s := range tabs[0].Series {
		switch s.Name {
		case "select":
			sel = TotalLoad(s)
		case "symphony":
			sym = TotalLoad(s)
		}
	}
	if sel < 0 || sym <= 0 {
		t.Fatalf("missing series: select=%v symphony=%v", sel, sym)
	}
	if sel >= sym/2 {
		t.Errorf("SELECT transit load %.4f not well below Symphony %.4f", sel, sym)
	}
}

func TestFig4HotspotSystemsConcentrateOnHighDegree(t *testing.T) {
	opt := tiny()
	opt.Samples = 25
	opt.Systems = []pubsub.Kind{pubsub.Vitis}
	tabs := Fig4Load(opt, 400)
	s := tabs[0].Series[0]
	if TotalLoad(s) == 0 {
		t.Skip("vitis produced no transit load at this scale")
	}
	// Vitis links to high-degree peers; its transit load should skew to
	// the top deciles: the top decile should carry more than the bottom.
	bottom, top := s.Points[0].Y, s.Points[len(s.Points)-1].Y
	if top <= bottom {
		t.Errorf("vitis transit load not hub-skewed: bottom=%.4f top=%.4f", bottom, top)
	}
}

func TestFig5SelectConvergesFastest(t *testing.T) {
	opt := tiny()
	tab := Fig5Convergence(opt, 500)
	vals := map[string]float64{}
	for _, s := range tab.Series {
		vals[s.Name] = s.Points[0].Y
	}
	if vals["select"] <= 0 {
		t.Fatalf("missing select series\n%s", tab)
	}
	if vals["select"] >= vals["vitis"] || vals["select"] >= vals["omen"] {
		t.Errorf("select iterations %.0f not below vitis %.0f / omen %.0f",
			vals["select"], vals["vitis"], vals["omen"])
	}
}

func TestFig6SelectFullAvailability(t *testing.T) {
	opt := tiny()
	tabs := Fig6Churn(opt, 400, 120)
	tab := tabs[0]
	var avail *metricsSeries
	for _, s := range tab.Series {
		if s.Name == "availability" {
			avail = s
		}
	}
	if avail == nil || len(avail.Points) == 0 {
		t.Fatalf("no availability series\n%s", tab)
	}
	for _, p := range avail.Points {
		if p.Y < 0.999 {
			t.Errorf("availability %.4f at step %v below 100%%", p.Y, p.X)
		}
	}
}

func TestSimultaneousTransfersLinear(t *testing.T) {
	opt := tiny()
	tab := SimultaneousTransfers(opt, []int{5, 50})
	pts := tab.Series[0].Points
	ratio := pts[1].Y / pts[0].Y
	if ratio < 5 || ratio > 15 {
		t.Errorf("50 vs 5 connections ratio = %.1f, want ~10 (linear)", ratio)
	}
}

func TestFig7SelectLowerLatency(t *testing.T) {
	opt := tiny()
	opt.Sizes = []int{400}
	tabs := Fig7Latency(opt)
	tab := tabs[0]
	var sel, sym float64
	for _, s := range tab.Series {
		switch s.Name {
		case "select":
			sel = s.Points[0].Y
		case "random (symphony)":
			sym = s.Points[0].Y
		}
	}
	if sel <= 0 || sym <= 0 {
		t.Fatalf("missing latency series\n%s", tab)
	}
	if sel >= sym {
		t.Errorf("SELECT latency %.2fs not below random %.2fs", sel, sym)
	}
}

func TestFig8IDDistribution(t *testing.T) {
	opt := tiny()
	tabs := Fig8IDs(opt, 400)
	tab := tabs[0]
	var occ, dist *metricsSeries
	for _, s := range tab.Series {
		switch s.Name {
		case "peer fraction":
			occ = s
		case "ring distance":
			dist = s
		}
	}
	if occ == nil || dist == nil {
		t.Fatalf("missing series\n%s", tab)
	}
	var sum float64
	for _, p := range occ.Points {
		sum += p.Y
	}
	if sum < 0.98 || sum > 1.02 {
		t.Errorf("occupancy fractions sum to %.3f", sum)
	}
	friend, random := dist.Points[0].Y, dist.Points[1].Y
	if friend >= random {
		t.Errorf("friend distance %.3f not below random %.3f", friend, random)
	}
}

func TestAblationsFullIsBest(t *testing.T) {
	opt := tiny()
	// The hop gaps between variants are a few hundredths to ~0.15 hops, so
	// the comparison needs real sampling power: one 60-sample trial at
	// n=400 sits inside the noise band and flips sign across equally valid
	// rng streams. Three 200-sample trials at n=800 puts the full-vs-
	// ablation ordering comfortably outside it.
	opt.Samples = 200
	opt.Trials = 3
	tab := Ablations(opt, 800)
	byName := map[string][]float64{}
	for _, s := range tab.Series {
		ys := make([]float64, len(s.Points))
		for i, p := range s.Points {
			ys[i] = p.Y
		}
		byName[s.Name] = ys
	}
	hops := byName["hops"]
	if len(hops) != len(AblationVariants()) {
		t.Fatalf("hops points = %d", len(hops))
	}
	// Full SELECT (index 0) should not be worse on hops than the
	// no-reassignment and random-links ablations.
	if hops[0] > hops[1] || hops[0] > hops[2] {
		t.Errorf("full hops %.2f worse than ablations %v", hops[0], hops)
	}
	avail := byName["availability%"]
	if avail[0] < 99.9 {
		t.Errorf("full availability %.2f%% below 100%%", avail[0])
	}
}
