// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each exported function reproduces one artifact and
// returns printable metrics.Table values whose rows/series mirror what the
// paper reports; cmd/selectsim exposes them on the command line and
// bench_test.go wires them into `go test -bench`.
//
// Scale note: defaults run at laptop scale (hundreds to a few thousand
// peers, a handful of trials) — the paper's qualitative shape (who wins,
// by roughly what factor) is the reproduction target, per DESIGN.md §3.
package experiments

import (
	"fmt"
	"math/rand"

	"selectps/internal/churn"
	"selectps/internal/datasets"
	"selectps/internal/growth"
	"selectps/internal/metrics"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/selectsys"
	"selectps/internal/sim"
	"selectps/internal/socialgraph"
)

// Options configures an experiment run.
type Options struct {
	// Datasets to sweep (default: all four of Table II).
	Datasets []datasets.Spec
	// Sizes is the network-size axis for the growth sweeps (Figs. 2, 3, 7).
	Sizes []int
	// Trials is the number of independent seeded repetitions per point
	// (the paper uses 100; defaults are laptop-scale).
	Trials int
	// Samples is the number of lookups/publications sampled per trial.
	Samples int
	// Seed is the base seed; everything derives deterministically from it.
	Seed int64
	// Systems to compare (default: all five).
	Systems []pubsub.Kind
	// ChurnSteps is the number of churn steps (log-normal joins/departures
	// plus each system's recovery) applied before the Fig. 3 relay sweep
	// measures — §IV runs its pub/sub simulations in a churning network,
	// which is where the baselines' repair weaknesses surface. Fig. 2
	// (pure overlay lookup quality) always runs fully online. Negative
	// disables churn; 0 uses the default (30).
	ChurnSteps int
}

// Default returns laptop-scale options.
func Default() Options {
	return Options{
		Datasets: datasets.All(),
		Sizes:    []int{500, 1000, 2000},
		Trials:   3,
		Samples:  150,
		Seed:     1,
		Systems:  pubsub.AllKinds(),
	}
}

func (o *Options) fill() {
	d := Default()
	if o.Datasets == nil {
		o.Datasets = d.Datasets
	}
	if o.Sizes == nil {
		o.Sizes = d.Sizes
	}
	if o.Trials == 0 {
		o.Trials = d.Trials
	}
	if o.Samples == 0 {
		o.Samples = d.Samples
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Systems == nil {
		o.Systems = d.Systems
	}
	if o.ChurnSteps == 0 {
		o.ChurnSteps = 30
	}
}

// trialSeed mixes the experiment seed with stable per-point coordinates.
func trialSeed(base int64, parts ...int64) int64 {
	s := base
	for _, p := range parts {
		s = s*1_000_000_007 + p + 0x9e37
	}
	return s
}

// buildForTrial generates the graph, derives the shared join schedule, and
// constructs one system. The same (dataset, n, trial) always yields the
// same graph and schedule for every system, so comparisons are paired.
func buildForTrial(kind pubsub.Kind, ds datasets.Spec, n int, seed int64, selectCfg *selectsys.Config) (*socialgraph.Graph, overlay.Overlay, error) {
	g := ds.Generate(n, seed)
	rng := rand.New(rand.NewSource(seed + 7))
	sched := growth.DefaultModel().Schedule(g, rng)
	opt := pubsub.BuildOptions{Schedule: &sched, SelectConfig: selectCfg}
	o, err := pubsub.Build(kind, g, opt, rand.New(rand.NewSource(seed+13)))
	return g, o, err
}

// applyChurn drives the overlay through `steps` of log-normal churn with
// the system's recovery running after every membership change, and leaves
// the network in the final churned state (the paper's §IV experiments run
// in an evolving, churning network).
func applyChurn(o overlay.Overlay, steps int, rng *rand.Rand) {
	if steps <= 0 {
		return
	}
	state := churn.NewState(o.N(), churn.DefaultModel(), rng)
	for step := 0; step < steps; step++ {
		off, on := state.Step(step)
		for _, p := range off {
			o.SetOnline(p, false)
		}
		for _, p := range on {
			o.SetOnline(p, true)
		}
		if len(off)+len(on) > 0 {
			o.Repair()
		}
	}
}

// socialHops measures the average overlay hops between random socially
// connected pairs (Fig. 2's metric). Pairs with an offline endpoint are
// skipped (offline users neither post nor receive).
func socialHops(o overlay.Overlay, g *socialgraph.Graph, samples int, rng *rand.Rand) metrics.Welford {
	var w metrics.Welford
	for i := 0; i < samples; i++ {
		u, v, ok := g.RandomEdge(rng)
		if !ok {
			break
		}
		if !o.Online(u) || !o.Online(v) {
			continue
		}
		path, ok := overlay.RouteOn(o, u, v)
		if !ok {
			// Failed lookups are not averaged into the hop count — Fig. 2
			// reports the cost of successful lookups; delivery failures are
			// the availability experiment's metric (Fig. 6).
			continue
		}
		w.Add(float64(path.Hops()))
	}
	return w
}

// relayNodes measures the average relay-node count per pub/sub routing
// path (Fig. 3's metric: intermediates between the publisher and each
// subscriber that are not subscribers themselves), over sampled
// publishers.
func relayNodes(o overlay.Overlay, g *socialgraph.Graph, samples int, rng *rand.Rand) metrics.Welford {
	var w metrics.Welford
	n := o.N()
	for i := 0; i < samples; i++ {
		b := overlay.PeerID(rng.Intn(n))
		if g.Degree(b) == 0 || !o.Online(b) {
			continue
		}
		d := pubsub.Publish(o, g, b)
		w.Add(d.PathRelaysMean)
	}
	return w
}

// sweepTable runs a per-dataset (size × system) sweep with the given
// per-build measurement and returns one table per dataset.
func sweepTable(opt Options, title, ylabel string, measure func(o overlay.Overlay, g *socialgraph.Graph, samples int, rng *rand.Rand) metrics.Welford) []*metrics.Table {
	opt.fill()
	var tables []*metrics.Table
	for di, ds := range opt.Datasets {
		tab := &metrics.Table{
			Title:  fmt.Sprintf("%s — %s", title, ds.Name),
			XLabel: "peers",
			YLabel: ylabel,
		}
		for _, kind := range opt.Systems {
			series := &metrics.Series{Name: string(kind)}
			for si, n := range opt.Sizes {
				agg := sim.MeanOverTrials(opt.Trials, trialSeed(opt.Seed, int64(di), int64(si)),
					func(trial int, rng *rand.Rand) metrics.Welford {
						g, o, err := buildForTrial(kind, ds, n, trialSeed(opt.Seed, int64(di), int64(si), int64(trial)), nil)
						if err != nil {
							return metrics.Welford{}
						}
						applyChurn(o, opt.ChurnSteps, rng)
						return measure(o, g, opt.Samples, rng)
					})
				series.Add(float64(n), agg)
			}
			tab.Series = append(tab.Series, series)
		}
		tables = append(tables, tab)
	}
	return tables
}

// Fig2Hops reproduces Fig. 2: average hops per social lookup as the
// network grows, per data set, for all five systems. The lookup sweep runs
// on the fully online overlay (failures under churn are Fig. 6's metric).
func Fig2Hops(opt Options) []*metrics.Table {
	opt.fill()
	opt.ChurnSteps = -1
	return sweepTable(opt, "Fig. 2: hops per social lookup", "avg hops", socialHops)
}

// Fig3Relays reproduces Fig. 3: average relay nodes per pub/sub routing
// tree as the network grows, per data set, for all five systems.
func Fig3Relays(opt Options) []*metrics.Table {
	return sweepTable(opt, "Fig. 3: relay nodes per routing path", "avg relay nodes", relayNodes)
}
