package experiments

import (
	"fmt"
	"math/rand"

	"selectps/internal/metrics"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/selectsys"
	"selectps/internal/sim"
)

// AblationVariant names one disabled mechanism.
type AblationVariant struct {
	Name string
	Cfg  selectsys.Config
}

// AblationVariants returns full SELECT plus one variant per design choice
// DESIGN.md §5 calls out.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full", Cfg: selectsys.Config{}},
		{Name: "no-reassignment", Cfg: selectsys.Config{DisableReassignment: true}},
		{Name: "random-links", Cfg: selectsys.Config{RandomLinks: true}},
		{Name: "picker-no-bw", Cfg: selectsys.Config{PickerIgnoresBandwidth: true}},
		{Name: "centroid-all", Cfg: selectsys.Config{CentroidAllFriends: true}},
		{Name: "naive-recovery", Cfg: selectsys.Config{NaiveRecovery: true}},
		{Name: "no-lookahead", Cfg: selectsys.Config{DisableLookahead: true}},
	}
}

// Ablations prices each SELECT design choice: average social-lookup hops,
// relay nodes per tree, construction iterations and availability under
// churn for every variant. x = variant index in AblationVariants order.
func Ablations(opt Options, n int) *metrics.Table {
	opt.fill()
	if n <= 0 {
		n = 800
	}
	ds := opt.Datasets[0]
	variants := AblationVariants()
	tab := &metrics.Table{
		Title:  fmt.Sprintf("SELECT ablations — %s (n=%d; x = variant: %s)", ds.Name, n, variantLegend(variants)),
		XLabel: "variant",
		YLabel: "hops / relays / iterations / availability%",
	}
	hops := &metrics.Series{Name: "hops"}
	relays := &metrics.Series{Name: "relays"}
	iters := &metrics.Series{Name: "iterations"}
	avail := &metrics.Series{Name: "availability%"}
	for vi, v := range variants {
		cfg := v.Cfg
		var hw, rw, iw, aw metrics.Welford
		sim.RunTrials(opt.Trials, trialSeed(opt.Seed, 11, int64(vi)), func(trial int, rng *rand.Rand) {
			seed := trialSeed(opt.Seed, 11, int64(vi), int64(trial))
			g, o, err := buildForTrial(pubsub.Select, ds, n, seed, &cfg)
			if err != nil {
				return
			}
			h := socialHops(o, g, opt.Samples, rng)
			r := relayNodes(o, g, opt.Samples/3, rng)
			var it float64
			if iv, ok := o.(overlay.Iterative); ok {
				it = float64(iv.Iterations())
			}
			pts := sim.RunChurn(o, g, sim.ChurnConfig{Steps: 100}, rng)
			var av metrics.Welford
			for _, p := range pts {
				av.Add(p.Availability * 100)
			}
			mu.Lock()
			hw.Merge(h)
			rw.Merge(r)
			iw.Add(it)
			aw.Merge(av)
			mu.Unlock()
		})
		hops.Add(float64(vi+1), hw)
		relays.Add(float64(vi+1), rw)
		iters.Add(float64(vi+1), iw)
		avail.Add(float64(vi+1), aw)
	}
	tab.Series = []*metrics.Series{hops, relays, iters, avail}
	return tab
}

func variantLegend(vs []AblationVariant) string {
	s := ""
	for i, v := range vs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d=%s", i+1, v.Name)
	}
	return s
}
