package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"selectps/internal/datasets"
	"selectps/internal/metrics"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/selectsys"
	"selectps/internal/sim"
	"selectps/internal/socialgraph"
)

// Table2Row pairs a generated data set's statistics with the paper's.
type Table2Row struct {
	Generated datasets.Stats
	Spec      datasets.Spec
}

// Table2 regenerates Table II from the synthetic generators at the given
// scale (0 = each data set's DefaultScale) and reports the paper values
// next to the measured ones.
func Table2(opt Options, scale int) []Table2Row {
	opt.fill()
	var rows []Table2Row
	for di, ds := range opt.Datasets {
		n := scale
		if n <= 0 {
			n = ds.DefaultScale
		}
		g := ds.Generate(n, trialSeed(opt.Seed, int64(di)))
		rows = append(rows, Table2Row{Generated: datasets.Measure(ds.Name, g), Spec: ds})
	}
	return rows
}

// FormatTable2 renders the Table II comparison.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("# Table II: data sets (generated vs paper)\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %14s %12s\n",
		"dataset", "users", "connections", "avgDegree", "paperAvgDeg", "maxDegree")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %12d %12.3f %14.3f %12d\n",
			r.Generated.Name, r.Generated.Users, r.Generated.Connections,
			r.Generated.AvgDegree, r.Spec.PaperAvgDegree, r.Generated.MaxDegree)
	}
	return b.String()
}

// LinkSweep reproduces the §IV-C opening experiment: the average number of
// hops between socially connected peers for SELECT as the number of direct
// connections K grows — a >90% drop that flattens once K passes log2(N).
func LinkSweep(opt Options, n int, ks []int) *metrics.Table {
	opt.fill()
	if n <= 0 {
		n = 1000
	}
	if ks == nil {
		ks = []int{2, 4, 8, 12, 16, 24}
	}
	ds := opt.Datasets[0]
	tab := &metrics.Table{
		Title:  fmt.Sprintf("§IV-C link sweep — %s, n=%d (log2N=%d)", ds.Name, n, pubsub.DefaultK(n)),
		XLabel: "K links",
		YLabel: "avg hops per social lookup",
	}
	series := &metrics.Series{Name: "select"}
	for ki, k := range ks {
		cfg := &selectsys.Config{K: k}
		agg := sim.MeanOverTrials(opt.Trials, trialSeed(opt.Seed, 77, int64(ki)),
			func(trial int, rng *rand.Rand) metrics.Welford {
				g, o, err := buildForTrial(pubsub.Select, ds, n,
					trialSeed(opt.Seed, 77, int64(ki), int64(trial)), cfg)
				if err != nil {
					return metrics.Welford{}
				}
				return socialHops(o, g, opt.Samples, rng)
			})
		series.Add(float64(k), agg)
	}
	tab.Series = append(tab.Series, series)
	return tab
}

// Fig4Load reproduces Fig. 4: how the forwarding load of the pub/sub
// routing trees distributes over peers by social degree. The load measured
// is transit load — message copies forwarded by peers that are neither the
// publisher nor subscribers of the message (forwarding one's own
// subscription is useful work; relaying a stranger's notification is the
// overhead the figure is about). y is the average number of relayed copies
// a peer of each degree decile forwards per publication: flat and near
// zero is balanced (SELECT); mass piled on the top deciles marks the
// hotspot systems (Vitis, OMen); wide nonzero mass marks the socially
// oblivious DHTs (Symphony, Bayeux).
func Fig4Load(opt Options, n int) []*metrics.Table {
	opt.fill()
	if n <= 0 {
		n = 1000
	}
	const buckets = 10
	var tables []*metrics.Table
	for di, ds := range opt.Datasets {
		tab := &metrics.Table{
			Title:  fmt.Sprintf("Fig. 4: relayed copies per peer per publication, by degree decile — %s (n=%d)", ds.Name, n),
			XLabel: "degree decile",
			YLabel: "relayed copies / peer / publication",
		}
		for _, kind := range opt.Systems {
			shares := make([]metrics.Welford, buckets)
			sim.RunTrials(opt.Trials, trialSeed(opt.Seed, 4, int64(di)), func(trial int, rng *rand.Rand) {
				g, o, err := buildForTrial(kind, ds, n, trialSeed(opt.Seed, 4, int64(di), int64(trial)), nil)
				if err != nil {
					return
				}
				s := relayLoadByDegreeDecile(o, g, opt.Samples, buckets, rng)
				mu.Lock()
				for b := 0; b < buckets; b++ {
					shares[b].Add(s[b])
				}
				mu.Unlock()
			})
			series := &metrics.Series{Name: string(kind)}
			for b := 0; b < buckets; b++ {
				series.Add(float64(b+1), shares[b])
			}
			tab.Series = append(tab.Series, series)
		}
		tables = append(tables, tab)
	}
	return tables
}

// relayLoadByDegreeDecile publishes from users drawn by the exponential
// posting workload and returns, per social-degree decile, the average
// number of transit (non-subscriber) forwards performed per peer per
// publication.
func relayLoadByDegreeDecile(o overlay.Overlay, g *socialgraph.Graph, publications, buckets int, rng *rand.Rand) []float64 {
	n := g.NumNodes()
	decile := degreeDeciles(g, buckets)
	population := make([]float64, buckets)
	for p := 0; p < n; p++ {
		population[decile[p]]++
	}
	w := pubsub.NewWorkload(g, 10, rng)
	load := make([]float64, buckets)
	published := 0
	for t := 0; published < publications; t++ {
		for _, b := range w.PostersUntil(float64(t), 1) {
			if g.Degree(b) == 0 {
				continue
			}
			d := pubsub.Publish(o, g, b)
			for peer, c := range d.Forwards {
				if peer == b || g.HasEdge(b, peer) {
					continue // publisher or subscriber: useful work, not transit
				}
				load[decile[peer]] += float64(c)
			}
			published++
			if published >= publications {
				break
			}
		}
		if t > publications*100 {
			break // defensive: degenerate workload
		}
	}
	out := make([]float64, buckets)
	if published == 0 {
		return out
	}
	for b := range out {
		if population[b] > 0 {
			out[b] = load[b] / population[b] / float64(published)
		}
	}
	return out
}

// degreeDeciles splits peers into equal-population buckets by ascending
// social degree.
func degreeDeciles(g *socialgraph.Graph, buckets int) []int {
	n := g.NumNodes()
	byDeg := make([]socialgraph.NodeID, n)
	for i := range byDeg {
		byDeg[i] = socialgraph.NodeID(i)
	}
	sort.Slice(byDeg, func(i, j int) bool {
		di, dj := g.Degree(byDeg[i]), g.Degree(byDeg[j])
		if di != dj {
			return di < dj
		}
		return byDeg[i] < byDeg[j]
	})
	decile := make([]int, n)
	for rank, p := range byDeg {
		d := rank * buckets / n
		if d >= buckets {
			d = buckets - 1
		}
		decile[p] = d
	}
	return decile
}

// TotalLoad sums a Fig. 4 series — the per-publication transit volume of
// the system (the paper's relative improvements compare these).
func TotalLoad(s *metrics.Series) float64 {
	var sum float64
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum
}

// TopDecileShare condenses a Fig. 4 series into the top-degree-decile's
// share of the total transit load (1.0 = all load on the hub decile).
func TopDecileShare(s *metrics.Series) float64 {
	total := TotalLoad(s)
	if total == 0 || len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Y / total
}

// Fig5Convergence reproduces Fig. 5: iterations to organize the overlay,
// per data set, for the iterative systems (Symphony and Bayeux are
// excluded, as in the paper).
func Fig5Convergence(opt Options, n int) *metrics.Table {
	opt.fill()
	if n <= 0 {
		n = 1000
	}
	tab := &metrics.Table{
		Title:  fmt.Sprintf("Fig. 5: iterations to construct the overlay (n=%d; x = dataset index: 1=facebook 2=twitter 3=slashdot 4=gplus)", n),
		XLabel: "dataset",
		YLabel: "iterations",
	}
	for _, kind := range pubsub.IterativeKinds() {
		series := &metrics.Series{Name: string(kind)}
		for di, ds := range opt.Datasets {
			agg := sim.MeanOverTrials(opt.Trials, trialSeed(opt.Seed, 5, int64(di)),
				func(trial int, rng *rand.Rand) metrics.Welford {
					_, o, err := buildForTrial(kind, ds, n, trialSeed(opt.Seed, 5, int64(di), int64(trial)), nil)
					if err != nil {
						return metrics.Welford{}
					}
					var w metrics.Welford
					if it, ok := o.(overlay.Iterative); ok {
						w.Add(float64(it.Iterations()))
					}
					return w
				})
			series.Add(float64(di+1), agg)
		}
		tab.Series = append(tab.Series, series)
	}
	return tab
}
