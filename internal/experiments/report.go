package experiments

import (
	"fmt"
	"strings"

	"selectps/internal/metrics"
)

// Headline condenses one figure's tables into the paper's style of claim:
// SELECT's value at the largest network size and the percentage reduction
// against every baseline series.
type Headline struct {
	Dataset    string
	At         float64 // the x (network size) the row is taken at
	Select     float64
	Reductions map[string]float64 // baseline name -> % reduction (positive = SELECT lower)
}

// Headlines extracts one Headline per table. Tables must contain a
// "select" series; series without a point at the largest common X are
// skipped.
func Headlines(tables []*metrics.Table) []Headline {
	var out []Headline
	for _, tab := range tables {
		var sel *metrics.Series
		for _, s := range tab.Series {
			if s.Name == "select" {
				sel = s
				break
			}
		}
		if sel == nil || len(sel.Points) == 0 {
			continue
		}
		last := sel.Points[len(sel.Points)-1]
		h := Headline{
			Dataset:    datasetOf(tab.Title),
			At:         last.X,
			Select:     last.Y,
			Reductions: map[string]float64{},
		}
		for _, s := range tab.Series {
			if s.Name == "select" || len(s.Points) == 0 {
				continue
			}
			for _, p := range s.Points {
				if p.X == last.X {
					h.Reductions[s.Name] = metrics.Reduction(last.Y, p.Y)
					break
				}
			}
		}
		out = append(out, h)
	}
	return out
}

// datasetOf pulls the data-set name out of a table title of the form
// "... — <name>" (the sweep titles' convention).
func datasetOf(title string) string {
	if i := strings.LastIndex(title, "— "); i >= 0 {
		rest := title[i+len("— "):]
		if j := strings.IndexAny(rest, " ("); j > 0 {
			return rest[:j]
		}
		return rest
	}
	return title
}

// FormatHeadlines renders headline rows with the reduction percentages,
// one block per metric.
func FormatHeadlines(metric string, hs []Headline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — SELECT vs baselines (at largest size per sweep)\n", metric)
	for _, h := range hs {
		fmt.Fprintf(&b, "%-10s n=%-6g select=%.3f", h.Dataset, h.At, h.Select)
		for _, name := range []string{"symphony", "bayeux", "vitis", "omen"} {
			if r, ok := h.Reductions[name]; ok {
				fmt.Fprintf(&b, "  vs %s: %+.0f%%", name, r)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary runs the two headline sweeps (Fig. 2 hops, Fig. 3 relays) and
// formats the paper-style reduction claims at the caller's scale.
func Summary(opt Options) string {
	var b strings.Builder
	b.WriteString(FormatHeadlines("Fig. 2 hops per social lookup", Headlines(Fig2Hops(opt))))
	b.WriteByte('\n')
	b.WriteString(FormatHeadlines("Fig. 3 relay nodes per routing path", Headlines(Fig3Relays(opt))))
	return b.String()
}
