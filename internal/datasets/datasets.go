// Package datasets generates synthetic social graphs shaped like the four
// real-world data sets of the paper's Table II (Facebook, Twitter, Slashdot,
// GooglePlus).
//
// Substitution note (see DESIGN.md §2): the paper uses SNAP snapshots, which
// are unavailable in this offline environment. The evaluation depends on
// aggregate structure — degree distribution, average degree, triadic closure
// (common friends drive Eq. 2's social strength) — rather than on node
// identities, so each data set is replaced by a deterministic
// preferential-attachment generator with tunable triad closure (Holme–Kim
// style), parameterized to match the data set's average degree and a
// heavy-tailed degree distribution. Nodes are indexed in join order, which
// the growth model (internal/growth) relies on.
package datasets

import (
	"fmt"
	"math/rand"

	"selectps/internal/socialgraph"
)

// Spec describes one synthetic data set: the paper-reported statistics and
// the generator parameters that reproduce its shape.
type Spec struct {
	// Name of the data set as reported in Table II.
	Name string

	// Paper-reported statistics (Table II), kept for comparison output.
	PaperUsers       int
	PaperConnections int
	PaperAvgDegree   float64

	// EdgesPerJoin is the expected number of edges a newly joining user
	// creates (≈ half the target average degree). Fractional values are
	// realized stochastically.
	EdgesPerJoin float64

	// TriadProb is the probability that an attachment closes a triangle
	// (connects to a friend-of-friend) instead of following preferential
	// attachment. Higher values give more common friends and stronger
	// community structure.
	TriadProb float64

	// CommunitySize is the expected community size: each joining user
	// starts a fresh community with probability 1/CommunitySize and
	// otherwise joins the community of a preferentially sampled member
	// (communities grow rich-get-richer, like real OSN groups).
	CommunitySize float64

	// InCommunityProb is the probability that an attachment stays inside
	// the joiner's community. OSN graphs are strongly modular; this is what
	// gives friends common friends and gives SELECT communities to cluster.
	InCommunityProb float64

	// DefaultScale is the node count used when experiments run the data set
	// without an explicit size (a laptop-scale stand-in for PaperUsers).
	DefaultScale int
}

// The four data sets of Table II. EdgesPerJoin targets the paper's average
// degree; TriadProb is higher for the friendship graphs (Facebook) than for
// the follow/comment graphs (Twitter, Slashdot).
var (
	Facebook = Spec{
		Name: "facebook", PaperUsers: 63731, PaperConnections: 817090,
		PaperAvgDegree: 25.642, EdgesPerJoin: 12.82, TriadProb: 0.60,
		CommunitySize: 60, InCommunityProb: 0.80,
		DefaultScale: 4000,
	}
	Twitter = Spec{
		Name: "twitter", PaperUsers: 3990418, PaperConnections: 294865207,
		PaperAvgDegree: 73.89, EdgesPerJoin: 36.95, TriadProb: 0.35,
		CommunitySize: 150, InCommunityProb: 0.60,
		DefaultScale: 4000,
	}
	Slashdot = Spec{
		Name: "slashdot", PaperUsers: 82168, PaperConnections: 948463,
		PaperAvgDegree: 11.543, EdgesPerJoin: 5.77, TriadProb: 0.25,
		CommunitySize: 50, InCommunityProb: 0.65,
		DefaultScale: 4000,
	}
	GooglePlus = Spec{
		Name: "gplus", PaperUsers: 107614, PaperConnections: 13673453,
		PaperAvgDegree: 127, EdgesPerJoin: 63.5, TriadProb: 0.45,
		CommunitySize: 200, InCommunityProb: 0.70,
		DefaultScale: 4000,
	}
)

// All returns the four data sets in the order Table II lists them.
func All() []Spec { return []Spec{Facebook, Twitter, Slashdot, GooglePlus} }

// ByName returns the spec with the given Name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown data set %q", name)
}

// Generate builds a synthetic graph of n users shaped per the spec, using
// the given seed. Generation is deterministic in (spec, n, seed).
//
// The process models network growth: user i joins after users 0..i-1 and
// creates ~EdgesPerJoin connections. Each connection either closes a triad
// (with probability TriadProb, picking a random friend of an existing
// friend) or attaches preferentially by degree. Small n (below
// EdgesPerJoin) degrades gracefully to a near-clique.
func (s Spec) Generate(n int, seed int64) *socialgraph.Graph {
	if n <= 0 {
		return socialgraph.NewBuilder(0).Build()
	}
	rng := rand.New(rand.NewSource(seed))
	b := socialgraph.NewBuilder(n)

	// endpoints holds each edge endpoint twice (once per side): sampling a
	// uniform element is preferential attachment by degree. commEndpoints
	// does the same per community for in-community attachment.
	endpoints := make([]socialgraph.NodeID, 0, int(float64(n)*s.EdgesPerJoin*2)+16)
	// adj mirrors the builder so triad closure can walk friends before the
	// graph is built.
	adj := make([][]socialgraph.NodeID, n)

	comm := make([]int32, n) // community of each node
	var commEndpoints [][]socialgraph.NodeID

	addEdge := func(u, v socialgraph.NodeID) {
		b.AddEdge(u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		endpoints = append(endpoints, u, v)
		commEndpoints[comm[u]] = append(commEndpoints[comm[u]], u)
		commEndpoints[comm[v]] = append(commEndpoints[comm[v]], v)
	}
	hasEdge := func(u, v socialgraph.NodeID) bool {
		// adjacency lists stay short relative to n during generation of the
		// small side; linear scan over the smaller list.
		a := adj[u]
		if len(adj[v]) < len(a) {
			a, u, v = adj[v], v, u
		}
		for _, w := range a {
			if w == v {
				return true
			}
		}
		return false
	}

	// Seed clique so preferential attachment has endpoints to sample; the
	// seeds form community 0.
	seedSize := 3
	if n < seedSize {
		seedSize = n
	}
	commEndpoints = append(commEndpoints, nil)
	for i := 0; i < seedSize; i++ {
		comm[i] = 0
		for j := 0; j < i; j++ {
			addEdge(socialgraph.NodeID(i), socialgraph.NodeID(j))
		}
	}

	newCommunityProb := 0.0
	if s.CommunitySize > 0 {
		newCommunityProb = 1 / s.CommunitySize
	}
	commSize := []int{seedSize}
	// Cap community size at 4x the expectation, and also relative to the
	// network (n/8) so small generated networks still contain several
	// communities — the scaled-down analogue of the full data set's
	// community structure.
	maxCommSize := int(4 * s.CommunitySize)
	if rel := n / 8; rel < maxCommSize {
		maxCommSize = rel
	}
	if maxCommSize < 4 {
		maxCommSize = 4
	}
	for i := seedSize; i < n; i++ {
		u := socialgraph.NodeID(i)
		// Community assignment: fresh community with prob 1/CommunitySize,
		// otherwise adopt the community of a uniformly random existing user
		// (rich-get-richer in membership, capped so no community swallows
		// the graph).
		adopted := int32(-1)
		if rng.Float64() >= newCommunityProb {
			for try := 0; try < 4; try++ {
				c := comm[socialgraph.NodeID(rng.Intn(i))]
				if maxCommSize <= 0 || commSize[c] < maxCommSize {
					adopted = c
					break
				}
			}
		}
		if adopted < 0 {
			adopted = int32(len(commEndpoints))
			commEndpoints = append(commEndpoints, nil)
			commSize = append(commSize, 0)
		}
		comm[u] = adopted
		commSize[adopted]++
		m := int(s.EdgesPerJoin)
		if rng.Float64() < s.EdgesPerJoin-float64(m) {
			m++
		}
		if m > i {
			m = i
		}
		if m < 1 {
			m = 1
		}
		var last socialgraph.NodeID = -1
		for e := 0; e < m; e++ {
			var v socialgraph.NodeID = -1
			own := commEndpoints[comm[u]]
			if len(own) > 0 && rng.Float64() < s.InCommunityProb {
				// In-community attachment, degree-weighted.
				v = own[rng.Intn(len(own))]
			} else if last >= 0 && s.TriadProb > 0 && rng.Float64() < s.TriadProb {
				// Triad closure: random friend of the previous target.
				fs := adj[last]
				if len(fs) > 0 {
					v = fs[rng.Intn(len(fs))]
				}
			}
			if v < 0 {
				v = endpoints[rng.Intn(len(endpoints))]
			}
			if v == u || hasEdge(u, v) {
				// Retry with a fresh preferential draw; bounded attempts so
				// dense small graphs terminate.
				ok := false
				for try := 0; try < 8; try++ {
					v = endpoints[rng.Intn(len(endpoints))]
					if v != u && !hasEdge(u, v) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			addEdge(u, v)
			last = v
		}
	}
	return b.Build()
}

// Stats is one row of Table II computed from a generated graph.
type Stats struct {
	Name        string
	Users       int
	Connections int
	AvgDegree   float64
	MaxDegree   int
}

// Measure computes the Table II row for a graph.
func Measure(name string, g *socialgraph.Graph) Stats {
	return Stats{
		Name:        name,
		Users:       g.NumNodes(),
		Connections: g.NumEdges(),
		AvgDegree:   g.AverageDegree(),
		MaxDegree:   g.MaxDegree(),
	}
}

// String renders the row like Table II.
func (st Stats) String() string {
	return fmt.Sprintf("%-10s users=%-8d connections=%-10d avgDegree=%.3f maxDegree=%d",
		st.Name, st.Users, st.Connections, st.AvgDegree, st.MaxDegree)
}
