package datasets

import (
	"math/rand"
	"testing"
)

func TestByName(t *testing.T) {
	for _, want := range All() {
		got, err := ByName(want.Name)
		if err != nil || got.Name != want.Name {
			t.Errorf("ByName(%q) = %v, %v", want.Name, got.Name, err)
		}
	}
	if _, err := ByName("myspace"); err == nil {
		t.Error("ByName of unknown data set should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Facebook.Generate(500, 42)
	b := Facebook.Generate(500, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for u := 0; u < a.NumNodes(); u++ {
		na, nb := a.Neighbors(int32(u)), b.Neighbors(int32(u))
		if len(na) != len(nb) {
			t.Fatalf("node %d degree differs: %d vs %d", u, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
	c := Facebook.Generate(500, 43)
	if c.NumEdges() == a.NumEdges() && sameAdj(a, c) {
		t.Error("different seeds produced identical graphs")
	}
}

func sameAdj(a, b interface {
	NumNodes() int
	Neighbors(int32) []int32
}) bool {
	for u := 0; u < a.NumNodes(); u++ {
		na, nb := a.Neighbors(int32(u)), b.Neighbors(int32(u))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestAverageDegreeTargets(t *testing.T) {
	// At a few thousand nodes each generator should land within ~20% of the
	// paper's average degree (finite-size effects shrink it slightly).
	for _, spec := range All() {
		n := 3000
		g := spec.Generate(n, 1)
		got := g.AverageDegree()
		lo, hi := spec.PaperAvgDegree*0.75, spec.PaperAvgDegree*1.15
		if got < lo || got > hi {
			t.Errorf("%s avg degree = %.2f, want within [%.2f, %.2f] (paper %.2f)",
				spec.Name, got, lo, hi, spec.PaperAvgDegree)
		}
	}
}

func TestConnectedSingleComponent(t *testing.T) {
	// Growth process attaches every new node to an existing one, so the
	// graph must be a single connected component.
	for _, spec := range All() {
		g := spec.Generate(800, 7)
		_, count := g.ConnectedComponents()
		if count != 1 {
			t.Errorf("%s: %d components, want 1", spec.Name, count)
		}
	}
}

func TestHeavyTail(t *testing.T) {
	// Preferential attachment should produce a max degree well above the
	// average (heavy-tailed distribution).
	g := Slashdot.Generate(2000, 3)
	if float64(g.MaxDegree()) < 4*g.AverageDegree() {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f",
			g.MaxDegree(), g.AverageDegree())
	}
}

func TestTriadClosureRaisesClustering(t *testing.T) {
	highTriad := Spec{Name: "hi", EdgesPerJoin: 6, TriadProb: 0.8}
	noTriad := Spec{Name: "lo", EdgesPerJoin: 6, TriadProb: 0}
	rng := rand.New(rand.NewSource(9))
	hi := highTriad.Generate(1500, 5).AverageClustering(300, rng)
	lo := noTriad.Generate(1500, 5).AverageClustering(300, rng)
	if hi <= lo {
		t.Errorf("triad closure did not raise clustering: hi=%.3f lo=%.3f", hi, lo)
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if g := Facebook.Generate(0, 1); g.NumNodes() != 0 {
		t.Error("Generate(0) should be empty")
	}
	if g := Facebook.Generate(-5, 1); g.NumNodes() != 0 {
		t.Error("Generate(-5) should be empty")
	}
	g := Facebook.Generate(1, 1)
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Errorf("Generate(1): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	g = Facebook.Generate(2, 1)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("Generate(2): %d nodes %d edges, want 2 nodes 1 edge",
			g.NumNodes(), g.NumEdges())
	}
	// Tiny graphs must stay simple (no dup/self edges) even when
	// EdgesPerJoin exceeds n.
	g = GooglePlus.Generate(10, 1)
	if g.NumEdges() > 45 {
		t.Errorf("10-node graph has %d edges > C(10,2)", g.NumEdges())
	}
}

func TestMeasure(t *testing.T) {
	g := Facebook.Generate(200, 2)
	st := Measure("facebook", g)
	if st.Users != 200 || st.Connections != g.NumEdges() {
		t.Errorf("Measure = %+v", st)
	}
	if st.String() == "" {
		t.Error("empty Stats.String")
	}
}

func TestNoSelfOrDuplicateEdges(t *testing.T) {
	// Builder dedupes, so NumEdges must equal the count of distinct pairs.
	g := Twitter.Generate(600, 11)
	seen := make(map[[2]int32]bool)
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if int32(u) == v {
				t.Fatalf("self edge at %d", u)
			}
			a, b := int32(u), v
			if a > b {
				a, b = b, a
			}
			seen[[2]int32{a, b}] = true
		}
	}
	if len(seen) != g.NumEdges() {
		t.Errorf("distinct pairs %d != NumEdges %d", len(seen), g.NumEdges())
	}
}
