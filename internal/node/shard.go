package node

import (
	"runtime"
	"strconv"
	"time"

	"selectps/internal/inbox"
	"selectps/internal/obs"
	"selectps/internal/sched"
	"selectps/internal/transport"
)

// This file is the sharded event-loop runtime (DESIGN.md §11). The old
// runtime gave every node its own goroutine, three time.Tickers and a
// retry time.Timer — 5n runtime objects that drown the Go scheduler a
// couple hundred live peers in. Here the cluster runs S shard goroutines
// (S ≈ GOMAXPROCS): each shard owns one hashed timer wheel holding every
// deadline of every node pinned to it, and one shared mailbox all those
// nodes' transport inboxes multiplex into, drained by a single select.
//
// Shard affinity is the concurrency invariant that replaces per-node
// goroutine confinement: a node's messages are handled and its timers
// fired only on its shard's goroutine, so protocol handlers stay
// single-threaded per node exactly as before. (Node state is still
// mutex-guarded — public API like Publish runs on caller goroutines —
// so affinity is a scheduling property, not the only safety net.)

// Timer-wheel entry ids encode (peer, kind) in one uint64: pid<<3|kind.
// tkMonitor is shard-owned (the "pid" is the shard index) and never
// collides with node entries because nodes only use kinds 0–3 and 5.
const (
	tkHeartbeat = iota
	tkGossip
	tkMaintain
	tkRepair
	tkMonitor
	tkInbox
	tkAckFlush
)

func timerID(pid int32, kind uint64) uint64 { return uint64(uint32(pid))<<3 | kind }

// monitorEvery is the cadence of the per-shard runtime-scale gauges.
const monitorEvery = time.Second

// drainMax bounds how many envelopes one wakeup handles before the loop
// re-enters its select — a flooded mailbox must not starve the stop and
// kick channels.
const drainMax = 256

// ingestCap bounds how many envelopes sit in the shard's internal
// per-node queues. Past it the loop stops pulling from the mailbox, the
// mailbox fills, and the transport sheds load by dropping (counted) —
// the same backpressure point the mailbox alone provided.
const ingestCap = 8192

// shedBacklog is the queued-envelope level past which a shard skips the
// bodies of its periodic timer fires (see fire): ~10ms of handler work,
// i.e. "this loop is saturated", well before ingestCap declares "this
// loop is drowning".
const shedBacklog = 256

// splitmix64 is the node→shard hash (and the phase-stagger stream):
// cheap, stateless, and well-mixed even for the sequential peer ids the
// cluster assigns.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func shardOf(pid int32, shards int) int {
	return int(splitmix64(uint64(uint32(pid))) % uint64(shards))
}

// shard is one event loop: a timer wheel, a shared mailbox, and the
// goroutine that drains both.
type shard struct {
	idx   int
	c     *Cluster
	wheel *sched.Wheel
	inbox chan transport.Envelope
	// binbox is the bulk-ingress mailbox (DESIGN.md §15): transports
	// implementing BatchInboxMux deliver pooled envelope slices here, so
	// a flood burst costs one channel op instead of one per frame.
	binbox chan *[]transport.Envelope
	// kick wakes the loop to re-arm its sleep after another goroutine
	// scheduled a possibly-earlier deadline (Publish, requestJoin).
	kick chan struct{}
	obs  *obs.Metrics
	// ibx is this shard's durable-tier journal store (nil when the inbox
	// tier is off): every replica pinned to this shard persists its
	// deposits here, keyed by replica id (inbox.go, DESIGN.md §12).
	ibx *inbox.Store

	// Fair queueing. The old runtime's per-node goroutines gave every
	// node processor sharing: one node's message backlog never delayed a
	// shard-mate's acks or pongs. A single FIFO mailbox loses that — a
	// gossip burst aimed at one node adds its full sojourn to every
	// other node's latency — so the loop drains the mailbox into
	// per-node queues and serves them round-robin, one message per turn.
	// queues is indexed by peer id (only this shard's nodes ever
	// populate theirs); active is the round-robin ring of node ids with
	// pending messages; queued is the total across queues, capped at
	// ingestCap.
	queues []nodeq
	active idring
	queued int
}

// nodeq is one node's pending-message stack: newest first (adaptive
// LIFO). Under backlog, serving the freshest message keeps live causal
// chains — a publish and the ack racing its retry timer — at near-zero
// sojourn no matter how deep the queue is, which is what breaks the
// congestion feedback loop (late acks → spurious retries → more load →
// later acks) that FIFO service falls into once the loop saturates.
// When the queue is shallow LIFO and FIFO are indistinguishable. The
// reordering this introduces under backlog is already part of the
// network model: handlers tolerate duplication and reordering (faultnet
// injects both), and stale backlog is exactly the traffic whose
// ordering has stopped mattering.
type nodeq struct {
	buf    []transport.Envelope
	onRing bool
}

func (q *nodeq) push(e transport.Envelope) { q.buf = append(q.buf, e) }

func (q *nodeq) pop() transport.Envelope {
	i := len(q.buf) - 1
	e := q.buf[i]
	q.buf[i] = transport.Envelope{}
	q.buf = q.buf[:i]
	return e
}

func (q *nodeq) len() int { return len(q.buf) }

// idring is the round-robin ring of node ids awaiting service.
type idring struct {
	buf  []int32
	head int
}

func (r *idring) push(id int32) { r.buf = append(r.buf, id) }

func (r *idring) pop() (int32, bool) {
	if r.head == len(r.buf) {
		return 0, false
	}
	id := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	}
	return id, true
}

func newShard(idx int, c *Cluster, opts *Options) *shard {
	return &shard{
		idx:    idx,
		c:      c,
		wheel:  sched.NewWheel(time.Millisecond, 512, time.Now()),
		inbox:  make(chan transport.Envelope, opts.ShardMailbox),
		binbox: make(chan *[]transport.Envelope, opts.ShardMailbox),
		kick:   make(chan struct{}, 1),
		obs:    opts.Obs,
		queues: make([]nodeq, len(c.Nodes)),
	}
}

// pull moves every immediately-available mailbox envelope into the
// per-node queues, stopping at ingestCap so the mailbox (and behind it
// the transport's counted drops) stays the backpressure point.
func (s *shard) pull() {
	for s.queued < ingestCap {
		select {
		case env, ok := <-s.inbox:
			if !ok {
				return
			}
			s.enqueue(env)
		case nb, ok := <-s.binbox:
			if !ok {
				return
			}
			s.enqueueBatch(nb)
		default:
			return
		}
	}
}

// enqueueBatch drains one bulk-ingress slice into the per-node queues —
// a whole burst crosses into the fair-queueing structures in one pass —
// and recycles the slice. ingestCap may overshoot by one batch; the next
// pull iteration stops, which is the same backpressure point.
func (s *shard) enqueueBatch(nb *[]transport.Envelope) {
	for _, env := range *nb {
		s.enqueue(env)
	}
	transport.PutEnvelopeBatch(nb)
}

func (s *shard) enqueue(env transport.Envelope) {
	if env.Msg == nil || env.To < 0 || int(env.To) >= len(s.queues) {
		return
	}
	q := &s.queues[env.To]
	q.push(env)
	s.queued++
	if !q.onRing {
		q.onRing = true
		s.active.push(env.To)
	}
}

// serve handles one message from the next node in the round-robin ring.
func (s *shard) serve() {
	id, ok := s.active.pop()
	if !ok {
		return
	}
	q := &s.queues[id]
	env := q.pop()
	s.queued--
	if q.len() > 0 {
		s.active.push(id)
	} else {
		q.onRing = false
	}
	s.deliver(env)
}

// scheduleNode arms the node's periodic wheel entries. The first fire of
// each kind is staggered deterministically within one interval so
// thousands of nodes sharing an interval don't all fire on the same tick
// (the thundering herd the per-node Tickers created at Start).
func (s *shard) scheduleNode(n *Node, start time.Time) {
	pid := int32(n.id)
	arm := func(kind uint64, every time.Duration) {
		if every <= 0 {
			return
		}
		off := time.Duration(splitmix64(uint64(uint32(pid))<<3|kind) % uint64(every))
		s.wheel.Schedule(timerID(pid, kind), start.Add(off))
	}
	arm(tkHeartbeat, n.cfg.HeartbeatEvery)
	arm(tkGossip, n.cfg.GossipEvery)
	arm(tkMaintain, n.cfg.MaintainEvery)
}

// scheduleRepair upserts (or cancels) the node's repair deadline and
// kicks the loop so its sleep shortens. Safe from any goroutine.
func (s *shard) scheduleRepair(n *Node) {
	id := timerID(int32(n.id), tkRepair)
	if at, ok := n.nextRepairAt(); ok {
		s.wheel.Schedule(id, at)
	} else {
		s.wheel.Cancel(id)
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// scheduleAckFlush arms the node's one-shot ack-flush deadline and kicks
// the loop so its sleep shortens. Safe from any goroutine. The wheel's
// Schedule is an upsert, so callers guard against re-arming while a
// flush is pending (ackFlushArmed) — re-scheduling would push the
// deadline back and starve the buffer under sustained traffic.
func (s *shard) scheduleAckFlush(n *Node, at time.Time) {
	s.wheel.Schedule(timerID(int32(n.id), tkAckFlush), at)
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// scheduleInbox upserts (or cancels) the node's durable-tier deadline —
// lease expiries and replay re-sends (inbox.go). Same contract as
// scheduleRepair: safe from any goroutine.
func (s *shard) scheduleInbox(n *Node) {
	id := timerID(int32(n.id), tkInbox)
	if at, ok := n.nextInboxAt(); ok {
		s.wheel.Schedule(id, at)
	} else {
		s.wheel.Cancel(id)
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// run is the shard loop. One reused timer sleeps until the wheel's
// earliest deadline; kicks wake it early when another goroutine
// scheduled a sooner one. The wheel is touched ONLY when a deadline is
// actually due or a kick arrived — mailbox traffic costs a channel
// receive, a time.Now comparison, and the handler, which is what keeps
// a flooded shard from paying an O(slots) scan per message.
func (s *shard) run() {
	defer s.c.wg.Done()
	if s.obs != nil {
		s.wheel.Schedule(timerID(int32(s.idx), tkMonitor), time.Now().Add(monitorEvery))
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	var armed time.Time // deadline the timer is currently set for; zero = parked
	rearm := func() {
		now := time.Now()
		for _, f := range s.wheel.Advance(now) {
			if lag := now.Sub(f.At); lag > 0 {
				s.obs.ObserveLoopLagMS(float64(lag) / float64(time.Millisecond))
			}
			s.fire(f, now)
		}
		next, ok := s.wheel.Next()
		if !ok {
			next = time.Time{}
		}
		if next.Equal(armed) {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if ok {
			// Entries already due (firing took long enough for more to
			// lapse) re-enter via an immediate timer instead of looping
			// here, so a backlogged shard still interleaves its mailbox.
			d := time.Until(next)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
		} else {
			timer.Reset(time.Hour)
		}
		armed = next
	}
	// due services timers mid-drain. A saturated mailbox must not starve
	// due deadlines: the main select picks among ready cases at random,
	// so under flood the timer would wait O(bursts). Instead every
	// handled envelope pays one time.Now comparison against the cached
	// deadline and one channel-length peek at kick — both far cheaper
	// than a select — bounding timer and re-arm service latency to ONE
	// handler, not a whole burst (repair deadlines are latency-sensitive;
	// a 256-message burst of slow handlers would blow them; kicks matter
	// too because handlers themselves schedule new deadlines, e.g. an ack
	// re-arms the publisher's retry).
	due := func() {
		if len(s.kick) > 0 {
			select {
			case <-s.kick:
			default:
			}
			rearm()
			return
		}
		if !armed.IsZero() && !time.Now().Before(armed) {
			rearm() // rearm stops and drains the expired timer itself
		}
	}
	rearm()
	for {
		// Pending queued work: serve it round-robin without blocking,
		// re-checking stop, fresh arrivals, and due deadlines between
		// every handled message (drainMax per pass keeps the stop check
		// frequent under sustained load).
		if s.queued > 0 {
			select {
			case <-s.c.stop:
				return
			default:
			}
			for i := 0; i < drainMax && s.queued > 0; i++ {
				s.pull()
				due()
				s.serve()
			}
			continue
		}
		select {
		case <-s.c.stop:
			return
		case env, ok := <-s.inbox:
			if !ok {
				return
			}
			s.enqueue(env)
		case nb, ok := <-s.binbox:
			if !ok {
				return
			}
			s.enqueueBatch(nb)
		case <-s.kick:
			rearm()
		case <-timer.C:
			armed = time.Time{} // consumed: force the re-arm comparison
			rearm()
		}
	}
}

// deliver dispatches one envelope to its owning node's handler.
func (s *shard) deliver(env transport.Envelope) {
	if env.Msg == nil || env.To < 0 || int(env.To) >= len(s.c.Nodes) {
		return
	}
	n := s.c.Nodes[env.To]
	if n.paused.Load() {
		return // unresponsive peer: drop everything
	}
	if s.obs != nil && !env.At.IsZero() {
		s.obs.ObserveSojournMS(float64(time.Since(env.At)) / float64(time.Millisecond))
	}
	n.handle(env.Msg)
}

// fire runs one due wheel entry. Periodic kinds skip their body while the
// node is paused but keep their cadence — exactly what the per-node
// Tickers did — so Resume needs no re-arming. The repair kind re-arms
// from the engine's own earliest deadline (repair.go).
func (s *shard) fire(f sched.Fired, now time.Time) {
	kind := f.ID & 7
	if kind == tkMonitor {
		s.monitorTick()
		s.wheel.Schedule(f.ID, now.Add(monitorEvery))
		return
	}
	pid := int32(uint32(f.ID >> 3))
	n := s.c.Nodes[pid]
	periodic := func(every time.Duration) {
		s.wheel.Schedule(f.ID, nextPeriodic(f.At, now, every))
	}
	// Congestion governor: a backlogged shard skips the BODY of periodic
	// fires (cadence continues) so control traffic yields to draining the
	// data queue. Timer fires preempt queue service in this loop — due()
	// runs before every served envelope — so without shedding, a
	// saturated shard keeps generating heartbeat/gossip load at full
	// cadence while acks rot in the backlog, and the spurious retries
	// those late acks trigger push the loop further over capacity
	// (measured as full congestion collapse: ~500ms sojourn, mass
	// mailbox drops). The old per-node runtime shed implicitly — a busy
	// node's ticker dropped ticks while its goroutine drained the inbox —
	// and this reproduces that pressure valve explicitly. Skips are
	// counted (timer_shed): redundant periodic traffic degrades first,
	// never silently.
	// Repair fires are exempt: they are the reliability path, already
	// bounded by the per-publication retry budget and backoff.
	shed := s.queued >= shedBacklog
	body := func(run func()) {
		if shed {
			s.obs.Inc(obs.CTimerShed)
			return
		}
		if !n.paused.Load() {
			run()
		}
	}
	switch kind {
	case tkHeartbeat:
		body(n.sendHeartbeats)
		periodic(n.cfg.HeartbeatEvery)
	case tkGossip:
		body(n.sendExchange)
		periodic(n.cfg.GossipEvery)
	case tkMaintain:
		body(n.maintainTick)
		periodic(n.cfg.MaintainEvery)
	case tkRepair:
		n.repairTick()
		if at, ok := n.nextRepairAt(); ok {
			s.wheel.Schedule(f.ID, at)
		}
	case tkInbox:
		// Shed-exempt like repair: the durable tier IS the reliability
		// path for offline subscribers, and its traffic is bounded by the
		// one-outstanding-replay-per-target and lease contracts.
		n.inboxTick()
		if at, ok := n.nextInboxAt(); ok {
			s.wheel.Schedule(f.ID, at)
		}
	case tkAckFlush:
		// Shed-exempt: acks ARE the reliability feedback — delaying a
		// flush under backlog turns into spurious retries, the exact load
		// spiral shedding exists to break. One-shot: queueAck re-arms on
		// the next buffered ack.
		n.flushAcks()
	}
}

// nextPeriodic computes a periodic entry's next deadline, skipping whole
// periods arithmetically when the shard fell behind. Re-anchoring at
// now+every (the old behavior) would collapse the splitmix64 phase
// stagger scheduleNode spread the fleet with: after any shard stall,
// every entry that lapsed during it would re-synchronize into the same
// tick and fire as one thundering herd forever after. Preserving
// at+k*every keeps each (node, kind) on its own phase through stalls.
func nextPeriodic(at, now time.Time, every time.Duration) time.Time {
	next := at.Add(every)
	if !next.After(now) {
		next = at.Add(every * (now.Sub(at)/every + 1))
	}
	return next
}

// monitorTick publishes the runtime-scale gauges: wheel entries per
// shard, and (from shard 0) the live goroutine count the budget gate
// watches.
func (s *shard) monitorTick() {
	s.obs.SetGauge("wheel_entries_shard_"+strconv.Itoa(s.idx), int64(s.wheel.Len()))
	if s.ibx != nil {
		s.obs.SetGauge("inbox_depth_shard_"+strconv.Itoa(s.idx), int64(s.ibx.Depth()))
	}
	if s.idx == 0 {
		s.obs.SetGauge("goroutines", int64(runtime.NumGoroutine()))
		s.obs.SetGauge("shards", int64(len(s.c.shards)))
	}
}
