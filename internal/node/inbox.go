package node

import (
	"time"

	"selectps/internal/inbox"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/selectcore"
	"selectps/internal/wire"
)

// This file is the durable delivery tier (DESIGN.md §12): the protocol
// glue between the repair engine, the selectcore placement/lease rules,
// and the per-shard inbox journals (internal/inbox).
//
//   - publisher role: when repair would dead-letter a publication for an
//     offline subscriber, the copy is deposited on the subscriber's
//     replica set instead (InboxDeposit, retried on the repair wheel
//     until one replica acks persistence);
//   - replica role: deposits are journaled per shard and replayed to the
//     subscriber highest-priority-first, either immediately (the target
//     is reachable) or when the subscriber claims its inbox;
//   - subscriber role: on every completed (re)join the node claims its
//     replicas one at a time in seeded-deterministic lease order; a
//     replica that makes no progress within the lease hands off to the
//     next. Replayed duplicates are absorbed by the DedupWindow, so the
//     sequential lease plus dedup yields at-least-once with no double
//     app delivery.

// maxReplayAttempts bounds how often a replica re-sends one unacked
// replay before parking the queue; a later claim re-activates it.
const maxReplayAttempts = 8

// depSub is the publisher-side deposit state for one offline subscriber
// of one publication: retried alongside direct repair until any replica
// acks persistence, then the subscriber counts as durably handled.
type depSub struct {
	attempt int
	nextAt  time.Time
	acked   bool
}

// replayState is the replica-side drain machinery for one subscriber:
// at most one replay copy is outstanding at a time (the lease contract
// is sequential), resent on the inbox wheel entry until acked.
type replayState struct {
	leaseSeq    uint32 // claim-cycle correlation; 0 = self-initiated replay
	outstanding inbox.Record
	hasOut      bool
	attempt     int
	nextAt      time.Time
}

// claimState is the subscriber-side lease cycle: the seeded-deterministic
// order in which this node's replicas are asked to drain, the current
// holder index, and the lease deadline that forces hand-off.
type claimState struct {
	order    []overlay.PeerID
	idx      int
	seq      uint32 // correlates InboxLease replies to this cycle
	deadline time.Time
	got      int     // replays received this cycle; >0 triggers another pass
	prevPos  ring.ID // previous incarnation's position; claims cover both
}

// inboxOn reports whether this node participates in the durable tier.
// Like repair, it needs the retry scheduler (RetryBase > 0).
func (n *Node) inboxOn() bool {
	return n.cfg.Inbox && n.sh != nil && n.sh.ibx != nil && n.repairEnabled()
}

// kickInbox re-arms the shard wheel's inbox entry after a deadline
// changed. Called outside n.mu.
func (n *Node) kickInbox() {
	if n.sh != nil {
		n.sh.scheduleInbox(n)
	}
}

// nextInboxAt returns the earliest pending lease/replay deadline, or
// false when the tier is idle for this node. A paused node dozes at
// ≥50ms like the repair entry.
func (n *Node) nextInboxAt() (time.Time, bool) {
	n.mu.Lock()
	var earliest time.Time
	upd := func(t time.Time) {
		if !t.IsZero() && (earliest.IsZero() || t.Before(earliest)) {
			earliest = t
		}
	}
	if n.claim != nil {
		upd(n.claim.deadline)
	}
	for _, rs := range n.replay {
		if rs.hasOut {
			upd(rs.nextAt)
		}
	}
	n.mu.Unlock()
	if earliest.IsZero() {
		return time.Time{}, false
	}
	if n.paused.Load() {
		if floor := time.Now().Add(50 * time.Millisecond); earliest.Before(floor) {
			earliest = floor
		}
	}
	return earliest, true
}

// inboxTick is the inbox wheel body: subscriber-side lease expiry
// hand-off and replica-side replay re-sends.
func (n *Node) inboxTick() {
	if n.paused.Load() || !n.inboxOn() {
		return
	}
	now := time.Now()
	var out []outMsg
	n.mu.Lock()
	if cl := n.claim; cl != nil && !cl.deadline.After(now) {
		// The lease holder made no progress within the lease: hand the
		// claim to the next replica in the deterministic order.
		n.cfg.Obs.Inc(obs.CInboxLeaseExpire)
		n.cfg.Obs.TraceEvent("inbox_lease_expire", int32(n.id), uint32(cl.order[cl.idx]))
		out = n.advanceClaimLocked(now, out)
	}
	for target, rs := range n.replay {
		if !rs.hasOut || rs.nextAt.After(now) {
			continue
		}
		if rs.attempt >= maxReplayAttempts {
			// No ack after the full resend schedule: the subscriber went
			// away again. Park the queue; the journal keeps the records
			// and the next claim re-activates the drain.
			delete(n.replay, target)
			continue
		}
		rs.attempt++
		rs.nextAt = now.Add(n.inboxRetryDelay(rs.attempt))
		n.cfg.Obs.Inc(obs.CInboxReplay)
		out = append(out, outMsg{int32(target), n.replayMsg(target, &rs.outstanding)})
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
}

// inboxRetryDelay is the replay re-send backoff: plain capped doubling —
// replay is point-to-point, so the jittered spread the repair engine
// needs against herds buys nothing here.
func (n *Node) inboxRetryDelay(attempt int) time.Duration {
	d := n.cfg.InboxRetry
	for i := 0; i < attempt && i < 3; i++ {
		d *= 2
	}
	return d
}

// inboxReplicaSet computes peer p's replica set from the converged ring
// positions: the first r live clockwise successors (selectcore rule).
func (n *Node) inboxReplicaSet(p overlay.PeerID, r int) []overlay.PeerID {
	return selectcore.InboxReplicas(p, n.dir.position(p), n.dir.ringMembers(), nil, r)
}

// InboxReplicas returns this node's current inbox replica set — where
// its offline copies would be deposited right now (ops/tests surface).
func (n *Node) InboxReplicas() []overlay.PeerID {
	return n.inboxReplicaSet(n.id, n.cfg.InboxReplicas)
}

// ---- publisher role: repair → deposit hand-off ----------------------

// startDepositLocked hands subscriber s of publication seq to the
// durable tier: the first deposit round goes out now, retries ride the
// repair wheel. Returns the staged messages.
func (n *Node) startDepositLocked(seq uint32, st *pubState, s overlay.PeerID, now time.Time, out []outMsg) []outMsg {
	if st.dep == nil {
		st.dep = make(map[overlay.PeerID]*depSub)
	}
	ds := &depSub{}
	st.dep[s] = ds
	n.cfg.Obs.Inc(obs.CInboxDeposited)
	n.cfg.Obs.TraceEvent("inbox_handoff", int32(n.id), uint32(s))
	return n.sendDepositLocked(seq, st, s, ds, now, out)
}

// sendDepositLocked stages one deposit round for subscriber s: a copy to
// every replica in s's current set (recomputed per round — membership
// may have shifted since the last one). The publisher needs only one
// ack; R copies are fault tolerance for the replicas themselves.
func (n *Node) sendDepositLocked(seq uint32, st *pubState, s overlay.PeerID, ds *depSub, now time.Time, out []outMsg) []outMsg {
	ds.nextAt = now.Add(n.backoff().Delay(st.bseed^uint64(uint32(s)), ds.attempt))
	// Deposits carry the publication's origin identity: for a topic
	// hand-off the depositing rendezvous is not the origin publisher, and
	// replay dedup must key by the origin id.
	pub, pseq := int32(n.id), seq
	var topic []byte
	if st.topic != "" {
		pub, pseq = st.origin.Publisher, st.origin.Seq
		topic = []byte(st.topic)
	}
	for _, rep := range n.inboxReplicaSet(s, n.cfg.InboxReplicas) {
		out = append(out, outMsg{int32(rep), &wire.Message{
			Kind: wire.KindInboxDeposit, From: int32(n.id), To: int32(rep),
			Seq: pseq, Publisher: pub, Target: int32(s),
			Priority: st.pri, PayloadSize: st.size, Payload: st.payload,
			Topic: topic,
		}})
	}
	return out
}

// settledLocked reports whether subscriber s of publication st needs no
// further work: directly acked, or durably deposited.
func settledLocked(acked map[int32]bool, st *pubState, s overlay.PeerID) bool {
	if acked[int32(s)] {
		return true
	}
	ds := st.dep[s]
	return ds != nil && ds.acked
}

// handleInboxDepositAck consumes a replica's persistence confirmation:
// the subscriber counts as durably handled and the publication may
// resolve.
func (n *Node) handleInboxDepositAck(m *wire.Message) {
	if overlay.PeerID(m.To) != n.id || !n.inboxOn() {
		return
	}
	n.cfg.Obs.Inc(obs.CInboxDepositAck)
	n.mu.Lock()
	n.consumeDepositAckLocked(m.Publisher, m.Seq, m.Target)
	n.mu.Unlock()
	n.kickRetry()
}

// ---- replica role: persist + replay ---------------------------------

// handleInboxDeposit persists one deposited copy in the shard journal
// and acks. A reachable target gets its replay started right away — the
// durable tier doubles as a relay of last resort when the subscriber is
// up but the publisher cannot reach it.
func (n *Node) handleInboxDeposit(m *wire.Message) {
	if !n.inboxOn() {
		return
	}
	fresh, err := n.sh.ibx.Deposit(inbox.Record{
		Replica: int32(n.id), Target: m.Target, Publisher: m.Publisher,
		Seq: m.Seq, Priority: m.Priority, PayloadSize: m.PayloadSize, Payload: m.Payload,
		Topic: m.Topic,
	})
	if err != nil {
		// Journal failure: no ack, the publisher keeps retrying (possibly
		// onto healthier replicas).
		n.cfg.Obs.TraceEvent("inbox_journal_err", int32(n.id), m.Seq)
		return
	}
	if !fresh {
		n.cfg.Obs.Inc(obs.CInboxDepositDup)
	}
	target := overlay.PeerID(m.Target)
	var out []outMsg
	if n.ackBatch {
		n.queueAck(wire.AckEntry{
			Kind: wire.KindInboxDepositAck, From: int32(n.id), Dest: m.From,
			Pub: m.Publisher, Seq: m.Seq, Target: m.Target,
		}, true)
	} else {
		out = append(out, outMsg{m.From, &wire.Message{
			Kind: wire.KindInboxDepositAck, From: int32(n.id), To: m.From,
			Seq: m.Seq, Publisher: m.Publisher, Target: m.Target,
		}})
	}
	n.mu.Lock()
	if n.dir.isMember(target) {
		n.activateReplayLocked(target, 0)
		out = n.pumpReplayLocked(target, time.Now(), out)
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	n.kickInbox()
}

// handleInboxClaim answers a subscriber's drain request: report how many
// deposits this replica holds and start replaying if any.
func (n *Node) handleInboxClaim(m *wire.Message) {
	if !n.inboxOn() {
		return
	}
	n.cfg.Obs.Inc(obs.CInboxClaim)
	target := overlay.PeerID(m.From)
	pending := n.sh.ibx.PendingFor(int32(n.id), int32(target))
	var out []outMsg
	out = append(out, outMsg{m.From, &wire.Message{
		Kind: wire.KindInboxLease, From: int32(n.id), To: m.From,
		Seq: m.Seq, Target: m.From, NMutual: int32(pending),
	}})
	if pending > 0 {
		n.cfg.Obs.Inc(obs.CInboxLeaseGrant)
		n.mu.Lock()
		n.activateReplayLocked(target, m.Seq)
		out = n.pumpReplayLocked(target, time.Now(), out)
		n.mu.Unlock()
	}
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	n.kickInbox()
}

// activateReplayLocked opens (or re-tags) the drain state for target.
func (n *Node) activateReplayLocked(target overlay.PeerID, leaseSeq uint32) {
	if n.replay == nil {
		n.replay = make(map[overlay.PeerID]*replayState)
	}
	rs := n.replay[target]
	if rs == nil {
		rs = &replayState{}
		n.replay[target] = rs
	}
	if leaseSeq != 0 {
		rs.leaseSeq = leaseSeq
	}
	// A fresh claim restarts a parked resend schedule.
	rs.attempt = 0
}

// pumpReplayLocked sends the next pending record for target if nothing
// is outstanding. A drained queue under an active lease emits the final
// "0 pending" lease notice that releases the subscriber to the next
// replica.
func (n *Node) pumpReplayLocked(target overlay.PeerID, now time.Time, out []outMsg) []outMsg {
	rs := n.replay[target]
	if rs == nil || rs.hasOut {
		return out
	}
	rec, ok := n.sh.ibx.Next(int32(n.id), int32(target))
	if !ok {
		if rs.leaseSeq != 0 {
			out = append(out, outMsg{int32(target), &wire.Message{
				Kind: wire.KindInboxLease, From: int32(n.id), To: int32(target),
				Seq: rs.leaseSeq, Target: int32(target), NMutual: 0,
			}})
		}
		delete(n.replay, target)
		return out
	}
	rs.outstanding = rec
	rs.hasOut = true
	rs.attempt = 0
	rs.nextAt = now.Add(n.cfg.InboxRetry)
	n.cfg.Obs.Inc(obs.CInboxReplay)
	return append(out, outMsg{int32(target), n.replayMsg(target, &rec)})
}

func (n *Node) replayMsg(target overlay.PeerID, rec *inbox.Record) *wire.Message {
	return &wire.Message{
		Kind: wire.KindInboxReplay, From: int32(n.id), To: int32(target),
		Seq: rec.Seq, Publisher: rec.Publisher, Target: int32(target),
		Priority: rec.Priority, PayloadSize: rec.PayloadSize, Payload: rec.Payload,
		Topic: rec.Topic, HopCount: 1,
	}
}

// handleInboxReplayAck clears the acked record from the journal and
// pumps the next one.
func (n *Node) handleInboxReplayAck(m *wire.Message) {
	if !n.inboxOn() {
		return
	}
	existed, err := n.sh.ibx.Ack(int32(n.id), m.Target, m.Publisher, m.Seq)
	if err != nil {
		n.cfg.Obs.TraceEvent("inbox_journal_err", int32(n.id), m.Seq)
	}
	if existed {
		n.cfg.Obs.Inc(obs.CInboxReplayed)
	}
	target := overlay.PeerID(m.Target)
	var out []outMsg
	n.mu.Lock()
	if rs := n.replay[target]; rs != nil && rs.hasOut &&
		rs.outstanding.Publisher == m.Publisher && rs.outstanding.Seq == m.Seq {
		rs.hasOut = false
		out = n.pumpReplayLocked(target, time.Now(), out)
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	n.kickInbox()
}

// inboxSweep is the replica-side safety net, run on the maintain tick:
// any target this replica holds deposits for that is currently a member
// but has no active drain gets its replay (re)started. It catches the
// cases the claim protocol cannot — a claim that never reached this
// replica (membership drifted further than the 2R candidate window), a
// drain parked by maxReplayAttempts while the target flapped, or a
// replica that was itself offline when the subscriber claimed.
func (n *Node) inboxSweep() {
	if !n.inboxOn() {
		return
	}
	now := time.Now()
	var out []outMsg
	n.mu.Lock()
	for _, t := range n.sh.ibx.PendingTargets(int32(n.id)) {
		target := overlay.PeerID(t)
		if n.replay[target] != nil || !n.dir.isMember(target) {
			continue
		}
		n.activateReplayLocked(target, 0)
		out = n.pumpReplayLocked(target, now, out)
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	if len(out) > 0 {
		n.kickInbox()
	}
}

// ---- subscriber role: claim cycle -----------------------------------

// startInboxClaimLocked opens a claim cycle after a completed (re)join.
// Candidates are the first 2R live successors of the node's CURRENT
// position unioned with the first 2R of prevPos, its position in the
// previous incarnation: the join protocol assigns a fresh identifier on
// every (re)join, but every deposit made while the node was offline
// landed clockwise of the old one — that is where the directory said the
// subscriber lived. 2R-wide (not R) because membership may also have
// drifted between deposit time and claim time, pushing a holder out of
// the first R. Returns the first claim message (nil when the tier is off
// or the ring is empty).
func (n *Node) startInboxClaimLocked(now time.Time, prevPos ring.ID) (int32, *wire.Message) {
	if !n.inboxOn() {
		return -1, nil
	}
	members := n.dir.ringMembers()
	cands := selectcore.InboxReplicas(n.id, n.dir.position(n.id), members, nil, 2*n.cfg.InboxReplicas)
	if prevPos != n.dir.position(n.id) {
		seen := make(map[overlay.PeerID]bool, len(cands))
		for _, p := range cands {
			seen[p] = true
		}
		for _, p := range selectcore.InboxReplicas(n.id, prevPos, members, nil, 2*n.cfg.InboxReplicas) {
			if !seen[p] {
				cands = append(cands, p)
			}
		}
	}
	if len(cands) == 0 {
		n.claim = nil
		return -1, nil
	}
	n.claimEpoch++
	cl := &claimState{
		order:    selectcore.LeaseOrder(n.id, n.claimEpoch, cands),
		seq:      n.nextSeq(),
		deadline: now.Add(n.cfg.InboxLease),
		prevPos:  prevPos,
	}
	n.claim = cl
	return int32(cl.order[0]), n.claimMsg(cl)
}

func (n *Node) claimMsg(cl *claimState) *wire.Message {
	return &wire.Message{
		Kind: wire.KindInboxClaim, From: int32(n.id), To: int32(cl.order[cl.idx]),
		Seq: cl.seq, Target: int32(n.id),
	}
}

// advanceClaimLocked moves the lease to the next replica; after a full
// pass it either closes the cycle (nothing replayed — every replica is
// drained or empty) or starts another pass, because deposits that
// arrived mid-drain may sit on replicas already visited.
func (n *Node) advanceClaimLocked(now time.Time, out []outMsg) []outMsg {
	cl := n.claim
	if cl == nil {
		return out
	}
	cl.idx++
	if cl.idx >= len(cl.order) {
		if cl.got == 0 {
			n.claim = nil
			n.cfg.Obs.TraceEvent("inbox_claim_done", int32(n.id), cl.seq)
			return out
		}
		if to, m := n.startInboxClaimLocked(now, cl.prevPos); to >= 0 {
			out = append(out, outMsg{to, m})
		}
		return out
	}
	cl.deadline = now.Add(n.cfg.InboxLease)
	return append(out, outMsg{int32(cl.order[cl.idx]), n.claimMsg(cl)})
}

// handleInboxLease consumes a replica's claim answer on the subscriber:
// a positive pending count extends the lease while the replica drains; a
// zero count (empty inbox, or the final drained notice) advances the
// cycle immediately.
func (n *Node) handleInboxLease(m *wire.Message) {
	if !n.inboxOn() {
		return
	}
	now := time.Now()
	var out []outMsg
	n.mu.Lock()
	cl := n.claim
	if cl == nil || m.Seq != cl.seq || cl.idx >= len(cl.order) || overlay.PeerID(m.From) != cl.order[cl.idx] {
		n.mu.Unlock()
		return // stale cycle or a replica that no longer holds the lease
	}
	if m.NMutual > 0 {
		cl.deadline = now.Add(n.cfg.InboxLease)
	} else {
		out = n.advanceClaimLocked(now, out)
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	n.kickInbox()
}

// handleInboxReplay delivers a replayed publication on the subscriber:
// first-time copies go through the normal delivery path (DedupWindow,
// OnDeliver, hop histogram), duplicates are absorbed — and every copy is
// acked so whichever replica sent it can clear its journal record.
func (n *Node) handleInboxReplay(m *wire.Message) {
	if overlay.PeerID(m.To) != n.id || overlay.PeerID(m.Target) != n.id {
		return
	}
	id := msgID{m.Publisher, m.Seq}
	topic := string(m.Topic)
	if topic == "" {
		topic = UserTopic(overlay.PeerID(m.Publisher))
	}
	now := time.Now()
	n.mu.Lock()
	dup := !n.rememberDeliveryLocked(id, m.HopCount)
	handler := n.deliverHandlerLocked(topic)
	if cl := n.claim; cl != nil && cl.idx < len(cl.order) && overlay.PeerID(m.From) == cl.order[cl.idx] {
		// Progress from the lease holder keeps its lease alive.
		cl.deadline = now.Add(n.cfg.InboxLease)
		cl.got++
	}
	n.mu.Unlock()
	if dup {
		n.cfg.Obs.Inc(obs.CPublishDuplicate)
	} else {
		if len(m.Topic) > 0 {
			n.cfg.Obs.Inc(obs.CTopicDelivered)
		} else {
			n.cfg.Obs.Inc(obs.CPublishDelivered)
		}
		n.cfg.Obs.ObserveHops(float64(m.HopCount))
		n.cfg.Obs.TraceEvent("deliver", int32(n.id), m.Seq)
		if handler != nil {
			handler(Delivery{
				Publisher: overlay.PeerID(m.Publisher), Topic: topic,
				Seq: m.Seq, Hops: m.HopCount, Priority: m.Priority,
				Payload: m.Payload,
			})
		}
	}
	_ = n.tr.Send(m.From, &wire.Message{
		Kind: wire.KindInboxReplayAck, From: int32(n.id), To: m.From,
		Seq: m.Seq, Publisher: m.Publisher, Target: int32(n.id),
	})
	n.kickInbox()
}
