package node

import (
	"math"
	"testing"
	"time"

	"selectps/internal/overlay"
	"selectps/internal/wire"
)

// quietOpts stretches every protocol period to an hour: no background
// heartbeat/gossip/maintain traffic races the hand-delivered messages,
// so each test controls exactly what evidence node a sees.
func quietOpts() Options {
	return Options{
		HeartbeatEvery: time.Hour,
		GossipEvery:    time.Hour,
		MaintainEvery:  time.Hour,
	}
}

// pickMembers returns a live node a and two distinct other members q
// (the peer whose liveness is contested) and r (the third-party gossip
// source).
func pickMembers(c *Cluster) (a *Node, q, r overlay.PeerID) {
	a = c.Nodes[0]
	q, r = overlay.PeerID(1), overlay.PeerID(2)
	return a, q, r
}

// posBits renders q's directory position as the wire encoding of a
// successor-list claim.
func posBits(c *Cluster, q overlay.PeerID) uint64 {
	return math.Float64bits(float64(c.dir.position(q)))
}

// TestQuarantineConflictingEvidence drives the dead-quarantine through
// contradictory liveness claims: while node a holds peer q under
// quarantine, third-party gossip naming q alive must NOT resurrect it —
// but first-person evidence from q itself (its own IDAnnounce, or a pong
// answered by q) must clear the quarantine immediately. This is the race
// a churn crash creates: stale successor lists keep advertising the dead
// peer long after the eviction, while the recovered peer's own announce
// races them back in.
func TestQuarantineConflictingEvidence(t *testing.T) {
	_, c := buildCluster(t, 20, 2, quietOpts())
	defer shutdown(t, c)
	a, q, r := pickMembers(c)

	// Evict q: quarantine it and drop it from a's ring view.
	a.mu.Lock()
	a.deadUntil[q] = time.Now().Add(10 * time.Second)
	a.rview.remove(q)
	a.refreshHeadsLocked()
	a.mu.Unlock()

	// Third-party hearsay from r claims q is alive at its real position.
	a.handle(&wire.Message{
		Kind: wire.KindPong, From: int32(r), To: int32(a.ID()),
		Succs:   []int32{int32(r), int32(q)},
		SuccPos: []uint64{posBits(c, r), posBits(c, q)},
	})
	a.mu.Lock()
	_, resurrected := a.rview.get(q)
	a.mu.Unlock()
	if resurrected {
		t.Fatalf("third-party gossip resurrected quarantined peer %d", q)
	}

	// First-person evidence: q announces its own identifier.
	a.handle(&wire.Message{
		Kind: wire.KindIDAnnounce, From: int32(q), To: int32(a.ID()),
		Pos: posBits(c, q),
	})
	a.mu.Lock()
	_, back := a.rview.get(q)
	_, stillQuarantined := a.deadUntil[q]
	a.mu.Unlock()
	if stillQuarantined {
		t.Fatalf("first-person IDAnnounce did not clear the quarantine")
	}
	if !back {
		t.Fatalf("first-person IDAnnounce did not restore peer %d to the ring view", q)
	}
}

// TestQuarantinePongClearsEarly is the second first-person path: a pong
// from the quarantined peer itself is an online observation and lifts
// the quarantine before its timer expires.
func TestQuarantinePongClearsEarly(t *testing.T) {
	_, c := buildCluster(t, 20, 2, quietOpts())
	defer shutdown(t, c)
	a, q, _ := pickMembers(c)

	a.mu.Lock()
	a.deadUntil[q] = time.Now().Add(10 * time.Second)
	a.mu.Unlock()

	a.handle(&wire.Message{
		Kind: wire.KindPong, From: int32(q), To: int32(a.ID()),
		Succs: []int32{int32(q)}, SuccPos: []uint64{posBits(c, q)},
	})
	a.mu.Lock()
	_, stillQuarantined := a.deadUntil[q]
	a.mu.Unlock()
	if stillQuarantined {
		t.Fatalf("pong from the quarantined peer itself did not clear the quarantine")
	}
}

// TestQuarantineExpiresOnItsOwn: absent any first-person evidence the
// quarantine is a timer, not a tombstone — hearsay works again after it
// lapses, so a peer nobody heard from directly is still re-learnable.
func TestQuarantineExpiresOnItsOwn(t *testing.T) {
	_, c := buildCluster(t, 20, 2, quietOpts())
	defer shutdown(t, c)
	a, q, r := pickMembers(c)

	a.mu.Lock()
	a.deadUntil[q] = time.Now().Add(-time.Millisecond) // already lapsed
	a.rview.remove(q)
	a.mu.Unlock()

	a.handle(&wire.Message{
		Kind: wire.KindPong, From: int32(r), To: int32(a.ID()),
		Succs:   []int32{int32(r), int32(q)},
		SuccPos: []uint64{posBits(c, r), posBits(c, q)},
	})
	a.mu.Lock()
	_, back := a.rview.get(q)
	a.mu.Unlock()
	if !back {
		t.Fatalf("hearsay after quarantine expiry should re-learn peer %d", q)
	}
}
