package node

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"selectps/internal/inbox"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/selectcore"
	"selectps/internal/socialgraph"
	"selectps/internal/transport"
)

// Options configures a live cluster. Graph, Overlay and Transport are
// required; everything else has working defaults.
type Options struct {
	// Graph is the social graph (subscription relation, §III-A).
	Graph *socialgraph.Graph
	// Overlay provides the converged positions (and, when it is a SELECT
	// overlay, long links and bandwidths) that seed the bootstrap members.
	Overlay overlay.Overlay
	// Transport carries the wire protocol (switchboard or TCP).
	Transport transport.Transport
	// Seed derives every per-node RNG and LSH hasher; two clusters started
	// from the same Options make the same protocol decisions.
	Seed int64

	// Shards is how many event-loop goroutines the cluster runs
	// (default GOMAXPROCS). Every node is pinned to one shard by hashed
	// PeerID: its timers fire and its inbound messages are handled on
	// that shard's goroutine (DESIGN.md §11). Do not raise this past
	// GOMAXPROCS: shard loops run hot under load, so any loop beyond the
	// core count is descheduled in whole preemption quanta (~10ms) and
	// every timer due during that window fires late — measured as tens
	// of milliseconds of added deadline lag and message sojourn, enough
	// to starve retry backoffs and trip spurious repair traffic.
	Shards int
	// ShardMailbox is each shard's shared inbox depth (default 8192).
	// The shared mailbox replaces per-node transport inboxes when the
	// transport supports multiplexing (transport.InboxMux). Keep it
	// moderate: an overloaded shard sheds load by dropping at the
	// mailbox (counted), and a deeper queue only trades those drops for
	// seconds of sojourn latency on every queued message.
	ShardMailbox int

	// HeartbeatEvery is the ping interval (0 disables heartbeats).
	HeartbeatEvery time.Duration
	// GossipEvery is the Algorithm-3 exchange interval (0 disables).
	GossipEvery time.Duration
	// MaintainEvery is the live maintenance interval — join retries,
	// short-link refresh, Algorithm-2 identifier moves and Algorithm-5/6
	// link reassignment (0 disables maintenance: a frozen cluster).
	MaintainEvery time.Duration

	// TTL bounds forwarding hops (default 32).
	TTL uint8
	// K is the long-link budget and incoming cap (default: the overlay's
	// own K when it exposes one, else ~log2(N)).
	K int
	// MoveEps is the minimum ring distance an Algorithm-2 move must cover
	// to be worth announcing (default 0.002).
	MoveEps float64

	// RetryBase is the delivery-repair engine's base backoff: the first
	// re-send to unacked subscribers fires about one RetryBase after the
	// publication, doubling (with ±25% seeded jitter) up to RetryMax.
	// 0 disables autonomous repair — the ablation arm.
	RetryBase time.Duration
	// RetryMax caps the backoff delay (default 10×RetryBase).
	RetryMax time.Duration
	// RetryBudget is how many retry rounds a publication gets before it is
	// dead-lettered (default 12).
	RetryBudget int
	// SuccListLen is r, the successor/predecessor list depth backing ring
	// repair (default 4).
	SuccListLen int
	// DedupWindow bounds each node's delivery-dedup record; a duplicate
	// copy arriving after its record aged out re-delivers (at-least-once,
	// default 8192).
	DedupWindow int
	// PubHistory bounds the publisher-side ack records kept after a
	// publication resolves or dead-letters (default 1024).
	PubHistory int
	// Detector holds the accrual failure-detection thresholds shared with
	// the simulator (zero value = selectcore.DefaultFailureDetector).
	Detector selectcore.FailureDetector

	// AckBatch selects the control-traffic coalescing mode (DESIGN.md
	// §15): acks buffer per next hop and ride KindAckBatch frames instead
	// of one frame each. AckBatchAuto (the zero value) enables batching
	// only on raw framed transports (the same transport.FrameSender gate
	// as the marshal-once heartbeat path), so faultnet-wrapped chaos
	// schedules and their canonical traces stay byte-identical.
	AckBatch AckBatchMode
	// AckFlushEvery is the longest an ack may sit buffered before its
	// batch is flushed (default 1ms — about one timer-wheel tick).
	AckFlushEvery time.Duration
	// AckBatchMax flushes a next-hop bucket early when it reaches this
	// many entries (default 64).
	AckBatchMax int
	// NoHeartbeatPiggyback disables liveness piggybacking: normally any
	// inbound frame counts as heartbeat evidence for its sender, and the
	// heartbeat sweep skips pinging links that carried traffic within the
	// last interval (idle links keep the full ping cadence, so detection
	// latency is unchanged).
	NoHeartbeatPiggyback bool

	// Inbox enables the durable delivery tier (DESIGN.md §12): instead of
	// dead-lettering a publication for a subscriber that left the ring or
	// exhausted the direct-retry budget, the publisher deposits the copy on
	// the subscriber's replica set, which journals it and replays it when
	// the subscriber rejoins. Requires repair (RetryBase > 0) — deposits
	// ride the repair scheduler.
	Inbox bool
	// InboxReplicas is R, how many live clockwise ring successors of a
	// subscriber hold its inbox (default 2).
	InboxReplicas int
	// InboxDir is where the per-shard journals live. Empty means a fresh
	// temp directory owned (and removed at Shutdown) by the cluster; a
	// caller-provided directory survives Shutdown — restart durability.
	InboxDir string
	// InboxSyncEvery is the journal fsync policy: 0 leaves flushing to the
	// OS, 1 syncs every append, N syncs every N appends.
	InboxSyncEvery int
	// InboxLease is how long a claimed replica may go without replay
	// progress before the subscriber hands the claim to the next replica
	// (default 150ms).
	InboxLease time.Duration
	// InboxRetry is the base re-send delay for unacked replays and the
	// initial deposit round spacing (default RetryBase).
	InboxRetry time.Duration

	// Hardened enables the adversarial defenses of DESIGN.md §14: the
	// per-identity join admission cache and arc-occupancy caps against
	// sybil floods, directory position cross-checks (correction, not
	// drop) with firsthand-protected successor/predecessor lists against
	// eclipse attempts, and mutual-count sanity rejection against
	// tie-strength liars. Off by default so the honest protocol (and the
	// defenses-off ablation the resilience benchmarks measure against)
	// is unchanged.
	Hardened bool
	// JoinRateWindow is the hardened per-identity re-join cooldown
	// (default 1s): an identity re-joining through the same inviter
	// within the window is re-served its cached position — no fresh
	// placement, no new arc grant — and past joinServeCap repeats is
	// dropped. Honest lost-reply resends are re-answered immediately, so
	// the damper costs honest joiners nothing while capping a sybil
	// cycle at one placement per window per identity.
	JoinRateWindow time.Duration
	// ArcJoinCap is the most friend-arc placements (Algorithm-1 social
	// placement inside this inviter's free arc — one LSH region) granted
	// per JoinRateWindow when hardened (default 4); excess friends are
	// diverted to their uniform independent-join position, spreading the
	// load the way non-friends already do.
	ArcJoinCap int

	// TopicLease is how long a topic registration lives at its rendezvous
	// without a refresh (DESIGN.md §13); subscribers refresh at half the
	// lease on the maintain tick (default 500ms).
	TopicLease time.Duration
	// TopicFanout bounds the branching factor of the per-topic
	// dissemination tree (default 4).
	TopicFanout int

	// Obs receives runtime counters, histograms and trace events from
	// every node (nil = no instrumentation).
	Obs *obs.Metrics

	// Bootstrap lists the peers that start as converged ring members
	// seeded from Overlay. Nil means every peer bootstraps (the
	// pre-converged cluster of earlier revisions); non-nil leaves the
	// remaining peers outside the ring until Cluster.Join admits them
	// live via JoinRequest.
	Bootstrap []overlay.PeerID

	// Bandwidths models per-peer upload capacity for the Algorithm-6
	// picker and incoming-link eviction (default: the overlay's modeled
	// bandwidths when exposed, else a deterministic synthetic draw).
	Bandwidths []float64
}

func (o *Options) fill() {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.ShardMailbox <= 0 {
		o.ShardMailbox = 8192
	}
	if o.TTL == 0 {
		o.TTL = 32
	}
	if o.MoveEps == 0 {
		o.MoveEps = 0.002
	}
	if o.RetryMax == 0 && o.RetryBase > 0 {
		o.RetryMax = 10 * o.RetryBase
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 12
	}
	if o.SuccListLen == 0 {
		o.SuccListLen = 4
	}
	if o.DedupWindow == 0 {
		o.DedupWindow = 8192
	}
	if o.PubHistory == 0 {
		o.PubHistory = 1024
	}
	if o.InboxReplicas <= 0 {
		o.InboxReplicas = 2
	}
	if o.AckFlushEvery <= 0 {
		o.AckFlushEvery = time.Millisecond
	}
	if o.AckBatchMax <= 0 {
		o.AckBatchMax = 64
	}
	if o.InboxLease <= 0 {
		o.InboxLease = 150 * time.Millisecond
	}
	if o.InboxRetry <= 0 {
		if o.RetryBase > 0 {
			o.InboxRetry = o.RetryBase
		} else {
			o.InboxRetry = 20 * time.Millisecond
		}
	}
	if o.JoinRateWindow <= 0 {
		o.JoinRateWindow = time.Second
	}
	if o.ArcJoinCap <= 0 {
		o.ArcJoinCap = 4
	}
	if o.TopicLease <= 0 {
		o.TopicLease = 500 * time.Millisecond
	}
	if o.TopicFanout <= 0 {
		o.TopicFanout = 4
	}
	if o.K == 0 {
		if kp, ok := o.Overlay.(interface{ K() int }); ok {
			o.K = kp.K()
		} else {
			o.K = 2
			for n := o.Overlay.N(); n > 4; n /= 2 {
				o.K++
			}
		}
	}
}

// Cluster runs one node per peer of an overlay on S sharded event loops.
type Cluster struct {
	Nodes  []*Node
	dir    *directory
	tr     transport.Transport
	shards []*shard
	// ibxDir is the durable-tier journal directory; ibxOwned marks a
	// cluster-created temp directory removed at Shutdown.
	ibxDir   string
	ibxOwned bool
	// stop ends every shard loop and fallback forwarder; wg tracks them.
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Start builds the cluster and spawns its shard event loops (Shards
// goroutines total, not one per peer). Bootstrap members begin with
// converged routing state copied from opts.Overlay; everyone else starts
// outside the ring and is admitted live through Cluster.Join.
func Start(opts Options) (*Cluster, error) {
	if opts.Graph == nil || opts.Overlay == nil || opts.Transport == nil {
		return nil, fmt.Errorf("node: Options requires Graph, Overlay and Transport")
	}
	opts.fill()
	n := opts.Overlay.N()
	dir := newDirectory(n)
	for p := 0; p < n; p++ {
		dir.pos[p] = opts.Overlay.Position(overlay.PeerID(p))
	}
	if opts.Bootstrap == nil {
		for p := range dir.member {
			dir.member[p] = true
		}
	} else {
		for _, p := range opts.Bootstrap {
			dir.member[p] = true
		}
	}
	bw := opts.Bandwidths
	if bw == nil {
		if bp, ok := opts.Overlay.(interface{ Bandwidth(overlay.PeerID) float64 }); ok {
			bw = make([]float64, n)
			for p := 0; p < n; p++ {
				bw[p] = bp.Bandwidth(overlay.PeerID(p))
			}
		} else {
			rng := rand.New(rand.NewSource(opts.Seed ^ 0x6277))
			bw = make([]float64, n)
			for p := range bw {
				bw[p] = 1 + 9*rng.Float64()
			}
		}
	}

	c := &Cluster{dir: dir, tr: opts.Transport}
	for p := 0; p < n; p++ {
		c.Nodes = append(c.Nodes, newNode(overlay.PeerID(p), dir, bw, opts, opts.Seed+int64(p)))
	}
	// Seed the bootstrap members' routing state from the converged
	// overlay: long links (and their inverses) when the overlay exposes
	// them, its full link set otherwise, always pruned to members.
	type longLinker interface {
		LongLinks(overlay.PeerID) []overlay.PeerID
	}
	ll, hasLong := opts.Overlay.(longLinker)
	for p := 0; p < n; p++ {
		pid := overlay.PeerID(p)
		if !dir.member[p] {
			continue
		}
		node := c.Nodes[p]
		node.joined = true
		var out []overlay.PeerID
		if hasLong {
			out = ll.LongLinks(pid)
		} else {
			out = opts.Overlay.Links(pid)
		}
		for _, q := range out {
			if dir.member[q] && q != pid {
				node.longOut = append(node.longOut, q)
			}
		}
	}
	if hasLong {
		for p := 0; p < n; p++ {
			if !dir.member[p] {
				continue
			}
			for _, q := range c.Nodes[p].longOut {
				c.Nodes[q].longIn = append(c.Nodes[q].longIn, overlay.PeerID(p))
			}
		}
	}
	// Seed the bootstrap members' successor/predecessor lists from the
	// directory — its only remaining ring role (bootstrap-only): from here
	// on, ring views evolve through join replies, pong piggybacks and
	// identifier announcements, and repair splices locally.
	for p := 0; p < n; p++ {
		if !dir.member[p] {
			continue
		}
		nd := c.Nodes[p]
		own := dir.pos[p]
		for q := 0; q < n; q++ {
			if q != p && dir.member[q] {
				// Bootstrap entries are trusted admission records: firsthand.
				nd.rview.learn(own, nd.id, overlay.PeerID(q), dir.pos[q], true)
			}
		}
		nd.shortSucc, nd.shortPred = dir.ringNeighbors(overlay.PeerID(p))
		close(nd.joinedCh)
	}
	// The sharded runtime (shard.go): pin every node to a shard, bind its
	// transport inbox into the shard's shared mailbox (falling back to a
	// forwarder goroutine when the transport cannot multiplex), arm its
	// periodic wheel entries, then start the S loops.
	c.stop = make(chan struct{})
	c.shards = make([]*shard, opts.Shards)
	for i := range c.shards {
		c.shards[i] = newShard(i, c, &opts)
	}
	if opts.Inbox {
		dirPath := opts.InboxDir
		if dirPath == "" {
			tmp, err := os.MkdirTemp("", "selectps-inbox-*")
			if err != nil {
				return nil, fmt.Errorf("node: inbox dir: %w", err)
			}
			dirPath = tmp
			c.ibxOwned = true
		}
		c.ibxDir = dirPath
		for i, sh := range c.shards {
			st, err := inbox.Open(filepath.Join(dirPath, fmt.Sprintf("shard-%d.log", i)), opts.InboxSyncEvery, opts.Obs)
			if err != nil {
				for _, prev := range c.shards[:i] {
					prev.ibx.Close()
				}
				if c.ibxOwned {
					os.RemoveAll(dirPath)
				}
				return nil, fmt.Errorf("node: inbox shard %d: %w", i, err)
			}
			sh.ibx = st
		}
	}
	mux, hasMux := opts.Transport.(transport.InboxMux)
	bmux, hasBMux := opts.Transport.(transport.BatchInboxMux)
	start := time.Now()
	for p, nd := range c.Nodes {
		sh := c.shards[shardOf(int32(p), len(c.shards))]
		nd.sh = sh
		// Bulk ingress first (DESIGN.md §15): the transport's read loop
		// hands whole envelope slices into the shard, which drains each
		// under one queue-lock acquisition. Then the single-envelope mux,
		// then the per-node forwarder goroutine of last resort.
		switch {
		case hasBMux && bmux.BindInboxBatch(int32(p), sh.binbox):
		case hasMux && mux.BindInbox(int32(p), sh.inbox):
		default:
			c.wg.Add(1)
			go c.forwardInbox(opts.Transport.Inbox(int32(p)), int32(p), sh.inbox)
		}
		sh.scheduleNode(nd, start)
	}
	for _, sh := range c.shards {
		c.wg.Add(1)
		go sh.run()
	}
	return c, nil
}

// forwardInbox is the compatibility path for transports without
// multiplexed inbox registration: one goroutine per node copying its
// private inbox into the shard mailbox, stamping the owner. O(n)
// goroutines again — but only on transports that already are O(n).
func (c *Cluster) forwardInbox(in <-chan transport.Envelope, pid int32, out chan<- transport.Envelope) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case env, ok := <-in:
			if !ok {
				return
			}
			env.To = pid
			select {
			case out <- env:
			case <-c.stop:
				return
			}
		}
	}
}

// Join admits peer p into the running ring: the node sends a JoinRequest
// to inviter (or, when inviter is -1, to its first member friend, then
// any member), receives its Algorithm-1 position and seed contacts, and
// announces itself. Join blocks — without polling — until the node is a
// member or ctx ends; lost requests are resent by the node's own repair
// scheduler on its seeded backoff.
func (c *Cluster) Join(ctx context.Context, p, inviter overlay.PeerID) error {
	n := c.Nodes[p]
	n.mu.Lock()
	joined, ch := n.joined, n.joinedCh
	n.mu.Unlock()
	if joined {
		return nil
	}
	n.requestJoin(inviter)
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("node: join of %d: %w", p, ctx.Err())
	}
}

// Crash fails peer p abruptly: it stops responding and loses all learned
// overlay state (links, lookahead, availability history), as a killed
// process would — no Leave is sent. The feed state survives, standing in
// for persistent storage: the delivered record on the subscriber side and
// the repair outbox on the publisher side, so a crashed publisher resumes
// re-sending unacked publications once Rejoin brings the peer back.
func (c *Cluster) Crash(p overlay.PeerID) {
	n := c.Nodes[p]
	n.paused.Store(true)
	c.dir.setMember(p, false)
	n.mu.Lock()
	n.resetVolatileLocked()
	n.mu.Unlock()
}

// Rejoin restarts a crashed peer and walks it through the live join
// protocol again.
func (c *Cluster) Rejoin(ctx context.Context, p, inviter overlay.PeerID) error {
	c.Nodes[p].paused.Store(false)
	return c.Join(ctx, p, inviter)
}

// AwaitDelivery polls until every subscriber of (publisher, seq) received
// the publication or ctx ends; it returns the delivered count and whether
// delivery completed.
func (c *Cluster) AwaitDelivery(ctx context.Context, publisher overlay.PeerID, seq uint32, subs []overlay.PeerID) (int, bool) {
	// One reused timer for the whole poll loop — time.After would allocate
	// a timer per iteration that lives until it fires.
	const pollEvery = 2 * time.Millisecond
	timer := time.NewTimer(pollEvery)
	defer timer.Stop()
	for {
		delivered := 0
		for _, s := range subs {
			if _, ok := c.Nodes[s].Received(publisher, seq); ok {
				delivered++
			}
		}
		if delivered == len(subs) {
			return delivered, true
		}
		select {
		case <-ctx.Done():
			return delivered, false
		case <-timer.C:
			timer.Reset(pollEvery)
		}
	}
}

// RingConsistent reports whether p is a ring member whose short-range
// links agree with the directory's current nearest members — the
// restabilization probe the adversarial soak polls after an attack
// window closes (DESIGN.md §14). Measurement-only: live repair never
// consults the directory's ring scan.
func (c *Cluster) RingConsistent(p overlay.PeerID) bool {
	if !c.dir.isMember(p) {
		return false
	}
	wantSucc, wantPred := c.dir.ringNeighbors(p)
	nd := c.Nodes[p]
	nd.mu.Lock()
	gotSucc, gotPred := nd.shortSucc, nd.shortPred
	nd.mu.Unlock()
	return gotSucc == wantSucc && gotPred == wantPred
}

// RingHeads snapshots p's current short-range ring heads (successor,
// predecessor; -1 when unset). Measurement-only — the adversarial soak
// samples it each driver tick to score how often an attack cohort holds
// a victim's ring view (DESIGN.md §14).
func (c *Cluster) RingHeads(p overlay.PeerID) (succ, pred overlay.PeerID) {
	nd := c.Nodes[p]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.shortSucc, nd.shortPred
}

// HeadForged reports whether p's ring view holds q at a position that
// contradicts the directory's granted one — an adopted forgery, as
// opposed to a legitimately ring-adjacent peer (SELECT's social
// placement makes a victim's friends genuine ring neighbors, so raw
// head occupancy alone cannot separate stolen seats from earned ones).
// Measurement-only, like RingConsistent.
func (c *Cluster) HeadForged(p, q overlay.PeerID) bool {
	nd := c.Nodes[p]
	nd.mu.Lock()
	pos, ok := nd.rview.posOf(q)
	nd.mu.Unlock()
	if !ok {
		return false
	}
	dp, member := c.dir.memberPos(q)
	return !member || pos != dp
}

// Shards reports how many event-loop goroutines the cluster runs —
// the S in the runtime's O(S + conns) goroutine budget.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shutdown terminates the runtime with a bounded drain: it waits for
// every shard loop (and fallback forwarder) to exit until ctx expires,
// then closes the transport either way. Idempotent; returns ctx's error
// when the drain was cut short.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.stopOnce.Do(func() { close(c.stop) })
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	c.tr.Close()
	for _, sh := range c.shards {
		if sh.ibx != nil {
			sh.ibx.Close()
		}
	}
	if c.ibxOwned && c.ibxDir != "" {
		os.RemoveAll(c.ibxDir)
	}
	return err
}

// InboxDepth is the total number of deposits pending across every
// shard's durable-tier journal — the cluster-wide inbox depth.
func (c *Cluster) InboxDepth() int {
	total := 0
	for _, sh := range c.shards {
		if sh.ibx != nil {
			total += sh.ibx.Depth()
		}
	}
	return total
}
