package node

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"selectps/internal/inbox"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/selectcore"
)

// subCtx is the registration deadline used by the topic tests.
func subCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestTopicPubSubEndToEnd drives the topic-first API through a live
// cluster: subscribers register at the rendezvous set, a publication
// fans down the dissemination tree, and every handler sees the full
// Delivery context (publisher, topic, seq, priority, payload).
func TestTopicPubSubEndToEnd(t *testing.T) {
	met := obs.New()
	_, c := buildCluster(t, 100, 23, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		MaintainEvery:  20 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    100,
		Obs:            met,
	})
	defer shutdown(t, c)

	const topic = "#chess"
	pub := overlay.PeerID(0)
	subs := []overlay.PeerID{3, 9, 17, 24, 31, 42, 55, 68}
	var mu sync.Mutex
	got := make(map[overlay.PeerID]Delivery)
	for i, s := range subs {
		s := s
		sub, err := c.Nodes[s].Topic(topic).Subscribe(subCtx(t))
		if err != nil {
			t.Fatalf("subscribe %d: %v", s, err)
		}
		record := func(d Delivery) {
			mu.Lock()
			got[s] = d
			mu.Unlock()
		}
		if i == 0 {
			// One subscriber exercises the node-level fallback handler;
			// the rest use the per-subscription handler.
			c.Nodes[s].OnDeliver(record)
		} else {
			sub.OnDeliver(record)
		}
	}

	body := []byte("Qxf7#")
	seq, err := c.Nodes[pub].Topic(topic).Publish(body, WithPriority(inbox.High))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if delivered, ok := await(c, pub, seq, subs, 10*time.Second); !ok {
		t.Fatalf("only %d/%d topic subscribers delivered", delivered, len(subs))
	}

	mu.Lock()
	defer mu.Unlock()
	for _, s := range subs {
		d, ok := got[s]
		if !ok {
			t.Fatalf("subscriber %d handler never fired", s)
		}
		if d.Topic != topic || d.Publisher != pub || d.Seq != seq {
			t.Fatalf("subscriber %d delivery context = %+v", s, d)
		}
		if !bytes.Equal(d.Payload, body) {
			t.Fatalf("subscriber %d payload = %q", s, d.Payload)
		}
		if d.Priority != inbox.High {
			t.Fatalf("subscriber %d priority = %d, want %d", s, d.Priority, inbox.High)
		}
	}
	// A peer that never subscribed receives nothing, even when the flood
	// passed near it.
	if _, delivered := c.Nodes[77].Received(pub, seq); delivered {
		t.Fatal("non-subscriber received the topic publication")
	}
	if met.Get(obs.CTopicFanout) == 0 {
		t.Fatal("no dissemination-tree copies sent — delivery bypassed the tree")
	}
	waitFor(t, 5*time.Second, "publisher hand-off to resolve", func() bool {
		return c.Nodes[pub].PendingTopicPublishes() == 0
	})
}

// TestTopicRendezvousMatchesSimulatorRule pins the simulator/runtime
// equivalence contract: the placement a live node computes from its
// directory is byte-identical to selectcore.Rendezvous applied to the
// same ring snapshot, and — on a converged ring — every node derives
// the same set.
func TestTopicRendezvousMatchesSimulatorRule(t *testing.T) {
	_, c := buildCluster(t, 80, 29, Options{})
	defer shutdown(t, c)
	topics := []string{"#go", "#news", "group:7", "page:select", "#flash-crowd"}
	probes := []overlay.PeerID{0, 13, 41, 79}
	for _, topic := range topics {
		ref := c.Nodes[probes[0]].TopicRendezvous(topic)
		if len(ref) == 0 {
			t.Fatalf("topic %q: empty rendezvous set", topic)
		}
		for _, p := range probes {
			n := c.Nodes[p]
			got := n.TopicRendezvous(topic)
			want := selectcore.Rendezvous(
				selectcore.TopicPos(topic), n.dir.ringMembers(), nil, n.cfg.InboxReplicas)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("topic %q node %d: runtime %v != simulator rule %v", topic, p, got, want)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("topic %q: nodes disagree on placement: %v vs %v", topic, got, ref)
			}
		}
	}
}

// TestTopicRendezvousDeathRehomesMidFlood is the churn acceptance test
// (run under -race in CI): the topic's primary rendezvous dies in the
// middle of a publication flood and every post still reaches every live
// subscriber — the publisher keeps re-handing to the recomputed set,
// subscribers re-register when the accrual detector re-homes the topic,
// and the surviving standbys' repair engines close the gaps. Zero lost
// publications, zero dead letters.
func TestTopicRendezvousDeathRehomesMidFlood(t *testing.T) {
	met := obs.New()
	_, c := buildCluster(t, 100, 31, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		MaintainEvery:  20 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    400,
		Obs:            met,
	})
	defer shutdown(t, c)

	const topic = "#breaking"
	set := c.Nodes[0].TopicRendezvous(topic)
	if len(set) < 2 {
		t.Fatalf("need a standby for the kill, got rendezvous %v", set)
	}
	primary := set[0]
	inSet := func(p overlay.PeerID) bool {
		for _, r := range set {
			if r == p {
				return true
			}
		}
		return false
	}
	// Subscribers and publisher stay clear of the initial rendezvous set
	// so the kill hits only the topic's infrastructure role.
	var subs []overlay.PeerID
	var pub overlay.PeerID = -1
	for p := overlay.PeerID(0); p < 100 && (len(subs) < 10 || pub < 0); p++ {
		if inSet(p) {
			continue
		}
		if pub < 0 {
			pub = p
			continue
		}
		subs = append(subs, p)
	}
	for _, s := range subs {
		if _, err := c.Nodes[s].Topic(topic).Subscribe(subCtx(t)); err != nil {
			t.Fatalf("subscribe %d: %v", s, err)
		}
	}

	const posts = 12
	seqs := make([]uint32, posts)
	for i := range seqs {
		seq, err := c.Nodes[pub].Topic(topic).Publish([]byte("flash"), WithSize(500))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		seqs[i] = seq
		if i == posts/3 {
			// Mid-flood kill: the primary dies for real — volatile state
			// (its registry included) gone, membership dropped. The
			// publisher must re-hand pending publications to the recomputed
			// set and the surviving standbys must keep fanning out.
			c.Crash(primary)
		}
		time.Sleep(10 * time.Millisecond)
	}

	deadline := time.Now().Add(30 * time.Second)
	for i, seq := range seqs {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		delivered, ok := c.AwaitDelivery(ctx, pub, seq, subs)
		cancel()
		if !ok {
			t.Fatalf("post %d (seq %d): only %d/%d live subscribers delivered after re-homing",
				i, seq, delivered, len(subs))
		}
	}
	waitFor(t, 15*time.Second, "publisher hand-offs to resolve", func() bool {
		return c.Nodes[pub].PendingTopicPublishes() == 0
	})
	if dl := c.Nodes[pub].DeadLetters(); len(dl) != 0 {
		t.Fatalf("publications dead-lettered despite full delivery: %+v", dl)
	}
	if met.Get(obs.CTopicRehome) == 0 {
		t.Fatal("no rendezvous re-homing observed — the kill never exercised the fail-over")
	}
}

// TestTopicUnsubscribePurgesJournaledDeposits pins the unsubscribe
// drain: deposits journaled for an unreachable subscriber are purged
// from its inbox replicas the moment it unsubscribes, and nothing is
// ever replayed to it.
func TestTopicUnsubscribePurgesJournaledDeposits(t *testing.T) {
	met := obs.New()
	_, c := buildCluster(t, 80, 37, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		MaintainEvery:  20 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    4,
		Inbox:          true,
		Obs:            met,
	})
	defer shutdown(t, c)

	const topic = "#letters"
	set := c.Nodes[0].TopicRendezvous(topic)
	inSet := func(p overlay.PeerID) bool {
		for _, r := range set {
			if r == p {
				return true
			}
		}
		return false
	}
	var victim, pub overlay.PeerID = -1, -1
	for p := overlay.PeerID(0); p < 80 && (victim < 0 || pub < 0); p++ {
		if inSet(p) {
			continue
		}
		if victim < 0 {
			victim = p
		} else {
			pub = p
		}
	}
	sub, err := c.Nodes[victim].Topic(topic).Subscribe(subCtx(t))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	var dc deliveryCounter
	dc.install(c.Nodes[victim])

	// The subscriber goes dark (still a member — leases at the rendezvous
	// stay warm long enough for the deposits to be owed to it).
	c.Nodes[victim].paused.Store(true)
	const posts = 3
	seqs := make([]uint32, posts)
	for i := range seqs {
		seqs[i], err = c.Nodes[pub].Topic(topic).Publish([]byte("dear diary"))
		if err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	// Quiesce: every publication's rendezvous repair state must settle
	// (deposit acked for the dark subscriber) before the unsubscribe, so
	// no in-flight deposit can land after the purge.
	waitFor(t, 10*time.Second, "deposits journaled for the dark subscriber", func() bool {
		if met.Get(obs.CInboxDeposited) < posts {
			return false
		}
		for _, rv := range set {
			if c.Nodes[rv].PendingRepairs() != 0 {
				return false
			}
		}
		return c.Nodes[pub].PendingTopicPublishes() == 0
	})

	// Unsubscribe while the deposits are still parked: the rendezvous
	// drops the registration and the replicas purge the journal.
	if err := sub.Unsubscribe(context.Background()); err != nil {
		t.Fatalf("unsubscribe: %v", err)
	}
	waitFor(t, 10*time.Second, "journal purge", func() bool {
		return met.Get(obs.CTopicPurged) >= posts
	})
	waitFor(t, 10*time.Second, "journals to drain", func() bool {
		return c.InboxDepth() == 0
	})
	for _, rv := range set {
		if n := c.Nodes[rv].TopicSubscribers(topic); n != 0 {
			t.Fatalf("rendezvous %d still holds %d registrations after unsubscribe", rv, n)
		}
	}

	// The subscriber comes back: with the journals drained there is
	// nothing to replay — the departed subscription stays silent.
	c.Nodes[victim].paused.Store(false)
	time.Sleep(300 * time.Millisecond)
	for _, seq := range seqs {
		if n := dc.count(seq); n != 0 {
			t.Fatalf("seq %d replayed %d times to an unsubscribed peer", seq, n)
		}
	}
	if c.InboxDepth() != 0 {
		t.Fatalf("journals refilled after resume: depth %d", c.InboxDepth())
	}
}

// TestUserTopicAPIEquivalence pins the friend-feed bridge: a user topic
// handle publishes through the exact friend-feed path, non-owners are
// rejected, and only friends may subscribe.
func TestUserTopicAPIEquivalence(t *testing.T) {
	g, c := buildCluster(t, 60, 43, Options{})
	defer shutdown(t, c)
	pub := topDegree(g)
	friend := g.Neighbors(pub)[0]

	if _, err := c.Nodes[friend].Topic(UserTopic(pub)).Publish([]byte("x")); err != ErrForeignUserTopic {
		t.Fatalf("foreign feed publish: err = %v, want ErrForeignUserTopic", err)
	}
	var stranger overlay.PeerID = -1
	for p := overlay.PeerID(0); p < 60; p++ {
		if p != pub && !g.HasEdge(p, pub) {
			stranger = p
			break
		}
	}
	if stranger >= 0 {
		if _, err := c.Nodes[stranger].Topic(UserTopic(pub)).Subscribe(subCtx(t)); err != ErrNotFriend {
			t.Fatalf("stranger subscribe: err = %v, want ErrNotFriend", err)
		}
	}

	sub, err := c.Nodes[friend].Topic(UserTopic(pub)).Subscribe(subCtx(t))
	if err != nil {
		t.Fatalf("friend subscribe: %v", err)
	}
	var mu sync.Mutex
	var got *Delivery
	sub.OnDeliver(func(d Delivery) {
		mu.Lock()
		got = &d
		mu.Unlock()
	})
	seq, err := c.Nodes[pub].Topic(UserTopic(pub)).Publish([]byte("feed post"))
	if err != nil {
		t.Fatalf("owner publish: %v", err)
	}
	if _, ok := await(c, pub, seq, []overlay.PeerID{friend}, 10*time.Second); !ok {
		t.Fatal("user-topic publication never delivered to the friend")
	}
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("subscription handler never fired for the friend feed")
	}
	if got.Topic != UserTopic(pub) || got.Publisher != pub || !bytes.Equal(got.Payload, []byte("feed post")) {
		t.Fatalf("friend-feed delivery context = %+v", *got)
	}
}
