package node

import (
	"context"
	"sync"
	"testing"
	"time"

	"selectps/internal/inbox"
	"selectps/internal/obs"
	"selectps/internal/overlay"
)

// deliveryCounter records per-seq app-level delivery counts on one node —
// the instrument behind every zero-duplicates assertion in this file.
type deliveryCounter struct {
	mu    sync.Mutex
	got   map[uint32]int
	order []uint32
}

func (d *deliveryCounter) install(n *Node) {
	d.got = make(map[uint32]int)
	n.OnDeliver(func(dl Delivery) {
		d.mu.Lock()
		if d.got[dl.Seq] == 0 {
			d.order = append(d.order, dl.Seq)
		}
		d.got[dl.Seq]++
		d.mu.Unlock()
	})
}

func (d *deliveryCounter) count(seq uint32) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.got[seq]
}

func (d *deliveryCounter) delivered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.got)
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestInboxOfflineDepositReplayOnRejoin is the durable-tier roundtrip: a
// subscriber crashes, publications for it are deposited on its replica
// set instead of dead-lettered, and the rejoin claim replays every one
// exactly once at the app level. Afterwards the journals drain to empty —
// replayed copies are acked off every replica, not just the lease holder.
func TestInboxOfflineDepositReplayOnRejoin(t *testing.T) {
	met := obs.New()
	g, c := buildCluster(t, 80, 11, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		MaintainEvery:  20 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    4,
		Inbox:          true,
		Obs:            met,
	})
	defer shutdown(t, c)
	pub := topDegree(g)
	victim := g.Neighbors(pub)[0]
	var dc deliveryCounter
	dc.install(c.Nodes[victim])

	c.Crash(victim)
	time.Sleep(50 * time.Millisecond)
	const posts = 5
	seqs := make([]uint32, posts)
	for i := range seqs {
		seqs[i] = publishSize(c.Nodes[pub], 1000)
	}
	waitFor(t, 5*time.Second, "deposits acked", func() bool {
		return met.Get(obs.CInboxDepositAck) >= posts
	})
	if dl := met.Get(obs.CDeadLetter); dl != 0 {
		t.Fatalf("dead-lettered %d publications with the durable tier on", dl)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Rejoin(ctx, victim, pub); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	for _, s := range seqs {
		if _, ok := await(c, pub, s, []overlay.PeerID{victim}, 10*time.Second); !ok {
			t.Fatalf("seq %d never replayed to rejoined subscriber", s)
		}
	}
	for _, s := range seqs {
		if n := dc.count(s); n != 1 {
			t.Errorf("seq %d delivered %d times at the app level, want exactly 1", s, n)
		}
	}
	// Every replica copy self-cleans: the subscriber acks each replay
	// arrival (duplicates included), and the maintain-tick sweep drains
	// replicas the claim cycle never leased.
	waitFor(t, 5*time.Second, "inbox journals to drain", func() bool {
		return c.InboxDepth() == 0
	})
}

// TestInboxLeaseExpiryHandoffUnresponsiveReplica pins the fault path the
// lease exists for: one of the two deposit replicas stops responding
// (paused — dead but not yet detected, so it stays in the claim
// candidate set). The claim cycle must expire its lease and hand the
// drain to the surviving replica, delivering everything exactly once.
// Run under -race in CI.
func TestInboxLeaseExpiryHandoffUnresponsiveReplica(t *testing.T) {
	met := obs.New()
	g, c := buildCluster(t, 80, 13, Options{
		// Heartbeats slowed way down: the paused replica must remain a
		// directory member for the duration, so lease expiry — not accrual
		// failure detection — is what moves the claim past it.
		HeartbeatEvery: 2 * time.Second,
		MaintainEvery:  20 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    4,
		Inbox:          true,
		InboxLease:     80 * time.Millisecond,
		InboxRetry:     15 * time.Millisecond,
		Obs:            met,
	})
	defer shutdown(t, c)
	pub := topDegree(g)
	victim := g.Neighbors(pub)[0]
	var dc deliveryCounter
	dc.install(c.Nodes[victim])

	c.Crash(victim)
	time.Sleep(50 * time.Millisecond)
	replicas := c.Nodes[victim].InboxReplicas()
	if len(replicas) < 2 {
		t.Fatalf("want ≥2 replicas for the handoff scenario, got %v", replicas)
	}
	const posts = 5
	seqs := make([]uint32, posts)
	for i := range seqs {
		seqs[i] = publishSize(c.Nodes[pub], 1000)
	}
	waitFor(t, 5*time.Second, "deposits acked", func() bool {
		return met.Get(obs.CInboxDepositAck) >= posts
	})

	// One replica goes dark mid-protocol, holding all five copies. It is
	// still a member, so the rejoined subscriber WILL lease it at some
	// point in the cycle — and only the expiry timer can move past it.
	dark := replicas[0]
	c.Nodes[dark].paused.Store(true)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Rejoin(ctx, victim, pub); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	for _, s := range seqs {
		if _, ok := await(c, pub, s, []overlay.PeerID{victim}, 10*time.Second); !ok {
			t.Fatalf("seq %d never replayed: handoff past the dark replica failed", s)
		}
	}
	waitFor(t, 5*time.Second, "lease expiry on the dark replica", func() bool {
		return met.Get(obs.CInboxLeaseExpire) >= 1
	})
	for _, s := range seqs {
		if n := dc.count(s); n != 1 {
			t.Errorf("seq %d delivered %d times at the app level, want exactly 1", s, n)
		}
	}

	// The dark replica comes back: its sweep replays the stale copies, the
	// subscriber absorbs them as duplicates (acking each), and the
	// journals end empty. Still exactly-once at the app.
	c.Nodes[dark].paused.Store(false)
	waitFor(t, 10*time.Second, "inbox journals to drain after resume", func() bool {
		return c.InboxDepth() == 0
	})
	for _, s := range seqs {
		if n := dc.count(s); n != 1 {
			t.Errorf("seq %d delivered %d times after dark-replica resume, want exactly 1", s, n)
		}
	}
}

// TestInboxReplayPriorityOrder pins the drain order: with a single
// replica (deterministic queue), HIGH-class deposits replay before the
// MEDIUM ones published earlier.
func TestInboxReplayPriorityOrder(t *testing.T) {
	met := obs.New()
	g, c := buildCluster(t, 80, 17, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		MaintainEvery:  20 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    4,
		Inbox:          true,
		InboxReplicas:  1,
		Obs:            met,
	})
	defer shutdown(t, c)
	pub := topDegree(g)
	victim := g.Neighbors(pub)[0]
	var dc deliveryCounter
	dc.install(c.Nodes[victim])

	c.Crash(victim)
	time.Sleep(50 * time.Millisecond)
	low1 := publishPri(c.Nodes[pub], []byte("feed"), inbox.Medium)
	low2 := publishPri(c.Nodes[pub], []byte("feed"), inbox.Medium)
	high := publishPri(c.Nodes[pub], []byte("mention"), inbox.High)
	waitFor(t, 5*time.Second, "deposits acked", func() bool {
		return met.Get(obs.CInboxDepositAck) >= 3
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Rejoin(ctx, victim, pub); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	waitFor(t, 10*time.Second, "all three replays", func() bool {
		return dc.delivered() == 3
	})
	dc.mu.Lock()
	order := append([]uint32(nil), dc.order...)
	dc.mu.Unlock()
	if order[0] != high {
		t.Errorf("replay order %v: HIGH seq %d should drain before MEDIUM %d/%d", order, high, low1, low2)
	}
}
