package node

import (
	"sort"
	"time"

	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/wire"
)

// Ack batching (DESIGN.md §15): under flood load most frames on the wire
// are single-ack control messages — one KindAck per delivery, one
// KindInboxDepositAck per deposit, one KindTopicPubAck per hand-off.
// Instead of sending each immediately, a node buffers ack entries per
// next hop and flushes each bucket as one KindAckBatch frame when the
// shard wheel's tkAckFlush entry fires (~AckFlushEvery after the first
// buffered ack) or when a bucket reaches AckBatchMax. The repair engine
// settles every member seq of a batch in one lock pass.

// hbSuppressMax bounds consecutive piggyback-suppressed heartbeats per
// link: every 4th round pings even a busy link, because pongs carry the
// successor/predecessor lists (ring anti-entropy) data frames do not.
const hbSuppressMax = 4

// AckBatchMode selects when the coalescing path is active.
type AckBatchMode int

const (
	// AckBatchAuto enables batching only when the transport exposes raw
	// frame sending (transport.FrameSender — the TCP path). Wrapped
	// transports (faultnet) keep the one-frame-per-ack protocol, so
	// chaos schedules and canonical traces are byte-identical.
	AckBatchAuto AckBatchMode = iota
	// AckBatchOn forces batching regardless of transport.
	AckBatchOn
	// AckBatchOff forces the plain one-frame-per-ack protocol.
	AckBatchOff
)

// queueAck buffers one ack entry toward its destination. direct entries
// go straight to Dest (the deposit/topic-ack point-to-point contracts);
// routed ones take the same greedy next hop the plain KindAck would.
// Called outside n.mu.
func (n *Node) queueAck(e wire.AckEntry, direct bool) {
	hop := overlay.PeerID(e.Dest)
	if !direct {
		var ok bool
		hop, ok = n.nextHop(overlay.PeerID(e.Dest))
		if !ok {
			// Same dead-end accounting as forward(): the publisher's ack
			// bookkeeping notices the loss and repairs.
			n.cfg.Obs.Inc(obs.CPublishDeadEnd)
			n.cfg.Obs.TraceEvent("dead_end", int32(n.id), e.Seq)
			return
		}
	}
	n.cfg.Obs.Inc(obs.CAckCoalesced)
	var flush []wire.AckEntry
	arm := false
	n.mu.Lock()
	bucket := append(n.ackBuf[hop], e)
	if len(bucket) >= n.cfg.AckBatchMax {
		flush = bucket
		delete(n.ackBuf, hop)
	} else {
		n.ackBuf[hop] = bucket
		if !n.ackFlushArmed {
			n.ackFlushArmed = true
			arm = true
		}
	}
	n.mu.Unlock()
	if flush != nil {
		n.sendAckBatch(hop, flush)
	}
	if arm {
		if n.sh != nil {
			n.sh.scheduleAckFlush(n, time.Now().Add(n.cfg.AckFlushEvery))
		} else {
			// No shard runtime (unit-test node): flush inline.
			n.flushAcks()
		}
	}
}

// flushAcks drains every buffered bucket — the tkAckFlush wheel entry's
// body. One-shot: the entry re-arms on the next queued ack.
func (n *Node) flushAcks() {
	n.mu.Lock()
	n.ackFlushArmed = false
	if len(n.ackBuf) == 0 {
		n.mu.Unlock()
		return
	}
	buf := n.ackBuf
	n.ackBuf = make(map[overlay.PeerID][]wire.AckEntry)
	n.mu.Unlock()
	if n.paused.Load() {
		// Churned out between buffering and flush: the acks die with the
		// pause, exactly like any frame an unresponsive process never sent.
		return
	}
	// Deterministic hop order so a forced-on switchboard run is
	// schedule-independent where it can be.
	hops := make([]overlay.PeerID, 0, len(buf))
	for hop := range buf {
		hops = append(hops, hop)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	for _, hop := range hops {
		n.sendAckBatch(hop, buf[hop])
	}
}

// sendAckBatch emits one coalesced frame to hop. len(acks) > 0.
func (n *Node) sendAckBatch(hop overlay.PeerID, acks []wire.AckEntry) {
	if n.paused.Load() {
		return
	}
	n.cfg.Obs.Inc(obs.CAckBatchSent)
	_ = n.tr.Send(int32(hop), &wire.Message{
		Kind: wire.KindAckBatch, From: int32(n.id), To: int32(hop), Acks: acks,
	})
}

// handleAckBatch consumes every entry destined for this node in one
// repair-engine lock pass and relays the rest toward their destinations.
func (n *Node) handleAckBatch(m *wire.Message) {
	ibxOn := n.inboxOn()
	now := time.Now()
	var ackN, depN int64
	kickR := false
	n.mu.Lock()
	for _, e := range m.Acks {
		if overlay.PeerID(e.Dest) != n.id {
			continue // relayed below, outside the lock
		}
		switch e.Kind {
		case wire.KindAck:
			n.consumeAckLocked(e.From, e.Pub, e.Seq)
			ackN++
		case wire.KindInboxDepositAck:
			if ibxOn {
				n.consumeDepositAckLocked(e.Pub, e.Seq, e.Target)
				depN++
				kickR = true
			}
		case wire.KindTopicPubAck:
			if e.Pub == int32(n.id) {
				n.consumeTopicPubAckLocked(overlay.PeerID(e.From), e.Seq, now)
				ackN++
				kickR = true
			}
		}
	}
	n.mu.Unlock()
	if ackN > 0 {
		n.cfg.Obs.Addn(obs.CAckReceived, ackN)
	}
	if depN > 0 {
		n.cfg.Obs.Addn(obs.CInboxDepositAck, depN)
	}
	if kickR {
		n.kickRetry()
	}
	for _, e := range m.Acks {
		if overlay.PeerID(e.Dest) != n.id {
			n.relayAckEntry(e)
		}
	}
}

// relayAckEntry moves one not-for-us entry a hop closer. Routed entries
// (KindAck) spend relay budget exactly like the plain frame would —
// except the drop is counted, the plain path's one observability gap.
// When this hop has batching off (mixed-mode defensive path), the entry
// unpacks back to its single-frame form.
func (n *Node) relayAckEntry(e wire.AckEntry) {
	direct := e.Kind != wire.KindAck
	if !direct {
		if e.TTL == 0 {
			n.cfg.Obs.Inc(obs.CAckTTLDrop)
			return
		}
		e.TTL--
	}
	if n.ackBatch {
		n.queueAck(e, direct)
		return
	}
	m := &wire.Message{
		Kind: e.Kind, From: e.From, To: e.Dest, Seq: e.Seq,
		Publisher: e.Pub, Target: e.Target, TTL: e.TTL,
	}
	if direct {
		_ = n.tr.Send(e.Dest, m)
	} else {
		n.forward(m, overlay.PeerID(e.Dest))
	}
}

// ---- consume cores shared by the plain handlers and the batch pass ----

// consumeAckLocked folds one delivery ack (acker from, publication
// pub/seq) into the publisher-side repair state. Callers hold n.mu and
// count CAckReceived.
func (n *Node) consumeAckLocked(from, pub int32, seq uint32) {
	id := msgID{pub, seq}
	set := n.ackedSetLocked(id)
	set[from] = true
	if pub == int32(n.id) {
		n.resolveAckLocked(seq)
	} else if rseq, ok := n.tpOrigin[id]; ok {
		// Topic-rendezvous repair state: the ack is keyed by the origin
		// publisher, the pubState by this node's local repair seq.
		n.resolveAckLocked(rseq)
	}
}

// consumeDepositAckLocked folds one replica persistence confirmation
// into the durable-tier repair state. Callers hold n.mu, gate on
// inboxOn, count CInboxDepositAck and kickRetry after unlocking.
func (n *Node) consumeDepositAckLocked(pub int32, seq uint32, target int32) {
	// The ack echoes the deposit's origin identity; for a topic hand-off
	// the local repair state is keyed by this node's repair seq instead.
	aseq, known := seq, pub == int32(n.id)
	if !known {
		aseq, known = n.tpOrigin[msgID{pub, seq}]
	}
	if !known {
		return
	}
	if st := n.pubs[aseq]; st != nil {
		if ds := st.dep[overlay.PeerID(target)]; ds != nil && !ds.acked {
			ds.acked = true
			n.resolveAckLocked(aseq)
		}
	}
}

// consumeTopicPubAckLocked marks rendezvous member from's acceptance of
// hand-off seq and resolves eagerly when the whole current set acked.
// Callers hold n.mu (publisher role already verified), count
// CAckReceived and kickRetry after unlocking.
func (n *Node) consumeTopicPubAckLocked(from overlay.PeerID, seq uint32, now time.Time) {
	tp := n.tpubs[seq]
	if tp == nil {
		return
	}
	tp.acked[from] = true
	// Resolve eagerly so nextRepairAt can drop the entry.
	set := n.topicRendezvousLocked(tp.topic, now)
	all := len(set) > 0
	for _, rep := range set {
		if !tp.acked[rep] {
			all = false
			break
		}
	}
	if all {
		delete(n.tpubs, seq)
		n.cfg.Obs.TraceEvent("topic_pub_resolved", int32(n.id), seq)
	}
}
