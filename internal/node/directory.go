package node

import (
	"sync"

	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/selectcore"
)

// directory is the cluster-shared registry of ring positions and
// membership. It stands in for the converged position knowledge every
// peer of a running SELECT deployment has accumulated (the same realism
// level as the frozen overlay the runtime used to read): a node writes
// through its own entry when it joins, leaves, or moves its identifier,
// and the IDAnnounce/Leave wire messages are the protocol actions that
// would carry those writes peer-to-peer (DESIGN.md §8).
//
// Since the successor-list work (DESIGN.md §9) its ring role is
// bootstrap-only: ringNeighbors seeds the initial members' views in
// Cluster.Start and nothing else — live ring repair splices from each
// node's own successor/predecessor lists.
type directory struct {
	mu     sync.RWMutex
	pos    []ring.ID
	member []bool
}

func newDirectory(n int) *directory {
	return &directory{pos: make([]ring.ID, n), member: make([]bool, n)}
}

func (d *directory) position(p overlay.PeerID) ring.ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pos[p]
}

func (d *directory) setPosition(p overlay.PeerID, id ring.ID) {
	d.mu.Lock()
	d.pos[p] = id
	d.mu.Unlock()
}

func (d *directory) isMember(p overlay.PeerID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.member[p]
}

func (d *directory) setMember(p overlay.PeerID, m bool) {
	d.mu.Lock()
	d.member[p] = m
	d.mu.Unlock()
}

func (d *directory) memberCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, m := range d.member {
		if m {
			n++
		}
	}
	return n
}

// ringMembers snapshots the current members with their positions — the
// input the durable tier's replica-placement rule consumes
// (selectcore.InboxReplicas).
func (d *directory) ringMembers() []selectcore.RingMember {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]selectcore.RingMember, 0, len(d.pos))
	for q, m := range d.member {
		if m {
			out = append(out, selectcore.RingMember{ID: overlay.PeerID(q), Pos: d.pos[q]})
		}
	}
	return out
}

// memberPos returns p's directory position and whether p is currently a
// member — the admission-record lookup the hardened ring view
// cross-checks hearsay position claims against (DESIGN.md §14).
func (d *directory) memberPos(p overlay.PeerID) (ring.ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if p < 0 || int(p) >= len(d.member) || !d.member[p] {
		return 0, false
	}
	return d.pos[p], true
}

// firstMember returns the lowest-id member other than p (-1 when the
// ring is empty) — the deterministic contact of last resort for a joiner
// with no member friends.
func (d *directory) firstMember(p overlay.PeerID) overlay.PeerID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for q, m := range d.member {
		if m && overlay.PeerID(q) != p {
			return overlay.PeerID(q)
		}
	}
	return -1
}

// ringNeighbors returns p's nearest member in the clockwise (succ) and
// counter-clockwise (pred) direction — the short-range links. A zero arc
// (position collision) counts as a full loop so colliding peers still
// link somewhere. Bootstrap-only: the live runtime derives these from
// successor lists (ringlist.go); only Cluster.Start may call this.
func (d *directory) ringNeighbors(p overlay.PeerID) (succ, pred overlay.PeerID) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	succ, pred = -1, -1
	my := d.pos[p]
	ds, dp := 2.0, 2.0
	for q, m := range d.member {
		if !m || overlay.PeerID(q) == p {
			continue
		}
		cw := ring.Clockwise(my, d.pos[q])
		if cw <= 0 {
			cw += 1
		}
		if cw < ds {
			ds, succ = cw, overlay.PeerID(q)
		}
		ccw := ring.Clockwise(d.pos[q], my)
		if ccw <= 0 {
			ccw += 1
		}
		if ccw < dp {
			dp, pred = ccw, overlay.PeerID(q)
		}
	}
	return succ, pred
}
