package node

import (
	"testing"
	"time"

	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/wire"
)

// TestAckBatchedDeliveryResolves is ack conservation end to end: with
// coalescing forced on (switchboard would stay plain under Auto), every
// subscriber ack must still reach the publisher's repair engine — each
// publication resolves, none retries forever or dead-letters.
func TestAckBatchedDeliveryResolves(t *testing.T) {
	met := obs.New()
	g, c := buildCluster(t, 150, 5, Options{
		AckBatch: AckBatchOn, RetryBase: 20 * time.Millisecond, Obs: met,
	})
	defer shutdown(t, c)
	pub := topDegree(g)
	subs := g.Neighbors(pub)
	seq := publishSize(c.Nodes[pub], 1000)
	if n, ok := await(c, pub, seq, subs, 10*time.Second); !ok {
		t.Fatalf("only %d/%d subscribers delivered", n, len(subs))
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Nodes[pub].PendingRepairs() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d publications never resolved under ack batching",
				c.Nodes[pub].PendingRepairs())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dl := len(c.Nodes[pub].DeadLetters()); dl != 0 {
		t.Fatalf("%d dead letters under ack batching", dl)
	}
	batches, coalesced := met.Get(obs.CAckBatchSent), met.Get(obs.CAckCoalesced)
	if batches == 0 || coalesced == 0 {
		t.Fatalf("coalescing path never ran: batches=%d coalesced=%d", batches, coalesced)
	}
	if batches > coalesced {
		t.Fatalf("more batch frames (%d) than buffered acks (%d)", batches, coalesced)
	}
	if acks := met.Get(obs.CAckReceived); acks < int64(len(subs)) {
		t.Fatalf("publisher consumed %d acks, want >= %d", acks, len(subs))
	}
}

// TestShardCountEquivalentDeliverySetsBatched is the batched-mode twin
// of TestShardCountEquivalentDeliverySets: coalescing must not make the
// delivery set depend on how many event loops drain it.
func TestShardCountEquivalentDeliverySetsBatched(t *testing.T) {
	deliveries := func(shards int) map[overlay.PeerID]bool {
		g, c := buildCluster(t, 150, 5, Options{Shards: shards, AckBatch: AckBatchOn})
		defer shutdown(t, c)
		pub := topDegree(g)
		subs := g.Neighbors(pub)
		seq := publishSize(c.Nodes[pub], 1000)
		if n, ok := await(c, pub, seq, subs, 10*time.Second); !ok {
			t.Fatalf("shards=%d: only %d/%d subscribers delivered", shards, n, len(subs))
		}
		got := make(map[overlay.PeerID]bool)
		for _, s := range subs {
			if _, ok := c.Nodes[s].Received(pub, seq); ok {
				got[s] = true
			}
		}
		return got
	}
	one := deliveries(1)
	eight := deliveries(8)
	if len(one) != len(eight) {
		t.Fatalf("delivery sets differ: S=1 got %d, S=8 got %d", len(one), len(eight))
	}
	for s := range one {
		if !eight[s] {
			t.Fatalf("subscriber %d delivered at S=1 but not at S=8", s)
		}
	}
}

// TestAckBatchRelayAndTTLDrop drives handleAckBatch directly: an
// expired routed entry is dropped (and counted — the plain path's one
// silent spot), a live one relays hop by hop to its destination.
func TestAckBatchRelayAndTTLDrop(t *testing.T) {
	met := obs.New()
	_, c := buildCluster(t, 50, 7, Options{AckBatch: AckBatchOn, Obs: met})
	defer shutdown(t, c)
	relay := c.Nodes[1]
	relay.handleAckBatch(&wire.Message{
		Kind: wire.KindAckBatch, From: 2, To: 1,
		Acks: []wire.AckEntry{{Kind: wire.KindAck, From: 2, Dest: 0, Pub: 0, Seq: 9, TTL: 0}},
	})
	if got := met.Get(obs.CAckTTLDrop); got != 1 {
		t.Fatalf("expired relay entry: ack_ttl_drop = %d, want 1", got)
	}
	relay.handleAckBatch(&wire.Message{
		Kind: wire.KindAckBatch, From: 2, To: 1,
		Acks: []wire.AckEntry{{Kind: wire.KindAck, From: 2, Dest: 0, Pub: 0, Seq: 9, TTL: 8}},
	})
	dst := c.Nodes[0]
	deadline := time.Now().Add(5 * time.Second)
	for {
		dst.mu.Lock()
		consumed := dst.acked[msgID{0, 9}][2]
		dst.mu.Unlock()
		if consumed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relayed batch entry never reached its destination")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHeartbeatPiggybackSuppressesBusyLink pins the suppression cycle:
// a link with traffic inside the interval skips its ping (one synthetic
// online observation instead) for at most hbSuppressMax consecutive
// rounds, then gets a real ping — pongs carry the ring anti-entropy
// lists that data frames do not.
func TestHeartbeatPiggybackSuppressesBusyLink(t *testing.T) {
	met := obs.New()
	_, c := buildCluster(t, 30, 3, Options{HeartbeatEvery: time.Hour, Obs: met})
	defer shutdown(t, c)
	nd := c.Nodes[0]
	// Silence every other node so no pong mutates pendingPings between a
	// manual sweep and its assertion.
	for _, other := range c.Nodes[1:] {
		other.paused.Store(true)
	}
	links := nd.linksSnapshot()
	if len(links) == 0 {
		t.Fatal("bootstrap node has no links")
	}
	q := links[0]
	for round := 1; round <= hbSuppressMax+1; round++ {
		nd.mu.Lock()
		nd.lastHeard[q] = time.Now()
		nd.mu.Unlock()
		nd.sendHeartbeats()
		nd.mu.Lock()
		pinged := false
		for _, tgt := range nd.pendingPings {
			if tgt == q {
				pinged = true
			}
		}
		miss := nd.miss[q]
		nd.mu.Unlock()
		if round <= hbSuppressMax {
			if pinged {
				t.Fatalf("round %d: busy link %d pinged despite fresh traffic", round, q)
			}
			if miss != 0 {
				t.Fatalf("round %d: suppressed link accumulated %d misses", round, miss)
			}
		} else if !pinged {
			t.Fatalf("round %d: anti-entropy floor should have pinged %d", round, q)
		}
	}
	if got := met.Get(obs.CHeartbeatSuppress); got != hbSuppressMax {
		t.Fatalf("heartbeat_suppressed = %d, want %d", got, hbSuppressMax)
	}
}

// TestHeartbeatIdleDetectionLatencyUnchanged is the acceptance pin for
// failure-detection latency: on a link with NO piggybacked traffic the
// suppression-on and suppression-off sweeps must fold the identical miss
// streak — a dead peer is suspected after exactly as many rounds.
func TestHeartbeatIdleDetectionLatencyUnchanged(t *testing.T) {
	const rounds = 3
	streak := func(noPiggy bool) int {
		met := obs.New()
		_, c := buildCluster(t, 30, 3, Options{
			HeartbeatEvery: time.Hour, NoHeartbeatPiggyback: noPiggy, Obs: met,
		})
		defer shutdown(t, c)
		nd := c.Nodes[0]
		for _, other := range c.Nodes[1:] {
			other.paused.Store(true) // dead: consumes pings, never pongs
		}
		q := nd.linksSnapshot()[0]
		for i := 0; i < rounds; i++ {
			nd.sendHeartbeats()
		}
		if got := met.Get(obs.CHeartbeatSuppress); got != 0 {
			t.Fatalf("idle link suppressed %d times", got)
		}
		nd.mu.Lock()
		defer nd.mu.Unlock()
		return nd.miss[q]
	}
	on, off := streak(false), streak(true)
	if on != off {
		t.Fatalf("idle-link miss streak differs: piggyback-on %d, off %d", on, off)
	}
	if on != rounds-1 {
		t.Fatalf("miss streak = %d after %d rounds, want %d", on, rounds, rounds-1)
	}
}

// TestNextPeriodicPreservesPhase pins the stall-skipping deadline math:
// however late the shard ran, the next fire stays on the entry's
// original splitmix64 phase (at + k*every for integral k).
func TestNextPeriodicPreservesPhase(t *testing.T) {
	base := time.Unix(1000, 0)
	every := 50 * time.Millisecond
	cases := []struct {
		late time.Duration
		want time.Duration // next deadline, relative to base
	}{
		{0, every},                     // on time
		{10 * time.Millisecond, every}, // a little behind, next period still future
		{every, 2 * every},             // exactly one period late
		{365 * time.Millisecond, 400 * time.Millisecond}, // 7.3 periods of stall -> period 8
	}
	for _, tc := range cases {
		got := nextPeriodic(base, base.Add(tc.late), every)
		if want := base.Add(tc.want); !got.Equal(want) {
			t.Errorf("nextPeriodic(+%v) = base+%v, want base+%v", tc.late, got.Sub(base), tc.want)
		}
		if phase := got.Sub(base) % every; phase != 0 {
			t.Errorf("nextPeriodic(+%v) drifted off phase by %v", tc.late, phase)
		}
	}
}
