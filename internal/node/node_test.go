package node

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/socialgraph"
	"selectps/internal/transport"
)

// publishSize publishes a body-less modeled-size publication on n's own
// user topic — the Topic-API replacement for the removed PublishSize
// shim (own-user-topic publishes cannot fail).
func publishSize(n *Node, size uint32) uint32 {
	seq, _ := n.Topic(UserTopic(n.ID())).Publish(nil, WithSize(size))
	return seq
}

// publishPri is the Topic-API replacement for the removed
// PublishPriority shim.
func publishPri(n *Node, payload []byte, pri uint8) uint32 {
	seq, _ := n.Topic(UserTopic(n.ID())).Publish(payload, WithPriority(pri))
	return seq
}

// buildCluster constructs a SELECT overlay over a small graph and starts a
// live in-memory cluster on it. The caller fills only the tuning fields of
// opts; graph, overlay, transport and seed are provided here.
func buildCluster(t *testing.T, n int, seed int64, opts Options) (*socialgraph.Graph, *Cluster) {
	t.Helper()
	g := datasets.Facebook.Generate(n, seed)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	opts.Graph = g
	opts.Overlay = ov
	opts.Transport = transport.NewSwitchboard(n, 1024)
	opts.Seed = seed
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, c
}

func shutdown(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// await wraps AwaitDelivery with a timeout context.
func await(c *Cluster, pub overlay.PeerID, seq uint32, subs []overlay.PeerID, d time.Duration) (int, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return c.AwaitDelivery(ctx, pub, seq, subs)
}

func topDegree(g *socialgraph.Graph) overlay.PeerID {
	var pub overlay.PeerID
	for p := overlay.PeerID(0); p < overlay.PeerID(g.NumNodes()); p++ {
		if g.Degree(p) > g.Degree(pub) {
			pub = p
		}
	}
	return pub
}

func TestPublishReachesAllSubscribers(t *testing.T) {
	g, c := buildCluster(t, 150, 1, Options{})
	defer shutdown(t, c)
	pub := topDegree(g)
	seq := publishSize(c.Nodes[pub], 1_200_000)
	subs := g.Neighbors(pub)
	delivered, ok := await(c, pub, seq, subs, 5*time.Second)
	if !ok {
		t.Fatalf("only %d/%d subscribers delivered", delivered, len(subs))
	}
}

func TestPublishPayloadAndHandler(t *testing.T) {
	// The api_redesign satellite end to end: Publish carries real bytes,
	// OnDeliver pushes them to every subscriber without polling.
	g, c := buildCluster(t, 100, 13, Options{})
	defer shutdown(t, c)
	pub := topDegree(g)
	subs := g.Neighbors(pub)
	body := []byte("hello from the publisher: payload bytes travel end to end")

	var mu sync.Mutex
	got := make(map[overlay.PeerID][]byte)
	calls := 0
	for _, s := range subs {
		s := s
		c.Nodes[s].OnDeliver(func(d Delivery) {
			mu.Lock()
			got[s] = d.Payload
			calls++
			mu.Unlock()
		})
	}
	seq, _ := c.Nodes[pub].Topic(UserTopic(pub)).Publish(body)
	if _, ok := await(c, pub, seq, subs, 5*time.Second); !ok {
		t.Fatal("delivery incomplete")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != len(subs) {
		t.Fatalf("handler called %d times, want %d (once per first delivery)", calls, len(subs))
	}
	for _, s := range subs {
		if !bytes.Equal(got[s], body) {
			t.Fatalf("subscriber %d payload = %q, want %q", s, got[s], body)
		}
	}
}

func TestPublishAcksFlowBack(t *testing.T) {
	g, c := buildCluster(t, 120, 2, Options{})
	defer shutdown(t, c)
	var pub overlay.PeerID = -1
	for p := overlay.PeerID(0); p < 120; p++ {
		if g.Degree(p) >= 5 {
			pub = p
			break
		}
	}
	if pub < 0 {
		t.Skip("no publisher with enough friends")
	}
	seq := publishSize(c.Nodes[pub], 1000)
	subs := g.Neighbors(pub)
	if _, ok := await(c, pub, seq, subs, 5*time.Second); !ok {
		t.Fatal("delivery incomplete")
	}
	// Acks travel back to the publisher; allow a moment for the reverse
	// paths.
	deadline := time.Now().Add(5 * time.Second)
	for c.Nodes[pub].Acked(seq) < len(subs) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := c.Nodes[pub].Acked(seq); got < len(subs)*9/10 {
		t.Errorf("acks received %d of %d", got, len(subs))
	}
}

func TestMultiplePublishersConcurrently(t *testing.T) {
	g, c := buildCluster(t, 150, 3, Options{})
	defer shutdown(t, c)
	type pubRec struct {
		p   overlay.PeerID
		seq uint32
	}
	var pubs []pubRec
	for p := overlay.PeerID(0); p < 150 && len(pubs) < 8; p += 19 {
		if g.Degree(p) == 0 {
			continue
		}
		pubs = append(pubs, pubRec{p, publishSize(c.Nodes[p], 500)})
	}
	for _, pr := range pubs {
		subs := g.Neighbors(pr.p)
		if delivered, ok := await(c, pr.p, pr.seq, subs, 5*time.Second); !ok {
			t.Fatalf("publisher %d: %d/%d delivered", pr.p, delivered, len(subs))
		}
	}
}

func TestHopCountsAreSmall(t *testing.T) {
	g, c := buildCluster(t, 200, 4, Options{})
	defer shutdown(t, c)
	pub := topDegree(g)
	seq := publishSize(c.Nodes[pub], 100)
	subs := g.Neighbors(pub)
	if _, ok := await(c, pub, seq, subs, 5*time.Second); !ok {
		t.Fatal("delivery incomplete")
	}
	total, count := 0, 0
	for _, s := range subs {
		if h, ok := c.Nodes[s].Received(pub, seq); ok {
			total += int(h)
			count++
		}
	}
	if avg := float64(total) / float64(count); avg > 4 {
		t.Errorf("avg live hops %.2f too high", avg)
	}
}

func TestGossipExchangeFillsLookahead(t *testing.T) {
	g, c := buildCluster(t, 80, 5, Options{GossipEvery: 5 * time.Millisecond})
	defer shutdown(t, c)
	deadline := time.Now().Add(5 * time.Second)
	done := 0
	for time.Now().Before(deadline) {
		done = 0
		for _, n := range c.Nodes {
			if n.Exchanges() > 0 {
				done++
			}
		}
		if done > 60 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if done <= 60 {
		t.Fatalf("only %d/80 nodes completed a gossip exchange", done)
	}
	// Lookahead caches must hold actual routing tables of the partner.
	checked := 0
	for _, n := range c.Nodes {
		for _, f := range g.Neighbors(n.ID()) {
			la := n.Lookahead(f)
			if len(la) == 0 {
				continue
			}
			checked++
			break
		}
	}
	if checked == 0 {
		t.Error("no lookahead entries cached")
	}
}

func TestHeartbeatsBuildCMA(t *testing.T) {
	_, c := buildCluster(t, 60, 6, Options{HeartbeatEvery: 25 * time.Millisecond})
	defer shutdown(t, c)
	time.Sleep(400 * time.Millisecond)
	// All nodes alive: availability estimates should be high for probed
	// links.
	probed, lowAvail := 0, 0
	for _, n := range c.Nodes {
		for _, q := range n.Links() {
			// value 1 could mean "never probed"; count explicitly probed
			// links via the cma map, reading under the node's mutex.
			n.mu.Lock()
			cma := n.cma[q]
			samples, value := 0, 0.0
			if cma != nil {
				samples, value = cma.Samples(), cma.Value()
			}
			n.mu.Unlock()
			if samples == 0 {
				continue
			}
			probed++
			if value < 0.5 {
				lowAvail++
			}
		}
	}
	if probed == 0 {
		t.Fatal("no links probed")
	}
	if lowAvail > probed/10 {
		t.Errorf("%d of %d probed links look unavailable in an all-alive cluster", lowAvail, probed)
	}
}

func TestExchangeMutualCountMatchesGraph(t *testing.T) {
	// countMutualSorted must agree with socialgraph.CommonNeighbors.
	g := datasets.Facebook.Generate(100, 7)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		u, v, _ := g.RandomEdge(rng)
		want := g.CommonNeighbors(u, v)
		got := countMutualSorted(g.Neighbors(u), g.Neighbors(v))
		if got != want {
			t.Fatalf("mutual(%d,%d) = %d, want %d", u, v, got, want)
		}
	}
}

func TestClusterOverTCP(t *testing.T) {
	const n = 40
	g := datasets.Facebook.Generate(n, 9)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := transport.NewTCP(n, 256)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(Options{Graph: g, Overlay: ov, Transport: tr, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, c)
	pub := topDegree(g)
	seq := publishSize(c.Nodes[pub], 1_200_000)
	subs := g.Neighbors(pub)
	delivered, ok := await(c, pub, seq, subs, 10*time.Second)
	if !ok {
		t.Fatalf("TCP cluster delivered %d/%d", delivered, len(subs))
	}
}

func TestLatencyAwareSwitchboard(t *testing.T) {
	// Deliveries still complete when the transport injects latency.
	const n = 60
	g := datasets.Facebook.Generate(n, 10)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewSwitchboard(n, 1024)
	tr.Latency = func(from, to int32) time.Duration { return time.Millisecond }
	c, err := Start(Options{Graph: g, Overlay: ov, Transport: tr, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, c)
	pub := topDegree(g)
	seq := publishSize(c.Nodes[pub], 100)
	if _, ok := await(c, pub, seq, g.Neighbors(pub), 10*time.Second); !ok {
		t.Fatal("latency cluster delivery incomplete")
	}
}

func TestLiveChurnRecovery(t *testing.T) {
	// Pause a set of non-subscriber peers (potential relays), let
	// heartbeats learn their unavailability, and verify that the node's
	// own repair engine — no manual retries — delivers to every online
	// subscriber.
	g, c := buildCluster(t, 150, 11, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    100,
	})
	defer shutdown(t, c)
	pub := topDegree(g)
	subs := g.Neighbors(pub)
	isSub := make(map[overlay.PeerID]bool, len(subs))
	for _, s := range subs {
		isSub[s] = true
	}
	// Pause ~20% of peers that are neither publisher nor subscribers.
	paused := 0
	for p := overlay.PeerID(0); p < 150 && paused < 30; p += 5 {
		if p == pub || isSub[p] {
			continue
		}
		c.Nodes[p].Pause()
		paused++
	}
	// Give heartbeats time to mark the paused peers dead.
	time.Sleep(150 * time.Millisecond)

	seq := publishSize(c.Nodes[pub], 1000)
	delivered, ok := await(c, pub, seq, subs, 8*time.Second)
	if !ok {
		t.Fatalf("only %d/%d subscribers delivered under churn", delivered, len(subs))
	}
}

func TestPausedNodeDropsEverything(t *testing.T) {
	g, c := buildCluster(t, 60, 12, Options{
		RetryBase:   10 * time.Millisecond,
		RetryBudget: 100,
	})
	defer shutdown(t, c)
	var pub overlay.PeerID = -1
	for p := overlay.PeerID(0); p < 60; p++ {
		if g.Degree(p) >= 3 {
			pub = p
			break
		}
	}
	if pub < 0 {
		t.Skip("no publisher")
	}
	victim := g.Neighbors(pub)[0]
	c.Nodes[victim].Pause()
	seq := publishSize(c.Nodes[pub], 100)
	time.Sleep(100 * time.Millisecond)
	if _, ok := c.Nodes[victim].Received(pub, seq); ok {
		t.Error("paused subscriber received a publication")
	}
	c.Nodes[victim].Resume()
	// After resume, the publisher's own repair engine reaches it — the
	// harness just waits.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := c.Nodes[victim].Received(pub, seq); ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("resumed subscriber never received the publication")
}
