package node

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"time"

	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/selectcore"
	"selectps/internal/wire"
)

// This file is the named-topic pub/sub tier (DESIGN.md §13): hashtags,
// group channels and pages whose subscribers are not social friends.
//
//   - placement: a topic hashes to a ring position; the first R live
//     clockwise successors (selectcore.Rendezvous — the PR-7 successor
//     geometry) host its subscriber registry. Index 0 is the primary,
//     the rest are standbys.
//   - subscription: subscribers register at every member of the
//     rendezvous set with a lease (TopicSub, refreshed at lease/2 on
//     the maintain tick; registry entries expire when refreshes stop).
//   - publication: the publisher hands the message to the rendezvous
//     set (TopicPub with Target = -1, retried on the repair wheel until
//     every live member acked acceptance). The primary fans it down a
//     bounded-fanout dissemination tree built from the registry
//     (selectcore.TreeBranches; each tree copy carries its subtree in
//     RoutingTable); every accepting replica also registers the
//     publication in the repair engine, so unacked subscribers get
//     direct retries and — via the PR-7 inbox — durable deposits when
//     they are offline.
//   - re-homing: membership changes and accrual-detector verdicts
//     (deadUntil) shift the rendezvous set; subscribers re-register the
//     moment their computed set changes, a peer that lost ownership
//     hands its registry off (TopicHandoff), and publishers recompute
//     the set on every retry. Duplicate fan-out waves from standby
//     acceptance are absorbed by the (publisher, seq) dedup window.

// Errors returned by the topic-first API.
var (
	// ErrForeignUserTopic is returned when publishing to another peer's
	// implicit user topic: only the owner posts to its own feed.
	ErrForeignUserTopic = errors.New("node: cannot publish to another user's feed topic")
	// ErrNotFriend is returned when subscribing to a user topic whose
	// owner is not a social friend — user feeds disseminate along the
	// friend graph only; use a named topic for non-friend fan-out.
	ErrNotFriend = errors.New("node: user-feed topics are only subscribable by friends")
	// ErrTopicRepairOff is returned when the topic tier is used without
	// the repair scheduler (RetryBase = 0): rendezvous hand-off and
	// lease refresh both ride it.
	ErrTopicRepairOff = errors.New("node: topic pub/sub requires the repair scheduler (RetryBase > 0)")
)

// userTopicPrefix marks the implicit per-user feed topics.
const userTopicPrefix = "~"

// UserTopic names peer p's implicit feed topic: every friend-feed
// publication is a publication on this topic, so one delivery path (and
// one handler signature) serves friend feeds and named topics alike.
func UserTopic(p overlay.PeerID) string {
	return userTopicPrefix + strconv.Itoa(int(p))
}

// parseUserTopic reports whether name is an implicit user topic and
// whose.
func parseUserTopic(name string) (overlay.PeerID, bool) {
	if !strings.HasPrefix(name, userTopicPrefix) {
		return -1, false
	}
	v, err := strconv.Atoi(name[len(userTopicPrefix):])
	if err != nil || v < 0 {
		return -1, false
	}
	return overlay.PeerID(v), true
}

// TopicHandle is the topic-first API surface: a cheap, stateless handle
// on one named topic as seen from one node. Obtain with Node.Topic.
type TopicHandle struct {
	n    *Node
	name string
}

// Topic returns a handle on the named topic. User topics ("~<id>",
// UserTopic) address the implicit per-user feed; any other name is a
// rendezvous-placed named topic (hashtag, group, page).
func (n *Node) Topic(name string) *TopicHandle {
	return &TopicHandle{n: n, name: name}
}

// Name returns the topic's name.
func (t *TopicHandle) Name() string { return t.name }

// Subscription is one node's registration on one topic. At most one
// subscription exists per (node, topic); a second Subscribe returns the
// same Subscription.
type Subscription struct {
	n     *Node
	topic string
}

// Topic returns the subscribed topic's name.
func (s *Subscription) Topic() string { return s.topic }

// OnDeliver registers the per-subscription push handler, called once
// per first-time delivery on this topic, outside the node lock. Topics
// without a subscription handler fall back to the node-level handler.
func (s *Subscription) OnDeliver(fn DeliverFunc) {
	s.n.mu.Lock()
	if ts := s.n.subTopics[s.topic]; ts != nil {
		ts.handler = fn
	}
	s.n.mu.Unlock()
}

// topicSub is the subscriber-side state for one topic.
type topicSub struct {
	sub      *Subscription
	handler  DeliverFunc
	implicit bool // user topic: delivered by the friend graph, no rendezvous
	acked    bool // at least one TopicSubAck arrived (Subscribe unblocks)
	ackCh    chan struct{}
	lastSub  time.Time        // last lease-refresh round
	set      []overlay.PeerID // rendezvous set at the last round (re-home detection)
}

// topicPubState is the publisher-side hand-off record of one topic
// publication: retried on the repair wheel until every live member of
// the (re-computed per round) rendezvous set confirmed acceptance —
// all-member acking is what makes a mid-fan-out rendezvous death
// lossless, because a surviving acked standby keeps repairing.
type topicPubState struct {
	topic   string
	payload []byte
	size    uint32
	pri     uint8
	attempt int
	nextAt  time.Time
	bseed   uint64
	acked   map[overlay.PeerID]bool
}

// Subscribe registers this node on the topic and blocks until a
// rendezvous replica confirms the registration (or ctx expires; the
// registration keeps retrying on the maintain tick either way).
// User-topic subscriptions are implicit — friends already receive the
// feed — and return immediately; non-friends get ErrNotFriend.
func (t *TopicHandle) Subscribe(ctx context.Context) (*Subscription, error) {
	n := t.n
	if owner, ok := parseUserTopic(t.name); ok {
		if owner != n.id && !n.g.HasEdge(n.id, owner) {
			return nil, ErrNotFriend
		}
		n.mu.Lock()
		ts := n.subTopics[t.name]
		if ts == nil {
			ts = &topicSub{sub: &Subscription{n: n, topic: t.name}, implicit: true, acked: true}
			n.subTopics[t.name] = ts
		}
		sub := ts.sub
		n.mu.Unlock()
		return sub, nil
	}
	if !n.repairEnabled() {
		return nil, ErrTopicRepairOff
	}
	now := time.Now()
	n.mu.Lock()
	ts := n.subTopics[t.name]
	if ts == nil {
		ts = &topicSub{sub: &Subscription{n: n, topic: t.name}, ackCh: make(chan struct{})}
		n.subTopics[t.name] = ts
	}
	sub, ackCh, acked := ts.sub, ts.ackCh, ts.acked
	out := n.topicRegisterLocked(t.name, ts, now, nil)
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	if acked {
		return sub, nil
	}
	select {
	case <-ackCh:
		return sub, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Unsubscribe removes the registration: the rendezvous set drops this
// node from the registry, and both the rendezvous peers and this node's
// own inbox replicas purge any journaled deposits still parked for
// (node, topic) — a departed subscriber must not strand journal
// entries it will never claim.
func (s *Subscription) Unsubscribe(ctx context.Context) error {
	_ = ctx
	n := s.n
	n.mu.Lock()
	ts := n.subTopics[s.topic]
	delete(n.subTopics, s.topic)
	if ts == nil || ts.implicit {
		n.mu.Unlock()
		return nil
	}
	seq := n.nextSeq()
	now := time.Now()
	targets := make(map[overlay.PeerID]bool)
	for _, rep := range n.topicRendezvousLocked(s.topic, now) {
		targets[rep] = true
	}
	for _, rep := range selectcore.InboxReplicas(n.id, n.dir.position(n.id), n.dir.ringMembers(), nil, n.cfg.InboxReplicas) {
		targets[rep] = true
	}
	selfToo := targets[n.id]
	delete(targets, n.id)
	if selfToo {
		n.dropTopicRegLocked(s.topic, n.id)
	}
	n.mu.Unlock()
	if selfToo {
		n.purgeTopicJournal(int32(n.id), []byte(s.topic))
	}
	topic := []byte(s.topic)
	for rep := range targets {
		_ = n.tr.Send(int32(rep), &wire.Message{
			Kind: wire.KindTopicUnsub, From: int32(n.id), To: int32(rep),
			Seq: seq, Topic: topic,
		})
	}
	return nil
}

// Publish sends one publication to the topic and returns its sequence
// number. On the node's own user topic it is exactly the friend-feed
// Publish; on a named topic the message is handed to the rendezvous set
// and disseminated down the per-topic tree, with the hand-off retried
// on the repair wheel until every live rendezvous replica accepted.
func (t *TopicHandle) Publish(payload []byte, opts ...PublishOption) (uint32, error) {
	n := t.n
	if owner, ok := parseUserTopic(t.name); ok {
		if owner != n.id {
			return 0, ErrForeignUserTopic
		}
		return n.publishFeed(payload, opts...), nil
	}
	if !n.repairEnabled() {
		return 0, ErrTopicRepairOff
	}
	o := resolvePublishOpts(payload, opts)
	now := time.Now()
	var direct []outMsg
	selfAccept := false
	n.mu.Lock()
	seq := n.nextSeq()
	id := msgID{int32(n.id), seq}
	n.rememberDeliveryLocked(id, 0) // the publisher trivially has its own message
	tp := &topicPubState{
		topic: t.name, payload: payload, size: o.size, pri: o.pri,
		bseed: selectcore.RepairSeed(n.cfg.Seed, int32(n.id), seq),
		acked: make(map[overlay.PeerID]bool),
	}
	tp.nextAt = now.Add(n.backoff().Delay(tp.bseed, 0))
	n.tpubs[seq] = tp
	set := n.topicRendezvousLocked(t.name, now)
	for _, rep := range set {
		if rep == n.id {
			tp.acked[n.id] = true
			selfAccept = true
			continue
		}
		direct = append(direct, outMsg{int32(rep), n.topicPubMsgLocked(seq, tp, rep, -1, nil)})
	}
	n.mu.Unlock()
	n.cfg.Obs.Inc(obs.CPublishSent)
	n.cfg.Obs.TraceEvent("topic_publish", int32(n.id), seq)
	for _, o := range direct {
		_ = n.tr.Send(o.to, o.m)
	}
	if selfAccept {
		n.acceptTopicPub(id, t.name, payload, o.size, o.pri)
	}
	n.kickRetry()
	return seq, nil
}

// topicPubMsgLocked builds one TopicPub copy. target -1 is the
// publisher→rendezvous hand-off; target >= 0 is a dissemination copy
// whose acks flow back to rendezvous peer `target`, with subtree
// carrying the receiver's share of the tree.
func (n *Node) topicPubMsgLocked(seq uint32, tp *topicPubState, to overlay.PeerID, target int32, subtree []int32) *wire.Message {
	return &wire.Message{
		Kind: wire.KindTopicPub, From: int32(n.id), To: int32(to),
		Seq: seq, Publisher: int32(n.id), Target: target,
		Priority: tp.pri, PayloadSize: tp.size, Payload: tp.payload,
		Topic: []byte(tp.topic), RoutingTable: subtree, TTL: n.cfg.TTL,
	}
}

// ---- placement -------------------------------------------------------

// topicLiveLocked returns the liveness filter for rendezvous placement:
// ring members not currently under this node's dead-quarantine — the
// accrual detector's verdict is what re-homes a topic whose rendezvous
// died without the directory noticing yet.
func (n *Node) topicLiveLocked(now time.Time) func(overlay.PeerID) bool {
	return func(q overlay.PeerID) bool {
		t, dead := n.deadUntil[q]
		return !dead || now.After(t)
	}
}

// topicRendezvousLocked computes the topic's current rendezvous set
// from the converged ring positions (R = InboxReplicas deep — the PR-7
// placement rule applied to the topic's hash position).
func (n *Node) topicRendezvousLocked(topic string, now time.Time) []overlay.PeerID {
	return selectcore.Rendezvous(
		selectcore.TopicPos(topic), n.dir.ringMembers(), n.topicLiveLocked(now), n.cfg.InboxReplicas)
}

// TopicRendezvous returns the topic's rendezvous set as this node
// currently computes it (ops/tests surface; the selectcore equivalence
// test pins it against the simulator-side rule).
func (n *Node) TopicRendezvous(topic string) []overlay.PeerID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.topicRendezvousLocked(topic, time.Now())
}

// ---- subscriber side -------------------------------------------------

// topicRegisterLocked stages one registration round for a topic: a
// TopicSub to every rendezvous member (self-registration is applied
// locally). Stamps lastSub and caches the set for re-home detection.
func (n *Node) topicRegisterLocked(topic string, ts *topicSub, now time.Time, out []outMsg) []outMsg {
	set := n.topicRendezvousLocked(topic, now)
	if ts.set != nil && !peersEqual(ts.set, set) {
		n.cfg.Obs.Inc(obs.CTopicRehome)
		n.cfg.Obs.TraceEvent("topic_rehome", int32(n.id), 0)
	}
	ts.set = set
	ts.lastSub = now
	seq := n.nextSeq()
	for _, rep := range set {
		if rep == n.id {
			n.registerTopicSubLocked(topic, n.id, now)
			if !ts.acked {
				ts.acked = true
				close(ts.ackCh)
			}
			continue
		}
		out = append(out, outMsg{int32(rep), &wire.Message{
			Kind: wire.KindTopicSub, From: int32(n.id), To: int32(rep),
			Seq: seq, Topic: []byte(topic),
		}})
	}
	return out
}

// topicMaintain runs on the maintain tick: lease refreshes (immediate
// after a rendezvous-set change), registry expiry, and registry
// hand-off by peers that lost ownership.
func (n *Node) topicMaintain() {
	if !n.repairEnabled() {
		return
	}
	now := time.Now()
	var out []outMsg
	n.mu.Lock()
	// Subscriber role: refresh leases at lease/2, immediately when the
	// set changed or the registration is still unconfirmed.
	for topic, ts := range n.subTopics {
		if ts.implicit {
			continue
		}
		refreshDue := !ts.acked || now.Sub(ts.lastSub) >= n.cfg.TopicLease/2
		if !refreshDue && peersEqual(ts.set, n.topicRendezvousLocked(topic, now)) {
			continue
		}
		out = n.topicRegisterLocked(topic, ts, now, out)
	}
	// Rendezvous role: expire silent registrations, hand off registries
	// this node no longer owns.
	for topic, reg := range n.topicReg {
		for sub, exp := range reg {
			if now.After(exp) {
				delete(reg, sub)
				n.cfg.Obs.Inc(obs.CTopicLeaseExpire)
			}
		}
		if len(reg) == 0 {
			delete(n.topicReg, topic)
			continue
		}
		set := n.topicRendezvousLocked(topic, now)
		if len(set) == 0 {
			continue
		}
		own := false
		for _, rep := range set {
			if rep == n.id {
				own = true
				break
			}
		}
		if own {
			continue
		}
		// Ownership moved (an Algorithm-2 ID move or membership change):
		// hand the registry to the current set and drop it. Hand-off is
		// best-effort — lease refreshes repopulate within a lease anyway.
		subs := make([]int32, 0, len(reg))
		for sub := range reg {
			subs = append(subs, int32(sub))
		}
		seq := n.nextSeq()
		for _, rep := range set {
			out = append(out, outMsg{int32(rep), &wire.Message{
				Kind: wire.KindTopicHandoff, From: int32(n.id), To: int32(rep),
				Seq: seq, Topic: []byte(topic), RoutingTable: subs,
			}})
		}
		delete(n.topicReg, topic)
		n.cfg.Obs.Inc(obs.CTopicHandoff)
		n.cfg.Obs.TraceEvent("topic_handoff", int32(n.id), seq)
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
}

// ---- rendezvous side -------------------------------------------------

// registerTopicSubLocked records (or refreshes) one subscriber lease.
func (n *Node) registerTopicSubLocked(topic string, sub overlay.PeerID, now time.Time) {
	reg := n.topicReg[topic]
	if reg == nil {
		reg = make(map[overlay.PeerID]time.Time)
		n.topicReg[topic] = reg
	}
	reg[sub] = now.Add(n.cfg.TopicLease)
}

func (n *Node) dropTopicRegLocked(topic string, sub overlay.PeerID) {
	if reg := n.topicReg[topic]; reg != nil {
		delete(reg, sub)
		if len(reg) == 0 {
			delete(n.topicReg, topic)
		}
	}
}

// registrySubsLocked snapshots the topic's live-lease subscribers,
// excluding the origin publisher and this node itself (the rendezvous
// delivers to itself locally, not through the tree).
func (n *Node) registrySubsLocked(topic string, now time.Time, excl int32) []overlay.PeerID {
	reg := n.topicReg[topic]
	if len(reg) == 0 {
		return nil
	}
	subs := make([]overlay.PeerID, 0, len(reg))
	for sub, exp := range reg {
		if sub == n.id || int32(sub) == excl || now.After(exp) {
			continue
		}
		subs = append(subs, sub)
	}
	return subs
}

func (n *Node) handleTopicSub(m *wire.Message) {
	n.cfg.Obs.Inc(obs.CTopicSub)
	n.mu.Lock()
	n.registerTopicSubLocked(string(m.Topic), overlay.PeerID(m.From), time.Now())
	n.mu.Unlock()
	_ = n.tr.Send(m.From, &wire.Message{
		Kind: wire.KindTopicSubAck, From: int32(n.id), To: m.From,
		Seq: m.Seq, Topic: m.Topic,
	})
}

func (n *Node) handleTopicSubAck(m *wire.Message) {
	n.mu.Lock()
	if ts := n.subTopics[string(m.Topic)]; ts != nil && !ts.implicit && !ts.acked {
		ts.acked = true
		close(ts.ackCh)
	}
	n.mu.Unlock()
}

func (n *Node) handleTopicUnsub(m *wire.Message) {
	n.cfg.Obs.Inc(obs.CTopicUnsub)
	topic := string(m.Topic)
	target := overlay.PeerID(m.From)
	n.mu.Lock()
	n.dropTopicRegLocked(topic, target)
	// Cancel repair still owed to the departed subscriber: publications
	// retrying toward it must neither keep re-sending nor deposit fresh
	// journal entries after the purge below.
	for seq, st := range n.pubs {
		if st.topic != topic {
			continue
		}
		for i, s := range st.subs {
			if s == target {
				st.subs = append(st.subs[:i], st.subs[i+1:]...)
				delete(st.dep, target)
				n.resolveAckLocked(seq)
				break
			}
		}
	}
	// An outstanding replay of the departed topic is cancelled; the pump
	// moves on to whatever the purge below leaves behind.
	var out []outMsg
	if rs := n.replay[target]; rs != nil && rs.hasOut && string(rs.outstanding.Topic) == topic {
		rs.hasOut = false
	}
	n.mu.Unlock()
	n.purgeTopicJournal(m.From, m.Topic)
	n.mu.Lock()
	if rs := n.replay[target]; rs != nil && !rs.hasOut {
		out = n.pumpReplayLocked(target, time.Now(), out)
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
}

// purgeTopicJournal drops this replica's journaled deposits for
// (target, topic) — the durable half of the unsubscribe drain.
func (n *Node) purgeTopicJournal(target int32, topic []byte) {
	if !n.inboxOn() {
		return
	}
	dropped, err := n.sh.ibx.PurgeTopic(int32(n.id), target, topic)
	if err != nil {
		n.cfg.Obs.TraceEvent("inbox_journal_err", int32(n.id), uint32(target))
		return
	}
	n.cfg.Obs.Addn(obs.CTopicPurged, int64(dropped))
}

func (n *Node) handleTopicHandoff(m *wire.Message) {
	now := time.Now()
	n.mu.Lock()
	topic := string(m.Topic)
	for _, sub := range m.RoutingTable {
		if overlay.PeerID(sub) == n.id {
			continue
		}
		// Adopt with a fresh lease; the subscriber's own refresh corrects
		// the expiry within a lease period.
		n.registerTopicSubLocked(topic, overlay.PeerID(sub), now)
	}
	n.mu.Unlock()
}

// handleTopicPub dispatches one TopicPub copy: Target < 0 is the
// publisher→rendezvous hand-off, Target >= 0 a dissemination copy for
// this subscriber (with its subtree to forward on).
func (n *Node) handleTopicPub(m *wire.Message) {
	if overlay.PeerID(m.To) != n.id {
		return
	}
	if m.Target < 0 {
		origin := msgID{m.Publisher, m.Seq}
		n.acceptTopicPub(origin, string(m.Topic), clonePayload(m.Payload), m.PayloadSize, m.Priority)
		// Ack the hand-off whether fresh or duplicate — the publisher
		// retries until every live rendezvous member confirmed.
		if n.ackBatch {
			n.queueAck(wire.AckEntry{
				Kind: wire.KindTopicPubAck, From: int32(n.id), Dest: m.From,
				Pub: m.Publisher, Seq: m.Seq,
			}, true)
		} else {
			_ = n.tr.Send(m.From, &wire.Message{
				Kind: wire.KindTopicPubAck, From: int32(n.id), To: m.From,
				Seq: m.Seq, Publisher: m.Publisher, Topic: m.Topic,
			})
		}
		return
	}
	n.deliverTopicCopy(m)
}

// clonePayload detaches a payload from the transport's decode buffer
// (acceptTopicPub retains it in repair state past the handler's return).
func clonePayload(p []byte) []byte {
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// acceptTopicPub is the rendezvous accept path: register the
// publication in the repair engine against the current registry and —
// when this node is the set's primary — fan it down the dissemination
// tree. Standbys skip the immediate tree wave and let their repair
// schedule re-send directly to whoever the primary's wave missed;
// subscriber acks (sent to every rendezvous member) settle both.
func (n *Node) acceptTopicPub(origin msgID, topic string, payload []byte, size uint32, pri uint8) {
	if !n.repairEnabled() {
		return
	}
	now := time.Now()
	var direct []outMsg
	var deliver DeliverFunc
	var d Delivery
	n.mu.Lock()
	if _, dup := n.tpOrigin[origin]; dup {
		n.mu.Unlock()
		return
	}
	n.cfg.Obs.Inc(obs.CTopicPubRecv)
	subs := n.registrySubsLocked(topic, now, origin.Publisher)
	rseq := n.nextSeq()
	bseed := selectcore.RepairSeed(n.cfg.Seed, origin.Publisher, origin.Seq)
	st := &pubState{
		subs: subs, payload: payload, size: size, pri: pri,
		bseed: bseed, origin: origin, topic: topic,
	}
	set := n.topicRendezvousLocked(topic, now)
	primary := len(set) > 0 && set[0] == n.id
	delayStep := 0
	if !primary {
		delayStep = 1 // let the primary's wave land first
	}
	st.nextAt = now.Add(n.backoff().Delay(bseed, delayStep))
	n.pubs[rseq] = st
	n.tpOrigin[origin] = rseq
	// Local delivery when the rendezvous itself subscribes (it is not in
	// the tree).
	if ts := n.subTopics[topic]; ts != nil && origin.Publisher != int32(n.id) {
		if n.rememberDeliveryLocked(origin, 0) {
			deliver = ts.handler
			if deliver == nil {
				deliver = n.onDeliver
			}
			d = Delivery{
				Publisher: overlay.PeerID(origin.Publisher), Topic: topic,
				Seq: origin.Seq, Priority: pri, Payload: payload,
			}
			n.cfg.Obs.Inc(obs.CTopicDelivered)
		}
	}
	if primary {
		fanout := n.cfg.TopicFanout
		tp := &topicPubState{topic: topic, payload: payload, size: size, pri: pri}
		for _, branch := range selectcore.TreeBranches(subs, fanout) {
			child := branch[0]
			subtree := peersToInt32s(branch[1:])
			msg := n.topicPubMsgLocked(origin.Seq, tp, child, int32(n.id), subtree)
			msg.Publisher = origin.Publisher
			direct = append(direct, outMsg{int32(child), msg})
		}
		n.cfg.Obs.Addn(obs.CTopicFanout, int64(len(direct)))
	}
	n.mu.Unlock()
	if deliver != nil {
		deliver(d)
	}
	for _, o := range direct {
		_ = n.tr.Send(o.to, o.m)
	}
	n.cfg.Obs.TraceEvent("topic_accept", int32(n.id), origin.Seq)
	n.kickRetry()
}

// deliverTopicCopy is the subscriber path of a dissemination-tree (or
// repair) copy: deliver locally, ack every rendezvous replica, and
// forward the carried subtree with bounded fanout. Forwarding happens
// only on first receipt — later waves stop here and let the rendezvous
// repair engines cover any gap below.
func (n *Node) deliverTopicCopy(m *wire.Message) {
	id := msgID{m.Publisher, m.Seq}
	topic := string(m.Topic)
	now := time.Now()
	var deliver DeliverFunc
	var d Delivery
	var direct []outMsg
	n.mu.Lock()
	fresh := n.rememberDeliveryLocked(id, m.HopCount)
	if fresh {
		if ts := n.subTopics[topic]; ts != nil {
			deliver = ts.handler
			if deliver == nil {
				deliver = n.onDeliver
			}
			d = Delivery{
				Publisher: overlay.PeerID(m.Publisher), Topic: topic,
				Seq: m.Seq, Hops: m.HopCount, Priority: m.Priority,
				Payload: append([]byte(nil), m.Payload...),
			}
			n.cfg.Obs.Inc(obs.CTopicDelivered)
			n.cfg.Obs.ObserveHops(float64(m.HopCount))
			n.cfg.Obs.TraceEvent("topic_deliver", int32(n.id), m.Seq)
		}
		if len(m.RoutingTable) > 0 {
			tp := &topicPubState{topic: topic, payload: clonePayload(m.Payload), size: m.PayloadSize, pri: m.Priority}
			for _, branch := range selectcore.TreeBranches(int32sToPeers(m.RoutingTable), n.cfg.TopicFanout) {
				child := branch[0]
				msg := n.topicPubMsgLocked(m.Seq, tp, child, m.Target, peersToInt32s(branch[1:]))
				msg.Publisher = m.Publisher
				msg.HopCount = m.HopCount + 1
				direct = append(direct, outMsg{int32(child), msg})
			}
			n.cfg.Obs.Addn(obs.CTopicFanout, int64(len(direct)))
		}
	}
	// Ack every rendezvous member (the repair owners) plus whichever
	// replica stamped this copy — views may diverge during re-homing.
	ackTo := make(map[overlay.PeerID]bool)
	for _, rep := range n.topicRendezvousLocked(topic, now) {
		ackTo[rep] = true
	}
	if m.Target >= 0 {
		ackTo[overlay.PeerID(m.Target)] = true
	}
	delete(ackTo, n.id)
	var ackBatchTo []overlay.PeerID
	for rep := range ackTo {
		if n.ackBatch {
			// Point-to-point acks coalesce (queued outside the lock below).
			ackBatchTo = append(ackBatchTo, rep)
			continue
		}
		direct = append(direct, outMsg{int32(rep), &wire.Message{
			Kind: wire.KindAck, From: int32(n.id), To: int32(rep),
			Seq: m.Seq, Publisher: m.Publisher, TTL: n.cfg.TTL,
		}})
	}
	n.mu.Unlock()
	if !fresh {
		n.cfg.Obs.Inc(obs.CPublishDuplicate)
	}
	if deliver != nil {
		deliver(d)
	}
	for _, o := range direct {
		_ = n.tr.Send(o.to, o.m)
	}
	for _, rep := range ackBatchTo {
		n.queueAck(wire.AckEntry{
			Kind: wire.KindAck, From: int32(n.id), Dest: int32(rep),
			Pub: m.Publisher, Seq: m.Seq, TTL: n.cfg.TTL,
		}, true)
	}
}

// topicRepairLocked runs the publisher-side hand-off rounds inside
// repairTick: re-send the TopicPub to every not-yet-acked member of the
// topic's current rendezvous set, resolving when all live members
// acked and dead-lettering past the budget. Self-accepts are returned
// for the caller to run outside the lock.
type selfAccept struct {
	origin  msgID
	topic   string
	payload []byte
	size    uint32
	pri     uint8
}

func (n *Node) topicRepairLocked(now time.Time, budget int, direct []outMsg, accepts []selfAccept) ([]outMsg, []selfAccept) {
	for seq, tp := range n.tpubs {
		set := n.topicRendezvousLocked(tp.topic, now)
		allAcked := len(set) > 0
		for _, rep := range set {
			if !tp.acked[rep] {
				allAcked = false
				break
			}
		}
		if allAcked {
			delete(n.tpubs, seq)
			n.cfg.Obs.TraceEvent("topic_pub_resolved", int32(n.id), seq)
			continue
		}
		if tp.nextAt.After(now) {
			continue
		}
		if tp.attempt >= budget {
			// A member that answered none of the budget's hand-offs is de
			// facto dead even while the accrual detector still lists it
			// live: if any replica accepted, that replica owns delivery
			// (tree, repair, deposits) and the hand-off is complete. Only a
			// publication NO replica ever accepted dead-letters.
			anyAcked := false
			var missing []overlay.PeerID
			for _, rep := range set {
				if tp.acked[rep] {
					anyAcked = true
				} else {
					missing = append(missing, rep)
				}
			}
			delete(n.tpubs, seq)
			if anyAcked {
				n.cfg.Obs.TraceEvent("topic_pub_resolved", int32(n.id), seq)
				continue
			}
			n.cfg.Obs.Inc(obs.CDeadLetter)
			n.cfg.Obs.TraceEvent("topic_dead_letter", int32(n.id), seq)
			n.deadLetters = append(n.deadLetters, DeadLetter{Seq: seq, Missing: missing, Retries: tp.attempt})
			if len(n.deadLetters) > maxDeadLetters {
				n.deadLetters = n.deadLetters[len(n.deadLetters)-maxDeadLetters:]
			}
			continue
		}
		tp.attempt++
		tp.nextAt = now.Add(n.backoff().Delay(tp.bseed, tp.attempt))
		for _, rep := range set {
			if tp.acked[rep] {
				continue
			}
			if rep == n.id {
				tp.acked[n.id] = true
				accepts = append(accepts, selfAccept{
					origin: msgID{int32(n.id), seq}, topic: tp.topic,
					payload: tp.payload, size: tp.size, pri: tp.pri,
				})
				continue
			}
			n.cfg.Obs.Inc(obs.CRetrySent)
			direct = append(direct, outMsg{int32(rep), n.topicPubMsgLocked(seq, tp, rep, -1, nil)})
		}
	}
	return direct, accepts
}

// handleTopicPubAck marks one rendezvous member's acceptance on the
// publisher.
func (n *Node) handleTopicPubAck(m *wire.Message) {
	if overlay.PeerID(m.To) != n.id || m.Publisher != int32(n.id) {
		return
	}
	now := time.Now()
	n.mu.Lock()
	n.consumeTopicPubAckLocked(overlay.PeerID(m.From), m.Seq, now)
	n.mu.Unlock()
	n.cfg.Obs.Inc(obs.CAckReceived)
	n.kickRetry()
}

// TopicSubscribers reports the topic's registry size at this node
// (rendezvous role; ops/tests surface).
func (n *Node) TopicSubscribers(topic string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.topicReg[topic])
}

// PendingTopicPublishes reports how many topic hand-offs are still
// unresolved on this node (publisher role).
func (n *Node) PendingTopicPublishes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.tpubs)
}

func peersEqual(a, b []overlay.PeerID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
