package node

import (
	"testing"
	"time"

	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/socialgraph"
)

// attackOpts are the protocol periods the adversarial tests run at:
// fast ticks so attack windows and recovery fit in test time.
func attackOpts(hardened bool) (Options, *obs.Metrics) {
	met := obs.New()
	return Options{
		HeartbeatEvery: 20 * time.Millisecond,
		GossipEvery:    20 * time.Millisecond,
		MaintainEvery:  20 * time.Millisecond,
		Hardened:       hardened,
		Obs:            met,
	}, met
}

// cohortFor picks nAtk attackers: the victim's highest-degree graph
// friends first (the strongest position for sybil arc abuse), then any
// other peers.
func cohortFor(g *socialgraph.Graph, victim overlay.PeerID, n, nAtk int) []overlay.PeerID {
	var cohort []overlay.PeerID
	for _, q := range g.Neighbors(victim) {
		if len(cohort) == nAtk {
			return cohort
		}
		cohort = append(cohort, q)
	}
	for p := 0; p < n && len(cohort) < nAtk; p++ {
		q := overlay.PeerID(p)
		if q == victim || containsPeer(cohort, q) {
			continue
		}
		cohort = append(cohort, q)
	}
	return cohort
}

func containsPeer(list []overlay.PeerID, p overlay.PeerID) bool {
	for _, x := range list {
		if x == p {
			return true
		}
	}
	return false
}

func arm(c *Cluster, mode AdversaryMode, victim overlay.PeerID, cohort []overlay.PeerID) {
	for _, a := range cohort {
		c.Nodes[a].SetAdversary(mode, victim, cohort)
	}
}

func disarm(c *Cluster, cohort []overlay.PeerID) {
	for _, a := range cohort {
		c.Nodes[a].SetAdversary(AdvNone, -1, nil)
	}
}

// waitRingConsistent polls until the victim's short links agree with the
// directory again, returning how long it took (ok=false on timeout).
func waitRingConsistent(c *Cluster, p overlay.PeerID, timeout time.Duration) (time.Duration, bool) {
	start := time.Now()
	deadline := start.Add(timeout)
	for time.Now().Before(deadline) {
		if c.RingConsistent(p) {
			return time.Since(start), true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return timeout, false
}

// TestEclipseHardenedRecovers runs an eclipse window against a hardened
// victim and requires the ring to restabilize after the attackers stand
// down: the recovery contract BENCH_PR9 pins at soak scale.
func TestEclipseHardenedRecovers(t *testing.T) {
	const n = 60
	opts, met := attackOpts(true)
	g, c := buildCluster(t, n, 5, opts)
	defer shutdown(t, c)
	victim := topDegree(g)
	cohort := cohortFor(g, victim, n, 4)

	arm(c, AdvEclipse, victim, cohort)
	time.Sleep(2 * time.Second)
	disarm(c, cohort)

	if d, ok := waitRingConsistent(c, victim, 10*time.Second); !ok {
		t.Fatalf("victim ring links did not restabilize within 10s after eclipse window")
	} else {
		t.Logf("restabilized %v after disarm", d)
	}
	if met.Get(obs.CEclipseDisplaced)+met.Get(obs.CPosRejected) == 0 {
		t.Fatalf("hardened victim recorded no displaced/rejected forgeries — attack never landed?")
	}
}

// TestEclipseUnhardenedPoisons is the ablation: without defenses the
// same window must actually corrupt the victim's short-range links —
// otherwise the defense counters above measure nothing.
func TestEclipseUnhardenedPoisons(t *testing.T) {
	const n = 60
	opts, _ := attackOpts(false)
	g, c := buildCluster(t, n, 5, opts)
	defer shutdown(t, c)
	victim := topDegree(g)
	cohort := cohortFor(g, victim, n, 4)

	arm(c, AdvEclipse, victim, cohort)
	poisoned := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		nd := c.Nodes[victim]
		nd.mu.Lock()
		s, p := nd.shortSucc, nd.shortPred
		nd.mu.Unlock()
		if containsPeer(cohort, s) || containsPeer(cohort, p) {
			poisoned = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	disarm(c, cohort)
	if !poisoned {
		t.Fatalf("unhardened victim never adopted an attacker as a short link — eclipse arm is inert")
	}
}

// TestSybilHardenedRateLimits floods a hardened victim with join churn
// and checks the admission window throttles it while the network keeps
// delivering.
func TestSybilHardenedRateLimits(t *testing.T) {
	const n = 60
	opts, met := attackOpts(true)
	g, c := buildCluster(t, n, 5, opts)
	defer shutdown(t, c)
	victim := topDegree(g)
	cohort := cohortFor(g, victim, n, 6)

	arm(c, AdvSybil, victim, cohort)
	time.Sleep(2 * time.Second)
	disarm(c, cohort)

	if met.Get(obs.CSybilRejected) == 0 {
		t.Fatalf("hardened victim admitted every sybil join — rate limit never fired")
	}
	// An honest publication must still get through during recovery.
	var pub overlay.PeerID = -1
	for p := 0; p < n; p++ {
		q := overlay.PeerID(p)
		if q != victim && !containsPeer(cohort, q) && g.Degree(q) > 0 {
			pub = q
			break
		}
	}
	if pub < 0 {
		t.Skip("no honest publisher available")
	}
	var subs []overlay.PeerID
	for _, s := range g.Neighbors(pub) {
		if !containsPeer(cohort, s) {
			subs = append(subs, s)
		}
	}
	seq := publishSize(c.Nodes[pub], 1024)
	if delivered, ok := await(c, pub, seq, subs, 5*time.Second); !ok {
		for _, s := range subs {
			nd := c.Nodes[s]
			nd.mu.Lock()
			got := nd.received[msgID{int32(pub), seq}] > 0
			nd.mu.Unlock()
			t.Logf("sub %d member=%v joined=%v delivered=%v", s, c.dir.isMember(s), nd.Joined(), got)
		}
		t.Logf("dead_letters=%d pub member=%v victim=%d cohort=%v", met.Get(obs.CDeadLetter), c.dir.isMember(pub), victim, cohort)
		t.Fatalf("post-sybil publication reached only %d/%d honest subscribers", delivered, len(subs))
	}
}

// TestLiarHardenedClampsStrength checks the count-sanity clamp fires on
// inflated exchange replies and honest exchanges stay unclamped.
func TestLiarHardenedClampsStrength(t *testing.T) {
	const n = 60
	opts, met := attackOpts(true)
	g, c := buildCluster(t, n, 5, opts)
	defer shutdown(t, c)
	victim := topDegree(g)
	cohort := cohortFor(g, victim, n, 4)

	arm(c, AdvLiar, victim, cohort)
	time.Sleep(2 * time.Second)
	disarm(c, cohort)

	if met.Get(obs.CStrengthClamped) == 0 {
		t.Fatalf("no strength claim was clamped during a liar window")
	}
	_ = g
}

// TestJoinCooldownPerIdentity exercises the hardened re-join cooldown
// directly: one identity re-requesting inside the window is served its
// cached position (no fresh placement) up to joinServeCap times and then
// dropped, a different identity — an honest newcomer arriving during the
// flood — gets a fresh placement immediately, and the cycler earns a
// fresh placement once its cooldown lapses.
func TestJoinCooldownPerIdentity(t *testing.T) {
	n := &Node{cfg: Options{Hardened: true, JoinRateWindow: 100 * time.Millisecond, Obs: obs.New()}}
	base := time.Now()
	sybil, honest := overlay.PeerID(7), overlay.PeerID(9)
	if _, cached, _ := n.cachedJoinLocked(base, sybil); cached {
		t.Fatalf("first admission of an identity must be a fresh placement")
	}
	n.recordJoinLocked(base, sybil, 0.25)
	for i := 0; i < joinServeCap; i++ {
		pos, cached, drop := n.cachedJoinLocked(base.Add(10*time.Millisecond), sybil)
		if !cached || drop {
			t.Fatalf("repeat %d inside the cooldown must be served from the cache", i+1)
		}
		if pos != 0.25 {
			t.Fatalf("cached re-join position = %v, want the granted 0.25", pos)
		}
	}
	if _, _, drop := n.cachedJoinLocked(base.Add(20*time.Millisecond), sybil); !drop {
		t.Fatalf("repeat past joinServeCap must be dropped")
	}
	if _, cached, _ := n.cachedJoinLocked(base.Add(30*time.Millisecond), honest); cached {
		t.Fatalf("a different identity must get a fresh placement during the flood")
	}
	if _, cached, _ := n.cachedJoinLocked(base.Add(150*time.Millisecond), sybil); cached {
		t.Fatalf("re-join after the cooldown lapsed must be a fresh placement")
	}
	if got := n.cfg.Obs.Get(obs.CSybilRejected); got != 1 {
		t.Fatalf("sybil_rejected = %d, want 1", got)
	}
}
