package node

import (
	"math"

	"selectps/internal/overlay"
	"selectps/internal/ring"
)

// ringEntry is one learned (peer, position) pair of the successor/
// predecessor lists. firsthand marks first-person evidence: the claim
// came from the peer itself (its pong self-entry, its own identifier
// announcement, a join-reply from it) or from the trusted bootstrap —
// as opposed to hearsay piggybacked by a third party.
type ringEntry struct {
	peer      overlay.PeerID
	pos       ring.ID
	firsthand bool
}

// ringView is a node's r-deep decentralized view of its ring
// neighborhood: the nearest known members clockwise (succ) and
// counter-clockwise (pred), learned from join replies, heartbeat-pong
// piggybacks and identifier announcements — never from the directory
// (DESIGN.md §9). When a ring neighbor dies the node splices to the next
// live entry locally, which is what keeps greedy ring routing alive
// under churn without any omniscient membership scan.
//
// With hardened set (DESIGN.md §14) positions arriving here have already
// been verified against the directory's admission record (repair.go), so
// the lists only defend the *liveness* half of a claim: hearsay never
// moves or downgrades an existing firsthand entry, and the ring heads
// prefer firsthand entries — the short links a node heartbeats are peers
// that vouched for their own position, with hearsay only bridging the
// window before first-person evidence arrives. All methods are called
// under the owning node's mutex.
type ringView struct {
	r        int
	hardened bool
	succ     []ringEntry // sorted by clockwise distance from the owner
	pred     []ringEntry // sorted by counter-clockwise distance from the owner
}

// cwDist is the clockwise arc with the directory's zero-arc convention: a
// position collision counts as a full loop so colliding peers still sort
// somewhere instead of shadowing the owner.
func cwDist(from, to ring.ID) float64 {
	d := ring.Clockwise(from, to)
	if d <= 0 {
		d += 1
	}
	return d
}

// learn inserts or repositions peer in both direction lists, keeping each
// sorted and truncated to r entries. self guards against learning the
// owner itself. firsthand marks first-person evidence (see ringEntry).
// The return value counts hearsay attempts to move or downgrade a
// firsthand entry blocked by the hardened rule (feeds the
// eclipse_displaced counter).
func (v *ringView) learn(own ring.ID, self, peer overlay.PeerID, pos ring.ID, firsthand bool) (blocked int) {
	if peer < 0 || peer == self {
		return 0
	}
	if cur, ok := v.get(peer); ok && cur.firsthand {
		if v.hardened && !firsthand {
			// A third party may not move or downgrade an entry the peer
			// itself vouched for.
			if cur.pos != pos {
				return 1
			}
			return 0
		}
		// Re-learning a verified peer keeps its verification.
		firsthand = true
	}
	v.remove(peer)
	e := ringEntry{peer, pos, firsthand}
	v.succ = insertByDist(v.succ, e, cwDist(own, pos), own, true, v.r)
	v.pred = insertByDist(v.pred, e, cwDist(pos, own), own, false, v.r)
	return 0
}

// insertByDist places e into list (sorted by its direction's distance
// from own), dropping the farthest entry past cap.
func insertByDist(list []ringEntry, e ringEntry, d float64, own ring.ID, clockwise bool, cap int) []ringEntry {
	if cap <= 0 {
		cap = 1
	}
	at := len(list)
	for i, x := range list {
		var xd float64
		if clockwise {
			xd = cwDist(own, x.pos)
		} else {
			xd = cwDist(x.pos, own)
		}
		if d < xd || (d == xd && e.peer < x.peer) {
			at = i
			break
		}
	}
	list = append(list, ringEntry{})
	copy(list[at+1:], list[at:])
	list[at] = e
	if len(list) > cap {
		list = list[:cap]
	}
	return list
}

// get returns the entry for peer from either list.
func (v *ringView) get(peer overlay.PeerID) (ringEntry, bool) {
	for _, e := range v.succ {
		if e.peer == peer {
			return e, true
		}
	}
	for _, e := range v.pred {
		if e.peer == peer {
			return e, true
		}
	}
	return ringEntry{}, false
}

// remove deletes peer from both lists (no-op when absent).
func (v *ringView) remove(peer overlay.PeerID) {
	v.succ = removeEntry(v.succ, peer)
	v.pred = removeEntry(v.pred, peer)
}

func removeEntry(list []ringEntry, peer overlay.PeerID) []ringEntry {
	for i, e := range list {
		if e.peer == peer {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// prune drops every entry keep rejects (members that left the ring).
func (v *ringView) prune(keep func(overlay.PeerID) bool) {
	filter := func(list []ringEntry) []ringEntry {
		out := list[:0]
		for _, e := range list {
			if keep(e.peer) {
				out = append(out, e)
			}
		}
		return out
	}
	v.succ = filter(v.succ)
	v.pred = filter(v.pred)
}

// rebase re-sorts both lists around a new owner position (after an
// Algorithm-2 identifier move); entry positions and verification flags
// are unchanged.
func (v *ringView) rebase(own ring.ID) {
	entries := append([]ringEntry(nil), v.succ...)
	for _, e := range v.pred {
		if !containsEntry(entries, e.peer) {
			entries = append(entries, e)
		}
	}
	v.succ, v.pred = v.succ[:0], v.pred[:0]
	for _, e := range entries {
		v.succ = insertByDist(v.succ, e, cwDist(own, e.pos), own, true, v.r)
		v.pred = insertByDist(v.pred, e, cwDist(e.pos, own), own, false, v.r)
	}
}

func containsEntry(list []ringEntry, peer overlay.PeerID) bool {
	for _, e := range list {
		if e.peer == peer {
			return true
		}
	}
	return false
}

// heads returns the nearest entry in each direction that live accepts
// (-1 when the list holds no acceptable entry) — the node's short-range
// ring links. Hardened, a firsthand entry is preferred over any hearsay
// one: the ring links a node heartbeats must be peers that claimed their
// own position, with hearsay only bridging the bootstrap window before
// first-person evidence arrives.
func (v *ringView) heads(live func(overlay.PeerID) bool) (succ, pred overlay.PeerID) {
	pick := func(list []ringEntry) overlay.PeerID {
		if v.hardened {
			for _, e := range list {
				if e.firsthand && live(e.peer) {
					return e.peer
				}
			}
		}
		for _, e := range list {
			if live(e.peer) {
				return e.peer
			}
		}
		return -1
	}
	return pick(v.succ), pick(v.pred)
}

// probation returns hearsay entries sitting ahead of the firsthand head
// in each direction — peers that would be the short-range links if their
// claims were verified. Hardened nodes ping them alongside the links:
// the pong's self-entry is first-person evidence and upgrades the entry,
// so a nearer honest neighbor only stays hearsay for one heartbeat RTT.
// Without this, firsthand-preference would pin heads() on farther
// verified peers forever. Nil when the view is not hardened.
func (v *ringView) probation(live func(overlay.PeerID) bool) []overlay.PeerID {
	if !v.hardened {
		return nil
	}
	var out []overlay.PeerID
	scan := func(list []ringEntry) {
		for _, e := range list {
			if !live(e.peer) {
				continue
			}
			if e.firsthand {
				return // everything ahead of the verified head is collected
			}
			out = append(out, e.peer)
		}
	}
	scan(v.succ)
	scan(v.pred)
	return out
}

// succPos returns the position of the first succ entry matching peer
// (used for the Algorithm-1 free-arc computation), ok=false when absent.
func (v *ringView) posOf(peer overlay.PeerID) (ring.ID, bool) {
	if e, ok := v.get(peer); ok {
		return e.pos, true
	}
	return 0, false
}

// wireFields renders both lists (self prepended to the successor side so
// receivers learn the sender's own position too) for Pong/JoinReply
// piggybacking.
func (v *ringView) wireFields(self overlay.PeerID, own ring.ID) (succs []int32, succPos []uint64, preds []int32, predPos []uint64) {
	succs = append(succs, int32(self))
	succPos = append(succPos, math.Float64bits(float64(own)))
	for _, e := range v.succ {
		succs = append(succs, int32(e.peer))
		succPos = append(succPos, math.Float64bits(float64(e.pos)))
	}
	for _, e := range v.pred {
		preds = append(preds, int32(e.peer))
		predPos = append(predPos, math.Float64bits(float64(e.pos)))
	}
	return succs, succPos, preds, predPos
}
