package node

import (
	"math"
	"sort"
	"time"

	"selectps/internal/churn"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/selectcore"
	"selectps/internal/wire"
)

// This file is the live SELECT maintenance loop (DESIGN.md §8): the join
// protocol (Algorithm 1 at runtime), periodic identifier reassignment
// (Algorithm 2 over strengths learned from exchange replies) and LSH
// link reassignment (Algorithms 5–6 over learned link bitmaps), with the
// K-incoming cap and bandwidth eviction of §III-D. Every decision rule
// is a selectcore call — the same code the offline simulator converges
// with; only the inputs arrive over the wire here.

// requestJoin marks the node as wanting in (preferring the given inviter,
// -1 for automatic choice) and fires the first JoinRequest; resends ride
// the repair scheduler (repair.go) until a JoinReply lands.
func (n *Node) requestJoin(inviter overlay.PeerID) {
	n.mu.Lock()
	n.wantJoin = true
	n.inviterPref = inviter
	n.joinAttempt = 0
	n.scheduleJoinResendLocked(time.Now())
	n.mu.Unlock()
	n.sendJoinRequest()
	n.kickRetry()
}

// sendJoinRequest picks the contact — the preferred inviter when it is a
// member, else the node's first member friend (the social inviter of
// Algorithm 1), else any member (an independent join) — and asks it for
// admission.
func (n *Node) sendJoinRequest() {
	n.mu.Lock()
	pref := n.inviterPref
	seq := n.nextSeq()
	n.mu.Unlock()
	target := overlay.PeerID(-1)
	if pref >= 0 && n.dir.isMember(pref) {
		target = pref
	} else {
		for _, f := range n.g.Neighbors(n.id) {
			if n.dir.isMember(f) {
				target = f
				break
			}
		}
	}
	if target < 0 {
		target = n.dir.firstMember(n.id)
	}
	if target < 0 {
		return // nobody to join through yet; the ticker retries
	}
	_ = n.tr.Send(int32(target), &wire.Message{
		Kind: wire.KindJoinRequest, From: int32(n.id), To: int32(target), Seq: seq,
	})
}

// handleJoinRequest serves an admission: a member places the requester
// per Algorithm 1 — a social friend lands inside the free clockwise arc
// next to this inviter, anyone else at its uniform hash position — and
// replies with the position, this node's links as seed contacts, and this
// node's successor/predecessor lists so the joiner starts with a ring
// view. The free arc comes from the local successor list, not the
// directory (bootstrap-only).
func (n *Node) handleJoinRequest(m *wire.Message) {
	if !n.dir.isMember(n.id) {
		return // not in the ring ourselves; the joiner will retry
	}
	n.cfg.Obs.Inc(obs.CJoinRequest)
	q := overlay.PeerID(m.From)
	myPos := n.dir.position(n.id)
	now := time.Now()
	n.mu.Lock()
	pos, cached, drop := n.cachedJoinLocked(now, q)
	if drop {
		// Hardened re-join cooldown exhausted — this identity is cycling
		// leave/join through this inviter (adversary.go).
		n.mu.Unlock()
		return
	}
	if !cached {
		if n.g.HasEdge(n.id, q) && n.arcGrantLocked(now) {
			gap := 0.0
			if succ, _ := n.rview.heads(n.dir.isMember); succ >= 0 {
				if sp, ok := n.rview.posOf(succ); ok {
					gap = ring.Clockwise(myPos, sp)
				}
			}
			pos = selectcore.PlaceJoin(myPos, gap, 1/float64(n.dir.memberCount()+1), n.rng.Float64())
		} else {
			pos = selectcore.PlaceIndependent(uint64(q))
		}
		n.recordJoinLocked(now, q, pos)
	}
	succs, succPos, preds, predPos := n.rview.wireFields(n.id, myPos)
	links := n.linksLocked()
	n.mu.Unlock()
	n.cfg.Obs.Inc(obs.CJoinReply)
	_ = n.tr.Send(m.From, &wire.Message{
		Kind: wire.KindJoinReply, From: int32(n.id), To: m.From, Seq: m.Seq,
		Pos:          math.Float64bits(float64(pos)),
		RoutingTable: peersToInt32s(links),
		Succs:        succs, SuccPos: succPos, Preds: preds, PredPos: predPos,
	})
}

// handleJoinReply completes the join: adopt the assigned position, enter
// the ring, seed the ring view from the inviter's successor/predecessor
// lists (the inviter prepends itself, so at minimum the view holds it),
// take the inviter's links as lookahead seed, and announce the new
// identifier to member friends and seed contacts.
func (n *Node) handleJoinReply(m *wire.Message) {
	if n.dir.isMember(n.id) {
		return // duplicate reply from a retried request
	}
	from := overlay.PeerID(m.From)
	pos := ring.ID(math.Float64frombits(m.Pos))
	prevPos := n.dir.position(n.id) // pre-crash identifier; inbox deposits live clockwise of it
	n.dir.setPosition(n.id, pos)
	n.dir.setMember(n.id, true)
	contacts := int32sToPeers(m.RoutingTable)
	n.mu.Lock()
	n.joined = true
	n.wantJoin = false
	n.joinNext = time.Time{}
	n.joinAttempt = 0
	n.lookahead[from] = contacts
	n.learnRingLocked(pos, from, m.Succs, m.SuccPos)
	n.learnRingLocked(pos, from, m.Preds, m.PredPos)
	n.refreshHeadsLocked()
	close(n.joinedCh)
	announce := make(map[overlay.PeerID]bool)
	for _, f := range n.g.Neighbors(n.id) {
		if n.dir.isMember(f) {
			announce[f] = true
		}
	}
	for _, q := range contacts {
		if q != n.id && n.dir.isMember(q) {
			announce[q] = true
		}
	}
	seqA := n.nextSeq()
	seqX := n.nextSeq()
	// Durable tier: a node that just (re)entered the ring claims its inbox
	// replicas — any deposits that accumulated while it was offline replay
	// now (inbox.go).
	claimTo, claimMsg := n.startInboxClaimLocked(time.Now(), prevPos)
	n.mu.Unlock()
	n.cfg.Obs.TraceEvent("join", int32(n.id), m.Seq)
	if claimTo >= 0 {
		_ = n.tr.Send(claimTo, claimMsg)
		n.kickInbox()
	}
	posBits := math.Float64bits(float64(pos))
	for q := range announce {
		_ = n.tr.Send(int32(q), &wire.Message{
			Kind: wire.KindIDAnnounce, From: int32(n.id), To: int32(q), Seq: seqA, Pos: posBits,
		})
	}
	// Start learning immediately: exchange with the inviter rather than
	// waiting out a gossip period, so strengths and bitmaps (and with
	// them Algorithm 2 and 5) arrive one round-trip after admission.
	if n.g.HasEdge(n.id, from) {
		_ = n.tr.Send(m.From, &wire.Message{
			Kind: wire.KindExchangeRT, From: int32(n.id), To: m.From, Seq: seqX,
			Neighborhood: peersToInt32s(n.g.Neighbors(n.id)),
			RoutingTable: peersToInt32s(n.linksSnapshot()),
		})
	}
}

// maintainTick runs one round of the live maintenance loop. Join resends
// ride the repair scheduler now (repair.go), and the short-range links
// come from the node's own successor lists — the directory's ring scan is
// bootstrap-only.
func (n *Node) maintainTick() {
	if n.adversaryMaintain() {
		return
	}
	if !n.dir.isMember(n.id) {
		return
	}
	var out []outMsg
	n.mu.Lock()
	n.pruneGoneLocked()
	n.refreshHeadsLocked()
	out = n.reassignLocked(out)
	out = n.relinkLocked(out)
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	n.inboxSweep()
	n.topicMaintain()
}

// refreshHeadsLocked re-derives the short-range ring links from the
// successor/predecessor lists: the nearest entry in each direction that
// is still a member. This is the local splice — when the old head died or
// left, the next list entry takes over without consulting anyone.
func (n *Node) refreshHeadsLocked() {
	if !n.joined {
		return
	}
	n.shortSucc, n.shortPred = n.rview.heads(n.dir.isMember)
}

// pruneGoneLocked forgets links to peers that left the ring (crashed or
// departed); their state is rebuilt through the join protocol if they
// come back.
func (n *Node) pruneGoneLocked() {
	keep := func(links []overlay.PeerID) []overlay.PeerID {
		out := links[:0]
		for _, q := range links {
			if n.dir.isMember(q) {
				out = append(out, q)
			}
		}
		return out
	}
	n.longOut = keep(n.longOut)
	n.longIn = keep(n.longIn)
	for q := range n.pendingOut {
		if !n.dir.isMember(q) {
			delete(n.pendingOut, q)
		}
	}
	n.rview.prune(n.dir.isMember)
}

// reassignLocked is Algorithm 2 live: move the identifier to the ring
// midpoint of the two strongest friends — strengths learned from
// exchange replies, never read from the graph — when the move covers
// more than MoveEps, and announce the new identifier to links and member
// friends.
func (n *Node) reassignLocked(out []outMsg) []outMsg {
	friends := n.g.Neighbors(n.id)
	if len(friends) < 2 {
		return out
	}
	// Mask out friends whose strength is unknown or who are not in the
	// ring: anchoring on them would place us next to nobody.
	row := make([]float64, len(friends))
	for i, f := range friends {
		row[i] = n.strength[i]
		if !n.dir.isMember(f) {
			row[i] = -1
		}
	}
	best, second := selectcore.Top2(friends, row)
	if best < 0 || second < 0 {
		return out
	}
	target := selectcore.ReassignTarget(n.dir.position(best), n.dir.position(second))
	if ring.Distance(n.dir.position(n.id), target) <= n.cfg.MoveEps {
		return out
	}
	n.dir.setPosition(n.id, target)
	n.cfg.Obs.Inc(obs.CIDReassign)
	n.cfg.Obs.TraceEvent("reassign", int32(n.id), 0)
	n.rview.rebase(target)
	n.refreshHeadsLocked()
	announce := make(map[overlay.PeerID]bool)
	for _, q := range n.linksLocked() {
		announce[q] = true
	}
	for _, f := range friends {
		if n.dir.isMember(f) {
			announce[f] = true
		}
	}
	seq := n.nextSeq()
	posBits := math.Float64bits(float64(target))
	for q := range announce {
		out = append(out, outMsg{int32(q), &wire.Message{
			Kind: wire.KindIDAnnounce, From: int32(n.id), To: int32(q), Seq: seq, Pos: posBits,
		}})
	}
	return out
}

func (n *Node) inLongOutLocked(q overlay.PeerID) bool {
	for _, x := range n.longOut {
		if x == q {
			return true
		}
	}
	return false
}

func (n *Node) inLongInLocked(q overlay.PeerID) bool {
	for _, x := range n.longIn {
		if x == q {
			return true
		}
	}
	return false
}

func (n *Node) removeLongOutLocked(q overlay.PeerID) {
	for i, x := range n.longOut {
		if x == q {
			n.longOut = append(n.longOut[:i], n.longOut[i+1:]...)
			return
		}
	}
}

func (n *Node) removeLongInLocked(q overlay.PeerID) {
	for i, x := range n.longIn {
		if x == q {
			n.longIn = append(n.longIn[:i], n.longIn[i+1:]...)
			return
		}
	}
}

// bitmapHas reports whether bit i is set in bm.
func bitmapHas(bm []uint64, i int) bool {
	return i/64 < len(bm) && bm[i/64]&(1<<(i%64)) != 0
}

// coveredLocked reports whether friend index i is reachable in one
// forward through an existing long link (the link's learned bitmap has
// the friend's bit).
func (n *Node) coveredLocked(i int) bool {
	for _, l := range n.longOut {
		if bitmapHas(n.bitmaps[l], i) {
			return true
		}
	}
	return false
}

// relinkLocked is Algorithms 5–6 live: index member friends' learned
// link bitmaps into the K LSH buckets, keep or propose one picker-chosen
// representative per bucket, drop covered same-bucket links, enforce the
// K budget, and spend leftover budget on uncovered friends weakest-tie
// first — structurally the simulator's createLinks, with LinkProposal/
// LinkAccept/LinkDrop messages in place of direct establishment.
func (n *Node) relinkLocked(out []outMsg) []outMsg {
	friends := n.g.Neighbors(n.id)
	if len(friends) == 0 {
		return out
	}
	n.idx.Begin(n.hasher, len(friends))
	indexed := false
	now := time.Now()
	for i, f := range friends {
		bm, ok := n.bitmaps[f]
		if !ok || !n.dir.isMember(f) || n.quarantinedLocked(f, now) {
			continue
		}
		coords := append(n.coords[:0], i) // self bit
		for j := range friends {
			if j != i && bitmapHas(bm, j) {
				coords = append(coords, j)
			}
		}
		n.idx.Add(int32(i), coords)
		n.coords = coords[:0]
		indexed = true
	}
	if !indexed {
		return out
	}
	budget := n.cfg.K - len(n.longOut) - len(n.pendingOut)
	bwOf := func(i int32) float64 { return n.bw[friends[i]] }
	for _, bucket := range n.idx.Buckets {
		if len(bucket) == 0 {
			continue
		}
		// Hysteresis: when the bucket already holds linked peers, keep the
		// picker-best among them instead of re-picking from scratch (the
		// §III-F "no chain of reassignments" rationale).
		var linked []int32
		for _, i := range bucket {
			if n.inLongOutLocked(friends[i]) {
				linked = append(linked, i)
			}
		}
		var keep overlay.PeerID = -1
		switch len(linked) {
		case 0:
			if budget <= 0 {
				continue
			}
			best, sc := selectcore.Pick(bucket, n.idx.Conn, bwOf, false, n.pickScratch)
			n.pickScratch = sc
			u := friends[best]
			if u == n.id || n.pendingOut[u] {
				continue
			}
			n.pendingOut[u] = true
			budget--
			out = append(out, outMsg{int32(u), &wire.Message{
				Kind: wire.KindLinkProposal, From: int32(n.id), To: int32(u), Seq: n.nextSeq(),
			}})
		case 1:
			keep = friends[linked[0]]
		default:
			best, sc := selectcore.Pick(linked, n.idx.Conn, bwOf, false, n.pickScratch)
			n.pickScratch = sc
			keep = friends[best]
		}
		if keep < 0 {
			continue
		}
		// Drop redundant same-bucket links the representative covers.
		keepBM := n.bitmaps[keep]
		for _, i := range bucket {
			v := friends[i]
			if v != keep && n.inLongOutLocked(v) && bitmapHas(keepBM, int(i)) {
				n.removeLongOutLocked(v)
				n.cfg.Obs.Inc(obs.CLinkDrop)
				out = append(out, outMsg{int32(v), &wire.Message{
					Kind: wire.KindLinkDrop, From: int32(n.id), To: int32(v), Seq: n.nextSeq(),
				}})
			}
		}
	}
	// Enforce the K budget: shed the weakest ties.
	for len(n.longOut) > n.cfg.K {
		victim, vi := overlay.PeerID(-1), -1.0
		for _, q := range n.longOut {
			s := 0.0
			if i, ok := n.fidx[q]; ok {
				s = n.strength[i]
			}
			if victim < 0 || s < vi {
				victim, vi = q, s
			}
		}
		n.removeLongOutLocked(victim)
		n.cfg.Obs.Inc(obs.CLinkDrop)
		out = append(out, outMsg{int32(victim), &wire.Message{
			Kind: wire.KindLinkDrop, From: int32(n.id), To: int32(victim), Seq: n.nextSeq(),
		}})
	}
	// Spend remaining budget on friends no current link reaches in one
	// forward, weakest ties first (strong ties stay reachable through the
	// ring; weak cross-community ties have no alternative path).
	if budget > 0 {
		var uncovered []int32
		for i, f := range friends {
			if _, ok := n.bitmaps[f]; !ok || !n.dir.isMember(f) {
				continue
			}
			if !n.inLongOutLocked(f) && !n.pendingOut[f] && !n.coveredLocked(i) {
				uncovered = append(uncovered, int32(i))
			}
		}
		sort.Slice(uncovered, func(a, b int) bool {
			si, sj := n.strength[uncovered[a]], n.strength[uncovered[b]]
			if si != sj {
				return si < sj
			}
			return uncovered[a] < uncovered[b]
		})
		for _, i := range uncovered {
			if budget <= 0 {
				break
			}
			u := friends[i]
			n.pendingOut[u] = true
			budget--
			out = append(out, outMsg{int32(u), &wire.Message{
				Kind: wire.KindLinkProposal, From: int32(n.id), To: int32(u), Seq: n.nextSeq(),
			}})
		}
	}
	return out
}

// handleLinkProposal enforces the K-incoming cap of §III-D: accept while
// below the cap, evict the worst-bandwidth incoming link for a
// better-bandwidth proposer (telling the victim), reject otherwise.
func (n *Node) handleLinkProposal(m *wire.Message) {
	n.cfg.Obs.Inc(obs.CLinkProposal)
	from := overlay.PeerID(m.From)
	var replies []outMsg
	n.mu.Lock()
	switch {
	case n.inLongInLocked(from):
		// Duplicate proposal (retry or crossed wires): re-accept.
		n.cfg.Obs.Inc(obs.CLinkAccept)
		replies = append(replies, outMsg{m.From, &wire.Message{
			Kind: wire.KindLinkAccept, From: int32(n.id), To: m.From, Seq: m.Seq,
		}})
	case len(n.longIn) < n.cfg.K:
		n.longIn = append(n.longIn, from)
		n.cfg.Obs.Inc(obs.CLinkAccept)
		replies = append(replies, outMsg{m.From, &wire.Message{
			Kind: wire.KindLinkAccept, From: int32(n.id), To: m.From, Seq: m.Seq,
		}})
	default:
		worst := overlay.PeerID(-1)
		for _, q := range n.longIn {
			if worst < 0 || n.bw[q] < n.bw[worst] {
				worst = q
			}
		}
		if worst >= 0 && n.bw[from] > n.bw[worst] {
			n.removeLongInLocked(worst)
			n.cfg.Obs.Inc(obs.CLinkEvict)
			n.cfg.Obs.Inc(obs.CLinkDrop)
			replies = append(replies, outMsg{int32(worst), &wire.Message{
				Kind: wire.KindLinkDrop, From: int32(n.id), To: int32(worst), Seq: n.nextSeq(),
			}})
			n.longIn = append(n.longIn, from)
			n.cfg.Obs.Inc(obs.CLinkAccept)
			replies = append(replies, outMsg{m.From, &wire.Message{
				Kind: wire.KindLinkAccept, From: int32(n.id), To: m.From, Seq: m.Seq,
			}})
		} else {
			n.cfg.Obs.Inc(obs.CLinkDrop)
			replies = append(replies, outMsg{m.From, &wire.Message{
				Kind: wire.KindLinkDrop, From: int32(n.id), To: m.From, Seq: m.Seq,
			}})
		}
	}
	n.mu.Unlock()
	for _, r := range replies {
		_ = n.tr.Send(r.to, r.m)
	}
}

// handleLinkAccept completes an establishment this node proposed. When a
// dead-link eviction is awaiting its replacement, the accept closes the
// repair and feeds the time-to-repair histogram (suspicion → new link).
func (n *Node) handleLinkAccept(m *wire.Message) {
	from := overlay.PeerID(m.From)
	var over bool
	n.mu.Lock()
	delete(n.pendingOut, from)
	if !n.inLongOutLocked(from) {
		if len(n.longOut) < n.cfg.K {
			n.longOut = append(n.longOut, from)
			if len(n.linkRepairStart) > 0 {
				since := n.linkRepairStart[0]
				n.linkRepairStart = n.linkRepairStart[1:]
				n.cfg.Obs.ObserveRepairLinkMS(float64(time.Since(since).Milliseconds()))
			}
		} else {
			over = true // budget filled while the proposal was in flight
		}
	}
	n.mu.Unlock()
	if over {
		n.cfg.Obs.Inc(obs.CLinkDrop)
		n.mu.Lock()
		seq := n.nextSeq()
		n.mu.Unlock()
		_ = n.tr.Send(m.From, &wire.Message{
			Kind: wire.KindLinkDrop, From: int32(n.id), To: m.From, Seq: seq,
		})
	}
}

// handleLinkDrop tears the link to the sender down in both directions —
// long links are connections, so a drop by either endpoint closes both
// roles at once (reject, eviction and shedding all arrive here).
func (n *Node) handleLinkDrop(m *wire.Message) {
	n.cfg.Obs.Inc(obs.CLinkDrop)
	from := overlay.PeerID(m.From)
	n.mu.Lock()
	n.removeLongOutLocked(from)
	n.removeLongInLocked(from)
	delete(n.pendingOut, from)
	n.mu.Unlock()
}

// handleLeave unlinks a gracefully departing peer immediately, without
// waiting for its CMA to decay.
func (n *Node) handleLeave(m *wire.Message) {
	n.cfg.Obs.Inc(obs.CLeave)
	from := overlay.PeerID(m.From)
	n.mu.Lock()
	n.removeLongOutLocked(from)
	n.removeLongInLocked(from)
	delete(n.pendingOut, from)
	delete(n.lookahead, from)
	delete(n.cma, from)
	delete(n.miss, from)
	delete(n.suspectAt, from)
	wasRing := n.shortSucc == from || n.shortPred == from
	n.rview.remove(from)
	if wasRing {
		// Graceful splice: the next successor-list entry takes over.
		n.refreshHeadsLocked()
		n.cfg.Obs.Inc(obs.CRingSplice)
	}
	n.mu.Unlock()
}

// Leave departs the ring gracefully: every link gets a Leave message so
// it can unlink at once, then the node's routing state is cleared. The
// node keeps running and can rejoin through the join protocol.
func (n *Node) Leave() {
	n.dir.setMember(n.id, false)
	n.mu.Lock()
	links := n.linksLocked()
	seq := n.nextSeq()
	n.resetVolatileLocked()
	n.mu.Unlock()
	for _, q := range links {
		_ = n.tr.Send(int32(q), &wire.Message{
			Kind: wire.KindLeave, From: int32(n.id), To: int32(q), Seq: seq,
		})
	}
}

// resetVolatileLocked clears everything a process restart would lose:
// ring membership, links, learned strengths/bitmaps, lookahead and
// availability history. The delivered feed (received, acked) survives as
// persistent storage; seq keeps rising so publication ids never repeat.
func (n *Node) resetVolatileLocked() {
	n.joined = false
	n.wantJoin = false
	n.inviterPref = -1
	n.shortSucc, n.shortPred = -1, -1
	n.longOut = nil
	n.longIn = nil
	n.pendingOut = make(map[overlay.PeerID]bool)
	for i := range n.strength {
		n.strength[i] = -1
	}
	n.bitmaps = make(map[overlay.PeerID][]uint64)
	n.lookahead = make(map[overlay.PeerID][]overlay.PeerID)
	n.cma = make(map[overlay.PeerID]*churn.CMA)
	n.miss = make(map[overlay.PeerID]int)
	n.suspectAt = make(map[overlay.PeerID]time.Time)
	n.deadUntil = make(map[overlay.PeerID]time.Time)
	n.linkRepairStart = nil
	n.pendingPings = make(map[uint32]overlay.PeerID)
	// Buffered-but-unflushed ack batches and piggybacked-liveness stamps
	// die with the process, like any unsent frame.
	if n.ackBatch {
		n.ackBuf = make(map[overlay.PeerID][]wire.AckEntry)
	}
	n.ackFlushArmed = false
	if n.hbPiggyback {
		n.lastHeard = make(map[overlay.PeerID]time.Time)
		n.hbSkip = make(map[overlay.PeerID]int)
	}
	// The ring view and join machinery are volatile; a fresh joinedCh
	// lets the next Join wait on this incarnation. The repair outbox
	// (pubs) survives alongside received/acked — it is the same
	// persistent feed, seen from the publisher's side — so a crashed
	// publisher resumes re-sending its unacked publications after it
	// re-joins (§III-F: the publisher repairs when it comes back).
	n.rview.succ, n.rview.pred = nil, nil
	n.joinNext = time.Time{}
	n.joinAttempt = 0
	n.joinedCh = make(chan struct{})
	// Durable-tier runtime state is volatile — the claim cycle dies with
	// the process and restarts at the next completed join; the replica
	// drains restart from the journal-backed store, which is the
	// persistent half. claimEpoch survives so each incarnation's lease
	// order differs.
	n.claim = nil
	n.replay = nil
	// The rendezvous-side topic registry is soft state rebuilt from lease
	// refreshes; subscriptions themselves are app intent and survive, but
	// their refresh bookkeeping resets so the first maintain tick after a
	// rejoin re-registers them at the (possibly re-homed) rendezvous.
	// tpubs and tpOrigin survive alongside pubs — the publisher's and the
	// rendezvous's repair outboxes resume after the rejoin.
	n.topicReg = make(map[string]map[overlay.PeerID]time.Time)
	for _, ts := range n.subTopics {
		ts.set = nil
		ts.lastSub = time.Time{}
	}
}
