package node

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/growth"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/socialgraph"
	"selectps/internal/transport"
)

// liveJoinFixture builds a cluster bootstrapped from the first
// bootFrac of a growth schedule's join order; the remaining peers and
// their schedule inviters are returned for live admission.
func liveJoinFixture(t *testing.T, n int, seed int64, bootFrac float64, met *obs.Metrics) (*socialgraph.Graph, *Cluster, []growth.Event) {
	t.Helper()
	g := datasets.Facebook.Generate(n, seed)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	sched := growth.DefaultModel().Schedule(g, rand.New(rand.NewSource(seed^0x9e37)))
	nBoot := int(float64(n) * bootFrac)
	if nBoot < 2 {
		nBoot = 2
	}
	var bootstrap []overlay.PeerID
	for _, e := range sched.Prefix(nBoot) {
		bootstrap = append(bootstrap, overlay.PeerID(e.User))
	}
	c, err := Start(Options{
		Graph: g, Overlay: ov, Transport: transport.NewSwitchboard(n, 4096), Seed: seed,
		HeartbeatEvery: 50 * time.Millisecond,
		GossipEvery:    10 * time.Millisecond,
		MaintainEvery:  15 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    100,
		Bootstrap:      bootstrap,
		Obs:            met,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, c, sched.Events[len(bootstrap):]
}

// admit joins every event's user live, one at a time, preferring the
// inviter the growth schedule assigned (the live Algorithm-1 replay).
func admit(t *testing.T, c *Cluster, joiners []growth.Event) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, e := range joiners {
		if err := c.Join(ctx, overlay.PeerID(e.User), overlay.PeerID(e.Inviter)); err != nil {
			t.Fatalf("live join of %d (inviter %d): %v", e.User, e.Inviter, err)
		}
	}
}

// publishAndSettle publishes from p and waits — repair is the
// publisher's own job now — until every subscriber delivered or the
// deadline passes; it returns the delivered count.
func publishAndSettle(c *Cluster, g *socialgraph.Graph, p overlay.PeerID, horizon time.Duration) (seq uint32, delivered int, total int) {
	subs := g.Neighbors(p)
	seq = publishSize(c.Nodes[p], 200)
	delivered, _ = await(c, p, seq, subs, horizon)
	return seq, delivered, len(subs)
}

// TestLiveJoinDelivery is the api_redesign satellite: 20% of the peers
// join a live, already-routing cluster one at a time via the join
// protocol, and every publication still reaches all online subscribers
// (run under -race in CI).
func TestLiveJoinDelivery(t *testing.T) {
	const n = 100
	met := obs.New()
	g, c, joiners := liveJoinFixture(t, n, 31, 0.8, met)
	defer shutdown(t, c)

	// Traffic flows while the ring is still partial.
	var early overlay.PeerID = -1
	for p := overlay.PeerID(0); p < n; p++ {
		if c.Nodes[p].Joined() && g.Degree(p) > 0 {
			early = p
			break
		}
	}
	if early >= 0 {
		publishSize(c.Nodes[early], 100)
	}

	admit(t, c, joiners)

	// Every joiner is now a member…
	for p := overlay.PeerID(0); p < n; p++ {
		if !c.Nodes[p].Joined() {
			t.Fatalf("peer %d never joined", p)
		}
	}
	// …and the join protocol actually ran.
	if met.Get(obs.CJoinRequest) == 0 || met.Get(obs.CJoinReply) == 0 {
		t.Fatalf("join counters empty: req=%d reply=%d",
			met.Get(obs.CJoinRequest), met.Get(obs.CJoinReply))
	}

	// Publications from joiners and from bootstrap members alike reach
	// every subscriber.
	checked := 0
	for _, e := range joiners {
		p := overlay.PeerID(e.User)
		if g.Degree(p) == 0 {
			continue
		}
		if _, got, want := publishAndSettle(c, g, p, 10*time.Second); got != want {
			t.Fatalf("joiner %d publication delivered %d/%d", p, got, want)
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	pub := topDegree(g)
	if _, got, want := publishAndSettle(c, g, pub, 10*time.Second); got != want {
		t.Fatalf("bootstrap publisher %d delivered %d/%d", pub, got, want)
	}
}

// TestLiveJoinHopConvergence is the acceptance criterion: a cluster
// bootstrapped from 25% of the peers, with the rest joining live via
// JoinRequest, converges to mean delivered hop counts within 15% of the
// fully pre-converged baseline started from the same seed.
func TestLiveJoinHopConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence soak")
	}
	const n = 120
	const seed = 33

	// Publishers measured in both arms: a deterministic spread of peers
	// with enough subscribers to make hop averages meaningful.
	g := datasets.Facebook.Generate(n, seed)
	var pubs []overlay.PeerID
	for p := overlay.PeerID(0); p < n && len(pubs) < 6; p += 7 {
		if g.Degree(p) >= 4 {
			pubs = append(pubs, p)
		}
	}

	measure := func(c *Cluster, gg *socialgraph.Graph) (float64, bool) {
		total, count := 0, 0
		for _, p := range pubs {
			seq, got, want := publishAndSettle(c, gg, p, 8*time.Second)
			if got != want {
				return 0, false
			}
			for _, s := range gg.Neighbors(p) {
				if h, ok := c.Nodes[s].Received(p, seq); ok {
					total += int(h)
					count++
				}
			}
		}
		return float64(total) / float64(count), true
	}

	// Arm A: every peer bootstraps from the converged overlay, with the
	// same live maintenance running.
	gA, cA := buildCluster(t, n, seed, Options{
		HeartbeatEvery: 50 * time.Millisecond,
		GossipEvery:    10 * time.Millisecond,
		MaintainEvery:  15 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    100,
	})
	time.Sleep(300 * time.Millisecond) // let gossip warm the lookahead caches
	baseline, ok := measure(cA, gA)
	shutdown(t, cA)
	if !ok {
		t.Fatal("baseline arm failed to deliver")
	}

	// Arm B: 25% bootstrap, the rest admitted live in schedule order.
	gB, cB, joiners := liveJoinFixture(t, n, seed, 0.25, nil)
	defer shutdown(t, cB)
	admit(t, cB, joiners)

	// Converge: maintenance keeps moving identifiers and rebuilding long
	// links; remeasure until the hop average lands within 15% of the
	// baseline (plus a small absolute floor so 1-hop baselines do not
	// demand sub-hop precision).
	bound := baseline*1.15 + 0.25
	deadline := time.Now().Add(60 * time.Second)
	var last float64 = -1
	for time.Now().Before(deadline) {
		avg, ok := measure(cB, gB)
		if ok {
			last = avg
			if avg <= bound {
				t.Logf("converged: live-join avg hops %.3f vs baseline %.3f", avg, baseline)
				return
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	t.Fatalf("live-join arm stuck at avg hops %.3f; baseline %.3f (bound %.3f)", last, baseline, bound)
}
