package node

import (
	"math/rand"
	"testing"
	"time"

	"selectps/internal/datasets"
	"selectps/internal/faultnet"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/pubsub"
	"selectps/internal/transport"
	"selectps/internal/wire"
)

// TestPublishUnderSeededDrops runs a live cluster whose transport drops
// 20% of directed-publish copies (and duplicates a few) from a seeded
// fault schedule, and asserts the delivery machinery holds up: the
// publisher's autonomous repair engine reaches every subscriber within
// the horizon, the dedup map absorbs duplicate arrivals (each
// subscriber's first-time delivery is counted exactly once), and no
// copy outlives its TTL.
func TestPublishUnderSeededDrops(t *testing.T) {
	const n = 120
	const seed = 21
	g := datasets.Facebook.Generate(n, seed)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	met := obs.New()
	inner := transport.NewSwitchboard(n, 4096)
	inner.Obs = met
	fn := faultnet.Wrap(inner, n, faultnet.Config{
		DropProb: 0.2,
		DupProb:  0.05,
		Kinds:    []wire.Kind{wire.KindPublish},
	}, seed)
	fn.Obs = met
	c, err := Start(Options{
		Graph: g, Overlay: ov, Transport: fn, Seed: seed,
		HeartbeatEvery: 20 * time.Millisecond, Obs: met,
		RetryBase: 10 * time.Millisecond, RetryBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, c)

	var pub overlay.PeerID
	for p := overlay.PeerID(0); p < n; p++ {
		if g.Degree(p) > g.Degree(pub) {
			pub = p
		}
	}
	subs := g.Neighbors(pub)
	seq := publishSize(c.Nodes[pub], 1000)

	// Repair horizon: the publisher's engine re-sends to unacked
	// subscribers on its own seeded backoff until every subscriber has
	// the publication or the deadline passes.
	delivered, ok := await(c, pub, seq, subs, 10*time.Second)
	if !ok {
		t.Fatalf("only %d/%d subscribers delivered under 20%% publish drops", delivered, len(subs))
	}

	// Faults must actually have been injected for this test to mean
	// anything.
	if met.Get(obs.CFaultDrop) == 0 {
		t.Fatal("no drops injected at DropProb=0.2")
	}
	// Dedup: duplicate arrivals (fault duplicates + post-delivery retries)
	// never inflate the first-time delivery count — exactly one delivery
	// event per subscriber.
	if got := met.Get(obs.CPublishDelivered); got != int64(len(subs)) {
		t.Fatalf("delivered counter = %d, want %d (dedup failed)", got, len(subs))
	}
	// TTL: every delivered copy arrived within the hop budget.
	for _, s := range subs {
		if h, ok := c.Nodes[s].Received(pub, seq); ok && h > 32 {
			t.Fatalf("subscriber %d delivery used %d hops, beyond TTL", s, h)
		}
	}
}

// TestRetriesSurviveDroppedAcks drops acks as well as publications: the
// publisher's engine over-retries (it cannot see deliveries whose acks
// died), and dedup at the subscribers keeps the over-delivery invisible.
func TestRetriesSurviveDroppedAcks(t *testing.T) {
	const n = 80
	const seed = 22
	g := datasets.Facebook.Generate(n, seed)
	ov, err := pubsub.Build(pubsub.Select, g, pubsub.BuildOptions{}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	met := obs.New()
	inner := transport.NewSwitchboard(n, 4096)
	fn := faultnet.Wrap(inner, n, faultnet.Config{
		DropProb: 0.25,
		Kinds:    []wire.Kind{wire.KindPublish, wire.KindAck},
	}, seed)
	fn.Obs = met
	c, err := Start(Options{
		Graph: g, Overlay: ov, Transport: fn, Seed: seed, Obs: met,
		RetryBase: 10 * time.Millisecond, RetryBudget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, c)

	var pub overlay.PeerID = -1
	for p := overlay.PeerID(0); p < n; p++ {
		if g.Degree(p) >= 5 {
			pub = p
			break
		}
	}
	if pub < 0 {
		t.Skip("no publisher with enough friends")
	}
	subs := g.Neighbors(pub)
	seq := publishSize(c.Nodes[pub], 100)
	delivered, ok := await(c, pub, seq, subs, 10*time.Second)
	if !ok {
		t.Fatalf("only %d/%d delivered with publish+ack drops", delivered, len(subs))
	}
	if got := met.Get(obs.CPublishDelivered); got != int64(len(subs)) {
		t.Fatalf("delivered counter = %d, want %d", got, len(subs))
	}
}
