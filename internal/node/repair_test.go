package node

import (
	"testing"
	"time"

	"selectps/internal/churn"
	"selectps/internal/faultnet"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/selectcore"
	"selectps/internal/wire"
)

// TestCrashMidDisseminationAutonomousRepair is the self-healing
// acceptance test (run under -race in CI): a third of the subscribers go
// dark right as the publication fans out, come back, and the cluster
// converges to 100% eligible delivery with zero harness-driven retries
// — the publisher's repair engine does all of it.
func TestCrashMidDisseminationAutonomousRepair(t *testing.T) {
	met := obs.New()
	g, c := buildCluster(t, 120, 41, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		RetryBudget:    100,
		Obs:            met,
	})
	defer shutdown(t, c)

	pub := topDegree(g)
	subs := g.Neighbors(pub)
	var victims []overlay.PeerID
	for i, s := range subs {
		if i%3 == 0 {
			victims = append(victims, s)
		}
	}
	if len(victims) == 0 {
		t.Fatal("fixture produced no victims")
	}
	// Crash mid-dissemination: the victims stop responding before their
	// copies arrive, so the initial fan-out loses them.
	for _, v := range victims {
		c.Nodes[v].Pause()
	}
	seq := publishSize(c.Nodes[pub], 500)
	time.Sleep(60 * time.Millisecond)
	for _, v := range victims {
		c.Nodes[v].Resume()
	}

	delivered, ok := await(c, pub, seq, subs, 10*time.Second)
	if !ok {
		t.Fatalf("only %d/%d subscribers delivered after victims resumed", delivered, len(subs))
	}
	if met.Get(obs.CRetrySent) == 0 {
		t.Fatal("engine sent no retries despite victims missing the fan-out")
	}
	// The publication resolved: every ack came home, so the publisher
	// dropped its repair state instead of dead-lettering.
	deadline := time.Now().Add(5 * time.Second)
	for c.Nodes[pub].PendingRepairs() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.Nodes[pub].PendingRepairs(); n != 0 {
		t.Fatalf("%d publications still pending repair after full delivery", n)
	}
	if dl := c.Nodes[pub].DeadLetters(); len(dl) != 0 {
		t.Fatalf("publication dead-lettered despite full delivery: %+v", dl)
	}
}

// TestRingSpliceOnDeadNeighbor drives the accrual detector end to end: a
// ring neighbor stops answering heartbeats, accrues a dead verdict, and
// the successor list splices around it locally — no directory oracle —
// with the repair observable in the counters and time-to-repair
// histogram.
func TestRingSpliceOnDeadNeighbor(t *testing.T) {
	met := obs.New()
	_, c := buildCluster(t, 60, 43, Options{
		HeartbeatEvery: 10 * time.Millisecond,
		MaintainEvery:  15 * time.Millisecond,
		RetryBase:      10 * time.Millisecond,
		Obs:            met,
	})
	defer shutdown(t, c)

	// Let heartbeats build a little CMA history first.
	time.Sleep(100 * time.Millisecond)

	y := overlay.PeerID(0)
	x, _ := c.Nodes[y].RingNeighbors()
	if x < 0 || x == y {
		t.Fatalf("node %d has no distinct successor (got %d)", y, x)
	}
	c.Nodes[x].Pause()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if succ, _ := c.Nodes[y].RingNeighbors(); succ != x {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if succ, _ := c.Nodes[y].RingNeighbors(); succ == x {
		t.Fatalf("node %d still lists dead %d as successor", y, x)
	}
	if met.Get(obs.CLinkDeadEvict) == 0 {
		t.Fatal("no dead-link evictions recorded")
	}
	if met.Get(obs.CRingSplice) == 0 {
		t.Fatal("no ring splices recorded")
	}
	if met.RepairRing.Snapshot().Total() == 0 {
		t.Fatal("ring time-to-repair histogram is empty")
	}
	// The replacement successor is drawn from y's own list, never the
	// evicted peer.
	succs, _ := c.Nodes[y].RingList()
	for _, s := range succs {
		if s == x {
			t.Fatalf("evicted peer %d still present in successor list %v", x, succs)
		}
	}
}

// TestRepairTraceDeterministic pins the reproducibility contract: the
// retry schedule for a publication is a pure function of (cluster seed,
// node, seq), and the canonical faultnet schedule for the same seed is
// byte-identical across builds — so a failing chaos run can be replayed
// exactly.
func TestRepairTraceDeterministic(t *testing.T) {
	const seed = 21
	b := selectcore.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Budget: 12}

	pubTrace := b.TraceString(selectcore.RepairSeed(seed, 7, 1))
	if again := b.TraceString(selectcore.RepairSeed(seed, 7, 1)); again != pubTrace {
		t.Fatal("same (seed, node, seq) produced different retry traces")
	}
	if other := b.TraceString(selectcore.RepairSeed(seed, 7, 2)); other == pubTrace {
		t.Fatal("distinct publications share a retry trace")
	}
	if other := b.TraceString(selectcore.RepairSeed(seed, 8, 1)); other == pubTrace {
		t.Fatal("distinct publishers share a retry trace")
	}

	m := churn.DefaultModel()
	cfg := faultnet.Config{
		DropProb: 0.2, DupProb: 0.05,
		Kinds: []wire.Kind{wire.KindPublish},
		Tick:  10 * time.Millisecond, Steps: 200,
		Churn:          &m,
		PartitionEvery: 40, PartitionFor: 10, PartitionFrac: 0.25,
	}
	f1 := faultnet.BuildSchedule(80, cfg, seed).Trace()
	f2 := faultnet.BuildSchedule(80, cfg, seed).Trace()
	if f1 != f2 || len(f1) == 0 {
		t.Fatal("canonical faultnet trace not byte-identical across builds")
	}
	// The full repair trace — fault schedule plus per-publication retry
	// timeline — is what "same seed ⇒ same repair behavior" means.
	if f1+pubTrace != f2+b.TraceString(selectcore.RepairSeed(seed, 7, 1)) {
		t.Fatal("combined fault+retry trace diverged for identical seeds")
	}
}
