package node

import (
	"math"
	"time"

	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/selectcore"
	"selectps/internal/wire"
)

// This file is the self-healing layer of the live runtime (DESIGN.md §9):
//
//   - the autonomous delivery-repair engine: every publication this node
//     publishes gets a per-(node, seq) state machine that re-sends to
//     unacked subscribers on a seeded exponential-backoff-with-jitter
//     schedule (selectcore.Backoff) until every subscriber acked or the
//     retry budget dead-letters the publication — no caller ever drives
//     repair by hand;
//   - join-request resends, riding the same scheduler instead of the
//     maintenance ticker;
//   - the accrual failure detector sweep: heartbeat evidence (miss
//     streaks + CMA history) is classified by selectcore.FailureDetector
//     into alive → suspect → dead, and a dead link is evicted and
//     repaired immediately — LSH-bucket refill for long links, local
//     successor-list splice for ring neighbors;
//   - the state bounds: dedup windows and publication history are FIFO
//     garbage-collected so long-running nodes hold bounded maps.

// pubState is the publisher-side record of one in-flight publication.
type pubState struct {
	subs    []overlay.PeerID
	payload []byte
	size    uint32
	pri     uint8     // durable-tier replay class (inbox.High/Medium/Low)
	attempt int       // retries already sent
	nextAt  time.Time // next retry deadline
	bseed   uint64    // selectcore.RepairSeed(seed, node, seq)
	// dep holds the subscribers handed to the durable tier (inbox.go):
	// direct repair stopped for them, deposit rounds retry until one
	// replica acks persistence.
	dep map[overlay.PeerID]*depSub
	// origin/topic are set on topic-rendezvous repair state (topic.go):
	// the publication's original (publisher, seq) identity — acks and
	// deposits are keyed by it, not by this node's local repair seq —
	// and the topic it disseminates on.
	origin msgID
	topic  string
}

// DeadLetter records a publication that exhausted its retry budget with
// subscribers still unacked — the bounded failure record the harness can
// inspect instead of silently losing deliveries.
type DeadLetter struct {
	Seq     uint32
	Missing []overlay.PeerID
	Retries int
}

// maxDeadLetters bounds the per-node dead-letter record.
const maxDeadLetters = 128

// repairEnabled reports whether the delivery-repair engine runs;
// RetryBase = 0 disables it (the soak's no-recovery ablation arm).
func (n *Node) repairEnabled() bool { return n.cfg.RetryBase > 0 }

func (n *Node) backoff() selectcore.Backoff {
	return selectcore.Backoff{Base: n.cfg.RetryBase, Max: n.cfg.RetryMax, Budget: n.cfg.RetryBudget}
}

// joinBackoff is the join-resend schedule: same engine, but with a
// fallback base (joins must retry even when publication repair is off)
// and no budget — a joiner keeps asking at the capped delay forever.
func (n *Node) joinBackoff() selectcore.Backoff {
	b := n.backoff()
	if b.Base <= 0 {
		b.Base = 15 * time.Millisecond
	}
	return b
}

// joinSeed is the backoff stream for join resends; seq 0 is never used by
// publications (nextSeq starts at 1), so it is free as the join stream id.
func (n *Node) joinSeed() uint64 {
	return selectcore.RepairSeed(n.cfg.Seed, int32(n.id), 0)
}

// kickRetry re-arms the shard wheel's repair entry after a deadline
// changed (new publication, new join attempt). Called outside n.mu.
func (n *Node) kickRetry() {
	if n.sh != nil {
		n.sh.scheduleRepair(n)
	}
}

// nextRepairAt returns the earliest pending retry/join deadline, or
// false when nothing is in flight (the wheel entry is dropped). A paused
// (churned-out) node dozes at ≥50 ms instead of spinning.
func (n *Node) nextRepairAt() (time.Time, bool) {
	n.mu.Lock()
	var earliest time.Time
	for _, st := range n.pubs {
		if earliest.IsZero() || st.nextAt.Before(earliest) {
			earliest = st.nextAt
		}
		for _, ds := range st.dep {
			if !ds.acked && (earliest.IsZero() || ds.nextAt.Before(earliest)) {
				earliest = ds.nextAt
			}
		}
	}
	for _, tp := range n.tpubs {
		if earliest.IsZero() || tp.nextAt.Before(earliest) {
			earliest = tp.nextAt
		}
	}
	if n.wantJoin && !n.joinNext.IsZero() && (earliest.IsZero() || n.joinNext.Before(earliest)) {
		earliest = n.joinNext
	}
	n.mu.Unlock()
	if earliest.IsZero() {
		return time.Time{}, false
	}
	if n.paused.Load() {
		if floor := time.Now().Add(50 * time.Millisecond); earliest.Before(floor) {
			earliest = floor
		}
	}
	return earliest, true
}

// registerPublishLocked opens the repair state machine for publication
// seq: the first retry fires one backoff-delay after the initial send.
func (n *Node) registerPublishLocked(seq uint32, subs []overlay.PeerID, payload []byte, size uint32, pri uint8, now time.Time) {
	if !n.repairEnabled() {
		return
	}
	bseed := selectcore.RepairSeed(n.cfg.Seed, int32(n.id), seq)
	n.pubs[seq] = &pubState{
		subs:    append([]overlay.PeerID(nil), subs...),
		payload: payload,
		size:    size,
		pri:     pri,
		bseed:   bseed,
		nextAt:  now.Add(n.backoff().Delay(bseed, 0)),
	}
}

// pubKey is the ack-set key of publication seq's state: the origin
// identity for topic-rendezvous repair state, (self, seq) otherwise.
func (n *Node) pubKey(seq uint32, st *pubState) msgID {
	if st.topic != "" {
		return st.origin
	}
	return msgID{int32(n.id), seq}
}

// resolveAckLocked closes publication seq's state machine once every
// subscriber is settled — directly acked or durably deposited — the
// moment its record becomes garbage-collectable.
func (n *Node) resolveAckLocked(seq uint32) {
	st := n.pubs[seq]
	if st == nil {
		return
	}
	acked := n.acked[n.pubKey(seq, st)]
	for _, s := range st.subs {
		if !settledLocked(acked, st, s) {
			return
		}
	}
	delete(n.pubs, seq)
	if st.topic != "" {
		delete(n.tpOrigin, st.origin)
	}
	n.cfg.Obs.TraceEvent("pub_resolved", int32(n.id), seq)
}

// scheduleJoinResendLocked arms the next join-resend deadline from the
// current attempt count.
func (n *Node) scheduleJoinResendLocked(now time.Time) {
	n.joinNext = now.Add(n.joinBackoff().Delay(n.joinSeed(), n.joinAttempt))
}

// repairTick is the engine's timer body: re-send every due publication to
// its still-unacked subscribers, re-send a pending join request, and run
// the durable-tier deposit rounds. With the inbox tier on, a subscriber
// that is no longer a ring member — or that stayed unacked through the
// whole direct-retry budget — is handed off to its inbox replica set
// instead of dead-lettered; only a failed deposit (no replica acked
// within the budget) still dead-letters. Messages are staged under the
// lock and routed after it (forward takes the lock itself).
func (n *Node) repairTick() {
	if n.paused.Load() {
		return
	}
	now := time.Now()
	bo := n.backoff()
	budget := bo.Budget
	if budget <= 0 {
		budget = 12
	}
	inboxOn := n.inboxOn()
	var out []outMsg
	// direct holds deposit traffic: inbox messages are point-to-point
	// (publisher → replica), never greedy-forwarded like publications.
	var direct []outMsg
	resendJoin := false
	n.mu.Lock()
	for seq, st := range n.pubs {
		// Deposit rounds run on their own per-subscriber deadlines, even
		// when the publication's direct-retry deadline is not due.
		var failed []overlay.PeerID
		for s, ds := range st.dep {
			if ds.acked || ds.nextAt.After(now) {
				continue
			}
			if ds.attempt >= budget {
				// The durable tier itself failed for s: no replica ever
				// acked persistence. This is the real dead-letter case.
				failed = append(failed, s)
				continue
			}
			ds.attempt++
			direct = n.sendDepositLocked(seq, st, s, ds, now, direct)
		}
		if len(failed) > 0 {
			n.deadLetterLocked(seq, st, failed)
			continue
		}
		if st.nextAt.After(now) {
			continue
		}
		acked := n.acked[n.pubKey(seq, st)]
		var missing []overlay.PeerID
		depositing := false
		for _, s := range st.subs {
			if settledLocked(acked, st, s) {
				continue
			}
			if st.dep[s] != nil {
				depositing = true // hand-off done, deposit round pending
				continue
			}
			if inboxOn && (st.attempt >= budget || !n.dir.isMember(s)) {
				// Offline (membership dropped) or out of direct budget:
				// hand this subscriber's copy to the durable tier.
				direct = n.startDepositLocked(seq, st, s, now, direct)
				depositing = true
				continue
			}
			missing = append(missing, s)
		}
		if len(missing) == 0 {
			if !depositing {
				delete(n.pubs, seq)
			} else {
				// Direct repair is done; keep the record alive for the
				// deposit rounds without spinning the retry schedule.
				st.nextAt = now.Add(bo.Delay(st.bseed, budget))
			}
			continue
		}
		if st.attempt >= budget {
			// Inbox off (or it would have claimed them above): budget
			// exhausted with subscribers missing.
			n.deadLetterLocked(seq, st, missing)
			continue
		}
		st.attempt++
		st.nextAt = now.Add(bo.Delay(st.bseed, st.attempt))
		n.cfg.Obs.Addn(obs.CRetrySent, int64(len(missing)))
		n.cfg.Obs.TraceEvent("retry", int32(n.id), seq)
		for _, s := range missing {
			if st.topic != "" {
				// Topic repair copies are point-to-point leaf deliveries
				// (no subtree) carrying the origin identity, with acks
				// addressed back to this rendezvous replica.
				direct = append(direct, outMsg{int32(s), &wire.Message{
					Kind: wire.KindTopicPub, From: int32(n.id), To: int32(s),
					Seq: st.origin.Seq, Publisher: st.origin.Publisher,
					Target: int32(n.id), Priority: st.pri, TTL: n.cfg.TTL,
					PayloadSize: st.size, Payload: st.payload,
					Topic: []byte(st.topic),
				}})
				continue
			}
			out = append(out, outMsg{int32(s), &wire.Message{
				Kind: wire.KindPublish, From: int32(n.id), To: int32(s),
				Seq: seq, Publisher: int32(n.id), TTL: n.cfg.TTL,
				Priority: st.pri, PayloadSize: st.size, Payload: st.payload,
			}})
		}
	}
	var accepts []selfAccept
	direct, accepts = n.topicRepairLocked(now, budget, direct, accepts)
	if n.wantJoin && !n.joinNext.IsZero() && !n.joinNext.After(now) {
		resendJoin = true
		n.joinAttempt++
		n.scheduleJoinResendLocked(now)
		n.cfg.Obs.Inc(obs.CJoinResend)
	}
	n.mu.Unlock()
	for _, a := range accepts {
		n.acceptTopicPub(a.origin, a.topic, a.payload, a.size, a.pri)
	}
	for _, o := range out {
		n.forward(o.m, overlay.PeerID(o.to))
	}
	for _, o := range direct {
		_ = n.tr.Send(o.to, o.m)
	}
	if resendJoin {
		n.sendJoinRequest()
	}
}

// deadLetterLocked retires publication seq unresolved: budget exhausted
// with subscribers missing. The record is bounded FIFO.
func (n *Node) deadLetterLocked(seq uint32, st *pubState, missing []overlay.PeerID) {
	delete(n.pubs, seq)
	if st.topic != "" {
		delete(n.tpOrigin, st.origin)
	}
	n.cfg.Obs.Inc(obs.CDeadLetter)
	n.cfg.Obs.TraceEvent("dead_letter", int32(n.id), seq)
	n.deadLetters = append(n.deadLetters, DeadLetter{Seq: seq, Missing: missing, Retries: st.attempt})
	if len(n.deadLetters) > maxDeadLetters {
		n.deadLetters = n.deadLetters[len(n.deadLetters)-maxDeadLetters:]
	}
}

// DeadLetters returns the node's bounded record of publications that
// exhausted their retry budget.
func (n *Node) DeadLetters() []DeadLetter {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]DeadLetter(nil), n.deadLetters...)
}

// PendingRepairs returns how many publications are still in the repair
// engine (unresolved, not dead-lettered).
func (n *Node) PendingRepairs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pubs)
}

// rememberDeliveryLocked records a first-time delivery in the dedup
// window, evicting the oldest entry past DedupWindow. Returns false on a
// duplicate. The window bound is the at-least-once contract: a copy
// arriving after its record aged out would deliver again.
func (n *Node) rememberDeliveryLocked(id msgID, hops uint8) bool {
	if _, dup := n.received[id]; dup {
		return false
	}
	n.received[id] = hops
	n.recvOrder = append(n.recvOrder, id)
	w := n.cfg.DedupWindow
	if w <= 0 {
		w = 8192
	}
	for len(n.recvOrder) > w {
		delete(n.received, n.recvOrder[0])
		n.recvOrder = n.recvOrder[1:]
	}
	return true
}

// ackedSetLocked returns (creating if needed) the ack set of publication
// id, evicting the oldest completed record past PubHistory.
func (n *Node) ackedSetLocked(id msgID) map[int32]bool {
	set := n.acked[id]
	if set == nil {
		set = make(map[int32]bool)
		n.acked[id] = set
		n.ackOrder = append(n.ackOrder, id)
		h := n.cfg.PubHistory
		if h <= 0 {
			h = 1024
		}
		for len(n.ackOrder) > h {
			delete(n.acked, n.ackOrder[0])
			n.ackOrder = n.ackOrder[1:]
		}
	}
	return set
}

// quarantineFor is how long an evicted-dead peer stays unlearnable from
// third-party gossip: long enough for the rest of the protocol to notice
// the death, short enough that a recovered peer is not shunned for long.
// First-person evidence (pong, own IDAnnounce) clears it early.
func (n *Node) quarantineFor() time.Duration {
	d := 8 * n.cfg.HeartbeatEvery
	if d < 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	return d
}

// quarantinedLocked reports whether q is under dead-quarantine at `now`,
// expiring stale entries as a side effect.
func (n *Node) quarantinedLocked(q overlay.PeerID, now time.Time) bool {
	t, ok := n.deadUntil[q]
	if !ok {
		return false
	}
	if now.After(t) {
		delete(n.deadUntil, q)
		return false
	}
	return true
}

// learnRingLocked folds piggybacked successor/predecessor wire fields
// into the ring view, skipping self and quarantined peers — gossip from
// third parties must not resurrect a neighbor this node declared dead.
// from is the message sender: its own entry (wireFields prepends self)
// counts as firsthand evidence, everything else is hearsay. Hardened,
// every claim is cross-checked against the shared directory's admission
// record and CORRECTED rather than believed: a claim about a non-member
// is a ghost and is dropped, and a claimed position that contradicts the
// one the directory granted is replaced by the granted one (both count
// pos_rejected). An eclipse cohort's ε-flank forgeries therefore
// collapse to statements about real members at their real positions —
// worthless — while honest-but-stale gossip (a peer moved or rejoined
// and the claim predates it) still contributes its liveness information
// at the corrected position instead of being thrown away (DESIGN.md
// §14); residual attempts to move a firsthand entry by hearsay feed the
// eclipse_displaced counter.
func (n *Node) learnRingLocked(own ring.ID, from overlay.PeerID, peers []int32, poss []uint64) {
	k := len(peers)
	if len(poss) < k {
		k = len(poss)
	}
	now := time.Now()
	for i := 0; i < k; i++ {
		q := overlay.PeerID(peers[i])
		if q == n.id || n.quarantinedLocked(q, now) {
			continue
		}
		pos := ring.ID(math.Float64frombits(poss[i]))
		if n.cfg.Hardened {
			dp, ok := n.dir.memberPos(q)
			if !ok {
				n.cfg.Obs.Inc(obs.CPosRejected)
				continue
			}
			if dp != pos {
				n.cfg.Obs.Inc(obs.CPosRejected)
				pos = dp
			}
		}
		if blocked := n.rview.learn(own, n.id, q, pos, q == from); blocked > 0 {
			n.cfg.Obs.Addn(obs.CEclipseDisplaced, int64(blocked))
		}
	}
}

// detectorSweepLocked classifies every link's accrued heartbeat evidence
// (selectcore.FailureDetector) and evicts the dead ones. Called from the
// heartbeat tick after folding the round's misses; staged repair messages
// are appended to out.
func (n *Node) detectorSweepLocked(now time.Time, out []outMsg) []outMsg {
	det := n.cfg.Detector
	var dead []overlay.PeerID
	for _, q := range n.linksLocked() {
		c := n.cma[q]
		if c == nil {
			continue
		}
		switch det.Classify(n.miss[q], c.Samples(), c.Value()) {
		case selectcore.LinkSuspect:
			if _, ok := n.suspectAt[q]; !ok {
				n.suspectAt[q] = now
				n.cfg.Obs.Inc(obs.CLinkSuspect)
				n.cfg.Obs.TraceEvent("suspect", int32(n.id), uint32(q))
			}
		case selectcore.LinkDead:
			dead = append(dead, q)
		}
	}
	for _, q := range dead {
		out = n.evictDeadLocked(q, now, out)
	}
	return out
}

// evictDeadLocked removes a dead link from every routing role and repairs
// immediately: a dead ring neighbor is spliced out of the successor list
// locally, a dead long link's LSH bucket is re-filled by an Algorithm-5/6
// pass right now rather than at the next maintenance tick. Time-to-repair
// is measured from first suspicion.
func (n *Node) evictDeadLocked(q overlay.PeerID, now time.Time, out []outMsg) []outMsg {
	since := now
	if t, ok := n.suspectAt[q]; ok {
		since = t
	}
	wasLong := n.inLongOutLocked(q) || n.inLongInLocked(q)
	wasRing := n.shortSucc == q || n.shortPred == q
	n.removeLongOutLocked(q)
	n.removeLongInLocked(q)
	delete(n.pendingOut, q)
	delete(n.lookahead, q)
	delete(n.cma, q)
	delete(n.miss, q)
	delete(n.suspectAt, q)
	n.deadUntil[q] = now.Add(n.quarantineFor())
	n.rview.remove(q)
	n.cfg.Obs.Inc(obs.CLinkDeadEvict)
	n.cfg.Obs.TraceEvent("dead_evict", int32(n.id), uint32(q))
	if wasRing {
		n.refreshHeadsLocked()
		n.cfg.Obs.Inc(obs.CRingSplice)
		n.cfg.Obs.ObserveRepairRingMS(float64(now.Sub(since).Milliseconds()))
		n.cfg.Obs.TraceEvent("ring_splice", int32(n.id), uint32(q))
	}
	if wasLong {
		n.linkRepairStart = append(n.linkRepairStart, since)
		out = n.relinkLocked(out)
	}
	return out
}
