package node

import (
	"context"
	"testing"
	"time"

	"selectps/internal/overlay"
)

// TestShardCountEquivalentDeliverySets runs the same workload on a
// one-shard and an eight-shard cluster and asserts the delivery sets are
// identical: shard placement is a scheduling decision, never a protocol
// one. Run under -race this also exercises cross-shard handler/timer
// interleavings.
func TestShardCountEquivalentDeliverySets(t *testing.T) {
	deliveries := func(shards int) map[overlay.PeerID]bool {
		g, c := buildCluster(t, 150, 5, Options{Shards: shards})
		defer shutdown(t, c)
		pub := topDegree(g)
		subs := g.Neighbors(pub)
		seq := publishSize(c.Nodes[pub], 1000)
		if n, ok := await(c, pub, seq, subs, 10*time.Second); !ok {
			t.Fatalf("shards=%d: only %d/%d subscribers delivered", shards, n, len(subs))
		}
		got := make(map[overlay.PeerID]bool)
		for _, s := range subs {
			if _, ok := c.Nodes[s].Received(pub, seq); ok {
				got[s] = true
			}
		}
		return got
	}
	one := deliveries(1)
	eight := deliveries(8)
	if len(one) != len(eight) {
		t.Fatalf("delivery sets differ: S=1 got %d, S=8 got %d", len(one), len(eight))
	}
	for s := range one {
		if !eight[s] {
			t.Fatalf("subscriber %d delivered at S=1 but not at S=8", s)
		}
	}
}

// TestShardAssignmentCoversAllNodes checks every node is pinned to a
// shard within range and that the hash spreads nodes across all shards.
func TestShardAssignmentCoversAllNodes(t *testing.T) {
	_, c := buildCluster(t, 200, 3, Options{Shards: 4})
	defer shutdown(t, c)
	used := make(map[int]int)
	for _, n := range c.Nodes {
		if n.sh == nil {
			t.Fatalf("node %d has no shard", n.id)
		}
		used[n.sh.idx]++
	}
	if len(used) != 4 {
		t.Fatalf("only %d of 4 shards received nodes: %v", len(used), used)
	}
}

// TestCrashRejoinReschedulesOnWheel drives a node through Crash and
// Rejoin and asserts the shard wheel keeps scheduling it: the rejoined
// node must heartbeat, gossip, and answer publications again — the
// rescheduling contract that replaced per-node tickers surviving
// Pause/Resume.
func TestCrashRejoinReschedulesOnWheel(t *testing.T) {
	g, c := buildCluster(t, 120, 7, Options{
		HeartbeatEvery: 25 * time.Millisecond,
		GossipEvery:    50 * time.Millisecond,
		MaintainEvery:  25 * time.Millisecond,
		RetryBase:      20 * time.Millisecond,
		RetryBudget:    100, // generous: -race on one core makes every round slow
	})
	defer shutdown(t, c)
	pub := topDegree(g)
	subs := g.Neighbors(pub)
	victim := subs[0]

	c.Crash(victim)
	// While crashed, the victim's wheel entries keep firing but its
	// protocol body is skipped; the cluster keeps delivering to others.
	seq := publishSize(c.Nodes[pub], 100)
	rest := make([]overlay.PeerID, 0, len(subs)-1)
	for _, s := range subs[1:] {
		rest = append(rest, s)
	}
	if n, ok := await(c, pub, seq, rest, 10*time.Second); !ok {
		t.Fatalf("with %d crashed: only %d/%d other subscribers delivered", victim, n, len(rest))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Rejoin(ctx, victim, pub); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	// The repair engine (running on the publisher's shard wheel) must
	// re-send until the rejoined victim gets the publication.
	if _, ok := await(c, pub, seq, []overlay.PeerID{victim}, 10*time.Second); !ok {
		t.Fatalf("rejoined node %d never received the publication via repair", victim)
	}
	// And the victim's own periodic entries must be live again: it sends
	// gossip exchanges on its wheel cadence.
	before := c.Nodes[victim].Exchanges()
	deadline := time.Now().Add(5 * time.Second)
	for c.Nodes[victim].Exchanges() == before {
		if time.Now().After(deadline) {
			t.Fatal("rejoined node stopped gossiping: wheel entry not firing")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
