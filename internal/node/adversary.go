package node

import (
	"math"
	"time"

	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/wire"
)

// This file is the adversarial tier (DESIGN.md §14): the byzantine
// behaviors a scheduled faultnet attack window turns on in its attacker
// nodes, and the defense helpers hardened honest nodes answer them with.
// Attacks are *peer* behaviors, not transport faults — an attacker keeps
// speaking well-formed wire protocol, it just lies — so they live here
// rather than in faultnet; the soak driver mirrors the schedule's
// EvAttackStart/EvAttackStop windows onto SetAdversary.

// AdversaryMode selects a node's byzantine behavior (AdvNone = honest).
type AdversaryMode uint8

// Adversary modes, mirroring faultnet's attack arms.
const (
	// AdvNone runs the honest protocol.
	AdvNone AdversaryMode = iota
	// AdvSybil cycles leave/re-join through the victim every maintain
	// tick, flooding its admission path and (when the attacker is a
	// social friend) its free clockwise arc with cheap identities.
	AdvSybil
	// AdvEclipse replaces the gossip tick with forged unsolicited pongs
	// to the victim, claiming the attacker cohort sits ε-close on both
	// flanks of the victim's ring position, plus a long-link proposal —
	// trying to monopolize the victim's successor/predecessor lists and
	// incoming link slots.
	AdvEclipse
	// AdvLiar answers gossip exchanges with an inflated mutual-friend
	// count, poisoning the learned tie strengths that drive Algorithm-2
	// identifier moves.
	AdvLiar
)

// String implements fmt.Stringer.
func (a AdversaryMode) String() string {
	switch a {
	case AdvNone:
		return "none"
	case AdvSybil:
		return "sybil"
	case AdvEclipse:
		return "eclipse"
	case AdvLiar:
		return "liar"
	default:
		return "adversary(?)"
	}
}

// SetAdversary flips this node's behavior for an attack window: mode
// AdvNone reverts to honest protocol. target is the victim and cohort
// the full attacker set (self included) — eclipse attackers vouch for
// their whole cohort, and the node's rank within it fixes which flank
// position it claims, deterministically.
func (n *Node) SetAdversary(mode AdversaryMode, target overlay.PeerID, cohort []overlay.PeerID) {
	n.mu.Lock()
	n.advTarget = target
	n.advCohort = append(n.advCohort[:0], cohort...)
	n.advRank = 0
	for i, p := range cohort {
		if p == n.id {
			n.advRank = i
			break
		}
	}
	// Stored last, under the lock, so a reader that observes the new mode
	// and then takes n.mu sees the matching target/cohort.
	n.advMode.Store(uint32(mode))
	n.mu.Unlock()
}

// Adversary returns the node's current byzantine mode (soak scoring uses
// it to exclude attackers from the eligible set).
func (n *Node) Adversary() AdversaryMode {
	return AdversaryMode(n.advMode.Load())
}

// flankPos is the forged ring position an eclipse attacker of the given
// cohort rank claims: alternating clockwise/counter-clockwise offsets in
// ε steps around the victim, so the cohort brackets the victim tighter
// than any honest neighbor can sit.
func flankPos(vpos ring.ID, rank int) ring.ID {
	off := float64(rank/2+1) * 1e-5
	if rank%2 == 1 {
		off = -off
	}
	return ring.Norm(float64(vpos) + off)
}

// adversaryMaintain runs instead of the honest maintain tick while an
// attack behavior owns it; it reports whether it did.
func (n *Node) adversaryMaintain() bool {
	if AdversaryMode(n.advMode.Load()) != AdvSybil {
		return false
	}
	n.mu.Lock()
	target := n.advTarget
	n.mu.Unlock()
	if target < 0 {
		return false
	}
	// One identity churn per tick: a member leaves, a non-member demands
	// admission from the victim — never from its honest fallbacks.
	if n.dir.isMember(n.id) {
		n.Leave()
	} else if n.dir.isMember(target) {
		n.requestJoin(target)
	}
	return true
}

// forgedRingClaimLocked renders the eclipse cohort's ε-flank claims as
// pong piggyback fields: the self entry claims this attacker's flank
// position firsthand, and the lists vouch for the rest of the cohort at
// theirs — hearsay an unhardened ring view swallows whole. ok is false
// when the node is not an armed eclipse attacker. Caller holds n.mu.
func (n *Node) forgedRingClaimLocked() (succs []int32, succPos []uint64, preds []int32, predPos []uint64, ok bool) {
	if AdversaryMode(n.advMode.Load()) != AdvEclipse || n.advTarget < 0 {
		return nil, nil, nil, nil, false
	}
	vpos := n.dir.position(n.advTarget)
	succs = []int32{int32(n.id)}
	succPos = []uint64{math.Float64bits(float64(flankPos(vpos, n.advRank)))}
	for i, q := range n.advCohort {
		if q == n.id || q == n.advTarget {
			continue
		}
		p := math.Float64bits(float64(flankPos(vpos, i)))
		if len(succs) <= len(preds) {
			succs = append(succs, int32(q))
			succPos = append(succPos, p)
		} else {
			preds = append(preds, int32(q))
			predPos = append(predPos, p)
		}
	}
	return succs, succPos, preds, predPos, true
}

// adversaryGossip runs instead of the honest exchange tick while an
// attack behavior owns it; it reports whether it did.
func (n *Node) adversaryGossip() bool {
	if AdversaryMode(n.advMode.Load()) != AdvEclipse {
		return false
	}
	n.mu.Lock()
	target := n.advTarget
	succs, succPos, preds, predPos, ok := n.forgedRingClaimLocked()
	var pongSeq, propSeq uint32
	if ok {
		pongSeq = n.nextSeq()
		propSeq = n.nextSeq()
	}
	n.mu.Unlock()
	if !ok {
		return false
	}
	// A forged unsolicited pong lands on the victim's late-pong path and
	// folds the cohort's flank claims into its ring view.
	_ = n.tr.Send(int32(target), &wire.Message{
		Kind: wire.KindPong, From: int32(n.id), To: int32(target), Seq: pongSeq,
		Succs: succs, SuccPos: succPos, Preds: preds, PredPos: predPos,
	})
	// And a long-link proposal, grinding at the victim's K incoming slots.
	_ = n.tr.Send(int32(target), &wire.Message{
		Kind: wire.KindLinkProposal, From: int32(n.id), To: int32(target), Seq: propSeq,
	})
	return true
}

// adversaryBlackhole reports whether an armed eclipse attacker should
// silently eat a publication copy addressed to someone else — the
// payoff of the attack: the forged flank claims attract the victim's
// short-range traffic, and everything routed through the attacker
// disappears. Copies addressed to the attacker itself are still
// consumed normally (a blackhole that stops acking its own deliveries
// would out itself to the failure detector immediately).
func (n *Node) adversaryBlackhole(target overlay.PeerID) bool {
	if AdversaryMode(n.advMode.Load()) != AdvEclipse {
		return false
	}
	return target != n.id
}

// liarMutual is the AdvLiar exchange answer: claim more mutual friends
// than either neighborhood can hold, dragging the victim's learned tie
// strength for this attacker toward the maximum so Algorithm-2 anchors
// on it.
func (n *Node) liarMutual(honest, theirLen int) int {
	if AdversaryMode(n.advMode.Load()) != AdvLiar {
		return honest
	}
	return 2*theirLen + 16
}

// --- defenses (Options.Hardened) ---

// pruneWindow drops timestamps at or before cutoff from an
// append-ordered window.
func pruneWindow(ts []time.Time, cutoff time.Time) []time.Time {
	i := 0
	for i < len(ts) && !ts[i].After(cutoff) {
		i++
	}
	return append(ts[:0], ts[i:]...)
}

// joinGrant is one remembered admission: when it was granted, the
// position that was assigned, and how many times the cache answered for
// it (the hardened cooldown cache below).
type joinGrant struct {
	t      time.Time
	pos    ring.ID
	served int
}

// joinServeCap bounds how many repeat requests per JoinRateWindow the
// admission cache answers before going silent. An honest joiner whose
// grant reply was lost resends and is re-answered immediately (three
// consecutive reply losses at 10% link loss is a 0.1% event), so honest
// rejoins never stall — while a sybil cycling leave/join through the
// same identity is capped at 1+joinServeCap admissions per window, all
// at one fixed position.
const joinServeCap = 3

// cachedJoinLocked is the hardened admission damper: a per-identity
// re-join cooldown served from the admission cache. An identity this
// inviter already placed within the last JoinRateWindow gets the SAME
// position back with no new placement work — one Algorithm-1 placement
// per window per identity is all anyone gets, so no flood can
// concentrate an arc or churn the directory — and past joinServeCap
// repeats the request is dropped outright (drop=true, sybil_rejected).
// Keyed per identity, not a global rate, so a victim under flood still
// admits every honest newcomer at full speed.
func (n *Node) cachedJoinLocked(now time.Time, q overlay.PeerID) (pos ring.ID, cached, drop bool) {
	if !n.cfg.Hardened {
		return 0, false, false
	}
	g, ok := n.joinAdmits[q]
	if !ok || now.Sub(g.t) >= n.cfg.JoinRateWindow {
		return 0, false, false
	}
	if g.served >= joinServeCap {
		n.cfg.Obs.Inc(obs.CSybilRejected)
		return 0, true, true
	}
	g.served++
	n.joinAdmits[q] = g
	return g.pos, true, false
}

// recordJoinLocked arms the cooldown cache after a fresh placement.
func (n *Node) recordJoinLocked(now time.Time, q overlay.PeerID, pos ring.ID) {
	if !n.cfg.Hardened {
		return
	}
	if n.joinAdmits == nil {
		n.joinAdmits = make(map[overlay.PeerID]joinGrant)
	}
	n.joinAdmits[q] = joinGrant{t: now, pos: pos}
}

// arcGrantLocked is the hardened arc-occupancy cap: at most ArcJoinCap
// Algorithm-1 social placements inside this inviter's free arc (one LSH
// region) per JoinRateWindow. Overflow friends are diverted to their
// uniform independent-join position (sybil_diverted) — the same spread
// non-friends always get — so no window of joins can concentrate one
// bucket.
func (n *Node) arcGrantLocked(now time.Time) bool {
	if !n.cfg.Hardened {
		return true
	}
	n.arcGrants = pruneWindow(n.arcGrants, now.Add(-n.cfg.JoinRateWindow))
	if len(n.arcGrants) >= n.cfg.ArcJoinCap {
		n.cfg.Obs.Inc(obs.CSybilDiverted)
		return false
	}
	n.arcGrants = append(n.arcGrants, now)
	return true
}

// clampMutual is the count-sanity rule on exchange replies: mutual
// friends are a subset of both endpoints' neighborhoods, so any claim
// above min(deg(self), deg(peer)) — or below zero — is a lie. Every
// out-of-range claim is counted (strength_clamped), hardened or not, so
// the defenses-off ablation measures how many lies it swallowed.
// Hardened nodes REJECT the claim (ok=false: keep the previously
// learned strength) rather than capping it — clamping to the bound
// would hand the liar the maximum strength it could have claimed
// honestly, which is the whole prize of the attack.
func (n *Node) clampMutual(nm int, from overlay.PeerID) (int, bool) {
	lim := n.g.Degree(n.id)
	if d := n.g.Degree(from); d < lim {
		lim = d
	}
	if nm >= 0 && nm <= lim {
		return nm, true
	}
	n.cfg.Obs.Inc(obs.CStrengthClamped)
	return nm, !n.cfg.Hardened
}
