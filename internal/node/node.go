// Package node is the live deployment of a SELECT overlay: peers speak
// the wire protocol over a transport (in-memory switchboard or real TCP
// loopback sockets), scheduled on S sharded event loops — each shard owns
// a hashed timer wheel and a multiplexed mailbox for all its nodes
// (shard.go, DESIGN.md §11) — so one process hosts thousands of live
// peers without one goroutine per peer. It corresponds to the paper's
// "realistic experiments" runtime (§IV-D), where the simulator is
// replaced by actual message passing.
//
// Unlike earlier revisions, the runtime is no longer handed a frozen
// overlay: each node owns its routing state and maintains it live with
// the same decision rules the simulator converges with (selectcore):
//
//   - directed publication forwarding (§III-E): the publisher unicasts to
//     every subscriber; intermediate nodes forward greedily using only
//     their own links and their cached lookahead;
//   - the peer-sampling exchange (Algorithms 3–4): nodes periodically send
//     their neighborhood and routing table to a random friend and receive
//     the mutual-friend count — from which they learn social strength —
//     and the friend's link bitmap over their neighborhood, which feeds
//     the LSH link reassignment;
//   - live maintenance (Algorithms 1–2, 5–6): joins are placed next to
//     their inviter, identifiers periodically move to the midpoint of the
//     two strongest friends, and long-range links are rebuilt from LSH
//     buckets over the learned bitmaps, with incoming-degree capping and
//     bandwidth eviction (maintain.go);
//   - heartbeats feeding per-link CMA availability (§III-F).
package node

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"selectps/internal/churn"
	"selectps/internal/inbox"
	"selectps/internal/lsh"
	"selectps/internal/obs"
	"selectps/internal/overlay"
	"selectps/internal/ring"
	"selectps/internal/selectcore"
	"selectps/internal/socialgraph"
	"selectps/internal/transport"
	"selectps/internal/wire"
)

// msgID identifies a publication.
type msgID struct {
	Publisher int32
	Seq       uint32
}

// Delivery is one first-time publication delivery as the application
// sees it: who published, on which topic (the publisher's implicit
// UserTopic for friend-feed publications), and the payload with its
// routing and durability metadata.
type Delivery struct {
	Publisher overlay.PeerID
	Topic     string
	Seq       uint32
	Hops      uint8
	Priority  uint8
	Payload   []byte
}

// DeliverFunc is the push handler for first-time publication deliveries.
type DeliverFunc func(d Delivery)

// outMsg is a message staged under n.mu and sent after unlock (the
// transport must never be entered while holding the node lock).
type outMsg struct {
	to int32
	m  *wire.Message
}

// Node is one live peer.
type Node struct {
	id  overlay.PeerID
	g   *socialgraph.Graph
	dir *directory
	tr  transport.Transport
	// fs is the transport's optional marshal-once fan-out path (TCP): the
	// publish and heartbeat sweeps encode one frame and patch the To/Seq
	// fields per destination. Nil on the switchboard and under faultnet,
	// which keeps those paths byte-deterministic and fault-injectable.
	fs     transport.FrameSender
	cfg    Options
	rng    *rand.Rand
	hasher *lsh.Hasher
	// sampler picks gossip-exchange partners: a PeerSwap-style swap
	// sampler (selectcore) with private seeded state, so exchange-partner
	// choice is uniform with bounded gaps and cannot be steered by
	// inbound traffic advancing the general-purpose rng.
	sampler *selectcore.Sampler
	bw      []float64 // shared, read-only

	mu sync.Mutex
	// Live routing state: ring membership, short-range ring neighbors and
	// the two directed long-link sets (R_p = short ∪ longOut ∪ longIn).
	joined               bool
	wantJoin             bool
	inviterPref          overlay.PeerID
	shortSucc, shortPred overlay.PeerID
	longOut, longIn      []overlay.PeerID
	pendingOut           map[overlay.PeerID]bool
	// Learned social state (Algorithm 3–4): strength[i] is the tie to
	// C_p[i], -1 until an exchange reply carried its mutual count;
	// bitmaps[f] is f's link bitmap over C_p from the latest reply.
	strength []float64
	bitmaps  map[overlay.PeerID][]uint64
	fidx     map[overlay.PeerID]int
	// rview is the decentralized r-deep successor/predecessor view the
	// ring links come from (ringlist.go); the directory's ringNeighbors
	// scan is bootstrap-only.
	rview ringView
	// seen dedups directed copies passing through; received records local
	// deliveries with their hop count, bounded FIFO by recvOrder
	// (DedupWindow).
	seen      map[msgID]bool
	received  map[msgID]uint8
	recvOrder []msgID
	// lookahead caches neighbors' routing tables learned via ExchangeRT.
	lookahead map[overlay.PeerID][]overlay.PeerID
	// cma tracks per-link availability from heartbeats; miss is the
	// consecutive-miss streak and suspectAt when suspicion started — the
	// accrual failure detector's evidence (repair.go).
	cma       map[overlay.PeerID]*churn.CMA
	miss      map[overlay.PeerID]int
	suspectAt map[overlay.PeerID]time.Time
	// deadUntil quarantines evicted-dead peers: piggybacked successor
	// lists and ID announcements from third parties must not resurrect a
	// peer this node just declared dead. First-person evidence (a pong or
	// the peer's own announcement) clears it.
	deadUntil map[overlay.PeerID]time.Time
	// linkRepairStart queues eviction times of dead long links awaiting a
	// replacement LinkAccept, feeding the time-to-repair histogram.
	linkRepairStart []time.Time
	// pendingPings: seq -> target of pings not yet answered.
	pendingPings map[uint32]overlay.PeerID
	// acked records publication acks seen by this node (publisher role),
	// bounded FIFO by ackOrder (PubHistory).
	acked    map[msgID]map[int32]bool
	ackOrder []msgID
	// pubs is the delivery-repair engine's per-publication state
	// (repair.go); deadline changes re-arm the shard wheel via kickRetry.
	pubs        map[uint32]*pubState
	deadLetters []DeadLetter
	// Durable delivery tier state (inbox.go): claim is the subscriber's
	// in-flight lease cycle, replay the replica-side drains keyed by
	// target, claimEpoch the seed that varies the lease order per cycle.
	claim      *claimState
	replay     map[overlay.PeerID]*replayState
	claimEpoch uint32
	// Topic tier state (topic.go): subTopics is this node's own
	// subscriptions, topicReg the rendezvous-side subscriber registry,
	// tpubs the publisher-side rendezvous hand-off rounds, and tpOrigin
	// maps an accepted publication's origin id to the local repair seq
	// its pubState is keyed by (the ack/deposit correlation for repair
	// state whose owner is not the origin publisher).
	subTopics map[string]*topicSub
	topicReg  map[string]map[overlay.PeerID]time.Time
	tpubs     map[uint32]*topicPubState
	tpOrigin  map[msgID]uint32
	// Hardened admission state (adversary.go): the last granted join per
	// identity (the re-join cooldown cache, time + assigned position) and
	// the sliding window of friend-arc placements this inviter made.
	joinAdmits map[overlay.PeerID]joinGrant
	arcGrants  []time.Time
	// Adversary hooks (adversary.go): the soak driver mirrors faultnet's
	// scheduled attack windows onto these; honest nodes keep AdvNone.
	// advMode is atomic so the hot paths (every publish checks the
	// blackhole hook) read it without touching n.mu.
	advMode   atomic.Uint32
	advTarget overlay.PeerID
	advCohort []overlay.PeerID
	advRank   int
	// joinNext/joinAttempt schedule join-request resends on the repair
	// timer; joinedCh closes when the node becomes a ring member.
	joinNext    time.Time
	joinAttempt int
	joinedCh    chan struct{}
	// exchanges counts completed Algorithm-3 rounds (active side).
	exchanges int
	seq       uint32
	onDeliver DeliverFunc
	// Algorithm-5 scratch (maintain.go).
	idx         selectcore.Indexer
	coords      []int
	pickScratch []int32

	// Frame-economy fast path (DESIGN.md §15, ackbatch.go): ackBatch is
	// the resolved coalescing switch; ackBuf holds buffered ack entries
	// per next hop; ackFlushArmed guards the one-shot tkAckFlush wheel
	// entry against re-arm (the wheel's Schedule is an upsert — re-arming
	// would push the deadline back under sustained traffic).
	ackBatch      bool
	ackBuf        map[overlay.PeerID][]wire.AckEntry
	ackFlushArmed bool
	// Heartbeat piggybacking: lastHeard stamps the most recent inbound
	// frame per peer (liveness evidence), hbSkip counts consecutive
	// suppressed pings so the ring's pong anti-entropy keeps a floor.
	hbPiggyback bool
	lastHeard   map[overlay.PeerID]time.Time
	hbSkip      map[overlay.PeerID]int

	// paused simulates an unresponsive peer (churn): incoming messages are
	// consumed and dropped, nothing is sent.
	paused atomic.Bool

	// sh is the event-loop shard this node is pinned to (shard.go): all
	// its timers fire and all its inbound messages are handled there.
	sh *shard
}

// newNode wires a node; Start pins it to a shard and arms its wheel
// entries (shard.go).
func newNode(id overlay.PeerID, dir *directory, bw []float64, cfg Options, seed int64) *Node {
	friends := cfg.Graph.Neighbors(id)
	buckets := cfg.K
	if buckets < 1 {
		buckets = 1
	}
	n := &Node{
		id: id, g: cfg.Graph, dir: dir, tr: cfg.Transport, cfg: cfg,
		rng:          rand.New(rand.NewSource(seed)),
		hasher:       lsh.NewHasher(len(friends), buckets, 0, rand.New(rand.NewSource(seed^0x15b))),
		sampler:      selectcore.NewSampler(peersToInt32s(friends), selectcore.SamplerSeed(seed, int32(id))),
		bw:           bw,
		inviterPref:  -1,
		shortSucc:    -1,
		shortPred:    -1,
		rview:        ringView{r: cfg.SuccListLen, hardened: cfg.Hardened},
		pendingOut:   make(map[overlay.PeerID]bool),
		strength:     make([]float64, len(friends)),
		bitmaps:      make(map[overlay.PeerID][]uint64),
		fidx:         make(map[overlay.PeerID]int, len(friends)),
		seen:         make(map[msgID]bool),
		received:     make(map[msgID]uint8),
		lookahead:    make(map[overlay.PeerID][]overlay.PeerID),
		cma:          make(map[overlay.PeerID]*churn.CMA),
		miss:         make(map[overlay.PeerID]int),
		suspectAt:    make(map[overlay.PeerID]time.Time),
		deadUntil:    make(map[overlay.PeerID]time.Time),
		pendingPings: make(map[uint32]overlay.PeerID),
		acked:        make(map[msgID]map[int32]bool),
		pubs:         make(map[uint32]*pubState),
		subTopics:    make(map[string]*topicSub),
		topicReg:     make(map[string]map[overlay.PeerID]time.Time),
		tpubs:        make(map[uint32]*topicPubState),
		tpOrigin:     make(map[msgID]uint32),
		joinedCh:     make(chan struct{}),
	}
	for i := range n.strength {
		n.strength[i] = -1
	}
	for i, f := range friends {
		n.fidx[f] = i
	}
	if fs, ok := cfg.Transport.(transport.FrameSender); ok {
		n.fs = fs
	}
	switch cfg.AckBatch {
	case AckBatchOn:
		n.ackBatch = true
	case AckBatchOff:
	default:
		// Auto: batch only on raw framed transports — the same gate as
		// the marshal-once heartbeat path, so faultnet-wrapped chaos
		// schedules keep the one-frame-per-ack protocol byte-identical.
		n.ackBatch = n.fs != nil
	}
	if n.ackBatch {
		n.ackBuf = make(map[overlay.PeerID][]wire.AckEntry)
	}
	n.hbPiggyback = cfg.HeartbeatEvery > 0 && !cfg.NoHeartbeatPiggyback
	if n.hbPiggyback {
		n.lastHeard = make(map[overlay.PeerID]time.Time)
		n.hbSkip = make(map[overlay.PeerID]int)
	}
	return n
}

func (n *Node) nextSeq() uint32 {
	n.seq++
	return n.seq
}

func (n *Node) handle(m *wire.Message) {
	if n.hbPiggyback && m.From >= 0 && overlay.PeerID(m.From) != n.id &&
		m.Kind != wire.KindPing && m.Kind != wire.KindPong {
		// Any inbound non-heartbeat frame is liveness evidence for its
		// sender: the next heartbeat sweep skips pinging links that carried
		// traffic inside the interval (sendHeartbeats) instead of
		// generating a redundant ping/pong pair. Pings and pongs are
		// excluded — the probe channel must not feed its own suppression,
		// or an idle mesh would throttle the pong-borne ring anti-entropy
		// it has no other way to run.
		n.mu.Lock()
		n.lastHeard[overlay.PeerID(m.From)] = time.Now()
		n.mu.Unlock()
	}
	switch m.Kind {
	case wire.KindPing:
		// Pongs piggyback the responder's successor/predecessor lists —
		// the anti-entropy channel that keeps every heartbeating pair's
		// ring views converging without extra messages.
		reply := &wire.Message{Kind: wire.KindPong, From: int32(n.id), To: m.From, Seq: m.Seq}
		n.mu.Lock()
		if ss, sp, ps, pp, forged := n.forgedRingClaimLocked(); forged && overlay.PeerID(m.From) == n.advTarget {
			// An armed eclipse attacker answers its victim's heartbeats
			// with the same forged flank claims its gossip tick pushes.
			reply.Succs, reply.SuccPos, reply.Preds, reply.PredPos = ss, sp, ps, pp
		} else if n.joined {
			reply.Succs, reply.SuccPos, reply.Preds, reply.PredPos =
				n.rview.wireFields(n.id, n.dir.position(n.id))
		}
		n.mu.Unlock()
		_ = n.tr.Send(m.From, reply)
	case wire.KindPong:
		n.cfg.Obs.Inc(obs.CPongReceived)
		n.mu.Lock()
		if target, ok := n.pendingPings[m.Seq]; ok && target == overlay.PeerID(m.From) {
			delete(n.pendingPings, m.Seq)
			n.observe(target, true)
		} else {
			// Late pong (already counted as a miss at the last heartbeat
			// tick): the peer evidently is alive — record the recovery so
			// slow links do not read as dead ones.
			n.cfg.Obs.Inc(obs.CLatePongRecover)
			n.observe(overlay.PeerID(m.From), true)
		}
		if n.joined && len(m.Succs) > 0 {
			own := n.dir.position(n.id)
			from := overlay.PeerID(m.From)
			n.learnRingLocked(own, from, m.Succs, m.SuccPos)
			n.learnRingLocked(own, from, m.Preds, m.PredPos)
			n.refreshHeadsLocked()
		}
		n.mu.Unlock()
	case wire.KindExchangeRT:
		n.handleExchange(m)
	case wire.KindExchangeReply:
		n.handleExchangeReply(m)
	case wire.KindPublish:
		n.handlePublish(m)
	case wire.KindAck:
		n.routeOrConsumeAck(m)
	case wire.KindAckBatch:
		n.handleAckBatch(m)
	case wire.KindJoinRequest:
		n.handleJoinRequest(m)
	case wire.KindJoinReply:
		n.handleJoinReply(m)
	case wire.KindIDAnnounce:
		n.cfg.Obs.Inc(obs.CIDAnnounce)
		// A joined or moved peer announced its identifier: fold it into
		// the ring view so successor lists track Algorithm-2 moves.
		n.mu.Lock()
		if n.joined {
			// The announcement comes from the peer itself — first-person
			// liveness evidence that overrides any dead-quarantine.
			delete(n.deadUntil, overlay.PeerID(m.From))
			n.learnRingLocked(n.dir.position(n.id), overlay.PeerID(m.From),
				[]int32{m.From}, []uint64{m.Pos})
			n.refreshHeadsLocked()
		}
		n.mu.Unlock()
	case wire.KindLinkProposal:
		n.handleLinkProposal(m)
	case wire.KindLinkAccept:
		n.handleLinkAccept(m)
	case wire.KindLinkDrop:
		n.handleLinkDrop(m)
	case wire.KindLeave:
		n.handleLeave(m)
	case wire.KindInboxDeposit:
		n.handleInboxDeposit(m)
	case wire.KindInboxDepositAck:
		n.handleInboxDepositAck(m)
	case wire.KindInboxClaim:
		n.handleInboxClaim(m)
	case wire.KindInboxLease:
		n.handleInboxLease(m)
	case wire.KindInboxReplay:
		n.handleInboxReplay(m)
	case wire.KindInboxReplayAck:
		n.handleInboxReplayAck(m)
	case wire.KindTopicSub:
		n.handleTopicSub(m)
	case wire.KindTopicSubAck:
		n.handleTopicSubAck(m)
	case wire.KindTopicUnsub:
		n.handleTopicUnsub(m)
	case wire.KindTopicPub:
		n.handleTopicPub(m)
	case wire.KindTopicPubAck:
		n.handleTopicPubAck(m)
	case wire.KindTopicHandoff:
		n.handleTopicHandoff(m)
	}
}

// linksLocked returns R_p (short ∪ longOut ∪ longIn, deduplicated).
// Callers hold n.mu; the returned slice is freshly allocated.
func (n *Node) linksLocked() []overlay.PeerID {
	out := make([]overlay.PeerID, 0, 2+len(n.longOut)+len(n.longIn))
	add := func(q overlay.PeerID) {
		if q < 0 || q == n.id {
			return
		}
		for _, x := range out {
			if x == q {
				return
			}
		}
		out = append(out, q)
	}
	add(n.shortSucc)
	add(n.shortPred)
	for _, q := range n.longOut {
		add(q)
	}
	for _, q := range n.longIn {
		add(q)
	}
	return out
}

// linksSnapshot is linksLocked with locking.
func (n *Node) linksSnapshot() []overlay.PeerID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.linksLocked()
}

// handleExchange is the passive thread of Algorithm 4: compare the
// received neighborhood with the local one, return the mutual count and
// the friendship bitmap over the sender's neighborhood, and cache the
// sender's routing table as lookahead.
func (n *Node) handleExchange(m *wire.Message) {
	mine := n.g.Neighbors(n.id)
	theirs := int32sToPeers(m.Neighborhood)
	mutual := n.liarMutual(countMutualSorted(mine, theirs), len(theirs))
	n.mu.Lock()
	links := n.linksLocked()
	n.lookahead[overlay.PeerID(m.From)] = int32sToPeers(m.RoutingTable)
	n.mu.Unlock()
	// Friendship bitmap over the SENDER's neighborhood: bit i set when
	// their i-th friend is in our routing table.
	inRT := make(map[overlay.PeerID]bool, len(links))
	for _, q := range links {
		inRT[q] = true
	}
	words := (len(theirs) + 63) / 64
	bitmap := make([]uint64, words)
	for i, f := range theirs {
		if inRT[f] {
			bitmap[i/64] |= 1 << (i % 64)
		}
	}
	reply := &wire.Message{
		Kind: wire.KindExchangeReply, From: int32(n.id), To: m.From, Seq: m.Seq,
		NMutual:      int32(mutual),
		Bitmap:       bitmap,
		RoutingTable: peersToInt32s(links),
	}
	_ = n.tr.Send(m.From, reply)
}

// handleExchangeReply is the active thread's learning step: the mutual
// count yields the tie strength (selectcore.StrengthFromCounts — the
// same formula the simulator evaluates from graph reads), the bitmap
// feeds the Algorithm-5 link pass, and the routing table becomes
// lookahead.
func (n *Node) handleExchangeReply(m *wire.Message) {
	n.cfg.Obs.Inc(obs.CGossipReply)
	from := overlay.PeerID(m.From)
	n.mu.Lock()
	n.lookahead[from] = int32sToPeers(m.RoutingTable)
	if i, ok := n.fidx[from]; ok {
		if nm, sane := n.clampMutual(int(m.NMutual), from); sane {
			n.strength[i] = selectcore.StrengthFromCounts(
				n.g.Degree(n.id), n.g.Degree(from), nm)
		}
		n.bitmaps[from] = m.Bitmap
	}
	n.exchanges++
	n.mu.Unlock()
}

// sendExchange is the active thread of Algorithm 3: draw the next social
// friend from the swap sampler and send it the neighborhood and routing
// table. Every friend is exchanged with exactly once per sampler round,
// so no tie strength goes stale longer than 2·deg−1 gossip ticks.
func (n *Node) sendExchange() {
	if n.adversaryGossip() {
		return
	}
	n.mu.Lock()
	fi, ok := n.sampler.Next()
	links := n.linksLocked()
	seq := n.nextSeq()
	n.mu.Unlock()
	if !ok {
		return
	}
	f := overlay.PeerID(fi)
	n.cfg.Obs.Inc(obs.CGossipSent)
	m := &wire.Message{
		Kind: wire.KindExchangeRT, From: int32(n.id), To: int32(f), Seq: seq,
		Neighborhood: peersToInt32s(n.g.Neighbors(n.id)),
		RoutingTable: peersToInt32s(links),
	}
	_ = n.tr.Send(int32(f), m)
}

// sendHeartbeats pings every link; unanswered pings from the previous
// round count as offline observations (§III-F probes). After folding the
// round's misses the accrual detector sweep runs: dead links are evicted
// and repaired before the next pings go out (repair.go).
func (n *Node) sendHeartbeats() {
	now := time.Now()
	cutoff := now.Add(-n.cfg.HeartbeatEvery)
	var out []outMsg
	n.mu.Lock()
	// fresh reports whether q's traffic inside the last interval already
	// proved it alive (piggybacked liveness, DESIGN.md §15). Always false
	// with piggybacking off — idle links see the exact legacy protocol,
	// so failure-detection latency is unchanged where it matters.
	fresh := func(q overlay.PeerID) bool {
		return n.hbPiggyback && n.lastHeard[q].After(cutoff)
	}
	for _, target := range n.pendingPings {
		if fresh(target) {
			// The pong never came but data frames did: the link is alive,
			// the miss would be pure noise. The links loop below records
			// the round's (single) online observation.
			continue
		}
		n.cfg.Obs.Inc(obs.CHeartbeatMiss)
		n.observe(target, false)
	}
	n.pendingPings = make(map[uint32]overlay.PeerID)
	out = n.detectorSweepLocked(now, out)
	links := n.linksLocked()
	// Hardened: also probe unverified ring candidates sitting ahead of the
	// firsthand heads — their pong self-entry upgrades them so the head
	// preference for verified peers cannot pin the ring on stale links.
	// Probation peers are exempt from suppression (links[probe:]): only a
	// pong's self-entry can upgrade them, so they always get a real ping.
	probe := len(links)
	for _, q := range n.rview.probation(n.dir.isMember) {
		dup := false
		for _, x := range links {
			if x == q {
				dup = true
				break
			}
		}
		if !dup {
			links = append(links, q)
		}
	}
	seqs := make(map[uint32]overlay.PeerID, len(links))
	for i, q := range links {
		if i < probe && fresh(q) && n.hbSkip[q] < hbSuppressMax {
			// Heartbeat piggybacking: the link moved data this interval, so
			// its ping would be redundant — fold the traffic as this round's
			// online sample instead (exactly one detector sample per link
			// per round, same as a pong). Every hbSuppressMax-th round still
			// pings: pongs carry successor lists, the ring's anti-entropy
			// channel, which data frames do not.
			n.hbSkip[q]++
			n.observe(q, true)
			n.cfg.Obs.Inc(obs.CHeartbeatSuppress)
			continue
		}
		delete(n.hbSkip, q)
		s := n.nextSeq()
		seqs[s] = q
		n.pendingPings[s] = q
	}
	n.mu.Unlock()
	for _, o := range out {
		_ = n.tr.Send(o.to, o.m)
	}
	n.cfg.Obs.Addn(obs.CHeartbeatSent, int64(len(seqs)))
	if n.fs != nil {
		// Marshal-once fast path: every ping this sweep differs only in To
		// and Seq — encode the frame once and patch both per target.
		buf := wire.GetFrame()
		*buf = wire.MarshalAppend((*buf)[:0], &wire.Message{Kind: wire.KindPing, From: int32(n.id)})
		for s, q := range seqs {
			wire.PatchTo(*buf, int32(q))
			wire.PatchSeq(*buf, s)
			_ = n.fs.SendFrame(int32(n.id), int32(q), *buf)
		}
		wire.PutFrame(buf)
		return
	}
	for s, q := range seqs {
		_ = n.tr.Send(int32(q), &wire.Message{Kind: wire.KindPing, From: int32(n.id), To: int32(q), Seq: s})
	}
}

// observe folds one availability sample for link q into the CMA and the
// consecutive-miss streak the failure detector classifies. Callers hold
// n.mu.
func (n *Node) observe(q overlay.PeerID, online bool) {
	c := n.cma[q]
	if c == nil {
		c = &churn.CMA{}
		n.cma[q] = c
	}
	c.Observe(online)
	if online {
		n.miss[q] = 0
		delete(n.suspectAt, q)
		delete(n.deadUntil, q)
	} else {
		n.miss[q]++
	}
}

// handlePublish processes a directed publication copy: deliver locally
// when this node is the target, forward otherwise.
func (n *Node) handlePublish(m *wire.Message) {
	if n.adversaryBlackhole(overlay.PeerID(m.To)) {
		return
	}
	id := msgID{m.Publisher, m.Seq}
	if overlay.PeerID(m.To) == n.id {
		topic := UserTopic(overlay.PeerID(m.Publisher))
		n.mu.Lock()
		dup := !n.rememberDeliveryLocked(id, m.HopCount)
		handler := n.deliverHandlerLocked(topic)
		n.mu.Unlock()
		if dup {
			n.cfg.Obs.Inc(obs.CPublishDuplicate)
		} else {
			n.cfg.Obs.Inc(obs.CPublishDelivered)
			n.cfg.Obs.ObserveHops(float64(m.HopCount))
			n.cfg.Obs.TraceEvent("deliver", int32(n.id), m.Seq)
			if handler != nil {
				handler(Delivery{
					Publisher: overlay.PeerID(m.Publisher), Topic: topic,
					Seq: m.Seq, Hops: m.HopCount, Priority: m.Priority,
					Payload: m.Payload,
				})
			}
		}
		// Ack back to the publisher (directed).
		if overlay.PeerID(m.Publisher) != n.id {
			if n.ackBatch {
				n.queueAck(wire.AckEntry{
					Kind: wire.KindAck, From: int32(n.id), Dest: m.Publisher,
					Pub: m.Publisher, Seq: m.Seq, TTL: n.cfg.TTL,
				}, false)
			} else {
				ack := &wire.Message{
					Kind: wire.KindAck, From: int32(n.id), To: m.Publisher,
					Seq: m.Seq, Publisher: m.Publisher, TTL: n.cfg.TTL,
				}
				n.forward(ack, overlay.PeerID(m.Publisher))
			}
		}
		return
	}
	if m.TTL == 0 {
		n.cfg.Obs.Inc(obs.CPublishTTLDrop)
		n.cfg.Obs.TraceEvent("ttl_drop", int32(n.id), m.Seq)
		return
	}
	m.TTL--
	m.HopCount++
	n.cfg.Obs.Inc(obs.CPublishForwarded)
	n.forward(m, overlay.PeerID(m.To))
}

// routeOrConsumeAck delivers an ack to this node (publisher) or forwards
// it toward the publisher.
func (n *Node) routeOrConsumeAck(m *wire.Message) {
	if overlay.PeerID(m.To) == n.id {
		n.mu.Lock()
		n.consumeAckLocked(m.From, m.Publisher, m.Seq)
		n.mu.Unlock()
		n.cfg.Obs.Inc(obs.CAckReceived)
		return
	}
	if m.TTL == 0 {
		return
	}
	m.TTL--
	n.forward(m, overlay.PeerID(m.To))
}

// forward sends m one hop toward target using only local knowledge: a
// direct link, the cached lookahead (a neighbor whose routing table holds
// the target), or the link greedily closest to the target's identifier.
func (n *Node) forward(m *wire.Message, target overlay.PeerID) {
	next, ok := n.nextHop(target)
	if !ok {
		// Dead end; the publisher's ack accounting will notice.
		n.cfg.Obs.Inc(obs.CPublishDeadEnd)
		n.cfg.Obs.TraceEvent("dead_end", int32(n.id), m.Seq)
		return
	}
	_ = n.tr.Send(int32(next), m)
}

func (n *Node) nextHop(target overlay.PeerID) (overlay.PeerID, bool) {
	links := n.linksSnapshot()
	// Accrual liveness (§III-F, selectcore.FailureDetector): links the
	// detector marks suspect or dead are avoided as intermediate hops — a
	// responsive peer (no current miss streak) is always usable, whatever
	// its history, and a direct link to the target itself is always tried
	// (the message can only be for that peer).
	alive := func(q overlay.PeerID) bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		c := n.cma[q]
		if c == nil {
			return true
		}
		return n.cfg.Detector.Classify(n.miss[q], c.Samples(), c.Value()) == selectcore.LinkAlive
	}
	for _, q := range links {
		if q == target {
			return q, true
		}
	}
	// Lookahead: a live neighbor that lists the target in its routing
	// table.
	n.mu.Lock()
	var via overlay.PeerID = -1
	for _, q := range links {
		for _, r := range n.lookahead[q] {
			if r == target {
				via = q
				break
			}
		}
		if via >= 0 {
			break
		}
	}
	n.mu.Unlock()
	if via >= 0 {
		if alive(via) {
			return via, true
		}
		// §III-F recovery in action: the lookahead route exists but its
		// relay looks dead — fall through to the greedy live links.
		n.cfg.Obs.Inc(obs.CCMADeadSkip)
	}
	// Greedy on the ring, avoiding links the CMA marks dead.
	best := overlay.PeerID(-1)
	bestD := ring.Distance(n.dir.position(n.id), n.dir.position(target))
	var aliveLinks []overlay.PeerID
	for _, q := range links {
		if !alive(q) {
			n.cfg.Obs.Inc(obs.CCMADeadSkip)
			continue
		}
		aliveLinks = append(aliveLinks, q)
		if d := ring.Distance(n.dir.position(q), n.dir.position(target)); d < bestD {
			best, bestD = q, d
		}
	}
	if best >= 0 {
		return best, true
	}
	// Local minimum with the closer links dead: take a random live link —
	// a TTL-bounded random walk that escapes the dead region; retries then
	// explore different paths.
	if len(aliveLinks) > 0 {
		n.cfg.Obs.Inc(obs.CCMARandomWalk)
		n.mu.Lock()
		q := aliveLinks[n.rng.Intn(len(aliveLinks))]
		n.mu.Unlock()
		return q, true
	}
	return -1, false
}

// Pause makes the node unresponsive (simulated churn departure).
func (n *Node) Pause() { n.paused.Store(true) }

// Resume brings a paused node back online.
func (n *Node) Resume() { n.paused.Store(false) }

// OnDeliver registers the node-level push handler called once per
// first-time publication delivery, outside the node lock. It receives
// every delivery a per-subscription handler (Subscription.OnDeliver)
// does not claim. Register before traffic starts; a nil handler
// disables the callback.
func (n *Node) OnDeliver(fn DeliverFunc) {
	n.mu.Lock()
	n.onDeliver = fn
	n.mu.Unlock()
}

// deliverHandlerLocked resolves the handler for a delivery on topic:
// the subscription's own handler when one is registered, else the
// node-level handler.
func (n *Node) deliverHandlerLocked(topic string) DeliverFunc {
	if ts := n.subTopics[topic]; ts != nil && ts.handler != nil {
		return ts.handler
	}
	return n.onDeliver
}

// pubOpts is the resolved form of a Publish call's options.
type pubOpts struct {
	size    uint32
	sizeSet bool
	pri     uint8
}

// PublishOption configures one Publish call (WithPriority, WithSize).
type PublishOption func(*pubOpts)

// WithPriority sets the durable-tier priority class (inbox.High /
// inbox.Medium / inbox.Low, default Medium): should the publication end
// up deposited for an offline subscriber, the class decides its replay
// order when the subscriber rejoins.
func WithPriority(pri uint8) PublishOption {
	return func(o *pubOpts) { o.pri = pri }
}

// WithSize overrides the modeled payload size without materializing a
// body — the benchmark shim for the paper's 1.2 MB fragments, where
// only byte accounting matters and real bodies would swamp the harness.
// Without it the size is len(payload).
func WithSize(size uint32) PublishOption {
	return func(o *pubOpts) { o.size = size; o.sizeSet = true }
}

func resolvePublishOpts(payload []byte, opts []PublishOption) pubOpts {
	o := pubOpts{pri: inbox.Medium}
	for _, f := range opts {
		f(&o)
	}
	if !o.sizeSet {
		o.size = uint32(len(payload))
	}
	return o
}

// publishFeed resolves options and runs the friend-feed fan-out — the
// node's implicit UserTopic. The public surface is
// Topic(UserTopic(id)).Publish (topic.go); the PR-8 deprecated
// Publish/PublishPriority/PublishSize shims are gone.
func (n *Node) publishFeed(payload []byte, opts ...PublishOption) uint32 {
	o := resolvePublishOpts(payload, opts)
	return n.publish(payload, o.size, o.pri)
}

func (n *Node) publish(payload []byte, size uint32, pri uint8) uint32 {
	subs := n.g.Neighbors(n.id)
	n.mu.Lock()
	seq := n.nextSeq()
	id := msgID{int32(n.id), seq}
	n.rememberDeliveryLocked(id, 0) // the publisher trivially has its own message
	n.registerPublishLocked(seq, subs, payload, size, pri, time.Now())
	n.mu.Unlock()
	n.cfg.Obs.Addn(obs.CPublishSent, int64(len(subs)))
	n.cfg.Obs.TraceEvent("publish", int32(n.id), seq)
	if n.fs != nil {
		// Marshal-once fast path: the fan-out frame is invariant except
		// for To — encode it once, patch the destination per subscriber,
		// and route each copy to its own next hop. Dead-end accounting
		// mirrors forward().
		buf := wire.GetFrame()
		*buf = wire.MarshalAppend((*buf)[:0], &wire.Message{
			Kind: wire.KindPublish, From: int32(n.id),
			Seq: seq, Publisher: int32(n.id), TTL: n.cfg.TTL,
			Priority: pri, PayloadSize: size, Payload: payload,
		})
		for _, s := range subs {
			next, ok := n.nextHop(s)
			if !ok {
				n.cfg.Obs.Inc(obs.CPublishDeadEnd)
				n.cfg.Obs.TraceEvent("dead_end", int32(n.id), seq)
				continue
			}
			wire.PatchTo(*buf, int32(s))
			_ = n.fs.SendFrame(int32(n.id), int32(next), *buf)
		}
		wire.PutFrame(buf)
	} else {
		for _, s := range subs {
			m := &wire.Message{
				Kind: wire.KindPublish, From: int32(n.id), To: int32(s),
				Seq: seq, Publisher: int32(n.id), TTL: n.cfg.TTL,
				Priority: pri, PayloadSize: size, Payload: payload,
			}
			n.forward(m, s)
		}
	}
	n.kickRetry()
	return seq
}

// Received reports whether this node got publication (publisher, seq) and
// at how many hops.
func (n *Node) Received(publisher overlay.PeerID, seq uint32) (hops uint8, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.received[msgID{int32(publisher), seq}]
	return h, ok
}

// Acked returns how many subscribers have acknowledged publication seq.
func (n *Node) Acked(seq uint32) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.acked[msgID{int32(n.id), seq}])
}

// Exchanges returns the number of completed gossip exchanges (active side).
func (n *Node) Exchanges() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.exchanges
}

// LinkAvailability returns the CMA estimate for link q (1 when never
// probed).
func (n *Node) LinkAvailability(q overlay.PeerID) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c := n.cma[q]; c != nil {
		return c.Value()
	}
	return 1
}

// Lookahead returns the cached routing table of neighbor q.
func (n *Node) Lookahead(q overlay.PeerID) []overlay.PeerID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]overlay.PeerID(nil), n.lookahead[q]...)
}

// ID returns the node's peer id.
func (n *Node) ID() overlay.PeerID { return n.id }

// Joined reports whether the node is currently a ring member.
func (n *Node) Joined() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.joined
}

// Links returns the node's current routing table R_p.
func (n *Node) Links() []overlay.PeerID { return n.linksSnapshot() }

// RingNeighbors returns the node's current short-range ring links (-1
// when a direction has no live entry).
func (n *Node) RingNeighbors() (succ, pred overlay.PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.shortSucc, n.shortPred
}

// RingList returns the node's successor and predecessor lists (nearest
// first), the decentralized state ring repair splices from.
func (n *Node) RingList() (succs, preds []overlay.PeerID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, e := range n.rview.succ {
		succs = append(succs, e.peer)
	}
	for _, e := range n.rview.pred {
		preds = append(preds, e.peer)
	}
	return succs, preds
}

// Position returns the node's current ring identifier.
func (n *Node) Position() ring.ID { return n.dir.position(n.id) }

// LinkCoverage reports the fraction of this node's member friends that
// are one forward away: directly long-linked, or long-linked by one of
// our long links (known through the learned bitmaps). It is the live
// overlay-quality metric the soak's churn arm watches converge.
func (n *Node) LinkCoverage() float64 {
	friends := n.g.Neighbors(n.id)
	n.mu.Lock()
	defer n.mu.Unlock()
	members, covered := 0, 0
	for i, f := range friends {
		if !n.dir.isMember(f) {
			continue
		}
		members++
		if n.inLongOutLocked(f) || n.coveredLocked(i) {
			covered++
		}
	}
	if members == 0 {
		return 1
	}
	return float64(covered) / float64(members)
}

func peersToInt32s(ps []overlay.PeerID) []int32 {
	out := make([]int32, len(ps))
	copy(out, ps)
	return out
}

func int32sToPeers(xs []int32) []overlay.PeerID {
	out := make([]overlay.PeerID, len(xs))
	copy(out, xs)
	return out
}

// countMutualSorted counts common elements of two sorted id lists; the
// live analogue of |C_u ∩ C_p| in Algorithm 4 line 3.
func countMutualSorted(a, b []overlay.PeerID) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
