package lsh

import (
	"math/rand"
	"testing"

	"selectps/internal/bitset"
)

func newHasher(t *testing.T, dim, buckets int) *Hasher {
	t.Helper()
	return NewHasher(dim, buckets, 0, rand.New(rand.NewSource(1)))
}

func TestBucketRange(t *testing.T) {
	h := newHasher(t, 100, 8)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		b := bitset.New(100)
		for j := 0; j < 100; j++ {
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		bk := h.Bucket(b)
		if bk < 0 || bk >= 8 {
			t.Fatalf("bucket %d out of range", bk)
		}
	}
}

func TestIdenticalBitmapsSameBucket(t *testing.T) {
	h := newHasher(t, 64, 8)
	a := bitset.FromIndices(64, []int{1, 5, 9, 33})
	b := bitset.FromIndices(64, []int{1, 5, 9, 33})
	if h.Bucket(a) != h.Bucket(b) {
		t.Error("identical bitmaps hashed to different buckets")
	}
}

func TestDeterministicAcrossConstructions(t *testing.T) {
	h1 := NewHasher(64, 8, 0, rand.New(rand.NewSource(7)))
	h2 := NewHasher(64, 8, 0, rand.New(rand.NewSource(7)))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		b := bitset.New(64)
		for j := 0; j < 64; j++ {
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		if h1.Bucket(b) != h2.Bucket(b) {
			t.Fatal("same-seed hashers disagree")
		}
	}
}

func TestLocalityProperty(t *testing.T) {
	// Near-duplicate bitmaps must collide far more often than random pairs.
	h := newHasher(t, 256, 8)
	rng := rand.New(rand.NewSource(3))
	trials := 400
	nearColl, farColl := 0, 0
	for i := 0; i < trials; i++ {
		a := bitset.New(256)
		for j := 0; j < 256; j++ {
			if rng.Intn(2) == 1 {
				a.Set(j)
			}
		}
		// near: flip 4 random bits (Hamming 4)
		near := a.Clone()
		for k := 0; k < 4; k++ {
			p := rng.Intn(256)
			if near.Test(p) {
				near.Clear(p)
			} else {
				near.Set(p)
			}
		}
		// far: independent random bitmap
		far := bitset.New(256)
		for j := 0; j < 256; j++ {
			if rng.Intn(2) == 1 {
				far.Set(j)
			}
		}
		if h.Bucket(a) == h.Bucket(near) {
			nearColl++
		}
		if h.Bucket(a) == h.Bucket(far) {
			farColl++
		}
	}
	if nearColl <= farColl {
		t.Errorf("LSH property violated: near collisions %d <= far collisions %d",
			nearColl, farColl)
	}
	// Random pairs collide at roughly 1/8 by chance; near pairs should be
	// clearly above that.
	if float64(nearColl)/float64(trials) < 0.3 {
		t.Errorf("near-duplicate collision rate %.2f too low", float64(nearColl)/float64(trials))
	}
}

func TestBucketSpread(t *testing.T) {
	// Random bitmaps should occupy most buckets, not collapse into one.
	h := newHasher(t, 128, 8)
	rng := rand.New(rand.NewSource(4))
	used := make(map[int]bool)
	for i := 0; i < 400; i++ {
		b := bitset.New(128)
		for j := 0; j < 128; j++ {
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		used[h.Bucket(b)] = true
	}
	if len(used) < 6 {
		t.Errorf("only %d of 8 buckets used", len(used))
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	h := newHasher(t, 10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	h.Bucket(bitset.New(11))
}

func TestConstructorValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"negative dim": func() { NewHasher(-1, 2, 0, rand.New(rand.NewSource(1))) },
		"zero buckets": func() { NewHasher(10, 0, 0, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSingleBucket(t *testing.T) {
	h := NewHasher(32, 1, 0, rand.New(rand.NewSource(5)))
	if h.Bucket(bitset.New(32)) != 0 {
		t.Error("single-bucket hasher must return 0")
	}
}

func TestZeroDim(t *testing.T) {
	h := NewHasher(0, 4, 0, rand.New(rand.NewSource(6)))
	if bk := h.Bucket(bitset.New(0)); bk < 0 || bk >= 4 {
		t.Errorf("zero-dim bucket = %d", bk)
	}
}

func TestTableInsertRemove(t *testing.T) {
	h := newHasher(t, 64, 4)
	tab := NewTable(h)
	a := bitset.FromIndices(64, []int{1, 2, 3})
	b := bitset.FromIndices(64, []int{60, 61, 62})
	tab.Insert(10, a)
	tab.Insert(20, b)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.BucketOf(10) != h.Bucket(a) {
		t.Error("BucketOf(10) mismatch")
	}
	if tab.BucketOf(99) != -1 {
		t.Error("BucketOf(unknown) should be -1")
	}
	tab.Remove(10)
	if tab.Len() != 1 || tab.BucketOf(10) != -1 {
		t.Error("Remove failed")
	}
	tab.Remove(10) // idempotent
	if tab.Len() != 1 {
		t.Error("double Remove changed table")
	}
}

func TestTableReinsertMoves(t *testing.T) {
	h := newHasher(t, 64, 8)
	tab := NewTable(h)
	var a, b *bitset.Set
	// Find two bitmaps in different buckets.
	rng := rand.New(rand.NewSource(9))
	for {
		a, b = bitset.New(64), bitset.New(64)
		for j := 0; j < 64; j++ {
			if rng.Intn(2) == 1 {
				a.Set(j)
			}
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		if h.Bucket(a) != h.Bucket(b) {
			break
		}
	}
	tab.Insert(5, a)
	tab.Insert(5, b)
	if tab.Len() != 1 {
		t.Fatalf("reinsert duplicated key: Len=%d", tab.Len())
	}
	if tab.BucketOf(5) != h.Bucket(b) {
		t.Error("reinsert did not move key to new bucket")
	}
	// Old bucket must no longer contain the key.
	for _, k := range tab.Bucket(h.Bucket(a)) {
		if k == 5 {
			t.Error("key still in old bucket")
		}
	}
}

func TestTableBucketsPartitionKeys(t *testing.T) {
	h := newHasher(t, 128, 6)
	tab := NewTable(h)
	rng := rand.New(rand.NewSource(10))
	for k := int32(0); k < 200; k++ {
		b := bitset.New(128)
		for j := 0; j < 128; j++ {
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		tab.Insert(k, b)
	}
	total := 0
	seen := make(map[int32]bool)
	for i := 0; i < tab.NumBuckets(); i++ {
		for _, k := range tab.Bucket(i) {
			if seen[k] {
				t.Fatalf("key %d appears in two buckets", k)
			}
			seen[k] = true
			total++
		}
	}
	if total != 200 || tab.Len() != 200 {
		t.Errorf("partition covers %d keys, Len=%d, want 200", total, tab.Len())
	}
}
