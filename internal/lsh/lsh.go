// Package lsh implements the locality-sensitive hashing index SELECT's
// connection-establishment algorithm uses (Algorithm 5, §III-D).
//
// Each social friend is described by a friendship bitmap (which members of
// the local neighborhood that friend is linked to). Bitmaps are indexed
// into |H| = K buckets so that friends with similar connection sets land in
// the same bucket; the peer then keeps at most one long-range link per
// bucket, avoiding redundant links to friends that already cover the same
// region of the overlay.
//
// The family used is classic bit sampling for Hamming distance (Gionis,
// Indyk, Motwani — paper ref. [14]): a fixed random subset of bit positions
// forms a signature, and equal signatures collide into the same bucket.
// Vectors at Hamming distance d collide with probability (1 - d/dim)^s for
// s sampled bits, which is monotonically decreasing in d — the LSH property.
package lsh

import (
	"fmt"
	"math/rand"

	"selectps/internal/bitset"
)

// Hasher maps bitmaps of a fixed dimension to one of NumBuckets buckets.
type Hasher struct {
	dim        int
	numBuckets int
	sample     []int  // bit positions forming the signature
	mix        uint64 // rng-derived key mixed into the signature fold
}

// NewHasher creates a bit-sampling hasher for dim-bit inputs and the given
// bucket count. sampleBits controls signature length; <=0 picks a default
// that scales with the bucket count. The construction is deterministic in
// the provided rng.
func NewHasher(dim, numBuckets, sampleBits int, rng *rand.Rand) *Hasher {
	if dim < 0 {
		panic(fmt.Sprintf("lsh: negative dimension %d", dim))
	}
	if numBuckets <= 0 {
		panic(fmt.Sprintf("lsh: bucket count %d must be positive", numBuckets))
	}
	if sampleBits <= 0 {
		// Enough signature entropy to spread over the buckets while keeping
		// collision probability meaningful for similar vectors.
		sampleBits = 8
		for 1<<sampleBits < numBuckets*4 && sampleBits < 24 {
			sampleBits++
		}
	}
	if sampleBits > dim {
		sampleBits = dim
	}
	sample := samplePositions(dim, sampleBits, rng)
	return &Hasher{dim: dim, numBuckets: numBuckets, sample: sample, mix: rng.Uint64()}
}

// samplePositions draws k distinct positions from [0,dim) by a partial
// Fisher–Yates shuffle over a sparse swap table: k rng draws and O(k)
// memory, where rng.Perm(dim) would spend dim draws and dim ints to keep
// only the k-element prefix. Per-peer hashers make this the dominant
// allocation of overlay construction on hub-heavy graphs (dim = |C_p|,
// k ≈ 10). Deterministic in the rng, but a different draw sequence than
// the former rng.Perm — seeds produce different (equally valid) hashers
// than pre-acceleration builds; see CHANGES.md.
func samplePositions(dim, k int, rng *rand.Rand) []int {
	sample := make([]int, k)
	swap := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(dim-i)
		vj, ok := swap[j]
		if !ok {
			vj = j
		}
		vi, ok := swap[i]
		if !ok {
			vi = i
		}
		sample[i] = vj
		swap[j] = vi
	}
	return sample
}

// NumBuckets returns the bucket count |H|.
func (h *Hasher) NumBuckets() int { return h.numBuckets }

// Dim returns the expected bitmap length.
func (h *Hasher) Dim() int { return h.dim }

// signature extracts the sampled bits as a packed word sequence and folds
// them FNV-style into a 64-bit value. Equal signatures → equal folds.
func (h *Hasher) signature(b *bitset.Set) uint64 {
	if b.Len() != h.dim {
		panic(fmt.Sprintf("lsh: bitmap length %d, hasher dimension %d", b.Len(), h.dim))
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	sig := offset64 ^ h.mix
	var cur uint64
	n := 0
	for _, pos := range h.sample {
		cur <<= 1
		if b.Test(pos) {
			cur |= 1
		}
		n++
		if n == 64 {
			sig = (sig ^ cur) * prime64
			cur, n = 0, 0
		}
	}
	if n > 0 {
		sig = (sig ^ cur) * prime64
	}
	return sig
}

// Bucket returns the bucket index in [0, NumBuckets) for bitmap b.
func (h *Hasher) Bucket(b *bitset.Set) int {
	if h.numBuckets == 1 {
		return 0
	}
	return int(h.signature(b) % uint64(h.numBuckets))
}

// Table is an LSH index instance: bitmaps inserted under integer keys,
// grouped by bucket. This is the per-peer structure rebuilt each gossip
// round in Algorithm 5 (lines 2–4).
type Table struct {
	h        *Hasher
	buckets  [][]int32
	bucketOf map[int32]int
}

// NewTable returns an empty index over the hasher.
func NewTable(h *Hasher) *Table {
	return &Table{
		h:        h,
		buckets:  make([][]int32, h.numBuckets),
		bucketOf: make(map[int32]int),
	}
}

// Insert indexes key's bitmap. Re-inserting a key moves it to the (possibly
// new) bucket of the new bitmap.
func (t *Table) Insert(key int32, b *bitset.Set) {
	if old, ok := t.bucketOf[key]; ok {
		t.removeFrom(old, key)
	}
	bk := t.h.Bucket(b)
	t.buckets[bk] = append(t.buckets[bk], key)
	t.bucketOf[key] = bk
}

func (t *Table) removeFrom(bucket int, key int32) {
	l := t.buckets[bucket]
	for i, k := range l {
		if k == key {
			l[i] = l[len(l)-1]
			t.buckets[bucket] = l[:len(l)-1]
			return
		}
	}
}

// Remove deletes key from the index; unknown keys are a no-op.
func (t *Table) Remove(key int32) {
	if bk, ok := t.bucketOf[key]; ok {
		t.removeFrom(bk, key)
		delete(t.bucketOf, key)
	}
}

// Bucket returns the keys currently in bucket i. The slice is owned by the
// table; callers must not mutate it.
func (t *Table) Bucket(i int) []int32 { return t.buckets[i] }

// BucketOf returns the bucket holding key, or -1 when absent.
func (t *Table) BucketOf(key int32) int {
	if bk, ok := t.bucketOf[key]; ok {
		return bk
	}
	return -1
}

// Len returns the number of indexed keys.
func (t *Table) Len() int { return len(t.bucketOf) }

// NumBuckets returns |H|.
func (t *Table) NumBuckets() int { return t.h.numBuckets }
