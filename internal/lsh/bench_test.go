package lsh

import (
	"math/rand"
	"testing"

	"selectps/internal/bitset"
)

func BenchmarkBucket(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := NewHasher(128, 16, 0, rng)
	bm := bitset.New(128)
	for i := 0; i < 128; i++ {
		if rng.Intn(2) == 1 {
			bm.Set(i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Bucket(bm)
	}
}

func BenchmarkTableInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	h := NewHasher(64, 8, 0, rng)
	bm := bitset.New(64)
	bm.Set(3)
	t := NewTable(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(int32(i%1000), bm)
	}
}
